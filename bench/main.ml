(* Benchmark harness regenerating every experiment in EXPERIMENTS.md.

   The paper (a system paper) reports no numeric tables; its figures are
   functional artifacts and its performance statements are prose claims
   (Sections 2.2, 3.2, 3.3). Each experiment below regenerates one of
   those artifacts or claims:

     E1  Fig. 8  keyword query across EMBL + Swiss-Prot
     E2  Fig. 9  sub-tree query on ENZYME
     E3  Fig. 11 join query EMBL x ENZYME on EC number
     E4  Fig. 1  Data Hounds pipeline throughput (flat -> XML -> tuples)
     E5  claim: indexes chosen from optimizer plans make queries efficient
         (index ablation table)
     E6  claim: reconstructing entire documents is expensive relative to
         query processing (reconstruction vs selective query)
     E7  claim: the relational backend beats a native in-memory XML
         processor as data grows (scale sweep with crossover)
     E8  claim: incremental update integrates changes exactly once
         (sync cost: unchanged vs mutated snapshots)
     E8-throughput  the gRNA service layer: closed-loop concurrent TCP
         clients over the query server, QPS + latency percentiles
         sweeping client count x worker domains (BENCH_E8.json)

   Bechamel micro-benchmarks cover E1-E4, E6 and E8 at a fixed scale; the
   sweep tables for E5-E7 are printed afterwards. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let scale = try int_of_string (Sys.getenv "XOMATIQ_BENCH_SCALE") with Not_found -> 150

(* Scaling experiments (E6-scaling, E8-throughput, E11-replication) need
   real cores to separate their cells; say so instead of silently
   printing a flat table on a 1-core host. *)
let warn_if_single_core name =
  if Domain.recommended_domain_count () = 1 then
    Printf.printf
      "  warning: %s is a scaling benchmark but this host exposes only 1 \
       core; its cells cannot separate and scaling floors are not meaningful \
       here\n%!"
      name

let universe_of n =
  Workload.Genbio.generate
    { Workload.Genbio.seed = 42; n_enzymes = n; n_embl = n; n_sprot = n;
      n_citations = 0; cdc6_rate = 0.03; ketone_rate = 0.08; ec_link_rate = 0.5;
      seq_length = 120 }

let build_warehouse ?(indexes = true) u =
  let wh = Datahounds.Warehouse.create () in
  (match Workload.Genbio.load_universe wh u with
   | Ok () -> ()
   | Error m -> failwith m);
  if not indexes then begin
    (* E5 ablation: drop every secondary index, keeping only primary keys.
       Enumerated from the catalog so new warehouse indexes are ablated
       automatically; PK indexes are named <table>_pkey by the engine. *)
    let db = Datahounds.Warehouse.db wh in
    let cat = Rdb.Database.catalog db in
    let secondary =
      List.concat_map
        (fun tname ->
          match Rdb.Catalog.find_table cat tname with
          | None -> []
          | Some tbl ->
            List.filter_map
              (fun idx ->
                let name = Rdb.Index.name idx in
                if String.length name > 5
                   && String.sub name (String.length name - 5) 5 = "_pkey"
                then None
                else Some name)
              (Rdb.Table.indexes tbl))
        (Rdb.Catalog.table_names cat)
    in
    List.iter
      (fun name -> ignore (Rdb.Database.exec_exn db ("DROP INDEX " ^ name)))
      secondary
  end;
  wh

let fig8_keyword_query =
  {|FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
    $b IN document("hlx_sprot.all")/hlx_n_sequence
WHERE contains($a, "cdc6", any) AND contains($b, "cdc6", any)
RETURN $b//sprot_accession_number, $a//embl_accession_number|}

let fig9_subtree_query =
  {|FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id, $a//enzyme_description|}

let fig11_join_query =
  {|FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description|}

let queries =
  [ ("E1-keyword-fig8", fig8_keyword_query);
    ("E2-subtree-fig9", fig9_subtree_query);
    ("E3-join-fig11", fig11_join_query) ]

let universe = universe_of scale
let warehouse = build_warehouse universe
let enzyme_flat = Workload.Genbio.enzyme_flat universe

(* parsed ASTs, reused *)
let asts = List.map (fun (n, q) -> (n, Xomatiq.Parser.parse q)) queries

(* prime the reference evaluator's reconstruction cache so E1-E3 reference
   timings measure evaluation, not reconstruction *)
let reference_provider = Xomatiq.Eval.of_warehouse warehouse

let () =
  List.iter
    (fun c -> ignore (reference_provider c))
    [ "hlx_embl.inv"; "hlx_sprot.all"; "hlx_enzyme.DEFAULT" ]

(* ------------------------------------------------------------------ *)
(* Bechamel tests                                                      *)
(* ------------------------------------------------------------------ *)

let query_tests =
  List.concat_map
    (fun (name, ast) ->
      [ Test.make ~name:(name ^ "/relational")
          (Staged.stage (fun () ->
               ignore (Xomatiq.Engine.run ~mode:`Relational warehouse ast)));
        Test.make ~name:(name ^ "/reference")
          (Staged.stage (fun () ->
               ignore (Xomatiq.Eval.eval reference_provider ast))) ])
    asts

let pipeline_test =
  (* E4: the Fig. 1 pipeline — parse flat file, build XML, validate, shred *)
  Test.make ~name:"E4-pipeline/enzyme-flat-to-tuples"
    (Staged.stage (fun () ->
         let wh = Datahounds.Warehouse.create () in
         Datahounds.Warehouse.register_source wh Datahounds.Warehouse.enzyme_source;
         match
           Datahounds.Warehouse.harvest wh Datahounds.Warehouse.enzyme_source
             enzyme_flat
         with
         | Ok _ -> ()
         | Error m -> failwith m))

let reconstruction_tests =
  (* E6: whole-document reconstruction vs a selective query on one doc *)
  let db = Datahounds.Warehouse.db warehouse in
  let name = List.hd (Datahounds.Warehouse.documents warehouse ~collection:"hlx_embl.inv") in
  let doc_id =
    match Datahounds.Shred.document_id db ~collection:"hlx_embl.inv" ~name with
    | Some id -> id
    | None -> failwith "fixture doc missing"
  in
  let selective =
    Xomatiq.Parser.parse
      (Printf.sprintf
         {|FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
WHERE $a//embl_accession_number = "%s"
RETURN $a//description|}
         name)
  in
  [ Test.make ~name:"E6-reconstruct/full-document"
      (Staged.stage (fun () ->
           match Datahounds.Shred.reconstruct db ~doc_id with
           | Ok _ -> ()
           | Error m -> failwith m));
    Test.make ~name:"E6-reconstruct/selective-query"
      (Staged.stage (fun () ->
           ignore (Xomatiq.Engine.run warehouse selective))) ]

let all_tests =
  Test.make_grouped ~name:"xomatiq" ~fmt:"%s %s"
    (query_tests @ [ pipeline_test ] @ reconstruction_tests)

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances all_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let print_bechamel results =
  Printf.printf "%-48s %14s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 64 '-');
  let rows = ref [] in
  Hashtbl.iter
    (fun _ tbl ->
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> rows := (name, est) :: !rows
          | _ -> ())
        tbl)
    results;
  List.iter
    (fun (name, ns) ->
      let display =
        if ns > 1e9 then Printf.sprintf "%8.2f  s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "%-48s %14s\n" name display)
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* Sweep tables (E5, E6 by size, E7)                                   *)
(* ------------------------------------------------------------------ *)

let time_median ?(runs = 3) f =
  let samples =
    List.init runs (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0)
  in
  let sorted = List.sort compare samples in
  List.nth sorted (runs / 2)

let ms t = t *. 1000.0

let print_e5 () =
  print_newline ();
  Printf.printf "E5: ablations (scale=%d docs/source) — paper Section 3.2 claim\n" scale;
  Printf.printf "%-18s %10s %10s %10s %10s %7s %9s %9s\n" "query" "full (ms)"
    "like-scan" "no-index" "worst/full" "probes" "op rows" "rows-noix";
  Printf.printf "%s\n" (String.make 90 '-');
  let bare = build_warehouse ~indexes:false universe in
  let counters wh ast =
    match (Xomatiq.Engine.run ~trace:true wh ast).Xomatiq.Engine.trace with
    | Some tr -> tr
    | None -> failwith "traced run returned no trace"
  in
  List.iter
    (fun (name, ast) ->
      let with_idx = time_median (fun () -> ignore (Xomatiq.Engine.run warehouse ast)) in
      let like_scan =
        time_median (fun () ->
            ignore (Xomatiq.Engine.run ~contains_strategy:`Like_scan warehouse ast))
      in
      let without = time_median (fun () -> ignore (Xomatiq.Engine.run bare ast)) in
      (* real operator counters, from a profiled run of each configuration *)
      let full_tr = counters warehouse ast in
      let bare_tr = counters bare ast in
      Printf.printf "%-18s %10.2f %10.2f %10.2f %9.1fx %7d %9d %9d\n" name
        (ms with_idx) (ms like_scan) (ms without)
        (Float.max like_scan without /. with_idx)
        full_tr.Xomatiq.Engine.index_probes full_tr.Xomatiq.Engine.operator_rows
        bare_tr.Xomatiq.Engine.operator_rows;
      Printf.printf "%-18s   indexes: %s\n" ""
        (match full_tr.Xomatiq.Engine.indexes with
         | [] -> "(none)"
         | l -> String.concat ", " l))
    asts;
  Datahounds.Warehouse.close bare

let print_e5_analyze () =
  print_newline ();
  Printf.printf
    "E5b: cost-based planning — ad-hoc query time before/after ANALYZE (scale=%d)\n"
    scale;
  (* two configurations: the fully-indexed warehouse (index choice already
     constrains plans) and the index-ablated one, where join ordering is
     driven purely by cardinality estimates and statistics matter most *)
  let one_config label wh =
    Printf.printf "%s:\n" label;
    Printf.printf "%-18s %12s %12s %8s %12s\n" "query" "before (ms)"
      "after (ms)" "speedup" "plan changed";
    Printf.printf "%s\n" (String.make 68 '-');
    let db = Datahounds.Warehouse.db wh in
    let plans_before =
      List.map (fun (name, ast) -> (name, Xomatiq.Engine.explain wh ast)) asts
    in
    let before =
      List.map
        (fun (name, ast) ->
          (name, time_median (fun () -> ignore (Xomatiq.Engine.run wh ast))))
        asts
    in
    let t0 = Unix.gettimeofday () in
    (match Rdb.Database.exec db "ANALYZE" with
     | Ok _ -> ()
     | Error m -> failwith m);
    let analyze_t = Unix.gettimeofday () -. t0 in
    List.iter
      (fun (name, ast) ->
        let after = time_median (fun () -> ignore (Xomatiq.Engine.run wh ast)) in
        let changed = Xomatiq.Engine.explain wh ast <> List.assoc name plans_before in
        let b = List.assoc name before in
        Printf.printf "%-18s %12.2f %12.2f %7.2fx %12s\n" name (ms b) (ms after)
          (b /. after)
          (if changed then "yes" else "no"))
      asts;
    Printf.printf "(ANALYZE itself: %.2f ms over %d tables)\n" (ms analyze_t)
      (List.length (Rdb.Catalog.table_names (Rdb.Database.catalog db)));
    Datahounds.Warehouse.close wh
  in
  one_config "all indexes" (build_warehouse universe);
  print_newline ();
  one_config "secondary indexes ablated" (build_warehouse ~indexes:false universe)

let print_e5_cache () =
  print_newline ();
  Printf.printf "E5c: translated-plan cache on the textual query path (scale=%d)\n" scale;
  Printf.printf "%-18s %12s %12s %8s\n" "query" "cold (ms)" "cached (ms)" "speedup";
  Printf.printf "%s\n" (String.make 54 '-');
  Xomatiq.Engine.cache_clear ();
  List.iter
    (fun (name, text) ->
      let t0 = Unix.gettimeofday () in
      ignore (Xomatiq.Engine.run_text warehouse text);
      let cold = Unix.gettimeofday () -. t0 in
      let cached =
        time_median (fun () -> ignore (Xomatiq.Engine.run_text warehouse text))
      in
      Printf.printf "%-18s %12.2f %12.2f %7.2fx\n" name (ms cold) (ms cached)
        (cold /. cached))
    queries;
  let hits, misses = Xomatiq.Engine.cache_stats () in
  Printf.printf "cache: %d hits / %d misses (hit rate %.0f%%)\n" hits misses
    (100. *. float_of_int hits /. float_of_int (max 1 (hits + misses)))

(* Synthetic EMBL entry with [n] CDS features — element count (and so
   tuple count per document) grows linearly with [n]. *)
let wide_embl_entry ~features i : Datahounds.Embl.t =
  { accession = Printf.sprintf "WB%06d" i;
    division = "INV";
    sequence_length = 120;
    description = "synthetic wide entry";
    keywords = [ "synthetic"; "wide" ];
    organism = "Drosophila melanogaster";
    db_refs = [];
    features =
      List.init features (fun k ->
          { Datahounds.Embl.feature_key = "CDS";
            location = Printf.sprintf "%d..%d" (k + 1) (k + 90);
            qualifiers =
              [ { qualifier_type = "gene"; qualifier_value = Printf.sprintf "g%d" k };
                { qualifier_type = "note"; qualifier_value = "generated feature" } ] });
    sequence = String.make 120 'a' }

let print_e6_sweep () =
  print_newline ();
  Printf.printf "E6: full-document reconstruction vs selective query, by document size\n";
  Printf.printf "%-10s %12s %18s %18s %8s\n" "features" "nodes/doc" "reconstruct (ms)"
    "selective (ms)" "ratio";
  Printf.printf "%s\n" (String.make 70 '-');
  List.iter
    (fun features ->
      let wh = Datahounds.Warehouse.create () in
      let src = Datahounds.Warehouse.embl_source ~division:"inv" in
      Datahounds.Warehouse.register_source wh src;
      let ndocs = 25 in
      List.iter
        (fun i ->
          let e = wide_embl_entry ~features i in
          match
            Datahounds.Warehouse.load_document wh ~collection:"hlx_embl.inv"
              ~name:(Datahounds.Embl_xml.document_name e)
              (Datahounds.Embl_xml.to_document e)
          with
          | Ok () -> ()
          | Error m -> failwith m)
        (List.init ndocs (fun i -> i));
      let db = Datahounds.Warehouse.db wh in
      let name = List.hd (Datahounds.Warehouse.documents wh ~collection:"hlx_embl.inv") in
      let doc_id =
        Option.get (Datahounds.Shred.document_id db ~collection:"hlx_embl.inv" ~name)
      in
      let nodes = Datahounds.Warehouse.node_count wh / ndocs in
      let selective =
        Xomatiq.Parser.parse
          (Printf.sprintf
             {|FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
WHERE $a//embl_accession_number = "%s" RETURN $a//description|}
             name)
      in
      let trec =
        time_median (fun () ->
            match Datahounds.Shred.reconstruct db ~doc_id with
            | Ok _ -> ()
            | Error m -> failwith m)
      in
      let tsel = time_median (fun () -> ignore (Xomatiq.Engine.run wh selective)) in
      Printf.printf "%-10d %12d %18.3f %18.3f %7.1fx\n" features nodes (ms trec)
        (ms tsel) (trec /. tsel);
      Datahounds.Warehouse.close wh)
    [ 5; 50; 500 ]

let print_e4_sweep () =
  print_newline ();
  Printf.printf "E4: Data Hounds pipeline throughput by input size\n";
  Printf.printf "%-10s %14s %16s %16s\n" "entries" "load (ms)" "entries/s" "nodes/s";
  Printf.printf "%s\n" (String.make 60 '-');
  List.iter
    (fun n ->
      let u =
        Workload.Genbio.generate
          { Workload.Genbio.seed = 9; n_enzymes = n; n_embl = 0; n_sprot = 0;
            n_citations = 0; cdc6_rate = 0.0; ketone_rate = 0.05;
            ec_link_rate = 0.0; seq_length = 60 }
      in
      let flat = Workload.Genbio.enzyme_flat u in
      let nodes = ref 0 in
      let t =
        time_median (fun () ->
            let wh = Datahounds.Warehouse.create () in
            Datahounds.Warehouse.register_source wh Datahounds.Warehouse.enzyme_source;
            (match
               Datahounds.Warehouse.harvest wh Datahounds.Warehouse.enzyme_source flat
             with
             | Ok _ -> nodes := Datahounds.Warehouse.node_count wh
             | Error m -> failwith m);
            Datahounds.Warehouse.close wh)
      in
      Printf.printf "%-10d %14.1f %16.0f %16.0f\n" n (ms t)
        (float_of_int n /. t)
        (float_of_int !nodes /. t))
    [ 100; 400; 1600 ]

let print_e8 () =
  print_newline ();
  Printf.printf "E8: incremental sync cost by mutation rate (%d ENZYME docs)\n" scale;
  Printf.printf "%-18s %16s %10s %16s\n" "snapshot" "first sync (ms)" "updated"
    "re-sync (ms)";
  Printf.printf "%s\n" (String.make 64 '-');
  let docs enzymes =
    List.map
      (fun (e : Datahounds.Enzyme.t) ->
        (e.ec_number, Datahounds.Enzyme_xml.to_document e))
      enzymes
  in
  (* snapshot what the warehouse actually holds: the flat-file parse, not
     the raw generator records (rendering normalises punctuation) *)
  let warehoused_enzymes = Datahounds.Enzyme.parse_many enzyme_flat in
  List.iter
    (fun (label, fraction) ->
      (* a fresh warehouse per point: sync mutates state *)
      let wh = build_warehouse universe in
      let snapshot =
        if fraction = 0.0 then docs warehoused_enzymes
        else
          docs (Workload.Genbio.mutate_enzymes ~seed:7 ~fraction warehoused_enzymes)
      in
      (* cold sync: integrates the mutations *)
      let t0 = Unix.gettimeofday () in
      let updated =
        match
          Datahounds.Sync.sync_documents wh ~collection:"hlx_enzyme.DEFAULT" snapshot
        with
        | Ok r -> r.updated
        | Error m -> failwith m
      in
      let cold = Unix.gettimeofday () -. t0 in
      (* steady state: the same snapshot again is pure change detection *)
      let steady =
        time_median (fun () ->
            match
              Datahounds.Sync.sync_documents wh ~collection:"hlx_enzyme.DEFAULT"
                snapshot
            with
            | Ok _ -> ()
            | Error m -> failwith m)
      in
      Printf.printf "%-18s %16.2f %10d %16.2f\n" label (ms cold) updated (ms steady);
      Datahounds.Warehouse.close wh)
    [ ("identical", 0.0); ("10pct-mutated", 0.10); ("50pct-mutated", 0.50) ]

let print_e7 () =
  print_newline ();
  Printf.printf "E7: relational vs native-XML baseline across scale — Section 2.2 claim\n";
  Printf.printf "%-18s %8s %12s %12s %12s %8s\n" "query" "docs" "ad-hoc (ms)"
    "prepared" "reference" "ref/prep";
  Printf.printf "%s\n" (String.make 76 '-');
  List.iter
    (fun n ->
      let u = universe_of n in
      let wh = build_warehouse u in
      let provider = Xomatiq.Eval.of_warehouse wh in
      List.iter
        (fun c -> ignore (provider c))
        [ "hlx_embl.inv"; "hlx_sprot.all"; "hlx_enzyme.DEFAULT" ];
      List.iter
        (fun (name, q) ->
          let ast = Xomatiq.Parser.parse q in
          let prepared = Xomatiq.Engine.prepare wh ast in
          let rel = time_median (fun () -> ignore (Xomatiq.Engine.run wh ast)) in
          let prep =
            time_median (fun () -> ignore (Xomatiq.Engine.run_prepared prepared))
          in
          let reference =
            time_median (fun () -> ignore (Xomatiq.Eval.eval provider ast))
          in
          Printf.printf "%-18s %8d %12.2f %12.2f %12.2f %7.1fx\n" name n (ms rel)
            (ms prep) (ms reference) (reference /. prep))
        queries;
      Datahounds.Warehouse.close wh)
    [ 30; 100; 300; 1000 ]

(* ------------------------------------------------------------------ *)
(* E6-scaling: domain-pool parallelism (harvest + Fig. 8/9/11 mix)     *)
(* ------------------------------------------------------------------ *)

let scaling_jobs = [ 1; 2; 4; 8 ]

let print_e6_scaling () =
  print_newline ();
  Printf.printf
    "E6-scaling: harvest + Fig. 8/9/11 mix across domain counts (scale=%d, host cores=%d)\n"
    scale
    (Domain.recommended_domain_count ());
  warn_if_single_core "E6-scaling";
  Printf.printf
    "  planner goes parallel for scans of >= %s rows (XOMATIQ_PAR_THRESHOLD)\n"
    (match Sys.getenv_opt "XOMATIQ_PAR_THRESHOLD" with
     | Some s when String.trim s <> "" -> s
     | _ -> "2000");
  Printf.printf "%-22s" "workload";
  List.iter (fun j -> Printf.printf " %10s" (Printf.sprintf "j=%d (ms)" j)) scaling_jobs;
  Printf.printf " %10s %7s\n" "speedup@4" "eff@4";
  Printf.printf "%s\n" (String.make (22 + 11 * List.length scaling_jobs + 19) '-');
  let harvest_once () =
    let wh = Datahounds.Warehouse.create () in
    Datahounds.Warehouse.register_source wh Datahounds.Warehouse.enzyme_source;
    (match
       Datahounds.Warehouse.harvest wh Datahounds.Warehouse.enzyme_source enzyme_flat
     with
     | Ok _ -> ()
     | Error m -> failwith m);
    Datahounds.Warehouse.close wh
  in
  let row name f =
    let times =
      List.map
        (fun j -> (j, time_median (fun () -> Conc.Pool.with_jobs j f)))
        scaling_jobs
    in
    let t1 = List.assoc 1 times in
    Printf.printf "%-22s" name;
    List.iter (fun (_, t) -> Printf.printf " %10.2f" (ms t)) times;
    (match List.assoc_opt 4 times with
     | Some t4 ->
       Printf.printf " %9.2fx %6.0f%%\n" (t1 /. t4) (100. *. t1 /. t4 /. 4.)
     | None -> print_newline ());
    (name, times)
  in
  let harvest_row = row "harvest/enzyme-flat" harvest_once in
  let query_rows =
    List.map
      (fun (name, ast) ->
        row name (fun () -> ignore (Xomatiq.Engine.run warehouse ast)))
      asts
  in
  let rows = harvest_row :: query_rows in
  (* machine-readable trajectory for future PRs to diff against *)
  let json_times times fmt =
    "{"
    ^ String.concat ", " (List.map (fun (j, v) -> Printf.sprintf fmt j v) times)
    ^ "}"
  in
  let workload_json (name, times) =
    let t1 = List.assoc 1 times in
    let speedups = List.map (fun (j, t) -> (j, t1 /. t)) times in
    let efficiencies =
      List.map (fun (j, s) -> (j, s /. float_of_int j)) speedups
    in
    Printf.sprintf
      "    { \"name\": %S,\n\
      \      \"seconds\": %s,\n\
      \      \"speedup\": %s,\n\
      \      \"efficiency\": %s }"
      name
      (json_times times "\"%d\": %.6f")
      (json_times speedups "\"%d\": %.3f")
      (json_times efficiencies "\"%d\": %.3f")
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"experiment\": \"E6-scaling\",\n\
      \  \"generated_by\": \"bench/main.ml\",\n\
      \  \"scale\": %d,\n\
      \  \"host_cores\": %d,\n\
      \  \"par_threshold\": %s,\n\
      \  \"jobs\": [%s],\n\
      \  \"workloads\": [\n%s\n  ]\n}\n"
      scale
      (Domain.recommended_domain_count ())
      (match Sys.getenv_opt "XOMATIQ_PAR_THRESHOLD" with
       | Some s when int_of_string_opt (String.trim s) <> None -> String.trim s
       | _ -> "2000")
      (String.concat ", " (List.map string_of_int scaling_jobs))
      (String.concat ",\n" (List.map workload_json rows))
  in
  let path =
    match Sys.getenv_opt "XOMATIQ_BENCH_JSON" with
    | Some p when String.trim p <> "" -> p
    | _ -> "BENCH_E6.json"
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* E9: the bioinformatics task mix (paper citation [38], Section 3.2 claim) *)
let print_e9 () =
  print_newline ();
  Printf.printf
    "E9: bioinformatics task mix (Stevens et al. classes; %d docs/source)\n" scale;
  Printf.printf "%-20s %8s %14s %14s\n" "task class" "queries" "ad-hoc (ms)"
    "prepared (ms)";
  Printf.printf "%s\n" (String.make 60 '-');
  let u =
    Workload.Genbio.generate
      { Workload.Genbio.seed = 42; n_enzymes = scale; n_embl = scale;
        n_sprot = scale; n_citations = scale; cdc6_rate = 0.03;
        ketone_rate = 0.08; ec_link_rate = 0.5; seq_length = 120 }
  in
  let wh = Datahounds.Warehouse.create () in
  (match Workload.Genbio.load_universe wh u with
   | Ok () -> ()
   | Error m -> failwith m);
  List.iter
    (fun cls ->
      let texts = Workload.Query_mix.generate ~seed:7 ~universe:u ~count:10 cls in
      let asts = List.map Xomatiq.Parser.parse texts in
      let prepared = List.map (Xomatiq.Engine.prepare wh) asts in
      let adhoc =
        time_median (fun () ->
            List.iter (fun ast -> ignore (Xomatiq.Engine.run wh ast)) asts)
      in
      let prep =
        time_median (fun () ->
            List.iter (fun p -> ignore (Xomatiq.Engine.run_prepared p)) prepared)
      in
      Printf.printf "%-20s %8d %14.2f %14.2f\n"
        (Workload.Query_mix.class_name cls)
        (List.length asts)
        (ms adhoc /. float_of_int (List.length asts))
        (ms prep /. float_of_int (List.length asts)))
    Workload.Query_mix.all_classes;
  Datahounds.Warehouse.close wh

(* ------------------------------------------------------------------ *)
(* E7-structural: stack-based containment join vs hash/NLJ baseline    *)
(* ------------------------------------------------------------------ *)

(* The Fig. 8/9/11 region predicates (doc = doc AND lo < pos <= hi)
   executed as hash join on doc_id + containment filter before the
   structural merge join existed; XOMATIQ_STRUCTURAL_JOIN=0 still plans
   them that way. This sweep times both physical strategies on the same
   warehouses and checks the results stay equal.

   The scale dimension is region DENSITY, not document count: Genbio's
   DTDs pin most element multiplicities to one per document, and with a
   single region per doc the doc_id hash join is already linear — only
   constant factors differ. ENZYME's catalytic_activity* is unbounded
   (paper Fig. 6), so the sweep replicates R keyword-bearing CA lines
   per enzyme entry. Fig. 9's containment then pairs R sibling activity
   intervals with R keyword positions per document: the hash join emits
   R^2 candidate pairs per doc and filters them down to R, while the
   stack-based merge walks both sorted lists once. *)

let with_structural enabled f =
  Unix.putenv "XOMATIQ_STRUCTURAL_JOIN" (if enabled then "1" else "0");
  Fun.protect ~finally:(fun () -> Unix.putenv "XOMATIQ_STRUCTURAL_JOIN" "") f

let e7_docs =
  try int_of_string (Sys.getenv "XOMATIQ_BENCH_E7_DOCS") with Not_found -> 40

let densify r u =
  let act k =
    Printf.sprintf "(%d) ATP + a ketone body = ADP + a phospho-ketone" k
  in
  let enzymes =
    List.map
      (fun (e : Datahounds.Enzyme.t) ->
        { e with Datahounds.Enzyme.catalytic_activities = List.init r act })
      u.Workload.Genbio.enzymes
  in
  { u with Workload.Genbio.enzymes }

let print_e7_structural () =
  let scales =
    if Sys.getenv_opt "XOMATIQ_BENCH_SMOKE" <> None then [ 4 ]
    else [ 4; 16; 64 ]
  in
  print_newline ();
  Printf.printf
    "E7-structural: containment merge join vs hash/NLJ baseline (Fig. 8/9/11)\n";
  Printf.printf "%d enzyme/EMBL/SProt docs; scale = catalytic_activity regions per enzyme doc\n"
    e7_docs;
  Printf.printf "%-22s %7s %14s %14s %9s\n" "query" "density" "baseline (ms)"
    "structural (ms)" "speedup";
  Printf.printf "%s\n" (String.make 70 '-');
  let measurements =
    List.map
      (fun n ->
        let wh = build_warehouse (densify n (universe_of e7_docs)) in
        let per_query =
          List.map
            (fun (name, ast) ->
              let base_rows =
                with_structural false (fun () -> (Xomatiq.Engine.run wh ast).rows)
              in
              let sj_rows =
                with_structural true (fun () -> (Xomatiq.Engine.run wh ast).rows)
              in
              if base_rows <> sj_rows then
                failwith
                  (Printf.sprintf
                     "E7-structural: results diverge on %s at scale %d" name n);
              let t_base =
                with_structural false (fun () ->
                    time_median (fun () -> ignore (Xomatiq.Engine.run wh ast)))
              in
              let t_sj =
                with_structural true (fun () ->
                    time_median (fun () -> ignore (Xomatiq.Engine.run wh ast)))
              in
              Printf.printf "%-22s %7d %14.2f %14.2f %8.2fx\n" name n
                (ms t_base) (ms t_sj) (t_base /. t_sj);
              (name, t_base, t_sj))
            asts
        in
        Datahounds.Warehouse.close wh;
        (n, per_query))
      scales
  in
  (* machine-readable before/after trajectory, keyed per query *)
  let per_scale which =
    List.map (fun (n, per_query) ->
        (n, List.map (fun (name, b, s) -> (name, which b s)) per_query))
      measurements
  in
  let series name rows =
    "{"
    ^ String.concat ", "
        (List.map
           (fun (n, per_query) ->
             Printf.sprintf "\"%d\": %.6f" n (List.assoc name per_query))
           rows)
    ^ "}"
  in
  let query_json name =
    Printf.sprintf
      "    { \"name\": %S,\n\
      \      \"baseline_seconds\": %s,\n\
      \      \"structural_seconds\": %s,\n\
      \      \"speedup\": %s }"
      name
      (series name (per_scale (fun b _ -> b)))
      (series name (per_scale (fun _ s -> s)))
      (series name (per_scale (fun b s -> b /. s)))
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"experiment\": \"E7-structural\",\n\
      \  \"generated_by\": \"bench/main.ml\",\n\
      \  \"host_cores\": %d,\n\
      \  \"baseline\": \"XOMATIQ_STRUCTURAL_JOIN=0 (hash join on doc_id + containment filter)\",\n\
      \  \"scale_kind\": \"region_density (catalytic_activity elements per enzyme doc)\",\n\
      \  \"documents\": %d,\n\
      \  \"scales\": [%s],\n\
      \  \"queries\": [\n%s\n  ]\n}\n"
      (Domain.recommended_domain_count ())
      e7_docs
      (String.concat ", " (List.map string_of_int scales))
      (String.concat ",\n"
         (List.map (fun (name, _) -> query_json name) asts))
  in
  let path =
    match Sys.getenv_opt "XOMATIQ_BENCH_E7_JSON" with
    | Some p when String.trim p <> "" -> p
    | _ -> "BENCH_E7.json"
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* E9-vectorized: batch executor + rewrites vs iterator baseline       *)
(* ------------------------------------------------------------------ *)

(* The vectorized executor (XOMATIQ_VEC=1, the default) runs the same
   physical plans over 1-4K-row column batches after the rewrite pass;
   XOMATIQ_VEC=0 is the row-at-a-time iterator reference. This sweep
   times both at jobs=1 on the E7 density warehouses (Fig. 9's subtree
   containment, where per-row iterator overhead dominates at high
   density) and on the E1-E3 figure mix at the default scale, checking
   results stay equal. *)

let with_vec v f =
  Unix.putenv "XOMATIQ_VEC" v;
  Fun.protect ~finally:(fun () -> Unix.putenv "XOMATIQ_VEC" "") f

let print_e9_vectorized () =
  let scales =
    if Sys.getenv_opt "XOMATIQ_BENCH_SMOKE" <> None then [ 4 ]
    else [ 4; 16; 64 ]
  in
  print_newline ();
  Printf.printf
    "E9-vectorized: batch executor vs iterator baseline (jobs=1)\n";
  Printf.printf
    "density sweep: %d enzyme docs, Fig. 9 subtree; mix: %d docs/source\n"
    e7_docs scale;
  Printf.printf "%-22s %7s %14s %14s %9s\n" "query" "density"
    "iterator (ms)" "batch (ms)" "speedup";
  Printf.printf "%s\n" (String.make 70 '-');
  let fig9_ast = List.assoc "E2-subtree-fig9" asts in
  let measure wh ast =
    Conc.Pool.with_jobs 1 @@ fun () ->
    let iter_rows = with_vec "0" (fun () -> (Xomatiq.Engine.run wh ast).Xomatiq.Engine.rows) in
    let batch_rows = with_vec "1" (fun () -> (Xomatiq.Engine.run wh ast).Xomatiq.Engine.rows) in
    if iter_rows <> batch_rows then
      failwith "E9-vectorized: batch and iterator results diverge";
    (* the figure queries run in single-digit milliseconds, so a median
       of 3 back-to-back runs is noise-bound on a busy host — and
       measuring one executor wholly before the other hands the second
       a heap the first just grew. Interleave the samples (one iterator
       run, one batch run, repeated) and take each side's median. *)
    let sample vec k =
      with_vec vec (fun () ->
          (* start every sample from the same heap state: collecting
             up front keeps the major-GC debt of warehouse construction
             (and of the previous sample) from being charged to
             whichever run it would otherwise land on *)
          Gc.full_major ();
          let t0 = Unix.gettimeofday () in
          for _ = 1 to k do
            ignore (Xomatiq.Engine.run wh ast)
          done;
          (Unix.gettimeofday () -. t0) /. float_of_int k)
    in
    (* block size: enough back-to-back runs per sample that one sample
       spans ~2ms of work — the sub-millisecond mix queries measured one
       run at a time are dominated by timer quantization and whichever
       run a minor GC lands on *)
    let approx = min (sample "0" 1) (sample "1" 1) in
    let k = max 1 (min 32 (int_of_float (ceil (0.002 /. max 1e-6 approx)))) in
    let pairs = List.init 9 (fun _ -> (sample "0" k, sample "1" k)) in
    (* both executors are deterministic, so the fastest observed sample
       is the one least contaminated by scheduler/GC noise *)
    let best l = List.fold_left min infinity l in
    (best (List.map fst pairs), best (List.map snd pairs))
  in
  let density_rows =
    List.map
      (fun n ->
        let wh = build_warehouse (densify n (universe_of e7_docs)) in
        let t_iter, t_batch = measure wh fig9_ast in
        Printf.printf "%-22s %7d %14.2f %14.2f %8.2fx\n" "E2-subtree-fig9" n
          (ms t_iter) (ms t_batch) (t_iter /. t_batch);
        Datahounds.Warehouse.close wh;
        (n, t_iter, t_batch))
      scales
  in
  let mix_rows =
    List.map
      (fun (name, ast) ->
        let t_iter, t_batch = measure warehouse ast in
        Printf.printf "%-22s %7s %14.2f %14.2f %8.2fx\n" name "mix"
          (ms t_iter) (ms t_batch) (t_iter /. t_batch);
        (name, t_iter, t_batch))
      asts
  in
  let series which =
    "{"
    ^ String.concat ", "
        (List.map
           (fun (n, i, b) -> Printf.sprintf "\"%d\": %.6f" n (which i b))
           density_rows)
    ^ "}"
  in
  let mix_json =
    String.concat ",\n"
      (List.map
         (fun (name, i, b) ->
           Printf.sprintf
             "    { \"name\": %S, \"iterator_seconds\": %.6f, \
              \"batch_seconds\": %.6f, \"speedup\": %.3f }"
             name i b (i /. b))
         mix_rows)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"experiment\": \"E9-vectorized\",\n\
      \  \"generated_by\": \"bench/main.ml\",\n\
      \  \"host_cores\": %d,\n\
      \  \"baseline\": \"XOMATIQ_VEC=0 (row-at-a-time iterator executor)\",\n\
      \  \"jobs\": 1,\n\
      \  \"documents\": %d,\n\
      \  \"scales\": [%s],\n\
      \  \"density_sweep\": {\n\
      \    \"query\": \"E2-subtree-fig9\",\n\
      \    \"iterator_seconds\": %s,\n\
      \    \"batch_seconds\": %s,\n\
      \    \"speedup\": %s\n\
      \  },\n\
      \  \"mix_scale\": %d,\n\
      \  \"mix\": [\n%s\n  ]\n}\n"
      (Domain.recommended_domain_count ())
      e7_docs
      (String.concat ", " (List.map string_of_int scales))
      (series (fun i _ -> i))
      (series (fun _ b -> b))
      (series (fun i b -> i /. b))
      scale mix_json
  in
  let path =
    match Sys.getenv_opt "XOMATIQ_BENCH_E9_JSON" with
    | Some p when String.trim p <> "" -> p
    | _ -> "BENCH_E9.json"
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* E8-throughput: the gRNA service layer under concurrent load         *)
(* ------------------------------------------------------------------ *)

(* Closed-loop multi-client benchmark against an in-process TCP server:
   each client thread connects, then fires the Fig. 8/9/11 query mix
   back to back for a fixed wall-clock window, recording per-request
   latency. Sweeping client count x worker domains shows where the
   service scales (pool-parallel execution) and where it serializes
   (jobs=1: every session executes inline under the runtime lock). *)

let e8t_duration =
  match Sys.getenv_opt "XOMATIQ_BENCH_E8_SECS" with
  | Some s -> (try float_of_string s with Failure _ -> 2.0)
  | None -> if Sys.getenv_opt "XOMATIQ_BENCH_SMOKE" <> None then 0.5 else 2.0

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int (n - 1) +. 0.5)))

let e8t_cell port ~clients =
  let texts = Array.of_list (List.map snd queries) in
  let latencies = Array.make clients [] in
  let counts = Array.make clients 0 in
  let failures = Array.make clients None in
  let stop_at = ref infinity in
  let barrier = Atomic.make 0 in
  let worker i () =
    try
      let c = Xserver.Client.connect ~retry_for_s:5. ~timeout_s:60. ~port () in
      Fun.protect ~finally:(fun () -> Xserver.Client.close c) @@ fun () ->
      (* warm up: plan-cache misses and connection setup stay out of the
         measured window *)
      Array.iter (fun q -> ignore (Xserver.Client.query c q)) texts;
      Atomic.incr barrier;
      while Atomic.get barrier < clients do Thread.yield () done;
      let rec pump k =
        if Unix.gettimeofday () < !stop_at then begin
          let text = texts.(k mod Array.length texts) in
          let t0 = Unix.gettimeofday () in
          ignore (Xserver.Client.query c text);
          latencies.(i) <- (Unix.gettimeofday () -. t0) :: latencies.(i);
          counts.(i) <- counts.(i) + 1;
          pump (k + 1)
        end
      in
      pump i
    with e -> failures.(i) <- Some (Printexc.to_string e)
  in
  (* the window opens once every client is connected and warm *)
  let opener =
    Thread.create
      (fun () ->
        while Atomic.get barrier < clients do Thread.yield () done;
        stop_at := Unix.gettimeofday () +. e8t_duration)
      ()
  in
  let threads = List.init clients (fun i -> Thread.create (worker i) ()) in
  List.iter Thread.join threads;
  Thread.join opener;
  Array.iter
    (function
      | Some m -> failwith ("E8-throughput client failed: " ^ m)
      | None -> ())
    failures;
  let samples =
    Array.of_list (List.concat (Array.to_list latencies))
  in
  Array.sort compare samples;
  let requests = Array.fold_left ( + ) 0 counts in
  let qps = float_of_int requests /. e8t_duration in
  (requests, qps, percentile samples 0.50, percentile samples 0.95,
   percentile samples 0.99)

let proc_status_int field =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    let flen = String.length field in
    let rec go () =
      match input_line ic with
      | line ->
        if String.length line > flen && String.sub line 0 flen = field then
          let digits =
            String.fold_left
              (fun acc ch ->
                if ch >= '0' && ch <= '9' then acc ^ String.make 1 ch else acc)
              "" line
          in
          int_of_string_opt digits |> Option.value ~default:0
        else go ()
      | exception End_of_file -> 0
    in
    let v = go () in
    close_in ic;
    v

(* Idle-connections axis: park N handshaken-but-silent connections, then
   run the closed-loop single-client cell. Under the reactor an idle
   connection is a pollfd entry plus ~12 KiB of buffers — the floors
   below assert the active client keeps >= 0.9x of its 0-idle QPS and
   that the thread count does not scale with the herd. *)
let e8t_idle_cells () =
  let smoke = Sys.getenv_opt "XOMATIQ_BENCH_SMOKE" <> None in
  let idle_levels = if smoke then [ 0; 100 ] else [ 0; 100; 1000 ] in
  ignore (Conc.Reactor.raise_fd_limit 8192);
  Printf.printf
    "\nE8-idle: 1 active closed-loop client among parked idle connections \
     (jobs=1)\n";
  Printf.printf "%-8s %9s %9s %10s %10s %9s\n" "idle" "requests" "QPS"
    "p50 (ms)" "p95 (ms)" "threads+";
  Printf.printf "%s\n" (String.make 60 '-');
  let cells =
    List.map
      (fun idle ->
        let cfg =
          { Xserver.Server.default_config with
            host = "127.0.0.1"; port = 0; max_clients = idle + 8 }
        in
        let server = Xserver.Server.start cfg warehouse in
        let port = Xserver.Server.port server in
        let threads_before = proc_status_int "Threads:" in
        let conns =
          Array.init idle (fun _ ->
              Xserver.Client.connect ~retry_for_s:5. ~port ())
        in
        let thread_delta = proc_status_int "Threads:" - threads_before in
        (* Smoke cells are 0.5 s: on a noisy shared host two single-shot
           windows can differ by 10-15% from CPU interference alone,
           which flakes the 0.9x floor below. Interference is one-sided
           (it only slows a cell down), so best-of-2 is the right
           estimator for a floor check at smoke scale. *)
        let attempts = if smoke then 2 else 1 in
        let measure () = e8t_cell port ~clients:1 in
        let best = ref (measure ()) in
        for _ = 2 to attempts do
          let (_, q, _, _, _) as m = measure () in
          let _, best_q, _, _, _ = !best in
          if q > best_q then best := m
        done;
        let requests, qps, p50, p95, _ = !best in
        Array.iter (fun c -> try Xserver.Client.close c with _ -> ()) conns;
        Xserver.Server.request_stop server;
        Xserver.Server.wait server;
        Printf.printf "%-8d %9d %9.1f %10.3f %10.3f %9d\n%!" idle requests qps
          (ms p50) (ms p95) thread_delta;
        (idle, requests, qps, p50, p95, thread_delta))
      idle_levels
  in
  (match cells with
   | (_, _, base_qps, _, _, _) :: rest ->
     List.iter
       (fun (idle, _, qps, _, _, thread_delta) ->
         if qps < 0.9 *. base_qps then
           failwith
             (Printf.sprintf
                "E8-idle regression: %d idle connections drop the active \
                 client to %.1f QPS, below 0.9x of the 0-idle baseline \
                 (%.1f QPS)"
                idle qps base_qps);
         if thread_delta > 2 then
           failwith
             (Printf.sprintf
                "E8-idle regression: %d idle connections grew the thread \
                 count by %d — idle cost must not scale with connections"
                idle thread_delta))
       rest
   | [] -> ());
  cells

(* Pipeline-window axis: one client streams a cheap request mix with
   xomatiq/1 pipelining at W in {1, 8, 32}. What pipelining removes is
   per-request wire overhead — syscalls, wakeups, client/server context
   switches — so the mix here is protocol-bound by construction: trivial
   SQL probes whose execution is a few microseconds. (The Fig. 8/9/11
   FLWR queries spend 50-160 us in the engine per request, which caps
   even a perfect pipeline below 1.4x and says nothing about the wire;
   the jobs x clients table already covers them.) W=8 must clear 1.3x of
   the W=1 QPS. *)
let e8t_pipeline_cells () =
  let windows = [ 1; 8; 32 ] in
  let cheap =
    [| "SELECT 1"; "SELECT path FROM xml_path LIMIT 1" |]
  in
  let batch =
    List.init 64 (fun i -> cheap.(i mod Array.length cheap))
  in
  Printf.printf
    "\nE8-pipeline: xomatiq/1 pipelining, protocol-bound SQL mix, 1 client \
     (jobs=1)\n";
  Printf.printf "%-8s %9s %9s\n" "window" "requests" "QPS";
  Printf.printf "%s\n" (String.make 30 '-');
  let cfg =
    { Xserver.Server.default_config with host = "127.0.0.1"; port = 0 }
  in
  let server = Xserver.Server.start cfg warehouse in
  let port = Xserver.Server.port server in
  let cells =
    List.map
      (fun window ->
        let c =
          Xserver.Client.connect ~retry_for_s:5. ~timeout_s:60. ~port ()
        in
        Fun.protect ~finally:(fun () -> Xserver.Client.close c) @@ fun () ->
        let run_batch () =
          List.iter
            (function
              | Ok _ -> ()
              | Error (code, m) ->
                failwith
                  (Printf.sprintf "E8-pipeline query failed: [%s] %s" code m))
            (Xserver.Client.query_pipelined ~sql:true ~window c batch)
        in
        run_batch ();  (* warm: plan cache, session, TCP *)
        let t0 = Unix.gettimeofday () in
        let stop_at = t0 +. e8t_duration in
        let requests = ref 0 in
        while Unix.gettimeofday () < stop_at do
          run_batch ();
          requests := !requests + List.length batch
        done;
        let qps = float_of_int !requests /. (Unix.gettimeofday () -. t0) in
        Printf.printf "%-8d %9d %9.1f\n%!" window !requests qps;
        (window, !requests, qps))
      windows
  in
  Xserver.Server.request_stop server;
  Xserver.Server.wait server;
  let qps_at w =
    List.find_map (fun (w', _, q) -> if w' = w then Some q else None) cells
  in
  (match (qps_at 1, qps_at 8) with
   | Some base, Some piped when piped < 1.3 *. base ->
     failwith
       (Printf.sprintf
          "E8-pipeline regression: W=8 runs at %.1f QPS, below 1.3x of the \
           W=1 baseline (%.1f QPS)"
          piped base)
   | _ -> ());
  cells

let print_e8_throughput () =
  let smoke = Sys.getenv_opt "XOMATIQ_BENCH_SMOKE" <> None in
  let client_counts = if smoke then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  (* smoke includes jobs=1 AND jobs=2 so CI can assert the adaptive
     scheduler keeps jobs=2 within 0.8x of the jobs=1 single-client QPS
     (the regression that motivated it: unconditional dispatch dropped
     jobs=2 single-client throughput by ~7x) *)
  let jobs_levels = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let saved_jobs = Conc.Pool.jobs () in
  print_newline ();
  Printf.printf
    "E8-throughput: concurrent TCP query service, closed-loop clients (%.1fs per cell)\n"
    e8t_duration;
  warn_if_single_core "E8-throughput";
  Printf.printf "%-6s %-8s %9s %9s %10s %10s %10s\n" "jobs" "clients"
    "requests" "QPS" "p50 (ms)" "p95 (ms)" "p99 (ms)";
  Printf.printf "%s\n" (String.make 68 '-');
  let cfg = { Xserver.Server.default_config with host = "127.0.0.1"; port = 0 } in
  let cells =
    List.concat_map
      (fun jobs ->
        Conc.Pool.set_jobs jobs;
        let server = Xserver.Server.start cfg warehouse in
        let port = Xserver.Server.port server in
        let rows =
          List.map
            (fun clients ->
              let requests, qps, p50, p95, p99 = e8t_cell port ~clients in
              Printf.printf "%-6d %-8d %9d %9.1f %10.3f %10.3f %10.3f\n%!"
                jobs clients requests qps (ms p50) (ms p95) (ms p99);
              (jobs, clients, requests, qps, p50, p95, p99))
            client_counts
        in
        Xserver.Server.request_stop server;
        Xserver.Server.wait server;
        rows)
      jobs_levels
  in
  Conc.Pool.set_jobs saved_jobs;
  (* The E8 acceptance bar: granting workers must never cost a lone
     client its throughput. Any jobs>1 cell must stay within 0.8x of the
     jobs=1 QPS at the same client count. *)
  let qps_at jobs clients =
    List.find_map
      (fun (j, c, _, qps, _, _, _) ->
        if j = jobs && c = clients then Some qps else None)
      cells
  in
  List.iter
    (fun (jobs, clients, _, qps, _, _, _) ->
      if jobs > 1 then
        match qps_at 1 clients with
        | Some base when qps < 0.8 *. base ->
          failwith
            (Printf.sprintf
               "E8-throughput regression: jobs=%d clients=%d runs at %.1f \
                QPS, below 0.8x of the jobs=1 baseline (%.1f QPS)"
               jobs clients qps base)
        | _ -> ())
    cells;
  (* the reactor-era axes: parked connections and pipelining *)
  Conc.Pool.set_jobs 1;
  let idle_cells = e8t_idle_cells () in
  let pipeline_cells = e8t_pipeline_cells () in
  Conc.Pool.set_jobs saved_jobs;
  let cell_json (jobs, clients, requests, qps, p50, p95, p99) =
    Printf.sprintf
      "    { \"jobs\": %d, \"clients\": %d, \"requests\": %d, \"qps\": %.2f, \
       \"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f }"
      jobs clients requests qps (ms p50) (ms p95) (ms p99)
  in
  let idle_cell_json (idle, requests, qps, p50, p95, thread_delta) =
    Printf.sprintf
      "    { \"idle_connections\": %d, \"requests\": %d, \"qps\": %.2f, \
       \"p50_ms\": %.4f, \"p95_ms\": %.4f, \"thread_delta\": %d }"
      idle requests qps (ms p50) (ms p95) thread_delta
  in
  let pipeline_cell_json (window, requests, qps) =
    Printf.sprintf
      "    { \"window\": %d, \"requests\": %d, \"qps\": %.2f }" window
      requests qps
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"experiment\": \"E8-throughput\",\n\
      \  \"generated_by\": \"bench/main.ml\",\n\
      \  \"scale\": %d,\n\
      \  \"host_cores\": %d,\n\
      \  \"duration_seconds\": %.2f,\n\
      \  \"workload\": [%s],\n\
      \  \"pipeline_workload\": [\"SELECT 1\", \"SELECT path FROM xml_path \
       LIMIT 1\"],\n\
      \  \"cells\": [\n%s\n  ],\n\
      \  \"idle_cells\": [\n%s\n  ],\n\
      \  \"pipeline_cells\": [\n%s\n  ]\n}\n"
      scale
      (Domain.recommended_domain_count ())
      e8t_duration
      (String.concat ", "
         (List.map (fun (n, _) -> Printf.sprintf "%S" n) queries))
      (String.concat ",\n" (List.map cell_json cells))
      (String.concat ",\n" (List.map idle_cell_json idle_cells))
      (String.concat ",\n" (List.map pipeline_cell_json pipeline_cells))
  in
  let path =
    match Sys.getenv_opt "XOMATIQ_BENCH_E8_JSON" with
    | Some p when String.trim p <> "" -> p
    | _ -> "BENCH_E8.json"
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* E10-outofcore: the paged storage backend                            *)
(* ------------------------------------------------------------------ *)

(* Three claims about the out-of-core backend (DESIGN.md, "Out-of-core
   paged storage"):

   1. spool-then-load harvest beats per-document installs into the same
      disk backend — one WAL record and bottom-up index builds per table
      vs per-row logging and incremental B+tree maintenance;
   2. a warehouse many times the buffer-pool budget still harvests and
      answers the Fig. 8/9/11 mix, with memory bounded by the pool
      (a non-zero eviction count proves frames were recycled mid-query);
   3. when the pool does fit the data, the disk backend's query latency
      stays close to the in-memory backend's on the same mix. *)

let with_pool_pages n f =
  let saved = Sys.getenv_opt "XOMATIQ_POOL_PAGES" in
  Unix.putenv "XOMATIQ_POOL_PAGES" (string_of_int n);
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "XOMATIQ_POOL_PAGES" (Option.value saved ~default:""))
    f

let with_fresh_dir f =
  let dir = Filename.temp_file "xomatiq_e10" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then
        ignore (Sys.command ("rm -rf " ^ Filename.quote dir)))
    (fun () -> f dir)

(* bytes of heap pages and index pages under a storage directory *)
let rec dir_bytes path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_REG; st_size; _ } -> st_size
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.fold_left
      (fun acc name -> acc + dir_bytes (Filename.concat path name))
      0 (Sys.readdir path)
  | _ -> 0
  | exception Unix.Unix_error _ -> 0

let median l =
  let a = Array.of_list l in
  Array.sort compare a;
  a.(Array.length a / 2)

let print_e10_outofcore () =
  Printf.printf "\nE10-outofcore: paged storage backend (scale=%d)\n" scale;
  let flat = enzyme_flat in
  let src = Datahounds.Warehouse.enzyme_source in
  (* -------- load: spool-then-bulk-load vs per-document installs ---- *)
  (* Same parse + validate work on both sides; what differs is the
     install: harvest spools rows and bulk-appends pages under one Load
     record per table, load_document inserts row by row. The bulk side's
     install time is the harvest wall clock minus its reported
     transform/validate stages. *)
  let bulk_install_s =
    with_fresh_dir @@ fun dir ->
    let wh = Datahounds.Warehouse.create ~data_dir:dir () in
    Fun.protect ~finally:(fun () -> Datahounds.Warehouse.close wh)
    @@ fun () ->
    Datahounds.Warehouse.register_source wh src;
    let t0 = Unix.gettimeofday () in
    match Datahounds.Warehouse.harvest_stats ~analyze:false wh src flat with
    | Error m -> failwith ("E10 bulk harvest: " ^ m)
    | Ok st ->
      Unix.gettimeofday () -. t0
      -. st.Datahounds.Warehouse.transform_s
      -. st.Datahounds.Warehouse.validate_s
  in
  let perrow_install_s, docs =
    with_fresh_dir @@ fun dir ->
    let wh = Datahounds.Warehouse.create ~data_dir:dir () in
    Fun.protect ~finally:(fun () -> Datahounds.Warehouse.close wh)
    @@ fun () ->
    Datahounds.Warehouse.register_source wh src;
    let parsed = src.Datahounds.Warehouse.transform flat in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (name, doc) ->
        match
          Datahounds.Warehouse.load_document ~validate:false wh
            ~collection:src.Datahounds.Warehouse.source_collection ~name doc
        with
        | Ok () -> ()
        | Error m -> failwith ("E10 per-row load: " ^ m))
      parsed;
    (Unix.gettimeofday () -. t0, List.length parsed)
  in
  Printf.printf
    "  load (%d docs, disk): bulk %.1f ms, per-row %.1f ms  (%.2fx)\n" docs
    (bulk_install_s *. 1000.) (perrow_install_s *. 1000.)
    (perrow_install_s /. bulk_install_s);
  (* -------- out-of-core: warehouse >> pool, bounded memory --------- *)
  let tiny_pool_pages = 64 in (* 512 KiB of frames *)
  let hwm_before_kb = proc_status_int "VmHWM" in
  let ooc_harvest_s, ooc_mix, ooc_data_bytes, ooc_evictions =
    with_pool_pages tiny_pool_pages @@ fun () ->
    with_fresh_dir @@ fun dir ->
    let wh = Datahounds.Warehouse.create ~data_dir:dir () in
    Fun.protect ~finally:(fun () -> Datahounds.Warehouse.close wh)
    @@ fun () ->
    let t0 = Unix.gettimeofday () in
    (match Workload.Genbio.load_universe wh universe with
     | Ok () -> ()
     | Error m -> failwith ("E10 out-of-core harvest: " ^ m));
    let harvest_s = Unix.gettimeofday () -. t0 in
    let ev0 = Rdb.Bufpool.pool_evictions () in
    let mix =
      List.map
        (fun (name, ast) ->
          let samples =
            List.init 5 (fun _ ->
                let t0 = Unix.gettimeofday () in
                ignore (Xomatiq.Engine.run wh ast);
                Unix.gettimeofday () -. t0)
          in
          (name, median samples))
        asts
    in
    (harvest_s, mix, dir_bytes dir, Rdb.Bufpool.pool_evictions () - ev0)
  in
  let hwm_after_kb = proc_status_int "VmHWM" in
  let pool_bytes = tiny_pool_pages * Rdb.Bufpool.page_size in
  Printf.printf
    "  out-of-core: %.1f MiB of pages through a %d KiB pool (%.1fx), \
     harvest %.0f ms, %d evictions during the mix\n"
    (float_of_int ooc_data_bytes /. 1048576.)
    (pool_bytes / 1024)
    (float_of_int ooc_data_bytes /. float_of_int pool_bytes)
    (ooc_harvest_s *. 1000.) ooc_evictions;
  List.iter
    (fun (name, s) -> Printf.printf "    %-22s %8.2f ms\n" name (s *. 1000.))
    ooc_mix;
  Printf.printf "  VmHWM %d -> %d KiB across the out-of-core phase\n"
    hwm_before_kb hwm_after_kb;
  (* -------- pool fits: disk latency vs the in-memory backend ------- *)
  let run_mix wh =
    List.map
      (fun (name, ast) ->
        ignore (Xomatiq.Engine.run wh ast); (* warm plans and pool *)
        let samples =
          List.init 7 (fun _ ->
              Gc.full_major ();
              let t0 = Unix.gettimeofday () in
              ignore (Xomatiq.Engine.run wh ast);
              Unix.gettimeofday () -. t0)
        in
        (name, median samples))
      asts
  in
  let mem_mix = run_mix warehouse in
  let disk_mix =
    with_fresh_dir @@ fun dir ->
    let wh = Datahounds.Warehouse.create ~data_dir:dir () in
    Fun.protect ~finally:(fun () -> Datahounds.Warehouse.close wh)
    @@ fun () ->
    (match Workload.Genbio.load_universe wh universe with
     | Ok () -> ()
     | Error m -> failwith ("E10 pool-fits harvest: " ^ m));
    run_mix wh
  in
  Printf.printf "  pool fits (default %d-page pool): disk vs mem\n" 2048;
  let fits =
    List.map
      (fun (name, mem_s) ->
        let disk_s = List.assoc name disk_mix in
        Printf.printf "    %-22s mem %8.2f ms  disk %8.2f ms  (%.2fx)\n"
          name (mem_s *. 1000.) (disk_s *. 1000.) (mem_s /. disk_s);
        (name, mem_s, disk_s))
      mem_mix
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"experiment\": \"E10-outofcore\",\n\
      \  \"generated_by\": \"bench/main.ml\",\n\
      \  \"scale\": %d,\n\
      \  \"host_cores\": %d,\n\
      \  \"page_size\": %d,\n\
      \  \"load\": {\n\
      \    \"documents\": %d,\n\
      \    \"bulk_install_seconds\": %.6f,\n\
      \    \"per_row_install_seconds\": %.6f,\n\
      \    \"speedup\": %.3f\n\
      \  },\n\
      \  \"out_of_core\": {\n\
      \    \"pool_pages\": %d,\n\
      \    \"data_bytes\": %d,\n\
      \    \"data_over_pool\": %.2f,\n\
      \    \"harvest_seconds\": %.6f,\n\
      \    \"evictions_during_mix\": %d,\n\
      \    \"vm_hwm_before_kb\": %d,\n\
      \    \"vm_hwm_after_kb\": %d,\n\
      \    \"mix\": {%s}\n\
      \  },\n\
      \  \"pool_fits\": [\n%s\n  ]\n}\n"
      scale
      (Domain.recommended_domain_count ())
      Rdb.Bufpool.page_size docs bulk_install_s perrow_install_s
      (perrow_install_s /. bulk_install_s)
      tiny_pool_pages ooc_data_bytes
      (float_of_int ooc_data_bytes /. float_of_int pool_bytes)
      ooc_harvest_s ooc_evictions hwm_before_kb hwm_after_kb
      (String.concat ", "
         (List.map
            (fun (n, s) -> Printf.sprintf "%S: %.6f" n s)
            ooc_mix))
      (String.concat ",\n"
         (List.map
            (fun (n, mem_s, disk_s) ->
              Printf.sprintf
                "    { \"name\": %S, \"mem_seconds\": %.6f, \
                 \"disk_seconds\": %.6f, \"mem_over_disk\": %.3f }"
                n mem_s disk_s (mem_s /. disk_s))
            fits))
  in
  let path =
    match Sys.getenv_opt "XOMATIQ_BENCH_E10_JSON" with
    | Some p when String.trim p <> "" -> p
    | _ -> "BENCH_E10.json"
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* E11-replication: WAL-shipped read replicas                          *)
(* ------------------------------------------------------------------ *)

(* Three claims about the replication subsystem (lib/replication):

     read scale-out  routing reads through two replicas must beat the
                     primary-only closed-loop read QPS by >= 1.5x. Each
                     serve is its own OS process: OCaml 5 systhreads
                     share one domain's runtime lock, so in-process
                     "replicas" cannot add read capacity — the bench
                     spawns the CLI binary (XOMATIQ_BIN overrides the
                     default dune path).
     bounded lag     a replica streaming behind a sustained write load
                     catches up to the primary's final position within
                     seconds of the writes stopping.
     flat WAL        periodic checkpoints truncate the replica-acked
                     prefix, so insert/delete churn cycles do not grow
                     the primary's on-disk WAL without bound. *)

let e11_duration =
  match Sys.getenv_opt "XOMATIQ_BENCH_E11_SECS" with
  | Some s -> (try float_of_string s with Failure _ -> 2.0)
  | None -> if Sys.getenv_opt "XOMATIQ_BENCH_SMOKE" <> None then 0.6 else 2.0

(* pull ["field": N] out of a METRICS JSON payload — the server renders
   integers with at most spaces after the colon (same trick the routed
   client uses for its read-your-writes probes) *)
let e11_json_int payload field =
  let needle = Printf.sprintf "\"%s\":" field in
  let plen = String.length payload and nlen = String.length needle in
  let rec find i =
    if i + nlen > plen then None
    else if String.sub payload i nlen = needle then begin
      let j = ref (i + nlen) in
      while !j < plen && payload.[!j] = ' ' do incr j done;
      let k = ref !j in
      while
        !k < plen
        && (match payload.[!k] with '0' .. '9' | '-' -> true | _ -> false)
      do
        incr k
      done;
      if !k > !j then int_of_string_opt (String.sub payload !j (!k - !j))
      else None
    end
    else find (i + 1)
  in
  find 0

let e11_spawn ~log bin args =
  let fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  Unix.create_process bin (Array.of_list (bin :: args)) Unix.stdin fd fd

let e11_stop pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let deadline = Unix.gettimeofday () +. 10. in
  let rec reap () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid)
      end
      else begin
        Thread.delay 0.05;
        reap ()
      end
    | _ -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  in
  reap ()

let print_e11_replication () =
  print_newline ();
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "E11-replication: WAL-shipped read replicas across serve processes \
     (scale=%d, host cores=%d, %.1fs per read cell)\n"
    scale cores e11_duration;
  warn_if_single_core "E11-replication";
  let bin =
    match Sys.getenv_opt "XOMATIQ_BIN" with
    | Some p when String.trim p <> "" -> p
    | _ -> "./_build/default/bin/xomatiq_cli.exe"
  in
  if not (Sys.file_exists bin) then
    failwith
      (Printf.sprintf
         "E11-replication: CLI binary %s not built — run 'dune build bin' \
          first or point XOMATIQ_BIN at it"
         bin);
  with_fresh_dir @@ fun dir ->
  let path name = Filename.concat dir name in
  let primary_wal = path "primary.wal" in
  (* serve prints no bound port, so pick a pid-derived block of fixed
     ports to keep concurrent bench runs off each other's toes *)
  let base = 18200 + (4 * (Unix.getpid () mod 2000)) in
  let p_port = base and p_repl = base + 1 in
  let r_ports = [ base + 2; base + 3 ] in
  let serve_common =
    [ "serve"; "--host"; "127.0.0.1"; "--max-clients"; "64";
      "--queue-depth"; "32" ]
  in
  let pids = ref [] in
  let spawn ~log args =
    let pid = e11_spawn ~log bin args in
    pids := pid :: !pids;
    pid
  in
  Fun.protect ~finally:(fun () -> List.iter e11_stop !pids) @@ fun () ->
  ignore
    (spawn ~log:(path "primary.log")
       (serve_common
        @ [ "--db"; primary_wal; "--storage"; "disk";
            "--data-dir"; path "primary.pages";
            "--port"; string_of_int p_port;
            "--repl-port"; string_of_int p_repl;
            "--checkpoint-every"; "0.5" ]));
  let pc = Xserver.Client.connect ~retry_for_s:20. ~port:p_port () in
  ignore
    (Xserver.Client.sql pc
       "CREATE TABLE e11 (id INTEGER PRIMARY KEY, grp INTEGER NOT NULL, \
        val INTEGER NOT NULL)");
  List.iteri
    (fun i port ->
      ignore
        (spawn ~log:(path (Printf.sprintf "replica%d.log" i))
           (serve_common
            @ [ "--db"; path (Printf.sprintf "replica%d.wal" i);
                "--port"; string_of_int port;
                "--replicate-from"; Printf.sprintf "127.0.0.1:%d" p_repl ])))
    r_ports;
  let rcs =
    List.map (fun port -> Xserver.Client.connect ~retry_for_s:20. ~port ()) r_ports
  in
  let primary_pos () =
    Option.value ~default:0 (e11_json_int (Xserver.Client.metrics pc) "position")
  in
  let applied c =
    Option.value ~default:(-1) (e11_json_int (Xserver.Client.metrics c) "applied")
  in
  let wait_caught_up ~timeout_s what =
    let target = primary_pos () in
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec go () =
      if List.for_all (fun c -> applied c >= target) rcs then ()
      else if Unix.gettimeofday () > deadline then
        failwith
          (Printf.sprintf
             "E11-replication: replicas still behind position %d after \
              %.0fs (%s); see %s/replica*.log"
             target timeout_s what dir)
      else begin
        Thread.delay 0.05;
        go ()
      end
    in
    go ()
  in
  (* -------- seed through the wire, replicas backfill from pos 0 ---- *)
  let rows = max 200 (min (scale * 10) 2000) in
  let insert id grp v =
    Printf.sprintf "INSERT INTO e11 (id, grp, val) VALUES (%d, %d, %d)" id grp v
  in
  List.iter
    (function
      | Ok _ -> ()
      | Error (code, m) ->
        failwith (Printf.sprintf "E11 seed failed: [%s] %s" code m))
    (Xserver.Client.query_pipelined ~sql:true ~window:32 pc
       (List.init rows (fun i -> insert i (i mod 97) (i * 7 mod 1000))));
  wait_caught_up ~timeout_s:30. "initial backfill";
  (* -------- read scale-out: primary-only vs routed to 2 replicas --- *)
  let read_query = "SELECT SUM(val) FROM e11 WHERE grp < 40" in
  let expected_body = fst (Xserver.Client.sql pc read_query) in
  let clients = 4 in
  let mismatch = Atomic.make None in
  let read_phase ~replicas =
    let counts = Array.make clients 0 in
    let via_replicas = ref 0 in
    let mu = Mutex.create () in
    let threads =
      Array.init clients (fun i ->
          Thread.create
            (fun () ->
              let r =
                Xserver.Client.Routed.connect ~retry_for_s:10. ~replicas
                  ~port:p_port ()
              in
              Fun.protect
                ~finally:(fun () -> Xserver.Client.Routed.close r)
              @@ fun () ->
              let stop_at = Unix.gettimeofday () +. e11_duration in
              let n = ref 0 in
              while Unix.gettimeofday () < stop_at do
                let body, _ = Xserver.Client.Routed.sql r read_query in
                if body <> expected_body then
                  Atomic.set mismatch (Some (expected_body, body));
                incr n
              done;
              counts.(i) <- !n;
              Mutex.lock mu;
              via_replicas := !via_replicas + Xserver.Client.Routed.replica_reads r;
              Mutex.unlock mu)
            ())
    in
    Array.iter Thread.join threads;
    let total = Array.fold_left ( + ) 0 counts in
    (float_of_int total /. e11_duration, total, !via_replicas)
  in
  let qps_primary, req_primary, _ = read_phase ~replicas:[] in
  let qps_repl, req_repl, via_replicas =
    read_phase
      ~replicas:(List.map (fun port -> ("127.0.0.1", port)) r_ports)
  in
  (match Atomic.get mismatch with
   | Some (want, got) ->
     failwith
       (Printf.sprintf
          "E11-replication: replica read diverged from the primary: \
           expected %S, got %S"
          want got)
   | None -> ());
  if via_replicas = 0 then
    failwith
      "E11-replication: routed phase never read from a replica — routing \
       is broken or the replicas never reported caught-up";
  let scaleout = qps_repl /. qps_primary in
  Printf.printf
    "  reads: primary-only %9.1f QPS (%d reqs)   2 replicas %9.1f QPS \
     (%d reqs, %d via replicas)   scale-out %.2fx\n%!"
    qps_primary req_primary qps_repl req_repl via_replicas scaleout;
  (* the floor needs a core each for the client and the two replica
     processes; below that the cells time-slice one another and the
     ratio measures the scheduler, not the subsystem *)
  let floor_enforced = cores >= 4 in
  if floor_enforced && scaleout < 1.5 then
    failwith
      (Printf.sprintf
         "E11-replication regression: 2 replicas reach only %.2fx of the \
          primary-only read QPS (%.1f vs %.1f), below the 1.5x floor"
         scaleout qps_repl qps_primary);
  if not floor_enforced then
    Printf.printf
      "  (1.5x scale-out floor not enforced: %d host core(s) < 4)\n%!" cores;
  (* -------- bounded lag under a sustained write stream ------------- *)
  let writes = if e11_duration < 1.0 then 300 else 800 in
  let max_lag = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to writes - 1 do
    ignore (Xserver.Client.sql pc (insert (100_000 + i) (i mod 97) 1));
    if i mod 50 = 49 then begin
      let lag = primary_pos () - applied (List.hd rcs) in
      if lag > !max_lag then max_lag := lag
    end
  done;
  let write_s = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  wait_caught_up ~timeout_s:20. "catch-up after sustained writes";
  let catchup_s = Unix.gettimeofday () -. t0 in
  Printf.printf
    "  lag: %d writes in %.2fs, max observed lag %d records, caught up \
     %.2fs after the stream stopped\n%!"
    writes write_s !max_lag catchup_s;
  (* -------- flat WAL across churn cycles --------------------------- *)
  let wal_size () = (Unix.stat primary_wal).Unix.st_size in
  (* a cycle's records are truncatable once both replicas acked them;
     stable-for-1.5s covers three 0.5s checkpoint periods, so a size
     that stops moving really is the post-truncation floor *)
  let stabilized_wal_size () =
    let deadline = Unix.gettimeofday () +. 15. in
    let rec go last same_for =
      Thread.delay 0.25;
      let s = wal_size () in
      if Unix.gettimeofday () > deadline then s
      else if s <> last then go s 0.
      else if same_for >= 1.5 then s
      else go s (same_for +. 0.25)
    in
    go (wal_size ()) 0.
  in
  let churn_rows = 300 in
  let cycles = 4 in
  let wal_sizes =
    List.init cycles (fun cycle ->
        List.iter
          (function
            | Ok _ -> ()
            | Error (code, m) ->
              failwith (Printf.sprintf "E11 churn failed: [%s] %s" code m))
          (Xserver.Client.query_pipelined ~sql:true ~window:32 pc
             (List.init churn_rows (fun i ->
                  insert (200_000 + i) (i mod 97) cycle)));
        ignore (Xserver.Client.sql pc "DELETE FROM e11 WHERE id >= 200000");
        wait_caught_up ~timeout_s:20.
          (Printf.sprintf "churn cycle %d" (cycle + 1));
        let s = stabilized_wal_size () in
        Printf.printf "  churn cycle %d: WAL %d bytes after checkpoint\n%!"
          (cycle + 1) s;
        s)
  in
  let first_wal = List.hd wal_sizes in
  let last_wal = List.nth wal_sizes (cycles - 1) in
  if float_of_int last_wal > (1.5 *. float_of_int first_wal) +. 65536. then
    failwith
      (Printf.sprintf
         "E11-replication regression: WAL grew across churn cycles \
          (%d -> %d bytes) — checkpoints are not truncating the acked \
          prefix"
         first_wal last_wal);
  let json =
    Printf.sprintf
      "{\n\
      \  \"experiment\": \"E11-replication\",\n\
      \  \"generated_by\": \"bench/main.ml\",\n\
      \  \"scale\": %d,\n\
      \  \"host_cores\": %d,\n\
      \  \"duration_seconds\": %.2f,\n\
      \  \"rows\": %d,\n\
      \  \"read_query\": %S,\n\
      \  \"reads\": {\n\
      \    \"clients\": %d,\n\
      \    \"primary_only_qps\": %.2f,\n\
      \    \"two_replica_qps\": %.2f,\n\
      \    \"replica_served_requests\": %d,\n\
      \    \"scaleout\": %.3f,\n\
      \    \"floor_enforced\": %b\n\
      \  },\n\
      \  \"lag\": {\n\
      \    \"writes\": %d,\n\
      \    \"write_seconds\": %.3f,\n\
      \    \"max_lag_records\": %d,\n\
      \    \"catchup_seconds\": %.3f\n\
      \  },\n\
      \  \"wal\": {\n\
      \    \"churn_rows_per_cycle\": %d,\n\
      \    \"cycle_bytes\": [%s]\n\
      \  }\n}\n"
      scale cores e11_duration rows read_query clients qps_primary qps_repl
      via_replicas scaleout floor_enforced writes write_s !max_lag catchup_s
      churn_rows
      (String.concat ", " (List.map string_of_int wal_sizes))
  in
  let out =
    match Sys.getenv_opt "XOMATIQ_BENCH_E11_JSON" with
    | Some p when String.trim p <> "" -> p
    | _ -> "BENCH_E11.json"
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" out

(* CI smoke mode: skip bechamel and the large sweeps, run the E5 family
   once at whatever (small) scale the environment sets. *)
let smoke = Sys.getenv_opt "XOMATIQ_BENCH_SMOKE" <> None

(* XOMATIQ_BENCH_ONLY=E7-structural (etc.) runs one experiment in
   isolation — refreshing one BENCH_*.json without the full suite. *)
let only = Sys.getenv_opt "XOMATIQ_BENCH_ONLY"

let () =
  match only with
  | Some name ->
    (match String.lowercase_ascii (String.trim name) with
     | "e6-scaling" -> print_e6_scaling ()
     | "e7-structural" -> print_e7_structural ()
     | "e8-throughput" -> print_e8_throughput ()
     | "e9" -> print_e9 ()
     | "e9-vectorized" -> print_e9_vectorized ()
     | "e10-outofcore" -> print_e10_outofcore ()
     | "e11-replication" -> print_e11_replication ()
     | other -> failwith ("unknown XOMATIQ_BENCH_ONLY experiment: " ^ other))
  | None ->
  if smoke then begin
    Printf.printf "XomatiQ bench smoke (scale=%d docs per source)\n" scale;
    print_e5 ();
    print_e5_analyze ();
    print_e5_cache ();
    (* exercise the parallel scan/join/harvest paths even at smoke scale *)
    print_e6_scaling ();
    print_e7_structural ();
    print_e8_throughput ();
    print_e9_vectorized ();
    print_e10_outofcore ();
    print_newline ();
    print_endline "Smoke OK."
  end
  else begin
    Printf.printf
      "XomatiQ benchmark suite (scale=%d docs per source; set XOMATIQ_BENCH_SCALE to change)\n\n"
      scale;
    let results = run_bechamel () in
    print_bechamel results;
    print_e4_sweep ();
    print_e5 ();
    print_e5_analyze ();
    print_e5_cache ();
    print_e6_sweep ();
    print_e6_scaling ();
    print_e7 ();
    print_e7_structural ();
    print_e8 ();
    print_e8_throughput ();
    print_e9 ();
    print_e9_vectorized ();
    print_e10_outofcore ();
    print_e11_replication ();
    print_newline ();
    print_endline "Done. See EXPERIMENTS.md for the experiment index and expected shapes."
  end
