(** The local warehouse: a relational database holding shredded XML
    documents organised into named collections, each governed by the DTD
    its XML-Transformer declared (displayed by the XomatiQ GUI and used
    by query translation).

    DTDs are persisted in the database itself (table [xml_dtd]) so a
    WAL-recovered warehouse keeps its registry. *)

type t

(** A registered remote source: how flat-file text harvested from the
    source becomes named XML documents of a collection. *)
type source = {
  source_name : string;            (** e.g. "enzyme" *)
  source_collection : string;      (** e.g. "hlx_enzyme.DEFAULT" *)
  source_dtd : string;             (** DTD declaration text *)
  source_sequence_elements : string list;
  transform : string -> (string * Gxml.Tree.document) list;
      (** flat text -> (document name, document) pairs; raises on
          malformed input *)
  split : (string -> (int * int * string) list) option;
      (** entry-boundary scan enabling parallel harvest: cut flat text
          into per-entry chunks [(entry_index, first_line, chunk)] such
          that [transform chunk] parses exactly that entry ([entry_index]
          0-based, [first_line] 1-based, for error-position remapping).
          [None] keeps the source on the sequential load path. *)
}

val create : ?wal:string -> ?data_dir:string -> unit -> t
(** Fresh warehouse; with [wal], durable and crash-recoverable. With
    [data_dir] the paged on-disk backend holds the rows and indexes
    under that directory ({!Rdb.Database.open_disk}); without it the
    backend follows [XOMATIQ_STORAGE]. *)

val db : t -> Rdb.Database.t
val close : t -> unit

val register_source : t -> source -> unit
(** Records the collection's DTD (idempotent; replaces a previous DTD). *)

val enzyme_source : source
val embl_source : division:string -> source
val swissprot_source : source
val genbank_source : source
val medline_source : source

val harvest : ?analyze:bool -> t -> source -> string -> (int, string) result
(** The Data Hounds pipeline of Figure 1: transform flat-file text to XML
    (validating each document against the source DTD) and shred into the
    warehouse. Returns the number of documents loaded. Existing documents
    with the same name are replaced.

    When the source declares a {!source.split} function and the domain
    pool runs more than one job (see [Conc.Pool.set_jobs] /
    [XOMATIQ_JOBS]), parsing, validation and shredding fan out across
    domains; tuples are still installed in document order on the calling
    domain, so the resulting tables — ids, sibling order, everything —
    are byte-identical to a sequential load.

    On the disk backend installation is spool-then-load
    ({!Shred.install_prepared_bulk}): rows are appended as full pages
    under one WAL record per table and fresh B+tree indexes are built
    bottom-up — again byte-identical to the per-row path.

    After a successful harvest the four shred tables are re-ANALYZEd so
    the planner sees the new data volume ([analyze] defaults to true;
    pass false — CLI [--no-analyze] — to skip). *)

(** Aggregate load report for one {!harvest_stats} run. *)
type load_stats = {
  docs : int;        (** documents loaded *)
  nodes : int;       (** node rows written *)
  keywords : int;    (** keyword rows written *)
  new_paths : int;   (** paths added to xml_path *)
  transform_s : float;  (** flat text -> XML documents *)
  validate_s : float;   (** DTD validation, summed over documents *)
  shred_s : float;      (** XML2Relational shredding, summed *)
}

val load_stats_to_string : load_stats -> string

val harvest_stats :
  ?analyze:bool -> t -> source -> string -> (load_stats, string) result
(** {!harvest}, additionally reporting shred/insert volume and per-stage
    wall time. *)

val load_document :
  ?validate:bool -> t -> collection:string -> name:string ->
  Gxml.Tree.document -> (unit, string) result
(** Load one document (replacing any previous version). [validate]
    defaults to true when the collection has a registered DTD. *)

val dtd_of : t -> collection:string -> Gxml.Dtd.t option

val sequence_elements_of : t -> collection:string -> string list

val collections : t -> string list

val documents : t -> collection:string -> string list

val get_document :
  t -> collection:string -> name:string -> Gxml.Tree.document option
(** Reconstructed from tuples (Relation2XML). *)

val document_count : t -> collection:string -> int

val node_count : t -> int
(** Total xml_node rows across the warehouse. *)
