type t = {
  database : Rdb.Database.t;
  (* cache of parsed DTDs keyed by collection *)
  dtd_cache : (string, Gxml.Dtd.t) Hashtbl.t;
}

type source = {
  source_name : string;
  source_collection : string;
  source_dtd : string;
  source_sequence_elements : string list;
  transform : string -> (string * Gxml.Tree.document) list;
  split : (string -> (int * int * string) list) option;
      (* cheap entry-boundary scan for parallel harvesting: cut the flat
         text into per-entry chunks [(entry_index, first_line, chunk)]
         such that [transform chunk] parses exactly that entry. [None]
         keeps the source sequential. *)
}

(* ---------------- entry splitting for parallel harvest ---------------- *)

(* Split flat text into per-entry chunks without parsing them. Each chunk
   includes its terminator line, and the returned bases let a worker remap
   error positions from chunk-local coordinates back to the whole file
   (entry indexes are 0-based as in {!Line_format.Format_error}; line
   numbers are 1-based). *)
let split_generic ~ends ~terminator_alone_opens text =
  let lines = String.split_on_char '\n' text in
  let chunks = ref [] and buf = Buffer.create 1024 in
  let nclosed = ref 0 and line_base = ref 0 and opened = ref false in
  (* lines are joined back with '\n' separators and NO trailing newline:
     the chunk-local line list is then exactly the whole-file line list
     from [line_base] on, so remapped error positions (including the
     "final entry is not terminated" line, reported at the line COUNT)
     agree with the sequential parse byte for byte *)
  let add raw =
    if Buffer.length buf > 0 then Buffer.add_char buf '\n';
    Buffer.add_string buf raw
  in
  let close () =
    chunks := (!nclosed, !line_base, Buffer.contents buf) :: !chunks;
    Buffer.clear buf;
    opened := false;
    incr nclosed
  in
  let is_blank s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') s in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let raw' =
        if String.length raw > 0 && raw.[String.length raw - 1] = '\r' then
          String.sub raw 0 (String.length raw - 1)
        else raw
      in
      if !opened then begin
        add raw;
        if ends raw' then close ()
      end
      else if ends raw' then begin
        (* a terminator with nothing before it: line-code formats report
           "empty entry before //", so hand the parser a chunk holding
           just this line; GenBank and MEDLINE silently skip it *)
        if terminator_alone_opens then begin
          line_base := lineno;
          add raw;
          close ()
        end
      end
      else if is_blank raw' then ()
      else begin
        opened := true;
        line_base := lineno;
        add raw
      end)
    lines;
  if !opened then
    (* unterminated trailing entry: kept as a chunk so the chunk parser
       reproduces the sequential "not terminated" error at the same
       entry index (or, for MEDLINE, parses the final entry) *)
    chunks := (!nclosed, !line_base, Buffer.contents buf) :: !chunks;
  List.rev !chunks

(* ENZYME / EMBL / Swiss-Prot: an entry ends at a line that is exactly
   "//" after CR stripping (Line_format.split_entries semantics). *)
let split_flat_entries text =
  split_generic ~ends:(String.equal "//") ~terminator_alone_opens:true text

(* GenBank: terminator is "//" modulo surrounding whitespace; a stray
   terminator with no open entry is ignored. *)
let split_genbank_entries text =
  split_generic ~ends:(fun l -> String.trim l = "//")
    ~terminator_alone_opens:false text

(* MEDLINE: entries are separated by blank lines. *)
let split_medline_entries text =
  split_generic
    ~ends:(fun l -> String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') l)
    ~terminator_alone_opens:false text

let registry_ddl =
  "CREATE TABLE xml_dtd (collection TEXT PRIMARY KEY, dtd TEXT NOT NULL, \
   sequence_elements TEXT NOT NULL)"

let create ?wal ?data_dir () =
  let database =
    match data_dir, wal with
    | Some dir, wal -> Rdb.Database.open_disk ?wal ~dir ()
    | None, Some path -> Rdb.Database.open_with_wal path
    | None, None -> Rdb.Database.open_in_memory ()
  in
  Shred.install database;
  (match Rdb.Database.query database "SELECT COUNT(*) FROM xml_dtd" with
   | Ok _ -> ()
   | Error _ -> ignore (Rdb.Database.exec_exn database registry_ddl));
  { database; dtd_cache = Hashtbl.create 8 }

let db t = t.database
let close t = Rdb.Database.close t.database

let lit s = Rdb.Value.to_literal (Rdb.Value.Text s)

let register_source t (s : source) =
  (* validate the DTD text eagerly *)
  let parsed = Gxml.Dtd.parse s.source_dtd in
  ignore
    (Rdb.Database.exec_exn t.database
       (Printf.sprintf "DELETE FROM xml_dtd WHERE collection = %s"
          (lit s.source_collection)));
  ignore
    (Rdb.Database.exec_exn t.database
       (Printf.sprintf "INSERT INTO xml_dtd VALUES (%s, %s, %s)"
          (lit s.source_collection) (lit s.source_dtd)
          (lit (String.concat "," s.source_sequence_elements))));
  Hashtbl.replace t.dtd_cache s.source_collection parsed

let dtd_of t ~collection =
  match Hashtbl.find_opt t.dtd_cache collection with
  | Some dtd -> Some dtd
  | None ->
    (match
       Rdb.Database.query t.database
         (Printf.sprintf "SELECT dtd FROM xml_dtd WHERE collection = %s" (lit collection))
     with
     | Ok (_, [ [| Rdb.Value.Text src |] ]) ->
       let dtd = Gxml.Dtd.parse src in
       Hashtbl.replace t.dtd_cache collection dtd;
       Some dtd
     | Ok _ -> None
     | Error m -> failwith m)

let sequence_elements_of t ~collection =
  match
    Rdb.Database.query t.database
      (Printf.sprintf "SELECT sequence_elements FROM xml_dtd WHERE collection = %s"
         (lit collection))
  with
  | Ok (_, [ [| Rdb.Value.Text s |] ]) ->
    if s = "" then [] else String.split_on_char ',' s
  | Ok _ -> []
  | Error m -> failwith m

type load_stats = {
  docs : int;
  nodes : int;
  keywords : int;
  new_paths : int;
  transform_s : float;
  validate_s : float;
  shred_s : float;
}

let load_stats_to_string st =
  Printf.sprintf
    "%d docs, %d nodes, %d keywords, %d new paths (transform %.1fms, \
     validate %.1fms, shred %.1fms)"
    st.docs st.nodes st.keywords st.new_paths (st.transform_s *. 1000.)
    (st.validate_s *. 1000.) (st.shred_s *. 1000.)

(* Core load path, reporting shred stats and per-stage times. *)
let load_document_timed ?validate t ~collection ~name doc =
  let dtd = dtd_of t ~collection in
  let validate = Option.value validate ~default:(dtd <> None) in
  let t0 = Rdb.Obs.now_s () in
  let check =
    if not validate then Ok ()
    else
      match dtd with
      | None -> Error (Printf.sprintf "collection %S has no registered DTD" collection)
      | Some dtd ->
        (match Gxml.Dtd.validate dtd doc.Gxml.Tree.root with
         | [] -> Ok ()
         | v :: _ ->
           Error
             (Printf.sprintf "document %S is invalid: %s" name
                (Format.asprintf "%a" Gxml.Dtd.pp_violation v)))
  in
  let validate_s = Rdb.Obs.now_s () -. t0 in
  match check with
  | Error _ as e -> e
  | Ok () ->
    let t1 = Rdb.Obs.now_s () in
    ignore (Shred.delete_document t.database ~collection ~name);
    let sequence_elements = sequence_elements_of t ~collection in
    (match Shred.shred ~sequence_elements t.database ~collection ~name doc with
     | Ok (_, st) -> Ok (st, validate_s, Rdb.Obs.now_s () -. t1)
     | Error _ as e -> e)

let load_document ?validate t ~collection ~name doc =
  match load_document_timed ?validate t ~collection ~name doc with
  | Ok _ -> Ok ()
  | Error _ as e -> e

(* Ordered installation, on the calling domain, of per-document results
   [(name, prepared-or-error, validate_s, prepare_s)]. The install stops
   at the first error, keeping the documents before it — the sequential
   contract. On the disk backend the whole run of successfully prepared
   documents installs through the spool-then-load path
   ({!Shred.install_prepared_bulk}); a batch that loads the same
   document name twice (second replaces the first mid-batch) falls back
   to per-document installation, the only schedule that reproduces it. *)

let install_per_doc t ~collection acc0 results =
  let rec install acc = function
    | [] -> Ok acc
    | (name, Error m, _, _) :: _ -> ignore name; Error m
    | (name, Ok prep, validate_s, prepare_s) :: rest ->
      let t4 = Rdb.Obs.now_s () in
      ignore (Shred.delete_document t.database ~collection ~name);
      (match Shred.install_prepared t.database prep with
       | Error _ as e -> e
       | Ok (_, st) ->
         let shred_s = prepare_s +. (Rdb.Obs.now_s () -. t4) in
         install
           { acc with
             docs = acc.docs + 1;
             nodes = acc.nodes + st.Shred.nodes;
             keywords = acc.keywords + st.Shred.keywords;
             new_paths = acc.new_paths + st.Shred.new_paths;
             validate_s = acc.validate_s +. validate_s;
             shred_s = acc.shred_s +. shred_s }
           rest)
  in
  install acc0 results

let install_bulk t acc0 results =
  (* longest prefix of successful preparations, then the first error *)
  let rec split pre = function
    | (_, Ok p, vs, ps) :: rest -> split ((p, vs, ps) :: pre) rest
    | rest -> (List.rev pre, rest)
  in
  let oks, rest = split [] results in
  let t4 = Rdb.Obs.now_s () in
  match Shred.install_prepared_bulk t.database (List.map (fun (p, _, _) -> p) oks) with
  | Error _ as e -> e
  | Ok per_doc ->
    (match rest with
     | (_, Error m, _, _) :: _ -> Error m
     | _ ->
       let install_s = Rdb.Obs.now_s () -. t4 in
       let acc =
         List.fold_left2
           (fun acc (_, vs, ps) (_, st) ->
             { acc with
               docs = acc.docs + 1;
               nodes = acc.nodes + st.Shred.nodes;
               keywords = acc.keywords + st.Shred.keywords;
               new_paths = acc.new_paths + st.Shred.new_paths;
               validate_s = acc.validate_s +. vs;
               shred_s = acc.shred_s +. ps })
           acc0 oks per_doc
       in
       Ok { acc with shred_s = acc.shred_s +. install_s })

let batch_has_dup results =
  let seen = Hashtbl.create 16 in
  List.exists
    (fun (name, r, _, _) ->
      match r with
      | Error _ -> false
      | Ok _ ->
        if Hashtbl.mem seen name then true
        else begin
          Hashtbl.add seen name ();
          false
        end)
    results

let install_processed t ~collection acc0 results =
  if Rdb.Database.is_disk t.database && not (batch_has_dup results) then
    install_bulk t acc0 results
  else install_per_doc t ~collection acc0 results

let harvest_sequential t (s : source) flat_text =
  let t0 = Rdb.Obs.now_s () in
  match s.transform flat_text with
  | docs ->
    let transform_s = Rdb.Obs.now_s () -. t0 in
    let rec load acc = function
      | [] -> Ok acc
      | (name, doc) :: rest ->
        (match load_document_timed t ~collection:s.source_collection ~name doc with
         | Ok (st, validate_s, shred_s) ->
           load
             { acc with
               docs = acc.docs + 1;
               nodes = acc.nodes + st.Shred.nodes;
               keywords = acc.keywords + st.Shred.keywords;
               new_paths = acc.new_paths + st.Shred.new_paths;
               validate_s = acc.validate_s +. validate_s;
               shred_s = acc.shred_s +. shred_s }
             rest
         | Error _ as e -> e)
    in
    load
      { docs = 0; nodes = 0; keywords = 0; new_paths = 0; transform_s;
        validate_s = 0.; shred_s = 0. }
      docs

(* Parallel harvest: the entry-boundary scan and the tuple installation
   stay sequential (installation allocates doc/path/node ids, which must
   be assigned in document order to stay byte-identical to the
   sequential loader); parsing, DTD validation and shredding — the bulk
   of the work — fan out across pool domains, one task per entry.

   Error semantics match the sequential path exactly: a parse error
   anywhere loads nothing and reports the first (lowest-entry) failure
   at its whole-file position; an invalid document stops the load at
   that document, keeping the ones before it. *)
let harvest_parallel t (s : source) split flat_text =
  let collection = s.source_collection in
  (* pre-fetch everything a worker would otherwise query the database
     for; workers must not touch [t.database] *)
  let dtd = dtd_of t ~collection in
  let sequence_elements = sequence_elements_of t ~collection in
  let t0 = Rdb.Obs.now_s () in
  let chunks = split flat_text in
  let split_s = Rdb.Obs.now_s () -. t0 in
  let process (entry_base, line_base, chunk) =
    let t1 = Rdb.Obs.now_s () in
    let docs =
      try s.transform chunk
      with Line_format.Format_error { entry_index; line; message } ->
        (* remap chunk-local coordinates to whole-file ones *)
        raise
          (Line_format.Format_error
             { entry_index = entry_base + entry_index;
               line = line_base + line - 1;
               message })
    in
    let transform_s = Rdb.Obs.now_s () -. t1 in
    let results =
      List.map
        (fun (name, doc) ->
          let t2 = Rdb.Obs.now_s () in
          let check =
            match dtd with
            | None -> Ok ()
            | Some dtd ->
              (match Gxml.Dtd.validate dtd doc.Gxml.Tree.root with
               | [] -> Ok ()
               | v :: _ ->
                 Error
                   (Printf.sprintf "document %S is invalid: %s" name
                      (Format.asprintf "%a" Gxml.Dtd.pp_violation v)))
          in
          let validate_s = Rdb.Obs.now_s () -. t2 in
          match check with
          | Error m -> (name, Error m, validate_s, 0.)
          | Ok () ->
            let t3 = Rdb.Obs.now_s () in
            let prep = Shred.prepare ~sequence_elements ~collection ~name doc in
            (name, Ok prep, validate_s, Rdb.Obs.now_s () -. t3))
        docs
    in
    (transform_s, results)
  in
  let processed = Conc.Pool.parallel_map (Conc.Pool.get ()) process chunks in
  let transform_s =
    List.fold_left (fun acc (ts, _) -> acc +. ts) split_s processed
  in
  (* ordered installation on this domain only *)
  install_processed t ~collection
    { docs = 0; nodes = 0; keywords = 0; new_paths = 0; transform_s;
      validate_s = 0.; shred_s = 0. }
    (List.concat_map snd processed)

(* Sequential prepare (no split declared, or one job) feeding the shared
   installer: used on the disk backend so sequential harvests also take
   the spool-then-load path. *)
let harvest_prepared t (s : source) flat_text =
  let collection = s.source_collection in
  let dtd = dtd_of t ~collection in
  let sequence_elements = sequence_elements_of t ~collection in
  let t0 = Rdb.Obs.now_s () in
  let docs = s.transform flat_text in
  let transform_s = Rdb.Obs.now_s () -. t0 in
  let results =
    List.map
      (fun (name, doc) ->
        let t2 = Rdb.Obs.now_s () in
        let check =
          match dtd with
          | None -> Ok ()
          | Some dtd ->
            (match Gxml.Dtd.validate dtd doc.Gxml.Tree.root with
             | [] -> Ok ()
             | v :: _ ->
               Error
                 (Printf.sprintf "document %S is invalid: %s" name
                    (Format.asprintf "%a" Gxml.Dtd.pp_violation v)))
        in
        let validate_s = Rdb.Obs.now_s () -. t2 in
        match check with
        | Error m -> (name, Error m, validate_s, 0.)
        | Ok () ->
          let t3 = Rdb.Obs.now_s () in
          let prep = Shred.prepare ~sequence_elements ~collection ~name doc in
          (name, Ok prep, validate_s, Rdb.Obs.now_s () -. t3))
      docs
  in
  install_processed t ~collection
    { docs = 0; nodes = 0; keywords = 0; new_paths = 0; transform_s;
      validate_s = 0.; shred_s = 0. }
    results

(* ShrubTune: a freshly loaded warehouse should not plan on default
   statistics. Refreshing stats bumps the catalog version, so cached
   plans self-invalidate. *)
let analyze_warehouse t =
  List.iter
    (fun table -> ignore (Rdb.Database.exec t.database ("ANALYZE " ^ table)))
    Shred.tables

let harvest_stats ?(analyze = true) t (s : source) flat_text =
  let run () =
    match s.split with
    | Some split when Conc.Pool.jobs () > 1 -> harvest_parallel t s split flat_text
    | _ ->
      if Rdb.Database.is_disk t.database then harvest_prepared t s flat_text
      else harvest_sequential t s flat_text
  in
  match run () with
  | Ok _ as r ->
    if analyze then analyze_warehouse t;
    r
  | Error _ as e -> e
  | exception Line_format.Format_error { entry_index; line; message } ->
    Error
      (Printf.sprintf "flat-file error in entry %d (line %d): %s" entry_index line
         message)
  | exception Enzyme.Bad_entry m -> Error ("bad ENZYME entry: " ^ m)
  | exception Embl.Bad_entry m -> Error ("bad EMBL entry: " ^ m)
  | exception Swissprot.Bad_entry m -> Error ("bad Swiss-Prot entry: " ^ m)
  | exception Genbank.Bad_entry m -> Error ("bad GenBank entry: " ^ m)
  | exception Medline.Bad_entry m -> Error ("bad MEDLINE entry: " ^ m)

let harvest ?analyze t s flat_text =
  match harvest_stats ?analyze t s flat_text with
  | Ok st -> Ok st.docs
  | Error _ as e -> e

let collections t = Shred.collections t.database

let documents t ~collection = Shred.document_names t.database ~collection

let get_document t ~collection ~name =
  match Shred.document_id t.database ~collection ~name with
  | None -> None
  | Some doc_id ->
    (match Shred.reconstruct t.database ~doc_id with
     | Ok doc -> Some doc
     | Error m -> failwith m)

let document_count t ~collection =
  match
    Rdb.Database.query t.database
      (Printf.sprintf "SELECT COUNT(*) FROM xml_doc WHERE collection = %s"
         (lit collection))
  with
  | Ok (_, [ [| Rdb.Value.Int n |] ]) -> n
  | Ok _ -> 0
  | Error m -> failwith m

let node_count t =
  match Rdb.Database.query t.database "SELECT COUNT(*) FROM xml_node" with
  | Ok (_, [ [| Rdb.Value.Int n |] ]) -> n
  | Ok _ -> 0
  | Error m -> failwith m

(* ---------------- built-in sources ---------------- *)

let enzyme_source =
  { source_name = "enzyme";
    source_collection = Enzyme_xml.collection;
    source_dtd = Enzyme_xml.dtd_source;
    source_sequence_elements = [];
    transform =
      (fun text ->
        List.map
          (fun e -> (Enzyme_xml.document_name e, Enzyme_xml.to_document e))
          (Enzyme.parse_many text));
    split = Some split_flat_entries }

let embl_source ~division =
  { source_name = "embl-" ^ String.lowercase_ascii division;
    source_collection = "hlx_embl." ^ String.lowercase_ascii division;
    source_dtd = Embl_xml.dtd_source;
    source_sequence_elements = Embl_xml.sequence_elements;
    transform =
      (fun text ->
        Embl.parse_many text
        |> List.filter (fun (e : Embl.t) ->
            String.lowercase_ascii e.division = String.lowercase_ascii division)
        |> List.map (fun e -> (Embl_xml.document_name e, Embl_xml.to_document e)));
    split = Some split_flat_entries }

let swissprot_source =
  { source_name = "swissprot";
    source_collection = Swissprot.collection;
    source_dtd = Swissprot_xml.dtd_source;
    source_sequence_elements = Swissprot_xml.sequence_elements;
    transform =
      (fun text ->
        List.map
          (fun p -> (Swissprot_xml.document_name p, Swissprot_xml.to_document p))
          (Swissprot.parse_many text));
    split = Some split_flat_entries }

let genbank_source =
  { source_name = "genbank";
    source_collection = Genbank_xml.collection;
    source_dtd = Genbank_xml.dtd_source;
    source_sequence_elements = Genbank_xml.sequence_elements;
    transform =
      (fun text ->
        List.map
          (fun g -> (Genbank_xml.document_name g, Genbank_xml.to_document g))
          (Genbank.parse_many text));
    split = Some split_genbank_entries }

let medline_source =
  { source_name = "medline";
    source_collection = Medline_xml.collection;
    source_dtd = Medline_xml.dtd_source;
    source_sequence_elements = [];
    transform =
      (fun text ->
        List.map
          (fun m -> (Medline_xml.document_name m, Medline_xml.to_document m))
          (Medline.parse_many text));
    split = Some split_medline_entries }
