(** XML2Relational transformer: shredding XML documents into the generic
    relational schema.

    The paper keeps its schema proprietary but states its five design
    goals (Section 2.2); this schema meets all of them:

    - {b generic}: independent of any DTD — four fixed tables;
    - {b order-preserving}: document order is data — [node_id] is the
      preorder rank, [ord] the position among siblings, and [last_desc]
      the preorder rank of the last descendant, giving the region
      encoding of Li & Moon (VLDB 2001, the paper's citation [32]) so
      BEFORE/AFTER and descendant tests are value comparisons;
    - {b sequence vs non-sequence}: nodes named in [sequence_elements]
      are flagged [is_seq] and excluded from the keyword index (sequence
      residues are queried by pattern, not by keyword);
    - {b string and numeric}: every value is stored as text ([sval]) and,
      when it parses, as a number ([nval]);
    - {b keyword search}: an inverted index table maps lowercased words
      to the value-carrying node.

    Schema:
    {v
    xml_doc    (doc_id PK, collection, name, root_tag)
    xml_path   (path_id PK, path)           -- e.g. /hlx_enzyme/db_entry/enzyme_id
                                            -- attribute paths end in /@name
    xml_node   (doc_id, node_id PK, parent_id, ord, kind, name,
                path_id, sval, nval, is_seq, last_desc)
    xml_keyword(doc_id, node_id, word)
    v}

    Elements whose content is exactly one text node carry that value
    inline ([sval]/[nval] on the element row) and the text node is not
    materialised separately — the common case for data-centric biological
    XML, and what the XQ2SQL translation relies on. *)

val schema_ddl : string list
(** CREATE TABLE statements for the four tables. *)

val tables : string list
(** The four table names, creation order: xml_doc, xml_path, xml_node,
    xml_keyword. *)

val index_ddl : string list
(** The index set derived from "meticulous analysis of the query plans"
    (paper Section 3.2): hash indexes on keyword words, node paths and
    document collections; B+tree indexes on string and numeric values. *)

val install : Rdb.Database.t -> unit
(** Create tables and indexes (idempotent: skips existing). *)

val tokenize : string -> string list
(** Keyword tokenisation: lowercased alphanumeric runs of length >= 2,
    deduplicated, in first-occurrence order. *)

type stats = {
  nodes : int;      (** node rows written, including attributes *)
  keywords : int;   (** keyword rows written *)
  new_paths : int;  (** paths added to xml_path *)
}

type prepared
(** A document walked into relational rows but not yet assigned ids:
    the pure half of shredding. Safe to build on any domain. *)

val prepare :
  ?sequence_elements:string list ->
  collection:string -> name:string -> Gxml.Tree.document -> prepared
(** Walk the tree and build all node/keyword rows. No database access. *)

val install_prepared :
  Rdb.Database.t -> prepared -> (int * stats, string) result
(** Allocate [doc_id] and [path_id]s and insert the prepared rows in one
    transaction. Ids are assigned exactly as a direct {!shred} of the
    same document would assign them. Must run on one domain at a time. *)

val install_prepared_bulk :
  Rdb.Database.t -> prepared list -> ((int * stats) list, string) result
(** Spool-then-load installation of a whole batch on the disk backend
    (the ERDB loader recipe): replaced documents are deleted, then all
    rows are written to four spool files and appended with
    {!Rdb.Database.bulk_load} — one WAL record per table instead of one
    per row, with indexes built bottom-up when they start empty. One
    transaction; on error nothing is installed. Ids are assigned exactly
    as installing the documents one at a time would assign them, so the
    resulting tables are byte-identical to the per-document path.
    Fails if the batch holds two documents with the same
    (collection, name) — callers should fall back to per-document
    installation — or if the database has no disk storage. *)

val shred :
  ?sequence_elements:string list ->
  Rdb.Database.t -> collection:string -> name:string ->
  Gxml.Tree.document -> (int * stats, string) result
(** Store a document; returns its fresh [doc_id]. Fails if a document of
    the same (collection, name) already exists. Equivalent to
    [install_prepared db (prepare ~sequence_elements ~collection ~name doc)]. *)

val delete_document :
  Rdb.Database.t -> collection:string -> name:string -> bool
(** Remove a document and all its nodes/keywords. *)

val document_id :
  Rdb.Database.t -> collection:string -> name:string -> int option

val document_names : Rdb.Database.t -> collection:string -> string list
(** Sorted. *)

val collections : Rdb.Database.t -> string list

val path_ids_matching : Rdb.Database.t -> Gxml.Path.t -> int list
(** Resolve a structural path pattern (child/descendant steps over element
    names, optionally ending in an attribute step) to the matching
    [path_id]s currently in [xml_path]. Predicates are ignored here — the
    XQ2SQL transformer translates them separately. *)

val reconstruct :
  Rdb.Database.t -> doc_id:int -> (Gxml.Tree.document, string) result
(** Relation2XML for whole documents: rebuild the XML document from its
    tuples. Inverse of {!shred} up to text-node normalisation. *)
