let schema_ddl =
  [ "CREATE TABLE xml_doc (doc_id INTEGER PRIMARY KEY, collection TEXT NOT NULL, \
     name TEXT NOT NULL, root_tag TEXT NOT NULL)";
    "CREATE TABLE xml_path (path_id INTEGER PRIMARY KEY, path TEXT NOT NULL)";
    "CREATE TABLE xml_node (doc_id INTEGER NOT NULL, node_id INTEGER NOT NULL, \
     parent_id INTEGER, ord INTEGER NOT NULL, kind TEXT NOT NULL, name TEXT, \
     path_id INTEGER NOT NULL, sval TEXT, nval REAL, is_seq INTEGER NOT NULL, \
     last_desc INTEGER NOT NULL, PRIMARY KEY (doc_id, node_id))";
    "CREATE TABLE xml_keyword (doc_id INTEGER NOT NULL, node_id INTEGER NOT NULL, \
     word TEXT NOT NULL)" ]

let index_ddl =
  [ "CREATE HASH INDEX xml_doc_collection ON xml_doc (collection)";
    "CREATE HASH INDEX xml_node_path ON xml_node (path_id)";
    "CREATE HASH INDEX xml_node_parent ON xml_node (doc_id, parent_id)";
    "CREATE INDEX xml_node_sval ON xml_node (sval)";
    "CREATE INDEX xml_node_nval ON xml_node (nval)";
    "CREATE HASH INDEX xml_keyword_word ON xml_keyword (word)";
    "CREATE HASH INDEX xml_path_path ON xml_path (path)";
    (* composite probes used by correlated EXISTS translations *)
    "CREATE HASH INDEX xml_node_doc_path ON xml_node (doc_id, path_id)";
    "CREATE HASH INDEX xml_keyword_doc_word ON xml_keyword (doc_id, word)";
    (* per-document access: reconstruction and document deletion *)
    "CREATE HASH INDEX xml_node_doc ON xml_node (doc_id)";
    "CREATE HASH INDEX xml_keyword_doc ON xml_keyword (doc_id)" ]

let tables = [ "xml_doc"; "xml_path"; "xml_node"; "xml_keyword" ]

let install db =
  let have_tables =
    match Rdb.Database.query db "SELECT COUNT(*) FROM xml_doc" with
    | Ok _ -> true
    | Error _ -> false
  in
  if not have_tables then begin
    List.iter (fun sql -> ignore (Rdb.Database.exec_exn db sql)) schema_ddl;
    List.iter (fun sql -> ignore (Rdb.Database.exec_exn db sql)) index_ddl
  end

(* ------------------------------------------------------------------ *)
(* Keyword tokenisation                                                *)
(* ------------------------------------------------------------------ *)

let tokenize s =
  let n = String.length s in
  let words = ref [] and seen = Hashtbl.create 8 in
  let buf = Buffer.create 16 in
  let flush_word () =
    if Buffer.length buf >= 2 then begin
      let w = Buffer.contents buf in
      if not (Hashtbl.mem seen w) then begin
        Hashtbl.add seen w ();
        words := w :: !words
      end
    end;
    Buffer.clear buf
  in
  for i = 0 to n - 1 do
    let c = s.[i] in
    if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then Buffer.add_char buf c
    else if c >= 'A' && c <= 'Z' then Buffer.add_char buf (Char.lowercase_ascii c)
    else flush_word ()
  done;
  flush_word ();
  List.rev !words

(* ------------------------------------------------------------------ *)
(* Shredding                                                           *)
(* ------------------------------------------------------------------ *)

type stats = {
  nodes : int;
  keywords : int;
  new_paths : int;
}

let scalar_int db sql =
  match Rdb.Database.query db sql with
  | Ok (_, [ [| Rdb.Value.Int i |] ]) -> Some i
  | Ok (_, [ [| Rdb.Value.Null |] ]) -> None
  | Ok _ -> None
  | Error m -> failwith m

let load_path_table db =
  let tbl = Hashtbl.create 64 in
  (match Rdb.Database.query db "SELECT path_id, path FROM xml_path" with
   | Ok (_, rows) ->
     List.iter
       (fun row ->
         match row.(0), row.(1) with
         | Rdb.Value.Int id, Rdb.Value.Text p -> Hashtbl.replace tbl p id
         | _ -> ())
       rows
   | Error m -> failwith m);
  tbl

let numeric_of s =
  let s = String.trim s in
  if s = "" then None
  else
    match float_of_string_opt s with
    | Some f when Float.is_finite f -> Some f
    | _ -> None

let document_id db ~collection ~name =
  match
    Rdb.Database.query db
      (Printf.sprintf "SELECT doc_id FROM xml_doc WHERE collection = %s AND name = %s"
         (Rdb.Value.to_literal (Text collection))
         (Rdb.Value.to_literal (Text name)))
  with
  | Ok (_, [ [| Rdb.Value.Int id |] ]) -> Some id
  | Ok _ -> None
  | Error m -> failwith m

(* Shredding is split into a pure [prepare] phase (tree walk, node and
   keyword row construction — no database access, so it can run on any
   domain) and a sequential [install_prepared] phase (id allocation and
   the transactional insert). [shred] is their composition, so the
   parallel loader and the sequential one share the installation code
   path and produce byte-identical tables.

   The doc_id and path_id columns depend on database state, so prepared
   rows carry Null placeholders (slots 0 and 6 of xml_node, slot 0 of
   xml_keyword) plus the path string; [install_prepared] patches them
   while walking the rows in emission order. The original code allocated
   path ids at emission time and inserted rows in emission order, so
   resolving first-seen paths in that same order reproduces the exact
   sequential id assignment. *)

type prepared = {
  prep_collection : string;
  prep_name : string;
  prep_root_tag : string;
  prep_nodes : (Rdb.Value.t array * string) list;
      (* (xml_node row, path string) in emission order *)
  prep_keywords : Rdb.Value.t array list;  (* xml_keyword rows, emission order *)
}

let prepare ?(sequence_elements = []) ~collection ~name (doc : Gxml.Tree.document) =
  let node_rows = ref [] and kw_rows = ref [] in
  let next_node = ref 0 in
  let fresh_node () =
    let id = !next_node in
    incr next_node;
    id
  in
  let is_seq_elem tag = List.mem tag sequence_elements in
  let emit_keywords node_id sval =
    List.iter
      (fun w -> kw_rows := [| Rdb.Value.Null; Int node_id; Text w |] :: !kw_rows)
      (tokenize sval)
  in
  let emit_node ~node_id ~parent ~ord ~kind ~name:nm ~path ~sval ~is_seq ~last_desc =
    let nval =
      match sval with
      | Some s when not is_seq ->
        (match numeric_of s with Some f -> Rdb.Value.Float f | None -> Rdb.Value.Null)
      | _ -> Rdb.Value.Null
    in
    node_rows :=
      ( [| Rdb.Value.Null; Int node_id;
           (match parent with Some p -> Int p | None -> Null);
           Int ord; Text kind;
           (match nm with Some n -> Text n | None -> Null);
           Null;
           (match sval with Some s -> Text s | None -> Null);
           nval;
           Int (if is_seq then 1 else 0);
           Int last_desc |],
        path )
      :: !node_rows;
    (match sval with
     | Some s when not is_seq -> emit_keywords node_id s
     | _ -> ())
  in
  (* Walk the tree in preorder. Returns the preorder rank of the last
     node in the subtree. *)
  let rec walk_element ~parent ~ord ~parent_path ~parent_seq (e : Gxml.Tree.element) =
    let node_id = fresh_node () in
    let path = parent_path ^ "/" ^ e.tag in
    let is_seq = parent_seq || is_seq_elem e.tag in
    (* attributes come right after their element in preorder *)
    let attr_ids =
      List.mapi
        (fun i (a : Gxml.Tree.attribute) ->
          let aid = fresh_node () in
          (aid, i, a))
        e.attrs
    in
    let inline_text =
      match e.children with
      | [ Gxml.Tree.Text t ] -> Some t
      | _ -> None
    in
    let child_last = ref (match attr_ids with [] -> node_id | _ -> fst3_last attr_ids) in
    (* children *)
    (match inline_text with
     | Some _ -> ()
     | None ->
       List.iteri
         (fun i child ->
           match child with
           | Gxml.Tree.Element c ->
             child_last := walk_element ~parent:(Some node_id) ~ord:i
                 ~parent_path:path ~parent_seq:is_seq c
           | Gxml.Tree.Text t ->
             let tid = fresh_node () in
             emit_node ~node_id:tid ~parent:(Some node_id) ~ord:i ~kind:"text"
               ~name:None ~path:(path ^ "/#text") ~sval:(Some t) ~is_seq
               ~last_desc:tid;
             child_last := tid)
         e.children);
    let last_desc = !child_last in
    emit_node ~node_id ~parent ~ord ~kind:"elem" ~name:(Some e.tag) ~path
      ~sval:inline_text ~is_seq ~last_desc;
    List.iter
      (fun (aid, i, (a : Gxml.Tree.attribute)) ->
        emit_node ~node_id:aid ~parent:(Some node_id) ~ord:i ~kind:"attr"
          ~name:(Some a.attr_name) ~path:(path ^ "/@" ^ a.attr_name)
          ~sval:(Some a.attr_value) ~is_seq ~last_desc:aid)
      attr_ids;
    last_desc
  and fst3_last l =
    match List.rev l with
    | (id, _, _) :: _ -> id
    | [] -> assert false
  in
  ignore (walk_element ~parent:None ~ord:0 ~parent_path:"" ~parent_seq:false doc.root);
  { prep_collection = collection; prep_name = name; prep_root_tag = doc.root.tag;
    prep_nodes = List.rev !node_rows; prep_keywords = List.rev !kw_rows }

let install_prepared db (p : prepared) =
  let collection = p.prep_collection and name = p.prep_name in
  if document_id db ~collection ~name <> None then
    Error (Printf.sprintf "document %S already exists in collection %S" name collection)
  else begin
    let doc_id =
      1 + Option.value ~default:0 (scalar_int db "SELECT MAX(doc_id) FROM xml_doc")
    in
    let paths = load_path_table db in
    let new_paths = ref [] in
    let next_path_id =
      ref (1 + Option.value ~default:0 (scalar_int db "SELECT MAX(path_id) FROM xml_path"))
    in
    let path_id path =
      match Hashtbl.find_opt paths path with
      | Some id -> id
      | None ->
        let id = !next_path_id in
        incr next_path_id;
        Hashtbl.add paths path id;
        new_paths := (id, path) :: !new_paths;
        id
    in
    let docv = Rdb.Value.Int doc_id in
    (* patch ids in emission order: first-seen paths get ids in the same
       order the emitting walk would have allocated them *)
    List.iter
      (fun (row, path) ->
        row.(0) <- docv;
        row.(6) <- Rdb.Value.Int (path_id path))
      p.prep_nodes;
    List.iter (fun row -> row.(0) <- docv) p.prep_keywords;
    (* write everything in one transaction *)
    let started_txn = not (Rdb.Database.in_transaction db) in
    if started_txn then ignore (Rdb.Database.exec_exn db "BEGIN");
    let rollback m =
      if started_txn then ignore (Rdb.Database.exec db "ROLLBACK");
      Error m
    in
    let doc_row =
      [| Rdb.Value.Int doc_id; Text collection; Text name; Text p.prep_root_tag |]
    in
    let path_rows =
      List.rev_map (fun (id, pth) -> [| Rdb.Value.Int id; Text pth |]) !new_paths
    in
    match Rdb.Database.insert_rows db ~table:"xml_doc" [ doc_row ] with
    | Error m -> rollback m
    | Ok _ ->
      (match Rdb.Database.insert_rows db ~table:"xml_path" path_rows with
       | Error m -> rollback m
       | Ok _ ->
         (match Rdb.Database.insert_rows db ~table:"xml_node" (List.map fst p.prep_nodes) with
          | Error m -> rollback m
          | Ok nodes ->
            (match Rdb.Database.insert_rows db ~table:"xml_keyword" p.prep_keywords with
             | Error m -> rollback m
             | Ok keywords ->
               if started_txn then ignore (Rdb.Database.exec_exn db "COMMIT");
               Ok (doc_id, { nodes; keywords; new_paths = List.length path_rows }))))
  end

let shred ?(sequence_elements = []) db ~collection ~name (doc : Gxml.Tree.document) =
  install_prepared db (prepare ~sequence_elements ~collection ~name doc)

(* ------------------------------------------------------------------ *)
(* Spool-then-load installation (disk backend)                         *)
(* ------------------------------------------------------------------ *)

(* The ERDB load recipe: instead of INSERTing row by row, the whole
   batch of prepared documents is written to four spool files (one per
   table) and appended with {!Rdb.Database.bulk_load} — full pages, one
   WAL record per table, indexes built bottom-up when the target is a
   fresh paged B+tree.

   Id allocation simulates the sequential per-document schedule exactly
   (doc_id = 1 + current MAX after the replaced document is removed;
   path ids first-seen in emission order across documents in order), and
   appends of different documents never interleave within a table, so
   the resulting tables are byte-identical to installing the documents
   one at a time. The one precondition is that the batch holds no two
   documents with the same (collection, name): the sequential schedule
   would make the second replace the first mid-batch, which a grouped
   load cannot reproduce — callers fall back to per-document
   installation in that (pathological) case. *)

let spool_serial = ref 0

let fresh_spool st tag =
  let rec pick () =
    incr spool_serial;
    let p =
      Rdb.Storage.spool_path st
        (Printf.sprintf "harvest-%d-%s.spool" !spool_serial tag)
    in
    if Sys.file_exists p then pick () else p
  in
  pick ()

let install_prepared_bulk db (preps : prepared list) =
  match Rdb.Database.storage db with
  | None -> Error "bulk install requires the disk storage backend"
  | Some st ->
    if preps = [] then Ok []
    else begin
      (* current (collection, name) -> doc_id view, kept in sync as the
         batch replaces and adds documents *)
      let view = Hashtbl.create 64 in
      (match Rdb.Database.query db "SELECT doc_id, collection, name FROM xml_doc" with
       | Ok (_, rows) ->
         List.iter
           (fun row ->
             match row with
             | [| Rdb.Value.Int id; Text c; Text n |] -> Hashtbl.replace view (c, n) id
             | _ -> ())
           rows
       | Error m -> failwith m);
      let max_of tbl = Hashtbl.fold (fun _ id m -> max id m) tbl 0 in
      let cur_max = ref (max_of view) in
      let paths = load_path_table db in
      let next_path_id = ref (1 + max_of paths) in
      let new_path_rows = ref [] in
      let path_id path =
        match Hashtbl.find_opt paths path with
        | Some id -> id
        | None ->
          let id = !next_path_id in
          incr next_path_id;
          Hashtbl.add paths path id;
          new_path_rows := [| Rdb.Value.Int id; Text path |] :: !new_path_rows;
          id
      in
      let deletes = ref [] in  (* replaced doc_ids, reverse document order *)
      let in_batch = Hashtbl.create 16 in
      let dup = ref None in
      let doc_w = Rdb.Storage.spool_create (fresh_spool st "doc") in
      let path_w = Rdb.Storage.spool_create (fresh_spool st "path") in
      let node_w = Rdb.Storage.spool_create (fresh_spool st "node") in
      let kw_w = Rdb.Storage.spool_create (fresh_spool st "keyword") in
      let per_doc =
        List.map
          (fun p ->
            let key = (p.prep_collection, p.prep_name) in
            if Hashtbl.mem in_batch key then dup := Some key;
            Hashtbl.replace in_batch key ();
            (match Hashtbl.find_opt view key with
             | Some old ->
               deletes := old :: !deletes;
               Hashtbl.remove view key;
               if old = !cur_max then cur_max := max_of view
             | None -> ());
            let doc_id = 1 + !cur_max in
            cur_max := doc_id;
            Hashtbl.replace view key doc_id;
            let docv = Rdb.Value.Int doc_id in
            let paths_before = !next_path_id in
            List.iter
              (fun (row, path) ->
                row.(0) <- docv;
                row.(6) <- Rdb.Value.Int (path_id path);
                Rdb.Storage.spool_add node_w row)
              p.prep_nodes;
            List.iter
              (fun row ->
                row.(0) <- docv;
                Rdb.Storage.spool_add kw_w row)
              p.prep_keywords;
            Rdb.Storage.spool_add doc_w
              [| docv; Text p.prep_collection; Text p.prep_name; Text p.prep_root_tag |];
            ( doc_id,
              { nodes = List.length p.prep_nodes;
                keywords = List.length p.prep_keywords;
                new_paths = !next_path_id - paths_before } ))
          preps
      in
      List.iter (fun r -> Rdb.Storage.spool_add path_w r) (List.rev !new_path_rows);
      let finish w = (Rdb.Storage.spool_writer_path w, Rdb.Storage.spool_finish w) in
      let spools = List.map finish [ doc_w; path_w; node_w; kw_w ] in
      match !dup with
      | Some (c, n) ->
        List.iter (fun (p, _) -> Rdb.Storage.spool_remove p) spools;
        Error
          (Printf.sprintf
             "bulk install: duplicate document %S in collection %S within one batch" n c)
      | None ->
        let started_txn = not (Rdb.Database.in_transaction db) in
        if started_txn then ignore (Rdb.Database.exec_exn db "BEGIN");
        let rollback m =
          if started_txn then ignore (Rdb.Database.exec db "ROLLBACK");
          Error m
        in
        let delete_replaced () =
          try
            List.iter
              (fun old ->
                List.iter
                  (fun table ->
                    ignore
                      (Rdb.Database.exec_exn db
                         (Printf.sprintf "DELETE FROM %s WHERE doc_id = %d" table old)))
                  [ "xml_keyword"; "xml_node"; "xml_doc" ])
              (List.rev !deletes);
            Ok ()
          with Failure m -> Error m
        in
        let rec load = function
          | [] ->
            if started_txn then ignore (Rdb.Database.exec_exn db "COMMIT");
            Ok per_doc
          | (table, (spool, rows)) :: rest ->
            if rows = 0 then begin
              (* nothing to load: no WAL record will reference the spool *)
              Rdb.Storage.spool_remove spool;
              load rest
            end
            else
              (match Rdb.Database.bulk_load db ~table ~spool ~rows with
               | Error m -> rollback m
               | Ok _ -> load rest)
        in
        (match delete_replaced () with
         | Error m -> rollback m
         | Ok () -> load (List.combine tables spools))
    end

let delete_document db ~collection ~name =
  match document_id db ~collection ~name with
  | None -> false
  | Some doc_id ->
    let started_txn = not (Rdb.Database.in_transaction db) in
    if started_txn then ignore (Rdb.Database.exec_exn db "BEGIN");
    List.iter
      (fun table ->
        ignore
          (Rdb.Database.exec_exn db
             (Printf.sprintf "DELETE FROM %s WHERE doc_id = %d" table doc_id)))
      [ "xml_keyword"; "xml_node"; "xml_doc" ];
    if started_txn then ignore (Rdb.Database.exec_exn db "COMMIT");
    true

let document_names db ~collection =
  match
    Rdb.Database.query db
      (Printf.sprintf "SELECT name FROM xml_doc WHERE collection = %s ORDER BY name"
         (Rdb.Value.to_literal (Text collection)))
  with
  | Ok (_, rows) ->
    List.filter_map
      (fun row -> match row.(0) with Rdb.Value.Text s -> Some s | _ -> None)
      rows
  | Error m -> failwith m

let collections db =
  match Rdb.Database.query db "SELECT DISTINCT collection FROM xml_doc ORDER BY collection" with
  | Ok (_, rows) ->
    List.filter_map
      (fun row -> match row.(0) with Rdb.Value.Text s -> Some s | _ -> None)
      rows
  | Error m -> failwith m

(* ------------------------------------------------------------------ *)
(* Path pattern matching                                               *)
(* ------------------------------------------------------------------ *)

(* Match a structural Gxml.Path.t against a stored path string such as
   "/hlx_enzyme/db_entry/enzyme_id" or ".../@name". *)
let path_matches (pattern : Gxml.Path.t) (stored : string) =
  let segments =
    match String.split_on_char '/' stored with
    | "" :: rest -> rest
    | rest -> rest
  in
  let test_ok (step : Gxml.Path.step) seg =
    match step.test with
    | Gxml.Path.Name n -> String.equal seg n
    | Gxml.Path.Any_element -> String.length seg > 0 && seg.[0] <> '@' && seg.[0] <> '#'
    | Gxml.Path.Attribute a -> String.equal seg ("@" ^ a)
    | Gxml.Path.Text_test -> String.equal seg "#text"
  in
  (* A Child step consumes exactly the next segment; a Descendant step
     skips zero or more segments before matching one. The whole stored
     path must be consumed (the pattern addresses the node itself). *)
  let rec match_steps (steps : Gxml.Path.step list) segs =
    match steps with
    | [] -> segs = []
    | step :: rest ->
      (match step.axis with
       | Gxml.Path.Child ->
         (match segs with
          | seg :: tl when test_ok step seg -> match_steps rest tl
          | _ -> false)
       | Gxml.Path.Descendant ->
         let rec try_from segs =
           match segs with
           | [] -> false
           | seg :: tl -> (test_ok step seg && match_steps rest tl) || try_from tl
         in
         try_from segs)
  in
  match_steps pattern segments

let path_ids_matching db (pattern : Gxml.Path.t) =
  match Rdb.Database.query db "SELECT path_id, path FROM xml_path" with
  | Error m -> failwith m
  | Ok (_, rows) ->
    List.filter_map
      (fun row ->
        match row.(0), row.(1) with
        | Rdb.Value.Int id, Rdb.Value.Text p ->
          if path_matches pattern p then Some id else None
        | _ -> None)
      rows
    |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Reconstruction (Relation2XML for whole documents)                   *)
(* ------------------------------------------------------------------ *)

let reconstruct db ~doc_id =
  match
    Rdb.Database.query db
      (Printf.sprintf
         "SELECT node_id, parent_id, ord, kind, name, sval FROM xml_node \
          WHERE doc_id = %d ORDER BY node_id"
         doc_id)
  with
  | Error m -> Error m
  | Ok (_, []) -> Error (Printf.sprintf "no such document %d" doc_id)
  | Ok (_, rows) ->
    let open Rdb.Value in
    (* parent -> (ord, node row) children, separated by kind *)
    let nodes = Hashtbl.create 256 in
    let attrs_of = Hashtbl.create 64 and kids_of = Hashtbl.create 64 in
    let root = ref None in
    List.iter
      (fun row ->
        match row with
        | [| Int node_id; parent; Int ord; Text kind; name; sval |] ->
          Hashtbl.replace nodes node_id (kind, name, sval);
          (match parent with
           | Int p ->
             let tbl = if kind = "attr" then attrs_of else kids_of in
             Hashtbl.replace tbl p
               ((ord, node_id)
                :: (match Hashtbl.find_opt tbl p with Some l -> l | None -> []))
           | Null -> root := Some node_id
           | _ -> ())
        | _ -> ())
      rows;
    let sorted tbl p =
      match Hashtbl.find_opt tbl p with
      | None -> []
      | Some l -> List.sort compare l |> List.map snd
    in
    let rec build node_id : Gxml.Tree.node =
      match Hashtbl.find_opt nodes node_id with
      | None -> failwith "reconstruct: dangling node"
      | Some (kind, name, sval) ->
        (match kind with
         | "text" ->
           Gxml.Tree.Text (match sval with Text s -> s | _ -> "")
         | "elem" ->
           let tag = match name with Text t -> t | _ -> failwith "unnamed element" in
           let attrs =
             List.map
               (fun aid ->
                 match Hashtbl.find_opt nodes aid with
                 | Some ("attr", Text an, Text av) ->
                   { Gxml.Tree.attr_name = an; attr_value = av }
                 | _ -> failwith "reconstruct: bad attribute row")
               (sorted attrs_of node_id)
           in
           let children =
             match sval with
             | Text inline -> [ Gxml.Tree.Text inline ]
             | _ -> List.map build (sorted kids_of node_id)
           in
           Gxml.Tree.Element { tag; attrs; children }
         | k -> failwith ("reconstruct: unexpected kind " ^ k))
    in
    (match !root with
     | None -> Error "no root node"
     | Some r ->
       (match build r with
        | Gxml.Tree.Element e -> Ok (Gxml.Tree.document e)
        | Gxml.Tree.Text _ -> Error "root is a text node"
        | exception Failure m -> Error m))
