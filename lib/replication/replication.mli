(** WAL shipping: [xomatiq-repl/1] read replicas.

    The primary streams committed WAL records — the raw log lines,
    verbatim — to any number of replicas over the same length-prefixed
    framing as the query protocol; bulk-load spool files referenced by
    Load records are shipped before the batch that names them. A replica
    appends the lines to its own WAL {e before} applying them
    (append-before-apply: a crash replays from the local log, no resend
    needed), so its log is line-for-line the primary's stream and the
    logical record position means the same thing on every node. Replicas
    apply through the database's MVCC machinery and report their applied
    position; the primary tracks per-replica acknowledgements for lag
    accounting and as the WAL-truncation gate. Replay is idempotent:
    re-shipping records a replica already holds (restart mid-stream) is
    harmless. The normative frame grammar lives in PROTOCOL.md. *)

val version : string
(** ["xomatiq-repl/1"]. *)

val err_pos_truncated : string
(** The replica asked for records below the primary's retained WAL base;
    it must re-seed from the primary's data directory. *)

val err_proto : string

module Primary : sig
  type t

  val start : ?host:string -> port:int -> Rdb.Database.t -> t
  (** Listen for replicas ([port] 0 picks a free port; see {!port}).
      The database must have a WAL.
      @raise Invalid_argument without one. *)

  val port : t -> int

  val min_acked : t -> int option
  (** Slowest connected replica's applied position; [None] with no
      replica connected. *)

  val replica_lags : t -> (string * int * int) list
  (** Per connected replica: (peer address, acked position, lag in
      records behind the primary's WAL position). *)

  val status_json : t -> string
  (** The metrics [replication] object:
      [{"role": "primary", "position": …, "replicas": […]}]. *)

  val checkpoint : t -> unit
  (** {!Rdb.Database.checkpoint} with WAL truncation gated at
      {!min_acked}, so no connected replica is ever cut off; with none
      connected the whole checkpointed prefix is dropped. Keeps the WAL
      flat across sustained write load. *)

  val stop : t -> unit
end

module Replica : sig
  type t

  val start : host:string -> port:int -> Rdb.Database.t -> t
  (** Connect to the primary at [host:port] and stream from this
      database's current WAL position, retrying with backoff on
      connection loss. The database must have a WAL (spool files land
      beside it in [<wal>.spools/]).
      @raise Invalid_argument without one. *)

  val applied : t -> int
  (** WAL record position applied through (the position reported in
      ACK frames and DONE [seq=] trailers). *)

  val connected : t -> bool

  val status_json : t -> string
  (** The metrics [replication] object: [{"role": "replica", …}]. *)

  val wait_for : t -> pos:int -> timeout_s:float -> bool
  (** Block until {!applied} reaches [pos]; [false] on timeout. *)

  val stop : t -> unit
end
