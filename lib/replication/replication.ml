(* WAL shipping: xomatiq-repl/1.

   The primary streams its WAL — the raw record lines, verbatim — to
   any number of read replicas over the same length-prefixed framing the
   query protocol uses (see {!Xserver.Protocol}). A replica appends the
   shipped lines to its own WAL before applying them, so its log is
   line-for-line the primary's stream and the logical record position
   (Wal.position) means the same thing on every node: the handshake,
   acknowledgements, lag accounting and the primary's truncation gate
   all speak positions.

   Frames (tag, payload):
     'h' HELLO    replica -> primary   "xomatiq-repl/1 pos=<n>"
     'w' WELCOME  primary -> replica   "xomatiq-repl/1 pos=<n>"
     'f' SPOOL    primary -> replica   "<name>\n<bytes>" — a bulk-load
         spool file, shipped before the first RECORDS batch whose Load
         record references it
     'r' RECORDS  primary -> replica   "<start_pos>\n<line>\n<line>..."
     'a' ACK      replica -> primary   "pos=<n>" — applied through
     'X' ERROR    primary -> replica   "<CODE> <message>"

   Error codes: POS_TRUNCATED (the replica asks for records below the
   primary's retained WAL base — it must re-seed), PROTO_ERROR. *)

module P = Xserver.Protocol

let version = "xomatiq-repl/1"

let tag_hello = 'h'
let tag_welcome = 'w'
let tag_spool = 'f'
let tag_records = 'r'
let tag_ack = 'a'
let tag_error = 'X'

let err_pos_truncated = "POS_TRUNCATED"
let err_proto = "PROTO_ERROR"

(* Spool files ride in one frame; harvest-sized spools are tens of MB. *)
let max_frame = 256 * 1024 * 1024

(* Records per RECORDS frame: bounds frame size without a length scan. *)
let batch_lines = 512

let hello_payload ~pos = Printf.sprintf "%s pos=%d" version pos
let welcome_payload ~pos = Printf.sprintf "%s pos=%d" version pos
let ack_payload ~pos = Printf.sprintf "pos=%d" pos

let parse_pos_payload payload =
  let ver, rest = P.split_first_space payload in
  match String.index_opt rest '=' with
  | Some i when String.sub rest 0 i = "pos" ->
    Option.map
      (fun pos -> (ver, pos))
      (int_of_string_opt
         (String.sub rest (i + 1) (String.length rest - i - 1)))
  | _ -> None

let parse_ack payload =
  match String.index_opt payload '=' with
  | Some i when String.sub payload 0 i = "pos" ->
    int_of_string_opt (String.sub payload (i + 1) (String.length payload - i - 1))
  | _ -> None

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let debug fmt =
  if Sys.getenv_opt "XOMATIQ_REPL_DEBUG" <> None then
    Printf.eprintf ("[repl debug] " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* ================================================================== *)
(* Primary                                                             *)
(* ================================================================== *)

module Primary = struct
  type replica_conn = {
    rc_fd : Unix.file_descr;
    rc_peer : string;
    mutable rc_sent : int;   (* next record position to ship *)
    mutable rc_acked : int;  (* replica's applied-through position *)
    rc_spools : (string, unit) Hashtbl.t;  (* shipped this connection *)
    mutable rc_alive : bool;
  }

  type t = {
    db : Rdb.Database.t;
    listen_fd : Unix.file_descr;
    bound_port : int;
    stop : bool Atomic.t;
    mutex : Mutex.t;
    mutable replicas : replica_conn list;
    mutable accept_thread : Thread.t option;
    mutable serve_threads : Thread.t list;
  }

  let port t = t.bound_port

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  (* Applied positions of live replicas; [None] with none connected. *)
  let min_acked t =
    locked t @@ fun () ->
    List.fold_left
      (fun acc rc ->
        if not rc.rc_alive then acc
        else
          match acc with
          | None -> Some rc.rc_acked
          | Some m -> Some (min m rc.rc_acked))
      None t.replicas

  let replica_lags t =
    let pos = Rdb.Database.wal_position t.db in
    locked t @@ fun () ->
    List.filter_map
      (fun rc ->
        if rc.rc_alive then
          Some (rc.rc_peer, rc.rc_acked, max 0 (pos - rc.rc_acked))
        else None)
      t.replicas

  let status_json t =
    let lags = replica_lags t in
    Printf.sprintf "{\"role\": \"primary\", \"position\": %d, \"replicas\": [%s]}"
      (Rdb.Database.wal_position t.db)
      (String.concat ", "
         (List.map
            (fun (peer, acked, lag) ->
              Printf.sprintf
                "{\"peer\": \"%s\", \"acked\": %d, \"lag\": %d}" peer acked
                lag)
            lags))

  (* Checkpoint with WAL truncation, gated so no connected replica is
     ever cut off: the prefix dropped stops at the slowest acknowledged
     position (and [Database.checkpoint] further clamps it to the
     manifest). With no replica connected the whole checkpointed prefix
     goes. *)
  let checkpoint t =
    let upto = match min_acked t with Some m -> m | None -> max_int in
    Rdb.Database.checkpoint ~truncate_upto:upto t.db

  (* Drain whatever ACK bytes have arrived; never blocks. *)
  let drain_acks rc dec rdbuf =
    let rec read_avail () =
      match Unix.read rc.rc_fd rdbuf 0 (Bytes.length rdbuf) with
      | 0 -> raise P.Closed
      | n ->
        P.Decoder.feed dec rdbuf 0 n;
        read_avail ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_avail ()
    in
    read_avail ();
    let rec frames () =
      match P.Decoder.next dec with
      | Some (tag, payload) when tag = tag_ack ->
        (match parse_ack payload with
         | Some pos when pos > rc.rc_acked -> rc.rc_acked <- pos
         | _ -> ());
        frames ()
      | Some _ -> frames ()  (* unknown frames are ignored, not fatal *)
      | None -> ()
    in
    frames ()

  (* Ship the spool files referenced by this batch's Load records, each
     once per connection: the file must be on the replica's disk before
     it appends (and possibly applies) the record that reads it. *)
  let ship_spools rc deadline lines =
    List.iter
      (fun line ->
        match Rdb.Wal.decode line with
        | Some (Rdb.Wal.Load { spool; _ })
          when not (Hashtbl.mem rc.rc_spools spool) ->
          Hashtbl.replace rc.rc_spools spool ();
          let bytes =
            let ic = open_in_bin spool in
            Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
            really_input_string ic (in_channel_length ic)
          in
          P.write_frame ~deadline rc.rc_fd tag_spool
            (Filename.basename spool ^ "\n" ^ bytes)
        | _ -> ())
      lines

  let rec batches = function
    | [] -> []
    | lines ->
      let rec take n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | l :: rest -> take (n - 1) (l :: acc) rest
      in
      let batch, rest = take batch_lines [] lines in
      batch :: batches rest

  let write_deadline () = Rdb.Obs.now_s () +. 30.

  let serve_replica t rc =
    let dec = P.Decoder.create ~max_frame () in
    let rdbuf = Bytes.create 4096 in
    let wal_file =
      match Rdb.Database.wal_file t.db with Some p -> p | None -> assert false
    in
    let rec loop () =
      if Atomic.get t.stop || not rc.rc_alive then ()
      else begin
        drain_acks rc dec rdbuf;
        (match Rdb.Wal.tail_from wal_file ~pos:rc.rc_sent with
         | `Truncated base ->
           P.write_frame ~deadline:(write_deadline ()) rc.rc_fd tag_error
             (P.error_payload ~code:err_pos_truncated
                (Printf.sprintf "oldest retained record is %d" base));
           raise P.Closed
         | `Ok [] ->
           (* idle: park on the socket so an ACK wakes us early *)
           ignore
             (P.wait_readable rc.rc_fd
                ~deadline:(Rdb.Obs.now_s () +. 0.02))
         | `Ok lines ->
           List.iter
             (fun batch ->
               ship_spools rc (write_deadline ()) batch;
               let payload =
                 string_of_int rc.rc_sent ^ "\n" ^ String.concat "\n" batch
               in
               P.write_frame ~deadline:(write_deadline ()) rc.rc_fd
                 tag_records payload;
               debug "primary: shipped %d records from %d" (List.length batch)
                 rc.rc_sent;
               rc.rc_sent <- rc.rc_sent + List.length batch)
             (batches lines));
        loop ()
      end
    in
    (try loop () with
     | P.Closed | P.Proto_error _ | P.Io_timeout | End_of_file
     | Unix.Unix_error _ | Sys_error _ -> ());
    rc.rc_alive <- false;
    close_quietly rc.rc_fd;
    locked t (fun () ->
        t.replicas <- List.filter (fun r -> r != rc) t.replicas)

  let handshake t fd peer =
    let deadline = Rdb.Obs.now_s () +. 10. in
    let tag, payload = P.read_frame ~deadline ~max_frame fd in
    if tag <> tag_hello then begin
      P.write_frame ~deadline fd tag_error
        (P.error_payload ~code:err_proto "expected HELLO");
      raise P.Closed
    end;
    match parse_pos_payload payload with
    | Some (ver, pos) when ver = version ->
      let base = Rdb.Database.wal_base t.db in
      let cur = Rdb.Database.wal_position t.db in
      if pos < base then begin
        P.write_frame ~deadline fd tag_error
          (P.error_payload ~code:err_pos_truncated
             (Printf.sprintf
                "requested position %d but the oldest retained record is %d; \
                 re-seed from the primary's data directory"
                pos base));
        raise P.Closed
      end;
      if pos > cur then begin
        P.write_frame ~deadline fd tag_error
          (P.error_payload ~code:err_proto
             (Printf.sprintf
                "requested position %d is beyond the primary's %d" pos cur));
        raise P.Closed
      end;
      P.write_frame ~deadline fd tag_welcome (welcome_payload ~pos:cur);
      { rc_fd = fd; rc_peer = peer; rc_sent = pos; rc_acked = pos;
        rc_spools = Hashtbl.create 8; rc_alive = true }
    | _ ->
      P.write_frame ~deadline fd tag_error
        (P.error_payload ~code:err_proto
           (Printf.sprintf "unsupported replication handshake %S" payload));
      raise P.Closed

  (* The listen socket is non-blocking and polled with a short deadline:
     on Linux, close() does not wake a thread parked in a blocking
     accept(), so [stop] could never join this thread otherwise. *)
  let accept_loop t =
    while not (Atomic.get t.stop) do
      if
        (not (P.wait_readable t.listen_fd ~deadline:(Rdb.Obs.now_s () +. 0.25)))
        || Atomic.get t.stop
      then ()
      else
      match Unix.accept t.listen_fd with
      | fd, addr ->
        let peer =
          match addr with
          | Unix.ADDR_INET (a, p) ->
            Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
          | _ -> "?"
        in
        (try
           Unix.set_nonblock fd;
           (try Unix.setsockopt fd Unix.TCP_NODELAY true
            with Unix.Unix_error _ -> ());
           let rc = handshake t fd peer in
           debug "primary: accepted %s at pos=%d" peer rc.rc_sent;
           locked t (fun () -> t.replicas <- rc :: t.replicas);
           let th = Thread.create (fun () -> serve_replica t rc) () in
           locked t (fun () -> t.serve_threads <- th :: t.serve_threads)
         with
         | P.Closed | P.Proto_error _ | P.Io_timeout | End_of_file
         | Unix.Unix_error _ ->
           close_quietly fd)
      | exception
          Unix.Unix_error
            ( ( Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN
              | Unix.EWOULDBLOCK ),
              _, _ ) ->
        ()
      | exception Unix.Unix_error _ -> if not (Atomic.get t.stop) then Thread.delay 0.05
    done

  let start ?(host = "127.0.0.1") ~port db =
    if Rdb.Database.wal_file db = None then
      invalid_arg "Replication.Primary.start: the primary needs a WAL";
    let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
    (try
       Unix.bind listen_fd
         (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
     with e ->
       close_quietly listen_fd;
       raise e);
    Unix.listen listen_fd 16;
    Unix.set_nonblock listen_fd;
    let bound_port =
      match Unix.getsockname listen_fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    let t =
      { db; listen_fd; bound_port; stop = Atomic.make false;
        mutex = Mutex.create (); replicas = []; accept_thread = None;
        serve_threads = [] }
    in
    t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
    t

  let stop t =
    Atomic.set t.stop true;
    locked t (fun () ->
        List.iter (fun rc -> rc.rc_alive <- false) t.replicas);
    Option.iter Thread.join t.accept_thread;
    (* only after the join: a recycled descriptor must not be accepted *)
    close_quietly t.listen_fd;
    let threads = locked t (fun () -> t.serve_threads) in
    List.iter Thread.join threads
end

(* ================================================================== *)
(* Replica                                                             *)
(* ================================================================== *)

module Replica = struct
  type t = {
    db : Rdb.Database.t;
    primary_host : string;
    primary_port : int;
    spool_dir : string;
    stop : bool Atomic.t;
    mutex : Mutex.t;
    mutable applied : int;       (* WAL position applied through *)
    mutable connected : bool;
    mutable last_error : string option;
    (* Uncommitted transactions mid-stream: data ops buffered (newest
       first) until their Commit record arrives. Survives reconnects;
       rebuilt from the local WAL tail after a restart. *)
    pending : (int, Rdb.Wal.op list) Hashtbl.t;
    mutable thread : Thread.t option;
  }

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  let applied t = locked t (fun () -> t.applied)
  let connected t = locked t (fun () -> t.connected)

  let status_json t =
    locked t @@ fun () ->
    Printf.sprintf
      "{\"role\": \"replica\", \"primary\": \"%s:%d\", \"connected\": %b, \
       \"applied\": %d}"
      t.primary_host t.primary_port t.connected t.applied

  (* Rebuild the mid-stream transaction buffers from the local WAL:
     records of transactions whose Commit had not arrived before a
     restart are already on disk (append-before-apply) and must not be
     lost when it does arrive. *)
  let preload_pending t =
    match Rdb.Database.wal_file t.db with
    | None -> ()
    | Some path ->
      List.iter
        (fun (op : Rdb.Wal.op) ->
          match op with
          | Rdb.Wal.Begin txid -> Hashtbl.replace t.pending txid []
          | Rdb.Wal.Commit txid | Rdb.Wal.Rollback txid ->
            Hashtbl.remove t.pending txid
          | Rdb.Wal.Insert { txid; _ } | Rdb.Wal.Delete { txid; _ }
          | Rdb.Wal.Update { txid; _ } | Rdb.Wal.Load { txid; _ } ->
            (match Hashtbl.find_opt t.pending txid with
             | Some ops -> Hashtbl.replace t.pending txid (op :: ops)
             | None -> ())
          | Rdb.Wal.Ddl _ -> ())
        (Rdb.Wal.ops_from path ~pos:(Rdb.Wal.read_base path))

  (* Rewrite a Load record's spool path to this replica's spool
     directory before it reaches the local WAL: the shipped SPOOL frame
     landed there under the primary path's basename. *)
  let localize_line t line =
    match Rdb.Wal.decode line with
    | Some (Rdb.Wal.Load l) ->
      Rdb.Wal.encode
        (Rdb.Wal.Load
           { l with
             spool = Filename.concat t.spool_dir (Filename.basename l.spool)
           })
    | _ -> line

  let apply_op t (op : Rdb.Wal.op) =
    match op with
    | Rdb.Wal.Begin txid -> Hashtbl.replace t.pending txid []
    | Rdb.Wal.Insert { txid; _ } | Rdb.Wal.Delete { txid; _ }
    | Rdb.Wal.Update { txid; _ } | Rdb.Wal.Load { txid; _ } ->
      (match Hashtbl.find_opt t.pending txid with
       | Some ops -> Hashtbl.replace t.pending txid (op :: ops)
       | None -> Hashtbl.replace t.pending txid [ op ])
    | Rdb.Wal.Commit txid ->
      (match Hashtbl.find_opt t.pending txid with
       | Some ops ->
         Hashtbl.remove t.pending txid;
         Rdb.Database.repl_apply_txn t.db (List.rev ops)
       | None -> ())
    | Rdb.Wal.Rollback txid -> Hashtbl.remove t.pending txid
    | Rdb.Wal.Ddl sql -> Rdb.Database.repl_apply_ddl t.db sql

  let handle_spool t payload =
    match String.index_opt payload '\n' with
    | None -> failwith "replication: malformed SPOOL frame"
    | Some i ->
      let name = Filename.basename (String.sub payload 0 i) in
      let dest = Filename.concat t.spool_dir name in
      let oc = open_out_bin dest in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
      output_substring oc payload (i + 1) (String.length payload - i - 1)

  let handle_records t fd payload =
    let start, body =
      match String.index_opt payload '\n' with
      | None -> (int_of_string payload, "")
      | Some i ->
        ( int_of_string (String.sub payload 0 i),
          String.sub payload (i + 1) (String.length payload - i - 1) )
    in
    let lines = if body = "" then [] else String.split_on_char '\n' body in
    let cur = locked t (fun () -> t.applied) in
    if start <> cur then
      failwith
        (Printf.sprintf
           "replication: stream position %d does not match applied %d" start
           cur);
    let lines = List.map (localize_line t) lines in
    (* append-before-apply: once the lines are on disk, a crash replays
       them from the local WAL instead of needing a resend *)
    Rdb.Database.repl_append_lines t.db lines;
    List.iter
      (fun line ->
        match Rdb.Wal.decode line with
        | Some op -> apply_op t op
        | None -> failwith "replication: undecodable record in stream")
      lines;
    let pos = cur + List.length lines in
    debug "replica: applied %d records through %d" (List.length lines) pos;
    locked t (fun () -> t.applied <- pos);
    P.write_frame ~deadline:(Rdb.Obs.now_s () +. 30.) fd tag_ack
      (ack_payload ~pos)

  let session t =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () ->
        close_quietly fd;
        locked t (fun () -> t.connected <- false))
    @@ fun () ->
    let addr =
      try Unix.inet_addr_of_string t.primary_host
      with Failure _ ->
        (Unix.gethostbyname t.primary_host).Unix.h_addr_list.(0)
    in
    Unix.connect fd (Unix.ADDR_INET (addr, t.primary_port));
    Unix.set_nonblock fd;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ());
    let deadline = Rdb.Obs.now_s () +. 10. in
    P.write_frame ~deadline fd tag_hello
      (hello_payload ~pos:(locked t (fun () -> t.applied)));
    (let tag, payload = P.read_frame ~deadline ~max_frame fd in
     if tag = tag_error then begin
       let code, msg = P.parse_error_payload payload in
       failwith (Printf.sprintf "replication: %s %s" code msg)
     end
     else if tag <> tag_welcome then
       failwith "replication: expected WELCOME");
    locked t (fun () ->
        t.connected <- true;
        t.last_error <- None);
    debug "replica: connected, applied=%d" (locked t (fun () -> t.applied));
    (* Incremental frame loop: partial frames survive across short poll
       rounds (a fixed-deadline read_frame would drop mid-frame bytes on
       timeout and desynchronize the stream), and the stop flag is
       checked every round. *)
    let dec = P.Decoder.create ~max_frame () in
    let rdbuf = Bytes.create 65536 in
    while not (Atomic.get t.stop) do
      match P.Decoder.next dec with
      | Some (tag, payload) when tag = tag_spool -> handle_spool t payload
      | Some (tag, payload) when tag = tag_records ->
        handle_records t fd payload
      | Some (tag, payload) when tag = tag_error ->
        let code, msg = P.parse_error_payload payload in
        failwith (Printf.sprintf "replication: %s %s" code msg)
      | Some _ -> failwith "replication: unexpected frame from primary"
      | None -> (
        match Unix.read fd rdbuf 0 (Bytes.length rdbuf) with
        | 0 -> raise P.Closed
        | n -> P.Decoder.feed dec rdbuf 0 n
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
          ignore (P.wait_readable fd ~deadline:(Rdb.Obs.now_s () +. 0.25))
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    done

  let rec run t =
    if not (Atomic.get t.stop) then begin
      (try session t with
       | P.Closed | End_of_file -> locked t (fun () -> t.last_error <- Some "connection closed")
       | P.Proto_error m -> locked t (fun () -> t.last_error <- Some m)
       | Unix.Unix_error (e, _, _) ->
         locked t (fun () -> t.last_error <- Some (Unix.error_message e))
       | Failure m -> locked t (fun () -> t.last_error <- Some m));
      (match locked t (fun () -> t.last_error) with
       | Some m ->
         debug "replica: session ended: %s (applied=%d)" m
           (locked t (fun () -> t.applied))
       | None -> ());
      if not (Atomic.get t.stop) then begin
        Thread.delay 0.1;
        run t
      end
    end

  let start ~host ~port db =
    let wal =
      match Rdb.Database.wal_file db with
      | Some p -> p
      | None -> invalid_arg "Replication.Replica.start: the replica needs a WAL"
    in
    let spool_dir = wal ^ ".spools" in
    if not (Sys.file_exists spool_dir) then Unix.mkdir spool_dir 0o755;
    let t =
      { db; primary_host = host; primary_port = port; spool_dir;
        stop = Atomic.make false; mutex = Mutex.create ();
        applied = Rdb.Database.wal_position db; connected = false;
        last_error = None; pending = Hashtbl.create 8; thread = None }
    in
    preload_pending t;
    t.thread <- Some (Thread.create (fun () -> run t) ());
    t

  let stop t =
    Atomic.set t.stop true;
    Option.iter Thread.join t.thread

  (* Block until the replica has applied through [pos] (for tests and
     orchestration); false on timeout. *)
  let wait_for t ~pos ~timeout_s =
    let give_up = Rdb.Obs.now_s () +. timeout_s in
    let rec go () =
      if applied t >= pos then true
      else if Rdb.Obs.now_s () > give_up then false
      else begin
        Thread.delay 0.01;
        go ()
      end
    in
    go ()
end
