(* Columnar row batches for the vectorized executor. See batch.mli. *)

type col =
  | I of int array
  | V of Value.t array

type t = {
  len : int;
  cols : col array;
  sel : int array option;
}

let default_rows = 1024

let max_rows () =
  match Sys.getenv_opt "XOMATIQ_VEC_BATCH" with
  | None | Some "" -> default_rows
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> max 1 (min n 4096)
      | None -> default_rows)

let arity b = Array.length b.cols

let live b = match b.sel with None -> b.len | Some s -> Array.length s

let get b c r =
  match b.cols.(c) with
  | I a -> Value.Int a.(r)
  | V a -> a.(r)

let row b r = Array.init (Array.length b.cols) (fun c -> get b c r)

let iter_live f b =
  match b.sel with
  | None ->
      for r = 0 to b.len - 1 do
        f r
      done
  | Some s -> Array.iter f s

let fold_live f acc b =
  match b.sel with
  | None ->
      let acc = ref acc in
      for r = 0 to b.len - 1 do
        acc := f !acc r
      done;
      !acc
  | Some s -> Array.fold_left f acc s

let rows b =
  match b.sel with
  | None -> Seq.init b.len (fun r -> row b r)
  | Some s -> Seq.init (Array.length s) (fun i -> row b s.(i))

(* Transpose rows into columns. A column becomes unboxed only when every
   entry is Value.Int. *)
let of_rows ~arity (rows : Value.t array array) =
  let n = Array.length rows in
  let cols =
    Array.init arity (fun c ->
        (* one fused check-and-fill pass: unbox optimistically, abort to
           the boxed representation at the first non-Int value (for a
           text column that is row 0, so the probe costs O(1)) *)
        let ia = Array.make n 0 in
        let r = ref 0 in
        let all_int = ref true in
        while !all_int && !r < n do
          (match rows.(!r).(c) with
           | Value.Int i -> ia.(!r) <- i
           | _ -> all_int := false);
          if !all_int then incr r
        done;
        if !all_int then I ia else V (Array.init n (fun r -> rows.(r).(c))))
  in
  { len = n; cols; sel = None }

let of_values (vals : Value.t array) =
  let n = Array.length vals in
  let all_int = ref true in
  for k = 0 to n - 1 do
    match vals.(k) with Value.Int _ -> () | _ -> all_int := false
  done;
  if !all_int then
    I
      (Array.init n (fun k ->
           match vals.(k) with Value.Int i -> i | _ -> assert false))
  else V vals

let gather cols idx =
  Array.map
    (function
      | I a -> I (Array.map (fun r -> a.(r)) idx)
      | V a -> V (Array.map (fun r -> a.(r)) idx))
    cols

let compact b =
  match b.sel with
  | None -> b
  | Some s -> { len = Array.length s; cols = gather b.cols s; sel = None }

let concat ~arity bs =
  match bs with
  | [] -> { len = 0; cols = Array.init arity (fun _ -> I [||]); sel = None }
  | [ b ] when arity = Array.length b.cols -> compact b
  | bs ->
      let bs = List.map compact bs in
      let n = List.fold_left (fun acc b -> acc + b.len) 0 bs in
      let cols =
        Array.init arity (fun c ->
            (* unboxed only when every input keeps this column unboxed *)
            let all_int =
              List.for_all
                (fun b -> match b.cols.(c) with I _ -> true | V _ -> false)
                bs
            in
            if all_int then begin
              let out = Array.make n 0 in
              let off = ref 0 in
              List.iter
                (fun b ->
                  (match b.cols.(c) with
                  | I a -> Array.blit a 0 out !off b.len
                  | V _ -> assert false);
                  off := !off + b.len)
                bs;
              I out
            end
            else begin
              let out = Array.make n Value.Null in
              let off = ref 0 in
              List.iter
                (fun b ->
                  (match b.cols.(c) with
                  | I a ->
                      for r = 0 to b.len - 1 do
                        out.(!off + r) <- Value.Int a.(r)
                      done
                  | V a -> Array.blit a 0 out !off b.len);
                  off := !off + b.len)
                bs;
              V out
            end)
      in
      { len = n; cols; sel = None }

let append_cols l r li ri =
  Array.append (gather l.cols li) (gather r.cols ri)

let to_row_seq bseq = Seq.concat_map rows bseq

let chunk_rows ~arity rows =
  let cap = max_rows () in
  let rec go acc buf n = function
    | [] ->
        let acc =
          if n = 0 then acc
          else of_rows ~arity (Array.of_list (List.rev buf)) :: acc
        in
        List.rev acc
    | r :: rest ->
        if n + 1 >= cap then
          go
            (of_rows ~arity (Array.of_list (List.rev (r :: buf))) :: acc)
            [] 0 rest
        else go acc (r :: buf) (n + 1) rest
  in
  go [] [] 0 rows
