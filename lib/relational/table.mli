(** Heap tables: append-only row stores with tombstone deletion and
    attached secondary indexes. Row ids are stable for the lifetime of a
    row and never reused.

    Two interchangeable backends share the rowid discipline: the
    in-memory vector, and (given a [storage] context) a paged heap file
    read through the buffer pool. *)

type t

val create : ?storage:Storage.t -> Schema.t -> t
(** A declared primary key materialises as an implicit unique index named
    ["<table>_pkey"] (B+tree). With [storage] the rows live in a paged
    heap file (attached if its files already exist). *)

val schema : t -> Schema.t
val row_count : t -> int
(** Live rows. *)

val next_rowid : t -> int
(** The rowid the next insert will receive (= slots ever allocated). *)

val insert : t -> Value.t array -> (int, string) result
(** Validates against the schema and all unique indexes; returns the new
    row id. On error nothing is modified. *)

val append_bulk : t -> Value.t array -> (int, string) result
(** Append without maintaining indexes (the bulk-load path builds them
    separately). Schema validation still applies. *)

val delete : t -> int -> bool
(** [delete t rowid] tombstones a row; false if already dead or out of
    range. Indexes are maintained. *)

val update : t -> int -> Value.t array -> (unit, string) result
(** Replace the row image; indexes are maintained. *)

val undelete : t -> int -> Value.t array -> bool
(** [undelete t rowid row] restores a previously tombstoned slot with the
    given row image (transaction rollback of a delete). False if the slot
    is live or out of range. Indexes are maintained. *)

val get : t -> int -> Value.t array option
(** [None] for tombstoned or unknown ids. *)

val scan : t -> (int * Value.t array) Seq.t
(** Live rows in row-id order. *)

val scan_range : t -> lo:int -> hi:int -> (int * Value.t array) Seq.t
(** Live rows with [lo <= rowid < hi] in row-id order. *)

val scan_part : t -> index:int -> parts:int -> (int * Value.t array) Seq.t
(** Live rows of the [index]-th of [parts] contiguous rowid chunks, in
    row-id order. Chunk bounds split the rowid space evenly and are
    computed when the sequence is first pulled, so concatenating all
    [parts] chunks in order equals {!scan} at that moment. *)

val add_index : t -> Index.t -> (unit, string) result
(** Builds the index over existing rows; fails (leaving the table
    unchanged) if a unique constraint is violated by current data. *)

val attach_index : t -> Index.t -> unit
(** Register an already-populated index without building it (attach of a
    paged index after a clean shutdown). *)

val drop_index : t -> string -> bool

val indexes : t -> Index.t list
val find_index : t -> string -> Index.t option

val truncate : t -> unit
(** Remove all rows (indexes are emptied, row ids restart at 0). *)

val close : t -> unit
(** Write back and close the backing page files (no-op in memory). *)

val destroy : t -> unit
(** Delete the backing page files (no-op in memory). *)
