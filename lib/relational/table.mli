(** Heap tables: append-only row vectors with tombstone deletion and
    attached secondary indexes. Row ids are stable for the lifetime of a
    row and never reused. *)

type t

val create : Schema.t -> t
(** A declared primary key materialises as an implicit unique index named
    ["<table>_pkey"] (B+tree). *)

val schema : t -> Schema.t
val row_count : t -> int
(** Live rows. *)

val insert : t -> Value.t array -> (int, string) result
(** Validates against the schema and all unique indexes; returns the new
    row id. On error nothing is modified. *)

val delete : t -> int -> bool
(** [delete t rowid] tombstones a row; false if already dead or out of
    range. Indexes are maintained. *)

val update : t -> int -> Value.t array -> (unit, string) result
(** Replace the row image; indexes are maintained. *)

val undelete : t -> int -> Value.t array -> bool
(** [undelete t rowid row] restores a previously tombstoned slot with the
    given row image (transaction rollback of a delete). False if the slot
    is live or out of range. Indexes are maintained. *)

val get : t -> int -> Value.t array option
(** [None] for tombstoned or unknown ids. *)

val scan : t -> (int * Value.t array) Seq.t
(** Live rows in row-id order. *)

val scan_part : t -> index:int -> parts:int -> (int * Value.t array) Seq.t
(** Live rows of the [index]-th of [parts] contiguous rowid chunks, in
    row-id order. Chunk bounds split the rowid space evenly and are
    computed when the sequence is first pulled, so concatenating all
    [parts] chunks in order equals {!scan} at that moment. *)

val add_index : t -> Index.t -> (unit, string) result
(** Builds the index over existing rows; fails (leaving the table
    unchanged) if a unique constraint is violated by current data. *)

val drop_index : t -> string -> bool

val indexes : t -> Index.t list
val find_index : t -> string -> Index.t option

val truncate : t -> unit
(** Remove all rows (indexes are emptied, row ids restart at 0). *)
