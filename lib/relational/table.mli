(** Heap tables: append-only row stores with tombstone deletion and
    attached secondary indexes. Row ids are stable for the lifetime of a
    row and never reused.

    Two interchangeable backends share the rowid discipline: the
    in-memory vector, and (given a [storage] context) a paged heap file
    read through the buffer pool. *)

type t

val create : ?storage:Storage.t -> Schema.t -> t
(** A declared primary key materialises as an implicit unique index named
    ["<table>_pkey"] (B+tree). With [storage] the rows live in a paged
    heap file (attached if its files already exist). *)

val schema : t -> Schema.t
val row_count : t -> int
(** Live rows. *)

val next_rowid : t -> int
(** The rowid the next insert will receive (= slots ever allocated). *)

val insert : t -> Value.t array -> (int, string) result
(** Validates against the schema and all unique indexes; returns the new
    row id. On error nothing is modified. *)

val append_bulk : t -> Value.t array -> (int, string) result
(** Append without maintaining indexes (the bulk-load path builds them
    separately). Schema validation still applies. *)

val delete : t -> int -> bool
(** [delete t rowid] tombstones a row; false if already dead or out of
    range. Indexes are maintained. *)

val update : t -> int -> Value.t array -> (unit, string) result
(** Replace the row image; indexes are maintained. *)

val undelete : t -> int -> Value.t array -> bool
(** [undelete t rowid row] restores a previously tombstoned slot with the
    given row image (transaction rollback of a delete). False if the slot
    is live or out of range. Indexes are maintained. *)

val get : t -> int -> Value.t array option
(** [None] for tombstoned or unknown ids. *)

val scan : t -> (int * Value.t array) Seq.t
(** Live rows in row-id order. *)

val scan_range : t -> lo:int -> hi:int -> (int * Value.t array) Seq.t
(** Live rows with [lo <= rowid < hi] in row-id order. *)

val scan_part : t -> index:int -> parts:int -> (int * Value.t array) Seq.t
(** Live rows of the [index]-th of [parts] contiguous rowid chunks, in
    row-id order. Chunk bounds split the rowid space evenly and are
    computed when the sequence is first pulled, so concatenating all
    [parts] chunks in order equals {!scan} at that moment. *)

val add_index : t -> Index.t -> (unit, string) result
(** Builds the index over existing rows; fails (leaving the table
    unchanged) if a unique constraint is violated by current data. *)

val attach_index : t -> Index.t -> unit
(** Register an already-populated index without building it (attach of a
    paged index after a clean shutdown). *)

val drop_index : t -> string -> bool

val indexes : t -> Index.t list
val find_index : t -> string -> Index.t option

val truncate : t -> unit
(** Remove all rows (indexes are emptied, row ids restart at 0). *)

(** {2 MVCC snapshot reads}

    Copy-on-write row visibility keyed by commit sequence number. A
    writer stashes a row's pre-image before its first modification and
    the table length before its first append; commit seals the stashes
    at the new CSN, rollback discards them. A snapshot [{at; self}]
    reads the image each row had at CSN [at] — plus the uncommitted
    writes of transaction [self], its own — without taking any lock the
    writer could block on. Table-level exclusive write locks mean at
    most one writer is ever in flight per table, which keeps version
    chains single-pending and lets readers run entirely lock-free
    (amortised one mutex acquisition per scanned chunk) when no
    version history exists. *)

type snap = { at : int; self : int }
(** [at]: the CSN this read is positioned at. [self]: the reader's own
    transaction id ([-1] when not in a transaction) — a transaction
    sees its own uncommitted writes. *)

val stash_row : t -> txid:int -> ?since:int -> int -> bool
(** [stash_row t ~txid ?since rowid] records the row's pre-image before
    [txid]'s first modification of it (idempotent per transaction).
    MUST be called before mutating the row. With [since] (the writer's
    pinned snapshot), returns [false] — and stashes nothing — when the
    row was committed over since that snapshot: first-updater-wins, the
    caller must abort the transaction. *)

val stash_len : t -> txid:int -> unit
(** Record the table length before [txid]'s first append (idempotent
    per transaction). MUST be called before the append. *)

val seal_versions : t -> txid:int -> csn:int -> unit
(** Commit [txid]'s stashes as history valid until [csn]. Call before
    publishing [csn] as the current clock. *)

val discard_versions : t -> txid:int -> unit
(** Drop [txid]'s pending stashes: rollback (after the raw store has
    been restored), or a commit no active snapshot needs to remember. *)

val gc_versions : t -> min_active:int option -> int
(** Reclaim sealed versions no active snapshot can reach ([None]: no
    snapshot is active, reclaim all sealed history). Returns the
    remaining version count. *)

val visible_len : t -> snap -> int
(** Rowids at or past this bound do not exist for the snapshot. *)

val get_at : t -> snap -> int -> Value.t array option
(** {!get} as of the snapshot. *)

val scan_at : t -> snap -> (int * Value.t array) Seq.t
(** {!scan} as of the snapshot: rows visible at [snap.at] (plus
    [snap.self]'s own writes) in rowid order. Never blocks on writers;
    a chunked re-validation protocol keeps it raw-speed when no version
    history exists. *)

val scan_part_at : t -> snap -> index:int -> parts:int -> (int * Value.t array) Seq.t
(** {!scan_part} as of the snapshot; concatenating all parts equals
    {!scan_at}. *)

val lookup_at : t -> snap -> Index.t -> Value.t array -> Value.t array list
(** Index equality probe as of the snapshot: the rows whose snapshot
    image carries exactly this key. When version history exists the
    current index may disagree with the snapshot, so candidates are
    re-validated against their resolved images and emitted in rowid
    order; otherwise this is exactly the raw probe. *)

val range_at :
  t -> snap -> Index.t ->
  ?lo:Value.t array * bool -> ?hi:Value.t array * bool -> unit ->
  Value.t array list
(** Index range probe as of the snapshot, emitted in (key, rowid)
    order. Btree indexes only, same NULL semantics as {!Index.range}. *)

val close : t -> unit
(** Write back and close the backing page files (no-op in memory). *)

val destroy : t -> unit
(** Delete the backing page files (no-op in memory). *)
