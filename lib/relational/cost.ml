(* Cardinality and cost estimation over physical plans.

   Runs as a separate pass after planning: it walks a [Plan.t] bottom-up,
   tracking for every output slot which base-table column it carries
   (provenance), so compiled [CCol] slots can be mapped back to the
   column statistics collected by ANALYZE. The resulting per-node
   estimates drive the EXPLAIN annotations; EXPLAIN ANALYZE prints them
   side by side with the observed row counts.

   The cost unit is abstract "rows touched": a sequential scan costs its
   input cardinality, an index probe costs log2 of the entry count plus
   the matched rows, and joins compose costs the way the executor runs
   them (the nested-loop right side is re-executed per left row). *)

type est = { est_rows : float; est_cost : float }

type estimates = (Plan.t * est) list
(* keyed by physical identity, like Obs profiles *)

(* provenance: for each slot of a node's output row, the base
   (table, column) it carries, when known; both lowercase *)
type prov = (string * string) option array

let find ests node =
  let rec go = function
    | [] -> None
    | (n, e) :: tl -> if n == node then Some e else go tl
  in
  go ests

let clamp_sel s = Float.max 1e-4 (Float.min 1.0 s)

let log2 x = Float.log x /. Float.log 2.

(* Below this combined input size the merge join's key sorts are in the
   noise; charging them would push tiny (paper-figure scale) plans off
   the merge path for no measurable gain. *)
let structural_sort_floor = 256.

let structural_sort_cost nl nr =
  if nl +. nr < structural_sort_floor then 0.
  else
    let f n = if n <= 1. then 0. else n *. log2 n in
    f nl +. f nr

let rec col_of = function
  | Plan.CCol i -> Some i
  | Plan.CFn (_, [ e ]) -> col_of e  (* LOWER(col) etc. preserve distribution *)
  | _ -> None

let lit_of = function Plan.CLit v -> Some v | _ -> None

(* no reference to the current row: literals, correlated params, scalars *)
let rec const_ish = function
  | Plan.CCol _ -> false
  | Plan.CLit _ | Plan.CParam _ | Plan.CScalar_plan _ -> true
  | Plan.CBinop (_, a, b) -> const_ish a && const_ish b
  | Plan.CUnop (_, a) -> const_ish a
  | Plan.CFn (_, args) -> List.for_all const_ish args
  | _ -> false

let rec conjuncts = function
  | Plan.CBinop (Sql_ast.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let estimate cat plan =
  let acc = ref [] in
  let note node e = acc := (node, e) :: !acc in
  let stats_of (prov : prov) i =
    if i < 0 || i >= Array.length prov then None
    else
      match prov.(i) with
      | None -> None
      | Some (t, c) ->
        (match Catalog.find_stats cat t with
         | None -> None
         | Some ts -> Stats.find_column ts c)
  in
  let distinct_of prov e =
    match col_of e with
    | None -> None
    | Some i ->
      (match stats_of prov i with
       | Some cs when cs.Stats.n_distinct > 0 -> Some cs.Stats.n_distinct
       | _ -> None)
  in
  let eq_sel prov e =
    match col_of e with
    | Some i ->
      (match stats_of prov i with
       | Some cs -> Stats.eq_selectivity cs
       | None -> Stats.default_eq)
    | None -> Stats.default_eq
  in
  (* selectivity of one conjunct against a row with provenance [prov] *)
  let rec sel prov e =
    clamp_sel
      (match e with
       | Plan.CBinop (Sql_ast.Eq, a, b) ->
         (match col_of a, col_of b with
          | Some i, Some j ->
            (match stats_of prov i, stats_of prov j with
             | Some c1, Some c2 ->
               1. /. float_of_int (max 1 (max c1.Stats.n_distinct c2.Stats.n_distinct))
             | Some c, None | None, Some c ->
               1. /. float_of_int (max 1 c.Stats.n_distinct)
             | None, None -> Stats.default_eq)
          | Some _, None when const_ish b -> eq_sel prov a
          | None, Some _ when const_ish a -> eq_sel prov b
          | _ -> Stats.default_eq)
       | Plan.CBinop (Sql_ast.Neq, a, b) ->
         1. -. sel prov (Plan.CBinop (Sql_ast.Eq, a, b))
       | Plan.CBinop ((Sql_ast.Lt | Sql_ast.Le | Sql_ast.Gt | Sql_ast.Ge) as op, a, b)
         ->
         let directional col_e lit_e ~col_on_left =
           match col_of col_e, lit_of lit_e with
           | Some i, Some v ->
             (match stats_of prov i with
              | Some cs ->
                let le = Stats.le_fraction cs v in
                let col_le =
                  (* is the predicate "col <= v"-shaped after normalising? *)
                  match op, col_on_left with
                  | (Sql_ast.Lt | Sql_ast.Le), true -> true
                  | (Sql_ast.Gt | Sql_ast.Ge), true -> false
                  | (Sql_ast.Lt | Sql_ast.Le), false -> false
                  | (Sql_ast.Gt | Sql_ast.Ge), false -> true
                  | _ -> true
                in
                if col_le then le else Float.max 0. (1. -. cs.Stats.null_frac -. le)
              | None -> Stats.default_range)
           | _ -> Stats.default_range
         in
         if col_of a <> None && const_ish b then directional a b ~col_on_left:true
         else if col_of b <> None && const_ish a then directional b a ~col_on_left:false
         else Stats.default_range
       | Plan.CBetween { subject; low; high; negated } ->
         let s =
           match col_of subject, lit_of low, lit_of high with
           | Some i, lo, hi when lo <> None || hi <> None ->
             (match stats_of prov i with
              | Some cs ->
                Stats.range_selectivity cs
                  ~lo:(Option.map (fun v -> (v, true)) lo)
                  ~hi:(Option.map (fun v -> (v, true)) hi)
              | None -> Stats.default_range)
           | _ -> Stats.default_range
         in
         if negated then 1. -. s else s
       | Plan.CLike { negated; _ } ->
         if negated then 1. -. Stats.default_like else Stats.default_like
       | Plan.CIs_null { subject; negated } ->
         (match col_of subject with
          | Some i ->
            (match stats_of prov i with
             | Some cs -> Stats.null_selectivity cs ~negated
             | None -> if negated then 0.9 else 0.1)
          | None -> if negated then 0.9 else 0.1)
       | Plan.CIn_list { subject; candidates; negated } ->
         let s =
           Float.min Stats.default_other
             (float_of_int (List.length candidates) *. eq_sel prov subject)
         in
         if negated then 1. -. s else s
       | Plan.CBinop (Sql_ast.Or, a, b) ->
         let sa = sel prov a and sb = sel prov b in
         sa +. sb -. (sa *. sb)
       | Plan.CBinop (Sql_ast.And, a, b) -> sel prov a *. sel prov b
       | Plan.CUnop (Sql_ast.Not, a) -> 1. -. sel prov a
       | Plan.CIn_plan _ | Plan.CExists_plan _ -> Stats.default_other
       | Plan.CLit (Value.Bool true) -> 1.0
       | Plan.CLit (Value.Bool false) -> 1e-4
       | _ -> Stats.default_other)
  in
  let filter_sel prov = function
    | None -> 1.0
    | Some f -> List.fold_left (fun s c -> s *. sel prov c) 1.0 (conjuncts f)
  in
  let table_info name =
    match Catalog.find_table cat name with
    | Some tbl ->
      let tname = Catalog.normalize name in
      let prov =
        Array.of_list
          (List.map
             (fun c -> Some (tname, String.lowercase_ascii c))
             (Schema.column_names (Table.schema tbl)))
      in
      (float_of_int (Table.row_count tbl), prov, Some tbl)
    | None -> (1000., [||], None)
  in
  let rec go node : est * prov =
    let note_exprs es =
      List.iter (fun e -> List.iter (fun p -> ignore (go p)) (Plan.subplans_of e)) es
    in
    let opt l = function Some e -> e :: l | None -> l in
    let e, prov =
      match node with
      | Plan.Single_row -> ({ est_rows = 1.; est_cost = 0. }, [||])
      | Plan.Seq_scan { table; filter; part } ->
        let rows_t, prov, _ = table_info table in
        let rows_t =
          match part with
          | Some (_, n) -> rows_t /. float_of_int (max 1 n)
          | None -> rows_t
        in
        note_exprs (opt [] filter);
        ( { est_rows = rows_t *. filter_sel prov filter;
            est_cost = rows_t +. 1. },
          prov )
      | Plan.Index_lookup { table; index; key; filter } ->
        let rows_t, prov, tbl = table_info table in
        note_exprs (opt (Array.to_list key) filter);
        let matched =
          match Option.bind tbl (fun t -> Table.find_index t index) with
          | Some idx ->
            if Index.is_unique idx then 1.
            else rows_t /. float_of_int (max 1 (Index.cardinality idx))
          | None -> rows_t *. Stats.default_eq
        in
        let probe_cost =
          match Option.bind tbl (fun t -> Table.find_index t index) with
          | Some idx -> log2 (float_of_int (Index.entry_count idx) +. 2.)
          | None -> 1.
        in
        ( { est_rows = matched *. filter_sel prov filter;
            est_cost = probe_cost +. matched },
          prov )
      | Plan.Index_range { table; index; lo; hi; filter } ->
        let rows_t, prov, tbl = table_info table in
        let bound_exprs = function
          | Some (arr, _) -> Array.to_list arr
          | None -> []
        in
        note_exprs (opt (bound_exprs lo @ bound_exprs hi) filter);
        let bound_val = function
          | Some (arr, incl) when Array.length arr > 0 ->
            Option.map (fun v -> (v, incl)) (lit_of arr.(0))
          | _ -> None
        in
        let frac =
          match Option.bind tbl (fun t -> Table.find_index t index) with
          | Some idx ->
            (match Index.columns idx with
             | col :: _ ->
               (match
                  Option.bind
                    (Catalog.find_stats cat (Catalog.normalize table))
                    (fun ts -> Stats.find_column ts col)
                with
                | Some cs
                  when (lo = None || bound_val lo <> None)
                       && (hi = None || bound_val hi <> None) ->
                  Stats.range_selectivity cs ~lo:(bound_val lo) ~hi:(bound_val hi)
                | _ -> Stats.default_range)
             | [] -> Stats.default_range)
          | None -> Stats.default_range
        in
        let matched = rows_t *. frac in
        let probe_cost =
          match Option.bind tbl (fun t -> Table.find_index t index) with
          | Some idx -> log2 (float_of_int (Index.entry_count idx) +. 2.)
          | None -> 1.
        in
        ( { est_rows = matched *. filter_sel prov filter;
            est_cost = probe_cost +. matched },
          prov )
      | Plan.Filter (f, input) ->
        let ei, prov = go input in
        note_exprs [ f ];
        ( { est_rows = ei.est_rows *. filter_sel prov (Some f);
            est_cost = ei.est_cost +. (0.1 *. ei.est_rows) },
          prov )
      | Plan.Project (es, input) ->
        let ei, prov_in = go input in
        note_exprs (Array.to_list es);
        let prov =
          Array.map
            (fun e ->
              match e with
              | Plan.CCol i when i >= 0 && i < Array.length prov_in -> prov_in.(i)
              | _ -> None)
            es
        in
        ({ est_rows = ei.est_rows; est_cost = ei.est_cost +. (0.01 *. ei.est_rows) }, prov)
      | Plan.Nested_loop_join { left; right; cond; left_outer; _ } ->
        let el, pl = go left in
        let er, pr = go right in
        let prov = Array.append pl pr in
        note_exprs (opt [] cond);
        let rows = el.est_rows *. er.est_rows *. filter_sel prov cond in
        let rows = if left_outer then Float.max rows el.est_rows else rows in
        ( { est_rows = rows;
            (* the executor re-runs the right side once per left row *)
            est_cost =
              el.est_cost
              +. (Float.max 1. el.est_rows *. er.est_cost)
              +. (0.01 *. el.est_rows *. er.est_rows) },
          prov )
      | Plan.Hash_join { left; right; left_keys; right_keys; cond; left_outer; _ } ->
        let el, pl = go left in
        let er, pr = go right in
        let prov = Array.append pl pr in
        note_exprs (Array.to_list left_keys @ Array.to_list right_keys @ opt [] cond);
        let key_sels =
          List.filter_map
            (fun (lk, rk) ->
              match distinct_of pl lk, distinct_of pr rk with
              | Some d1, Some d2 -> Some (1. /. float_of_int (max d1 d2))
              | Some d, None | None, Some d -> Some (1. /. float_of_int d)
              | None, None -> None)
            (List.combine (Array.to_list left_keys) (Array.to_list right_keys))
        in
        let join_sel =
          match key_sels with
          | [] ->
            (* no statistics: assume a key/foreign-key join *)
            1. /. Float.max 1. (Float.max el.est_rows er.est_rows)
          | ss -> List.fold_left ( *. ) 1.0 ss
        in
        let rows =
          el.est_rows *. er.est_rows *. join_sel *. filter_sel prov cond
        in
        let rows = if left_outer then Float.max rows el.est_rows else rows in
        ( { est_rows = rows;
            est_cost = el.est_cost +. er.est_cost +. el.est_rows +. er.est_rows },
          prov )
      | Plan.Sort (keys, input) ->
        let ei, prov = go input in
        note_exprs (List.map fst (Array.to_list keys));
        let n = Float.max 1. ei.est_rows in
        ({ est_rows = ei.est_rows; est_cost = ei.est_cost +. (n *. log2 (n +. 2.)) }, prov)
      | Plan.Aggregate { group_by; aggs; input } ->
        let ei, prov_in = go input in
        note_exprs
          (Array.to_list group_by
          @ List.filter_map (fun a -> a.Plan.agg_arg) (Array.to_list aggs));
        let groups =
          if Array.length group_by = 0 then 1.
          else begin
            let g =
              Array.fold_left
                (fun acc e ->
                  match distinct_of prov_in e with
                  | Some d -> acc *. float_of_int d
                  | None -> acc *. 10.)
                1.0 group_by
            in
            Float.max 1. (Float.min g ei.est_rows)
          end
        in
        let prov =
          Array.append
            (Array.map
               (fun e ->
                 match e with
                 | Plan.CCol i when i >= 0 && i < Array.length prov_in -> prov_in.(i)
                 | _ -> None)
               group_by)
            (Array.make (Array.length aggs) None)
        in
        ({ est_rows = groups; est_cost = ei.est_cost +. ei.est_rows }, prov)
      | Plan.Distinct input ->
        let ei, prov = go input in
        ({ est_rows = ei.est_rows; est_cost = ei.est_cost +. ei.est_rows }, prov)
      | Plan.Union_all inputs ->
        let parts = List.map go inputs in
        let rows = List.fold_left (fun a (e, _) -> a +. e.est_rows) 0. parts in
        let cost = List.fold_left (fun a (e, _) -> a +. e.est_cost) 0. parts in
        let prov = match parts with (_, p) :: _ -> p | [] -> [||] in
        ({ est_rows = rows; est_cost = cost }, prov)
      | Plan.Limit { limit; offset; input } ->
        let ei, prov = go input in
        let after_offset =
          Float.max 0. (ei.est_rows -. float_of_int (Option.value offset ~default:0))
        in
        let rows =
          match limit with
          | Some n -> Float.min (float_of_int n) after_offset
          | None -> after_offset
        in
        ({ est_rows = rows; est_cost = ei.est_cost }, prov)
      | Plan.Exchange { inputs; workers = _ } ->
        (* partitions of one logical operator: rows add up, and the cost
           model stays wall-clock-agnostic (parallelism is a post-pass,
           not something plans compete on) *)
        let parts = List.map go inputs in
        let rows = List.fold_left (fun a (e, _) -> a +. e.est_rows) 0. parts in
        let cost = List.fold_left (fun a (e, _) -> a +. e.est_cost) 0. parts in
        let prov = match parts with (_, p) :: _ -> p | [] -> [||] in
        ({ est_rows = rows; est_cost = cost }, prov)
      | Plan.Structural_join
          { left; right; interval_on_left = _; left_doc; right_doc; lo; hi; pos;
            cond; _ } ->
        let el, pl = go left in
        let er, pr = go right in
        let prov = Array.append pl pr in
        note_exprs (left_doc :: right_doc :: lo :: hi :: pos :: opt [] cond);
        let doc_sel =
          match distinct_of pl left_doc, distinct_of pr right_doc with
          | Some d1, Some d2 -> 1. /. float_of_int (max 1 (max d1 d2))
          | Some d, None | None, Some d -> 1. /. float_of_int (max 1 d)
          | None, None ->
            (* no statistics: assume a key/foreign-key document join *)
            1. /. Float.max 1. (Float.max el.est_rows er.est_rows)
        in
        (* the two bound comparisons prune like the 0.5-per-conjunct
           filter the equivalent hash plan would apply *)
        let containment = 0.25 in
        let rows =
          el.est_rows *. er.est_rows *. doc_sel *. containment
          *. filter_sel prov cond
        in
        let nl = Float.max 1. el.est_rows and nr = Float.max 1. er.est_rows in
        ( { est_rows = rows;
            (* materialise + (sort fallback) + one merge pass + output *)
            est_cost =
              el.est_cost +. er.est_cost
              +. (nl *. log2 (nl +. 2.)) +. (nr *. log2 (nr +. 2.))
              +. rows },
          prov )
    in
    note node e;
    (e, prov)
  in
  ignore (go plan);
  List.rev !acc

let annotation ests node =
  match find ests node with
  | None -> ""
  | Some e -> Printf.sprintf " (est_rows=%.1f cost=%.1f)" e.est_rows e.est_cost

let annotate cat plan =
  let ests = estimate cat plan in
  Plan.to_string ~annot:(annotation ests) plan
