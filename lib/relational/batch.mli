(** Columnar row batches for the vectorized executor.

    A batch holds up to a few thousand rows of one operator's output in
    column-major layout. Columns whose every value is [Value.Int] are
    stored as unboxed [int array]s (the XML region columns — doc_id,
    node_id, last_desc, rowids — always land there); everything else
    stays a boxed [Value.t array]. Filters narrow a batch by attaching a
    selection vector instead of copying survivors. *)

type col =
  | I of int array      (** all-[Value.Int] column, unboxed *)
  | V of Value.t array  (** generic column (NULLs, text, floats, bools) *)

type t = {
  len : int;                (** physical rows in every column *)
  cols : col array;         (** one entry per output column *)
  sel : int array option;   (** live row indices, ascending; [None] = all *)
}

val max_rows : unit -> int
(** Target rows per batch: [XOMATIQ_VEC_BATCH], default 1024, clamped to
    [1, 4096]. *)

val arity : t -> int
val live : t -> int
(** Rows surviving the selection vector. *)

val get : t -> int -> int -> Value.t
(** [get b c r]: value of column [c] at physical row [r] (boxes [I]
    entries on demand). *)

val row : t -> int -> Value.t array
(** Box physical row [r] (ignores the selection vector). *)

val rows : t -> Value.t array Seq.t
(** Live rows, boxed, in selection order. *)

val iter_live : (int -> unit) -> t -> unit
(** Apply to each live physical row index, in order. *)

val fold_live : ('a -> int -> 'a) -> 'a -> t -> 'a

val of_rows : arity:int -> Value.t array array -> t
(** Transpose rows into columns, detecting unboxed int columns. The
    array is not retained. [arity] disambiguates the zero-row case. *)

val of_values : Value.t array -> col
(** Seal one column of boxed values, unboxing when every entry is an
    [Int]. The array may be retained as the column. *)

val compact : t -> t
(** Apply the selection vector (gathering every column); no-op when the
    batch is already dense. *)

val concat : arity:int -> t list -> t
(** Concatenate live rows of many batches into one dense batch. *)

val gather : col array -> int array -> col array
(** [gather cols idx]: one dense column set holding rows [idx] (physical
    indices) of [cols], preserving unboxed int columns. *)

val append_cols : t -> t -> int array -> int array -> col array
(** [append_cols l r li ri]: columns of the join output whose row [k] is
    left physical row [li.(k)] concatenated with right physical row
    [ri.(k)]. *)

val to_row_seq : t Seq.t -> Value.t array Seq.t
(** Flatten a batch stream back into the row stream it encodes. *)

val chunk_rows : arity:int -> Value.t array list -> t list
(** Split rows (in order) into batches of at most {!max_rows}. *)
