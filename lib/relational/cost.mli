(** Cardinality / cost estimation for physical plans.

    A separate pass over a planned {!Plan.t}: maps compiled column slots
    back to base-table columns (provenance tracking) and combines the
    {!Stats} collected by ANALYZE into per-node row-count and cost
    estimates. Powers the [EXPLAIN] annotations and the estimate-vs-actual
    display of [EXPLAIN ANALYZE]. *)

type est = { est_rows : float; est_cost : float }

val structural_sort_cost : float -> float -> float
(** [structural_sort_cost nl nr]: estimated comparison cost of the two
    key sorts a structural merge join performs on inputs of [nl] and
    [nr] rows — [n·log2 n] each. Charged as 0 when the combined input
    is too small for the sorts to be measurable, so the tiny
    paper-figure plans stay on the merge path; at bench scale the term
    prices in the E7 low-density regime where hash-join-plus-filter
    beats the merge. Used by the planner's join picker when ANALYZE
    distinct counts are available for both document keys. *)

type estimates = (Plan.t * est) list
(** Keyed by physical node identity, like {!Obs.profile}. Includes the
    subplans embedded in operator expressions. *)

val estimate : Catalog.t -> Plan.t -> estimates

val find : estimates -> Plan.t -> est option

val annotation : estimates -> Plan.t -> string
(** Per-node suffix [" (est_rows=… cost=…)"] for {!Plan.to_string}'s
    [annot]; empty for unknown nodes. *)

val annotate : Catalog.t -> Plan.t -> string
(** [Plan.to_string] with estimates attached to every node. *)
