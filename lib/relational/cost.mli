(** Cardinality / cost estimation for physical plans.

    A separate pass over a planned {!Plan.t}: maps compiled column slots
    back to base-table columns (provenance tracking) and combines the
    {!Stats} collected by ANALYZE into per-node row-count and cost
    estimates. Powers the [EXPLAIN] annotations and the estimate-vs-actual
    display of [EXPLAIN ANALYZE]. *)

type est = { est_rows : float; est_cost : float }

type estimates = (Plan.t * est) list
(** Keyed by physical node identity, like {!Obs.profile}. Includes the
    subplans embedded in operator expressions. *)

val estimate : Catalog.t -> Plan.t -> estimates

val find : estimates -> Plan.t -> est option

val annotation : estimates -> Plan.t -> string
(** Per-node suffix [" (est_rows=… cost=…)"] for {!Plan.to_string}'s
    [annot]; empty for unknown nodes. *)

val annotate : Catalog.t -> Plan.t -> string
(** [Plan.to_string] with estimates attached to every node. *)
