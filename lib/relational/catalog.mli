(** System catalog: the registry of tables and indexes in a database.
    Identifiers are case-insensitive (folded to lowercase). *)

type t

val create : unit -> t

val add_table : t -> Table.t -> (unit, string) result
val drop_table : t -> string -> bool
val find_table : t -> string -> Table.t option
val table_names : t -> string list

val add_index : ?attach:bool -> t -> table:string -> Index.t -> (unit, string) result
(** Registers and builds the index on the owning table. With
    [~attach:true] the index is registered without the build scan (it is
    an already-populated paged index re-opened after a clean shutdown). *)

val drop_index : t -> string -> bool
val find_index : t -> string -> (Table.t * Index.t) option

val find_stats : t -> string -> Stats.table_stats option
val set_stats : t -> string -> Stats.table_stats -> unit
(** ANALYZE snapshots, keyed by table name; cleared by {!drop_table}. *)

val version : t -> int
val bump_version : t -> unit
(** Monotonic catalog version. {!Database} bumps it on every DDL, DML
    and ANALYZE so plan caches can detect staleness cheaply. *)

val normalize : string -> string
