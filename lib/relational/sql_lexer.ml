type token =
  | Ident of string
  | Keyword of string
  | String_lit of string
  | Int_lit of int
  | Float_lit of float
  | Symbol of string
  | Eof

type located = { token : token; offset : int }

exception Lex_error of { offset : int; message : string }

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "AS"; "JOIN"; "INNER";
    "LEFT"; "OUTER"; "CROSS"; "ON"; "GROUP"; "BY"; "HAVING"; "ORDER"; "ASC";
    "DESC"; "LIMIT"; "OFFSET"; "DISTINCT"; "INSERT"; "INTO"; "VALUES";
    "UPDATE"; "SET"; "DELETE"; "CREATE"; "TABLE"; "INDEX"; "UNIQUE"; "HASH";
    "DROP"; "IF"; "EXISTS"; "PRIMARY"; "KEY"; "NULL"; "IS"; "IN"; "LIKE";
    "BETWEEN"; "ESCAPE"; "CASE"; "WHEN"; "THEN"; "ELSE"; "END"; "TRUE"; "FALSE";
    "COUNT"; "SUM"; "AVG"; "MIN"; "MAX"; "BEGIN"; "COMMIT"; "ROLLBACK";
    "EXPLAIN"; "ANALYZE"; "INTEGER"; "INT"; "BIGINT"; "SMALLINT"; "REAL"; "FLOAT";
    "DOUBLE"; "NUMERIC"; "DECIMAL"; "TEXT"; "VARCHAR"; "CHAR"; "BOOLEAN";
    "BOOL"; "UNION"; "ALL" ]

let keyword_set = List.fold_left (fun s k -> k :: s) [] keywords

let is_keyword w = List.mem w keyword_set

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let emit offset token = out := { token; offset } :: !out in
  let rec go i =
    if i >= n then emit n Eof
    else
      let c = src.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1)
      else if c = '-' && i + 1 < n && src.[i + 1] = '-' then begin
        (* line comment *)
        let rec skip j = if j >= n || src.[j] = '\n' then j else skip (j + 1) in
        go (skip (i + 2))
      end
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char src.[!j] do incr j done;
        let word = String.sub src i (!j - i) in
        let upper = String.uppercase_ascii word in
        if is_keyword upper then emit i (Keyword upper) else emit i (Ident word);
        go !j
      end
      else if is_digit c || (c = '.' && i + 1 < n && is_digit src.[i + 1]) then begin
        let j = ref i in
        let saw_dot = ref false and saw_exp = ref false in
        let continue = ref true in
        while !continue && !j < n do
          let ch = src.[!j] in
          if is_digit ch then incr j
          else if ch = '.' && not !saw_dot && not !saw_exp then begin
            saw_dot := true; incr j
          end
          else if (ch = 'e' || ch = 'E') && not !saw_exp
                  && !j + 1 < n
                  && (is_digit src.[!j + 1]
                      || ((src.[!j + 1] = '+' || src.[!j + 1] = '-')
                          && !j + 2 < n && is_digit src.[!j + 2])) then begin
            saw_exp := true;
            incr j;
            if src.[!j] = '+' || src.[!j] = '-' then incr j
          end
          else continue := false
        done;
        let text = String.sub src i (!j - i) in
        if !saw_dot || !saw_exp then
          (match float_of_string_opt text with
           | Some f -> emit i (Float_lit f)
           | None -> raise (Lex_error { offset = i; message = "malformed number " ^ text }))
        else
          (match int_of_string_opt text with
           | Some v -> emit i (Int_lit v)
           | None ->
             match float_of_string_opt text with
             | Some f -> emit i (Float_lit f)
             | None -> raise (Lex_error { offset = i; message = "malformed number " ^ text }));
        go !j
      end
      else if c = '\'' then begin
        (* SQL string: '' escapes a quote *)
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then raise (Lex_error { offset = i; message = "unterminated string" })
          else if src.[j] = '\'' then
            if j + 1 < n && src.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              scan (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf src.[j];
            scan (j + 1)
          end
        in
        let next = scan (i + 1) in
        emit i (String_lit (Buffer.contents buf));
        go next
      end
      else if c = '"' then begin
        (* quoted identifier *)
        let rec scan j =
          if j >= n then raise (Lex_error { offset = i; message = "unterminated identifier" })
          else if src.[j] = '"' then j
          else scan (j + 1)
        in
        let close = scan (i + 1) in
        emit i (Ident (String.sub src (i + 1) (close - i - 1)));
        go (close + 1)
      end
      else begin
        let two = if i + 1 < n then String.sub src i 2 else "" in
        match two with
        | "<>" | "<=" | ">=" | "!=" | "||" ->
          emit i (Symbol (if two = "!=" then "<>" else two));
          go (i + 2)
        | _ ->
          (match c with
           | '(' | ')' | ',' | '.' | '*' | '=' | '<' | '>' | '+' | '-' | '/' | '%' | ';' ->
             emit i (Symbol (String.make 1 c));
             go (i + 1)
           | _ ->
             raise (Lex_error { offset = i; message = Printf.sprintf "unexpected character %C" c }))
      end
  in
  go 0;
  List.rev !out

let token_to_string = function
  | Ident s -> s
  | Keyword k -> k
  | String_lit s -> Printf.sprintf "'%s'" s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | Symbol s -> s
  | Eof -> "<eof>"
