(* Paged heap file: the on-disk row store behind [Table] in disk mode.
   One heap is two page files served by the buffer pool:

     <base>.heap   data pages: u16 used-offset header, then records
                   appended back to back as [u32 len | payload]. A record
                   whose payload exceeds one page is stored as a stub
                   ([len] with the high bit set, payload = u32 first
                   overflow page) chaining whole-page overflow segments
                   [u32 next | u32 nbytes | bytes].
     <base>.map    rowid directory: page 0 is the meta page (magic,
                   next_rowid, live count, data-file append tail); every
                   other page holds 1024 fixed 8-byte entries
                   [u32 data_page | u16 offset | u16 flags], so entry
                   lookup is one page pin. flags bit0 = live, bit1 =
                   slot occupied (a tombstone keeps its location so
                   transaction rollback can undelete in place).

   Rowids are assigned sequentially and never reused — exactly the
   in-memory [Vector.length] discipline — so a heap-backed table is
   rowid-for-rowid identical to its in-memory twin. *)

let ps = Bufpool.page_size
let none32 = 0xFFFFFFFF
let entries_per_page = ps / 8 (* 1024 *)
let magic = "XQHEAP01"

(* A record payload that fits a fresh data page is stored inline. *)
let max_inline = ps - 2 - 4
let ovf_capacity = ps - 8
let ovf_flag = 0x40000000

type t = {
  pool : Bufpool.t;
  data : Bufpool.file;
  map : Bufpool.file;
  base : string;
  (* meta-page mirror, written through on every mutation *)
  mutable next_rowid : int;
  mutable live : int;
  mutable tail_page : int; (* data page open for appends; none32 if none *)
}

let get_u16 b off = Bytes.get_uint16_le b off
let set_u16 b off v = Bytes.set_uint16_le b off v
let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF
let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let get_u48 b off = Int64.to_int (Bytes.get_int64_le b off)
let set_u48 b off v = Bytes.set_int64_le b off (Int64.of_int v)

let write_meta t =
  Bufpool.with_page_w t.pool t.map 0 (fun b ->
      Bytes.blit_string magic 0 b 0 8;
      set_u48 b 8 t.next_rowid;
      set_u48 b 16 t.live;
      set_u32 b 24 t.tail_page)

let create pool ~base =
  let data = Bufpool.open_file pool (base ^ ".heap") in
  let map = Bufpool.open_file pool (base ^ ".map") in
  if Bufpool.npages map = 0 then begin
    let t = { pool; data; map; base; next_rowid = 0; live = 0; tail_page = none32 } in
    ignore (Bufpool.allocate pool map);
    write_meta t;
    t
  end
  else
    Bufpool.with_page pool map 0 (fun b ->
        if Bytes.sub_string b 0 8 <> magic then
          failwith (Printf.sprintf "heap %s: bad magic in map file" base);
        { pool; data; map; base;
          next_rowid = get_u48 b 8; live = get_u48 b 16; tail_page = get_u32 b 24 })

let next_rowid t = t.next_rowid
let live t = t.live

(* ---- record append ---- *)

(* Append [enc] to the data file; returns (page, offset) of its record
   header. *)
let append_record t enc =
  let len = String.length enc in
  let inline = len <= max_inline in
  let need = if inline then 4 + len else 4 + 4 in
  (* the tail page, opening a fresh one when the record doesn't fit *)
  let tail_fits =
    t.tail_page <> none32
    && Bufpool.with_page t.pool t.data t.tail_page (fun b -> get_u16 b 0 + need <= ps)
  in
  if not tail_fits then begin
    let p = Bufpool.allocate t.pool t.data in
    Bufpool.with_page_w t.pool t.data p (fun b ->
        Bytes.fill b 0 ps '\000';
        set_u16 b 0 2);
    t.tail_page <- p
  end;
  let page = t.tail_page in
  let off =
    Bufpool.with_page_w t.pool t.data page (fun b ->
        let off = get_u16 b 0 in
        if inline then begin
          set_u32 b off len;
          Bytes.blit_string enc 0 b (off + 4) len
        end;
        set_u16 b 0 (off + need);
        off)
  in
  if not inline then begin
    (* spill the payload into a chain of whole overflow pages, then patch
       the stub *)
    let nseg = (len + ovf_capacity - 1) / ovf_capacity in
    let pages = Array.init nseg (fun _ -> Bufpool.allocate t.pool t.data) in
    Array.iteri
      (fun i p ->
        let pos = i * ovf_capacity in
        let n = min ovf_capacity (len - pos) in
        Bufpool.with_page_w t.pool t.data p (fun b ->
            set_u32 b 0 (if i + 1 < nseg then pages.(i + 1) else none32);
            set_u32 b 4 n;
            Bytes.blit_string enc pos b 8 n))
      pages;
    Bufpool.with_page_w t.pool t.data page (fun b ->
        set_u32 b off (ovf_flag lor len);
        set_u32 b (off + 4) pages.(0))
  end;
  (page, off)

let read_record t page off =
  (* Decode in-place under one pin for the common non-overflow case. *)
  let len, first, row =
    Bufpool.with_page t.pool t.data page (fun b ->
        let len = get_u32 b off in
        if len land ovf_flag <> 0 then
          (len land lnot ovf_flag, get_u32 b (off + 4), None)
        else (len, none32, Some (fst (Rowcodec.decode b (off + 4)))))
  in
  match row with
  | Some row -> row
  | None ->
    begin
    let buf = Bytes.create len in
    let rec chain p pos =
      if p <> none32 then
        let next =
          Bufpool.with_page t.pool t.data p (fun b ->
              let n = get_u32 b 4 in
              Bytes.blit b 8 buf pos n;
              (get_u32 b 0, pos + n))
        in
        chain (fst next) (snd next)
    in
    chain first 0;
    fst (Rowcodec.decode buf 0)
  end

(* ---- rowid directory ---- *)

let entry_loc rowid = (1 + (rowid / entries_per_page), rowid mod entries_per_page * 8)

let read_entry t rowid =
  let mpage, eoff = entry_loc rowid in
  Bufpool.with_page t.pool t.map mpage (fun b ->
      (get_u32 b eoff, get_u16 b (eoff + 4), get_u16 b (eoff + 6)))

let write_entry t rowid (page, off, flags) =
  let mpage, eoff = entry_loc rowid in
  while mpage >= Bufpool.npages t.map do
    let p = Bufpool.allocate t.pool t.map in
    Bufpool.with_page_w t.pool t.map p (fun b -> Bytes.fill b 0 ps '\000')
  done;
  Bufpool.with_page_w t.pool t.map mpage (fun b ->
      set_u32 b eoff page;
      set_u16 b (eoff + 4) off;
      set_u16 b (eoff + 6) flags)

(* ---- public operations ---- *)

let insert t row =
  let rowid = t.next_rowid in
  let page, off = append_record t (Rowcodec.encode row) in
  write_entry t rowid (page, off, 0b11);
  t.next_rowid <- rowid + 1;
  t.live <- t.live + 1;
  write_meta t;
  rowid

let get t rowid =
  if rowid < 0 || rowid >= t.next_rowid then None
  else
    let page, off, flags = read_entry t rowid in
    if flags land 1 = 0 then None else Some (read_record t page off)

let delete t rowid =
  if rowid < 0 || rowid >= t.next_rowid then false
  else
    let page, off, flags = read_entry t rowid in
    flags land 1 = 1
    && begin
      write_entry t rowid (page, off, 0b10);
      t.live <- t.live - 1;
      write_meta t;
      true
    end

let undelete t rowid =
  if rowid < 0 || rowid >= t.next_rowid then false
  else
    let page, off, flags = read_entry t rowid in
    flags land 0b11 = 0b10
    && begin
      write_entry t rowid (page, off, 0b11);
      t.live <- t.live + 1;
      write_meta t;
      true
    end

let update t rowid row =
  let page, off = append_record t (Rowcodec.encode row) in
  write_entry t rowid (page, off, 0b11)

(* One map page worth of live rows, decoded in rowid order. Consecutive
   entries on the same data page share one pin. *)
let chunk t ~lo ~hi =
  let mpage = 1 + (lo / entries_per_page) in
  let base = (mpage - 1) * entries_per_page in
  let first = lo - base and last = min (hi - base) entries_per_page in
  let locs =
    Bufpool.with_page t.pool t.map mpage (fun b ->
        let acc = ref [] in
        for slot = last - 1 downto first do
          let eoff = slot * 8 in
          if get_u16 b (eoff + 6) land 1 = 1 then
            acc := (base + slot, get_u32 b eoff, get_u16 b (eoff + 4)) :: !acc
        done;
        !acc)
  in
  (* pin each data page once per consecutive same-page run (appends keep
     rows page-clustered; an update may relocate one row out of line) *)
  let out = ref [] in
  let rec go = function
    | [] -> ()
    | (_, page, _) :: _ as l ->
      let rec split acc = function
        | (_, p, _) as e :: rest when p = page -> split (e :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let run, rest = split [] l in
      Bufpool.with_page t.pool t.data page (fun b ->
          List.iter
            (fun (rowid, _, off) ->
              let len = get_u32 b off in
              let row =
                if len land ovf_flag <> 0 then read_record t page off
                else fst (Rowcodec.decode b (off + 4))
              in
              out := (rowid, row) :: !out)
            run);
      go rest
  in
  go locs;
  List.rev !out

let scan_range t ~lo ~hi =
  let hi = min hi t.next_rowid in
  let rec pages lo () =
    if lo >= hi then Seq.Nil
    else begin
      let stop = min hi ((lo / entries_per_page + 1) * entries_per_page) in
      let rec emit = function
        | [] -> pages stop ()
        | r :: rest -> Seq.Cons (r, fun () -> emit rest)
      in
      emit (chunk t ~lo ~hi:stop)
    end
  in
  pages (max 0 lo)

let truncate t =
  Bufpool.truncate_file t.pool t.data;
  Bufpool.truncate_file t.pool t.map;
  t.next_rowid <- 0;
  t.live <- 0;
  t.tail_page <- none32;
  ignore (Bufpool.allocate t.pool t.map);
  write_meta t

let sync t = write_meta t

let close t =
  write_meta t;
  Bufpool.close_file t.pool t.data;
  Bufpool.close_file t.pool t.map

let destroy t =
  Bufpool.remove_file t.pool t.data;
  Bufpool.remove_file t.pool t.map
