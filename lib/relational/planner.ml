open Sql_ast

exception Plan_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Plan_error m)) fmt

type planned = {
  plan : Plan.t;
  column_names : string list;
  rewrites : (string * int) list;
  est_cost : float;
      (* root cost estimate of the final (rewritten) plan, in "rows
         touched"; the scheduler's cost gate reads it at dispatch time *)
}

(* A scope maps (qualifier, column) pairs to row slots. Qualifiers are
   table aliases, normalized to lowercase. *)
type scope_entry = { qualifier : string option; name : string }

type scope = scope_entry array

let norm = String.lowercase_ascii

type env = {
  catalog : Catalog.t;
  scope : scope;
  outer : scope list;  (* enclosing query scopes, outermost first *)
}

(* A recognised containment-join pattern between the joined set and a
   candidate unit: [doc_set = doc_unit AND lo (<|<=) pos (<|<=) hi] with
   the position on one role and both interval bounds on the other. *)
type structural_match = {
  sm_doc_set : Sql_ast.expr;   (* document key, set side *)
  sm_doc_unit : Sql_ast.expr;  (* document key, unit side *)
  sm_pos : Sql_ast.expr;
  sm_lo : Sql_ast.expr;
  sm_hi : Sql_ast.expr;
  sm_lo_incl : bool;
  sm_hi_incl : bool;
  sm_pos_on_unit : bool;  (* position on the candidate unit => interval on the set *)
  sm_used : Sql_ast.expr list;  (* conjuncts the operator consumes *)
}

let scope_find (scope : scope) ~table ~column =
  let column = norm column in
  let matches =
    List.filter
      (fun (i, e) ->
        ignore i;
        norm e.name = column
        && (match table with
            | None -> true
            | Some t -> e.qualifier = Some (norm t)))
      (Array.to_list (Array.mapi (fun i e -> (i, e)) scope))
  in
  match matches with
  | [] -> None
  | [ (i, _) ] -> Some i
  | _ :: _ ->
    error "ambiguous column reference %s%s"
      (match table with Some t -> t ^ "." | None -> "")
      column

(* Resolve a column: current scope first, then enclosing scopes (giving a
   parameter slot: at runtime the outer rows are concatenated outermost
   first). *)
let resolve env ~table ~column : Plan.cexpr =
  match scope_find env.scope ~table ~column with
  | Some i -> Plan.CCol i
  | None ->
    (* search outer frames innermost-first; offsets are outermost-first *)
    let frames = Array.of_list env.outer in
    let nframes = Array.length frames in
    let rec search k =
      if k < 0 then
        error "unknown column %s%s"
          (match table with Some t -> t ^ "." | None -> "")
          column
      else
        match scope_find frames.(k) ~table ~column with
        | Some i ->
          let offset = ref 0 in
          for j = 0 to k - 1 do offset := !offset + Array.length frames.(j) done;
          Plan.CParam (!offset + i)
        | None -> search (k - 1)
    in
    search (nframes - 1)

(* ------------------------------------------------------------------ *)
(* Morsel parallelism post-pass                                        *)
(* ------------------------------------------------------------------ *)

(* Structural (interval containment) merge joins are on by default;
   XOMATIQ_STRUCTURAL_JOIN=0 falls back to hash-join + filter, which the
   differential suite and the E7 bench use as the baseline. *)
let structural_enabled () =
  match Sys.getenv_opt "XOMATIQ_STRUCTURAL_JOIN" with
  | Some s ->
    (match String.lowercase_ascii (String.trim s) with
     | "0" | "off" | "false" | "no" -> false
     | _ -> true)
  | None -> true

(* Minimum live rows before a base-table scan is worth partitioning
   across domains (per-partition materialisation has fixed overhead). *)
let par_threshold () =
  match Sys.getenv_opt "XOMATIQ_PAR_THRESHOLD" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 0 -> n
     | _ -> 2000)
  | None -> 2000

(* Wrap a full base-table scan in an Exchange of [jobs] range partitions.
   Runs AFTER access-path and join-order decisions (and never changes
   them: Exchange cost = sum of partition costs = the sequential cost),
   so the same logical plan is chosen at any jobs setting. Correlated
   subqueries ([outer <> []]) are re-planned per outer row and stay
   sequential. Each partition gets a deep copy of the filter so its
   embedded subplans are distinct physical nodes — per-partition Obs
   stats then have a single writer each. *)
let maybe_exchange catalog ~outer plan =
  let jobs = Conc.Pool.jobs () in
  if jobs <= 1 || outer <> [] then plan
  else
    match plan with
    | Plan.Seq_scan { table; filter; part = None } ->
      (match Catalog.find_table catalog table with
       | Some t when Table.row_count t >= par_threshold () ->
         Plan.Exchange
           { workers = jobs;
             inputs =
               List.init jobs (fun i ->
                   Plan.Seq_scan
                     { table;
                       filter = Option.map Plan.copy_cexpr filter;
                       part = Some (i, jobs) }) }
       | _ -> plan)
    | _ -> plan

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

let rec compile env (e : expr) : Plan.cexpr =
  match e with
  | Lit v -> CLit v
  | Col { table; column } -> resolve env ~table ~column
  | Binop (op, a, b) -> CBinop (op, compile env a, compile env b)
  | Unop (op, a) -> CUnop (op, compile env a)
  | Fn (name, args) -> CFn (name, List.map (compile env) args)
  | Like { subject; pattern; escape; negated } ->
    CLike
      { subject = compile env subject; pattern = compile env pattern;
        escape = Option.map (compile env) escape; negated }
  | In_list { subject; candidates; negated } ->
    CIn_list
      { subject = compile env subject;
        candidates = List.map (compile env) candidates;
        negated }
  | Is_null { subject; negated } -> CIs_null { subject = compile env subject; negated }
  | Between { subject; low; high; negated } ->
    CBetween
      { subject = compile env subject; low = compile env low;
        high = compile env high; negated }
  | Case { branches; else_ } ->
    CCase
      { branches = List.map (fun (c, r) -> (compile env c, compile env r)) branches;
        else_ = Option.map (compile env) else_ }
  | In_select { subject; select; negated } ->
    let sub = plan_subquery env select in
    CIn_plan { subject = compile env subject; plan = sub.plan; negated }
  | Exists { select; negated } ->
    let sub = plan_subquery env select in
    CExists_plan { plan = sub.plan; negated }
  | Scalar_subquery select ->
    let sub = plan_subquery env select in
    CScalar_plan sub.plan
  | Agg _ -> error "aggregate function in an invalid position"

and plan_subquery env select =
  plan_select_in env.catalog ~outer:(env.outer @ [ env.scope ]) select

(* ------------------------------------------------------------------ *)
(* Conjunct analysis                                                   *)
(* ------------------------------------------------------------------ *)

and conjuncts_of = function
  | Binop (And, a, b) -> conjuncts_of a @ conjuncts_of b
  | e -> [ e ]

and has_subquery (e : expr) =
  let rec go = function
    | In_select _ | Exists _ | Scalar_subquery _ -> true
    | Lit _ | Col _ -> false
    | Binop (_, a, b) -> go a || go b
    | Unop (_, a) -> go a
    | Fn (_, args) -> List.exists go args
    | Like { subject; pattern; escape; _ } ->
      go subject || go pattern
      || (match escape with Some e -> go e | None -> false)
    | In_list { subject; candidates; _ } -> go subject || List.exists go candidates
    | Is_null { subject; _ } -> go subject
    | Between { subject; low; high; _ } -> go subject || go low || go high
    | Case { branches; else_ } ->
      List.exists (fun (c, r) -> go c || go r) branches
      || (match else_ with Some e -> go e | None -> false)
    | Agg { arg; _ } -> (match arg with Some a -> go a | None -> false)
  in
  go e

(* Which units does an expression's column references touch?
   [unit_scopes] are the scopes of each unit; refs that resolve in an
   enclosing scope count as constants (empty set). *)
and referenced_units ~unit_scopes ~outer (e : expr) : int list =
  let hits = ref [] in
  let note i = if not (List.mem i !hits) then hits := i :: !hits in
  let resolve_col table column =
    let candidates =
      List.filteri
        (fun _ scope -> scope_find scope ~table ~column <> None)
        unit_scopes
    in
    ignore candidates;
    let matching =
      List.concat
        (List.mapi
           (fun i scope ->
             match scope_find scope ~table ~column with
             | Some _ -> [ i ]
             | None -> [])
           unit_scopes)
    in
    match matching with
    | [ i ] -> note i
    | [] ->
      (* must resolve in an outer scope, otherwise it is an error that
         compilation will report with a good message *)
      let found =
        List.exists (fun scope -> scope_find scope ~table ~column <> None) outer
      in
      if not found then
        error "unknown column %s%s"
          (match table with Some t -> t ^ "." | None -> "")
          column
    | _ :: _ :: _ ->
      error "ambiguous column reference %s%s"
        (match table with Some t -> t ^ "." | None -> "")
        column
  in
  let rec go = function
    | Lit _ -> ()
    | Col { table; column } -> resolve_col table column
    | Binop (_, a, b) -> go a; go b
    | Unop (_, a) -> go a
    | Fn (_, args) -> List.iter go args
    | Like { subject; pattern; escape; _ } ->
      go subject; go pattern; Option.iter go escape
    | In_list { subject; candidates; _ } -> go subject; List.iter go candidates
    | Is_null { subject; _ } -> go subject
    | Between { subject; low; high; _ } -> go subject; go low; go high
    | Case { branches; else_ } ->
      List.iter (fun (c, r) -> go c; go r) branches;
      Option.iter go else_
    | In_select _ | Exists _ | Scalar_subquery _ ->
      (* handled by the has_subquery residual rule *) ()
    | Agg { arg; _ } -> Option.iter go arg
  in
  go e;
  List.sort compare !hits

(* ------------------------------------------------------------------ *)
(* Access-path selection for a base table                              *)
(* ------------------------------------------------------------------ *)

and split_conjunction compiled =
  match compiled with
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (fun acc c -> Plan.CBinop (And, acc, c)) first rest)

(* preds reference only this unit (or constants / outer scopes). *)
and access_path catalog ~outer ~table_name ~scope preds =
  let table =
    match Catalog.find_table catalog table_name with
    | Some t -> t
    | None -> error "no such table %S" table_name
  in
  let const_env = { catalog; scope = [||]; outer } in
  let unit_env = { catalog; scope; outer } in
  let is_const e =
    match referenced_units ~unit_scopes:[ scope ] ~outer e with
    | [] -> not (has_subquery e)
    | _ -> false
  in
  let col_of = function
    | Col { table = _; column } ->
      (match scope_find scope ~table:None ~column with
       | Some _ -> Some (norm column)
       | None -> None)
    | _ -> None
  in
  (* candidate equality and range bounds per column *)
  let eqs : (string * expr * expr) list ref = ref [] in  (* col, const, original pred *)
  let ranges : (string * ([ `Lo of bool | `Hi of bool ] * expr) * expr) list ref =
    ref []
  in
  let classify pred =
    match pred with
    | Binop (Eq, a, b) ->
      (match col_of a, is_const b with
       | Some c, true -> eqs := (c, b, pred) :: !eqs
       | _ ->
         (match col_of b, is_const a with
          | Some c, true -> eqs := (c, a, pred) :: !eqs
          | _ -> ()))
    | Binop ((Lt | Le | Gt | Ge) as op, a, b) ->
      let dir_of op flipped =
        match op, flipped with
        | Lt, false -> `Hi false | Le, false -> `Hi true
        | Gt, false -> `Lo false | Ge, false -> `Lo true
        | Lt, true -> `Lo false | Le, true -> `Lo true
        | Gt, true -> `Hi false | Ge, true -> `Hi true
        | _ -> assert false
      in
      (match col_of a, is_const b with
       | Some c, true -> ranges := (c, (dir_of op false, b), pred) :: !ranges
       | _ ->
         (match col_of b, is_const a with
          | Some c, true -> ranges := (c, (dir_of op true, a), pred) :: !ranges
          | _ -> ()))
    | Between { subject; low; high; negated = false } ->
      (match col_of subject, is_const low && is_const high with
       | Some c, true ->
         ranges := (c, (`Lo true, low), pred) :: !ranges;
         ranges := (c, (`Hi true, high), pred) :: !ranges
       | _ -> ())
    | _ -> ()
  in
  List.iter classify preds;
  let indexes = Table.indexes table in
  (* full-key equality match: every index column has an eq candidate *)
  let eq_match idx =
    let cols = List.map norm (Index.columns idx) in
    let rec collect acc = function
      | [] -> Some (List.rev acc)
      | c :: rest ->
        (match List.find_opt (fun (c', _, _) -> c' = c) !eqs with
         | Some (_, const, pred) -> collect ((const, pred) :: acc) rest
         | None -> None)
    in
    collect [] cols
  in
  (* every index with a full-key equality match is a lookup candidate *)
  let lookup_candidates =
    let cands =
      List.filter_map
        (fun idx -> match eq_match idx with Some keys -> Some (idx, keys) | None -> None)
        indexes
    in
    (* stable preference on cost ties: unique first, then wider keys *)
    let score (idx, keys) =
      (if Index.is_unique idx then 1000 else 0) + List.length keys
    in
    List.sort (fun a b -> compare (score b) (score a)) cands
  in
  (* every single-column B+tree with at least one usable bound *)
  let range_candidates =
    List.filter_map
      (fun idx ->
        if Index.kind idx <> Index.Btree then None
        else
          match Index.columns idx with
          | [ col ] ->
            let col = norm col in
            let bounds = List.filter (fun (c, _, _) -> c = col) !ranges in
            if bounds = [] then None
            else begin
              let lo =
                List.find_map
                  (fun (_, (d, e), p) ->
                    match d with `Lo incl -> Some (e, incl, p) | `Hi _ -> None)
                  bounds
              in
              let hi =
                List.find_map
                  (fun (_, (d, e), p) ->
                    match d with `Hi incl -> Some (e, incl, p) | `Lo _ -> None)
                  bounds
              in
              Some (idx, col, lo, hi)
            end
          | _ -> None)
      indexes
  in
  let rows = float_of_int (max 1 (Table.row_count table)) in
  let tstats = Catalog.find_stats catalog (Catalog.normalize table_name) in
  let col_stats c = Option.bind tstats (fun ts -> Stats.find_column ts c) in
  let lit_of = function Lit v -> Some v | _ -> None in
  (* statistics-based selectivity of a single-unit predicate *)
  let rec pred_sel p =
    let s =
      match p with
      | Binop (Eq, a, b) ->
        let stats_side =
          match col_of a, is_const b with
          | Some c, true -> col_stats c
          | _ ->
            (match col_of b, is_const a with
             | Some c, true -> col_stats c
             | _ -> None)
        in
        (match stats_side with
         | Some cs -> Stats.eq_selectivity cs
         | None -> Stats.default_eq)
      | Binop ((Lt | Le | Gt | Ge) as op, a, b) ->
        let directional col_e lit_e ~col_on_left =
          match col_of col_e, Option.bind (Some lit_e) lit_of with
          | Some c, Some v ->
            (match col_stats c with
             | Some cs ->
               let le = Stats.le_fraction cs v in
               let col_le =
                 match op, col_on_left with
                 | (Lt | Le), true -> true
                 | (Gt | Ge), true -> false
                 | (Lt | Le), false -> false
                 | (Gt | Ge), false -> true
                 | _ -> true
               in
               if col_le then le
               else Float.max 0. (1. -. cs.Stats.null_frac -. le)
             | None -> Stats.default_range)
          | _ -> Stats.default_range
        in
        if col_of a <> None && is_const b then directional a b ~col_on_left:true
        else if col_of b <> None && is_const a then directional b a ~col_on_left:false
        else Stats.default_range
      | Between { subject; low; high; negated } ->
        let s =
          match col_of subject, lit_of low, lit_of high with
          | Some c, (Some _ as lo), hi | Some c, lo, (Some _ as hi) ->
            (match col_stats c with
             | Some cs ->
               Stats.range_selectivity cs
                 ~lo:(Option.map (fun v -> (v, true)) lo)
                 ~hi:(Option.map (fun v -> (v, true)) hi)
             | None -> Stats.default_range)
          | _ -> Stats.default_range
        in
        if negated then 1. -. s else s
      | Like { negated; _ } ->
        if negated then 1. -. Stats.default_like else Stats.default_like
      | Is_null { subject; negated } ->
        (match Option.bind (col_of subject) col_stats with
         | Some cs -> Stats.null_selectivity cs ~negated
         | None -> if negated then 0.9 else 0.1)
      | In_list { subject; candidates; negated } ->
        let eq =
          match Option.bind (col_of subject) col_stats with
          | Some cs -> Stats.eq_selectivity cs
          | None -> Stats.default_eq
        in
        let s =
          Float.min Stats.default_other
            (float_of_int (List.length candidates) *. eq)
        in
        if negated then 1. -. s else s
      | Binop (Or, a, b) ->
        let sa = pred_sel a and sb = pred_sel b in
        sa +. sb -. (sa *. sb)
      | Binop (And, a, b) -> pred_sel a *. pred_sel b
      | Unop (Not, a) -> 1. -. pred_sel a
      | _ -> Stats.default_other
    in
    Float.max 1e-4 (Float.min 1.0 s)
  in
  let sel_of_preds ps = List.fold_left (fun s p -> s *. pred_sel p) 1.0 ps in
  let probe_cost idx = Float.log (float_of_int (Index.entry_count idx) +. 2.) /. Float.log 2. in
  (* rank all access paths by estimated cost; ties keep list order
     (lookups, then ranges, then the sequential scan) *)
  let candidates =
    List.map
      (fun (idx, keys) ->
        let used_preds = List.map snd keys in
        let rest = List.filter (fun p -> not (List.memq p used_preds)) preds in
        let matched =
          if Index.is_unique idx then 1.0
          else rows /. float_of_int (max 1 (Index.cardinality idx))
        in
        let est = matched *. sel_of_preds rest in
        let cost = probe_cost idx +. matched in
        let build () =
          let key = Array.of_list (List.map (fun (c, _) -> compile const_env c) keys) in
          let filter = split_conjunction (List.map (compile unit_env) rest) in
          Plan.Index_lookup
            { table = Catalog.normalize table_name; index = Index.name idx; key; filter }
        in
        (build, est, cost))
      lookup_candidates
    @ List.map
        (fun (idx, col, lo, hi) ->
          let used =
            (match lo with Some (_, _, p) -> [ p ] | None -> [])
            @ (match hi with Some (_, _, p) -> [ p ] | None -> [])
          in
          let rest = List.filter (fun p -> not (List.memq p used)) preds in
          let frac =
            match col_stats col with
            | Some cs ->
              let value = function
                | Some (e, incl, _) -> Option.map (fun v -> (v, incl)) (lit_of e)
                | None -> None
              in
              (match lo, hi, value lo, value hi with
               | Some _, _, None, _ | _, Some _, _, None ->
                 (* non-literal bound: no histogram guidance *)
                 Stats.default_range
               | _ -> Stats.range_selectivity cs ~lo:(value lo) ~hi:(value hi))
            | None -> Stats.default_range
          in
          let matched = rows *. frac in
          let est = matched *. sel_of_preds rest in
          let cost = probe_cost idx +. matched in
          let build () =
            let bound = Option.map (fun (e, incl, _) -> ([| compile const_env e |], incl)) in
            let filter = split_conjunction (List.map (compile unit_env) rest) in
            Plan.Index_range
              { table = Catalog.normalize table_name; index = Index.name idx;
                lo = bound lo; hi = bound hi; filter }
          in
          (build, est, cost))
        range_candidates
    @ [ (let est = Float.max 0.01 (rows *. sel_of_preds preds) in
         let build () =
           let filter = split_conjunction (List.map (compile unit_env) preds) in
           Plan.Seq_scan { table = Catalog.normalize table_name; filter; part = None }
         in
         (build, est, rows +. 1.)) ]
  in
  let best =
    List.fold_left
      (fun acc (build, est, cost) ->
        match acc with
        | None -> Some (build, est, cost)
        | Some (_, _, best_cost) when cost < best_cost -> Some (build, est, cost)
        | Some _ -> acc)
      None candidates
  in
  match best with
  | Some (build, est, cost) -> (build (), est, cost)
  | None -> assert false

(* ------------------------------------------------------------------ *)
(* FROM planning                                                       *)
(* ------------------------------------------------------------------ *)

(* A unit is one relation participating in join ordering. *)
and plan_from catalog ~outer (from : table_ref list) (where : expr option) :
  Plan.t * scope * expr list =
  (* returns (plan, scope, leftover conjuncts not yet applied) *)
  let has_left_join =
    let rec check = function
      | Table _ | Derived _ -> false
      | Join { kind = Left_outer; _ } -> true
      | Join { left; right; _ } -> check left || check right
    in
    List.exists check from
  in
  if has_left_join then plan_from_structural catalog ~outer from where
  else begin
    (* flatten into units + conjuncts *)
    let units : (string * scope * Plan.t option * string option) list ref = ref [] in
    (* (alias, scope, derived plan, base table name) *)
    let conds = ref [] in
    let add_unit alias scope dplan base =
      let alias = norm alias in
      if List.exists (fun (a, _, _, _) -> a = alias) !units then
        error "duplicate table alias %S" alias;
      units := !units @ [ (alias, scope, dplan, base) ]
    in
    let rec walk = function
      | Table { name; alias } ->
        let table =
          match Catalog.find_table catalog name with
          | Some t -> t
          | None -> error "no such table %S" name
        in
        let alias = Option.value alias ~default:name in
        let scope =
          Array.of_list
            (List.map
               (fun c -> { qualifier = Some (norm alias); name = c })
               (Schema.column_names (Table.schema table)))
        in
        add_unit alias scope None (Some name)
      | Derived { select; alias } ->
        let sub = plan_select_in catalog ~outer select in
        let scope =
          Array.of_list
            (List.map
               (fun n -> { qualifier = Some (norm alias); name = n })
               sub.column_names)
        in
        add_unit alias scope (Some sub.plan) None
      | Join { left; kind; right; on } ->
        walk left;
        walk right;
        (match kind with
         | Cross -> ()
         | Inner -> Option.iter (fun e -> conds := !conds @ conjuncts_of e) on
         | Left_outer -> assert false)
    in
    List.iter walk from;
    let conds = !conds @ (match where with Some w -> conjuncts_of w | None -> []) in
    let units = Array.of_list !units in
    let unit_scopes = List.map (fun (_, s, _, _) -> s) (Array.to_list units) in
    (* classify conjuncts *)
    let single : (int, expr list) Hashtbl.t = Hashtbl.create 8 in
    let multi = ref [] and residual = ref [] in
    List.iter
      (fun c ->
        if has_subquery c then residual := c :: !residual
        else
          match referenced_units ~unit_scopes ~outer c with
          | [] -> residual := c :: !residual  (* constant predicate *)
          | [ i ] ->
            Hashtbl.replace single i
              (c :: (match Hashtbl.find_opt single i with Some l -> l | None -> []))
          | refs -> multi := (refs, c) :: !multi)
      conds;
    (* access path per unit *)
    let planned =
      Array.mapi
        (fun i (alias, scope, dplan, base) ->
          ignore alias;
          let preds = match Hashtbl.find_opt single i with Some l -> List.rev l | None -> [] in
          match dplan, base with
          | Some p, _ ->
            (* derived table: apply its predicates as a filter *)
            let env = { catalog; scope; outer } in
            let filter = split_conjunction (List.map (compile env) preds) in
            let p = match filter with Some f -> Plan.Filter (f, p) | None -> p in
            let est = 1000.0 *. (0.5 ** float_of_int (List.length preds)) in
            (p, scope, est, est)
          | None, Some table_name ->
            let p, est, cost = access_path catalog ~outer ~table_name ~scope preds in
            (p, scope, est, cost)
          | None, None -> assert false)
        units
    in
    let n = Array.length planned in
    if n = 0 then
      (Plan.Single_row, [||], List.rev !residual)
    else begin
      (* greedy cost-ordered join ordering: each step adds the unit that
         minimises the estimated cardinality of the joined set, using
         per-column distinct counts from ANALYZE when available *)
      let in_set = Array.make n false in
      let order = ref [] in
      let remaining_multi = ref (List.map snd !multi) in
      let unit_base = Array.map (fun (_, _, _, base) -> base) units in
      (* equi-join detection between the current set and a candidate unit *)
      let is_equi_between set_scopes unit_idx c =
        match c with
        | Binop (Eq, a, b) ->
          let side e =
            match referenced_units ~unit_scopes ~outer e with
            | [] -> `Const
            | [ i ] when i = unit_idx -> `Unit
            | refs when List.for_all (fun r -> List.mem r set_scopes) refs -> `Set
            | _ -> `Other
          in
          (match side a, side b with
           | `Set, `Unit -> Some (a, b)
           | `Unit, `Set -> Some (b, a)
           | _ -> None)
        | _ -> None
      in
      (* structural-join detection: among the not-yet-applied multi-unit
         conjuncts, a doc-key equality plus a two-sided containment of a
         position expression on one role inside an interval carried by
         the other (XQ2SQL's region predicates land here as separate
         comparisons, or as a BETWEEN) *)
      let structural_on = structural_enabled () in
      let find_structural set_members unit_idx =
        if not structural_on then None
        else begin
          let side e =
            match referenced_units ~unit_scopes ~outer e with
            | [] -> `Const
            | [ i ] when i = unit_idx -> `Unit
            | refs when List.for_all (fun r -> List.mem r set_members) refs -> `Set
            | _ -> `Other
          in
          (* every way of reading a conjunct as a bound on a position:
             (pos, pos_on_unit, `Lo|`Hi, inclusive, conjunct) *)
          let bounds = ref [] in
          List.iter
            (fun c ->
              match c with
              | Binop ((Lt | Le | Gt | Ge) as op, a, b) ->
                (match side a, side b with
                 | `Set, `Unit | `Unit, `Set ->
                   let a_unit = side a = `Unit in
                   let incl = op = Le || op = Ge in
                   let kind_pos_a = match op with Lt | Le -> `Hi | _ -> `Lo in
                   let kind_pos_b = match op with Lt | Le -> `Lo | _ -> `Hi in
                   bounds := (a, a_unit, kind_pos_a, incl, b, c) :: !bounds;
                   bounds := (b, not a_unit, kind_pos_b, incl, a, c) :: !bounds
                 | _ -> ())
              | Between { subject; low; high; negated = false } ->
                (match side subject, side low, side high with
                 | `Unit, `Set, `Set ->
                   bounds := (subject, true, `Lo, true, low, c) :: !bounds;
                   bounds := (subject, true, `Hi, true, high, c) :: !bounds
                 | `Set, `Unit, `Unit ->
                   bounds := (subject, false, `Lo, true, low, c) :: !bounds;
                   bounds := (subject, false, `Hi, true, high, c) :: !bounds
                 | _ -> ())
              | _ -> ())
            !remaining_multi;
          let all = !bounds in
          let pattern =
            List.find_map
              (fun (p, on_unit, kind, lo_incl, lo_e, c1) ->
                if kind <> `Lo then None
                else
                  List.find_map
                    (fun (p2, on_unit2, kind2, hi_incl, hi_e, c2) ->
                      if kind2 = `Hi && on_unit2 = on_unit && p2 = p then
                        Some (p, on_unit, lo_incl, lo_e, c1, hi_incl, hi_e, c2)
                      else None)
                    all)
              all
          in
          match pattern with
          | None -> None
          | Some (p, on_unit, lo_incl, lo_e, c1, hi_incl, hi_e, c2) ->
            (* the document key: the first equi conjunct between the
               roles (XQ2SQL emits doc_id = doc_id) *)
            let doc =
              List.find_map
                (fun c ->
                  if c == c1 || c == c2 then None
                  else
                    Option.map
                      (fun pair -> (pair, c))
                      (is_equi_between set_members unit_idx c))
                !remaining_multi
            in
            (match doc with
             | None -> None
             | Some ((doc_set, doc_unit), doc_c) ->
               Some
                 { sm_doc_set = doc_set; sm_doc_unit = doc_unit;
                   sm_pos = p; sm_lo = lo_e; sm_hi = hi_e;
                   sm_lo_incl = lo_incl; sm_hi_incl = hi_incl;
                   sm_pos_on_unit = on_unit;
                   sm_used =
                     (if c1 == c2 then [ doc_c; c1 ] else [ doc_c; c1; c2 ]) })
        end
      in
      (* distinct count of a plain column reference, via ANALYZE stats *)
      let distinct_of_expr e =
        match e with
        | Col { column; _ } ->
          (match referenced_units ~unit_scopes ~outer e with
           | [ i ] ->
             (match unit_base.(i) with
              | Some base ->
                Option.bind
                  (Catalog.find_stats catalog (Catalog.normalize base))
                  (fun ts ->
                    Option.map
                      (fun cs -> cs.Stats.n_distinct)
                      (Stats.find_column ts column))
              | None -> None)
           | _ -> None)
        | _ -> None
      in
      (* estimated output cardinality of joining the current set (set_rows)
         with a unit (unit_rows) over equi keys [joins] *)
      let joined_est set_rows unit_rows joins =
        let key_sels =
          List.filter_map
            (fun (se, ue) ->
              match distinct_of_expr se, distinct_of_expr ue with
              | Some d1, Some d2 ->
                Some (1. /. float_of_int (max 1 (max d1 d2)))
              | Some d, None | None, Some d ->
                Some (1. /. float_of_int (max 1 d))
              | None, None -> None)
            joins
        in
        match key_sels with
        | [] ->
          if joins = [] then set_rows *. unit_rows  (* cross product *)
          else
            (* equi join, no stats: assume key/foreign-key *)
            set_rows *. unit_rows /. Float.max 1. (Float.max set_rows unit_rows)
        | ss -> set_rows *. unit_rows *. List.fold_left ( *. ) 1.0 ss
      in
      (* pick the starting unit: smallest estimate *)
      let start = ref 0 in
      Array.iteri
        (fun i (_, _, est, _) ->
          let _, _, best, _ = planned.(!start) in
          if est < best then start := i)
        planned;
      in_set.(!start) <- true;
      order := [ !start ];
      let current_plan =
        ref (maybe_exchange catalog ~outer (let p, _, _, _ = planned.(!start) in p))
      in
      let current_scope = ref (let _, s, _, _ = planned.(!start) in s) in
      let current_members = ref [ !start ] in
      let current_rows = ref (let _, _, est, _ = planned.(!start) in est) in
      for _ = 2 to n do
        (* choose the candidate minimising estimated output rows plus the
           cost of producing the unit's side: a hash join scans the unit
           once (small weight keeps output cardinality in charge), but a
           unit joined without equi keys becomes a nested-loop right side
           and is re-executed per left row — charge its full scan cost so
           an expensive scan never lands there when a cheap one can *)
        let best = ref None in
        Array.iteri
          (fun i (_, _, est, cost) ->
            if not in_set.(i) then begin
              let joins =
                List.filter_map (is_equi_between !current_members i) !remaining_multi
              in
              let has_equi = joins <> [] in
              let est_out = joined_est !current_rows est joins in
              let metric =
                est_out
                +. (if has_equi then 0.01 *. cost
                    else Float.max 1. !current_rows *. cost)
              in
              (* a containment pattern turns the hash-join-then-filter
                 into one merge pass: output shrinks by the two bound
                 conjuncts' selectivity, at the price of sorting both
                 sides — picked only when that beats the hash metric *)
              let est_out, metric, mode =
                match if has_equi then find_structural !current_members i else None with
                | Some sm ->
                  let est_struct = est_out *. 0.25 in
                  (* with ANALYZE distinct counts for both document keys
                     the merge's two key sorts are charged against real
                     cardinalities (n·log2 n each side) — at low region
                     density the hash-join-plus-filter then wins, which
                     is exactly the E7 density-16 regime; without stats
                     keep the legacy flat charge *)
                  let sort_charge =
                    match
                      distinct_of_expr sm.sm_doc_set,
                      distinct_of_expr sm.sm_doc_unit
                    with
                    | Some _, Some _ ->
                      Cost.structural_sort_cost !current_rows est
                    | _ -> 0.002 *. (!current_rows +. est)
                  in
                  let metric_struct =
                    est_struct +. (0.01 *. cost) +. sort_charge
                  in
                  if metric_struct < metric then (est_struct, metric_struct, `Structural sm)
                  else (est_out, metric, `Hash)
                | None -> (est_out, metric, if has_equi then `Hash else `Nlj)
              in
              match !best with
              | None -> best := Some (i, est_out, metric, mode)
              | Some (_, _, best_metric, best_mode) ->
                if metric < best_metric
                   || (metric = best_metric && mode <> `Nlj && best_mode = `Nlj) then
                  best := Some (i, est_out, metric, mode)
            end)
          planned;
        match !best with
        | None -> ()
        | Some (i, est_out, _metric, mode) ->
          current_rows := Float.max 0.5 est_out;
          let unit_plan, unit_scope, _, _ = planned.(i) in
          let joined_scope = Array.append !current_scope unit_scope in
          let set_env = { catalog; scope = !current_scope; outer } in
          let unit_env = { catalog; scope = unit_scope; outer } in
          let joined_env = { catalog; scope = joined_scope; outer } in
          (match mode with
           | `Structural sm ->
             remaining_multi :=
               List.filter (fun c -> not (List.memq c sm.sm_used)) !remaining_multi;
             (* the position's side carries the point stream; the other
                side carries the (lo, hi) interval *)
             let interval_on_left = sm.sm_pos_on_unit in
             let ivl_env = if interval_on_left then set_env else unit_env in
             let pos_env = if interval_on_left then unit_env else set_env in
             current_plan :=
               Plan.Structural_join
                 { left = !current_plan;
                   right = maybe_exchange catalog ~outer unit_plan;
                   interval_on_left;
                   left_doc = compile set_env sm.sm_doc_set;
                   right_doc = compile unit_env sm.sm_doc_unit;
                   lo = compile ivl_env sm.sm_lo;
                   hi = compile ivl_env sm.sm_hi;
                   pos = compile pos_env sm.sm_pos;
                   lo_incl = sm.sm_lo_incl; hi_incl = sm.sm_hi_incl;
                   cond = None;
                   right_arity = Array.length unit_scope }
           | `Hash ->
             let equi, rest_multi =
               List.partition
                 (fun c -> is_equi_between !current_members i c <> None)
                 !remaining_multi
             in
             remaining_multi := rest_multi;
             let keys =
               List.map
                 (fun c -> Option.get (is_equi_between !current_members i c))
                 equi
             in
             let left_keys = Array.of_list (List.map (fun (s, _) -> compile set_env s) keys) in
             let right_keys = Array.of_list (List.map (fun (_, u) -> compile unit_env u) keys) in
             current_plan :=
               Plan.Hash_join
                 { left = !current_plan;
                   right = maybe_exchange catalog ~outer unit_plan;
                   left_keys; right_keys;
                   cond = None; left_outer = false;
                   right_arity = Array.length unit_scope }
           | `Nlj ->
             current_plan :=
               Plan.Nested_loop_join
                 { left = !current_plan; right = unit_plan; cond = None;
                   left_outer = false; right_arity = Array.length unit_scope });
          in_set.(i) <- true;
          current_members := i :: !current_members;
          current_scope := joined_scope;
          (* apply multi-unit predicates that are now fully contained *)
          let apply, keep =
            List.partition
              (fun c ->
                let refs = referenced_units ~unit_scopes ~outer c in
                List.for_all (fun r -> List.mem r !current_members) refs)
              !remaining_multi
          in
          remaining_multi := keep;
          (match split_conjunction (List.map (compile joined_env) apply) with
           | Some f ->
             current_plan := Plan.Filter (f, !current_plan);
             current_rows :=
               Float.max 0.5
                 (!current_rows *. (0.5 ** float_of_int (List.length apply)))
           | None -> ())
      done;
      if !remaining_multi <> [] then
        error "internal: unplaced join predicates";
      (!current_plan, !current_scope, List.rev !residual)
    end
  end

(* Structural (no-reorder) planning used when LEFT JOIN is present. *)
and plan_from_structural catalog ~outer from where =
  let rec plan_ref = function
    | Table { name; alias } ->
      let table =
        match Catalog.find_table catalog name with
        | Some t -> t
        | None -> error "no such table %S" name
      in
      let alias = norm (Option.value alias ~default:name) in
      let scope =
        Array.of_list
          (List.map
             (fun c -> { qualifier = Some alias; name = c })
             (Schema.column_names (Table.schema table)))
      in
      (Plan.Seq_scan { table = Catalog.normalize name; filter = None; part = None }, scope)
    | Derived { select; alias } ->
      let sub = plan_select_in catalog ~outer select in
      let scope =
        Array.of_list
          (List.map (fun n -> { qualifier = Some (norm alias); name = n }) sub.column_names)
      in
      (sub.plan, scope)
    | Join { left; kind; right; on } ->
      let lp, ls = plan_ref left in
      let rp, rs = plan_ref right in
      let joined = Array.append ls rs in
      let env = { catalog; scope = joined; outer } in
      let cond = Option.map (compile env) on in
      let left_outer = kind = Left_outer in
      (Plan.Nested_loop_join
         { left = lp; right = rp; cond; left_outer; right_arity = Array.length rs },
       joined)
  in
  let plan, scope =
    match from with
    | [] -> (Plan.Single_row, [||])
    | first :: rest ->
      List.fold_left
        (fun (p, s) r ->
          let rp, rs = plan_ref r in
          (Plan.Nested_loop_join
             { left = p; right = rp; cond = None; left_outer = false;
               right_arity = Array.length rs },
           Array.append s rs))
        (plan_ref first) rest
  in
  (plan, scope, match where with Some w -> conjuncts_of w | None -> [])

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

and collect_aggs (e : expr) acc =
  match e with
  | Agg _ -> if List.exists (fun a -> a = e) acc then acc else acc @ [ e ]
  | Lit _ | Col _ -> acc
  | Binop (_, a, b) -> collect_aggs b (collect_aggs a acc)
  | Unop (_, a) -> collect_aggs a acc
  | Fn (_, args) -> List.fold_left (fun acc a -> collect_aggs a acc) acc args
  | Like { subject; pattern; escape; _ } ->
    let acc = collect_aggs pattern (collect_aggs subject acc) in
    (match escape with Some e -> collect_aggs e acc | None -> acc)
  | In_list { subject; candidates; _ } ->
    List.fold_left (fun acc a -> collect_aggs a acc) (collect_aggs subject acc) candidates
  | Is_null { subject; _ } -> collect_aggs subject acc
  | Between { subject; low; high; _ } ->
    collect_aggs high (collect_aggs low (collect_aggs subject acc))
  | Case { branches; else_ } ->
    let acc =
      List.fold_left (fun acc (c, r) -> collect_aggs r (collect_aggs c acc)) acc branches
    in
    (match else_ with Some e -> collect_aggs e acc | None -> acc)
  | In_select { subject; _ } -> collect_aggs subject acc
  | Exists _ | Scalar_subquery _ -> acc

(* Compile an expression in the post-aggregation scope: group-by
   expressions and aggregate calls become column slots. *)
and compile_post_agg env ~group_exprs ~agg_exprs (e : expr) : Plan.cexpr =
  let find_slot lst x =
    let rec go i = function
      | [] -> None
      | y :: rest -> if y = x then Some i else go (i + 1) rest
    in
    go 0 lst
  in
  match find_slot group_exprs e with
  | Some i -> Plan.CCol i
  | None ->
    (match find_slot agg_exprs e with
     | Some j -> Plan.CCol (List.length group_exprs + j)
     | None ->
       (match e with
        | Lit v -> CLit v
        | Col { table; column } ->
          (* a bare column not in GROUP BY: maybe an outer reference *)
          (match scope_find env.scope ~table ~column with
           | Some _ ->
             error "column %s must appear in GROUP BY or an aggregate" column
           | None -> resolve env ~table ~column)
        | Binop (op, a, b) ->
          CBinop (op, compile_post_agg env ~group_exprs ~agg_exprs a,
                  compile_post_agg env ~group_exprs ~agg_exprs b)
        | Unop (op, a) -> CUnop (op, compile_post_agg env ~group_exprs ~agg_exprs a)
        | Fn (name, args) ->
          CFn (name, List.map (compile_post_agg env ~group_exprs ~agg_exprs) args)
        | Like { subject; pattern; escape; negated } ->
          CLike { subject = compile_post_agg env ~group_exprs ~agg_exprs subject;
                  pattern = compile_post_agg env ~group_exprs ~agg_exprs pattern;
                  escape = Option.map (compile_post_agg env ~group_exprs ~agg_exprs) escape;
                  negated }
        | In_list { subject; candidates; negated } ->
          CIn_list
            { subject = compile_post_agg env ~group_exprs ~agg_exprs subject;
              candidates = List.map (compile_post_agg env ~group_exprs ~agg_exprs) candidates;
              negated }
        | Is_null { subject; negated } ->
          CIs_null { subject = compile_post_agg env ~group_exprs ~agg_exprs subject; negated }
        | Between { subject; low; high; negated } ->
          CBetween
            { subject = compile_post_agg env ~group_exprs ~agg_exprs subject;
              low = compile_post_agg env ~group_exprs ~agg_exprs low;
              high = compile_post_agg env ~group_exprs ~agg_exprs high;
              negated }
        | Case { branches; else_ } ->
          CCase
            { branches =
                List.map
                  (fun (c, r) ->
                    (compile_post_agg env ~group_exprs ~agg_exprs c,
                     compile_post_agg env ~group_exprs ~agg_exprs r))
                  branches;
              else_ = Option.map (compile_post_agg env ~group_exprs ~agg_exprs) else_ }
        | Agg _ -> assert false (* caught by find_slot agg_exprs *)
        | In_select _ | Exists _ | Scalar_subquery _ ->
          error "subqueries combined with aggregation are not supported"))

(* ------------------------------------------------------------------ *)
(* SELECT                                                              *)
(* ------------------------------------------------------------------ *)

and output_name i = function
  | Proj (_, Some alias) -> alias
  | Proj (Col { column; _ }, None) -> column
  | Proj (Agg { fn; _ }, None) -> String.lowercase_ascii (agg_fn_to_string fn)
  | Proj (_, None) -> Printf.sprintf "col%d" (i + 1)
  | Star | Table_star _ -> assert false (* expanded before naming *)

and plan_select_in catalog ~outer (sel : select) : planned =
  let base_plan, scope, leftover = plan_from catalog ~outer sel.from sel.where in
  let env = { catalog; scope; outer } in
  (* residual WHERE conjuncts *)
  let base_plan =
    match split_conjunction (List.map (compile env) leftover) with
    | Some f -> Plan.Filter (f, base_plan)
    | None -> base_plan
  in
  (* expand stars *)
  let projections =
    List.concat_map
      (function
        | Star ->
          if Array.length scope = 0 then error "SELECT * with no FROM clause";
          Array.to_list
            (Array.map
               (fun e ->
                 Proj (Col { table = e.qualifier; column = e.name }, Some e.name))
               scope)
        | Table_star t ->
          let t = norm t in
          let cols =
            List.filter (fun e -> e.qualifier = Some t) (Array.to_list scope)
          in
          if cols = [] then error "unknown table %S in %s.*" t t;
          List.map
            (fun e -> Proj (Col { table = e.qualifier; column = e.name }, Some e.name))
            cols
        | Proj _ as p -> [ p ])
      sel.projections
  in
  let proj_exprs = List.map (function Proj (e, _) -> e | _ -> assert false) projections in
  let column_names = List.mapi output_name projections in
  (* aggregation? *)
  let agg_sources =
    proj_exprs
    @ (match sel.having with Some h -> [ h ] | None -> [])
    @ List.map fst sel.order_by
  in
  let aggs = List.fold_left (fun acc e -> collect_aggs e acc) [] agg_sources in
  let is_aggregate = sel.group_by <> [] || aggs <> [] in
  if is_aggregate then begin
    let group_exprs = sel.group_by in
    let cgroups = Array.of_list (List.map (compile env) group_exprs) in
    let cspecs =
      Array.of_list
        (List.map
           (function
             | Agg { fn; arg; distinct } ->
               { Plan.agg_fn = fn; agg_arg = Option.map (compile env) arg;
                 agg_distinct = distinct }
             | _ -> assert false)
           aggs)
    in
    let agg_plan = Plan.Aggregate { group_by = cgroups; aggs = cspecs; input = base_plan } in
    let post env_expr = compile_post_agg env ~group_exprs ~agg_exprs:aggs env_expr in
    let agg_plan =
      match sel.having with
      | Some h -> Plan.Filter (post h, agg_plan)
      | None -> agg_plan
    in
    let cproj = List.map post proj_exprs in
    finalize sel ~column_names ~proj_asts:proj_exprs
      ~compile_output:post
      ~proj:(Array.of_list cproj) ~input:agg_plan
  end
  else begin
    (match sel.having with
     | Some _ -> error "HAVING requires GROUP BY or aggregates"
     | None -> ());
    let cproj = List.map (compile env) proj_exprs in
    finalize sel ~column_names ~proj_asts:proj_exprs
      ~compile_output:(compile env)
      ~proj:(Array.of_list cproj) ~input:base_plan
  end

(* Shared tail: projection, DISTINCT, ORDER BY (with hidden columns),
   LIMIT/OFFSET. [compile_output] compiles an AST expression against the
   pre-projection row. *)
and finalize sel ~column_names ~proj_asts ~compile_output ~proj ~input =
  let nvisible = Array.length proj in
  let out_scope =
    Array.of_list (List.map (fun n -> { qualifier = None; name = n }) column_names)
  in
  (* compile ORDER BY keys: prefer output aliases, else hidden input columns *)
  let hidden = ref [] in
  let sort_keys =
    List.map
      (fun (e, dir) ->
        let against_output () =
          match e with
          | Col { table = None; column } ->
            (match scope_find out_scope ~table:None ~column with
             | Some i -> Some (Plan.CCol i)
             | None -> None)
          | Lit (Value.Int k) when k >= 1 && k <= nvisible ->
            (* ORDER BY ordinal *)
            Some (Plan.CCol (k - 1))
          | _ ->
            (* structural match against a projected expression *)
            let rec find i = function
              | [] -> None
              | pe :: rest -> if pe = e then Some (Plan.CCol i) else find (i + 1) rest
            in
            find 0 proj_asts
        in
        match against_output () with
        | Some c -> (c, dir)
        | None ->
          (* hidden column: compile against the pre-projection row *)
          let c = compile_output e in
          let slot = nvisible + List.length !hidden in
          hidden := !hidden @ [ c ];
          (Plan.CCol slot, dir))
      sel.order_by
  in
  let needs_hidden = !hidden <> [] in
  if needs_hidden && sel.distinct then
    error "ORDER BY on a non-projected expression is not allowed with DISTINCT";
  let full_proj = Array.append proj (Array.of_list !hidden) in
  let plan = Plan.Project (full_proj, input) in
  let plan = if sel.distinct then Plan.Distinct plan else plan in
  let plan =
    if sort_keys = [] then plan
    else Plan.Sort (Array.of_list sort_keys, plan)
  in
  (* strip hidden sort columns *)
  let plan =
    if needs_hidden then
      Plan.Project (Array.init nvisible (fun i -> Plan.CCol i), plan)
    else plan
  in
  let plan =
    match sel.limit, sel.offset with
    | None, None -> plan
    | limit, offset -> Plan.Limit { limit; offset; input = plan }
  in
  { plan; column_names; rewrites = []; est_cost = 0. }

(* The table-algebra rewrite pass runs once over the complete top-level
   plan (the [transform] driver inside [Rewrite] recurses into expression
   subplans itself), so subquery planning stays rewrite-free. *)
let apply_rewrites catalog (p : planned) =
  if Rewrite.enabled () then begin
    let plan, rewrites = Rewrite.apply catalog p.plan in
    { p with plan; rewrites }
  end
  else p

(* Stamp the finished plan with its root cost estimate — computed after
   rewrites, so the gate judges the plan that will actually run. *)
let with_root_cost catalog (p : planned) =
  let est_cost =
    match Cost.find (Cost.estimate catalog p.plan) p.plan with
    | Some e -> e.Cost.est_cost
    | None -> 0.
  in
  { p with est_cost }

let plan_select catalog sel =
  with_root_cost catalog (apply_rewrites catalog (plan_select_in catalog ~outer:[] sel))

let plan_query catalog (q : Sql_ast.query) =
  let first = plan_select_in catalog ~outer:[] q.first in
  let arity = List.length first.column_names in
  let branches =
    List.map
      (fun (all, sel) ->
        let p = plan_select_in catalog ~outer:[] sel in
        if List.length p.column_names <> arity then
          error "UNION branches have different arities (%d vs %d)" arity
            (List.length p.column_names);
        (all, p.plan))
      q.unions
  in
  let all_bag = List.for_all fst branches in
  let plan = Plan.Union_all (first.plan :: List.map snd branches) in
  (* plain UNION anywhere in the chain means set semantics for the result *)
  let plan = if all_bag then plan else Plan.Distinct plan in
  with_root_cost catalog
    (apply_rewrites catalog
       { plan; column_names = first.column_names; rewrites = [];
         est_cost = 0. })

let compile_scalar catalog e =
  compile { catalog; scope = [||]; outer = [] } e

let compile_row_predicate catalog schema e =
  let scope =
    Array.of_list
      (List.map
         (fun c -> { qualifier = Some (norm schema.Schema.table_name); name = c })
         (Schema.column_names schema))
  in
  compile { catalog; scope; outer = [] } e
