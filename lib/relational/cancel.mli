(** Cooperative query cancellation.

    A token is created per query by whoever owns its lifecycle (the
    network server's per-query timeout, a client CANCEL request, a CLI
    [--timeout]) and handed to the executor, which calls {!check} at
    every operator boundary as rows are pulled. Cancellation is
    cooperative: a fired token stops the query at the next boundary, so
    even a cross-product that would run for hours aborts within one
    pull. Tokens are domain-safe — [Exchange] partitions running on pool
    domains observe a cancel fired from any other domain or thread. *)

type t

exception Canceled of string * string
(** [(code, message)]: [code] is a stable machine-readable tag — {!timeout}
    or {!canceled} — that the server maps onto typed wire errors. *)

val timeout_code : string   (** ["TIMEOUT"] — the deadline passed. *)

val canceled_code : string  (** ["CANCELED"] — explicitly canceled. *)

val create : ?deadline:float -> unit -> t
(** A fresh, unfired token. [deadline] is an absolute {!Obs.now_s}
    instant after which {!check} fires the token itself with
    {!timeout_code} — so a timed-out query aborts even when nobody is
    monitoring it from another thread. *)

val cancel : ?code:string -> t -> string -> unit
(** Fire the token with a message (default code {!canceled_code}).
    The first firing wins; later ones are ignored. Idempotent,
    domain-safe. *)

val deadline_passed : t -> bool
(** True when the token has a deadline and it is in the past (whether or
    not the token has fired yet). *)

val status : t -> (string * string) option
(** [Some (code, message)] once fired. *)

val check : t -> unit
(** @raise Canceled once the token has fired (or its deadline passed).
    Cheap enough to call per row: the deadline clock is consulted only
    every few dozen calls; the fired flag is a single atomic read. *)
