(** The database facade: the SQL entry point the XQ2SQL transformer talks
    to, standing in for the commercial RDBMS (Oracle 9i) of the paper.

    Supports in-memory operation or WAL-backed durability with crash
    recovery, explicit transactions with rollback, DDL, DML, queries and
    EXPLAIN.

    Two row-storage backends share every code path above the table
    layer: the in-memory vector store, and an out-of-core paged store
    (heap files and on-disk B+trees read through a buffer pool, see
    {!Storage}). [XOMATIQ_STORAGE=disk] flips {!open_in_memory} and
    {!open_with_wal} onto the paged backend without touching call
    sites; {!open_disk} selects it explicitly. *)

type t

type result =
  | Rows of { columns : string list; rows : Value.t array list }
  | Affected of int
  | Explained of string
  | Done of string   (** DDL / transaction control acknowledgement *)

val open_in_memory : unit -> t
(** Volatile database. Under [XOMATIQ_STORAGE=disk] the rows still live
    in page files (in a private temp directory, deleted at close) so the
    whole testsuite exercises the paged backend. *)

val open_with_wal : string -> t
(** Open a database durably backed by the WAL at [path]. If the file
    exists, committed history is replayed (crash recovery). Under
    [XOMATIQ_STORAGE=disk] pages live beside the log in [path ^
    ".pages"]. *)

val open_disk : ?wal:string -> dir:string -> unit -> t
(** Open the paged backend at [dir] explicitly. With [wal]: if the
    directory's manifest proves a clean shutdown against the log, the
    existing page files are attached as-is (no replay); otherwise the
    pages are wiped and rebuilt from the committed WAL. Without [wal]
    there is no durability across a crash, only across {!close}. *)

val close : t -> unit
(** Aborts any open default-session transaction. Disk backend: runs a
    final {!checkpoint} and closes every page file; a database closed
    this way re-opens by attach, not replay. *)

val checkpoint : ?truncate_upto:int -> t -> unit
(** Disk backend: flush the WAL, write back every dirty page (fsync) and
    write the manifest blessing the page files. No-op in memory.
    [truncate_upto] additionally drops the WAL prefix below that logical
    record position (clamped to the manifest's position, which the pages
    just written fully cover) and deletes the bulk-load spool files only
    that prefix referenced. A primary passes the slowest connected
    replica's acknowledged position so no replica is ever cut off. Call
    at a statement boundary: truncating inside an open transaction would
    orphan its commit record. A database whose WAL lost a prefix
    re-opens by attaching the checkpointed pages and replaying only the
    surviving suffix (idempotently — records carry their rowids). *)

val storage : t -> Storage.t option
val is_disk : t -> bool
val data_dir : t -> string option

val catalog : t -> Catalog.t

val id : t -> int
(** Process-unique instance serial, assigned at open. Usable as a cheap
    hashtable key standing for the database's physical identity (caches
    keyed by [(id, Catalog.version)] self-invalidate across DDL/DML). *)

val exec : t -> string -> (result, string) Stdlib.result
(** Execute one SQL statement. *)

val exec_exn : t -> string -> result
(** @raise Failure with the error message. *)

val query : t -> string -> (string list * Value.t array list, string) Stdlib.result
(** Run a SELECT; returns (column names, rows). *)

val query_exn : t -> string -> string list * Value.t array list

val insert_rows :
  t -> table:string -> Value.t array list -> (int, string) Stdlib.result
(** Bulk insert of pre-built rows (the prepared-statement fast path used
    by the XML2Relational loader). Transactional and WAL-logged exactly
    like an INSERT statement; returns the number of rows inserted. *)

val bulk_load :
  t -> table:string -> spool:string -> rows:int -> (int, string) Stdlib.result
(** Spool-then-load: append the rows of a spool file (written with
    {!Storage.spool_create}/{!Storage.spool_add}) under a single WAL
    Load record — no per-row logging — then build each of the table's
    indexes in one pass (bottom-up from an externally sorted run when
    the index is an empty paged B+tree). Transactional: joins the open
    default-session transaction or auto-commits, and rolls back like
    any other statement. The resulting table and index state is
    identical to inserting the same rows one by one. The spool must
    outlive the WAL (recovery re-reads it). *)

val exec_script : t -> string -> (int, string) Stdlib.result
(** Run a [;]-separated script, stopping at the first error; returns the
    number of statements executed. *)

val explain : t -> string -> (string, string) Stdlib.result
(** Plan a SELECT and render the physical plan. *)

val explain_analyze : t -> string -> (string, string) Stdlib.result
(** Plan AND execute a SELECT, rendering the plan annotated with
    per-operator row counts, index probes, hash-build sizes and wall
    time, followed by a one-line total. Equivalent to
    [exec t ("EXPLAIN ANALYZE " ^ sql)]. *)

val in_transaction : t -> bool

type session
(** One client connection with its own transaction state, sharing the
    database's catalog, WAL and lock manager. The [t]-level API is the
    default session; extra sessions make concurrent schedules
    scriptable. Writers use strict two-phase locking (see
    {!Lock_manager}): DML takes an exclusive table lock released at
    COMMIT/ROLLBACK; a [Would_block] conflict fails only the statement
    (retryable); a [Deadlock] rolls the requesting transaction back.
    Reads take no locks at all — they run against an MVCC snapshot (see
    {!Table.snap}): a standalone SELECT reads the latest committed
    state at statement start; inside an explicit transaction the first
    read pins the snapshot for the transaction's lifetime (repeatable
    reads, own writes visible), and a later UPDATE/DELETE of a row some
    concurrent transaction committed over since that snapshot aborts
    with a serialization failure (first-updater-wins). *)

val session : t -> session
val session_exec : session -> string -> (result, string) Stdlib.result
val session_in_transaction : session -> bool

val plan_select : t -> Sql_ast.select -> Planner.planned
(** Plan without executing (used by tests and the XQ2SQL layer). *)

val run_planned :
  t -> ?obs:Obs.profile -> ?cancel:Cancel.t -> Planner.planned ->
  string list * Value.t array list
(** Execute a pre-planned SELECT; [obs] (built from the same plan)
    collects per-operator statistics during execution. [cancel] aborts
    execution cooperatively at the next operator boundary once fired
    (see {!Cancel}); the query server uses it for per-query wall-clock
    timeouts and client CANCEL requests. Runs against an MVCC snapshot
    of the latest committed state: never blocks on concurrent writers.
    @raise Cancel.Canceled when [cancel] fires mid-execution. *)

(** {2 Replication hooks}

    WAL shipping (see {!Replication}): the primary streams raw WAL
    lines; a replica appends them to its own log verbatim — its WAL is
    line-for-line the primary's, so logical record positions agree
    across nodes by construction — and applies committed transactions
    through the MVCC machinery, so replica reads stay
    snapshot-consistent while the stream applies. *)

val wal_position : t -> int
(** Logical WAL record position: records ever written, including a
    truncated prefix. 0 without a WAL. *)

val wal_base : t -> int
(** Records dropped from the front of the WAL by truncation. *)

val wal_file : t -> string option

val repl_append_lines : t -> string list -> unit
(** Replica side: append shipped raw WAL lines verbatim and flush.
    Append-before-apply — a crash between the two re-applies the records
    from the local log on restart (they are idempotent). *)

val repl_apply_txn : t -> Wal.op list -> unit
(** Replica side: apply one shipped committed transaction (its data
    operations in stream order; control records are ignored).
    Idempotent, like recovery replay. Bumps the catalog version so
    cached plans re-validate.
    @raise Failure when the stream contradicts local state. *)

val repl_apply_ddl : t -> string -> unit
(** Replica side: apply one shipped DDL statement (without re-logging
    it). Bumps the catalog version.
    @raise Failure on a malformed statement. *)
