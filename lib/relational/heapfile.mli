(** Paged heap file: the on-disk row store behind {!Table} in disk mode.

    Two buffer-pool page files per heap — [<base>.heap] holds records
    appended back to back (with overflow chains for rows bigger than a
    page) and [<base>.map] is a fixed-width rowid directory plus a meta
    page (next rowid, live count, append tail). Rowids are assigned
    sequentially and never reused, and a delete only clears the entry's
    live flag, so rowid assignment and tombstone behaviour are identical
    to the in-memory [Vector]-backed table. Page contents are only
    trusted after a clean shutdown; see {!Storage} for the manifest
    protocol. *)

type t

val create : Bufpool.t -> base:string -> t
(** Open (attaching to existing page files, creating them otherwise) the
    heap stored at [base ^ ".heap"] / [base ^ ".map"]. *)

val next_rowid : t -> int
(** The rowid the next insert will receive (= slots ever allocated). *)

val live : t -> int

val insert : t -> Value.t array -> int
val get : t -> int -> Value.t array option

val delete : t -> int -> bool
(** Clear the live flag; the record location is kept for {!undelete}. *)

val undelete : t -> int -> bool
(** Restore a tombstoned slot's live flag (rollback of a delete; the
    stored image is the pre-delete image by construction). *)

val update : t -> int -> Value.t array -> unit
(** Append the new image and repoint the directory entry. The caller
    guarantees the slot is live. *)

val scan_range : t -> lo:int -> hi:int -> (int * Value.t array) Seq.t
(** Live rows with [lo <= rowid < hi] in rowid order, decoded one
    directory page (1024 slots) at a time through buffer-pool pins. *)

val truncate : t -> unit
val sync : t -> unit
(** Write the meta mirror through to its (cached) page. *)

val close : t -> unit
(** [sync], then write back and close both files. *)

val destroy : t -> unit
(** Drop cached frames and unlink both files. *)
