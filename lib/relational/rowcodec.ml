(* Binary row-image codec shared by the paged heap, the paged B+tree and
   the bulk-load machinery. The encoding round-trips every Value.t
   exactly (floats travel as their IEEE bit pattern), so a row written by
   the in-memory engine and read back from a page compares byte-identical
   under Value.compare_total / Value.equal.

   Layout: u16 arity, then per value a tag byte:
     'N'  Null
     'I'  Int,   8-byte LE two's complement
     'F'  Float, 8-byte LE IEEE-754 bit pattern
     'T'  Text,  u32 LE length + bytes
     'B'  Bool,  1 byte (0/1) *)

let add_value buf (v : Value.t) =
  match v with
  | Value.Null -> Buffer.add_char buf 'N'
  | Value.Int i ->
    Buffer.add_char buf 'I';
    Buffer.add_int64_le buf (Int64.of_int i)
  | Value.Float f ->
    Buffer.add_char buf 'F';
    Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Value.Text s ->
    Buffer.add_char buf 'T';
    Buffer.add_int32_le buf (Int32.of_int (String.length s));
    Buffer.add_string buf s
  | Value.Bool b ->
    Buffer.add_char buf 'B';
    Buffer.add_char buf (if b then '\001' else '\000')

let encode_to buf (row : Value.t array) =
  Buffer.add_uint16_le buf (Array.length row);
  Array.iter (add_value buf) row

let encode row =
  let buf = Buffer.create 64 in
  encode_to buf row;
  Buffer.contents buf

(* [decode b pos] reads one row image starting at [pos]; returns the row
   and the position just past it. Raises [Failure] on a malformed image
   (only reachable through on-disk corruption). *)
let decode (b : bytes) pos : Value.t array * int =
  let arity = Bytes.get_uint16_le b pos in
  let pos = ref (pos + 2) in
  let value () =
    let tag = Bytes.get b !pos in
    incr pos;
    match tag with
    | 'N' -> Value.Null
    | 'I' ->
      let v = Int64.to_int (Bytes.get_int64_le b !pos) in
      pos := !pos + 8;
      Value.Int v
    | 'F' ->
      let v = Int64.float_of_bits (Bytes.get_int64_le b !pos) in
      pos := !pos + 8;
      Value.Float v
    | 'T' ->
      let len = Int32.to_int (Bytes.get_int32_le b !pos) in
      pos := !pos + 4;
      let s = Bytes.sub_string b !pos len in
      pos := !pos + len;
      Value.Text s
    | 'B' ->
      let v = Bytes.get b !pos <> '\000' in
      incr pos;
      Value.Bool v
    | c -> failwith (Printf.sprintf "Rowcodec: bad value tag %C" c)
  in
  let row = Array.init arity (fun _ -> value ()) in
  (row, !pos)

let decode_string s =
  let row, _ = decode (Bytes.unsafe_of_string s) 0 in
  row
