(** Write-ahead logging and crash recovery.

    The paper justifies the relational substrate partly by "the concurrency
    access and crash recovery features of an RDBMS" (Section 2.2). This WAL
    provides the recovery half: every data-modifying operation is logged
    with its transaction id before being applied; a commit record seals the
    transaction. Recovery replays, in log order, only operations belonging
    to committed transactions, so a crash mid-transaction (a torn or
    unsealed tail) leaves no partial effects.

    DDL records are logged as SQL text and replayed unconditionally in
    order (DDL auto-commits). *)

type op =
  | Begin of int
  | Insert of { txid : int; table : string; row : Value.t array }
  | Delete of { txid : int; table : string; rowid : int }
  | Update of { txid : int; table : string; rowid : int; row : Value.t array }
  | Commit of int
  | Rollback of int
  | Ddl of string  (* SQL text of a CREATE/DROP statement *)
  | Load of { txid : int; table : string; spool : string; rows : int }
      (* one bulk load: [rows] rows appended to [table], payload in the
         spool file at [spool] (length-prefixed Rowcodec images). The
         spool must outlive the log records that reference it. *)

type t

val open_log : string -> t
(** Open (creating if needed) the log file at [path] for appending. *)

val append : t -> op -> unit

val flush : t -> unit
(** fsync-equivalent barrier (flushes OCaml buffers to the OS). *)

val close : t -> unit

val path : t -> string

val trim_torn_tail : string -> unit
(** Physically truncate an unterminated final record (crash during write)
    so later appends start on a fresh line. No-op when the log ends with a
    newline or does not exist. *)

val read_ops : string -> op list
(** Parse a log file. A torn final record (crash during write) is ignored.
    Unparseable interior records raise [Failure]. *)

val committed_ops : op list -> op list
(** The replay stream: DDL records plus data operations whose transaction
    has a [Commit] record, in original log order. *)

val encode : op -> string
(** One-line encoding (no trailing newline); exposed for tests. *)

val decode : string -> op option
(** Inverse of {!encode}; [None] for torn/garbage lines. *)

val line_count : string -> int
(** Complete records in the log file (one per line once
    {!trim_torn_tail} has run); 0 when the file does not exist. *)
