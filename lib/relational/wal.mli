(** Write-ahead logging, crash recovery, and log shipping.

    The paper justifies the relational substrate partly by "the concurrency
    access and crash recovery features of an RDBMS" (Section 2.2). This WAL
    provides the recovery half: every data-modifying operation is logged
    with its transaction id before being applied; a commit record seals the
    transaction. Recovery replays, in log order, only operations belonging
    to committed transactions, so a crash mid-transaction (a torn or
    unsealed tail) leaves no partial effects.

    DDL records are logged as SQL text and replayed unconditionally in
    order (DDL auto-commits).

    Records are {e idempotent}: [Insert] carries the rowid it was assigned
    and [Load] the first rowid of its appended range, so replaying a record
    whose effects are already present is detectable and skippable. That
    property is what WAL shipping (replicas apply the same stream the
    primary logged) and checkpoint truncation (recovery replays a suffix
    over already-persisted pages) are built on.

    Positions are {e logical record indexes}: record [i] is the (i+1)-th
    record ever appended to this log, stable across prefix truncation. A
    truncated log starts with a ["BAS|<n>|."] header declaring the logical
    index of its first remaining record. *)

type op =
  | Begin of int
  | Insert of { txid : int; table : string; row : Value.t array; rowid : int }
      (* [rowid] is the slot the row was appended at; replay skips the
         record when the table has already grown past it. *)
  | Delete of { txid : int; table : string; rowid : int }
  | Update of { txid : int; table : string; rowid : int; row : Value.t array }
  | Commit of int
  | Rollback of int
  | Ddl of string  (* SQL text of a CREATE/DROP statement *)
  | Load of { txid : int; table : string; spool : string; rows : int; first : int }
      (* one bulk load: [rows] rows appended to [table] starting at rowid
         [first], payload in the spool file at [spool] (length-prefixed
         Rowcodec images). The spool must outlive the log records that
         reference it. *)

type t

val open_log : string -> t
(** Open (creating if needed) the log file at [path] for appending.
    Reads the base header and record count so {!position} is exact. *)

val append : t -> op -> unit

val append_line : t -> string -> unit
(** Append one already-encoded record line verbatim (no trailing newline
    in [line]). The replica's apply path uses this so its local log stays
    line-for-line identical to the primary's shipped stream. *)

val flush : t -> unit
(** fsync-equivalent barrier (flushes OCaml buffers to the OS). *)

val close : t -> unit

val path : t -> string

val base : t -> int
(** Logical index of the first record still present in the file; 0 for a
    log that was never truncated. *)

val position : t -> int
(** Logical index one past the last appended record = total records ever
    appended ([base] + records in file). *)

val trim_torn_tail : string -> unit
(** Physically truncate an unterminated final record (crash during write)
    so later appends start on a fresh line. No-op when the log ends with a
    newline or does not exist. *)

val read_ops : string -> op list
(** Parse a log file. A torn final record (crash during write) is ignored.
    Unparseable interior records raise [Failure]. *)

val committed_ops : op list -> op list
(** The replay stream: DDL records plus data operations whose transaction
    has a [Commit] record, in original log order. *)

val encode : op -> string
(** One-line encoding (no trailing newline); exposed for tests. *)

val decode : string -> op option
(** Inverse of {!encode}; [None] for torn/garbage lines (and for the
    ["BAS|…"] base header, which is not an [op]). *)

val line_count : string -> int
(** Logical record count of the log file: base + complete records (one
    per line once {!trim_torn_tail} has run); 0 when the file does not
    exist. Stable across prefix truncation, so manifest comparisons keep
    working on truncated logs. *)

val read_base : string -> int
(** Base of a log file without opening it for append; 0 when the file
    does not exist or was never truncated. *)

val tail_from : string -> pos:int -> [ `Ok of string list | `Truncated of int ]
(** Complete record lines with logical index >= [pos], in order — the
    replication sender's poll read. [`Truncated base] when [pos] predates
    the file's base (the history was dropped by a checkpoint; the
    subscriber must re-seed). *)

val ops_from : string -> pos:int -> op list
(** Decoded records with logical index >= [pos]. Raises [Failure] when
    [pos] predates the base. *)

val truncate_prefix : t -> upto:int -> string list
(** Drop every record with logical index < [upto] from the live log,
    atomically (tmp file + rename), and return the spool paths referenced
    by dropped [Load] records so the caller can delete them. [upto] is
    clamped to {!position}; a no-op (returning []) when [upto <= base t].
    Only call at a quiescent point (no concurrent appends). *)
