(** Disk-backend context: the buffer pool and data directory shared by a
    database's paged heaps and B+trees, plus the recovery manifest,
    bulk-load spool files, and the external sorter for bottom-up index
    builds.

    Recovery model: page files carry no per-page LSNs, so they are only
    trusted after a clean shutdown. The manifest (written atomically at
    checkpoint/close, deleted at open) pins the WAL line count the pages
    reflect and the final-state DDL to re-attach with; any mismatch
    wipes the page directory and rebuilds from the committed WAL. *)

type t

type manifest = {
  wal_lines : int;        (** WAL lines reflected by the page files *)
  ddls : string list;     (** final-state CREATE statements, creation order *)
  analyzed : string list; (** tables holding statistics at shutdown *)
}

val create : ?pool:Bufpool.t -> dir:string -> unit -> t
(** Open (creating the [heap]/[idx]/[spool] subdirectories as needed)
    the data directory. A fresh pool is created unless one is passed. *)

val pool : t -> Bufpool.t
val dir : t -> string

val heap_base : t -> string -> string
(** [heap_base t table] — base path handed to {!Heapfile.create}. *)

val index_path : t -> string -> string
val spool_path : t -> string -> string

val wipe_pages : t -> unit
(** Delete every heap and index page file (spools stay: committed WAL
    Load records reference them during replay). *)

val drop_manifest : t -> unit
val write_manifest : t -> manifest -> unit
(** Atomic (tmp + rename). *)

val read_manifest : t -> manifest option

(** {2 Spool files}

    A spool is the row payload of one bulk load: length-prefixed
    Rowcodec images back to back, referenced by the WAL's Load record
    and therefore kept until a checkpoint proves the pages durable. *)

type spool_writer

val spool_create : string -> spool_writer
val spool_add : spool_writer -> Value.t array -> unit
val spool_finish : spool_writer -> int
(** Flush + fsync + close; returns the row count. *)

val spool_rows : spool_writer -> int
val spool_writer_path : spool_writer -> string
val spool_iter : string -> (Value.t array -> unit) -> unit
val spool_remove : string -> unit

val external_sort :
  t -> name:string -> (string * int) Seq.t -> (string * int) Seq.t
(** Sort (encoded key, rowid) pairs by (decoded {!Btree.compare_key},
    rowid). In-memory for up to 100k pairs, then sorted runs spilled
    under [spool/] and k-way merged; run files delete themselves as they
    drain. The result must be consumed before calling again with the
    same [name]. *)
