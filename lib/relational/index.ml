type kind = Hash | Btree

module Key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    && (let ok = ref true in
        Array.iteri (fun i x -> if not (Value.equal x b.(i)) then ok := false) a;
        !ok)

  let hash k =
    Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 k
end

module KeyTbl = Hashtbl.Make (Key)

(* In disk mode both declared kinds are backed by a paged B+tree (the
   declared kind is kept so planner behaviour — e.g. hash indexes
   rejecting range scans — is identical across backends). *)
type impl =
  | Hash_impl of int list KeyTbl.t  (* reversed insertion order *)
  | Btree_impl of int Btree.t
  | Paged_impl of Btree_paged.t

type t = {
  idx_name : string;
  idx_table : string;
  idx_columns : string list;
  idx_positions : int list;
  idx_unique : bool;
  idx_kind : kind;
  mutable impl : impl;
  mutable distinct : int;   (* mem impls only; paged trees self-count *)
  mutable entries : int;
  (* Paged only: posting lists memoized by key, so repeated equality
     probes (disk-mode hash-index lookups are paged-tree descents) hit a
     flat hashtable instead. Bounded; cleared wholesale when full; the
     probed key is evicted on any mutation touching it. *)
  post_cache : int list KeyTbl.t;
}

let post_cache_cap = 4096

let create ?storage ~name ~table ~columns ~column_positions ~unique kind =
  let impl =
    match storage with
    | Some st ->
      Paged_impl (Btree_paged.create (Storage.pool st) ~path:(Storage.index_path st name))
    | None ->
      (match kind with
       | Hash -> Hash_impl (KeyTbl.create 256)
       | Btree -> Btree_impl (Btree.create ()))
  in
  { idx_name = name; idx_table = table; idx_columns = columns;
    idx_positions = column_positions; idx_unique = unique; idx_kind = kind;
    impl; distinct = 0; entries = 0; post_cache = KeyTbl.create 64 }

let name t = t.idx_name
let table t = t.idx_table
let columns t = t.idx_columns
let column_positions t = t.idx_positions
let is_unique t = t.idx_unique
let kind t = t.idx_kind
let is_paged t = match t.impl with Paged_impl _ -> true | _ -> false

let key_of_row t row =
  Array.of_list (List.map (fun i -> row.(i)) t.idx_positions)

let lookup t key =
  match t.impl with
  | Hash_impl tbl -> (match KeyTbl.find_opt tbl key with Some l -> List.rev l | None -> [])
  | Btree_impl bt -> Btree.find bt key
  | Paged_impl bt ->
    (match KeyTbl.find_opt t.post_cache key with
     | Some l -> l
     | None ->
       let l = Btree_paged.find bt key in
       if KeyTbl.length t.post_cache >= post_cache_cap then
         KeyTbl.reset t.post_cache;
       KeyTbl.add t.post_cache key l;
       l)

let unique_violation t key =
  Printf.sprintf "unique index %S violated by key (%s)" t.idx_name
    (String.concat ", " (List.map Value.to_literal (Array.to_list key)))

let insert t row rowid =
  let key = key_of_row t row in
  (* key existence, without materialising the posting list (posting lists
     can be long; bulk loads must stay linear) *)
  let key_exists =
    match t.impl with
    | Hash_impl tbl -> KeyTbl.mem tbl key
    | Btree_impl bt -> Btree.mem bt key
    | Paged_impl bt -> Btree_paged.mem bt key
  in
  if t.idx_unique && key_exists then Error (unique_violation t key)
  else begin
    (match t.impl with
     | Hash_impl tbl ->
       (match KeyTbl.find_opt tbl key with
        | Some l -> KeyTbl.replace tbl key (rowid :: l)
        | None ->
          KeyTbl.add tbl key [ rowid ];
          t.distinct <- t.distinct + 1);
       t.entries <- t.entries + 1
     | Btree_impl bt ->
       if not key_exists then t.distinct <- t.distinct + 1;
       Btree.insert bt key rowid;
       t.entries <- t.entries + 1
     | Paged_impl bt ->
       KeyTbl.remove t.post_cache key;
       Btree_paged.insert ~key_exists bt key rowid);
    Ok ()
  end

let remove t row rowid =
  let key = key_of_row t row in
  match t.impl with
  | Hash_impl tbl ->
    (match KeyTbl.find_opt tbl key with
     | None -> ()
     | Some l ->
       let kept = List.filter (fun id -> id <> rowid) l in
       t.entries <- t.entries - (List.length l - List.length kept);
       if kept = [] then begin
         KeyTbl.remove tbl key;
         t.distinct <- t.distinct - 1
       end
       else KeyTbl.replace tbl key kept)
  | Btree_impl bt ->
    let before = Btree.entry_count bt and dbefore = Btree.cardinal bt in
    Btree.remove bt key (fun id -> id = rowid);
    t.entries <- t.entries - (before - Btree.entry_count bt);
    t.distinct <- t.distinct - (dbefore - Btree.cardinal bt)
  | Paged_impl bt ->
    KeyTbl.remove t.post_cache key;
    Btree_paged.remove bt key (fun id -> id = rowid)

let range ?lo ?hi t =
  (* SQL comparison semantics: a NULL key component never satisfies a
     range predicate, but the tree orders Null below everything, so an
     unbounded low end would sweep the NULL run up. Start one-sided
     scans just above the all-Null prefix and drop any remaining
     NULL-bearing keys (composite keys can interleave). *)
  let lo =
    match lo with
    | Some _ -> lo
    | None -> Some (Array.make (List.length t.idx_positions) Value.Null, false)
  in
  let non_null (k, _) = not (Array.exists (fun v -> v = Value.Null) k) in
  match t.idx_kind, t.impl with
  | Hash, _ ->
    invalid_arg (Printf.sprintf "index %S is a hash index: no range scans" t.idx_name)
  | Btree, Btree_impl bt -> Seq.map snd (Seq.filter non_null (Btree.range ?lo ?hi bt))
  | Btree, Paged_impl bt ->
    Seq.map snd (Seq.filter non_null (Btree_paged.range ?lo ?hi bt))
  | Btree, Hash_impl _ -> assert false

let cardinality t =
  match t.impl with Paged_impl bt -> Btree_paged.cardinal bt | _ -> t.distinct

let entry_count t =
  match t.impl with Paged_impl bt -> Btree_paged.entry_count bt | _ -> t.entries

let clear t =
  match t.impl with
  | Hash_impl tbl ->
    KeyTbl.reset tbl;
    t.distinct <- 0;
    t.entries <- 0
  | Btree_impl _ ->
    t.impl <- Btree_impl (Btree.create ());
    t.distinct <- 0;
    t.entries <- 0
  | Paged_impl bt ->
    KeyTbl.reset t.post_cache;
    Btree_paged.truncate bt

let bulk_load t pairs =
  match t.impl with
  | Paged_impl bt ->
    (try
       KeyTbl.reset t.post_cache;
       Btree_paged.bulk_load ~unique:t.idx_unique bt pairs;
       Ok ()
     with Btree_paged.Duplicate key -> Error (unique_violation t key))
  | _ -> invalid_arg "Index.bulk_load: in-memory index"

let close t =
  match t.impl with Paged_impl bt -> Btree_paged.close bt | _ -> ()

let destroy t =
  match t.impl with Paged_impl bt -> Btree_paged.destroy bt | _ -> ()
