(* Table-algebra rewrites for the vectorized executor. See rewrite.mli
   for the rule catalog and the safety rules around subplans. *)

open Plan

let enabled () =
  match Sys.getenv_opt "XOMATIQ_VEC" with
  | Some ("0" | "off" | "false" | "no") -> false
  | _ -> true

type report = (string * int) list

let rule_names =
  [ "sort-elim"; "filter-pushdown"; "filter-merge"; "prune"; "proj-fuse" ]

(* ------------------------------------------------------------------ *)
(* Expression analysis                                                 *)
(* ------------------------------------------------------------------ *)

(* Column slots an expression reads from the current row, with
   duplicates, in reading order. Subplan bodies are skipped: their CCols
   index the subplan's own rows. *)
let col_occurrences (e : cexpr) : int list =
  let acc = ref [] in
  let rec go = function
    | CLit _ | CParam _ -> ()
    | CCol i -> acc := i :: !acc
    | CBinop (_, a, b) -> go a; go b
    | CUnop (_, a) -> go a
    | CFn (_, args) -> List.iter go args
    | CLike { subject; pattern; escape; _ } ->
      go subject; go pattern; Option.iter go escape
    | CIn_list { subject; candidates; _ } -> go subject; List.iter go candidates
    | CIs_null { subject; _ } -> go subject
    | CBetween { subject; low; high; _ } -> go subject; go low; go high
    | CCase { branches; else_ } ->
      List.iter (fun (c, r) -> go c; go r) branches;
      Option.iter go else_
    | CIn_plan { subject; _ } -> go subject
    | CExists_plan _ | CScalar_plan _ -> ()
  in
  go e;
  List.rev !acc

let cols_of e = List.sort_uniq compare (col_occurrences e)

let rec has_subplan = function
  | CLit _ | CCol _ | CParam _ -> false
  | CBinop (_, a, b) -> has_subplan a || has_subplan b
  | CUnop (_, a) -> has_subplan a
  | CFn (_, args) -> List.exists has_subplan args
  | CLike { subject; pattern; escape; _ } ->
    has_subplan subject || has_subplan pattern
    || (match escape with Some e -> has_subplan e | None -> false)
  | CIn_list { subject; candidates; _ } ->
    has_subplan subject || List.exists has_subplan candidates
  | CIs_null { subject; _ } -> has_subplan subject
  | CBetween { subject; low; high; _ } ->
    has_subplan subject || has_subplan low || has_subplan high
  | CCase { branches; else_ } ->
    List.exists (fun (c, r) -> has_subplan c || has_subplan r) branches
    || (match else_ with Some e -> has_subplan e | None -> false)
  | CIn_plan _ | CExists_plan _ | CScalar_plan _ -> true

(* Rename the CCol slots of an expression (which must be subplan-free
   when [f] is not the identity; callers guarantee this). *)
let rec map_cols f (e : cexpr) : cexpr =
  match e with
  | CLit v -> CLit v
  | CCol i -> CCol (f i)
  | CParam i -> CParam i
  | CBinop (op, a, b) -> CBinop (op, map_cols f a, map_cols f b)
  | CUnop (op, a) -> CUnop (op, map_cols f a)
  | CFn (name, args) -> CFn (name, List.map (map_cols f) args)
  | CLike { subject; pattern; escape; negated } ->
    CLike
      { subject = map_cols f subject; pattern = map_cols f pattern;
        escape = Option.map (map_cols f) escape; negated }
  | CIn_list { subject; candidates; negated } ->
    CIn_list
      { subject = map_cols f subject;
        candidates = List.map (map_cols f) candidates; negated }
  | CIs_null { subject; negated } ->
    CIs_null { subject = map_cols f subject; negated }
  | CBetween { subject; low; high; negated } ->
    CBetween
      { subject = map_cols f subject; low = map_cols f low;
        high = map_cols f high; negated }
  | CCase { branches; else_ } ->
    CCase
      { branches = List.map (fun (c, r) -> (map_cols f c, map_cols f r)) branches;
        else_ = Option.map (map_cols f) else_ }
  | CIn_plan { subject; plan; negated } ->
    CIn_plan { subject = map_cols f subject; plan = copy_plan plan; negated }
  | CExists_plan { plan; negated } -> CExists_plan { plan = copy_plan plan; negated }
  | CScalar_plan plan -> CScalar_plan (copy_plan plan)

(* Can this projection expression be dropped (or not) without changing
   observable behavior? Only constructs whose evaluation never raises
   qualify: arithmetic, functions, LIKE-with-escape and subplans can all
   raise Runtime_error, so an unused-but-risky expression must stay. *)
let rec droppable = function
  | CLit _ | CCol _ | CParam _ -> true
  | CBinop ((Sql_ast.And | Sql_ast.Or | Sql_ast.Eq | Sql_ast.Neq
            | Sql_ast.Lt | Sql_ast.Le | Sql_ast.Gt | Sql_ast.Ge), a, b) ->
    droppable a && droppable b
  | CBinop (_, _, _) -> false
  | CUnop (Sql_ast.Not, a) -> droppable a
  | CUnop (Sql_ast.Neg, _) -> false
  | CFn _ -> false
  | CLike { subject; pattern; escape = None; negated = _ } ->
    droppable subject && droppable pattern
  | CLike _ -> false
  | CIn_list { subject; candidates; _ } ->
    droppable subject && List.for_all droppable candidates
  | CIs_null { subject; _ } -> droppable subject
  | CBetween { subject; low; high; _ } ->
    droppable subject && droppable low && droppable high
  | CCase { branches; else_ } ->
    List.for_all (fun (c, r) -> droppable c && droppable r) branches
    && (match else_ with Some e -> droppable e | None -> true)
  | CIn_plan _ | CExists_plan _ | CScalar_plan _ -> false

let rec conjuncts = function
  | CBinop (Sql_ast.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let rec conjoin = function
  | [] -> CLit (Value.Bool true)
  | [ e ] -> e
  | e :: rest -> CBinop (Sql_ast.And, e, conjoin rest)

(* ------------------------------------------------------------------ *)
(* Generic traversal                                                   *)
(* ------------------------------------------------------------------ *)

type sub_kind = Sub_in | Sub_exists | Sub_scalar

(* Rewrite the subplan bodies embedded in an expression. *)
let rec map_subplans (fplan : sub_kind -> Plan.t -> Plan.t) (e : cexpr) : cexpr =
  let self = map_subplans fplan in
  match e with
  | CLit _ | CCol _ | CParam _ -> e
  | CBinop (op, a, b) -> CBinop (op, self a, self b)
  | CUnop (op, a) -> CUnop (op, self a)
  | CFn (name, args) -> CFn (name, List.map self args)
  | CLike { subject; pattern; escape; negated } ->
    CLike
      { subject = self subject; pattern = self pattern;
        escape = Option.map self escape; negated }
  | CIn_list { subject; candidates; negated } ->
    CIn_list { subject = self subject; candidates = List.map self candidates; negated }
  | CIs_null { subject; negated } -> CIs_null { subject = self subject; negated }
  | CBetween { subject; low; high; negated } ->
    CBetween { subject = self subject; low = self low; high = self high; negated }
  | CCase { branches; else_ } ->
    CCase
      { branches = List.map (fun (c, r) -> (self c, self r)) branches;
        else_ = Option.map self else_ }
  | CIn_plan { subject; plan; negated } ->
    CIn_plan { subject = self subject; plan = fplan Sub_in plan; negated }
  | CExists_plan { plan; negated } ->
    CExists_plan { plan = fplan Sub_exists plan; negated }
  | CScalar_plan plan -> CScalar_plan (fplan Sub_scalar plan)

(* Bottom-up rebuild: children and embedded subplans are rewritten
   first, then [fnode] sees the rebuilt node. [sub_root] additionally
   transforms each embedded subplan's root (used by sort-elim). Every
   node is reallocated, preserving the one-physical-occurrence invariant
   the profiler relies on. *)
let rec transform ?(sub_root = fun _ p -> p) (fnode : Plan.t -> Plan.t) (p : Plan.t) :
    Plan.t =
  let self p = transform ~sub_root fnode p in
  let fe e = map_subplans (fun kind sp -> sub_root kind (self sp)) e in
  let fo = Option.map fe in
  let p' =
    match p with
    | Single_row -> Single_row
    | Seq_scan { table; filter; part } -> Seq_scan { table; filter = fo filter; part }
    | Index_lookup { table; index; key; filter } ->
      Index_lookup { table; index; key = Array.map fe key; filter = fo filter }
    | Index_range { table; index; lo; hi; filter } ->
      let bound = Option.map (fun (k, incl) -> (Array.map fe k, incl)) in
      Index_range { table; index; lo = bound lo; hi = bound hi; filter = fo filter }
    | Filter (f, input) -> Filter (fe f, self input)
    | Project (es, input) -> Project (Array.map fe es, self input)
    | Nested_loop_join { left; right; cond; left_outer; right_arity } ->
      Nested_loop_join
        { left = self left; right = self right; cond = fo cond; left_outer;
          right_arity }
    | Hash_join { left; right; left_keys; right_keys; cond; left_outer; right_arity } ->
      Hash_join
        { left = self left; right = self right;
          left_keys = Array.map fe left_keys;
          right_keys = Array.map fe right_keys; cond = fo cond; left_outer;
          right_arity }
    | Sort (keys, input) ->
      Sort (Array.map (fun (e, d) -> (fe e, d)) keys, self input)
    | Aggregate { group_by; aggs; input } ->
      Aggregate
        { group_by = Array.map fe group_by;
          aggs = Array.map (fun a -> { a with agg_arg = Option.map fe a.agg_arg }) aggs;
          input = self input }
    | Distinct input -> Distinct (self input)
    | Union_all inputs -> Union_all (List.map self inputs)
    | Limit { limit; offset; input } -> Limit { limit; offset; input = self input }
    | Exchange { inputs; workers } -> Exchange { inputs = List.map self inputs; workers }
    | Structural_join
        { left; right; interval_on_left; left_doc; right_doc; lo; hi; pos;
          lo_incl; hi_incl; cond; right_arity } ->
      Structural_join
        { left = self left; right = self right; interval_on_left;
          left_doc = fe left_doc; right_doc = fe right_doc; lo = fe lo;
          hi = fe hi; pos = fe pos; lo_incl; hi_incl; cond = fo cond;
          right_arity }
  in
  fnode p'

(* Output width of a plan, from the catalog. [None] when a scanned table
   is unknown (rules that need widths then leave the plan alone). *)
let rec arity_of cat (p : Plan.t) : int option =
  match p with
  | Single_row -> Some 0
  | Seq_scan { table; _ } | Index_lookup { table; _ } | Index_range { table; _ } -> (
      match Catalog.find_table cat table with
      | Some t -> Some (Schema.arity (Table.schema t))
      | None -> None)
  | Filter (_, i) | Sort (_, i) | Distinct i | Limit { input = i; _ } -> arity_of cat i
  | Project (es, _) -> Some (Array.length es)
  | Nested_loop_join { left; right_arity; _ }
  | Hash_join { left; right_arity; _ }
  | Structural_join { left; right_arity; _ } ->
    Option.map (fun la -> la + right_arity) (arity_of cat left)
  | Aggregate { group_by; aggs; _ } ->
    Some (Array.length group_by + Array.length aggs)
  | Union_all [] | Exchange { inputs = []; _ } -> None
  | Union_all (i :: _) | Exchange { inputs = i :: _; _ } -> arity_of cat i

(* ------------------------------------------------------------------ *)
(* Rule: sort-elim                                                     *)
(* ------------------------------------------------------------------ *)

(* Peel Sorts visible through row-wise operators (Project/Filter) and
   Distinct, in a context where the consumer ignores row order. Stops at
   Limit: a Sort under LIMIT/OFFSET selects *which* rows survive. *)
let rec peel_sorts fires p =
  match p with
  | Sort (_, i) -> incr fires; peel_sorts fires i
  | Project (es, i) -> Project (es, peel_sorts fires i)
  | Filter (f, i) -> Filter (f, peel_sorts fires i)
  | Distinct i -> Distinct (peel_sorts fires i)
  | p -> p

(* Order-insensitive aggregate functions. SUM/AVG stay ordered: float
   accumulation is not associative, and the differential wall demands
   byte-identical output. *)
let order_insensitive_agg (a : agg_spec) =
  match a.agg_fn with
  | Sql_ast.Count | Sql_ast.Min | Sql_ast.Max -> true
  | Sql_ast.Sum | Sql_ast.Avg -> false

let sort_elim _cat plan =
  let fires = ref 0 in
  (* IN membership and EXISTS are set-queries; a scalar subplan yields at
     most one row (more is a runtime error either way). A *grouped*
     aggregate is order-sensitive — its output lists groups in
     first-seen order — but a global one emits a single row. *)
  let sub_root _kind p = peel_sorts fires p in
  let fnode = function
    | Aggregate { group_by = [||]; aggs; input }
      when Array.for_all order_insensitive_agg aggs ->
      Aggregate { group_by = [||]; aggs; input = peel_sorts fires input }
    | p -> p
  in
  let plan = transform ~sub_root fnode plan in
  (plan, !fires)

(* ------------------------------------------------------------------ *)
(* Rule: filter-pushdown                                               *)
(* ------------------------------------------------------------------ *)

(* Split the conjuncts of a Filter sitting on an inner join and push the
   single-side ones below it. Conjuncts with subplans never move: the
   rows a subplan's CParams are numbered against would change. For a
   left-outer join only the left side accepts pushes (a right-side
   predicate above the join also filters NULL-extended rows). *)
let filter_pushdown cat plan =
  let fires = ref 0 in
  let push_sides ~left ~right ~left_outer ~rebuild f =
    match arity_of cat left with
    | None -> None
    | Some la ->
      let cs = conjuncts f in
      let lefts, rights, keep =
        List.fold_left
          (fun (l, r, k) c ->
            if has_subplan c then (l, r, c :: k)
            else
              let cols = cols_of c in
              if List.for_all (fun i -> i < la) cols then (c :: l, r, k)
              else if (not left_outer) && List.for_all (fun i -> i >= la) cols
              then (l, c :: r, k)
              else (l, r, c :: k))
          ([], [], []) cs
      in
      let lefts = List.rev lefts and rights = List.rev rights
      and keep = List.rev keep in
      if lefts = [] && rights = [] then None
      else begin
        fires := !fires + List.length lefts + List.length rights;
        let left =
          if lefts = [] then left else Filter (conjoin lefts, left)
        in
        let right =
          if rights = [] then right
          else
            Filter (conjoin (List.map (map_cols (fun i -> i - la)) rights), right)
        in
        let j = rebuild left right in
        Some (if keep = [] then j else Filter (conjoin keep, j))
      end
  in
  let fnode = function
    | Filter (f, Nested_loop_join ({ left_outer = false; _ } as j)) as p ->
      (match
         push_sides ~left:j.left ~right:j.right ~left_outer:false
           ~rebuild:(fun left right -> Nested_loop_join { j with left; right })
           f
       with
      | Some p' -> p'
      | None -> p)
    | Filter (f, Nested_loop_join ({ left_outer = true; _ } as j)) as p ->
      (match
         push_sides ~left:j.left ~right:j.right ~left_outer:true
           ~rebuild:(fun left right -> Nested_loop_join { j with left; right })
           f
       with
      | Some p' -> p'
      | None -> p)
    | Filter (f, Hash_join ({ left_outer = false; _ } as j)) as p ->
      (match
         push_sides ~left:j.left ~right:j.right ~left_outer:false
           ~rebuild:(fun left right -> Hash_join { j with left; right })
           f
       with
      | Some p' -> p'
      | None -> p)
    | Filter (f, Hash_join ({ left_outer = true; _ } as j)) as p ->
      (match
         push_sides ~left:j.left ~right:j.right ~left_outer:true
           ~rebuild:(fun left right -> Hash_join { j with left; right })
           f
       with
      | Some p' -> p'
      | None -> p)
    | Filter (f, Structural_join j) as p ->
      (match
         push_sides ~left:j.left ~right:j.right ~left_outer:false
           ~rebuild:(fun left right -> Structural_join { j with left; right })
           f
       with
      | Some p' -> p'
      | None -> p)
    | p -> p
  in
  (* Two bottom-up passes: the first can stack a pushed Filter directly
     onto a lower join that the same pass has already visited. *)
  let plan = transform fnode (transform fnode plan) in
  (plan, !fires)

(* ------------------------------------------------------------------ *)
(* Rule: filter-merge                                                  *)
(* ------------------------------------------------------------------ *)

(* AND the pushed predicate after the scan's own filter; 3VL truthiness
   distributes over AND, so filtering once on the conjunction equals
   filtering twice. *)
let merge_pred f = function
  | None -> Some f
  | Some g -> Some (CBinop (Sql_ast.And, g, f))

let filter_merge _cat plan =
  let fires = ref 0 in
  (* A scan filter is evaluated against the full base-table row — the
     same shape the Filter above sees — so even subplan-bearing
     predicates merge safely. *)
  let into_partition f p =
    match p with
    | Seq_scan s -> Seq_scan { s with filter = merge_pred (copy_cexpr f) s.filter }
    | Index_lookup s ->
      Index_lookup { s with filter = merge_pred (copy_cexpr f) s.filter }
    | Index_range s ->
      Index_range { s with filter = merge_pred (copy_cexpr f) s.filter }
    | p -> Filter (copy_cexpr f, p)
  in
  let fnode = function
    | Filter (f, Seq_scan s) ->
      incr fires;
      Seq_scan { s with filter = merge_pred f s.filter }
    | Filter (f, Index_lookup s) ->
      incr fires;
      Index_lookup { s with filter = merge_pred f s.filter }
    | Filter (f, Index_range s) ->
      incr fires;
      Index_range { s with filter = merge_pred f s.filter }
    | Filter (f, Filter (g, i)) ->
      incr fires;
      Filter (CBinop (Sql_ast.And, g, f), i)
    | Filter (f, Exchange { inputs; workers }) ->
      incr fires;
      Exchange { inputs = List.map (into_partition f) inputs; workers }
    | p -> p
  in
  let plan = transform fnode plan in
  (plan, !fires)

(* ------------------------------------------------------------------ *)
(* Rule: prune (projection pushdown)                                   *)
(* ------------------------------------------------------------------ *)

module IntSet = Set.Make (Int)

type need = All | Cols of IntSet.t

let need_union a b =
  match (a, b) with
  | All, _ | _, All -> All
  | Cols x, Cols y -> Cols (IntSet.union x y)

let need_of_exprs es =
  Array.fold_left
    (fun n e ->
      if has_subplan e then All
      else need_union n (Cols (IntSet.of_list (cols_of e))))
    (Cols IntSet.empty) es

(* [prune] walks top-down carrying the set of output columns the
   ancestors consume; whenever a scan's output is wider than that set it
   inserts a narrowing Project over the scan (inside Exchange
   partitions, so the parallel-build pattern matches in the executor
   still fire) and renumbers every expression above. [go p need] returns
   [(p', kept)] where [kept] lists the original output slots [p'] still
   produces, ascending; [kept ⊇ need], and [need = All] forces [kept] to
   be the full identity. *)
let prune cat plan =
  let fires = ref 0 in
  let identity n = List.init n (fun i -> i) in
  let remap_with kept e =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun idx c -> Hashtbl.replace tbl c idx) kept;
    map_cols
      (fun c ->
        match Hashtbl.find_opt tbl c with
        | Some idx -> idx
        | None -> failwith "rewrite: prune lost a referenced column")
      e
  in
  let is_identity kept n = List.length kept = n && List.for_all2 ( = ) kept (identity n) in
  let rec go (p : Plan.t) (need : need) : Plan.t * int list =
    match p with
    | Single_row -> (Single_row, [])
    | Seq_scan { table; _ } | Index_lookup { table; _ } | Index_range { table; _ }
      -> (
        match Catalog.find_table cat table with
        | None -> (p, [])  (* unknown width: leave untouched; kept unused *)
        | Some t ->
          let n = Schema.arity (Table.schema t) in
          (match need with
          | All -> (p, identity n)
          | Cols cs ->
            let kept = IntSet.elements cs in
            if List.length kept = n then (p, identity n)
            else begin
              incr fires;
              ( Project (Array.of_list (List.map (fun c -> CCol c) kept), p),
                kept )
            end))
    | Filter (f, i) ->
      let child_need =
        if has_subplan f then All
        else need_union need (Cols (IntSet.of_list (cols_of f)))
      in
      let i', kept = go i child_need in
      let f' = if child_need = All then f else remap_with kept f in
      (Filter (f', i'), kept)
    | Project (es, i) ->
      let n = Array.length es in
      let wanted =
        match need with
        | All -> identity n
        | Cols cs ->
          (* keep requested slots plus any unused expression whose
             evaluation could raise *)
          List.filter
            (fun j -> IntSet.mem j cs || not (droppable es.(j)))
            (identity n)
      in
      let kept_exprs = List.map (fun j -> es.(j)) wanted in
      let child_need = need_of_exprs (Array.of_list kept_exprs) in
      let i', kept_i = go i child_need in
      let es' =
        Array.of_list
          (List.map
             (fun e -> if child_need = All then e else remap_with kept_i e)
             kept_exprs)
      in
      if List.length wanted < n then incr fires;
      (Project (es', i'), wanted)
    | Nested_loop_join { left; right; cond; left_outer; right_arity } -> (
      match arity_of cat left with
      | None ->
        let left, _ = go left All and right, _ = go right All in
        ( Nested_loop_join { left; right; cond; left_outer; right_arity },
          match need with All -> [] | Cols cs -> IntSet.elements cs )
      | Some la ->
        let split_need extra_exprs =
          let base = need_union need (need_of_exprs extra_exprs) in
          match base with
          | All -> (All, All)
          | Cols cs ->
            ( Cols (IntSet.filter (fun c -> c < la) cs),
              Cols
                (IntSet.map (fun c -> c - la) (IntSet.filter (fun c -> c >= la) cs))
            )
        in
        let ln, rn = split_need (match cond with Some c -> [| c |] | None -> [||]) in
        let left', kept_l = go left ln in
        let right', kept_r = go right rn in
        let kept = kept_l @ List.map (fun c -> c + la) kept_r in
        let remap_concat e =
          if is_identity kept (la + right_arity) then e else remap_with kept e
        in
        let cond' = Option.map remap_concat cond in
        ( Nested_loop_join
            { left = left'; right = right'; cond = cond'; left_outer;
              right_arity = List.length kept_r },
          kept ))
    | Hash_join { left; right; left_keys; right_keys; cond; left_outer; right_arity }
      -> (
      match arity_of cat left with
      | None ->
        let left, _ = go left All and right, _ = go right All in
        ( Hash_join
            { left; right; left_keys; right_keys; cond; left_outer; right_arity },
          match need with All -> [] | Cols cs -> IntSet.elements cs )
      | Some la ->
        let base =
          need_union need
            (match cond with Some c -> need_of_exprs [| c |] | None -> Cols IntSet.empty)
        in
        let ln_extra = need_of_exprs left_keys in
        let rn_extra = need_of_exprs right_keys in
        let ln, rn =
          match base with
          | All -> (All, All)
          | Cols cs ->
            ( Cols (IntSet.filter (fun c -> c < la) cs),
              Cols
                (IntSet.map (fun c -> c - la) (IntSet.filter (fun c -> c >= la) cs))
            )
        in
        let left', kept_l = go left (need_union ln ln_extra) in
        let right', kept_r = go right (need_union rn rn_extra) in
        let kept = kept_l @ List.map (fun c -> c + la) kept_r in
        let remap_side kept_side full e =
          if is_identity kept_side full then e else remap_with kept_side e
        in
        let left_keys' = Array.map (remap_side kept_l la) left_keys in
        let right_keys' = Array.map (remap_side kept_r right_arity) right_keys in
        let cond' =
          Option.map
            (fun c ->
              if is_identity kept (la + right_arity) then c else remap_with kept c)
            cond
        in
        ( Hash_join
            { left = left'; right = right'; left_keys = left_keys';
              right_keys = right_keys'; cond = cond'; left_outer;
              right_arity = List.length kept_r },
          kept ))
    | Structural_join
        ({ left; right; interval_on_left; left_doc; right_doc; lo; hi; pos;
           cond; right_arity; _ } as j) -> (
      match arity_of cat left with
      | None ->
        let left, _ = go left All and right, _ = go right All in
        ( Structural_join { j with left; right },
          match need with All -> [] | Cols cs -> IntSet.elements cs )
      | Some la ->
        let left_exprs =
          Array.of_list
            (left_doc :: (if interval_on_left then [ lo; hi ] else [ pos ]))
        in
        let right_exprs =
          Array.of_list
            (right_doc :: (if interval_on_left then [ pos ] else [ lo; hi ]))
        in
        let base =
          need_union need
            (match cond with Some c -> need_of_exprs [| c |] | None -> Cols IntSet.empty)
        in
        let ln, rn =
          match base with
          | All -> (All, All)
          | Cols cs ->
            ( Cols (IntSet.filter (fun c -> c < la) cs),
              Cols
                (IntSet.map (fun c -> c - la) (IntSet.filter (fun c -> c >= la) cs))
            )
        in
        let left', kept_l = go left (need_union ln (need_of_exprs left_exprs)) in
        let right', kept_r = go right (need_union rn (need_of_exprs right_exprs)) in
        let kept = kept_l @ List.map (fun c -> c + la) kept_r in
        let remap_side kept_side full e =
          if is_identity kept_side full then e else remap_with kept_side e
        in
        let rl e = remap_side kept_l la e in
        let rr e = remap_side kept_r right_arity e in
        let cond' =
          Option.map
            (fun c ->
              if is_identity kept (la + right_arity) then c else remap_with kept c)
            cond
        in
        ( Structural_join
            { j with left = left'; right = right'; left_doc = rl left_doc;
              right_doc = rr right_doc;
              lo = (if interval_on_left then rl lo else rr lo);
              hi = (if interval_on_left then rl hi else rr hi);
              pos = (if interval_on_left then rr pos else rl pos);
              cond = cond'; right_arity = List.length kept_r },
          kept ))
    | Sort (keys, i) ->
      let key_exprs = Array.map fst keys in
      let child_need = need_union need (need_of_exprs key_exprs) in
      let i', kept = go i child_need in
      let keys' =
        if child_need = All then keys
        else Array.map (fun (e, d) -> (remap_with kept e, d)) keys
      in
      (Sort (keys', i'), kept)
    | Aggregate { group_by; aggs; input } ->
      let arg_exprs =
        Array.of_list
          (List.filter_map (fun a -> a.agg_arg) (Array.to_list aggs))
      in
      let child_need = need_union (need_of_exprs group_by) (need_of_exprs arg_exprs) in
      let input', kept_i = go input child_need in
      let r e = if child_need = All then e else remap_with kept_i e in
      let group_by' = Array.map r group_by in
      let aggs' = Array.map (fun a -> { a with agg_arg = Option.map r a.agg_arg }) aggs in
      ( Aggregate { group_by = group_by'; aggs = aggs'; input = input' },
        identity (Array.length group_by + Array.length aggs) )
    | Distinct i ->
      (* row-level dedup consumes every column *)
      let i', kept = go i All in
      (Distinct i', kept)
    | Union_all inputs -> (
      match (need, arity_of cat p) with
      | All, _ | _, None ->
        ( Union_all (List.map (fun i -> fst (go i All)) inputs),
          match arity_of cat p with Some n -> identity n | None -> [] )
      | Cols cs, Some n ->
        let target = IntSet.elements cs in
        if List.length target = n then
          (Union_all (List.map (fun i -> fst (go i All)) inputs), identity n)
        else
          (* align every branch to exactly [target] *)
          let inputs' =
            List.map
              (fun i ->
                let i', kept = go i (Cols cs) in
                if kept = target then i'
                else begin
                  incr fires;
                  Project
                    ( Array.of_list
                        (List.map (fun c -> remap_with kept (CCol c)) target),
                      i' )
                end)
              inputs
          in
          (Union_all inputs', target))
    | Limit { limit; offset; input } ->
      let input', kept = go input need in
      (Limit { limit; offset; input = input' }, kept)
    | Exchange { inputs; workers } -> (
      match need with
      | All -> (Exchange { inputs = List.map (fun i -> fst (go i All)) inputs; workers },
                (match arity_of cat p with Some n -> identity n | None -> []))
      | Cols cs ->
        let target = IntSet.elements cs in
        let inputs' =
          List.map
            (fun i ->
              let i', kept = go i (Cols cs) in
              if kept = target then i'
              else begin
                incr fires;
                Project
                  ( Array.of_list
                      (List.map (fun c -> remap_with kept (CCol c)) target),
                    i' )
              end)
            inputs
        in
        (Exchange { inputs = inputs'; workers }, target))
  in
  (* Prune inside embedded subplans too. IN and scalar subplans are read
     through column 0 only; EXISTS only checks cardinality. Since [go]
     returns an ascending [kept] superset of the need, slot 0 keeps
     position 0, so the evaluation sites need no adjustment. *)
  let sub_root kind sp =
    let need =
      match kind with
      | Sub_in | Sub_scalar -> Cols (IntSet.singleton 0)
      | Sub_exists -> Cols IntSet.empty
    in
    fst (go sp need)
  in
  let plan = transform ~sub_root (fun p -> p) plan in
  let plan, _ = go plan All in
  (plan, !fires)

(* ------------------------------------------------------------------ *)
(* Rule: proj-fuse                                                     *)
(* ------------------------------------------------------------------ *)

let atomic = function CLit _ | CCol _ | CParam _ -> true | _ -> false

let proj_fuse cat plan =
  let fires = ref 0 in
  let fnode = function
    | Project (es1, Project (es2, i))
      when Array.for_all (fun e -> not (has_subplan e)) es1 ->
      (* composition is safe only if no inner expression that could be
         duplicated (referenced twice) is expensive, and no outer
         expression carries a subplan (its params are numbered against
         the inner projection's output row) *)
      let n2 = Array.length es2 in
      let occs = List.concat_map col_occurrences (Array.to_list es1) in
      let in_range = List.for_all (fun c -> c >= 0 && c < n2) occs in
      let ok =
        in_range
        &&
        (* don't duplicate a non-atomic inner expression *)
        let uses = Array.make n2 0 in
        List.iter (fun c -> uses.(c) <- uses.(c) + 1) occs;
        let safe = ref true in
        Array.iteri
          (fun j n -> if n > 1 && not (atomic es2.(j)) then safe := false)
          uses;
        !safe
      in
      if not ok then Project (es1, Project (es2, i))
      else begin
        incr fires;
        let subst e =
          let rec s = function
            | CCol j -> copy_cexpr es2.(j)
            | CLit v -> CLit v
            | CParam k -> CParam k
            | CBinop (op, a, b) -> CBinop (op, s a, s b)
            | CUnop (op, a) -> CUnop (op, s a)
            | CFn (name, args) -> CFn (name, List.map s args)
            | CLike { subject; pattern; escape; negated } ->
              CLike
                { subject = s subject; pattern = s pattern;
                  escape = Option.map s escape; negated }
            | CIn_list { subject; candidates; negated } ->
              CIn_list { subject = s subject; candidates = List.map s candidates; negated }
            | CIs_null { subject; negated } -> CIs_null { subject = s subject; negated }
            | CBetween { subject; low; high; negated } ->
              CBetween { subject = s subject; low = s low; high = s high; negated }
            | CCase { branches; else_ } ->
              CCase
                { branches = List.map (fun (c, r) -> (s c, s r)) branches;
                  else_ = Option.map s else_ }
            | (CIn_plan _ | CExists_plan _ | CScalar_plan _) as e -> copy_cexpr e
          in
          s e
        in
        Project (Array.map subst es1, i)
      end
    | Project (es, i) as p -> (
      (* identity projection over a same-width input disappears *)
      let ident =
        Array.for_all Fun.id (Array.mapi (fun j e -> e = CCol j) es)
      in
      if not ident then p
      else
        match arity_of cat i with
        | Some n when n = Array.length es ->
          incr fires;
          i
        | _ -> p)
    | p -> p
  in
  let plan = transform fnode plan in
  (plan, !fires)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let rules : (string * (Catalog.t -> Plan.t -> Plan.t * int)) list =
  [ ("sort-elim", sort_elim);
    ("filter-pushdown", filter_pushdown);
    ("filter-merge", filter_merge);
    ("prune", prune);
    ("proj-fuse", proj_fuse) ]

let apply_rule cat name plan =
  match List.assoc_opt name rules with
  | Some rule -> rule cat plan
  | None -> failwith (Printf.sprintf "unknown rewrite rule %S" name)

let apply cat plan =
  List.fold_left
    (fun (plan, report) (name, rule) ->
      let plan, fires = rule cat plan in
      (plan, if fires > 0 then report @ [ (name, fires) ] else report))
    (plan, []) rules

(* ------------------------------------------------------------------ *)
(* EXPLAIN rendering                                                   *)
(* ------------------------------------------------------------------ *)

let node_tag = function
  | Seq_scan { filter = Some _; _ }
  | Index_lookup { filter = Some _; _ }
  | Index_range { filter = Some _; _ } -> " [fused=scan+filter]"
  | _ -> ""

let footer report =
  let rules_s =
    match report with
    | [] -> "none"
    | r -> String.concat " " (List.map (fun (n, c) -> Printf.sprintf "%s=%d" n c) r)
  in
  Printf.sprintf "\nVectorized: batch=%d rewrites=[%s]\n" (Batch.max_rows ()) rules_s
