type t = {
  schema : Schema.t;
  rows : Value.t array option Vector.t;
  mutable live : int;
  mutable indexes : Index.t list;
}

let pkey_index (schema : Schema.t) =
  match schema.primary_key with
  | [] -> None
  | keys ->
    let positions = List.map (Schema.column_index schema) keys in
    Some
      (Index.create
         ~name:(schema.table_name ^ "_pkey")
         ~table:schema.table_name ~columns:keys ~column_positions:positions
         ~unique:true Index.Btree)

let create schema =
  let indexes = match pkey_index schema with Some i -> [ i ] | None -> [] in
  { schema; rows = Vector.create (); live = 0; indexes }

let schema t = t.schema
let row_count t = t.live

let insert t row =
  match Schema.check_row t.schema row with
  | Error _ as e -> e
  | Ok () ->
    let rowid = Vector.length t.rows in
    (* Try all indexes; roll back the ones already updated on failure. *)
    let rec add_all done_ = function
      | [] -> Ok ()
      | idx :: rest ->
        (match Index.insert idx row rowid with
         | Ok () -> add_all (idx :: done_) rest
         | Error m ->
           List.iter (fun i -> Index.remove i row rowid) done_;
           Error m)
    in
    (match add_all [] t.indexes with
     | Error _ as e -> e
     | Ok () ->
       ignore (Vector.push t.rows (Some row));
       t.live <- t.live + 1;
       Ok rowid)

let get t rowid =
  if rowid < 0 || rowid >= Vector.length t.rows then None
  else Vector.get t.rows rowid

let delete t rowid =
  match get t rowid with
  | None -> false
  | Some row ->
    List.iter (fun idx -> Index.remove idx row rowid) t.indexes;
    Vector.set t.rows rowid None;
    t.live <- t.live - 1;
    true

let undelete t rowid row =
  if rowid < 0 || rowid >= Vector.length t.rows then false
  else
    match Vector.get t.rows rowid with
    | Some _ -> false
    | None ->
      List.iter
        (fun idx ->
          match Index.insert idx row rowid with
          | Ok () -> ()
          | Error _ -> assert false (* the pre-delete state was consistent *))
        t.indexes;
      Vector.set t.rows rowid (Some row);
      t.live <- t.live + 1;
      true

let update t rowid new_row =
  match get t rowid with
  | None -> Error (Printf.sprintf "row %d does not exist" rowid)
  | Some old_row ->
    (match Schema.check_row t.schema new_row with
     | Error _ as e -> e
     | Ok () ->
       (* Remove old entries, insert new; restore on unique failure. *)
       List.iter (fun idx -> Index.remove idx old_row rowid) t.indexes;
       let rec add_all done_ = function
         | [] -> Ok ()
         | idx :: rest ->
           (match Index.insert idx new_row rowid with
            | Ok () -> add_all (idx :: done_) rest
            | Error m ->
              List.iter (fun i -> Index.remove i new_row rowid) done_;
              List.iter
                (fun i ->
                  match Index.insert i old_row rowid with
                  | Ok () -> ()
                  | Error _ -> assert false (* old state was consistent *))
                t.indexes;
              Error m)
       in
       (match add_all [] t.indexes with
        | Error _ as e -> e
        | Ok () ->
          Vector.set t.rows rowid (Some new_row);
          Ok ()))

let scan_range t ~lo ~hi =
  let rec go i () =
    if i >= hi then Seq.Nil
    else
      match Vector.get t.rows i with
      | Some row -> Seq.Cons ((i, row), go (i + 1))
      | None -> go (i + 1) ()
  in
  go (max 0 lo)

let scan t = fun () -> scan_range t ~lo:0 ~hi:(Vector.length t.rows) ()

let scan_part t ~index ~parts =
  fun () ->
    (* bounds resolved at pull time: cached plans keep covering the whole
       table as it grows *)
    let n = Vector.length t.rows in
    let parts = max 1 parts in
    let i = max 0 (min index (parts - 1)) in
    scan_range t ~lo:(i * n / parts) ~hi:((i + 1) * n / parts) ()

let add_index t idx =
  let exception Violation of string in
  match
    Seq.iter
      (fun (rowid, row) ->
        match Index.insert idx row rowid with
        | Ok () -> ()
        | Error m -> raise (Violation m))
      (scan t)
  with
  | () ->
    t.indexes <- t.indexes @ [ idx ];
    Ok ()
  | exception Violation m -> Error m

let drop_index t name =
  let before = List.length t.indexes in
  t.indexes <- List.filter (fun i -> Index.name i <> name) t.indexes;
  List.length t.indexes < before

let indexes t = t.indexes

let find_index t name = List.find_opt (fun i -> Index.name i = name) t.indexes

let truncate t =
  Vector.clear t.rows;
  t.live <- 0;
  let defs =
    List.map
      (fun i ->
        Index.create ~name:(Index.name i) ~table:(Index.table i)
          ~columns:(Index.columns i)
          ~column_positions:(Index.column_positions i)
          ~unique:(Index.is_unique i) (Index.kind i))
      t.indexes
  in
  t.indexes <- defs
