(* Heap tables behind one of two row stores: the in-memory vector
   (tombstones as [None] slots) or a paged heap file on disk. Rowid
   discipline is identical in both — sequential assignment, never
   reused — so the two backends are row-for-row interchangeable. *)

type store =
  | Mem of Value.t array option Vector.t
  | Disk of Heapfile.t

(* MVCC: a version is the pre-image a row had before the writer [v_txid]
   first modified it. While the writer is in flight [v_end] is
   [pending]; commit seals it with the commit sequence number, meaning
   "this image was current for every snapshot taken before [v_end]".
   Chains are oldest-first; table-level exclusive locks mean at most one
   pending version per row. Appends are versioned wholesale by the
   table length at the writer's first append ([len_version]): rows at
   or past a snapshot's visible length do not exist for it. *)
let pending = max_int

type version = {
  mutable v_end : int;
  v_txid : int;
  v_image : Value.t array option;  (* None: the slot was a tombstone *)
}

type len_version = { mutable l_end : int; l_txid : int; l_len : int }

type snap = { at : int; self : int }

type t = {
  schema : Schema.t;
  store : store;
  mutable live : int; (* Mem only; the heap file tracks its own count *)
  mutable indexes : Index.t list;
  (* Disk only: decoded rows memoized by rowid, so repeated point
     fetches (index-driven plans re-reading a hot working set) skip the
     page pin + Rowcodec decode. Capacity is tied to the buffer pool's
     frame budget, keeping total memory proportional to the pool; any
     mutation of a rowid evicts it. Cleared wholesale when full —
     amortized O(1), no LRU bookkeeping on the hit path. *)
  row_cache : (int, Value.t array) Hashtbl.t;
  row_cache_cap : int;
  (* MVCC state. [vcount] (versions + len versions, all kinds) doubles
     as the snapshot readers' fast-path gate: 0 means no writer is in
     flight and no unreclaimed history exists, so the raw store IS the
     snapshot. Guarded by [vmutex]; readers only take it on the slow
     path or once per scanned chunk. *)
  vmutex : Mutex.t;
  mutable vcount : int;
  versions : (int, version list) Hashtbl.t;  (* rowid -> oldest-first *)
  mutable len_versions : len_version list;   (* oldest-first *)
  (* Disk only: the store latch. MVCC snapshot readers run concurrently
     with a writer holding the table's exclusive lock, and the paged
     backend mutates heap pages, index pages and [row_cache] in place —
     a reader decoding the same bytes mid-write would see a torn row
     (the in-memory store is immune: rows are immutable arrays swapped
     by pointer). Every physical access from a path that can race takes
     this latch; lock order is [vmutex] then [smutex], never the
     reverse. *)
  smutex : Mutex.t;
}

let pkey_index ?storage (schema : Schema.t) =
  match schema.primary_key with
  | [] -> None
  | keys ->
    let positions = List.map (Schema.column_index schema) keys in
    Some
      (Index.create ?storage
         ~name:(schema.table_name ^ "_pkey")
         ~table:schema.table_name ~columns:keys ~column_positions:positions
         ~unique:true Index.Btree)

let create ?storage schema =
  let indexes = match pkey_index ?storage schema with Some i -> [ i ] | None -> [] in
  let store, cache_cap =
    match storage with
    | None -> (Mem (Vector.create ()), 0)
    | Some st ->
      ( Disk
          (Heapfile.create (Storage.pool st)
             ~base:(Storage.heap_base st schema.Schema.table_name)),
        8 * Bufpool.frames (Storage.pool st) )
  in
  { schema; store; live = 0; indexes;
    row_cache = Hashtbl.create 64; row_cache_cap = cache_cap;
    vmutex = Mutex.create (); vcount = 0;
    versions = Hashtbl.create 16; len_versions = [];
    smutex = Mutex.create () }

let schema t = t.schema

let row_count t =
  match t.store with Mem _ -> t.live | Disk h -> Heapfile.live h

let next_rowid t =
  match t.store with Mem v -> Vector.length v | Disk h -> Heapfile.next_rowid h

(* The store latch; a no-op for the in-memory backend (see [smutex]). *)
let with_s t f =
  match t.store with
  | Mem _ -> f ()
  | Disk _ ->
    Mutex.lock t.smutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.smutex) f

(* Point fetch without the latch: for internal use by callers that
   already hold [smutex]. *)
let get_unlatched t rowid =
  match t.store with
  | Mem v -> if rowid < 0 || rowid >= Vector.length v then None else Vector.get v rowid
  | Disk h ->
    (match Hashtbl.find_opt t.row_cache rowid with
     | Some row -> Some row
     | None ->
       (match Heapfile.get h rowid with
        | Some row as r ->
          if Hashtbl.length t.row_cache >= t.row_cache_cap then
            Hashtbl.reset t.row_cache;
          Hashtbl.add t.row_cache rowid row;
          r
        | None -> None))

let get t rowid = with_s t (fun () -> get_unlatched t rowid)

let insert t row =
  match Schema.check_row t.schema row with
  | Error _ as e -> e
  | Ok () ->
    with_s t @@ fun () ->
    let rowid = next_rowid t in
    (* Try all indexes; roll back the ones already updated on failure. *)
    let rec add_all done_ = function
      | [] -> Ok ()
      | idx :: rest ->
        (match Index.insert idx row rowid with
         | Ok () -> add_all (idx :: done_) rest
         | Error m ->
           List.iter (fun i -> Index.remove i row rowid) done_;
           Error m)
    in
    (match add_all [] t.indexes with
     | Error _ as e -> e
     | Ok () ->
       (match t.store with
        | Mem v ->
          ignore (Vector.push v (Some row));
          t.live <- t.live + 1
        | Disk h -> ignore (Heapfile.insert h row));
       Ok rowid)

(* Append without touching the indexes: the bulk-load path builds or
   patches them separately (bottom-up for empty paged trees). Schema
   validation still applies. *)
let append_bulk t row =
  match Schema.check_row t.schema row with
  | Error _ as e -> e
  | Ok () ->
    with_s t @@ fun () ->
    let rowid = next_rowid t in
    (match t.store with
     | Mem v ->
       ignore (Vector.push v (Some row));
       t.live <- t.live + 1
     | Disk h -> ignore (Heapfile.insert h row));
    Ok rowid

let delete t rowid =
  with_s t @@ fun () ->
  match get_unlatched t rowid with
  | None -> false
  | Some row ->
    List.iter (fun idx -> Index.remove idx row rowid) t.indexes;
    (match t.store with
     | Mem v ->
       Vector.set v rowid None;
       t.live <- t.live - 1
     | Disk h ->
       Hashtbl.remove t.row_cache rowid;
       ignore (Heapfile.delete h rowid));
    true

let undelete t rowid row =
  with_s t @@ fun () ->
  let restored =
    match t.store with
    | Mem v ->
      rowid >= 0 && rowid < Vector.length v
      && (match Vector.get v rowid with
          | Some _ -> false
          | None ->
            Vector.set v rowid (Some row);
            t.live <- t.live + 1;
            true)
    | Disk h -> Heapfile.undelete h rowid
  in
  if restored then
    List.iter
      (fun idx ->
        match Index.insert idx row rowid with
        | Ok () -> ()
        | Error _ -> assert false (* the pre-delete state was consistent *))
      t.indexes;
  restored

let update t rowid new_row =
  with_s t @@ fun () ->
  match get_unlatched t rowid with
  | None -> Error (Printf.sprintf "row %d does not exist" rowid)
  | Some old_row ->
    (match Schema.check_row t.schema new_row with
     | Error _ as e -> e
     | Ok () ->
       (* Remove old entries, insert new; restore on unique failure. *)
       List.iter (fun idx -> Index.remove idx old_row rowid) t.indexes;
       let rec add_all done_ = function
         | [] -> Ok ()
         | idx :: rest ->
           (match Index.insert idx new_row rowid with
            | Ok () -> add_all (idx :: done_) rest
            | Error m ->
              List.iter (fun i -> Index.remove i new_row rowid) done_;
              List.iter
                (fun i ->
                  match Index.insert i old_row rowid with
                  | Ok () -> ()
                  | Error _ -> assert false (* old state was consistent *))
                t.indexes;
              Error m)
       in
       (match add_all [] t.indexes with
        | Error _ as e -> e
        | Ok () ->
          (match t.store with
           | Mem v -> Vector.set v rowid (Some new_row)
           | Disk h ->
             Hashtbl.remove t.row_cache rowid;
             Heapfile.update h rowid new_row);
          Ok ()))

let scan_range t ~lo ~hi =
  match t.store with
  | Mem v ->
    let hi = min hi (Vector.length v) in
    let rec go i () =
      if i >= hi then Seq.Nil
      else
        match Vector.get v i with
        | Some row -> Seq.Cons ((i, row), go (i + 1))
        | None -> go (i + 1) ()
    in
    go (max 0 lo)
  | Disk h -> Heapfile.scan_range h ~lo ~hi

let scan t = fun () -> scan_range t ~lo:0 ~hi:(next_rowid t) ()

let scan_part t ~index ~parts =
  fun () ->
    (* bounds resolved at pull time: cached plans keep covering the whole
       table as it grows *)
    let n = next_rowid t in
    let parts = max 1 parts in
    let i = max 0 (min index (parts - 1)) in
    scan_range t ~lo:(i * n / parts) ~hi:((i + 1) * n / parts) ()

let add_index t idx =
  let exception Violation of string in
  match
    Seq.iter
      (fun (rowid, row) ->
        match Index.insert idx row rowid with
        | Ok () -> ()
        | Error m -> raise (Violation m))
      (scan t)
  with
  | () ->
    t.indexes <- t.indexes @ [ idx ];
    Ok ()
  | exception Violation m -> Error m

(* Attach an already-populated index (clean-shutdown re-open of a paged
   index) without re-scanning the table. *)
let attach_index t idx = t.indexes <- t.indexes @ [ idx ]

let drop_index t name =
  let before = List.length t.indexes in
  t.indexes <- List.filter (fun i -> Index.name i <> name) t.indexes;
  List.length t.indexes < before

let indexes t = t.indexes

let find_index t name = List.find_opt (fun i -> Index.name i = name) t.indexes

let truncate t =
  Mutex.lock t.vmutex;
  Hashtbl.reset t.versions;
  t.len_versions <- [];
  t.vcount <- 0;
  Mutex.unlock t.vmutex;
  with_s t (fun () ->
      Hashtbl.reset t.row_cache;
      (match t.store with
       | Mem v ->
         Vector.clear v;
         t.live <- 0
       | Disk h -> Heapfile.truncate h);
      List.iter Index.clear t.indexes)

let close t =
  (match t.store with Mem _ -> () | Disk h -> Heapfile.close h);
  List.iter Index.close t.indexes

let destroy t =
  (match t.store with Mem _ -> () | Disk h -> Heapfile.destroy h);
  List.iter Index.destroy t.indexes

(* ---------------- MVCC: writer side ---------------- *)

let with_v t f =
  Mutex.lock t.vmutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.vmutex) f

(* Stash the pre-image before [txid]'s first modification of [rowid].
   Must be called before the raw store is mutated — that ordering is
   what lets readers trust a raw value whose chain stayed empty. With
   [since] (the writer's pinned snapshot), a sealed version newer than
   the snapshot means the row was committed over since the writer read
   it: first-updater-wins, the caller must abort. *)
let stash_row t ~txid ?since rowid =
  with_v t @@ fun () ->
  let chain = Option.value ~default:[] (Hashtbl.find_opt t.versions rowid) in
  if List.exists (fun v -> v.v_end = pending && v.v_txid = txid) chain then true
  else if
    match since with
    | Some s -> List.exists (fun v -> v.v_end <> pending && v.v_end > s) chain
    | None -> false
  then false
  else begin
    let img = with_s t (fun () -> get_unlatched t rowid) in
    Hashtbl.replace t.versions rowid
      (chain @ [ { v_end = pending; v_txid = txid; v_image = img } ]);
    t.vcount <- t.vcount + 1;
    true
  end

(* Record the table length before [txid]'s first append: rows the
   transaction adds are invisible to snapshots taken before its
   commit. Appends never conflict. *)
let stash_len t ~txid =
  with_v t @@ fun () ->
  if
    not
      (List.exists
         (fun lv -> lv.l_end = pending && lv.l_txid = txid)
         t.len_versions)
  then begin
    let len =
      match t.store with
      | Mem v -> Vector.length v
      | Disk h -> Heapfile.next_rowid h
    in
    t.len_versions <-
      t.len_versions @ [ { l_end = pending; l_txid = txid; l_len = len } ];
    t.vcount <- t.vcount + 1
  end

(* Commit: the writer's pending versions become history sealed at the
   commit sequence number. The caller orders this before publishing the
   new CSN, so a snapshot can never observe a pending version from a
   transaction that committed before the snapshot was taken. *)
let seal_versions t ~txid ~csn =
  with_v t @@ fun () ->
  Hashtbl.iter
    (fun _ chain ->
      List.iter
        (fun v -> if v.v_end = pending && v.v_txid = txid then v.v_end <- csn)
        chain)
    t.versions;
  List.iter
    (fun lv -> if lv.l_end = pending && lv.l_txid = txid then lv.l_end <- csn)
    t.len_versions

(* Drop [txid]'s pending versions without sealing: rollback (the raw
   store has been restored first), or a commit with no live snapshot to
   serve (the raw store already is the only state anyone will read). *)
let discard_versions t ~txid =
  with_v t @@ fun () ->
  let dead = ref 0 in
  let keep v =
    if v.v_end = pending && v.v_txid = txid then (incr dead; false) else true
  in
  let updates =
    Hashtbl.fold
      (fun rowid chain acc ->
        let chain' = List.filter keep chain in
        if List.length chain' <> List.length chain then (rowid, chain') :: acc
        else acc)
      t.versions []
  in
  List.iter
    (fun (rowid, chain') ->
      if chain' = [] then Hashtbl.remove t.versions rowid
      else Hashtbl.replace t.versions rowid chain')
    updates;
  t.len_versions <-
    List.filter
      (fun lv ->
        if lv.l_end = pending && lv.l_txid = txid then (incr dead; false)
        else true)
      t.len_versions;
  t.vcount <- t.vcount - !dead

(* Reclaim history no active snapshot can reach: a version sealed at or
   below the oldest active snapshot would never be returned (resolution
   picks the first version with [v_end > at]). [min_active = None] means
   no snapshot is active at all. Returns the remaining version count so
   the caller can drop fully-clean tables from its sweep list. *)
let gc_versions t ~min_active =
  with_v t @@ fun () ->
  let reclaimable v =
    v.v_end <> pending
    && (match min_active with None -> true | Some m -> v.v_end <= m)
  in
  let dead = ref 0 in
  let keep v = if reclaimable v then (incr dead; false) else true in
  let updates =
    Hashtbl.fold
      (fun rowid chain acc ->
        let chain' = List.filter keep chain in
        if List.length chain' <> List.length chain then (rowid, chain') :: acc
        else acc)
      t.versions []
  in
  List.iter
    (fun (rowid, chain') ->
      if chain' = [] then Hashtbl.remove t.versions rowid
      else Hashtbl.replace t.versions rowid chain')
    updates;
  t.len_versions <-
    List.filter
      (fun lv ->
        if
          lv.l_end <> pending
          && (match min_active with None -> true | Some m -> lv.l_end <= m)
        then (incr dead; false)
        else true)
      t.len_versions;
  t.vcount <- t.vcount - !dead;
  t.vcount

(* ---------------- MVCC: reader side ---------------- *)

(* The image of [rowid] at snapshot [snap]: the oldest version that
   outlived the snapshot and is not the reader's own pending write —
   or [`Raw], meaning the raw store already holds the snapshot image
   (no newer committed state, or the reader's own uncommitted write,
   which a transaction does see). Call under [vmutex]. *)
let resolve_locked t snap rowid =
  match Hashtbl.find_opt t.versions rowid with
  | None -> `Raw
  | Some chain ->
    (match
       List.find_opt
         (fun v -> v.v_end > snap.at && v.v_txid <> snap.self)
         chain
     with
     | Some v -> `Image v.v_image
     | None -> `Raw)

let visible_len_locked t snap =
  match
    List.find_opt
      (fun lv -> lv.l_end > snap.at && lv.l_txid <> snap.self)
      t.len_versions
  with
  | Some lv -> lv.l_len
  | None ->
    (match t.store with
     | Mem v -> Vector.length v
     | Disk h -> Heapfile.next_rowid h)

let visible_len t snap = with_v t (fun () -> visible_len_locked t snap)

(* Resolve a rowid range against a snapshot. Decisions are taken under
   the lock, raw reads outside it (disk reads do I/O); a second locked
   pass re-resolves the raw ones because a writer may have mutated a row
   between the decision and the raw read — stash-before-mutate
   guarantees the pre-image is in the chain by then. *)
let resolve_range t snap ~lo ~hi =
  let n = max 0 (hi - lo) in
  let dec =
    with_v t (fun () ->
        Array.init n (fun i -> resolve_locked t snap (lo + i)))
  in
  let imgs =
    Array.map (function `Image img -> img | `Raw -> None) dec
  in
  with_s t (fun () ->
      Array.iteri
        (fun i d ->
          match d with `Raw -> imgs.(i) <- get_unlatched t (lo + i) | _ -> ())
        dec);
  with_v t (fun () ->
      Array.iteri
        (fun i d ->
          match d with
          | `Raw ->
            (match resolve_locked t snap (lo + i) with
             | `Image img -> imgs.(i) <- img
             | `Raw -> ())
          | _ -> ())
        dec);
  let out = ref [] in
  for i = n - 1 downto 0 do
    match imgs.(i) with
    | Some row -> out := (lo + i, row) :: !out
    | None -> ()
  done;
  !out

let get_at t snap rowid =
  let slow () =
    if rowid < 0 || rowid >= visible_len t snap then None
    else
      match resolve_range t snap ~lo:rowid ~hi:(rowid + 1) with
      | [ (_, row) ] -> Some row
      | _ -> None
  in
  if with_v t (fun () -> t.vcount) = 0 then begin
    let row = get t rowid in
    (* same re-check as the chunked scan: a writer may have stashed and
       mutated between the gate and the raw read *)
    if with_v t (fun () -> t.vcount) = 0 then row else slow ()
  end
  else slow ()

let chunk_rows = 512

(* Chunked snapshot scan. Per chunk: if the version count is zero, the
   raw store is the snapshot — materialise the chunk raw, then re-check;
   a non-zero re-check means a writer stashed (and may have mutated)
   mid-chunk, so the chunk is redone through resolution. The bound [hi]
   must already be capped at the snapshot's visible length. *)
let scan_resolved t snap ~lo ~hi =
  let rec go lo () =
    if lo >= hi then Seq.Nil
    else begin
      let mid = min hi (lo + chunk_rows) in
      let fast =
        if with_v t (fun () -> t.vcount) = 0 then begin
          let rows = with_s t (fun () -> List.of_seq (scan_range t ~lo ~hi:mid)) in
          if with_v t (fun () -> t.vcount) = 0 then Some rows else None
        end
        else None
      in
      let rows =
        match fast with
        | Some rows -> rows
        | None -> resolve_range t snap ~lo ~hi:mid
      in
      Seq.append (List.to_seq rows) (go mid) ()
    end
  in
  go lo

let scan_at t snap =
  fun () -> scan_resolved t snap ~lo:0 ~hi:(visible_len t snap) ()

let scan_part_at t snap ~index ~parts =
  fun () ->
    (* same chunk arithmetic as {!scan_part}, over the snapshot's
       visible length: concatenating all parts equals {!scan_at} *)
    let n = visible_len t snap in
    let parts = max 1 parts in
    let i = max 0 (min index (parts - 1)) in
    scan_resolved t snap ~lo:(i * n / parts) ~hi:((i + 1) * n / parts) ()

(* Snapshot index probes. Fast path: no versions before or after the
   raw probe means index and heap were untouched for the whole probe.
   Slow path: the current index may disagree with the snapshot (an
   in-flight or later-committed writer moved keys), so the candidate
   set is the raw probe UNION every row with version history; each
   candidate's snapshot image is re-validated against the probe
   predicate. Emission order is (key, rowid) for ranges and rowid for
   lookups — deterministic, and identical to the raw path whenever no
   writer raced the probe. *)
let key_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i x -> if not (Value.equal x b.(i)) then ok := false) a;
      !ok)

let candidates_at t snap raw_ids =
  let vl = visible_len t snap in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun id -> if id < vl then Hashtbl.replace tbl id ())
    raw_ids;
  with_v t (fun () ->
      Hashtbl.iter
        (fun rowid _ -> if rowid < vl then Hashtbl.replace tbl rowid ())
        t.versions);
  let ids = Hashtbl.fold (fun id () acc -> id :: acc) tbl [] in
  List.sort compare ids

let resolve_ids t snap ids =
  List.filter_map
    (fun id ->
      match resolve_range t snap ~lo:id ~hi:(id + 1) with
      | [ (_, row) ] -> Some (id, row)
      | _ -> None)
    ids

let lookup_at t snap idx key =
  let fast () =
    with_s t @@ fun () ->
    let ids = Index.lookup idx key in
    List.filter_map (fun id -> get_unlatched t id) ids
  in
  let slow () =
    let raw_ids = with_s t (fun () -> Index.lookup idx key) in
    List.filter_map
      (fun (_, row) ->
        if key_equal (Index.key_of_row idx row) key then Some row else None)
      (resolve_ids t snap (candidates_at t snap raw_ids))
  in
  if with_v t (fun () -> t.vcount) = 0 then begin
    let rows = fast () in
    if with_v t (fun () -> t.vcount) = 0 then rows else slow ()
  end
  else slow ()

let range_at t snap idx ?lo ?hi () =
  let fast () =
    with_s t @@ fun () ->
    List.filter_map
      (fun id -> get_unlatched t id)
      (List.of_seq (Index.range ?lo ?hi idx))
  in
  let slow () =
    let in_bounds k =
      (not (Array.exists (fun v -> v = Value.Null) k))
      && (match lo with
          | None -> true
          | Some (lk, incl) ->
            let c = Btree.compare_key lk k in
            c < 0 || (c = 0 && incl))
      && (match hi with
          | None -> true
          | Some (hk, incl) ->
            let c = Btree.compare_key k hk in
            c < 0 || (c = 0 && incl))
    in
    let raw_ids = with_s t (fun () -> List.of_seq (Index.range ?lo ?hi idx)) in
    let resolved = resolve_ids t snap (candidates_at t snap raw_ids) in
    let keyed =
      List.filter_map
        (fun (id, row) ->
          let k = Index.key_of_row idx row in
          if in_bounds k then Some (k, id, row) else None)
        resolved
    in
    List.map
      (fun (_, _, row) -> row)
      (List.sort
         (fun (k1, id1, _) (k2, id2, _) ->
           let c = Btree.compare_key k1 k2 in
           if c <> 0 then c else compare id1 id2)
         keyed)
  in
  if with_v t (fun () -> t.vcount) = 0 then begin
    let rows = fast () in
    if with_v t (fun () -> t.vcount) = 0 then rows else slow ()
  end
  else slow ()
