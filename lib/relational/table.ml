(* Heap tables behind one of two row stores: the in-memory vector
   (tombstones as [None] slots) or a paged heap file on disk. Rowid
   discipline is identical in both — sequential assignment, never
   reused — so the two backends are row-for-row interchangeable. *)

type store =
  | Mem of Value.t array option Vector.t
  | Disk of Heapfile.t

type t = {
  schema : Schema.t;
  store : store;
  mutable live : int; (* Mem only; the heap file tracks its own count *)
  mutable indexes : Index.t list;
  (* Disk only: decoded rows memoized by rowid, so repeated point
     fetches (index-driven plans re-reading a hot working set) skip the
     page pin + Rowcodec decode. Capacity is tied to the buffer pool's
     frame budget, keeping total memory proportional to the pool; any
     mutation of a rowid evicts it. Cleared wholesale when full —
     amortized O(1), no LRU bookkeeping on the hit path. *)
  row_cache : (int, Value.t array) Hashtbl.t;
  row_cache_cap : int;
}

let pkey_index ?storage (schema : Schema.t) =
  match schema.primary_key with
  | [] -> None
  | keys ->
    let positions = List.map (Schema.column_index schema) keys in
    Some
      (Index.create ?storage
         ~name:(schema.table_name ^ "_pkey")
         ~table:schema.table_name ~columns:keys ~column_positions:positions
         ~unique:true Index.Btree)

let create ?storage schema =
  let indexes = match pkey_index ?storage schema with Some i -> [ i ] | None -> [] in
  let store, cache_cap =
    match storage with
    | None -> (Mem (Vector.create ()), 0)
    | Some st ->
      ( Disk
          (Heapfile.create (Storage.pool st)
             ~base:(Storage.heap_base st schema.Schema.table_name)),
        8 * Bufpool.frames (Storage.pool st) )
  in
  { schema; store; live = 0; indexes;
    row_cache = Hashtbl.create 64; row_cache_cap = cache_cap }

let schema t = t.schema

let row_count t =
  match t.store with Mem _ -> t.live | Disk h -> Heapfile.live h

let next_rowid t =
  match t.store with Mem v -> Vector.length v | Disk h -> Heapfile.next_rowid h

let get t rowid =
  match t.store with
  | Mem v -> if rowid < 0 || rowid >= Vector.length v then None else Vector.get v rowid
  | Disk h ->
    (match Hashtbl.find_opt t.row_cache rowid with
     | Some row -> Some row
     | None ->
       (match Heapfile.get h rowid with
        | Some row as r ->
          if Hashtbl.length t.row_cache >= t.row_cache_cap then
            Hashtbl.reset t.row_cache;
          Hashtbl.add t.row_cache rowid row;
          r
        | None -> None))

let insert t row =
  match Schema.check_row t.schema row with
  | Error _ as e -> e
  | Ok () ->
    let rowid = next_rowid t in
    (* Try all indexes; roll back the ones already updated on failure. *)
    let rec add_all done_ = function
      | [] -> Ok ()
      | idx :: rest ->
        (match Index.insert idx row rowid with
         | Ok () -> add_all (idx :: done_) rest
         | Error m ->
           List.iter (fun i -> Index.remove i row rowid) done_;
           Error m)
    in
    (match add_all [] t.indexes with
     | Error _ as e -> e
     | Ok () ->
       (match t.store with
        | Mem v ->
          ignore (Vector.push v (Some row));
          t.live <- t.live + 1
        | Disk h -> ignore (Heapfile.insert h row));
       Ok rowid)

(* Append without touching the indexes: the bulk-load path builds or
   patches them separately (bottom-up for empty paged trees). Schema
   validation still applies. *)
let append_bulk t row =
  match Schema.check_row t.schema row with
  | Error _ as e -> e
  | Ok () ->
    let rowid = next_rowid t in
    (match t.store with
     | Mem v ->
       ignore (Vector.push v (Some row));
       t.live <- t.live + 1
     | Disk h -> ignore (Heapfile.insert h row));
    Ok rowid

let delete t rowid =
  match get t rowid with
  | None -> false
  | Some row ->
    List.iter (fun idx -> Index.remove idx row rowid) t.indexes;
    (match t.store with
     | Mem v ->
       Vector.set v rowid None;
       t.live <- t.live - 1
     | Disk h ->
       Hashtbl.remove t.row_cache rowid;
       ignore (Heapfile.delete h rowid));
    true

let undelete t rowid row =
  let restored =
    match t.store with
    | Mem v ->
      rowid >= 0 && rowid < Vector.length v
      && (match Vector.get v rowid with
          | Some _ -> false
          | None ->
            Vector.set v rowid (Some row);
            t.live <- t.live + 1;
            true)
    | Disk h -> Heapfile.undelete h rowid
  in
  if restored then
    List.iter
      (fun idx ->
        match Index.insert idx row rowid with
        | Ok () -> ()
        | Error _ -> assert false (* the pre-delete state was consistent *))
      t.indexes;
  restored

let update t rowid new_row =
  match get t rowid with
  | None -> Error (Printf.sprintf "row %d does not exist" rowid)
  | Some old_row ->
    (match Schema.check_row t.schema new_row with
     | Error _ as e -> e
     | Ok () ->
       (* Remove old entries, insert new; restore on unique failure. *)
       List.iter (fun idx -> Index.remove idx old_row rowid) t.indexes;
       let rec add_all done_ = function
         | [] -> Ok ()
         | idx :: rest ->
           (match Index.insert idx new_row rowid with
            | Ok () -> add_all (idx :: done_) rest
            | Error m ->
              List.iter (fun i -> Index.remove i new_row rowid) done_;
              List.iter
                (fun i ->
                  match Index.insert i old_row rowid with
                  | Ok () -> ()
                  | Error _ -> assert false (* old state was consistent *))
                t.indexes;
              Error m)
       in
       (match add_all [] t.indexes with
        | Error _ as e -> e
        | Ok () ->
          (match t.store with
           | Mem v -> Vector.set v rowid (Some new_row)
           | Disk h ->
             Hashtbl.remove t.row_cache rowid;
             Heapfile.update h rowid new_row);
          Ok ()))

let scan_range t ~lo ~hi =
  match t.store with
  | Mem v ->
    let hi = min hi (Vector.length v) in
    let rec go i () =
      if i >= hi then Seq.Nil
      else
        match Vector.get v i with
        | Some row -> Seq.Cons ((i, row), go (i + 1))
        | None -> go (i + 1) ()
    in
    go (max 0 lo)
  | Disk h -> Heapfile.scan_range h ~lo ~hi

let scan t = fun () -> scan_range t ~lo:0 ~hi:(next_rowid t) ()

let scan_part t ~index ~parts =
  fun () ->
    (* bounds resolved at pull time: cached plans keep covering the whole
       table as it grows *)
    let n = next_rowid t in
    let parts = max 1 parts in
    let i = max 0 (min index (parts - 1)) in
    scan_range t ~lo:(i * n / parts) ~hi:((i + 1) * n / parts) ()

let add_index t idx =
  let exception Violation of string in
  match
    Seq.iter
      (fun (rowid, row) ->
        match Index.insert idx row rowid with
        | Ok () -> ()
        | Error m -> raise (Violation m))
      (scan t)
  with
  | () ->
    t.indexes <- t.indexes @ [ idx ];
    Ok ()
  | exception Violation m -> Error m

(* Attach an already-populated index (clean-shutdown re-open of a paged
   index) without re-scanning the table. *)
let attach_index t idx = t.indexes <- t.indexes @ [ idx ]

let drop_index t name =
  let before = List.length t.indexes in
  t.indexes <- List.filter (fun i -> Index.name i <> name) t.indexes;
  List.length t.indexes < before

let indexes t = t.indexes

let find_index t name = List.find_opt (fun i -> Index.name i = name) t.indexes

let truncate t =
  Hashtbl.reset t.row_cache;
  (match t.store with
   | Mem v ->
     Vector.clear v;
     t.live <- 0
   | Disk h -> Heapfile.truncate h);
  List.iter Index.clear t.indexes

let close t =
  (match t.store with Mem _ -> () | Disk h -> Heapfile.close h);
  List.iter Index.close t.indexes

let destroy t =
  (match t.store with Mem _ -> () | Disk h -> Heapfile.destroy h);
  List.iter Index.destroy t.indexes
