let page_size = 8192

(* Process-global counters: registered once so the METRICS frame and
   --metrics-json pick them up; EXPLAIN ANALYZE prints deltas. *)
let hits_c = Obs.Counter.create ()
let misses_c = Obs.Counter.create ()
let evictions_c = Obs.Counter.create ()
let writebacks_c = Obs.Counter.create ()

let () =
  Obs.register_counter "storage.pool.hits" hits_c;
  Obs.register_counter "storage.pool.misses" misses_c;
  Obs.register_counter "storage.pool.evictions" evictions_c;
  Obs.register_counter "storage.pool.writebacks" writebacks_c

let pool_hits () = Obs.Counter.value hits_c
let pool_misses () = Obs.Counter.value misses_c
let pool_evictions () = Obs.Counter.value evictions_c
let pool_writebacks () = Obs.Counter.value writebacks_c

type file = {
  mutable fd : Unix.file_descr;
  file_id : int;
  fpath : string;
  mutable fnpages : int;
  mutable closed : bool;
}

type frame = {
  buf : bytes;
  mutable key : (int * int) option;  (* (file_id, page) *)
  mutable owner : file option;
  mutable pins : int;
  mutable dirty : bool;
  mutable refbit : bool;
}

type t = {
  fr : frame array;
  tbl : (int * int, int) Hashtbl.t;  (* key -> frame index *)
  mutable hand : int;
  mu : Mutex.t;
  mutable next_file_id : int;
  mutable files : file list;  (* open files, for flush fsync *)
  mutable wal_barrier : unit -> unit;
}

let default_frames () =
  match Sys.getenv_opt "XOMATIQ_POOL_PAGES" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n > 0 -> n
     | _ -> 2048)
  | None ->
    (match Sys.getenv_opt "XOMATIQ_POOL_MB" with
     | Some s ->
       (match int_of_string_opt (String.trim s) with
        | Some mb when mb > 0 -> mb * 1024 * 1024 / page_size
        | _ -> 2048)
     | None -> 2048)

let create ?frames () =
  let n = max 8 (match frames with Some n -> n | None -> default_frames ()) in
  { fr =
      Array.init n (fun _ ->
          { buf = Bytes.create page_size; key = None; owner = None; pins = 0;
            dirty = false; refbit = false });
    tbl = Hashtbl.create (2 * n);
    hand = 0;
    mu = Mutex.create ();
    next_file_id = 0;
    files = [];
    wal_barrier = (fun () -> ()) }

let frames t = Array.length t.fr

let set_wal_barrier t f = t.wal_barrier <- f

let open_file t path0 =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  let fd = Unix.openfile path0 [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.LargeFile.fstat fd).Unix.LargeFile.st_size in
  let npages = Int64.to_int (Int64.div (Int64.add size (Int64.of_int (page_size - 1)))
                               (Int64.of_int page_size)) in
  let f =
    { fd; file_id = t.next_file_id; fpath = path0; fnpages = npages; closed = false }
  in
  t.next_file_id <- t.next_file_id + 1;
  t.files <- f :: t.files;
  f

let npages f = f.fnpages
let path f = f.fpath

let allocate t f =
  Mutex.lock t.mu;
  let page = f.fnpages in
  f.fnpages <- page + 1;
  Mutex.unlock t.mu;
  page

(* ---- internals; all called with t.mu held ---- *)

let read_page f page buf =
  let off = Int64.mul (Int64.of_int page) (Int64.of_int page_size) in
  ignore (Unix.LargeFile.lseek f.fd off Unix.SEEK_SET);
  let rec go pos =
    if pos >= page_size then ()
    else
      let n = Unix.read f.fd buf pos (page_size - pos) in
      if n = 0 then Bytes.fill buf pos (page_size - pos) '\000'
      else go (pos + n)
  in
  go 0

let write_page f page buf =
  let off = Int64.mul (Int64.of_int page) (Int64.of_int page_size) in
  ignore (Unix.LargeFile.lseek f.fd off Unix.SEEK_SET);
  let rec go pos =
    if pos < page_size then begin
      let n = Unix.write f.fd buf pos (page_size - pos) in
      go (pos + n)
    end
  in
  go 0

let writeback t fri =
  let fr = t.fr.(fri) in
  match fr.key, fr.owner with
  | Some (_, page), Some f when fr.dirty ->
    t.wal_barrier ();
    write_page f page fr.buf;
    fr.dirty <- false;
    Obs.Counter.incr writebacks_c
  | _ -> fr.dirty <- false

(* CLOCK: sweep for an unpinned frame, clearing reference bits; a frame
   survives one sweep after its last use. *)
let victim t =
  let n = Array.length t.fr in
  let rec go tries =
    if tries > 2 * n then
      failwith "Bufpool: all frames pinned (pool too small for concurrent pins)"
    else begin
      let i = t.hand in
      t.hand <- (t.hand + 1) mod n;
      let fr = t.fr.(i) in
      if fr.pins > 0 then go (tries + 1)
      else if fr.refbit then begin
        fr.refbit <- false;
        go (tries + 1)
      end
      else i
    end
  in
  go 0

let load t f page =
  match Hashtbl.find_opt t.tbl (f.file_id, page) with
  | Some i ->
    Obs.Counter.incr hits_c;
    i
  | None ->
    Obs.Counter.incr misses_c;
    let i = victim t in
    let fr = t.fr.(i) in
    (match fr.key with
     | Some k ->
       if fr.dirty then begin
         Obs.Counter.incr evictions_c;
         writeback t i
       end else Obs.Counter.incr evictions_c;
       Hashtbl.remove t.tbl k
     | None -> ());
    read_page f page fr.buf;
    fr.key <- Some (f.file_id, page);
    fr.owner <- Some f;
    fr.dirty <- false;
    Hashtbl.replace t.tbl (f.file_id, page) i;
    i

let with_page_gen t f page ~dirty fn =
  if page < 0 || page >= f.fnpages then
    invalid_arg
      (Printf.sprintf "Bufpool: page %d out of range (file %s has %d)" page
         f.fpath f.fnpages);
  Mutex.lock t.mu;
  let i =
    match load t f page with
    | i ->
      let fr = t.fr.(i) in
      fr.pins <- fr.pins + 1;
      fr.refbit <- true;
      Mutex.unlock t.mu;
      i
    | exception e ->
      Mutex.unlock t.mu;
      raise e
  in
  let fr = t.fr.(i) in
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.mu;
      fr.pins <- fr.pins - 1;
      if dirty then fr.dirty <- true;
      Mutex.unlock t.mu)
    (fun () -> fn fr.buf)

let with_page t f page fn = with_page_gen t f page ~dirty:false fn
let with_page_w t f page fn = with_page_gen t f page ~dirty:true fn

let flush t =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  t.wal_barrier ();
  Array.iteri (fun i fr -> if fr.dirty then writeback t i) t.fr;
  List.iter (fun f -> if not f.closed then Unix.fsync f.fd) t.files

let drop_frames t f =
  Array.iter
    (fun fr ->
      match fr.key with
      | Some ((fid, _) as k) when fid = f.file_id ->
        Hashtbl.remove t.tbl k;
        fr.key <- None;
        fr.owner <- None;
        fr.dirty <- false;
        fr.refbit <- false
      | _ -> ())
    t.fr

let truncate_file t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  drop_frames t f;
  Unix.ftruncate f.fd 0;
  f.fnpages <- 0

let close_file t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  if not f.closed then begin
    Array.iteri
      (fun i fr ->
        match fr.key with
        | Some (fid, _) when fid = f.file_id -> if fr.dirty then writeback t i
        | _ -> ())
      t.fr;
    Unix.fsync f.fd;
    drop_frames t f;
    Unix.close f.fd;
    f.closed <- true;
    t.files <- List.filter (fun g -> g.file_id <> f.file_id) t.files
  end

let remove_file t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  if not f.closed then begin
    drop_frames t f;
    Unix.close f.fd;
    f.closed <- true;
    t.files <- List.filter (fun g -> g.file_id <> f.file_id) t.files
  end;
  (try Sys.remove f.fpath with Sys_error _ -> ())
