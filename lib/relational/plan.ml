(* Physical query plans.

   The planner compiles every column reference to a positional slot in the
   operator's input row, so execution never resolves names. Subqueries are
   compiled to nested plans; correlated references become [CParam] slots
   filled from the outer row at evaluation time. *)

type cexpr =
  | CLit of Value.t
  | CCol of int
  | CParam of int             (* correlated outer-column parameter *)
  | CBinop of Sql_ast.binop * cexpr * cexpr
  | CUnop of Sql_ast.unop * cexpr
  | CFn of string * cexpr list
  | CLike of { subject : cexpr; pattern : cexpr; escape : cexpr option; negated : bool }
  | CIn_list of { subject : cexpr; candidates : cexpr list; negated : bool }
  | CIs_null of { subject : cexpr; negated : bool }
  | CBetween of { subject : cexpr; low : cexpr; high : cexpr; negated : bool }
  | CCase of { branches : (cexpr * cexpr) list; else_ : cexpr option }
  | CIn_plan of { subject : cexpr; plan : t; negated : bool }
  | CExists_plan of { plan : t; negated : bool }
  | CScalar_plan of t

and agg_spec = {
  agg_fn : Sql_ast.agg_fn;
  agg_arg : cexpr option;     (* None = COUNT star *)
  agg_distinct : bool;
}

and t =
  | Single_row   (* produces exactly one zero-column row: SELECT without FROM *)
  | Seq_scan of {
      table : string;
      filter : cexpr option;
      part : (int * int) option;
          (* [Some (i, n)]: scan only the [i]-th of [n] contiguous rowid
             chunks (bounds are computed at execution time, so a cached
             plan keeps covering the whole table as it grows). [None]:
             full scan. *)
    }
  | Index_lookup of { table : string; index : string; key : cexpr array; filter : cexpr option }
  | Index_range of {
      table : string;
      index : string;
      lo : (cexpr array * bool) option;
      hi : (cexpr array * bool) option;
      filter : cexpr option;
    }
  | Filter of cexpr * t
  | Project of cexpr array * t
  | Nested_loop_join of { left : t; right : t; cond : cexpr option; left_outer : bool; right_arity : int }
  | Hash_join of {
      left : t;
      right : t;
      left_keys : cexpr array;   (* over the left row *)
      right_keys : cexpr array;  (* over the right row *)
      cond : cexpr option;       (* residual, over the concatenated row *)
      left_outer : bool;
      right_arity : int;
    }
  | Sort of (cexpr * Sql_ast.order_dir) array * t
  | Aggregate of { group_by : cexpr array; aggs : agg_spec array; input : t }
      (* output row = group key values followed by aggregate values *)
  | Distinct of t
  | Union_all of t list   (* bag concatenation; UNION = Distinct over it *)
  | Limit of { limit : int option; offset : int option; input : t }
  | Exchange of { inputs : t list; workers : int }
      (* morsel parallelism: evaluate the inputs (disjoint partitions of
         one logical scan) across up to [workers] pool domains and
         concatenate their outputs in input order, so the merged stream
         is byte-identical to running the unpartitioned operator. *)
  | Structural_join of {
      left : t;
      right : t;
      interval_on_left : bool;
          (* which input carries the [lo, hi] interval; the other input
             carries the point [pos] being tested for containment *)
      left_doc : cexpr;   (* document key, over the left row *)
      right_doc : cexpr;  (* document key, over the right row *)
      lo : cexpr;         (* interval bounds, over the interval side's row *)
      hi : cexpr;
      pos : cexpr;        (* position, over the point side's row *)
      lo_incl : bool;     (* pos >= lo vs pos > lo *)
      hi_incl : bool;     (* pos <= hi vs pos < hi *)
      cond : cexpr option;  (* residual, over the concatenated row *)
      right_arity : int;
    }
      (* interval containment (structural) merge join: equivalent to an
         inner join on [left_doc = right_doc AND lo (<|<=) pos (<|<=) hi]
         but executed with the stack-based algorithm — both inputs sorted
         on (doc, position), each consumed once, a stack of open ancestor
         intervals. Output is re-merged into the left-major order the
         equivalent nested-loop/hash plan would produce. *)

(* ------------------------------------------------------------------ *)
(* Rendering for EXPLAIN                                               *)
(* ------------------------------------------------------------------ *)

let rec cexpr_to_string = function
  | CLit v -> Value.to_literal v
  | CCol i -> Printf.sprintf "#%d" i
  | CParam i -> Printf.sprintf "$%d" i
  | CBinop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (cexpr_to_string a) (Sql_ast.binop_to_string op)
      (cexpr_to_string b)
  | CUnop (Sql_ast.Neg, e) -> Printf.sprintf "(-%s)" (cexpr_to_string e)
  | CUnop (Sql_ast.Not, e) -> Printf.sprintf "(NOT %s)" (cexpr_to_string e)
  | CFn (name, args) ->
    Printf.sprintf "%s(%s)" name (String.concat ", " (List.map cexpr_to_string args))
  | CLike { subject; pattern; escape; negated } ->
    let esc = match escape with
      | Some e -> " ESCAPE " ^ cexpr_to_string e
      | None -> ""
    in
    Printf.sprintf "(%s %sLIKE %s%s)" (cexpr_to_string subject)
      (if negated then "NOT " else "") (cexpr_to_string pattern) esc
  | CIn_list { subject; candidates; negated } ->
    Printf.sprintf "(%s %sIN (%s))" (cexpr_to_string subject)
      (if negated then "NOT " else "")
      (String.concat ", " (List.map cexpr_to_string candidates))
  | CIs_null { subject; negated } ->
    Printf.sprintf "(%s IS %sNULL)" (cexpr_to_string subject)
      (if negated then "NOT " else "")
  | CBetween { subject; low; high; negated } ->
    Printf.sprintf "(%s %sBETWEEN %s AND %s)" (cexpr_to_string subject)
      (if negated then "NOT " else "") (cexpr_to_string low) (cexpr_to_string high)
  | CCase _ -> "CASE ... END"
  | CIn_plan { subject; negated; _ } ->
    Printf.sprintf "(%s %sIN <subplan>)" (cexpr_to_string subject)
      (if negated then "NOT " else "")
  | CExists_plan { negated; _ } ->
    Printf.sprintf "(%sEXISTS <subplan>)" (if negated then "NOT " else "")
  | CScalar_plan _ -> "<scalar subplan>"

(* subplans referenced by an expression, for EXPLAIN rendering *)
let rec subplans_of (e : cexpr) : t list =
  match e with
  | CLit _ | CCol _ | CParam _ -> []
  | CBinop (_, a, b) -> subplans_of a @ subplans_of b
  | CUnop (_, a) -> subplans_of a
  | CFn (_, args) -> List.concat_map subplans_of args
  | CLike { subject; pattern; escape; _ } ->
    subplans_of subject @ subplans_of pattern
    @ (match escape with Some e -> subplans_of e | None -> [])
  | CIn_list { subject; candidates; _ } ->
    subplans_of subject @ List.concat_map subplans_of candidates
  | CIs_null { subject; _ } -> subplans_of subject
  | CBetween { subject; low; high; _ } ->
    subplans_of subject @ subplans_of low @ subplans_of high
  | CCase { branches; else_ } ->
    List.concat_map (fun (c, r) -> subplans_of c @ subplans_of r) branches
    @ (match else_ with Some e -> subplans_of e | None -> [])
  | CIn_plan { subject; plan; _ } -> subplans_of subject @ [ plan ]
  | CExists_plan { plan; _ } -> [ plan ]
  | CScalar_plan plan -> [ plan ]

(* Structure-preserving deep copies. Profiles and cost estimates key on
   physical node identity, so when the planner replicates an operator
   across Exchange partitions every replica must be a fresh allocation:
   copied partitions then profile independently (the per-worker counters
   of EXPLAIN ANALYZE) and never share mutable statistics across
   domains. *)
let rec copy_cexpr (e : cexpr) : cexpr =
  match e with
  | CLit v -> CLit v
  | CCol i -> CCol i
  | CParam i -> CParam i
  | CBinop (op, a, b) -> CBinop (op, copy_cexpr a, copy_cexpr b)
  | CUnop (op, a) -> CUnop (op, copy_cexpr a)
  | CFn (name, args) -> CFn (name, List.map copy_cexpr args)
  | CLike { subject; pattern; escape; negated } ->
    CLike
      { subject = copy_cexpr subject; pattern = copy_cexpr pattern;
        escape = Option.map copy_cexpr escape; negated }
  | CIn_list { subject; candidates; negated } ->
    CIn_list
      { subject = copy_cexpr subject;
        candidates = List.map copy_cexpr candidates; negated }
  | CIs_null { subject; negated } -> CIs_null { subject = copy_cexpr subject; negated }
  | CBetween { subject; low; high; negated } ->
    CBetween
      { subject = copy_cexpr subject; low = copy_cexpr low;
        high = copy_cexpr high; negated }
  | CCase { branches; else_ } ->
    CCase
      { branches = List.map (fun (c, r) -> (copy_cexpr c, copy_cexpr r)) branches;
        else_ = Option.map copy_cexpr else_ }
  | CIn_plan { subject; plan; negated } ->
    CIn_plan { subject = copy_cexpr subject; plan = copy_plan plan; negated }
  | CExists_plan { plan; negated } ->
    CExists_plan { plan = copy_plan plan; negated }
  | CScalar_plan plan -> CScalar_plan (copy_plan plan)

and copy_plan (p : t) : t =
  match p with
  | Single_row -> Single_row
  | Seq_scan { table; filter; part } ->
    Seq_scan { table; filter = Option.map copy_cexpr filter; part }
  | Index_lookup { table; index; key; filter } ->
    Index_lookup
      { table; index; key = Array.map copy_cexpr key;
        filter = Option.map copy_cexpr filter }
  | Index_range { table; index; lo; hi; filter } ->
    let bound = Option.map (fun (k, incl) -> (Array.map copy_cexpr k, incl)) in
    Index_range
      { table; index; lo = bound lo; hi = bound hi;
        filter = Option.map copy_cexpr filter }
  | Filter (f, input) -> Filter (copy_cexpr f, copy_plan input)
  | Project (es, input) -> Project (Array.map copy_cexpr es, copy_plan input)
  | Nested_loop_join { left; right; cond; left_outer; right_arity } ->
    Nested_loop_join
      { left = copy_plan left; right = copy_plan right;
        cond = Option.map copy_cexpr cond; left_outer; right_arity }
  | Hash_join { left; right; left_keys; right_keys; cond; left_outer; right_arity } ->
    Hash_join
      { left = copy_plan left; right = copy_plan right;
        left_keys = Array.map copy_cexpr left_keys;
        right_keys = Array.map copy_cexpr right_keys;
        cond = Option.map copy_cexpr cond; left_outer; right_arity }
  | Sort (keys, input) ->
    Sort (Array.map (fun (e, d) -> (copy_cexpr e, d)) keys, copy_plan input)
  | Aggregate { group_by; aggs; input } ->
    Aggregate
      { group_by = Array.map copy_cexpr group_by;
        aggs =
          Array.map
            (fun a -> { a with agg_arg = Option.map copy_cexpr a.agg_arg })
            aggs;
        input = copy_plan input }
  | Distinct input -> Distinct (copy_plan input)
  | Union_all inputs -> Union_all (List.map copy_plan inputs)
  | Limit { limit; offset; input } -> Limit { limit; offset; input = copy_plan input }
  | Exchange { inputs; workers } ->
    Exchange { inputs = List.map copy_plan inputs; workers }
  | Structural_join
      { left; right; interval_on_left; left_doc; right_doc; lo; hi; pos;
        lo_incl; hi_incl; cond; right_arity } ->
    Structural_join
      { left = copy_plan left; right = copy_plan right; interval_on_left;
        left_doc = copy_cexpr left_doc; right_doc = copy_cexpr right_doc;
        lo = copy_cexpr lo; hi = copy_cexpr hi; pos = copy_cexpr pos;
        lo_incl; hi_incl; cond = Option.map copy_cexpr cond; right_arity }

(* Every plan node reachable from [plan], in preorder, each exactly once
   by physical identity: direct operator inputs plus the subplans embedded
   in operator expressions (filters, projections, join keys/conditions,
   sort keys, aggregate arguments). Used to build execution profiles. *)
let descendants plan =
  let acc = ref [] in
  let note p = acc := p :: !acc in
  let rec go p =
    note p;
    let expr e = List.iter go (subplans_of e) in
    let opt_expr = Option.iter expr in
    let exprs a = Array.iter expr a in
    let key_bound = function Some (k, _) -> exprs k | None -> () in
    match p with
    | Single_row -> ()
    | Seq_scan { filter; _ } -> opt_expr filter
    | Index_lookup { key; filter; _ } -> exprs key; opt_expr filter
    | Index_range { lo; hi; filter; _ } ->
      key_bound lo; key_bound hi; opt_expr filter
    | Filter (f, input) -> expr f; go input
    | Project (es, input) -> exprs es; go input
    | Nested_loop_join { left; right; cond; _ } ->
      opt_expr cond; go left; go right
    | Hash_join { left; right; left_keys; right_keys; cond; _ } ->
      exprs left_keys; exprs right_keys; opt_expr cond; go left; go right
    | Sort (keys, input) -> Array.iter (fun (e, _) -> expr e) keys; go input
    | Aggregate { group_by; aggs; input } ->
      exprs group_by;
      Array.iter (fun a -> opt_expr a.agg_arg) aggs;
      go input
    | Distinct input -> go input
    | Union_all inputs -> List.iter go inputs
    | Limit { input; _ } -> go input
    | Exchange { inputs; _ } -> List.iter go inputs
    | Structural_join { left; right; left_doc; right_doc; lo; hi; pos; cond; _ } ->
      expr left_doc; expr right_doc; expr lo; expr hi; expr pos;
      opt_expr cond; go left; go right
  in
  go plan;
  List.rev !acc

(* The distinct index names a plan probes, in first-use order — the
   "chosen indexes" surfaced by pipeline traces. *)
let indexes_used plan =
  List.fold_left
    (fun acc p ->
      match p with
      | Index_lookup { index; _ } | Index_range { index; _ } ->
        if List.mem index acc then acc else acc @ [ index ]
      | _ -> acc)
    [] (descendants plan)

(* [annot] appends a per-operator suffix to each operator line (used by
   EXPLAIN ANALYZE to attach runtime statistics). *)
let to_string ?(annot = fun _ -> "") plan =
  let buf = Buffer.create 256 in
  let line indent s =
    Buffer.add_string buf (String.make (indent * 2) ' ');
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  let opt_filter = function
    | None -> ""
    | Some f -> Printf.sprintf " filter=%s" (cexpr_to_string f)
  in
  let rec go indent node =
    let op_line indent s = line indent (s ^ annot node) in
    match node with
    | Single_row -> op_line indent "SingleRow"
    | Seq_scan { table; filter; part } ->
      let part_s =
        match part with
        | None -> ""
        | Some (i, n) -> Printf.sprintf " part=%d/%d" (i + 1) n
      in
      op_line indent
        (Printf.sprintf "SeqScan %s%s%s" table part_s (opt_filter filter))
    | Index_lookup { table; index; key; filter } ->
      op_line indent
        (Printf.sprintf "IndexLookup %s using %s key=(%s)%s" table index
           (String.concat ", " (Array.to_list (Array.map cexpr_to_string key)))
           (opt_filter filter))
    | Index_range { table; index; lo; hi; filter } ->
      let bound name = function
        | None -> ""
        | Some (k, incl) ->
          Printf.sprintf " %s%s(%s)" name (if incl then "=" else "")
            (String.concat ", " (Array.to_list (Array.map cexpr_to_string k)))
      in
      op_line indent
        (Printf.sprintf "IndexRange %s using %s%s%s%s" table index
           (bound "lo" lo) (bound "hi" hi) (opt_filter filter))
    | Filter (f, input) ->
      op_line indent (Printf.sprintf "Filter %s" (cexpr_to_string f));
      List.iter
        (fun sub ->
          line (indent + 1) "SubPlan:";
          go (indent + 2) sub)
        (subplans_of f);
      go (indent + 1) input
    | Project (exprs, input) ->
      op_line indent
        (Printf.sprintf "Project [%s]"
           (String.concat ", " (Array.to_list (Array.map cexpr_to_string exprs))));
      go (indent + 1) input
    | Nested_loop_join { left; right; cond; left_outer; _ } ->
      op_line indent
        (Printf.sprintf "NestedLoopJoin%s%s"
           (if left_outer then " (left outer)" else "")
           (match cond with None -> "" | Some c -> " on " ^ cexpr_to_string c));
      go (indent + 1) left;
      go (indent + 1) right
    | Hash_join { left; right; left_keys; right_keys; cond; left_outer; _ } ->
      op_line indent
        (Printf.sprintf "HashJoin%s (%s) = (%s)%s"
           (if left_outer then " (left outer)" else "")
           (String.concat ", " (Array.to_list (Array.map cexpr_to_string left_keys)))
           (String.concat ", " (Array.to_list (Array.map cexpr_to_string right_keys)))
           (match cond with None -> "" | Some c -> " residual " ^ cexpr_to_string c));
      go (indent + 1) left;
      go (indent + 1) right
    | Sort (keys, input) ->
      let key (e, d) =
        cexpr_to_string e ^ (match d with Sql_ast.Asc -> " ASC" | Sql_ast.Desc -> " DESC")
      in
      op_line indent
        (Printf.sprintf "Sort [%s]"
           (String.concat ", " (Array.to_list (Array.map key keys))));
      go (indent + 1) input
    | Aggregate { group_by; aggs; input } ->
      let agg a =
        Printf.sprintf "%s(%s%s)"
          (Sql_ast.agg_fn_to_string a.agg_fn)
          (if a.agg_distinct then "DISTINCT " else "")
          (match a.agg_arg with None -> "*" | Some e -> cexpr_to_string e)
      in
      op_line indent
        (Printf.sprintf "Aggregate group=[%s] aggs=[%s]"
           (String.concat ", " (Array.to_list (Array.map cexpr_to_string group_by)))
           (String.concat ", " (Array.to_list (Array.map agg aggs))));
      go (indent + 1) input
    | Distinct input ->
      op_line indent "Distinct";
      go (indent + 1) input
    | Union_all inputs ->
      op_line indent "UnionAll";
      List.iter (go (indent + 1)) inputs
    | Limit { limit; offset; input } ->
      op_line indent
        (Printf.sprintf "Limit%s%s"
           (match limit with Some n -> Printf.sprintf " limit=%d" n | None -> "")
           (match offset with Some n -> Printf.sprintf " offset=%d" n | None -> ""));
      go (indent + 1) input
    | Exchange { inputs; workers } ->
      op_line indent (Printf.sprintf "Exchange workers=%d" workers);
      List.iter (go (indent + 1)) inputs
    | Structural_join
        { left; right; interval_on_left; left_doc; right_doc; lo; hi; pos;
          lo_incl; hi_incl; cond; _ } ->
      op_line indent
        (Printf.sprintf "StructuralJoin interval=%s doc (%s) = (%s) pos %s in %s%s, %s%s%s"
           (if interval_on_left then "left" else "right")
           (cexpr_to_string left_doc) (cexpr_to_string right_doc)
           (cexpr_to_string pos)
           (if lo_incl then "[" else "(")
           (cexpr_to_string lo) (cexpr_to_string hi)
           (if hi_incl then "]" else ")")
           (match cond with None -> "" | Some c -> " residual " ^ cexpr_to_string c));
      go (indent + 1) left;
      go (indent + 1) right
  in
  go 0 plan;
  Buffer.contents buf
