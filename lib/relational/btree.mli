(** B+tree over composite SQL keys.

    Ordered secondary indexes use this structure: keys are tuples of
    {!Value.t} compared lexicographically with {!Value.compare_total};
    each key holds a posting list of payloads (row ids). Leaves are
    chained for range scans, which back the numeric range predicates the
    paper calls out for annotation data (sequence length, chromosome
    location, homology scores).

    Deletion is by posting-list removal; a key whose posting list empties
    is dropped from its leaf without rebalancing (standard lazy deletion),
    so occupancy invariants apply to insert-only trees while ordering
    invariants always hold. *)

type key = Value.t array

type 'a t

val compare_key : key -> key -> int
(** Lexicographic over {!Value.compare_total}; the one key order shared
    by this tree and the paged on-disk tree. *)

val create : ?fanout:int -> unit -> 'a t
(** [fanout] is the maximum number of keys per node (default 32, min 4). *)

val insert : 'a t -> key -> 'a -> unit
(** Append a payload to the key's posting list (duplicates allowed). *)

val remove : 'a t -> key -> ('a -> bool) -> unit
(** Remove all payloads satisfying the predicate from the key's postings. *)

val find : 'a t -> key -> 'a list
(** Postings for an exact key, in insertion order; [[]] if absent. *)

val mem : 'a t -> key -> bool
(** Key presence, without materialising the posting list. *)

val range :
  ?lo:key * bool -> ?hi:key * bool -> 'a t -> (key * 'a) Seq.t
(** All entries with [lo <= k <= hi] (bounds optional; booleans select
    inclusive), in ascending key order. *)

val iter : (key -> 'a list -> unit) -> 'a t -> unit
(** In ascending key order. *)

val cardinal : 'a t -> int
(** Number of distinct keys. *)

val entry_count : 'a t -> int
(** Total number of payloads. *)

val height : 'a t -> int

val check_invariants : 'a t -> (unit, string) result
(** Verifies key ordering within and across nodes, parent/child separator
    consistency, uniform leaf depth, and leaf chaining. *)
