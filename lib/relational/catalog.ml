type t = {
  tables : (string, Table.t) Hashtbl.t;
  index_owner : (string, string) Hashtbl.t;  (* index name -> table name *)
  stats : (string, Stats.table_stats) Hashtbl.t;  (* table name -> ANALYZE snapshot *)
  version : int Atomic.t;
      (* bumped on every DDL / DML / ANALYZE; plan caches key on it.
         Atomic: stress tests read it from several domains at once. *)
}

let normalize = String.lowercase_ascii

let create () =
  { tables = Hashtbl.create 16;
    index_owner = Hashtbl.create 16;
    stats = Hashtbl.create 16;
    version = Atomic.make 0 }

let version t = Atomic.get t.version
let bump_version t = Atomic.incr t.version

let find_stats t name = Hashtbl.find_opt t.stats (normalize name)

let set_stats t name st = Hashtbl.replace t.stats (normalize name) st

let find_table t name = Hashtbl.find_opt t.tables (normalize name)

let add_table t table =
  let name = normalize (Table.schema table).Schema.table_name in
  if Hashtbl.mem t.tables name then
    Error (Printf.sprintf "table %S already exists" name)
  else begin
    Hashtbl.add t.tables name table;
    (* register the implicit primary-key index if any *)
    List.iter
      (fun idx -> Hashtbl.replace t.index_owner (normalize (Index.name idx)) name)
      (Table.indexes table);
    Ok ()
  end

let drop_table t name =
  let name = normalize name in
  match Hashtbl.find_opt t.tables name with
  | None -> false
  | Some table ->
    List.iter
      (fun idx -> Hashtbl.remove t.index_owner (normalize (Index.name idx)))
      (Table.indexes table);
    Hashtbl.remove t.tables name;
    Hashtbl.remove t.stats name;
    true

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []
  |> List.sort String.compare

let add_index ?(attach = false) t ~table idx =
  let tname = normalize table in
  let iname = normalize (Index.name idx) in
  match Hashtbl.find_opt t.tables tname with
  | None -> Error (Printf.sprintf "no such table %S" tname)
  | Some tbl ->
    if Hashtbl.mem t.index_owner iname then
      Error (Printf.sprintf "index %S already exists" iname)
    else begin
      match
        (* attach: the index is already populated (paged index re-opened
           after a clean shutdown); skip the build scan *)
        if attach then Ok (Table.attach_index tbl idx)
        else Table.add_index tbl idx
      with
      | Error _ as e -> e
      | Ok () ->
        Hashtbl.add t.index_owner iname tname;
        Ok ()
    end

let drop_index t name =
  let iname = normalize name in
  match Hashtbl.find_opt t.index_owner iname with
  | None -> false
  | Some tname ->
    (match Hashtbl.find_opt t.tables tname with
     | None -> false
     | Some tbl ->
       let dropped =
         (* index names inside tables keep their original case *)
         match
           List.find_opt
             (fun i -> normalize (Index.name i) = iname)
             (Table.indexes tbl)
         with
         | Some i -> Table.drop_index tbl (Index.name i)
         | None -> false
       in
       if dropped then Hashtbl.remove t.index_owner iname;
       dropped)

let find_index t name =
  let iname = normalize name in
  match Hashtbl.find_opt t.index_owner iname with
  | None -> None
  | Some tname ->
    (match Hashtbl.find_opt t.tables tname with
     | None -> None
     | Some tbl ->
       (match
          List.find_opt (fun i -> normalize (Index.name i) = iname) (Table.indexes tbl)
        with
        | Some i -> Some (tbl, i)
        | None -> None))
