type op =
  | Begin of int
  | Insert of { txid : int; table : string; row : Value.t array; rowid : int }
  | Delete of { txid : int; table : string; rowid : int }
  | Update of { txid : int; table : string; rowid : int; row : Value.t array }
  | Commit of int
  | Rollback of int
  | Ddl of string
  | Load of { txid : int; table : string; spool : string; rows : int; first : int }

type t = {
  file_path : string;
  mutable oc : out_channel;
  mutable base : int;     (* logical index of the file's first data record *)
  mutable records : int;  (* complete data records currently in the file *)
  mu : Mutex.t;
  (* guards the live appender: sessions append concurrently, and a
     periodic checkpoint swaps [oc] underneath them in [truncate_prefix] *)
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Field encoding: '|' separates fields; '%', '|' and newlines are
   percent-escaped so any SQL text or string value round-trips. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string buf "%25"
      | '|' -> Buffer.add_string buf "%7C"
      | '\n' -> Buffer.add_string buf "%0A"
      | '\r' -> Buffer.add_string buf "%0D"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if s.[i] = '%' && i + 2 < n then begin
      let code = String.sub s (i + 1) 2 in
      (match int_of_string_opt ("0x" ^ code) with
       | Some c -> Buffer.add_char buf (Char.chr c)
       | None -> failwith "WAL: bad escape");
      go (i + 3)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let encode_value = function
  | Value.Null -> "N"
  | Value.Int i -> "I" ^ string_of_int i
  | Value.Float f -> "F" ^ Printf.sprintf "%h" f
  | Value.Text s -> "T" ^ escape s
  | Value.Bool b -> if b then "B1" else "B0"

let decode_value s =
  if s = "" then failwith "WAL: empty value field"
  else
    let payload = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'N' -> Value.Null
    | 'I' -> Value.Int (int_of_string payload)
    | 'F' -> Value.Float (float_of_string payload)
    | 'T' -> Value.Text (unescape payload)
    | 'B' -> Value.Bool (payload = "1")
    | _ -> failwith "WAL: bad value tag"

(* Rows carry an explicit arity so the empty row is distinguishable from a
   row holding one empty field. *)
let encode_row row =
  String.concat "|"
    (string_of_int (Array.length row)
     :: Array.to_list (Array.map encode_value row))

let decode_row fields =
  match fields with
  | [] -> failwith "WAL: missing row arity"
  | arity :: cells ->
    let n = int_of_string arity in
    if List.length cells <> n then failwith "WAL: row arity mismatch";
    Array.of_list (List.map decode_value cells)

(* Every record ends with a '.' sentinel field so a torn tail (missing
   sentinel) is detectable. Insert carries the rowid it was assigned and
   Load the first rowid of its appended range, so replaying a record
   whose rows are already present is detectable (idempotent replay — the
   foundation WAL shipping and checkpoint-truncated recovery stand on). *)
let encode op =
  let body =
    match op with
    | Begin txid -> Printf.sprintf "BEG|%d" txid
    | Insert { txid; table; row; rowid } ->
      Printf.sprintf "INS|%d|%s|%d|%s" txid (escape table) rowid (encode_row row)
    | Delete { txid; table; rowid } ->
      Printf.sprintf "DEL|%d|%s|%d" txid (escape table) rowid
    | Update { txid; table; rowid; row } ->
      Printf.sprintf "UPD|%d|%s|%d|%s" txid (escape table) rowid (encode_row row)
    | Commit txid -> Printf.sprintf "COM|%d" txid
    | Rollback txid -> Printf.sprintf "RBK|%d" txid
    | Ddl sql -> Printf.sprintf "DDL|%s" (escape sql)
    | Load { txid; table; spool; rows; first } ->
      Printf.sprintf "LOD|%d|%s|%s|%d|%d" txid (escape table) (escape spool)
        rows first
  in
  body ^ "|."

let decode line =
  match String.split_on_char '|' line with
  | [] -> None
  | fields ->
    let rec split_last acc = function
      | [] -> None
      | [ last ] -> Some (List.rev acc, last)
      | x :: rest -> split_last (x :: acc) rest
    in
    (match split_last [] fields with
     | Some (fields, ".") ->
       (try
          match fields with
          | [ "BEG"; txid ] -> Some (Begin (int_of_string txid))
          | [ "COM"; txid ] -> Some (Commit (int_of_string txid))
          | [ "RBK"; txid ] -> Some (Rollback (int_of_string txid))
          | [ "DDL"; sql ] -> Some (Ddl (unescape sql))
          | "INS" :: txid :: table :: rowid :: row ->
            Some (Insert { txid = int_of_string txid; table = unescape table;
                           rowid = int_of_string rowid; row = decode_row row })
          | [ "DEL"; txid; table; rowid ] ->
            Some (Delete { txid = int_of_string txid; table = unescape table;
                           rowid = int_of_string rowid })
          | "UPD" :: txid :: table :: rowid :: row ->
            Some (Update { txid = int_of_string txid; table = unescape table;
                           rowid = int_of_string rowid; row = decode_row row })
          | [ "LOD"; txid; table; spool; rows; first ] ->
            Some (Load { txid = int_of_string txid; table = unescape table;
                         spool = unescape spool; rows = int_of_string rows;
                         first = int_of_string first })
          | _ -> None
        with Failure _ -> None)
     | _ -> None (* torn record: sentinel missing *))

(* The base header: a checkpoint-truncated log starts with "BAS|<n>|."
   declaring the logical index of the first data record that follows. A
   log that was never truncated has no header and base 0. The header is
   not an [op] — every file-level reader skips it. *)
let encode_base n = Printf.sprintf "BAS|%d|." n

let is_base_line line =
  String.length line >= 4 && String.sub line 0 4 = "BAS|"

let decode_base line =
  match String.split_on_char '|' line with
  | [ "BAS"; n; "." ] -> int_of_string_opt n
  | _ -> None

(* Complete lines of a log file, split into (base, data lines, torn tail
   present). Only the final line may be unterminated. *)
let read_lines file_path =
  if not (Sys.file_exists file_path) then (0, [])
  else begin
    let ic = open_in_bin file_path in
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    let complete =
      match String.rindex_opt content '\n' with
      | Some i -> String.sub content 0 i
      | None -> ""
    in
    let lines =
      if complete = "" then [] else String.split_on_char '\n' complete
    in
    match lines with
    | first :: rest when is_base_line first ->
      (match decode_base first with
       | Some b -> (b, rest)
       | None -> failwith "WAL: corrupt base header")
    | lines -> (0, lines)
  end

let read_base file_path = fst (read_lines file_path)

let open_log file_path =
  let base, lines = read_lines file_path in
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 file_path in
  { file_path; oc; base; records = List.length lines; mu = Mutex.create () }

let append t op =
  locked t @@ fun () ->
  output_string t.oc (encode op);
  output_char t.oc '\n';
  t.records <- t.records + 1

let append_line t line =
  locked t @@ fun () ->
  output_string t.oc line;
  output_char t.oc '\n';
  t.records <- t.records + 1

let flush t = locked t @@ fun () -> Stdlib.flush t.oc

let close t =
  locked t @@ fun () ->
  Stdlib.flush t.oc;
  close_out t.oc

let path t = t.file_path

let base t = locked t @@ fun () -> t.base

let position t = locked t @@ fun () -> t.base + t.records

(* A record is torn only as an unterminated final chunk: '\n' is the last
   byte of every append and never occurs inside a record (escaped). Cut
   the chunk off so post-recovery appends start on a fresh line instead
   of merging into the torn record. *)
let trim_torn_tail file_path =
  if Sys.file_exists file_path then begin
    let ic = open_in_bin file_path in
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    if n > 0 && content.[n - 1] <> '\n' then begin
      let keep =
        match String.rindex_opt content '\n' with
        | Some i -> i + 1
        | None -> 0
      in
      Unix.truncate file_path keep
    end
  end

let read_ops file_path =
  let _, lines = read_lines file_path in
  let n = List.length lines in
  List.concat
    (List.mapi
       (fun i line ->
         match decode line with
         | Some op -> [ op ]
         | None ->
           if i = n - 1 then []
           else failwith (Printf.sprintf "WAL: corrupt record at line %d" (i + 1)))
       lines)

let committed_ops ops =
  let committed = Hashtbl.create 16 in
  List.iter
    (function Commit txid -> Hashtbl.replace committed txid () | _ -> ())
    ops;
  List.filter
    (function
      | Ddl _ -> true
      | Begin txid | Commit txid | Rollback txid -> Hashtbl.mem committed txid
      | Insert { txid; _ } | Delete { txid; _ } | Update { txid; _ }
      | Load { txid; _ } ->
        Hashtbl.mem committed txid)
    ops

(* Logical record count (base + complete data records). The disk
   backend's manifest compares against this, so positions stay stable
   across prefix truncation. [trim_torn_tail] must run first so every
   line is one record. *)
let line_count file_path =
  let base, lines = read_lines file_path in
  base + List.length lines

(* Complete data records with logical index >= [pos] (the replication
   sender's tail read). [`Truncated base] when [pos] predates the
   file's base — the requested history was dropped by a checkpoint. *)
let tail_from file_path ~pos =
  let b, lines = read_lines file_path in
  if pos < b then `Truncated b
  else
    `Ok
      (List.filteri (fun i _ -> b + i >= pos) lines)

(* Ops with logical index >= [pos]; Failure when [pos] predates the
   base (the pages ahead of a truncated log cannot be rebuilt). *)
let ops_from file_path ~pos =
  match tail_from file_path ~pos with
  | `Truncated b ->
    failwith
      (Printf.sprintf
         "WAL: records before logical position %d were truncated (need %d)" b
         pos)
  | `Ok lines ->
    List.filter_map decode lines

(* Drop every record with logical index < [upto], atomically (write a
   tmp beside the log, rename over it) and re-point the live appender at
   the new file. Returns the spool paths referenced by dropped Load
   records so the caller can delete them — they can never be replayed
   again. Clamped to [position t]; a no-op when [upto <= base t]. *)
let truncate_prefix t ~upto =
  locked t @@ fun () ->
  let upto = min upto (t.base + t.records) in
  if upto <= t.base then []
  else begin
    Stdlib.flush t.oc;
    let b, lines = read_lines t.file_path in
    let dropped, kept =
      List.partition (fun (i, _) -> b + i < upto)
        (List.mapi (fun i l -> (i, l)) lines)
    in
    let spools =
      List.filter_map
        (fun (_, l) ->
          match decode l with
          | Some (Load { spool; _ }) -> Some spool
          | _ -> None)
        dropped
    in
    let tmp = t.file_path ^ ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc (encode_base upto);
    output_char oc '\n';
    List.iter
      (fun (_, l) ->
        output_string oc l;
        output_char oc '\n')
      kept;
    close_out oc;
    close_out t.oc;
    Sys.rename tmp t.file_path;
    t.oc <- open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 t.file_path;
    t.base <- upto;
    t.records <- List.length kept;
    spools
  end
