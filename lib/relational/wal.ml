type op =
  | Begin of int
  | Insert of { txid : int; table : string; row : Value.t array }
  | Delete of { txid : int; table : string; rowid : int }
  | Update of { txid : int; table : string; rowid : int; row : Value.t array }
  | Commit of int
  | Rollback of int
  | Ddl of string
  | Load of { txid : int; table : string; spool : string; rows : int }

type t = {
  file_path : string;
  oc : out_channel;
}

(* Field encoding: '|' separates fields; '%', '|' and newlines are
   percent-escaped so any SQL text or string value round-trips. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string buf "%25"
      | '|' -> Buffer.add_string buf "%7C"
      | '\n' -> Buffer.add_string buf "%0A"
      | '\r' -> Buffer.add_string buf "%0D"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if s.[i] = '%' && i + 2 < n then begin
      let code = String.sub s (i + 1) 2 in
      (match int_of_string_opt ("0x" ^ code) with
       | Some c -> Buffer.add_char buf (Char.chr c)
       | None -> failwith "WAL: bad escape");
      go (i + 3)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let encode_value = function
  | Value.Null -> "N"
  | Value.Int i -> "I" ^ string_of_int i
  | Value.Float f -> "F" ^ Printf.sprintf "%h" f
  | Value.Text s -> "T" ^ escape s
  | Value.Bool b -> if b then "B1" else "B0"

let decode_value s =
  if s = "" then failwith "WAL: empty value field"
  else
    let payload = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'N' -> Value.Null
    | 'I' -> Value.Int (int_of_string payload)
    | 'F' -> Value.Float (float_of_string payload)
    | 'T' -> Value.Text (unescape payload)
    | 'B' -> Value.Bool (payload = "1")
    | _ -> failwith "WAL: bad value tag"

(* Rows carry an explicit arity so the empty row is distinguishable from a
   row holding one empty field. *)
let encode_row row =
  String.concat "|"
    (string_of_int (Array.length row)
     :: Array.to_list (Array.map encode_value row))

let decode_row fields =
  match fields with
  | [] -> failwith "WAL: missing row arity"
  | arity :: cells ->
    let n = int_of_string arity in
    if List.length cells <> n then failwith "WAL: row arity mismatch";
    Array.of_list (List.map decode_value cells)

(* Every record ends with a '.' sentinel field so a torn tail (missing
   sentinel) is detectable. *)
let encode op =
  let body =
    match op with
    | Begin txid -> Printf.sprintf "BEG|%d" txid
    | Insert { txid; table; row } ->
      Printf.sprintf "INS|%d|%s|%s" txid (escape table) (encode_row row)
    | Delete { txid; table; rowid } ->
      Printf.sprintf "DEL|%d|%s|%d" txid (escape table) rowid
    | Update { txid; table; rowid; row } ->
      Printf.sprintf "UPD|%d|%s|%d|%s" txid (escape table) rowid (encode_row row)
    | Commit txid -> Printf.sprintf "COM|%d" txid
    | Rollback txid -> Printf.sprintf "RBK|%d" txid
    | Ddl sql -> Printf.sprintf "DDL|%s" (escape sql)
    | Load { txid; table; spool; rows } ->
      Printf.sprintf "LOD|%d|%s|%s|%d" txid (escape table) (escape spool) rows
  in
  body ^ "|."

let decode line =
  match String.split_on_char '|' line with
  | [] -> None
  | fields ->
    let rec split_last acc = function
      | [] -> None
      | [ last ] -> Some (List.rev acc, last)
      | x :: rest -> split_last (x :: acc) rest
    in
    (match split_last [] fields with
     | Some (fields, ".") ->
       (try
          match fields with
          | [ "BEG"; txid ] -> Some (Begin (int_of_string txid))
          | [ "COM"; txid ] -> Some (Commit (int_of_string txid))
          | [ "RBK"; txid ] -> Some (Rollback (int_of_string txid))
          | [ "DDL"; sql ] -> Some (Ddl (unescape sql))
          | "INS" :: txid :: table :: row ->
            Some (Insert { txid = int_of_string txid; table = unescape table;
                           row = decode_row row })
          | [ "DEL"; txid; table; rowid ] ->
            Some (Delete { txid = int_of_string txid; table = unescape table;
                           rowid = int_of_string rowid })
          | "UPD" :: txid :: table :: rowid :: row ->
            Some (Update { txid = int_of_string txid; table = unescape table;
                           rowid = int_of_string rowid; row = decode_row row })
          | [ "LOD"; txid; table; spool; rows ] ->
            Some (Load { txid = int_of_string txid; table = unescape table;
                         spool = unescape spool; rows = int_of_string rows })
          | _ -> None
        with Failure _ -> None)
     | _ -> None (* torn record: sentinel missing *))

let open_log file_path =
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 file_path in
  { file_path; oc }

let append t op =
  output_string t.oc (encode op);
  output_char t.oc '\n'

let flush t = Stdlib.flush t.oc

let close t =
  Stdlib.flush t.oc;
  close_out t.oc

let path t = t.file_path

(* A record is torn only as an unterminated final chunk: '\n' is the last
   byte of every append and never occurs inside a record (escaped). Cut
   the chunk off so post-recovery appends start on a fresh line instead
   of merging into the torn record. *)
let trim_torn_tail file_path =
  if Sys.file_exists file_path then begin
    let ic = open_in_bin file_path in
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    if n > 0 && content.[n - 1] <> '\n' then begin
      let keep =
        match String.rindex_opt content '\n' with
        | Some i -> i + 1
        | None -> 0
      in
      Unix.truncate file_path keep
    end
  end

let read_ops file_path =
  if not (Sys.file_exists file_path) then []
  else begin
    let ic = open_in_bin file_path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    let lines = List.rev !lines in
    let n = List.length lines in
    (* Only the final line may be torn; a bad interior line is corruption. *)
    List.concat
      (List.mapi
         (fun i line ->
           match decode line with
           | Some op -> [ op ]
           | None ->
             if i = n - 1 then []
             else failwith (Printf.sprintf "WAL: corrupt record at line %d" (i + 1)))
         lines)
  end

let committed_ops ops =
  let committed = Hashtbl.create 16 in
  List.iter
    (function Commit txid -> Hashtbl.replace committed txid () | _ -> ())
    ops;
  List.filter
    (function
      | Ddl _ -> true
      | Begin txid | Commit txid | Rollback txid -> Hashtbl.mem committed txid
      | Insert { txid; _ } | Delete { txid; _ } | Update { txid; _ }
      | Load { txid; _ } ->
        Hashtbl.mem committed txid)
    ops

(* Number of complete records currently in a log file (used by the disk
   backend's manifest: pages are only trusted when their recorded line
   count matches). [trim_torn_tail] must run first so every line is one
   record. *)
let line_count file_path =
  if not (Sys.file_exists file_path) then 0
  else begin
    let ic = open_in_bin file_path in
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    let count = ref 0 in
    String.iter (fun c -> if c = '\n' then incr count) content;
    !count
  end
