(** Volcano-style plan execution.

    Plans are compiled by {!Planner}; this module evaluates them lazily as
    row sequences. Blocking operators (sort, aggregate, distinct, hash-join
    build side) materialise internally. *)

exception Runtime_error of string

val run :
  Catalog.t -> ?params:Value.t array -> ?obs:Obs.profile ->
  ?cancel:Cancel.t -> ?view:Table.snap -> Plan.t -> Value.t array Seq.t
(** Evaluate a plan. [params] fills [CParam] slots of correlated
    subplans (the top level normally passes none). [obs], built with
    {!Obs.create} from the same physical plan, charges each operator
    with rows, probes, hash-build sizes and wall time as the result is
    consumed. [cancel] is consulted at every operator boundary: once the
    token fires (timeout or explicit cancel) the next row pull raises
    {!Cancel.Canceled}, including inside [Exchange] partitions running
    on other domains. [view] pins every table access (scans and index
    probes, on every Exchange worker) to one MVCC snapshot
    ({!Table.snap}); without it the executor reads the raw current
    state.
    @raise Runtime_error on evaluation failures (unknown table at run
    time, bad function arity, etc.).
    @raise Cancel.Canceled when [cancel] fires mid-execution. *)

val eval_expr :
  Catalog.t -> ?params:Value.t array -> Value.t array -> Plan.cexpr -> Value.t
(** Evaluate a compiled scalar expression against a row. *)

val like_match : ?escape:char -> pattern:string -> string -> bool
(** SQL LIKE with [%] and [_] wildcards (case-sensitive); [?escape]
    makes the following pattern character match itself literally. *)
