exception Canceled of string * string

let timeout_code = "TIMEOUT"
let canceled_code = "CANCELED"

type t = {
  deadline : float;  (* absolute Obs.now_s seconds; infinity = none *)
  fired : (string * string) option Atomic.t;
  mutable ticks : int;
      (* throttles the deadline clock: racy across domains by design —
         a lost increment only delays one clock check *)
}

let create ?(deadline = infinity) () =
  { deadline; fired = Atomic.make None; ticks = 0 }

let cancel ?(code = canceled_code) t message =
  ignore (Atomic.compare_and_set t.fired None (Some (code, message)))

let deadline_passed t = t.deadline < infinity && Obs.now_s () > t.deadline

let status t = Atomic.get t.fired

let fire_timeout t =
  cancel ~code:timeout_code t
    (Printf.sprintf "query exceeded its time budget (deadline %.3fs ago)"
       (Obs.now_s () -. t.deadline))

let check t =
  (match Atomic.get t.fired with
   | Some (code, message) -> raise (Canceled (code, message))
   | None -> ());
  if t.deadline < infinity then begin
    t.ticks <- t.ticks + 1;
    if t.ticks land 63 = 0 && deadline_passed t then begin
      fire_timeout t;
      match Atomic.get t.fired with
      | Some (code, message) -> raise (Canceled (code, message))
      | None -> ()
    end
  end
