(* Abstract syntax of the SQL dialect understood by the engine.

   The dialect covers what the XQ2SQL transformer emits plus conventional
   DDL/DML: SELECT with joins, subqueries (IN / EXISTS / scalar), GROUP BY
   with HAVING, ORDER BY, LIMIT/OFFSET, LIKE, CASE; INSERT/UPDATE/DELETE;
   CREATE/DROP TABLE and INDEX; transactions; EXPLAIN. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Concat                       (* || *)
  | And | Or
  | Eq | Neq | Lt | Le | Gt | Ge

type unop = Neg | Not

type agg_fn = Count | Sum | Avg | Min | Max

type order_dir = Asc | Desc

type expr =
  | Lit of Value.t
  | Col of { table : string option; column : string }
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Fn of string * expr list     (* scalar functions, name uppercased *)
  | Like of { subject : expr; pattern : expr; escape : expr option; negated : bool }
  | In_list of { subject : expr; candidates : expr list; negated : bool }
  | In_select of { subject : expr; select : select; negated : bool }
  | Exists of { select : select; negated : bool }
  | Is_null of { subject : expr; negated : bool }
  | Between of { subject : expr; low : expr; high : expr; negated : bool }
  | Case of { branches : (expr * expr) list; else_ : expr option }
  | Agg of { fn : agg_fn; arg : expr option; distinct : bool }
      (* [arg = None] only for COUNT star *)
  | Scalar_subquery of select

and projection =
  | Star
  | Table_star of string
  | Proj of expr * string option   (* expression AS alias *)

and table_ref =
  | Table of { name : string; alias : string option }
  | Join of { left : table_ref; kind : join_kind; right : table_ref; on : expr option }
  | Derived of { select : select; alias : string }

and join_kind = Inner | Left_outer | Cross

and select = {
  distinct : bool;
  projections : projection list;
  from : table_ref list;           (* comma list: implicit cross join *)
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * order_dir) list;
  limit : int option;
  offset : int option;
}

type column_def = {
  cd_name : string;
  cd_type : Value.ty;
  cd_not_null : bool;
  cd_primary_key : bool;
}

type index_kind = Hash_index | Btree_index

(* A query expression: one or more SELECT cores combined with UNION
   [ALL]. Plain UNION applies set semantics (duplicates removed). *)
type query = {
  first : select;
  unions : (bool (* all? *) * select) list;
}

type stmt =
  | Select_stmt of select
  | Query_stmt of query
  | Insert of { table : string; columns : string list option; rows : expr list list }
  | Update of { table : string; assignments : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Create_table of {
      name : string;
      if_not_exists : bool;
      columns : column_def list;
      primary_key : string list;  (* table-level constraint, may be empty *)
    }
  | Create_index of {
      name : string;
      table : string;
      columns : string list;
      unique : bool;
      kind : index_kind;
    }
  | Drop_table of { name : string; if_exists : bool }
  | Drop_index of { name : string; if_exists : bool }
  | Begin_txn
  | Commit_txn
  | Rollback_txn
  | Explain of stmt
  | Explain_analyze of stmt   (* execute, then render the profiled plan *)
  | Analyze of string option  (* collect statistics for one table, or all *)

(* ------------------------------------------------------------------ *)
(* Printing (round-trips through the parser)                           *)
(* ------------------------------------------------------------------ *)

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Concat -> "||"
  | And -> "AND" | Or -> "OR"
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let agg_fn_to_string = function
  | Count -> "COUNT" | Sum -> "SUM" | Avg -> "AVG" | Min -> "MIN" | Max -> "MAX"

let rec expr_to_string = function
  | Lit v -> Value.to_literal v
  | Col { table = None; column } -> column
  | Col { table = Some t; column } -> t ^ "." ^ column
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op) (expr_to_string b)
  | Unop (Neg, e) -> Printf.sprintf "(-%s)" (expr_to_string e)
  | Unop (Not, e) -> Printf.sprintf "(NOT %s)" (expr_to_string e)
  | Fn (name, args) ->
    Printf.sprintf "%s(%s)" name (String.concat ", " (List.map expr_to_string args))
  | Like { subject; pattern; escape; negated } ->
    let esc = match escape with
      | Some e -> " ESCAPE " ^ expr_to_string e
      | None -> ""
    in
    Printf.sprintf "(%s %sLIKE %s%s)" (expr_to_string subject)
      (if negated then "NOT " else "") (expr_to_string pattern) esc
  | In_list { subject; candidates; negated } ->
    Printf.sprintf "(%s %sIN (%s))" (expr_to_string subject)
      (if negated then "NOT " else "")
      (String.concat ", " (List.map expr_to_string candidates))
  | In_select { subject; select; negated } ->
    Printf.sprintf "(%s %sIN (%s))" (expr_to_string subject)
      (if negated then "NOT " else "") (select_to_string select)
  | Exists { select; negated } ->
    Printf.sprintf "(%sEXISTS (%s))" (if negated then "NOT " else "")
      (select_to_string select)
  | Is_null { subject; negated } ->
    Printf.sprintf "(%s IS %sNULL)" (expr_to_string subject) (if negated then "NOT " else "")
  | Between { subject; low; high; negated } ->
    Printf.sprintf "(%s %sBETWEEN %s AND %s)" (expr_to_string subject)
      (if negated then "NOT " else "") (expr_to_string low) (expr_to_string high)
  | Case { branches; else_ } ->
    let b =
      String.concat " "
        (List.map
           (fun (c, r) ->
             Printf.sprintf "WHEN %s THEN %s" (expr_to_string c) (expr_to_string r))
           branches)
    in
    let e = match else_ with
      | Some e -> " ELSE " ^ expr_to_string e
      | None -> ""
    in
    Printf.sprintf "(CASE %s%s END)" b e
  | Agg { fn; arg = None; distinct = _ } ->
    Printf.sprintf "%s(*)" (agg_fn_to_string fn)
  | Agg { fn; arg = Some e; distinct } ->
    Printf.sprintf "%s(%s%s)" (agg_fn_to_string fn)
      (if distinct then "DISTINCT " else "") (expr_to_string e)
  | Scalar_subquery s -> Printf.sprintf "(%s)" (select_to_string s)

and projection_to_string = function
  | Star -> "*"
  | Table_star t -> t ^ ".*"
  | Proj (e, None) -> expr_to_string e
  | Proj (e, Some a) -> Printf.sprintf "%s AS %s" (expr_to_string e) a

and table_ref_to_string = function
  | Table { name; alias = None } -> name
  | Table { name; alias = Some a } -> Printf.sprintf "%s AS %s" name a
  | Join { left; kind; right; on } ->
    let k = match kind with
      | Inner -> "JOIN"
      | Left_outer -> "LEFT JOIN"
      | Cross -> "CROSS JOIN"
    in
    let on_s = match on with
      | Some e -> " ON " ^ expr_to_string e
      | None -> ""
    in
    Printf.sprintf "%s %s %s%s" (table_ref_to_string left) k (table_ref_to_string right) on_s
  | Derived { select; alias } ->
    Printf.sprintf "(%s) AS %s" (select_to_string select) alias

and select_to_string s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if s.distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf
    (String.concat ", " (List.map projection_to_string s.projections));
  if s.from <> [] then begin
    Buffer.add_string buf " FROM ";
    Buffer.add_string buf (String.concat ", " (List.map table_ref_to_string s.from))
  end;
  (match s.where with
   | Some e -> Buffer.add_string buf (" WHERE " ^ expr_to_string e)
   | None -> ());
  if s.group_by <> [] then
    Buffer.add_string buf
      (" GROUP BY " ^ String.concat ", " (List.map expr_to_string s.group_by));
  (match s.having with
   | Some e -> Buffer.add_string buf (" HAVING " ^ expr_to_string e)
   | None -> ());
  if s.order_by <> [] then begin
    let item (e, d) =
      expr_to_string e ^ (match d with Asc -> " ASC" | Desc -> " DESC")
    in
    Buffer.add_string buf (" ORDER BY " ^ String.concat ", " (List.map item s.order_by))
  end;
  (match s.limit with
   | Some n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n)
   | None -> ());
  (match s.offset with
   | Some n -> Buffer.add_string buf (Printf.sprintf " OFFSET %d" n)
   | None -> ());
  Buffer.contents buf

let query_to_string q =
  select_to_string q.first
  ^ String.concat ""
      (List.map
         (fun (all, s) ->
           (if all then " UNION ALL " else " UNION ") ^ select_to_string s)
         q.unions)

let rec stmt_to_string = function
  | Select_stmt s -> select_to_string s
  | Query_stmt q -> query_to_string q
  | Insert { table; columns; rows } ->
    let cols = match columns with
      | Some cs -> Printf.sprintf " (%s)" (String.concat ", " cs)
      | None -> ""
    in
    let row r = "(" ^ String.concat ", " (List.map expr_to_string r) ^ ")" in
    Printf.sprintf "INSERT INTO %s%s VALUES %s" table cols
      (String.concat ", " (List.map row rows))
  | Update { table; assignments; where } ->
    let assign (c, e) = Printf.sprintf "%s = %s" c (expr_to_string e) in
    let w = match where with Some e -> " WHERE " ^ expr_to_string e | None -> "" in
    Printf.sprintf "UPDATE %s SET %s%s" table
      (String.concat ", " (List.map assign assignments)) w
  | Delete { table; where } ->
    let w = match where with Some e -> " WHERE " ^ expr_to_string e | None -> "" in
    Printf.sprintf "DELETE FROM %s%s" table w
  | Create_table { name; if_not_exists; columns; primary_key } ->
    let col c =
      Printf.sprintf "%s %s%s%s" c.cd_name (Value.ty_to_string c.cd_type)
        (if c.cd_not_null then " NOT NULL" else "")
        (if c.cd_primary_key then " PRIMARY KEY" else "")
    in
    let pk = match primary_key with
      | [] -> ""
      | ks -> Printf.sprintf ", PRIMARY KEY (%s)" (String.concat ", " ks)
    in
    Printf.sprintf "CREATE TABLE %s%s (%s%s)"
      (if if_not_exists then "IF NOT EXISTS " else "") name
      (String.concat ", " (List.map col columns)) pk
  | Create_index { name; table; columns; unique; kind } ->
    Printf.sprintf "CREATE %s%sINDEX %s ON %s (%s)"
      (if unique then "UNIQUE " else "")
      (match kind with Hash_index -> "HASH " | Btree_index -> "")
      name table (String.concat ", " columns)
  | Drop_table { name; if_exists } ->
    Printf.sprintf "DROP TABLE %s%s" (if if_exists then "IF EXISTS " else "") name
  | Drop_index { name; if_exists } ->
    Printf.sprintf "DROP INDEX %s%s" (if if_exists then "IF EXISTS " else "") name
  | Begin_txn -> "BEGIN"
  | Commit_txn -> "COMMIT"
  | Rollback_txn -> "ROLLBACK"
  | Explain s -> "EXPLAIN " ^ stmt_to_string s
  | Explain_analyze s -> "EXPLAIN ANALYZE " ^ stmt_to_string s
  | Analyze None -> "ANALYZE"
  | Analyze (Some table) -> "ANALYZE " ^ table
