exception Runtime_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

type ctx = {
  catalog : Catalog.t;
  params : Value.t array;
  obs : Obs.profile option;   (* per-operator stats, when profiling *)
  cancel : Cancel.t option;   (* cooperative per-query cancellation *)
}

module Key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    && (let ok = ref true in
        Array.iteri (fun i x -> if not (Value.equal x b.(i)) then ok := false) a;
        !ok)

  let hash k = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 k
end

module KeyTbl = Hashtbl.Make (Key)

(* SQL LIKE: % = any run, _ = any single char; a character preceded by
   the ESCAPE character (if any) matches itself literally. *)
let like_match ?escape ~pattern s =
  let pn = String.length pattern and sn = String.length s in
  (* memoized recursion over (pi, si) *)
  let memo = Hashtbl.create 16 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
      let r =
        if pi >= pn then si >= sn
        else
          match pattern.[pi] with
          | c when escape = Some c ->
            (* a trailing escape character matches nothing *)
            pi + 1 < pn && si < sn
            && s.[si] = pattern.[pi + 1]
            && go (pi + 2) (si + 1)
          | '%' -> go (pi + 1) si || (si < sn && go pi (si + 1))
          | '_' -> si < sn && go (pi + 1) (si + 1)
          | c -> si < sn && s.[si] = c && go (pi + 1) (si + 1)
      in
      Hashtbl.add memo (pi, si) r;
      r
  in
  go 0 0

(* ---------------- scalar semantics ---------------- *)

let numeric_binop op a b =
  let open Value in
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y ->
    (match op with
     | Sql_ast.Add -> Int (x + y)
     | Sql_ast.Sub -> Int (x - y)
     | Sql_ast.Mul -> Int (x * y)
     | Sql_ast.Div -> if y = 0 then Null else Int (x / y)
     | Sql_ast.Mod -> if y = 0 then Null else Int (x mod y)
     | _ -> assert false)
  | (Int _ | Float _), (Int _ | Float _) ->
    let f = function Int i -> float_of_int i | Float f -> f | _ -> assert false in
    let x = f a and y = f b in
    (match op with
     | Sql_ast.Add -> Float (x +. y)
     | Sql_ast.Sub -> Float (x -. y)
     | Sql_ast.Mul -> Float (x *. y)
     | Sql_ast.Div -> if y = 0. then Null else Float (x /. y)
     | Sql_ast.Mod -> if y = 0. then Null else Float (Float.rem x y)
     | _ -> assert false)
  | _ -> error "arithmetic on non-numeric values (%s, %s)"
           (Value.to_literal a) (Value.to_literal b)

let comparison_binop op a b =
  match Value.sql_compare a b with
  | None -> Value.Null
  | Some c ->
    let r = match op with
      | Sql_ast.Eq -> c = 0
      | Sql_ast.Neq -> c <> 0
      | Sql_ast.Lt -> c < 0
      | Sql_ast.Le -> c <= 0
      | Sql_ast.Gt -> c > 0
      | Sql_ast.Ge -> c >= 0
      | _ -> assert false
    in
    Value.Bool r

(* Kleene 3VL *)
let and3 a b =
  match a, b with
  | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
  | Value.Bool true, Value.Bool true -> Value.Bool true
  | _ -> Value.Null

let or3 a b =
  match a, b with
  | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
  | Value.Bool false, Value.Bool false -> Value.Bool false
  | _ -> Value.Null

let not3 = function
  | Value.Bool b -> Value.Bool (not b)
  | _ -> Value.Null

let as_string = function
  | Value.Null -> None
  | v -> Some (Value.to_string v)

let as_int name = function
  | Value.Int i -> i
  | Value.Float f when Float.is_integer f -> int_of_float f
  | v -> error "%s expects an integer, got %s" name (Value.to_literal v)

let scalar_fn name (args : Value.t list) =
  let str1 f =
    match args with
    | [ v ] -> (match as_string v with None -> Value.Null | Some s -> f s)
    | _ -> error "%s expects 1 argument" name
  in
  match name, args with
  | "LOWER", _ -> str1 (fun s -> Value.Text (String.lowercase_ascii s))
  | "UPPER", _ -> str1 (fun s -> Value.Text (String.uppercase_ascii s))
  | "LENGTH", _ -> str1 (fun s -> Value.Int (String.length s))
  | "TRIM", _ -> str1 (fun s -> Value.Text (String.trim s))
  | "LTRIM", _ ->
    str1 (fun s ->
        let i = ref 0 in
        while !i < String.length s && (s.[!i] = ' ' || s.[!i] = '\t') do incr i done;
        Value.Text (String.sub s !i (String.length s - !i)))
  | "RTRIM", _ ->
    str1 (fun s ->
        let i = ref (String.length s) in
        while !i > 0 && (s.[!i - 1] = ' ' || s.[!i - 1] = '\t') do decr i done;
        Value.Text (String.sub s 0 !i))
  | "ABS", [ Value.Int i ] -> Value.Int (abs i)
  | "ABS", [ Value.Float f ] -> Value.Float (Float.abs f)
  | "ABS", [ Value.Null ] -> Value.Null
  | "ROUND", [ Value.Float f ] -> Value.Float (Float.round f)
  | "ROUND", [ Value.Int i ] -> Value.Int i
  | "ROUND", [ Value.Null ] -> Value.Null
  | "FLOOR", [ Value.Float f ] -> Value.Int (int_of_float (Float.floor f))
  | "FLOOR", [ Value.Int i ] -> Value.Int i
  | "CEIL", [ Value.Float f ] -> Value.Int (int_of_float (Float.ceil f))
  | "CEIL", [ Value.Int i ] -> Value.Int i
  | "SUBSTR", (subject :: start :: rest) ->
    (match as_string subject with
     | None -> Value.Null
     | Some s ->
       let n = String.length s in
       let start = as_int "SUBSTR" start in
       let start0 = if start > 0 then start - 1 else max 0 (n + start) in
       let len =
         match rest with
         | [] -> n - start0
         | [ l ] -> as_int "SUBSTR" l
         | _ -> error "SUBSTR expects 2 or 3 arguments"
       in
       let start0 = min (max start0 0) n in
       let len = min (max len 0) (n - start0) in
       Value.Text (String.sub s start0 len))
  | "INSTR", [ hay; needle ] ->
    (match as_string hay, as_string needle with
     | Some h, Some nd ->
       let hl = String.length h and nl = String.length nd in
       let rec find i =
         if i + nl > hl then 0
         else if String.sub h i nl = nd then i + 1
         else find (i + 1)
       in
       Value.Int (find 0)
     | _ -> Value.Null)
  | "REPLACE", [ subject; from_; to_ ] ->
    (match as_string subject, as_string from_, as_string to_ with
     | Some s, Some f, Some t when f <> "" ->
       let buf = Buffer.create (String.length s) in
       let fl = String.length f in
       let rec go i =
         if i >= String.length s then ()
         else if i + fl <= String.length s && String.sub s i fl = f then begin
           Buffer.add_string buf t;
           go (i + fl)
         end
         else begin
           Buffer.add_char buf s.[i];
           go (i + 1)
         end
       in
       go 0;
       Value.Text (Buffer.contents buf)
     | Some s, Some _, Some _ -> Value.Text s
     | _ -> Value.Null)
  | "COALESCE", args ->
    (try List.find (fun v -> v <> Value.Null) args with Not_found -> Value.Null)
  | "NULLIF", [ a; b ] -> if Value.equal a b then Value.Null else a
  | "TONUM", [ v ] ->
    (match v with
     | Value.Null -> Value.Null
     | Value.Int _ | Value.Float _ -> v
     | Value.Text s ->
       (match int_of_string_opt (String.trim s) with
        | Some i -> Value.Int i
        | None ->
          (match float_of_string_opt (String.trim s) with
           | Some f -> Value.Float f
           | None -> Value.Null))
     | Value.Bool b -> Value.Int (if b then 1 else 0))
  | "TOSTR", [ v ] ->
    (match v with Value.Null -> Value.Null | v -> Value.Text (Value.to_string v))
  | _, args -> error "unknown function %s/%d" name (List.length args)

(* ---------------- plans ---------------- *)

(* stat hooks; no-ops when not profiling *)
let probe = function
  | Some (s : Obs.op_stats) -> s.probes <- s.probes + 1
  | None -> ()

let built = function
  | Some (s : Obs.op_stats) -> s.build_rows <- s.build_rows + 1
  | None -> ()

let rec eval ctx row (e : Plan.cexpr) : Value.t =
  match e with
  | CLit v -> v
  | CCol i ->
    if i < 0 || i >= Array.length row then error "column slot %d out of range" i
    else row.(i)
  | CParam i ->
    if i < 0 || i >= Array.length ctx.params then error "parameter slot %d out of range" i
    else ctx.params.(i)
  | CBinop (op, a, b) ->
    (match op with
     | Add | Sub | Mul | Div | Mod -> numeric_binop op (eval ctx row a) (eval ctx row b)
     | Concat ->
       (match eval ctx row a, eval ctx row b with
        | Value.Null, _ | _, Value.Null -> Value.Null
        | va, vb -> Value.Text (Value.to_string va ^ Value.to_string vb))
     | And -> and3 (eval ctx row a) (eval ctx row b)
     | Or -> or3 (eval ctx row a) (eval ctx row b)
     | Eq | Neq | Lt | Le | Gt | Ge ->
       comparison_binop op (eval ctx row a) (eval ctx row b))
  | CUnop (Neg, e) ->
    (match eval ctx row e with
     | Value.Int i -> Value.Int (-i)
     | Value.Float f -> Value.Float (-.f)
     | Value.Null -> Value.Null
     | v -> error "cannot negate %s" (Value.to_literal v))
  | CUnop (Not, e) -> not3 (eval ctx row e)
  | CFn (name, args) -> scalar_fn name (List.map (eval ctx row) args)
  | CLike { subject; pattern; escape; negated } ->
    (match eval ctx row subject, eval ctx row pattern with
     | Value.Null, _ | _, Value.Null -> Value.Null
     | s, p ->
       (* SQL semantics: a NULL escape makes the whole predicate NULL;
          a non-NULL escape must be a single character *)
       let esc = Option.map (eval ctx row) escape in
       (match esc with
        | Some Value.Null -> Value.Null
        | _ ->
          let escape =
            match esc with
            | None -> None
            | Some v ->
              let e = Value.to_string v in
              if String.length e = 1 then Some e.[0]
              else error "ESCAPE expression must be a single character, got %S" e
          in
          let r =
            like_match ?escape ~pattern:(Value.to_string p) (Value.to_string s)
          in
          Value.Bool (if negated then not r else r)))
  | CIn_list { subject; candidates; negated } ->
    let v = eval ctx row subject in
    if v = Value.Null then Value.Null
    else begin
      let found = ref false and saw_null = ref false in
      List.iter
        (fun c ->
          let cv = eval ctx row c in
          if cv = Value.Null then saw_null := true
          else if Value.equal v cv then found := true)
        candidates;
      if !found then Value.Bool (not negated)
      else if !saw_null then Value.Null
      else Value.Bool negated
    end
  | CIs_null { subject; negated } ->
    let isnull = eval ctx row subject = Value.Null in
    Value.Bool (if negated then not isnull else isnull)
  | CBetween { subject; low; high; negated } ->
    let v = eval ctx row subject in
    let lo = comparison_binop Sql_ast.Ge v (eval ctx row low) in
    let hi = comparison_binop Sql_ast.Le v (eval ctx row high) in
    let r = and3 lo hi in
    if negated then not3 r else r
  | CCase { branches; else_ } ->
    let rec pick = function
      | [] -> (match else_ with Some e -> eval ctx row e | None -> Value.Null)
      | (cond, result) :: rest ->
        if Value.is_truthy (eval ctx row cond) then eval ctx row result else pick rest
    in
    pick branches
  | CIn_plan { subject; plan; negated } ->
    let v = eval ctx row subject in
    if v = Value.Null then Value.Null
    else begin
      let found = ref false and saw_null = ref false in
      Seq.iter
        (fun r ->
          let cv = if Array.length r = 0 then Value.Null else r.(0) in
          if cv = Value.Null then saw_null := true
          else if Value.equal v cv then found := true)
        (run_sub ctx row plan);
      if !found then Value.Bool (not negated)
      else if !saw_null then Value.Null
      else Value.Bool negated
    end
  | CExists_plan { plan; negated } ->
    let nonempty = not (Seq.is_empty (run_sub ctx row plan)) in
    Value.Bool (if negated then not nonempty else nonempty)
  | CScalar_plan plan ->
    (match (run_sub ctx row plan) () with
     | Seq.Nil -> Value.Null
     | Seq.Cons (r, rest) ->
       (match rest () with
        | Seq.Nil -> if Array.length r = 0 then Value.Null else r.(0)
        | Seq.Cons _ -> error "scalar subquery returned more than one row"))

(* A subplan sees the current outer row as its parameter vector, appended
   after the parameters already in scope (for doubly-nested correlation the
   planner numbers slots accordingly). *)
and run_sub ctx outer_row plan =
  run_plan { ctx with params = Array.append ctx.params outer_row } plan

and truthy ctx row = function
  | None -> true
  | Some f -> Value.is_truthy (eval ctx row f)

and scan_table ctx name =
  match Catalog.find_table ctx.catalog name with
  | Some t -> t
  | None -> error "no such table %S" name

(* Check the query's cancellation token at every operator boundary: each
   step of every operator's output sequence consults the token, so a
   fired token (timeout, client CANCEL) aborts within one row pull even
   deep inside a blocking sort/aggregate/hash-build that is draining its
   input. *)
and guarded token seq =
  let rec go seq () =
    Cancel.check token;
    match seq () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (x, rest) -> Seq.Cons (x, go rest)
  in
  go seq

(* Attach the operator's stats slot (if profiling) so rows and wall time
   are charged as the sequence is pulled; probe/build counts are recorded
   inside [run_plan_raw] where the events happen. *)
and run_plan ctx (plan : Plan.t) : Value.t array Seq.t =
  let rows =
    match ctx.obs with
    | None -> run_plan_raw ctx None plan
    | Some profile ->
      (match Obs.find profile plan with
       | None -> run_plan_raw ctx None plan
       | Some st -> Obs.observed st (run_plan_raw ctx (Some st) plan))
  in
  match ctx.cancel with
  | None -> rows
  | Some token -> guarded token rows

and run_plan_raw ctx st (plan : Plan.t) : Value.t array Seq.t =
  match plan with
  | Single_row -> Seq.return [||]
  | Seq_scan { table; filter; part } ->
    let t = scan_table ctx table in
    let rows =
      match part with
      | None -> Seq.map snd (Table.scan t)
      | Some (i, n) -> Seq.map snd (Table.scan_part t ~index:i ~parts:n)
    in
    (match filter with
     | None -> rows
     | Some f -> Seq.filter (fun row -> Value.is_truthy (eval ctx row f)) rows)
  | Index_lookup { table; index; key; filter } ->
    let t = scan_table ctx table in
    let idx =
      match Table.find_index t index with
      | Some i -> i
      | None -> error "no such index %S on table %S" index table
    in
    fun () ->
      let keyv = Array.map (eval ctx [||]) key in
      probe st;
      let ids = Index.lookup idx keyv in
      let rows =
        List.filter_map
          (fun id ->
            match Table.get t id with
            | Some row when truthy ctx row filter -> Some row
            | _ -> None)
          ids
      in
      (List.to_seq rows) ()
  | Index_range { table; index; lo; hi; filter } ->
    let t = scan_table ctx table in
    let idx =
      match Table.find_index t index with
      | Some i -> i
      | None -> error "no such index %S on table %S" index table
    in
    fun () ->
      let bound = Option.map (fun (k, incl) -> (Array.map (eval ctx [||]) k, incl)) in
      probe st;
      let ids = Index.range ?lo:(bound lo) ?hi:(bound hi) idx in
      (Seq.filter_map
         (fun id ->
           match Table.get t id with
           | Some row when truthy ctx row filter -> Some row
           | _ -> None)
         ids)
        ()
  | Filter (f, input) ->
    Seq.filter (fun row -> Value.is_truthy (eval ctx row f)) (run_plan ctx input)
  | Project (exprs, input) ->
    Seq.map (fun row -> Array.map (eval ctx row) exprs) (run_plan ctx input)
  | Nested_loop_join { left; right; cond; left_outer; right_arity } ->
    let nulls = Array.make right_arity Value.Null in
    Seq.concat_map
      (fun lrow ->
        let matches =
          Seq.filter_map
            (fun rrow ->
              let joined = Array.append lrow rrow in
              if truthy ctx joined cond then Some joined else None)
            (run_plan ctx right)
        in
        if left_outer then (
          fun () ->
            match matches () with
            | Seq.Nil -> Seq.Cons (Array.append lrow nulls, Seq.empty)
            | cons -> cons)
        else matches)
      (run_plan ctx left)
  | Hash_join { left; right; left_keys; right_keys; cond; left_outer; right_arity } ->
    let nulls = Array.make right_arity Value.Null in
    fun () ->
      (* build on the right; an Exchange build side is partitioned across
         domains into per-domain partial tables, then merged *)
      let tbl =
        match right with
        | Plan.Exchange { inputs; workers }
          when workers > 1 && Conc.Pool.size (Conc.Pool.get ()) > 1 ->
          let pool = Conc.Pool.get () in
          (* key evaluation is pure; each domain fills its own table *)
          let locals =
            Conc.Pool.parallel_map pool
              (fun p ->
                let local = KeyTbl.create 256 in
                let count = ref 0 in
                Seq.iter
                  (fun rrow ->
                    let k = Array.map (eval ctx rrow) right_keys in
                    if not (Array.exists (fun v -> v = Value.Null) k) then begin
                      incr count;
                      KeyTbl.replace local k
                        (rrow
                         :: (match KeyTbl.find_opt local k with
                             | Some l -> l
                             | None -> []))
                    end)
                  (run_plan ctx p);
                (local, !count))
              inputs
          in
          let tbl = KeyTbl.create 256 in
          (* merging ascending partitions by prepending each local bucket
             leaves every bucket in the exact cons order a sequential
             build over the concatenated stream would produce, so the
             probe phase emits matches in the same order *)
          List.iter
            (fun (local, count) ->
              (match st with
               | Some s -> s.build_rows <- s.build_rows + count
               | None -> ());
              KeyTbl.iter
                (fun k l ->
                  KeyTbl.replace tbl k
                    (l @ (match KeyTbl.find_opt tbl k with Some g -> g | None -> [])))
                local)
            locals;
          tbl
        | _ ->
          let tbl = KeyTbl.create 256 in
          Seq.iter
            (fun rrow ->
              let k = Array.map (eval ctx rrow) right_keys in
              if not (Array.exists (fun v -> v = Value.Null) k) then begin
                built st;
                KeyTbl.replace tbl k
                  (rrow :: (match KeyTbl.find_opt tbl k with Some l -> l | None -> []))
              end)
            (run_plan ctx right);
          tbl
      in
      (Seq.concat_map
         (fun lrow ->
           let k = Array.map (eval ctx lrow) left_keys in
           let matches =
             if Array.exists (fun v -> v = Value.Null) k then []
             else match KeyTbl.find_opt tbl k with
               | Some l ->
                 List.filter_map
                   (fun rrow ->
                     let joined = Array.append lrow rrow in
                     if truthy ctx joined cond then Some joined else None)
                   (List.rev l)
               | None -> []
           in
           match matches, left_outer with
           | [], true -> Seq.return (Array.append lrow nulls)
           | ms, _ -> List.to_seq ms)
         (run_plan ctx left))
        ()
  | Sort (keys, input) ->
    fun () ->
      let rows = List.of_seq (run_plan ctx input) in
      let cmp a b =
        let rec go i =
          if i >= Array.length keys then 0
          else
            let e, dir = keys.(i) in
            let c = Value.compare_total (eval ctx a e) (eval ctx b e) in
            let c = match dir with Sql_ast.Asc -> c | Sql_ast.Desc -> -c in
            if c <> 0 then c else go (i + 1)
        in
        go 0
      in
      (List.to_seq (List.stable_sort cmp rows)) ()
  | Aggregate { group_by; aggs; input } ->
    fun () -> (run_aggregate ctx group_by aggs input) ()
  | Distinct input ->
    fun () ->
      let seen = KeyTbl.create 256 in
      (Seq.filter
         (fun row ->
           if KeyTbl.mem seen row then false
           else begin
             KeyTbl.add seen row ();
             true
           end)
         (run_plan ctx input))
        ()
  | Union_all inputs ->
    Seq.concat_map (fun input -> run_plan ctx input) (List.to_seq inputs)
  | Limit { limit; offset; input } ->
    let rows = run_plan ctx input in
    let rows = match offset with Some n -> Seq.drop n rows | None -> rows in
    (match limit with Some n -> Seq.take n rows | None -> rows)
  | Exchange { inputs; workers } ->
    fun () ->
      let pool = Conc.Pool.get () in
      if workers <= 1 || Conc.Pool.size pool <= 1 then
        Seq.concat_map (run_plan ctx) (List.to_seq inputs) ()
      else begin
        (* each domain materialises its own partition; concatenating in
           input order reproduces the unpartitioned stream exactly *)
        let parts =
          Conc.Pool.parallel_map pool
            (fun p -> List.of_seq (run_plan ctx p))
            inputs
        in
        Seq.concat_map List.to_seq (List.to_seq parts) ()
      end
  | Structural_join
      { left; right; interval_on_left; left_doc; right_doc; lo; hi; pos;
        lo_incl; hi_incl; cond; right_arity = _ } ->
    fun () ->
      (* Stack-based interval containment merge join. Both inputs are
         materialised once and tagged with their stream position, so the
         matched pairs can be re-merged into the exact left-major order
         the equivalent nested-loop/hash plan emits. *)
      let lrows = Array.of_seq (run_plan ctx left) in
      let rrows = Array.of_seq (run_plan ctx right) in
      (match st with
       | Some s ->
         s.build_rows <- s.build_rows + Array.length lrows + Array.length rrows
       | None -> ());
      let ivl_rows, ivl_doc =
        if interval_on_left then (lrows, left_doc) else (rrows, right_doc)
      in
      let pt_rows, pt_doc =
        if interval_on_left then (rrows, right_doc) else (lrows, left_doc)
      in
      (* join keys extracted once; a NULL key never matches (inner join) *)
      let intervals =
        let acc = ref [] in
        Array.iteri
          (fun i row ->
            let d = eval ctx row ivl_doc in
            let l = eval ctx row lo in
            let h = eval ctx row hi in
            if d <> Value.Null && l <> Value.Null && h <> Value.Null then
              acc := (d, l, h, i) :: !acc)
          ivl_rows;
        Array.of_list (List.rev !acc)
      in
      let points =
        let acc = ref [] in
        Array.iteri
          (fun j row ->
            let d = eval ctx row pt_doc in
            let v = eval ctx row pos in
            if d <> Value.Null && v <> Value.Null then acc := (d, v, j) :: !acc)
          pt_rows;
        Array.of_list (List.rev !acc)
      in
      let n_ivl = Array.length intervals and n_pt = Array.length points in
      (* containment never crosses documents, so the merge parallelises
         over doc ranges; the global pair sort below keeps the output
         byte-identical at any worker count. Only the planner marks big
         inputs (Exchange), so that is the go-parallel signal. *)
      let pool = Conc.Pool.get () in
      let want_parallel =
        Conc.Pool.size pool > 1 && n_ivl > 1
        && (match left, right with
            | Plan.Exchange { workers; _ }, _ | _, Plan.Exchange { workers; _ } ->
              workers > 1
            | _ -> false)
      in
      let sorted cmp arr =
        let ok = ref true in
        for k = 1 to Array.length arr - 1 do
          if cmp arr.(k - 1) arr.(k) > 0 then ok := false
        done;
        !ok
      in
      (* sequential or doc-range-chunked merge, shared by both key
         representations below *)
      let merge_all (type a) ~(doc_of_ivl : int -> a) ~(doc_of_pt : int -> a)
          ~(doc_cmp : a -> a -> int) ~merge_range =
        if not want_parallel then merge_range (0, n_ivl) (0, n_pt)
        else begin
          (* first point with doc >= d / doc > d *)
          let pt_bound ~after d =
            let lo_b = ref 0 and hi_b = ref n_pt in
            while !lo_b < !hi_b do
              let mid = (!lo_b + !hi_b) / 2 in
              let c = doc_cmp (doc_of_pt mid) d in
              if c < 0 || (c = 0 && after) then lo_b := mid + 1 else hi_b := mid
            done;
            !lo_b
          in
          (* cut the interval array into chunks of whole documents *)
          let jobs = max 2 (Conc.Pool.size pool) in
          let target = max 1 (n_ivl / jobs) in
          let cuts = ref [ 0 ] in
          let k = ref 0 in
          while !k < n_ivl do
            let next = min n_ivl (!k + target) in
            (* extend to the end of the document straddling the cut *)
            let e = ref next in
            while
              !e < n_ivl
              && doc_cmp (doc_of_ivl !e) (doc_of_ivl (next - 1)) = 0
            do
              incr e
            done;
            if !e < n_ivl then cuts := !e :: !cuts;
            k := !e
          done;
          let cuts = Array.of_list (List.rev (n_ivl :: !cuts)) in
          let chunks = ref [] in
          for c = Array.length cuts - 2 downto 0 do
            let a = cuts.(c) and b = cuts.(c + 1) in
            if b > a then
              chunks :=
                ( (a, b),
                  ( pt_bound ~after:false (doc_of_ivl a),
                    pt_bound ~after:true (doc_of_ivl (b - 1)) ) )
                :: !chunks
          done;
          match !chunks with
          | [] | [ _ ] -> merge_range (0, n_ivl) (0, n_pt)
          | chunks ->
            List.concat
              (Conc.Pool.parallel_map pool
                 (fun (ir, jr) -> merge_range ir jr)
                 chunks)
        end
      in
      let int_keys =
        Array.for_all
          (fun (d, l, h, _) ->
            match d, l, h with
            | Value.Int _, Value.Int _, Value.Int _ -> true
            | _ -> false)
          intervals
        && Array.for_all
             (fun (d, v, _) ->
               match d, v with Value.Int _, Value.Int _ -> true | _ -> false)
             points
      in
      let all_pairs =
        if int_keys then begin
          (* Int fast path — the XML region encoding always lands here
             (doc_id / node_id / last_desc are INTEGER columns), so the
             sort and merge run on unboxed int comparisons with no SQL
             re-verification (int total order IS the SQL order). Layout:
             [|doc; lo; hi; idx|] per interval, [|doc; pos; idx|] per
             point. *)
          let iv =
            Array.map
              (fun (d, l, h, i) ->
                match d, l, h with
                | Value.Int d, Value.Int l, Value.Int h -> [| d; l; h; i |]
                | _ -> assert false)
              intervals
          in
          let pt =
            Array.map
              (fun (d, v, j) ->
                match d, v with
                | Value.Int d, Value.Int v -> [| d; v; j |]
                | _ -> assert false)
              points
          in
          let icmp (x : int) y = if x < y then -1 else if x > y then 1 else 0 in
          (* (doc, key) order, original index as final tie-break; inputs
             already in this order (e.g. a (doc_id, node_id) primary-key
             scan) skip the sort *)
          let cmp_iv (a : int array) b =
            let c = icmp a.(0) b.(0) in
            if c <> 0 then c
            else
              let c = icmp a.(1) b.(1) in
              if c <> 0 then c else icmp a.(3) b.(3)
          in
          let cmp_pt (a : int array) b =
            let c = icmp a.(0) b.(0) in
            if c <> 0 then c
            else
              let c = icmp a.(1) b.(1) in
              if c <> 0 then c else icmp a.(2) b.(2)
          in
          if not (sorted cmp_iv iv) then Array.sort cmp_iv iv;
          if not (sorted cmp_pt pt) then Array.sort cmp_pt pt;
          let merge_range (i0, i1) (j0, j1) =
            let pairs = ref [] in
            let stack = ref [] in (* innermost (latest-opened) first *)
            let cur_doc = ref 0 and have_doc = ref false in
            let i = ref i0 and j = ref j0 in
            while !j < j1 do
              let p = pt.(!j) in
              let d_pt = p.(0) and v_pt = p.(1) and jidx = p.(2) in
              let push_next =
                !i < i1
                && (let a = iv.(!i) in
                    a.(0) < d_pt
                    || (a.(0) = d_pt
                        && (a.(1) < v_pt || (a.(1) = v_pt && lo_incl))))
              in
              if push_next then begin
                let a = iv.(!i) in
                incr i;
                let d_iv = a.(0) and l_iv = a.(1) in
                if not (!have_doc && !cur_doc = d_iv) then begin
                  stack := [];
                  cur_doc := d_iv;
                  have_doc := true
                end;
                (* ancestors that closed before this start can never hold
                   a later position: drop them *)
                let rec expire = function
                  | (_, h, _) :: rest when h < l_iv -> expire rest
                  | s -> s
                in
                stack := (l_iv, a.(2), a.(3)) :: expire !stack
              end
              else begin
                incr j;
                if !have_doc && !cur_doc = d_pt then begin
                  let rec expire = function
                    | (_, h, _) :: rest
                      when h < v_pt || (h = v_pt && not hi_incl) ->
                      expire rest
                    | s -> s
                  in
                  stack := expire !stack;
                  List.iter
                    (fun (l, h, iidx) ->
                      if (l < v_pt || (l = v_pt && lo_incl))
                         && (v_pt < h || (v_pt = h && hi_incl)) then
                        pairs := (iidx, jidx) :: !pairs)
                    !stack
                end
              end
            done;
            List.rev !pairs
          in
          merge_all
            ~doc_of_ivl:(fun k -> iv.(k).(0))
            ~doc_of_pt:(fun k -> pt.(k).(0))
            ~doc_cmp:icmp ~merge_range
        end
        else begin
          (* Generic path: arbitrary comparable keys. Merge order uses
             the total order; a match additionally requires the SQL
             comparison semantics at emission. *)
          let cmp_ivl (d1, l1, _, i1) (d2, l2, _, i2) =
            let c = Value.compare_total d1 d2 in
            if c <> 0 then c
            else
              let c = Value.compare_total l1 l2 in
              if c <> 0 then c else compare (i1 : int) i2
          in
          let cmp_pt (d1, v1, j1) (d2, v2, j2) =
            let c = Value.compare_total d1 d2 in
            if c <> 0 then c
            else
              let c = Value.compare_total v1 v2 in
              if c <> 0 then c else compare (j1 : int) j2
          in
          if not (sorted cmp_ivl intervals) then Array.sort cmp_ivl intervals;
          if not (sorted cmp_pt points) then Array.sort cmp_pt points;
          let sql_before a b incl =
            match Value.sql_compare a b with
            | Some c -> c < 0 || (c = 0 && incl)
            | None -> false
          in
          (* one merged sweep over intervals[i0,i1) and points[j0,j1):
             intervals enter the stack when the sweep passes their lower
             bound, leave when it passes their upper bound; every
             surviving stack entry at a point is a candidate ancestor *)
          let merge_range (i0, i1) (j0, j1) =
            let pairs = ref [] in
            let stack = ref [] in (* innermost (latest-opened) first *)
            let cur_doc = ref Value.Null in
            let have_doc = ref false in
            let i = ref i0 and j = ref j0 in
            while !j < j1 do
              let d_pt, v_pt, jidx = points.(!j) in
              let push_next =
                !i < i1
                && (let d_iv, l_iv, _, _ = intervals.(!i) in
                    let c = Value.compare_total d_iv d_pt in
                    c < 0
                    || (c = 0
                        && (let ck = Value.compare_total l_iv v_pt in
                            ck < 0 || (ck = 0 && lo_incl))))
              in
              if push_next then begin
                let d_iv, l_iv, h_iv, iidx = intervals.(!i) in
                incr i;
                if not (!have_doc && Value.compare_total !cur_doc d_iv = 0)
                then begin
                  stack := [];
                  cur_doc := d_iv;
                  have_doc := true
                end;
                (* ancestors that closed before this start can never hold
                   a later position: drop them *)
                let rec expire = function
                  | (_, h, _) :: rest when Value.compare_total h l_iv < 0 ->
                    expire rest
                  | s -> s
                in
                stack := (l_iv, h_iv, iidx) :: expire !stack
              end
              else begin
                incr j;
                if !have_doc && Value.compare_total !cur_doc d_pt = 0
                   && Value.sql_compare !cur_doc d_pt = Some 0 then begin
                  let rec expire = function
                    | (_, h, _) :: rest
                      when (let c = Value.compare_total h v_pt in
                            c < 0 || (c = 0 && not hi_incl)) ->
                      expire rest
                    | s -> s
                  in
                  stack := expire !stack;
                  List.iter
                    (fun (l, h, iidx) ->
                      if sql_before l v_pt lo_incl && sql_before v_pt h hi_incl
                      then pairs := (iidx, jidx) :: !pairs)
                    !stack
                end
              end
            done;
            List.rev !pairs
          in
          merge_all
            ~doc_of_ivl:(fun k -> let d, _, _, _ = intervals.(k) in d)
            ~doc_of_pt:(fun k -> let d, _, _ = points.(k) in d)
            ~doc_cmp:Value.compare_total ~merge_range
        end
      in
      (* re-merge to the deterministic left-major order of the
         equivalent nested-loop/hash plan *)
      let pairs = Array.of_list all_pairs in
      let to_lr (iidx, jidx) =
        if interval_on_left then (iidx, jidx) else (jidx, iidx)
      in
      let lr = Array.map to_lr pairs in
      Array.sort
        (fun ((l1 : int), (r1 : int)) (l2, r2) ->
          if l1 <> l2 then compare l1 l2 else compare r1 r2)
        lr;
      (match st with
       | Some s -> s.probes <- s.probes + Array.length lr
       | None -> ());
      (Seq.filter_map
         (fun (li, ri) ->
           let joined = Array.append lrows.(li) rrows.(ri) in
           if truthy ctx joined cond then Some joined else None)
         (Array.to_seq lr))
        ()

and run_aggregate ctx group_by aggs input =
  let module Acc = struct
    type t = {
      mutable count : int;              (* rows where arg is non-null (or all rows for COUNT star) *)
      mutable sum_i : int;
      mutable sum_f : float;
      mutable saw_float : bool;
      mutable min_v : Value.t;
      mutable max_v : Value.t;
      mutable distinct_seen : unit KeyTbl.t option;
    }
  end in
  let make_acc (spec : Plan.agg_spec) =
    { Acc.count = 0; sum_i = 0; sum_f = 0.; saw_float = false;
      min_v = Value.Null; max_v = Value.Null;
      distinct_seen = if spec.agg_distinct then Some (KeyTbl.create 16) else None }
  in
  let update (spec : Plan.agg_spec) (acc : Acc.t) row =
    let v = match spec.agg_arg with
      | None -> Value.Bool true  (* COUNT star counts every row *)
      | Some e -> eval ctx row e
    in
    let count_it =
      match spec.agg_arg with
      | None -> true
      | Some _ ->
        if v = Value.Null then false
        else begin
          match acc.distinct_seen with
          | Some seen ->
            let k = [| v |] in
            if KeyTbl.mem seen k then false
            else begin
              KeyTbl.add seen k ();
              true
            end
          | None -> true
        end
    in
    if count_it then begin
      acc.count <- acc.count + 1;
      (match v with
       | Value.Int i ->
         acc.sum_i <- acc.sum_i + i;
         acc.sum_f <- acc.sum_f +. float_of_int i
       | Value.Float f ->
         acc.saw_float <- true;
         acc.sum_f <- acc.sum_f +. f
       | _ -> ());
      if acc.min_v = Value.Null || Value.compare_total v acc.min_v < 0 then acc.min_v <- v;
      if acc.max_v = Value.Null || Value.compare_total v acc.max_v > 0 then acc.max_v <- v
    end
  in
  let finish (spec : Plan.agg_spec) (acc : Acc.t) =
    match spec.agg_fn with
    | Sql_ast.Count -> Value.Int acc.count
    | Sql_ast.Sum ->
      if acc.count = 0 then Value.Null
      else if acc.saw_float then Value.Float acc.sum_f
      else Value.Int acc.sum_i
    | Sql_ast.Avg ->
      if acc.count = 0 then Value.Null
      else Value.Float (acc.sum_f /. float_of_int acc.count)
    | Sql_ast.Min -> acc.min_v
    | Sql_ast.Max -> acc.max_v
  in
  let groups : (Value.t array * Acc.t array) KeyTbl.t = KeyTbl.create 64 in
  let order = ref [] in
  Seq.iter
    (fun row ->
      let key = Array.map (eval ctx row) group_by in
      let _, accs =
        match KeyTbl.find_opt groups key with
        | Some entry -> entry
        | None ->
          let entry = (key, Array.map make_acc aggs) in
          KeyTbl.add groups key entry;
          order := key :: !order;
          entry
      in
      Array.iteri (fun i spec -> update spec accs.(i) row) aggs)
    (run_plan ctx input);
  let keys_in_order = List.rev !order in
  let emit key =
    let key_vals, accs = KeyTbl.find groups key in
    Array.append key_vals (Array.mapi (fun i spec -> finish spec accs.(i)) aggs)
  in
  if group_by = [||] && keys_in_order = [] then
    (* global aggregate over an empty input still yields one row *)
    Seq.return (Array.map (fun spec -> finish spec (make_acc spec)) aggs)
  else List.to_seq (List.map emit keys_in_order)

let run catalog ?(params = [||]) ?obs ?cancel plan =
  run_plan { catalog; params; obs; cancel } plan

let eval_expr catalog ?(params = [||]) row e =
  eval { catalog; params; obs = None; cancel = None } row e
