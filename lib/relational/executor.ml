exception Runtime_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

type ctx = {
  catalog : Catalog.t;
  params : Value.t array;
  obs : Obs.profile option;   (* per-operator stats, when profiling *)
  cancel : Cancel.t option;   (* cooperative per-query cancellation *)
  view : Table.snap option;   (* MVCC snapshot all table access reads at *)
}

module Key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    && (let ok = ref true in
        Array.iteri (fun i x -> if not (Value.equal x b.(i)) then ok := false) a;
        !ok)

  let hash k = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 k
end

module KeyTbl = Hashtbl.Make (Key)

(* Adaptive grant for Exchange fan-out: on top of the static shape
   checks (real partitions, a real pool), the scheduler's idle gate may
   degrade a fan-out to sequential in-thread execution when every worker
   is already occupied — queueing partitions behind other queries' work
   only adds latency. Sequential and parallel execution of the same
   Exchange are byte-identical; the counters make degradation visible in
   METRICS. *)
let m_par_granted = Obs.Counter.create ()
let m_par_degraded = Obs.Counter.create ()

let () =
  Obs.register_counter "exec.parallel_granted" m_par_granted;
  Obs.register_counter "exec.parallel_degraded" m_par_degraded

(* Which pool, if any, an Exchange fan-out may run on. Static mode
   forces the global pool into existence (the pre-adaptive behavior).
   Adaptive mode borrows a pool that some other call already created —
   and only creates one itself when the host has a spare core to run
   worker domains on: resident domains on a single-core host tax every
   query through the stop-the-world GC rendezvous without buying any
   parallelism. *)
let multicore = lazy (Domain.recommended_domain_count () > 1)

let exchange_pool ~workers : Conc.Pool.t option =
  if workers <= 1 || Conc.Pool.jobs () <= 1 then None
  else begin
    let candidate =
      match Conc.Sched.mode () with
      | Conc.Sched.Static -> Some (Conc.Pool.get ())
      | Conc.Sched.Adaptive -> (
        match Conc.Pool.peek () with
        | Some _ as p -> p
        | None -> if Lazy.force multicore then Some (Conc.Pool.get ()) else None)
    in
    match candidate with
    | Some pool
      when Conc.Pool.size pool > 1
           && Conc.Sched.exchange_parallel pool ~workers ->
      Obs.Counter.incr m_par_granted;
      Some pool
    | _ ->
      Obs.Counter.incr m_par_degraded;
      None
  end

(* Build table of the vectorized hash join. When the join key is a
   single column that stayed unboxed on the build side, the table keys
   on raw ints so neither build nor probe ever allocates a Value. *)
type hj_tbl =
  | Hj_int of (int, int list) Hashtbl.t
  | Hj_gen of int list KeyTbl.t

(* SQL LIKE: % = any run, _ = any single char; a character preceded by
   the ESCAPE character (if any) matches itself literally. *)
let like_match ?escape ~pattern s =
  let pn = String.length pattern and sn = String.length s in
  (* memoized recursion over (pi, si) *)
  let memo = Hashtbl.create 16 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
      let r =
        if pi >= pn then si >= sn
        else
          match pattern.[pi] with
          | c when escape = Some c ->
            (* a trailing escape character matches nothing *)
            pi + 1 < pn && si < sn
            && s.[si] = pattern.[pi + 1]
            && go (pi + 2) (si + 1)
          | '%' -> go (pi + 1) si || (si < sn && go pi (si + 1))
          | '_' -> si < sn && go (pi + 1) (si + 1)
          | c -> si < sn && s.[si] = c && go (pi + 1) (si + 1)
      in
      Hashtbl.add memo (pi, si) r;
      r
  in
  go 0 0

(* ---------------- scalar semantics ---------------- *)

let numeric_binop op a b =
  let open Value in
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y ->
    (match op with
     | Sql_ast.Add -> Int (x + y)
     | Sql_ast.Sub -> Int (x - y)
     | Sql_ast.Mul -> Int (x * y)
     | Sql_ast.Div -> if y = 0 then Null else Int (x / y)
     | Sql_ast.Mod -> if y = 0 then Null else Int (x mod y)
     | _ -> assert false)
  | (Int _ | Float _), (Int _ | Float _) ->
    let f = function Int i -> float_of_int i | Float f -> f | _ -> assert false in
    let x = f a and y = f b in
    (match op with
     | Sql_ast.Add -> Float (x +. y)
     | Sql_ast.Sub -> Float (x -. y)
     | Sql_ast.Mul -> Float (x *. y)
     | Sql_ast.Div -> if y = 0. then Null else Float (x /. y)
     | Sql_ast.Mod -> if y = 0. then Null else Float (Float.rem x y)
     | _ -> assert false)
  | _ -> error "arithmetic on non-numeric values (%s, %s)"
           (Value.to_literal a) (Value.to_literal b)

let comparison_binop op a b =
  match Value.sql_compare a b with
  | None -> Value.Null
  | Some c ->
    let r = match op with
      | Sql_ast.Eq -> c = 0
      | Sql_ast.Neq -> c <> 0
      | Sql_ast.Lt -> c < 0
      | Sql_ast.Le -> c <= 0
      | Sql_ast.Gt -> c > 0
      | Sql_ast.Ge -> c >= 0
      | _ -> assert false
    in
    Value.Bool r

(* Kleene 3VL *)
let and3 a b =
  match a, b with
  | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
  | Value.Bool true, Value.Bool true -> Value.Bool true
  | _ -> Value.Null

let or3 a b =
  match a, b with
  | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
  | Value.Bool false, Value.Bool false -> Value.Bool false
  | _ -> Value.Null

let not3 = function
  | Value.Bool b -> Value.Bool (not b)
  | _ -> Value.Null

let as_string = function
  | Value.Null -> None
  | v -> Some (Value.to_string v)

let as_int name = function
  | Value.Int i -> i
  | Value.Float f when Float.is_integer f -> int_of_float f
  | v -> error "%s expects an integer, got %s" name (Value.to_literal v)

let scalar_fn name (args : Value.t list) =
  let str1 f =
    match args with
    | [ v ] -> (match as_string v with None -> Value.Null | Some s -> f s)
    | _ -> error "%s expects 1 argument" name
  in
  match name, args with
  | "LOWER", _ -> str1 (fun s -> Value.Text (String.lowercase_ascii s))
  | "UPPER", _ -> str1 (fun s -> Value.Text (String.uppercase_ascii s))
  | "LENGTH", _ -> str1 (fun s -> Value.Int (String.length s))
  | "TRIM", _ -> str1 (fun s -> Value.Text (String.trim s))
  | "LTRIM", _ ->
    str1 (fun s ->
        let i = ref 0 in
        while !i < String.length s && (s.[!i] = ' ' || s.[!i] = '\t') do incr i done;
        Value.Text (String.sub s !i (String.length s - !i)))
  | "RTRIM", _ ->
    str1 (fun s ->
        let i = ref (String.length s) in
        while !i > 0 && (s.[!i - 1] = ' ' || s.[!i - 1] = '\t') do decr i done;
        Value.Text (String.sub s 0 !i))
  | "ABS", [ Value.Int i ] -> Value.Int (abs i)
  | "ABS", [ Value.Float f ] -> Value.Float (Float.abs f)
  | "ABS", [ Value.Null ] -> Value.Null
  | "ROUND", [ Value.Float f ] -> Value.Float (Float.round f)
  | "ROUND", [ Value.Int i ] -> Value.Int i
  | "ROUND", [ Value.Null ] -> Value.Null
  | "FLOOR", [ Value.Float f ] -> Value.Int (int_of_float (Float.floor f))
  | "FLOOR", [ Value.Int i ] -> Value.Int i
  | "CEIL", [ Value.Float f ] -> Value.Int (int_of_float (Float.ceil f))
  | "CEIL", [ Value.Int i ] -> Value.Int i
  | "SUBSTR", (subject :: start :: rest) ->
    (match as_string subject with
     | None -> Value.Null
     | Some s ->
       let n = String.length s in
       let start = as_int "SUBSTR" start in
       let start0 = if start > 0 then start - 1 else max 0 (n + start) in
       let len =
         match rest with
         | [] -> n - start0
         | [ l ] -> as_int "SUBSTR" l
         | _ -> error "SUBSTR expects 2 or 3 arguments"
       in
       let start0 = min (max start0 0) n in
       let len = min (max len 0) (n - start0) in
       Value.Text (String.sub s start0 len))
  | "INSTR", [ hay; needle ] ->
    (match as_string hay, as_string needle with
     | Some h, Some nd ->
       let hl = String.length h and nl = String.length nd in
       let rec find i =
         if i + nl > hl then 0
         else if String.sub h i nl = nd then i + 1
         else find (i + 1)
       in
       Value.Int (find 0)
     | _ -> Value.Null)
  | "REPLACE", [ subject; from_; to_ ] ->
    (match as_string subject, as_string from_, as_string to_ with
     | Some s, Some f, Some t when f <> "" ->
       let buf = Buffer.create (String.length s) in
       let fl = String.length f in
       let rec go i =
         if i >= String.length s then ()
         else if i + fl <= String.length s && String.sub s i fl = f then begin
           Buffer.add_string buf t;
           go (i + fl)
         end
         else begin
           Buffer.add_char buf s.[i];
           go (i + 1)
         end
       in
       go 0;
       Value.Text (Buffer.contents buf)
     | Some s, Some _, Some _ -> Value.Text s
     | _ -> Value.Null)
  | "COALESCE", args ->
    (try List.find (fun v -> v <> Value.Null) args with Not_found -> Value.Null)
  | "NULLIF", [ a; b ] -> if Value.equal a b then Value.Null else a
  | "TONUM", [ v ] ->
    (match v with
     | Value.Null -> Value.Null
     | Value.Int _ | Value.Float _ -> v
     | Value.Text s ->
       (match int_of_string_opt (String.trim s) with
        | Some i -> Value.Int i
        | None ->
          (match float_of_string_opt (String.trim s) with
           | Some f -> Value.Float f
           | None -> Value.Null))
     | Value.Bool b -> Value.Int (if b then 1 else 0))
  | "TOSTR", [ v ] ->
    (match v with Value.Null -> Value.Null | v -> Value.Text (Value.to_string v))
  | _, args -> error "unknown function %s/%d" name (List.length args)

(* ---------------- plans ---------------- *)

(* stat hooks; no-ops when not profiling *)
let probe = function
  | Some (s : Obs.op_stats) -> s.probes <- s.probes + 1
  | None -> ()

let built = function
  | Some (s : Obs.op_stats) -> s.build_rows <- s.build_rows + 1
  | None -> ()

(* ---------------- structural merge core ----------------

   The stack-based interval-containment merge, shared by the iterator
   and vectorized executors. The int fast path works on
   structure-of-arrays keys (parallel [int array]s for doc / lo / hi /
   original index) so sorting permutes unboxed columns and the sweep
   allocates nothing per row; the generic path keeps
   (doc, lo, hi, idx) [Value.t] tuples. Both return the matched
   (interval_idx, point_idx) pairs as two parallel [int array]s in merge
   order. *)

let key_array_sorted cmp arr =
  let ok = ref true in
  for k = 1 to Array.length arr - 1 do
    if cmp arr.(k - 1) arr.(k) > 0 then ok := false
  done;
  !ok

(* Sequential or doc-range-chunked merge driver. Containment never
   crosses documents, so the merge parallelises over doc ranges; the
   caller's global pair sort keeps the output byte-identical at any
   worker count. Returns the per-chunk [merge_range] results in doc
   order. *)
let structural_merge_chunks ~par ~n_ivl ~n_pt ~doc_of_ivl
    ~doc_of_pt ~doc_cmp ~merge_range =
  match par with
  | None -> [ merge_range (0, n_ivl) (0, n_pt) ]
  | Some pool -> begin
    (* first point with doc >= d / doc > d *)
    let pt_bound ~after d =
      let lo_b = ref 0 and hi_b = ref n_pt in
      while !lo_b < !hi_b do
        let mid = (!lo_b + !hi_b) / 2 in
        let c = doc_cmp (doc_of_pt mid) d in
        if c < 0 || (c = 0 && after) then lo_b := mid + 1 else hi_b := mid
      done;
      !lo_b
    in
    (* cut the interval array into chunks of whole documents *)
    let jobs = max 2 (Conc.Pool.size pool) in
    let target = max 1 (n_ivl / jobs) in
    let cuts = ref [ 0 ] in
    let k = ref 0 in
    while !k < n_ivl do
      let next = min n_ivl (!k + target) in
      (* extend to the end of the document straddling the cut *)
      let e = ref next in
      while
        !e < n_ivl && doc_cmp (doc_of_ivl !e) (doc_of_ivl (next - 1)) = 0
      do
        incr e
      done;
      if !e < n_ivl then cuts := !e :: !cuts;
      k := !e
    done;
    let cuts = Array.of_list (List.rev (n_ivl :: !cuts)) in
    let chunks = ref [] in
    for c = Array.length cuts - 2 downto 0 do
      let a = cuts.(c) and b = cuts.(c + 1) in
      if b > a then
        chunks :=
          ( (a, b),
            ( pt_bound ~after:false (doc_of_ivl a),
              pt_bound ~after:true (doc_of_ivl (b - 1)) ) )
          :: !chunks
    done;
    match !chunks with
    | [] | [ _ ] -> [ merge_range (0, n_ivl) (0, n_pt) ]
    | chunks ->
      Conc.Pool.parallel_map pool (fun (ir, jr) -> merge_range ir jr) chunks
  end

(* Int fast path — the XML region encoding always lands here (doc_id /
   node_id / last_desc are INTEGER columns), so the sort and merge run
   on unboxed int comparisons with no SQL re-verification (int total
   order IS the SQL order). Keys arrive as parallel columns; when a sort
   is needed it goes through an index permutation so the caller's arrays
   (which may alias live batch columns) are never mutated. *)
let soa_sorted (doc : int array) (key : int array) n =
  let ok = ref true in
  for k = 1 to n - 1 do
    if doc.(k - 1) > doc.(k) || (doc.(k - 1) = doc.(k) && key.(k - 1) > key.(k))
    then ok := false
  done;
  !ok

let permute (p : int array) (a : int array) =
  Array.init (Array.length p) (fun k -> a.(p.(k)))

let structural_merge_int ~par ~lo_incl ~hi_incl
    ~ivl:(iv_doc, iv_lo, iv_hi, iv_idx) ~pt:(pt_doc, pt_pos, pt_idx) :
    int array * int array =
  let n_ivl = Array.length iv_doc and n_pt = Array.length pt_doc in
  let par = if n_ivl > 1 then par else None in
  let icmp (x : int) y = if x < y then -1 else if x > y then 1 else 0 in
  (* (doc, key) order, original index as final tie-break; inputs already
     in this order (e.g. a (doc_id, node_id) primary-key scan) skip the
     sort. The idx columns are monotone in position, so a positional
     tie-break is the same order. *)
  let iv_doc, iv_lo, iv_hi, iv_idx =
    if soa_sorted iv_doc iv_lo n_ivl then (iv_doc, iv_lo, iv_hi, iv_idx)
    else begin
      let p = Array.init n_ivl (fun k -> k) in
      Array.sort
        (fun a b ->
          let c = icmp iv_doc.(a) iv_doc.(b) in
          if c <> 0 then c
          else
            let c = icmp iv_lo.(a) iv_lo.(b) in
            if c <> 0 then c else icmp iv_idx.(a) iv_idx.(b))
        p;
      (permute p iv_doc, permute p iv_lo, permute p iv_hi, permute p iv_idx)
    end
  in
  let pt_doc, pt_pos, pt_idx =
    if soa_sorted pt_doc pt_pos n_pt then (pt_doc, pt_pos, pt_idx)
    else begin
      let p = Array.init n_pt (fun k -> k) in
      Array.sort
        (fun a b ->
          let c = icmp pt_doc.(a) pt_doc.(b) in
          if c <> 0 then c
          else
            let c = icmp pt_pos.(a) pt_pos.(b) in
            if c <> 0 then c else icmp pt_idx.(a) pt_idx.(b))
        p;
      (permute p pt_doc, permute p pt_pos, permute p pt_idx)
    end
  in
  let merge_range (i0, i1) (j0, j1) =
    (* growable pair output *)
    let cap0 = 64 in
    let out_i = ref (Array.make cap0 0) and out_j = ref (Array.make cap0 0) in
    let m = ref 0 in
    let push_pair a b =
      if !m = Array.length !out_i then begin
        let nc = 2 * !m in
        let a' = Array.make nc 0 and b' = Array.make nc 0 in
        Array.blit !out_i 0 a' 0 !m;
        Array.blit !out_j 0 b' 0 !m;
        out_i := a';
        out_j := b'
      end;
      !out_i.(!m) <- a;
      !out_j.(!m) <- b;
      incr m
    in
    (* open-interval stack as three parallel arrays; top (sp-1) is the
       innermost (latest-opened) interval. Depth never exceeds the
       chunk's interval count. *)
    let smax = max 1 (i1 - i0) in
    let st_lo = Array.make smax 0
    and st_hi = Array.make smax 0
    and st_ix = Array.make smax 0 in
    let sp = ref 0 in
    let cur_doc = ref 0 and have_doc = ref false in
    let i = ref i0 and j = ref j0 in
    while !j < j1 do
      let d_pt = pt_doc.(!j) and v_pt = pt_pos.(!j) in
      let push_next =
        !i < i1
        && (let d_iv = iv_doc.(!i) in
            d_iv < d_pt
            || (d_iv = d_pt
                && (let l_iv = iv_lo.(!i) in
                    l_iv < v_pt || (l_iv = v_pt && lo_incl))))
      in
      if push_next then begin
        let d_iv = iv_doc.(!i) and l_iv = iv_lo.(!i) in
        if not (!have_doc && !cur_doc = d_iv) then begin
          sp := 0;
          cur_doc := d_iv;
          have_doc := true
        end;
        (* ancestors that closed before this start can never hold a later
           position: drop them *)
        while !sp > 0 && st_hi.(!sp - 1) < l_iv do
          decr sp
        done;
        st_lo.(!sp) <- l_iv;
        st_hi.(!sp) <- iv_hi.(!i);
        st_ix.(!sp) <- iv_idx.(!i);
        incr sp;
        incr i
      end
      else begin
        if !have_doc && !cur_doc = d_pt then begin
          while
            !sp > 0
            && (let h = st_hi.(!sp - 1) in
                h < v_pt || (h = v_pt && not hi_incl))
          do
            decr sp
          done;
          let jidx = pt_idx.(!j) in
          for k = !sp - 1 downto 0 do
            let l = st_lo.(k) and h = st_hi.(k) in
            if (l < v_pt || (l = v_pt && lo_incl))
               && (v_pt < h || (v_pt = h && hi_incl)) then
              push_pair st_ix.(k) jidx
          done
        end;
        incr j
      end
    done;
    (Array.sub !out_i 0 !m, Array.sub !out_j 0 !m)
  in
  let parts =
    structural_merge_chunks ~par ~n_ivl ~n_pt
      ~doc_of_ivl:(fun k -> iv_doc.(k))
      ~doc_of_pt:(fun k -> pt_doc.(k))
      ~doc_cmp:icmp ~merge_range
  in
  match parts with
  | [ one ] -> one
  | parts ->
    let total = List.fold_left (fun n (a, _) -> n + Array.length a) 0 parts in
    let ai = Array.make total 0 and aj = Array.make total 0 in
    let off = ref 0 in
    List.iter
      (fun (a, b) ->
        let n = Array.length a in
        Array.blit a 0 ai !off n;
        Array.blit b 0 aj !off n;
        off := !off + n)
      parts;
    (ai, aj)

(* Generic path: arbitrary comparable keys. Merge order uses the total
   order; a match additionally requires the SQL comparison semantics at
   emission. *)
let structural_merge_generic ~par ~lo_incl ~hi_incl
    (intervals : (Value.t * Value.t * Value.t * int) array)
    (points : (Value.t * Value.t * int) array) : int array * int array =
  let n_ivl = Array.length intervals and n_pt = Array.length points in
  let par = if n_ivl > 1 then par else None in
  let cmp_ivl (d1, l1, _, i1) (d2, l2, _, i2) =
    let c = Value.compare_total d1 d2 in
    if c <> 0 then c
    else
      let c = Value.compare_total l1 l2 in
      if c <> 0 then c else compare (i1 : int) i2
  in
  let cmp_pt (d1, v1, j1) (d2, v2, j2) =
    let c = Value.compare_total d1 d2 in
    if c <> 0 then c
    else
      let c = Value.compare_total v1 v2 in
      if c <> 0 then c else compare (j1 : int) j2
  in
  if not (key_array_sorted cmp_ivl intervals) then Array.sort cmp_ivl intervals;
  if not (key_array_sorted cmp_pt points) then Array.sort cmp_pt points;
  let sql_before a b incl =
    match Value.sql_compare a b with
    | Some c -> c < 0 || (c = 0 && incl)
    | None -> false
  in
  (* one merged sweep over intervals[i0,i1) and points[j0,j1): intervals
     enter the stack when the sweep passes their lower bound, leave when
     it passes their upper bound; every surviving stack entry at a point
     is a candidate ancestor *)
  let merge_range (i0, i1) (j0, j1) =
    let pairs = ref [] in
    let stack = ref [] in (* innermost (latest-opened) first *)
    let cur_doc = ref Value.Null in
    let have_doc = ref false in
    let i = ref i0 and j = ref j0 in
    while !j < j1 do
      let d_pt, v_pt, jidx = points.(!j) in
      let push_next =
        !i < i1
        && (let d_iv, l_iv, _, _ = intervals.(!i) in
            let c = Value.compare_total d_iv d_pt in
            c < 0
            || (c = 0
                && (let ck = Value.compare_total l_iv v_pt in
                    ck < 0 || (ck = 0 && lo_incl))))
      in
      if push_next then begin
        let d_iv, l_iv, h_iv, iidx = intervals.(!i) in
        incr i;
        if not (!have_doc && Value.compare_total !cur_doc d_iv = 0) then begin
          stack := [];
          cur_doc := d_iv;
          have_doc := true
        end;
        (* ancestors that closed before this start can never hold a later
           position: drop them *)
        let rec expire = function
          | (_, h, _) :: rest when Value.compare_total h l_iv < 0 ->
            expire rest
          | s -> s
        in
        stack := (l_iv, h_iv, iidx) :: expire !stack
      end
      else begin
        incr j;
        if !have_doc && Value.compare_total !cur_doc d_pt = 0
           && Value.sql_compare !cur_doc d_pt = Some 0 then begin
          let rec expire = function
            | (_, h, _) :: rest
              when (let c = Value.compare_total h v_pt in
                    c < 0 || (c = 0 && not hi_incl)) ->
              expire rest
            | s -> s
          in
          stack := expire !stack;
          List.iter
            (fun (l, h, iidx) ->
              if sql_before l v_pt lo_incl && sql_before v_pt h hi_incl then
                pairs := (iidx, jidx) :: !pairs)
            !stack
        end
      end
    done;
    List.rev !pairs
  in
  let pairs =
    List.concat
      (structural_merge_chunks ~par ~n_ivl ~n_pt
         ~doc_of_ivl:(fun k -> let d, _, _, _ = intervals.(k) in d)
         ~doc_of_pt:(fun k -> let d, _, _ = points.(k) in d)
         ~doc_cmp:Value.compare_total ~merge_range)
  in
  let m = List.length pairs in
  let ai = Array.make m 0 and aj = Array.make m 0 in
  List.iteri
    (fun k (a, b) ->
      ai.(k) <- a;
      aj.(k) <- b)
    pairs;
  (ai, aj)

(* Dispatch on key representation: when every key is an Int (the XML
   region encoding), run the unboxed merge. *)
let structural_pairs ~par ~lo_incl ~hi_incl intervals points =
  let int_keys =
    Array.for_all
      (fun (d, l, h, _) ->
        match d, l, h with
        | Value.Int _, Value.Int _, Value.Int _ -> true
        | _ -> false)
      intervals
    && Array.for_all
         (fun (d, v, _) ->
           match d, v with Value.Int _, Value.Int _ -> true | _ -> false)
         points
  in
  if int_keys then begin
    let n = Array.length intervals in
    let iv_doc = Array.make n 0
    and iv_lo = Array.make n 0
    and iv_hi = Array.make n 0
    and iv_idx = Array.make n 0 in
    Array.iteri
      (fun k (d, l, h, i) ->
        (match d, l, h with
         | Value.Int d, Value.Int l, Value.Int h ->
           iv_doc.(k) <- d;
           iv_lo.(k) <- l;
           iv_hi.(k) <- h
         | _ -> assert false);
        iv_idx.(k) <- i)
      intervals;
    let np = Array.length points in
    let pt_doc = Array.make np 0
    and pt_pos = Array.make np 0
    and pt_idx = Array.make np 0 in
    Array.iteri
      (fun k (d, v, j) ->
        (match d, v with
         | Value.Int d, Value.Int v ->
           pt_doc.(k) <- d;
           pt_pos.(k) <- v
         | _ -> assert false);
        pt_idx.(k) <- j)
      points;
    structural_merge_int ~par ~lo_incl ~hi_incl
      ~ivl:(iv_doc, iv_lo, iv_hi, iv_idx)
      ~pt:(pt_doc, pt_pos, pt_idx)
  end
  else structural_merge_generic ~par ~lo_incl ~hi_incl intervals points

(* Re-merge matched pairs to the deterministic left-major order of the
   equivalent nested-loop/hash plan: two stable counting passes (by
   right index, then by left) — O(pairs + rows), no comparator. *)
let structural_lr_pairs ~interval_on_left ~n_left ~n_right (pi, pj) =
  let l0, r0 = if interval_on_left then (pi, pj) else (pj, pi) in
  let m = Array.length l0 in
  if m = 0 then ([||], [||])
  else begin
    let pass (l : int array) (r : int array) (key : int array) bound =
      let pos = Array.make (bound + 1) 0 in
      for k = 0 to m - 1 do
        pos.(key.(k)) <- pos.(key.(k)) + 1
      done;
      let acc = ref 0 in
      for v = 0 to bound do
        let c = pos.(v) in
        pos.(v) <- !acc;
        acc := !acc + c
      done;
      let l' = Array.make m 0 and r' = Array.make m 0 in
      for k = 0 to m - 1 do
        let p = pos.(key.(k)) in
        pos.(key.(k)) <- p + 1;
        l'.(p) <- l.(k);
        r'.(p) <- r.(k)
      done;
      (l', r')
    in
    let l1, r1 = pass l0 r0 r0 (n_right - 1) in
    let l2, r2 = pass l1 r1 l1 (n_left - 1) in
    (l2, r2)
  end

(* The planner only marks big inputs with Exchange, so that is the
   go-parallel signal for the structural merge. *)
let structural_exchange_pool (left : Plan.t) (right : Plan.t) =
  match left, right with
  | Plan.Exchange { workers; _ }, _ | _, Plan.Exchange { workers; _ } ->
    exchange_pool ~workers
  | _ -> None

let rec eval ctx row (e : Plan.cexpr) : Value.t =
  match e with
  | CLit v -> v
  | CCol i ->
    if i < 0 || i >= Array.length row then error "column slot %d out of range" i
    else row.(i)
  | CParam i ->
    if i < 0 || i >= Array.length ctx.params then error "parameter slot %d out of range" i
    else ctx.params.(i)
  | CBinop (op, a, b) ->
    (match op with
     | Add | Sub | Mul | Div | Mod -> numeric_binop op (eval ctx row a) (eval ctx row b)
     | Concat ->
       (match eval ctx row a, eval ctx row b with
        | Value.Null, _ | _, Value.Null -> Value.Null
        | va, vb -> Value.Text (Value.to_string va ^ Value.to_string vb))
     | And -> and3 (eval ctx row a) (eval ctx row b)
     | Or -> or3 (eval ctx row a) (eval ctx row b)
     | Eq | Neq | Lt | Le | Gt | Ge ->
       comparison_binop op (eval ctx row a) (eval ctx row b))
  | CUnop (Neg, e) ->
    (match eval ctx row e with
     | Value.Int i -> Value.Int (-i)
     | Value.Float f -> Value.Float (-.f)
     | Value.Null -> Value.Null
     | v -> error "cannot negate %s" (Value.to_literal v))
  | CUnop (Not, e) -> not3 (eval ctx row e)
  | CFn (name, args) -> scalar_fn name (List.map (eval ctx row) args)
  | CLike { subject; pattern; escape; negated } ->
    (match eval ctx row subject, eval ctx row pattern with
     | Value.Null, _ | _, Value.Null -> Value.Null
     | s, p ->
       (* SQL semantics: a NULL escape makes the whole predicate NULL;
          a non-NULL escape must be a single character *)
       let esc = Option.map (eval ctx row) escape in
       (match esc with
        | Some Value.Null -> Value.Null
        | _ ->
          let escape =
            match esc with
            | None -> None
            | Some v ->
              let e = Value.to_string v in
              if String.length e = 1 then Some e.[0]
              else error "ESCAPE expression must be a single character, got %S" e
          in
          let r =
            like_match ?escape ~pattern:(Value.to_string p) (Value.to_string s)
          in
          Value.Bool (if negated then not r else r)))
  | CIn_list { subject; candidates; negated } ->
    let v = eval ctx row subject in
    if v = Value.Null then Value.Null
    else begin
      let found = ref false and saw_null = ref false in
      List.iter
        (fun c ->
          let cv = eval ctx row c in
          if cv = Value.Null then saw_null := true
          else if Value.equal v cv then found := true)
        candidates;
      if !found then Value.Bool (not negated)
      else if !saw_null then Value.Null
      else Value.Bool negated
    end
  | CIs_null { subject; negated } ->
    let isnull = eval ctx row subject = Value.Null in
    Value.Bool (if negated then not isnull else isnull)
  | CBetween { subject; low; high; negated } ->
    let v = eval ctx row subject in
    let lo = comparison_binop Sql_ast.Ge v (eval ctx row low) in
    let hi = comparison_binop Sql_ast.Le v (eval ctx row high) in
    let r = and3 lo hi in
    if negated then not3 r else r
  | CCase { branches; else_ } ->
    let rec pick = function
      | [] -> (match else_ with Some e -> eval ctx row e | None -> Value.Null)
      | (cond, result) :: rest ->
        if Value.is_truthy (eval ctx row cond) then eval ctx row result else pick rest
    in
    pick branches
  | CIn_plan { subject; plan; negated } ->
    let v = eval ctx row subject in
    if v = Value.Null then Value.Null
    else begin
      let found = ref false and saw_null = ref false in
      Seq.iter
        (fun r ->
          let cv = if Array.length r = 0 then Value.Null else r.(0) in
          if cv = Value.Null then saw_null := true
          else if Value.equal v cv then found := true)
        (run_sub ctx row plan);
      if !found then Value.Bool (not negated)
      else if !saw_null then Value.Null
      else Value.Bool negated
    end
  | CExists_plan { plan; negated } ->
    let nonempty = not (Seq.is_empty (run_sub ctx row plan)) in
    Value.Bool (if negated then not nonempty else nonempty)
  | CScalar_plan plan ->
    (match (run_sub ctx row plan) () with
     | Seq.Nil -> Value.Null
     | Seq.Cons (r, rest) ->
       (match rest () with
        | Seq.Nil -> if Array.length r = 0 then Value.Null else r.(0)
        | Seq.Cons _ -> error "scalar subquery returned more than one row"))

(* A subplan sees the current outer row as its parameter vector, appended
   after the parameters already in scope (for doubly-nested correlation the
   planner numbers slots accordingly). *)
and run_sub ctx outer_row plan =
  run_plan { ctx with params = Array.append ctx.params outer_row } plan

and truthy ctx row = function
  | None -> true
  | Some f -> Value.is_truthy (eval ctx row f)

and scan_table ctx name =
  match Catalog.find_table ctx.catalog name with
  | Some t -> t
  | None -> error "no such table %S" name

(* Check the query's cancellation token at every operator boundary: each
   step of every operator's output sequence consults the token, so a
   fired token (timeout, client CANCEL) aborts within one row pull even
   deep inside a blocking sort/aggregate/hash-build that is draining its
   input. *)
and guarded token seq =
  let rec go seq () =
    Cancel.check token;
    match seq () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (x, rest) -> Seq.Cons (x, go rest)
  in
  go seq

(* Attach the operator's stats slot (if profiling) so rows and wall time
   are charged as the sequence is pulled; probe/build counts are recorded
   inside [run_plan_raw] where the events happen. *)
and run_plan ctx (plan : Plan.t) : Value.t array Seq.t =
  let rows =
    match ctx.obs with
    | None -> run_plan_raw ctx None plan
    | Some profile ->
      (match Obs.find profile plan with
       | None -> run_plan_raw ctx None plan
       | Some st -> Obs.observed st (run_plan_raw ctx (Some st) plan))
  in
  match ctx.cancel with
  | None -> rows
  | Some token -> guarded token rows

and run_plan_raw ctx st (plan : Plan.t) : Value.t array Seq.t =
  match plan with
  | Single_row -> Seq.return [||]
  | Seq_scan { table; filter; part } ->
    let t = scan_table ctx table in
    let rows =
      match ctx.view, part with
      | None, None -> Seq.map snd (Table.scan t)
      | None, Some (i, n) -> Seq.map snd (Table.scan_part t ~index:i ~parts:n)
      | Some snap, None -> Seq.map snd (Table.scan_at t snap)
      | Some snap, Some (i, n) ->
        Seq.map snd (Table.scan_part_at t snap ~index:i ~parts:n)
    in
    (match filter with
     | None -> rows
     | Some f -> Seq.filter (fun row -> Value.is_truthy (eval ctx row f)) rows)
  | Index_lookup { table; index; key; filter } ->
    let t = scan_table ctx table in
    let idx =
      match Table.find_index t index with
      | Some i -> i
      | None -> error "no such index %S on table %S" index table
    in
    fun () ->
      let keyv = Array.map (eval ctx [||]) key in
      probe st;
      let rows =
        match ctx.view with
        | None ->
          List.filter_map
            (fun id ->
              match Table.get t id with
              | Some row when truthy ctx row filter -> Some row
              | _ -> None)
            (Index.lookup idx keyv)
        | Some snap ->
          List.filter
            (fun row -> truthy ctx row filter)
            (Table.lookup_at t snap idx keyv)
      in
      (List.to_seq rows) ()
  | Index_range { table; index; lo; hi; filter } ->
    let t = scan_table ctx table in
    let idx =
      match Table.find_index t index with
      | Some i -> i
      | None -> error "no such index %S on table %S" index table
    in
    fun () ->
      let bound = Option.map (fun (k, incl) -> (Array.map (eval ctx [||]) k, incl)) in
      probe st;
      (match ctx.view with
       | None ->
         let ids = Index.range ?lo:(bound lo) ?hi:(bound hi) idx in
         (Seq.filter_map
            (fun id ->
              match Table.get t id with
              | Some row when truthy ctx row filter -> Some row
              | _ -> None)
            ids)
           ()
       | Some snap ->
         (List.to_seq
            (List.filter
               (fun row -> truthy ctx row filter)
               (Table.range_at t snap idx ?lo:(bound lo) ?hi:(bound hi) ())))
           ())
  | Filter (f, input) ->
    Seq.filter (fun row -> Value.is_truthy (eval ctx row f)) (run_plan ctx input)
  | Project (exprs, input) ->
    Seq.map (fun row -> Array.map (eval ctx row) exprs) (run_plan ctx input)
  | Nested_loop_join { left; right; cond; left_outer; right_arity } ->
    let nulls = Array.make right_arity Value.Null in
    Seq.concat_map
      (fun lrow ->
        let matches =
          Seq.filter_map
            (fun rrow ->
              let joined = Array.append lrow rrow in
              if truthy ctx joined cond then Some joined else None)
            (run_plan ctx right)
        in
        if left_outer then (
          fun () ->
            match matches () with
            | Seq.Nil -> Seq.Cons (Array.append lrow nulls, Seq.empty)
            | cons -> cons)
        else matches)
      (run_plan ctx left)
  | Hash_join { left; right; left_keys; right_keys; cond; left_outer; right_arity } ->
    let nulls = Array.make right_arity Value.Null in
    fun () ->
      (* build on the right; an Exchange build side is partitioned across
         domains into per-domain partial tables, then merged *)
      let build_seq () =
        let tbl = KeyTbl.create 256 in
        Seq.iter
          (fun rrow ->
            let k = Array.map (eval ctx rrow) right_keys in
            if not (Array.exists (fun v -> v = Value.Null) k) then begin
              built st;
              KeyTbl.replace tbl k
                (rrow :: (match KeyTbl.find_opt tbl k with Some l -> l | None -> []))
            end)
          (run_plan ctx right);
        tbl
      in
      let build_par pool inputs =
          (* key evaluation is pure; each domain fills its own table *)
          let locals =
            Conc.Pool.parallel_map pool
              (fun p ->
                let local = KeyTbl.create 256 in
                let count = ref 0 in
                Seq.iter
                  (fun rrow ->
                    let k = Array.map (eval ctx rrow) right_keys in
                    if not (Array.exists (fun v -> v = Value.Null) k) then begin
                      incr count;
                      KeyTbl.replace local k
                        (rrow
                         :: (match KeyTbl.find_opt local k with
                             | Some l -> l
                             | None -> []))
                    end)
                  (run_plan ctx p);
                (local, !count))
              inputs
          in
          let tbl = KeyTbl.create 256 in
          (* merging ascending partitions by prepending each local bucket
             leaves every bucket in the exact cons order a sequential
             build over the concatenated stream would produce, so the
             probe phase emits matches in the same order *)
          List.iter
            (fun (local, count) ->
              (match st with
               | Some s -> s.build_rows <- s.build_rows + count
               | None -> ());
              KeyTbl.iter
                (fun k l ->
                  KeyTbl.replace tbl k
                    (l @ (match KeyTbl.find_opt tbl k with Some g -> g | None -> [])))
                local)
            locals;
          tbl
      in
      let tbl =
        match right with
        | Plan.Exchange { inputs; workers } -> (
          match exchange_pool ~workers with
          | Some pool -> build_par pool inputs
          | None -> build_seq ())
        | _ -> build_seq ()
      in
      (Seq.concat_map
         (fun lrow ->
           let k = Array.map (eval ctx lrow) left_keys in
           let matches =
             if Array.exists (fun v -> v = Value.Null) k then []
             else match KeyTbl.find_opt tbl k with
               | Some l ->
                 List.filter_map
                   (fun rrow ->
                     let joined = Array.append lrow rrow in
                     if truthy ctx joined cond then Some joined else None)
                   (List.rev l)
               | None -> []
           in
           match matches, left_outer with
           | [], true -> Seq.return (Array.append lrow nulls)
           | ms, _ -> List.to_seq ms)
         (run_plan ctx left))
        ()
  | Sort (keys, input) ->
    fun () ->
      let rows = List.of_seq (run_plan ctx input) in
      let cmp a b =
        let rec go i =
          if i >= Array.length keys then 0
          else
            let e, dir = keys.(i) in
            let c = Value.compare_total (eval ctx a e) (eval ctx b e) in
            let c = match dir with Sql_ast.Asc -> c | Sql_ast.Desc -> -c in
            if c <> 0 then c else go (i + 1)
        in
        go 0
      in
      (List.to_seq (List.stable_sort cmp rows)) ()
  | Aggregate { group_by; aggs; input } ->
    fun () -> (run_aggregate ctx group_by aggs (run_plan ctx input)) ()
  | Distinct input ->
    fun () ->
      let seen = KeyTbl.create 256 in
      (Seq.filter
         (fun row ->
           if KeyTbl.mem seen row then false
           else begin
             KeyTbl.add seen row ();
             true
           end)
         (run_plan ctx input))
        ()
  | Union_all inputs ->
    Seq.concat_map (fun input -> run_plan ctx input) (List.to_seq inputs)
  | Limit { limit; offset; input } ->
    let rows = run_plan ctx input in
    let rows = match offset with Some n -> Seq.drop n rows | None -> rows in
    (match limit with Some n -> Seq.take n rows | None -> rows)
  | Exchange { inputs; workers } ->
    fun () ->
      (match exchange_pool ~workers with
       | None -> Seq.concat_map (run_plan ctx) (List.to_seq inputs) ()
       | Some pool ->
         (* each domain materialises its own partition; concatenating in
            input order reproduces the unpartitioned stream exactly *)
         let parts =
           Conc.Pool.parallel_map pool
             (fun p -> List.of_seq (run_plan ctx p))
             inputs
         in
         Seq.concat_map List.to_seq (List.to_seq parts) ())
  | Structural_join
      { left; right; interval_on_left; left_doc; right_doc; lo; hi; pos;
        lo_incl; hi_incl; cond; right_arity = _ } ->
    fun () ->
      (* Stack-based interval containment merge join. Both inputs are
         materialised once and tagged with their stream position, so the
         matched pairs can be re-merged into the exact left-major order
         the equivalent nested-loop/hash plan emits. *)
      let lrows = Array.of_seq (run_plan ctx left) in
      let rrows = Array.of_seq (run_plan ctx right) in
      (match st with
       | Some s ->
         s.build_rows <- s.build_rows + Array.length lrows + Array.length rrows
       | None -> ());
      let ivl_rows, ivl_doc =
        if interval_on_left then (lrows, left_doc) else (rrows, right_doc)
      in
      let pt_rows, pt_doc =
        if interval_on_left then (rrows, right_doc) else (lrows, left_doc)
      in
      (* join keys extracted once; a NULL key never matches (inner join) *)
      let intervals =
        let acc = ref [] in
        Array.iteri
          (fun i row ->
            let d = eval ctx row ivl_doc in
            let l = eval ctx row lo in
            let h = eval ctx row hi in
            if d <> Value.Null && l <> Value.Null && h <> Value.Null then
              acc := (d, l, h, i) :: !acc)
          ivl_rows;
        Array.of_list (List.rev !acc)
      in
      let points =
        let acc = ref [] in
        Array.iteri
          (fun j row ->
            let d = eval ctx row pt_doc in
            let v = eval ctx row pos in
            if d <> Value.Null && v <> Value.Null then acc := (d, v, j) :: !acc)
          pt_rows;
        Array.of_list (List.rev !acc)
      in
      let par = structural_exchange_pool left right in
      let all_pairs =
        structural_pairs ~par ~lo_incl ~hi_incl intervals points
      in
      let li, ri =
        structural_lr_pairs ~interval_on_left ~n_left:(Array.length lrows)
          ~n_right:(Array.length rrows) all_pairs
      in
      (match st with
       | Some s -> s.probes <- s.probes + Array.length li
       | None -> ());
      (Seq.filter_map
         (fun k ->
           let joined = Array.append lrows.(li.(k)) rrows.(ri.(k)) in
           if truthy ctx joined cond then Some joined else None)
         (Seq.init (Array.length li) (fun k -> k)))
        ()

and run_aggregate ctx group_by aggs (input : Value.t array Seq.t) =
  let module Acc = struct
    type t = {
      mutable count : int;              (* rows where arg is non-null (or all rows for COUNT star) *)
      mutable sum_i : int;
      mutable sum_f : float;
      mutable saw_float : bool;
      mutable min_v : Value.t;
      mutable max_v : Value.t;
      mutable distinct_seen : unit KeyTbl.t option;
    }
  end in
  let make_acc (spec : Plan.agg_spec) =
    { Acc.count = 0; sum_i = 0; sum_f = 0.; saw_float = false;
      min_v = Value.Null; max_v = Value.Null;
      distinct_seen = if spec.agg_distinct then Some (KeyTbl.create 16) else None }
  in
  let update (spec : Plan.agg_spec) (acc : Acc.t) row =
    let v = match spec.agg_arg with
      | None -> Value.Bool true  (* COUNT star counts every row *)
      | Some e -> eval ctx row e
    in
    let count_it =
      match spec.agg_arg with
      | None -> true
      | Some _ ->
        if v = Value.Null then false
        else begin
          match acc.distinct_seen with
          | Some seen ->
            let k = [| v |] in
            if KeyTbl.mem seen k then false
            else begin
              KeyTbl.add seen k ();
              true
            end
          | None -> true
        end
    in
    if count_it then begin
      acc.count <- acc.count + 1;
      (match v with
       | Value.Int i ->
         acc.sum_i <- acc.sum_i + i;
         acc.sum_f <- acc.sum_f +. float_of_int i
       | Value.Float f ->
         acc.saw_float <- true;
         acc.sum_f <- acc.sum_f +. f
       | _ -> ());
      if acc.min_v = Value.Null || Value.compare_total v acc.min_v < 0 then acc.min_v <- v;
      if acc.max_v = Value.Null || Value.compare_total v acc.max_v > 0 then acc.max_v <- v
    end
  in
  let finish (spec : Plan.agg_spec) (acc : Acc.t) =
    match spec.agg_fn with
    | Sql_ast.Count -> Value.Int acc.count
    | Sql_ast.Sum ->
      if acc.count = 0 then Value.Null
      else if acc.saw_float then Value.Float acc.sum_f
      else Value.Int acc.sum_i
    | Sql_ast.Avg ->
      if acc.count = 0 then Value.Null
      else Value.Float (acc.sum_f /. float_of_int acc.count)
    | Sql_ast.Min -> acc.min_v
    | Sql_ast.Max -> acc.max_v
  in
  let groups : (Value.t array * Acc.t array) KeyTbl.t = KeyTbl.create 64 in
  let order = ref [] in
  Seq.iter
    (fun row ->
      let key = Array.map (eval ctx row) group_by in
      let _, accs =
        match KeyTbl.find_opt groups key with
        | Some entry -> entry
        | None ->
          let entry = (key, Array.map make_acc aggs) in
          KeyTbl.add groups key entry;
          order := key :: !order;
          entry
      in
      Array.iteri (fun i spec -> update spec accs.(i) row) aggs)
    input;
  let keys_in_order = List.rev !order in
  let emit key =
    let key_vals, accs = KeyTbl.find groups key in
    Array.append key_vals (Array.mapi (fun i spec -> finish spec accs.(i)) aggs)
  in
  if group_by = [||] && keys_in_order = [] then
    (* global aggregate over an empty input still yields one row *)
    Seq.return (Array.map (fun spec -> finish spec (make_acc spec)) aggs)
  else List.to_seq (List.map emit keys_in_order)

(* ------------------------------------------------------------------ *)
(* Vectorized (batch) executor                                         *)
(*                                                                     *)
(* Operators exchange Batch.t column batches instead of single rows.   *)
(* Row order, NULL handling, error behaviour and the per-operator Obs  *)
(* counters all mirror the iterator executor above — the differential  *)
(* harness holds the two byte-identical. Expression subplans always    *)
(* run through the iterator path ([eval] is shared).                   *)
(* ------------------------------------------------------------------ *)

(* Cancellation at batch granularity: a fired token aborts within one
   batch pull. *)
let guarded_batches token (seq : Batch.t Seq.t) =
  let rec go seq () =
    Cancel.check token;
    match seq () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (b, rest) -> Seq.Cons (b, go rest)
  in
  go seq

(* Lazily re-chunk a row stream into dense batches of at most
   [Batch.max_rows] rows; empty inputs yield no batches (a zero-row
   batch is never emitted). *)
let batches_of_rows ~arity (rows : Value.t array Seq.t) : Batch.t Seq.t =
  let cap = Batch.max_rows () in
  let rec go rows () =
    match rows () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (r0, rest) ->
      let buf = ref [ r0 ] and n = ref 1 in
      let rest = ref rest in
      (try
         while !n < cap do
           match !rest () with
           | Seq.Nil ->
             rest := Seq.empty;
             raise Exit
           | Seq.Cons (r, tl) ->
             buf := r :: !buf;
             incr n;
             rest := tl
         done
       with Exit -> ());
      let arr = Array.of_list (List.rev !buf) in
      Seq.Cons (Batch.of_rows ~arity arr, go !rest)
  in
  go rows

(* Narrow a batch to the surviving physical rows (accumulated in reverse
   while scanning); [None] when nothing survives, the original batch
   when everything does. *)
let narrow_batch b rev_kept n =
  if n = 0 then None
  else if n = Batch.live b then Some b
  else begin
    let sel = Array.make n 0 in
    let k = ref (n - 1) in
    List.iter
      (fun r ->
        sel.(!k) <- r;
        decr k)
      rev_kept;
    Some { b with Batch.sel = Some sel }
  end

(* Compile a filter into a column-at-a-time kernel, [None] when the
   shape doesn't decompose column-wise. Truthiness of Kleene AND/OR does
   decompose ([is_truthy (a AND b) = is_truthy a && is_truthy b], same
   for OR); NOT does not ([NOT NULL] is [NULL]), nor do arbitrary
   expressions — those fall back to row-at-a-time [eval]. Comparisons of
   an unboxed column against an Int constant run on raw ints (the SQL
   order on Int IS the int order); every other operand shape defers to
   [comparison_binop], which never raises, so kernels preserve the
   iterator's error behaviour exactly (only the column-bounds check can
   raise, and it fires per batch — i.e. only when at least one row
   exists, just as [eval] would on the first row). *)
let vec_kernel ctx (e : Plan.cexpr) : (Batch.t -> int -> bool) option =
  let const_of (e : Plan.cexpr) =
    match e with
    | CLit v -> Some v
    | CParam i when i >= 0 && i < Array.length ctx.params ->
      Some ctx.params.(i)
    | _ -> None
  in
  let col b i =
    if i < 0 || i >= Batch.arity b then error "column slot %d out of range" i
    else b.Batch.cols.(i)
  in
  let cmp_const op i v b =
    match col b i, v with
    | Batch.I a, Value.Int k ->
      (match op with
       | Sql_ast.Eq -> fun r -> a.(r) = k
       | Sql_ast.Neq -> fun r -> a.(r) <> k
       | Sql_ast.Lt -> fun r -> a.(r) < k
       | Sql_ast.Le -> fun r -> a.(r) <= k
       | Sql_ast.Gt -> fun r -> a.(r) > k
       | Sql_ast.Ge -> fun r -> a.(r) >= k
       | _ -> assert false)
    | Batch.I a, _ ->
      fun r -> Value.is_truthy (comparison_binop op (Value.Int a.(r)) v)
    | Batch.V a, _ -> fun r -> Value.is_truthy (comparison_binop op a.(r) v)
  in
  let cmp_cols op i j b =
    match col b i, col b j with
    | Batch.I x, Batch.I y ->
      (* two unboxed columns compare on raw ints — this is the region
         containment predicate (node_id vs. interval bounds) shape *)
      (match op with
       | Sql_ast.Eq -> fun r -> x.(r) = y.(r)
       | Sql_ast.Neq -> fun r -> x.(r) <> y.(r)
       | Sql_ast.Lt -> fun r -> x.(r) < y.(r)
       | Sql_ast.Le -> fun r -> x.(r) <= y.(r)
       | Sql_ast.Gt -> fun r -> x.(r) > y.(r)
       | Sql_ast.Ge -> fun r -> x.(r) >= y.(r)
       | _ -> assert false)
    | cx, cy ->
      let get c r =
        match c with Batch.I a -> Value.Int a.(r) | Batch.V a -> a.(r)
      in
      fun r -> Value.is_truthy (comparison_binop op (get cx r) (get cy r))
  in
  let flip = function
    | Sql_ast.Lt -> Sql_ast.Gt
    | Sql_ast.Gt -> Sql_ast.Lt
    | Sql_ast.Le -> Sql_ast.Ge
    | Sql_ast.Ge -> Sql_ast.Le
    | op -> op
  in
  let rec kern (e : Plan.cexpr) =
    match const_of e with
    | Some v ->
      let t = Value.is_truthy v in
      Some (fun _ _ -> t)
    | None -> (
      match e with
      | CCol i ->
        Some
          (fun b ->
            match col b i with
            | Batch.I _ -> fun _ -> false (* is_truthy (Int _) = false *)
            | Batch.V a -> fun r -> Value.is_truthy a.(r))
      | CBinop
          ( ((Sql_ast.Eq | Sql_ast.Neq | Sql_ast.Lt | Sql_ast.Le | Sql_ast.Gt
             | Sql_ast.Ge) as op),
            a,
            b ) -> (
        match a, const_of b with
        | CCol i, Some v -> Some (cmp_const op i v)
        | _ -> (
          match const_of a, b with
          | Some v, CCol i -> Some (cmp_const (flip op) i v)
          | _ -> (
            match a, b with
            | CCol i, CCol j -> Some (cmp_cols op i j)
            | _ -> None)))
      | CBinop (Sql_ast.And, a, b) -> (
        match kern a, kern b with
        | Some ka, Some kb ->
          Some
            (fun bt ->
              let pa = ka bt in
              let pb = kb bt in
              fun r -> pa r && pb r)
        | _ -> None)
      | CBinop (Sql_ast.Or, a, b) -> (
        match kern a, kern b with
        | Some ka, Some kb ->
          Some
            (fun bt ->
              let pa = ka bt in
              let pb = kb bt in
              fun r -> pa r || pb r)
        | _ -> None)
      | CIs_null { subject = CCol i; negated } ->
        Some
          (fun b ->
            match col b i with
            | Batch.I _ -> fun _ -> negated
            | Batch.V a -> fun r -> a.(r) = Value.Null <> negated)
      | CBetween { subject = CCol i; low; high; negated = false } -> (
        match const_of low, const_of high with
        | Some lo, Some hi ->
          Some
            (fun b ->
              let pl = cmp_const Sql_ast.Ge i lo b in
              let ph = cmp_const Sql_ast.Le i hi b in
              fun r -> pl r && ph r)
        | _ -> None)
      | _ -> None)
  in
  kern e

(* Filter a batch stream, preferring a compiled kernel and attaching a
   selection vector instead of copying survivors. *)
let apply_filter ctx f (bs : Batch.t Seq.t) : Batch.t Seq.t =
  let kern = vec_kernel ctx f in
  Seq.filter_map
    (fun b ->
      let pred =
        match kern with
        | Some k -> k b
        | None -> fun r -> Value.is_truthy (eval ctx (Batch.row b r) f)
      in
      let kept = ref [] and n = ref 0 in
      Batch.iter_live
        (fun r ->
          if pred r then begin
            kept := r :: !kept;
            incr n
          end)
        b;
      narrow_batch b !kept !n)
    bs

let rec run_batches ctx (plan : Plan.t) : Batch.t Seq.t =
  let bs =
    match ctx.obs with
    | None -> run_batches_raw ctx None plan
    | Some profile -> (
      match Obs.find profile plan with
      | None -> run_batches_raw ctx None plan
      | Some st ->
        Obs.observed_batches ~live:Batch.live st
          (run_batches_raw ctx (Some st) plan))
  in
  match ctx.cancel with
  | None -> bs
  | Some token -> guarded_batches token bs

and run_batches_raw ctx st (plan : Plan.t) : Batch.t Seq.t =
  match plan with
  | Single_row -> Seq.return { Batch.len = 1; cols = [||]; sel = None }
  | Seq_scan { table; filter; part } ->
    let t = scan_table ctx table in
    let rows =
      match ctx.view, part with
      | None, None -> Seq.map snd (Table.scan t)
      | None, Some (i, n) -> Seq.map snd (Table.scan_part t ~index:i ~parts:n)
      | Some snap, None -> Seq.map snd (Table.scan_at t snap)
      | Some snap, Some (i, n) ->
        Seq.map snd (Table.scan_part_at t snap ~index:i ~parts:n)
    in
    let bs = batches_of_rows ~arity:(Schema.arity (Table.schema t)) rows in
    (match filter with None -> bs | Some f -> apply_filter ctx f bs)
  | Index_lookup { table; index; key; filter } ->
    let t = scan_table ctx table in
    let idx =
      match Table.find_index t index with
      | Some i -> i
      | None -> error "no such index %S on table %S" index table
    in
    let arity = Schema.arity (Table.schema t) in
    fun () ->
      let keyv = Array.map (eval ctx [||]) key in
      probe st;
      let rows =
        match ctx.view with
        | None ->
          List.filter_map
            (fun id ->
              match Table.get t id with
              | Some row when truthy ctx row filter -> Some row
              | _ -> None)
            (Index.lookup idx keyv)
        | Some snap ->
          List.filter
            (fun row -> truthy ctx row filter)
            (Table.lookup_at t snap idx keyv)
      in
      (* the lookup result is already fully materialised, so it ships as
         one dense batch: downstream consolidation (structural join,
         concat) reuses it without another copy *)
      (match rows with
       | [] -> Seq.empty ()
       | rows ->
         Seq.return (Batch.of_rows ~arity (Array.of_list rows)) ())
  | Index_range { table; index; lo; hi; filter } ->
    let t = scan_table ctx table in
    let idx =
      match Table.find_index t index with
      | Some i -> i
      | None -> error "no such index %S on table %S" index table
    in
    let arity = Schema.arity (Table.schema t) in
    fun () ->
      let bound =
        Option.map (fun (k, incl) -> (Array.map (eval ctx [||]) k, incl))
      in
      probe st;
      let rows =
        match ctx.view with
        | None ->
          Seq.filter_map
            (fun id ->
              match Table.get t id with
              | Some row when truthy ctx row filter -> Some row
              | _ -> None)
            (Index.range ?lo:(bound lo) ?hi:(bound hi) idx)
        | Some snap ->
          List.to_seq
            (List.filter
               (fun row -> truthy ctx row filter)
               (Table.range_at t snap idx ?lo:(bound lo) ?hi:(bound hi) ()))
      in
      (batches_of_rows ~arity rows) ()
  | Filter (f, input) -> apply_filter ctx f (run_batches ctx input)
  | Project
      ( exprs,
        Structural_join
          { left; right; interval_on_left; left_doc; right_doc; lo; hi; pos;
            lo_incl; hi_incl; cond = None; right_arity = _ } )
    when ctx.obs = None
         && Array.for_all
              (function Plan.CCol i -> i >= 0 | _ -> false)
              exprs ->
    (* late materialisation: a pure column projection sitting directly on
       a structural join gathers only the columns it keeps. The join
       output is typically much wider than the projection (the
       accumulated binding tuple vs. the two returned fields), so
       skipping the full append_cols gather saves the dominant copy.
       Profiled runs keep the unfused path so per-operator attribution
       in EXPLAIN ANALYZE stays meaningful. *)
    fun () ->
      let lB, rB, la, _ra, lidx, ridx =
        batch_sj_pairs ctx st ~left ~right ~interval_on_left ~left_doc
          ~right_doc ~lo ~hi ~pos ~lo_incl ~hi_incl
      in
      let total = Array.length lidx in
      if total = 0 then Seq.empty ()
      else
        let one = function
          | Plan.CCol i when i < la -> (
            match lB.Batch.cols.(i) with
            | Batch.I a -> Batch.I (Array.map (fun k -> a.(k)) lidx)
            | Batch.V a -> Batch.V (Array.map (fun k -> a.(k)) lidx))
          | Plan.CCol i when i - la < Array.length rB.Batch.cols -> (
            match rB.Batch.cols.(i - la) with
            | Batch.I a -> Batch.I (Array.map (fun k -> a.(k)) ridx)
            | Batch.V a -> Batch.V (Array.map (fun k -> a.(k)) ridx))
          | Plan.CCol i -> error "column slot %d out of range" i
          | _ -> assert false
        in
        Seq.return
          { Batch.len = total; cols = Array.map one exprs; sel = None }
          ()
  | Project (exprs, input) ->
    Seq.map
      (fun b ->
        let arity_in = Batch.arity b in
        let all_cols =
          Array.for_all
            (function Plan.CCol i -> i >= 0 && i < arity_in | _ -> false)
            exprs
        in
        if all_cols then
          (* pure column selection: rebind columns, keep the selection
             vector untouched — zero copying *)
          let cols =
            Array.map
              (function Plan.CCol i -> b.Batch.cols.(i) | _ -> assert false)
              exprs
          in
          { b with Batch.cols }
        else
          (* general expressions: evaluate row-major like the iterator so
             side effects (subplans, errors) happen in the same order *)
          Batch.of_rows ~arity:(Array.length exprs)
            (Array.of_seq
               (Seq.map
                  (fun row -> Array.map (eval ctx row) exprs)
                  (Batch.rows b))))
      (run_batches ctx input)
  | Nested_loop_join { left; right; cond; left_outer; right_arity } ->
    let nulls = Array.make right_arity Value.Null in
    Seq.concat_map
      (fun lb ->
        let out = ref [] in
        Batch.iter_live
          (fun li ->
            let lrow = Batch.row lb li in
            let matched = ref false in
            Seq.iter
              (fun rrow ->
                let joined = Array.append lrow rrow in
                if truthy ctx joined cond then begin
                  matched := true;
                  out := joined :: !out
                end)
              (Batch.to_row_seq (run_batches ctx right));
            if left_outer && not !matched then
              out := Array.append lrow nulls :: !out)
          lb;
        List.to_seq
          (Batch.chunk_rows
             ~arity:(Batch.arity lb + right_arity)
             (List.rev !out)))
      (run_batches ctx left)
  | Hash_join { left; right; left_keys; right_keys; cond; left_outer; right_arity } ->
    let nulls = Array.make right_arity Value.Null in
    fun () ->
      (* build on the right into one dense batch; the hash table maps
         key -> physical row indices into it, so matched build rows are
         emitted by column gather with no row-boxing round trip. An
         Exchange build side is partitioned across domains into
         per-domain batch + partial table, then merged with an index
         offset (same merge order as the iterator executor). *)
      let keys_of_batch (b : Batch.t) =
        let arity = Batch.arity b in
        if
          Array.for_all
            (function Plan.CCol i -> i >= 0 && i < arity | _ -> false)
            right_keys
        then fun r ->
          Array.map
            (function
              | Plan.CCol c -> Batch.get b c r
              | _ -> assert false)
            right_keys
        else fun r ->
          let rrow = Batch.row b r in
          Array.map (eval ctx rrow) right_keys
      in
      let build_local (b : Batch.t) =
        let key_of = keys_of_batch b in
        let local = KeyTbl.create 256 in
        let count = ref 0 in
        for r = 0 to b.Batch.len - 1 do
          let k = key_of r in
          if not (Array.exists (fun v -> v = Value.Null) k) then begin
            incr count;
            KeyTbl.replace local k
              (r
               :: (match KeyTbl.find_opt local k with
                   | Some l -> l
                   | None -> []))
          end
        done;
        (local, !count)
      in
      let build_par pool inputs =
          let locals =
            Conc.Pool.parallel_map pool
              (fun p ->
                let b =
                  Batch.concat ~arity:right_arity
                    (List.of_seq (run_batches ctx p))
                in
                let local, count = build_local b in
                (b, local, count))
              inputs
          in
          let rB =
            Batch.concat ~arity:right_arity
              (List.map (fun (b, _, _) -> b) locals)
          in
          let tbl = KeyTbl.create 256 in
          let off = ref 0 in
          List.iter
            (fun ((b : Batch.t), local, count) ->
              (match st with
               | Some s -> s.build_rows <- s.build_rows + count
               | None -> ());
              let o = !off in
              KeyTbl.iter
                (fun k l ->
                  KeyTbl.replace tbl k
                    (List.map (fun r -> r + o) l
                     @ (match KeyTbl.find_opt tbl k with
                        | Some g -> g
                        | None -> [])))
                local;
              off := !off + b.Batch.len)
            locals;
          (rB, Hj_gen tbl)
      in
      let build_seq () =
          let rB =
            Batch.concat ~arity:right_arity
              (List.of_seq (run_batches ctx right))
          in
          (* single unboxed key column: table keys on raw ints, so the
             build loop never allocates — the common shape for the
             doc_id / node_id equi-joins the XML shredding produces *)
          let int_build =
            match right_keys with
            | [| Plan.CCol c |] when c >= 0 && c < Batch.arity rB -> (
              match rB.Batch.cols.(c) with
              | Batch.I a ->
                let t = Hashtbl.create 256 in
                for r = 0 to rB.Batch.len - 1 do
                  Hashtbl.replace t a.(r)
                    (r
                     :: (match Hashtbl.find_opt t a.(r) with
                         | Some l -> l
                         | None -> []))
                done;
                Some (Hj_int t, rB.Batch.len)
              | Batch.V _ -> None)
            | _ -> None
          in
          let tbl, count =
            match int_build with
            | Some tc -> tc
            | None ->
              let t, c = build_local rB in
              (Hj_gen t, c)
          in
          (match st with
           | Some s -> s.build_rows <- s.build_rows + count
           | None -> ());
          (rB, tbl)
      in
      let rB, tbl =
        match right with
        | Plan.Exchange { inputs; workers } -> (
          match exchange_pool ~workers with
          | Some pool -> build_par pool inputs
          | None -> build_seq ())
        | _ -> build_seq ()
      in
      let lookup (k : Value.t array) =
        match tbl with
        | Hj_gen t -> (
          match KeyTbl.find_opt t k with Some l -> l | None -> [])
        | Hj_int t -> (
          match k with
          | [| Value.Int i |] -> (
            match Hashtbl.find_opt t i with Some l -> l | None -> [])
          | _ -> [])
      in
      (Seq.concat_map
         (fun lb ->
           match cond with
           | Some _ ->
             (* the residual condition needs full joined rows: box per
                match, exactly like the iterator probe *)
             let out = ref [] in
             Batch.iter_live
               (fun li ->
                 let lrow = Batch.row lb li in
                 let k = Array.map (eval ctx lrow) left_keys in
                 let matches =
                   if Array.exists (fun v -> v = Value.Null) k then []
                   else
                     List.filter_map
                       (fun ri ->
                         let joined =
                           Array.append lrow (Batch.row rB ri)
                         in
                         if truthy ctx joined cond then Some joined
                         else None)
                       (List.rev (lookup k))
                 in
                 match matches, left_outer with
                 | [], true -> out := Array.append lrow nulls :: !out
                 | ms, _ -> List.iter (fun r -> out := r :: !out) ms)
               lb;
             List.to_seq
               (Batch.chunk_rows
                  ~arity:(Batch.arity lb + right_arity)
                  (List.rev !out))
           | None ->
             (* columnar probe: record matched (left, build) physical
                index pairs, then emit one batch per input batch by
                gathering both sides' columns — the accumulating side of
                a left-deep join chain never re-boxes. An outer-join miss
                is index -1 on the build side, gathered as NULLs. *)
             let la = Batch.arity lb in
             let key_of =
               if
                 Array.for_all
                   (function Plan.CCol i -> i >= 0 && i < la | _ -> false)
                   left_keys
               then fun i ->
                 Array.map
                   (function
                     | Plan.CCol c -> Batch.get lb c i
                     | _ -> assert false)
                   left_keys
             else fun i ->
                 let lrow = Batch.row lb i in
                 Array.map (eval ctx lrow) left_keys
             in
             let cap0 = max 16 (Batch.live lb) in
             let lidx = ref (Array.make cap0 0) in
             let ridx = ref (Array.make cap0 0) in
             let m = ref 0 in
             let push i r =
               if !m = Array.length !lidx then begin
                 let nc = 2 * !m in
                 let a = Array.make nc 0 and b = Array.make nc 0 in
                 Array.blit !lidx 0 a 0 !m;
                 Array.blit !ridx 0 b 0 !m;
                 lidx := a;
                 ridx := b
               end;
               !lidx.(!m) <- i;
               !ridx.(!m) <- r;
               incr m
             in
             let bucket_of =
               match tbl, left_keys with
               | Hj_int t, [| Plan.CCol c |] when c >= 0 && c < la -> (
                 (* unboxed probe: read the key straight out of the int
                    column, no Value round trip *)
                 match lb.Batch.cols.(c) with
                 | Batch.I a ->
                   fun i ->
                     (match Hashtbl.find_opt t a.(i) with
                      | Some l -> List.rev l
                      | None -> [])
                 | Batch.V a -> (
                   fun i ->
                     match a.(i) with
                     | Value.Int v -> (
                       match Hashtbl.find_opt t v with
                       | Some l -> List.rev l
                       | None -> [])
                     | _ -> []))
               | _ ->
                 fun i ->
                   let k = key_of i in
                   if Array.exists (fun v -> v = Value.Null) k then []
                   else List.rev (lookup k)
             in
             Batch.iter_live
               (fun i -> match bucket_of i, left_outer with
                 | [], true -> push i (-1)
                 | ms, _ -> List.iter (push i) ms)
               lb;
             let total = !m in
             if total = 0 then Seq.empty
             else begin
               let lidx = Array.sub !lidx 0 total in
               let ridx = Array.sub !ridx 0 total in
               let misses = Array.exists (fun r -> r < 0) ridx in
               let rcols =
                 Array.map
                   (fun col ->
                     match col with
                     | Batch.I a ->
                       if misses then
                         Batch.V
                           (Array.map
                              (fun r ->
                                if r < 0 then Value.Null
                                else Value.Int a.(r))
                              ridx)
                       else Batch.I (Array.map (fun r -> a.(r)) ridx)
                     | Batch.V a ->
                       Batch.V
                         (Array.map
                            (fun r -> if r < 0 then Value.Null else a.(r))
                            ridx))
                   rB.Batch.cols
               in
               let cols = Array.append (Batch.gather lb.Batch.cols lidx) rcols in
               Seq.return { Batch.len = total; cols; sel = None }
             end)
         (run_batches ctx left))
        ()
  | Sort (keys, input) ->
    fun () ->
      let bs = List.of_seq (run_batches ctx input) in
      let rows = List.concat_map (fun b -> List.of_seq (Batch.rows b)) bs in
      let cmp a b =
        let rec go i =
          if i >= Array.length keys then 0
          else
            let e, dir = keys.(i) in
            let c = Value.compare_total (eval ctx a e) (eval ctx b e) in
            let c = match dir with Sql_ast.Asc -> c | Sql_ast.Desc -> -c in
            if c <> 0 then c else go (i + 1)
        in
        go 0
      in
      let arity = match bs with b :: _ -> Batch.arity b | [] -> 0 in
      (List.to_seq (Batch.chunk_rows ~arity (List.stable_sort cmp rows))) ()
  | Aggregate { group_by; aggs; input } ->
    fun () ->
      let rows =
        run_aggregate ctx group_by aggs
          (Batch.to_row_seq (run_batches ctx input))
      in
      (batches_of_rows
         ~arity:(Array.length group_by + Array.length aggs)
         rows)
        ()
  | Distinct input ->
    fun () ->
      let seen = KeyTbl.create 256 in
      (Seq.filter_map
         (fun b ->
           let kept = ref [] and n = ref 0 in
           Batch.iter_live
             (fun r ->
               let row = Batch.row b r in
               if not (KeyTbl.mem seen row) then begin
                 KeyTbl.add seen row ();
                 kept := r :: !kept;
                 incr n
               end)
             b;
           narrow_batch b !kept !n)
         (run_batches ctx input))
        ()
  | Union_all inputs ->
    Seq.concat_map (fun input -> run_batches ctx input) (List.to_seq inputs)
  | Limit { limit; offset; input } ->
    let bs = run_batches ctx input in
    let off = match offset with Some n -> n | None -> 0 in
    let rec go skip remaining bs () =
      if remaining = Some 0 then Seq.Nil
      else
        match bs () with
        | Seq.Nil -> Seq.Nil
        | Seq.Cons (b, rest) ->
          let n = Batch.live b in
          if skip >= n then go (skip - n) remaining rest ()
          else begin
            let idx =
              match b.Batch.sel with
              | Some s -> s
              | None -> Array.init b.Batch.len (fun k -> k)
            in
            let avail = n - skip in
            let take =
              match remaining with Some r -> min r avail | None -> avail
            in
            let b' =
              if skip = 0 && take = n then b
              else { b with Batch.sel = Some (Array.sub idx skip take) }
            in
            let remaining' = Option.map (fun r -> r - take) remaining in
            Seq.Cons (b', go 0 remaining' rest)
          end
    in
    go off limit bs
  | Exchange { inputs; workers } ->
    fun () ->
      (match exchange_pool ~workers with
       | None -> Seq.concat_map (run_batches ctx) (List.to_seq inputs) ()
       | Some pool ->
         (* each domain materialises its own partition's batches;
            concatenating in input order reproduces the unpartitioned
            stream exactly *)
         let parts =
           Conc.Pool.parallel_map pool
             (fun p -> List.of_seq (run_batches ctx p))
             inputs
         in
         Seq.concat_map List.to_seq (List.to_seq parts) ())
  | Structural_join
      { left; right; interval_on_left; left_doc; right_doc; lo; hi; pos;
        lo_incl; hi_incl; cond; right_arity = _ } ->
    fun () ->
      let lB, rB, la, ra, lidx, ridx =
        batch_sj_pairs ctx st ~left ~right ~interval_on_left ~left_doc
          ~right_doc ~lo ~hi ~pos ~lo_incl ~hi_incl
      in
      (match cond with
       | None ->
         (* columnar emission: gather matched rows straight from the two
            dense batches, no per-row boxing. The whole join output goes
            out as one dense batch — a parent structural join's
            consolidation step then reuses it as-is instead of copying
            the (wide) accumulated side again. *)
         let total = Array.length lidx in
         if total = 0 then Seq.empty ()
         else
           let cols = Batch.append_cols lB rB lidx ridx in
           Seq.return { Batch.len = total; cols; sel = None } ()
       | Some _ ->
         let out = ref [] in
         for k = 0 to Array.length lidx - 1 do
           let joined =
             Array.append (Batch.row lB lidx.(k)) (Batch.row rB ridx.(k))
           in
           if truthy ctx joined cond then out := joined :: !out
         done;
         (List.to_seq (Batch.chunk_rows ~arity:(la + ra) (List.rev !out))) ())

(* Run both structural-join inputs, consolidate each side into one dense
   batch and compute the matched (left index, right index) pairs in
   left-major stream order. Shared by the plain [Structural_join] case
   and the fused Project-over-join case, which gathers only the columns
   the projection keeps (late materialisation). *)
and batch_sj_pairs ctx st ~left ~right ~interval_on_left ~left_doc
    ~right_doc ~lo ~hi ~pos ~lo_incl ~hi_incl :
    Batch.t * Batch.t * int * int * int array * int array =
      (* Same containment merge as the iterator case, but both sides are
         consolidated into one dense batch each, so the XML region
         encoding keeps its keys in unboxed int columns and the key
         extraction skips boxing entirely. *)
      let lbs = List.of_seq (run_batches ctx left) in
      let rbs = List.of_seq (run_batches ctx right) in
      let la = match lbs with b :: _ -> Batch.arity b | [] -> 0 in
      let ra = match rbs with b :: _ -> Batch.arity b | [] -> 0 in
      let lB = Batch.concat ~arity:la lbs in
      let rB = Batch.concat ~arity:ra rbs in
      (match st with
       | Some s -> s.build_rows <- s.build_rows + lB.Batch.len + rB.Batch.len
       | None -> ());
      let ivB, ivl_doc, ptB, pt_doc =
        if interval_on_left then (lB, left_doc, rB, right_doc)
        else (rB, right_doc, lB, left_doc)
      in
      let par = structural_exchange_pool left right in
      (* an unboxed key column never holds NULL, so physical index =
         stream index and no NULL filtering is needed *)
      let int_col b (e : Plan.cexpr) =
        match e with
        | CCol i when i >= 0 && i < Batch.arity b -> (
          match b.Batch.cols.(i) with Batch.I a -> Some a | Batch.V _ -> None)
        | _ -> None
      in
      let all_pairs =
        match
          ( int_col ivB ivl_doc,
            int_col ivB lo,
            int_col ivB hi,
            int_col ptB pt_doc,
            int_col ptB pos )
        with
        | Some d, Some l, Some h, Some pd, Some pv ->
          (* hand the live columns to the merge directly — it sorts via a
             permutation, never in place, so aliasing batch storage is
             safe and key extraction allocates only the two identity
             index columns *)
          let iv_idx = Array.init ivB.Batch.len (fun k -> k) in
          let pt_idx = Array.init ptB.Batch.len (fun k -> k) in
          structural_merge_int ~par ~lo_incl ~hi_incl
            ~ivl:(d, l, h, iv_idx)
            ~pt:(pd, pv, pt_idx)
        | _ ->
          (* boxed fallback: evaluate keys per row, NULL keys never
             match (inner join) *)
          let intervals =
            let acc = ref [] in
            for k = 0 to ivB.Batch.len - 1 do
              let row = Batch.row ivB k in
              let d = eval ctx row ivl_doc in
              let l = eval ctx row lo in
              let h = eval ctx row hi in
              if d <> Value.Null && l <> Value.Null && h <> Value.Null then
                acc := (d, l, h, k) :: !acc
            done;
            Array.of_list (List.rev !acc)
          in
          let points =
            let acc = ref [] in
            for k = 0 to ptB.Batch.len - 1 do
              let row = Batch.row ptB k in
              let d = eval ctx row pt_doc in
              let v = eval ctx row pos in
              if d <> Value.Null && v <> Value.Null then
                acc := (d, v, k) :: !acc
            done;
            Array.of_list (List.rev !acc)
          in
          structural_pairs ~par ~lo_incl ~hi_incl intervals points
      in
      let lidx, ridx =
        structural_lr_pairs ~interval_on_left ~n_left:lB.Batch.len
          ~n_right:rB.Batch.len all_pairs
      in
      (match st with
       | Some s -> s.probes <- s.probes + Array.length lidx
       | None -> ());
      (lB, rB, la, ra, lidx, ridx)

(* Entry point: the vectorized path is the default; XOMATIQ_VEC=0 keeps
   the row-at-a-time iterator as the reference implementation. Both are
   driven through the same [eval], planner and Obs plumbing, and the
   differential suite holds their outputs byte-identical. *)
let run catalog ?(params = [||]) ?obs ?cancel ?view plan =
  let ctx = { catalog; params; obs; cancel; view } in
  if Rewrite.enabled () then Batch.to_row_seq (run_batches ctx plan)
  else run_plan ctx plan

let eval_expr catalog ?(params = [||]) row e =
  eval { catalog; params; obs = None; cancel = None; view = None } row e
