(* On-disk B+tree with page-at-a-time node access through the buffer
   pool. One page file per tree: page 0 is the meta page, every other
   page is a node (or a key-overflow segment).

   Node page layout:
     0  u8   kind (0 = leaf, 1 = internal)
     2  u16  ncells
     4  u32  leaf: next-leaf page (none32 at the chain end)
             internal: leftmost child page (child0)
     8  u16 x ncells  slot array, key order; each slot is the page
                      offset of a cell
     cells packed downward from the page end:
       u16 klen | key bytes | u32 value        (inline key)
       u16 0x8000|0 | u32 total | u32 first | u32 value
                                               (overflow key: chain of
                                                [u32 next|u32 n|bytes]
                                                whole pages)
   A leaf cell's value is a rowid; an internal cell holds separator s_i
   with the page of child c_i, keys >= s_i (child0 lives in the header).

   Duplicate keys are stored as adjacent cells. Inserts descend by
   upper bound (first separator > key) and place the new cell after the
   equal run, so within a key the cell order is insertion order —
   exactly the posting-list append of the in-memory {!Btree} — while
   lookups and removals descend by lower bound and walk the run across
   leaf boundaries. Keys compare decoded ({!Btree.compare_key}), never
   byte-wise: [Int 3] and [Float 3.] are the same key in both engines. *)

let ps = Bufpool.page_size
let none32 = 0xFFFFFFFF
let magic = "XQBTRE01"
let hdr = 8
let max_inline_key = 2048

exception Duplicate of Value.t array

type cell = {
  key : string;             (* encoded key, always materialised *)
  value : int;
  big : (int * int) option; (* (total_len, first_page) when spilled *)
}

type node = {
  kind : int; (* 0 leaf / 1 internal *)
  cells : cell array;
  link : int; (* leaf: next leaf; internal: child0 *)
}

type t = {
  pool : Bufpool.t;
  file : Bufpool.file;
  fpath : string;
  mutable root : int;
  mutable height : int;
  mutable distinct : int;
  mutable entries : int;
}

let get_u16 b off = Bytes.get_uint16_le b off
let set_u16 b off v = Bytes.set_uint16_le b off v
let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF
let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let get_u48 b off = Int64.to_int (Bytes.get_int64_le b off)
let set_u48 b off v = Bytes.set_int64_le b off (Int64.of_int v)

let write_meta t =
  Bufpool.with_page_w t.pool t.file 0 (fun b ->
      Bytes.blit_string magic 0 b 0 8;
      set_u32 b 8 t.root;
      set_u32 b 12 t.height;
      set_u48 b 16 t.distinct;
      set_u48 b 24 t.entries)

(* ---- key overflow chains ---- *)

let write_big t s =
  let len = String.length s in
  let cap = ps - 8 in
  let nseg = (len + cap - 1) / cap in
  let pages = Array.init nseg (fun _ -> Bufpool.allocate t.pool t.file) in
  Array.iteri
    (fun i p ->
      let pos = i * cap in
      let n = min cap (len - pos) in
      Bufpool.with_page_w t.pool t.file p (fun b ->
          set_u32 b 0 (if i + 1 < nseg then pages.(i + 1) else none32);
          set_u32 b 4 n;
          Bytes.blit_string s pos b 8 n))
    pages;
  (len, pages.(0))

let read_big t (len, first) =
  let buf = Bytes.create len in
  let rec go p pos =
    if p <> none32 then begin
      let next, pos' =
        Bufpool.with_page t.pool t.file p (fun b ->
            let n = get_u32 b 4 in
            Bytes.blit b 8 buf pos n;
            (get_u32 b 0, pos + n))
      in
      go next pos'
    end
  in
  go first 0;
  Bytes.unsafe_to_string buf

(* ---- node (de)serialisation ---- *)

let cell_size c = match c.big with Some _ -> 2 + 12 | None -> 2 + String.length c.key + 4

let node_size n =
  Array.fold_left (fun acc c -> acc + 2 + cell_size c) hdr n.cells

let read_node t page =
  Bufpool.with_page t.pool t.file page (fun b ->
      let kind = Char.code (Bytes.get b 0) in
      let ncells = get_u16 b 2 in
      let link = get_u32 b 4 in
      let cells =
        Array.init ncells (fun i ->
            let off = get_u16 b (hdr + (2 * i)) in
            let klen = get_u16 b off in
            if klen land 0x8000 <> 0 then
              let total = get_u32 b (off + 2) in
              let first = get_u32 b (off + 6) in
              { key = ""; value = get_u32 b (off + 10); big = Some (total, first) }
            else
              { key = Bytes.sub_string b (off + 2) klen;
                value = get_u32 b (off + 2 + klen);
                big = None })
      in
      { kind; cells; link })
  |> fun n ->
  (* materialise spilled keys outside the pin (chain reads pin pages) *)
  { n with
    cells =
      Array.map
        (fun c ->
          match c.big with
          | Some bigref when c.key = "" -> { c with key = read_big t bigref }
          | _ -> c)
        n.cells }

let write_node t page n =
  Bufpool.with_page_w t.pool t.file page (fun b ->
      Bytes.fill b 0 ps '\000';
      Bytes.set b 0 (Char.chr n.kind);
      set_u16 b 2 (Array.length n.cells);
      set_u32 b 4 n.link;
      let top = ref ps in
      Array.iteri
        (fun i c ->
          let sz = cell_size c in
          top := !top - sz;
          let off = !top in
          set_u16 b (hdr + (2 * i)) off;
          match c.big with
          | Some (total, first) ->
            set_u16 b off 0x8000;
            set_u32 b (off + 2) total;
            set_u32 b (off + 6) first;
            set_u32 b (off + 10) c.value
          | None ->
            set_u16 b off (String.length c.key);
            Bytes.blit_string c.key 0 b (off + 2) (String.length c.key);
            set_u32 b (off + 2 + String.length c.key) c.value)
        n.cells)

let mk_cell t key value =
  if String.length key > max_inline_key then
    { key; value; big = Some (write_big t key) }
  else { key; value; big = None }

(* ---- open / create ---- *)

let init_empty t =
  t.root <- Bufpool.allocate t.pool t.file;
  t.height <- 1;
  t.distinct <- 0;
  t.entries <- 0;
  write_node t t.root { kind = 0; cells = [||]; link = none32 };
  write_meta t

let create pool ~path =
  let file = Bufpool.open_file pool path in
  let t =
    { pool; file; fpath = path; root = 0; height = 0; distinct = 0; entries = 0 }
  in
  if Bufpool.npages file = 0 then begin
    ignore (Bufpool.allocate pool file) (* meta page *);
    init_empty t
  end
  else
    Bufpool.with_page pool file 0 (fun b ->
        if Bytes.sub_string b 0 8 <> magic then
          failwith (Printf.sprintf "btree %s: bad magic" path);
        t.root <- get_u32 b 8;
        t.height <- get_u32 b 12;
        t.distinct <- get_u48 b 16;
        t.entries <- get_u48 b 24);
  t

let cardinal t = t.distinct
let entry_count t = t.entries

(* ---- search plumbing ---- *)

let dec = Rowcodec.decode_string
let cmp = Btree.compare_key

let cell_cmp c k = cmp (dec c.key) k

(* first cell index with cell >= k *)
let lower_bound cells k =
  let lo = ref 0 and hi = ref (Array.length cells) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cell_cmp cells.(mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* first cell index with cell > k *)
let upper_bound cells k =
  let lo = ref 0 and hi = ref (Array.length cells) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cell_cmp cells.(mid) k <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* child page for descent: [slot] children precede the chosen one *)
let child_at n slot = if slot = 0 then n.link else n.cells.(slot - 1).value

let array_insert arr i x =
  let len = Array.length arr in
  let out = Array.make (len + 1) x in
  Array.blit arr 0 out 0 i;
  Array.blit arr i out (i + 1) (len - i);
  out

(* ---- insert ---- *)

type split = No_split | Split of cell (* separator cell: key + right page *)

let split_point cells =
  (* split index by accumulated byte size, clamped so both halves keep at
     least one cell (pages fit >= 4 cells before overflowing, see layout) *)
  let total = Array.fold_left (fun acc c -> acc + 2 + cell_size c) 0 cells in
  let n = Array.length cells in
  let acc = ref 0 and m = ref 0 in
  (try
     for i = 0 to n - 1 do
       acc := !acc + 2 + cell_size cells.(i);
       if !acc * 2 >= total then begin
         m := i + 1;
         raise Exit
       end
     done
   with Exit -> ());
  max 1 (min (n - 1) !m)

let rec insert_at t page k_enc k rowid depth : split =
  let n = read_node t page in
  if n.kind = 0 then begin
    let pos = upper_bound n.cells k in
    let cell = mk_cell t k_enc rowid in
    let cells = array_insert n.cells pos cell in
    let n = { n with cells } in
    if node_size n <= ps then begin
      write_node t page n;
      No_split
    end
    else begin
      let m = split_point cells in
      let right_page = Bufpool.allocate t.pool t.file in
      let left = { n with cells = Array.sub cells 0 m; link = right_page } in
      let right =
        { kind = 0;
          cells = Array.sub cells m (Array.length cells - m);
          link = n.link }
      in
      write_node t page left;
      write_node t right_page right;
      (* the separator shares the right head's key (and its overflow
         chain, which is immutable once written) *)
      let head = right.cells.(0) in
      Split { key = head.key; value = right_page; big = head.big }
    end
  end
  else begin
    let slot = upper_bound n.cells k in
    match insert_at t (child_at n slot) k_enc k rowid (depth + 1) with
    | No_split -> No_split
    | Split sep ->
      let cells = array_insert n.cells slot sep in
      let n = { n with cells } in
      if node_size n <= ps then begin
        write_node t page n;
        No_split
      end
      else begin
        let m = max 1 (min (Array.length cells - 2) (split_point cells)) in
        let sep_up = cells.(m) in
        let right_page = Bufpool.allocate t.pool t.file in
        let left = { n with cells = Array.sub cells 0 m } in
        let right =
          { kind = 1;
            cells = Array.sub cells (m + 1) (Array.length cells - m - 1);
            link = sep_up.value }
        in
        write_node t page left;
        write_node t right_page right;
        Split { sep_up with value = right_page }
      end
  end

let rec leaf_for t page k =
  let n = read_node t page in
  if n.kind = 0 then (page, n)
  else leaf_for t (child_at n (lower_bound n.cells k)) k

let mem t k =
  let _, n0 = leaf_for t t.root k in
  let rec look n i =
    if i >= Array.length n.cells then
      n.link <> none32 && look (read_node t n.link) 0
    else
      let c = cell_cmp n.cells.(i) k in
      c = 0 || (c < 0 && look n (i + 1))
  in
  look n0 (lower_bound n0.cells k)

let insert ?key_exists t k rowid =
  let k_enc = Rowcodec.encode k in
  let existed =
    match key_exists with Some e -> e | None -> mem t k
  in
  (match insert_at t t.root k_enc k rowid 0 with
   | No_split -> ()
   | Split sep ->
     let new_root = Bufpool.allocate t.pool t.file in
     write_node t new_root { kind = 1; cells = [| sep |]; link = t.root };
     t.root <- new_root;
     t.height <- t.height + 1);
  if not existed then t.distinct <- t.distinct + 1;
  t.entries <- t.entries + 1;
  write_meta t

(* ---- lookup ---- *)

let find t k =
  let _, n0 = leaf_for t t.root k in
  let rec collect n i acc =
    if i >= Array.length n.cells then
      if n.link = none32 then acc else collect (read_node t n.link) 0 acc
    else
      let c = cell_cmp n.cells.(i) k in
      if c < 0 then collect n (i + 1) acc
      else if c = 0 then collect n (i + 1) (n.cells.(i).value :: acc)
      else acc
  in
  List.rev (collect n0 (lower_bound n0.cells k) [])

(* ---- remove ---- *)

let remove t k pred =
  let page0, n0 = leaf_for t t.root k in
  let removed = ref 0 and remaining = ref 0 in
  let rec sweep page n start =
    let keep = ref [] and past = ref false in
    Array.iteri
      (fun i c ->
        if i < start then keep := c :: !keep
        else if !past then keep := c :: !keep
        else
          let cv = cell_cmp c k in
          if cv < 0 then keep := c :: !keep
          else if cv > 0 then begin
            past := true;
            keep := c :: !keep
          end
          else if pred c.value then incr removed
          else begin
            incr remaining;
            keep := c :: !keep
          end)
      n.cells;
    let kept = Array.of_list (List.rev !keep) in
    if Array.length kept <> Array.length n.cells then
      write_node t page { n with cells = kept };
    (* an equal run ends inside the first leaf whose last cell is > k *)
    if (not !past) && n.link <> none32 then
      sweep n.link (read_node t n.link) 0
  in
  sweep page0 n0 (lower_bound n0.cells k);
  if !removed > 0 then begin
    t.entries <- t.entries - !removed;
    if !remaining = 0 then t.distinct <- t.distinct - 1;
    write_meta t
  end

(* ---- range scans ---- *)

let rec leftmost t page =
  let n = read_node t page in
  if n.kind = 0 then (page, n) else leftmost t n.link

let range ?lo ?hi t =
  let above_lo k =
    match lo with
    | None -> true
    | Some (lk, incl) ->
      let c = cmp k lk in
      if incl then c >= 0 else c > 0
  in
  let below_hi k =
    match hi with
    | None -> true
    | Some (hk, incl) ->
      let c = cmp k hk in
      if incl then c <= 0 else c < 0
  in
  let start () =
    match lo with
    | None -> Some (leftmost t t.root)
    | Some (k, _) -> Some (leaf_for t t.root k)
  in
  (* one leaf at a time: decode the qualifying cells under a single pin
     run, emit, then chase the next-leaf link *)
  let rec leaf_seq next () =
    match next with
    | None -> Seq.Nil
    | Some (_, n) ->
      let out = ref [] and stop = ref false in
      Array.iter
        (fun c ->
          if not !stop then begin
            let k = dec c.key in
            if not (below_hi k) then stop := true
            else if above_lo k then out := (k, c.value) :: !out
          end)
        n.cells;
      let next' =
        if !stop || n.link = none32 then None
        else Some (n.link, read_node t n.link)
      in
      let rec emit = function
        | [] -> leaf_seq next' ()
        | r :: rest -> Seq.Cons (r, fun () -> emit rest)
      in
      emit (List.rev !out)
  in
  fun () -> leaf_seq (start ()) ()

let iter f t =
  Seq.iter (fun (k, v) -> f k v) (range t)

(* ---- bulk load ---- *)

(* Pack sorted (encoded key, value) pairs bottom-up: fill leaves to the
   byte budget, chain them left to right, then build each internal level
   from the (first key, page) list of the level below. The stream must be
   sorted by (key, insertion order); [unique] raises {!Duplicate} on two
   equal adjacent keys. The tree must be empty. *)
let bulk_load ?(unique = false) t pairs =
  if t.entries > 0 then invalid_arg "Btree_paged.bulk_load: tree not empty";
  let budget = ps in
  (* current leaf under construction *)
  let cells = ref [] and size = ref hdr and ncells = ref 0 in
  let leaves = ref [] (* (head cell, page) reversed *) in
  let prev_leaf = ref none32 in
  let prev_key = ref None in
  let distinct = ref 0 and entries = ref 0 in
  let flush_leaf () =
    if !ncells > 0 then begin
      let page = Bufpool.allocate t.pool t.file in
      let node =
        { kind = 0; cells = Array.of_list (List.rev !cells); link = none32 }
      in
      write_node t page node;
      if !prev_leaf <> none32 then
        Bufpool.with_page_w t.pool t.file !prev_leaf (fun b -> set_u32 b 4 page);
      prev_leaf := page;
      leaves := (node.cells.(0), page) :: !leaves;
      cells := [];
      size := hdr;
      ncells := 0
    end
  in
  Seq.iter
    (fun (k_enc, v) ->
      (match !prev_key with
       | Some pk ->
         let equal = String.equal pk k_enc || cmp (dec pk) (dec k_enc) = 0 in
         if equal then begin
           if unique then raise (Duplicate (dec k_enc))
         end
         else incr distinct
       | None -> incr distinct);
      prev_key := Some k_enc;
      let cell = mk_cell t k_enc v in
      let sz = 2 + cell_size cell in
      if !size + sz > budget then flush_leaf ();
      cells := cell :: !cells;
      size := !size + sz;
      incr ncells;
      incr entries)
    pairs;
  flush_leaf ();
  (match List.rev !leaves with
   | [] ->
     (* empty load: leave the fresh empty tree as is *)
     ()
   | level0 ->
     let rec build level height =
       match level with
       | [ (_, page) ] ->
         t.root <- page;
         t.height <- height
       | _ ->
         (* pack (sep, child) cells into internal nodes by byte budget *)
         let parents = ref [] in
         let cur = ref [] and cur_size = ref hdr and head = ref None in
         let child0 = ref none32 in
         let flush_internal () =
           match !head with
           | None -> ()
           | Some head_cell ->
             let page = Bufpool.allocate t.pool t.file in
             write_node t page
               { kind = 1; cells = Array.of_list (List.rev !cur); link = !child0 };
             parents := (head_cell, page) :: !parents;
             cur := [];
             cur_size := hdr;
             head := None;
             child0 := none32
         in
         List.iter
           (fun (head_cell, page) ->
             match !head with
             | None ->
               head := Some head_cell;
               child0 := page
             | Some _ ->
               let sep = { head_cell with value = page } in
               let sz = 2 + cell_size sep in
               if !cur_size + sz > budget then begin
                 flush_internal ();
                 head := Some head_cell;
                 child0 := page
               end
               else begin
                 cur := sep :: !cur;
                 cur_size := !cur_size + sz
               end)
           level;
         flush_internal ();
         build (List.rev !parents) (height + 1)
     in
     build level0 1);
  t.distinct <- !distinct;
  t.entries <- !entries;
  write_meta t

(* ---- lifecycle ---- *)

let truncate t =
  Bufpool.truncate_file t.pool t.file;
  ignore (Bufpool.allocate t.pool t.file);
  init_empty t

let sync t = write_meta t

let close t =
  write_meta t;
  Bufpool.close_file t.pool t.file

let destroy t = Bufpool.remove_file t.pool t.file

let path t = t.fpath
