type undo =
  | Undo_insert of { table : Table.t; rowid : int }
  | Undo_delete of { table : Table.t; rowid : int; row : Value.t array }
  | Undo_update of { table : Table.t; rowid : int; old_row : Value.t array }
  | Undo_bulk of { table : Table.t; first : int; count : int }
      (* one bulk load: rowids [first, first+count) tombstone on abort *)

type txn = {
  txn_id : int;
  mutable undo_ops : undo list;  (* most recent first *)
  mutable touched : Table.t list;  (* tables with MVCC stashes to seal *)
  mutable t_snap : Table.snap option;
      (* snapshot pinned at the transaction's first read: repeatable
         reads, and the baseline for first-updater-wins conflicts *)
}

type t = {
  db_id : int;  (* process-unique instance serial, see {!id} *)
  cat : Catalog.t;
  mutable wal : Wal.t option;
  locks : Lock_manager.t;
  mutable next_txid : int;
  mutable replaying : bool;
  mutable default_session : session option;  (* lazily created *)
  storage : Storage.t option;  (* disk backend; None = in-memory rows *)
  mutable attaching : bool;
      (* replaying the manifest's final-state DDL against existing page
         files: CREATE INDEX attaches instead of building *)
  mutable temp_storage : bool;  (* data dir is ours to delete at close *)
  mutable analyzed : string list;  (* tables with stats, for the manifest *)
  (* MVCC commit clock. Process-local (starts at 0 every open, never
     persisted): snapshots only ever compare against commits of the same
     process, and cross-node positions use WAL record positions instead.
     [reg_mutex] orders snapshot registration against commit sealing and
     guards the registry + clock; lock order is reg_mutex before any
     table's version mutex, never the reverse. *)
  mutable csn : int;
  reg_mutex : Mutex.t;
  mutable active_snaps : int list;  (* CSNs of in-flight snapshots *)
  mutable versioned : Table.t list;  (* tables holding sealed history *)
}

(* A session is one client connection: it owns at most one open
   transaction. The historical single-connection API on [t] routes
   through a default session; tests open extra sessions to script
   concurrent schedules against the lock manager. *)
and session = { sdb : t; mutable s_txn : txn option }

type result =
  | Rows of { columns : string list; rows : Value.t array list }
  | Affected of int
  | Explained of string
  | Done of string

exception Db_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Db_error m)) fmt

let catalog t = t.cat

let next_db_id = Atomic.make 0

let id t = t.db_id

let session t = { sdb = t; s_txn = None }

let default t =
  match t.default_session with
  | Some s -> s
  | None ->
    let s = session t in
    t.default_session <- Some s;
    s

let in_transaction t = (default t).s_txn <> None

let log t op =
  if not t.replaying then
    match t.wal with
    | Some wal -> Wal.append wal op
    | None -> ()

let log_flush t =
  if not t.replaying then Option.iter Wal.flush t.wal

(* ---------------- MVCC snapshots ---------------- *)

exception Mvcc_conflict of string

(* Open a snapshot at the current clock. Registered under [reg_mutex] so
   no commit can seal "between" reading the clock and registering — a
   sealed version either predates the snapshot (invisible) or was sealed
   at a CSN the snapshot will correctly skip. *)
let snap_register t ~self =
  Mutex.lock t.reg_mutex;
  let at = t.csn in
  t.active_snaps <- at :: t.active_snaps;
  Mutex.unlock t.reg_mutex;
  { Table.at; self }

(* Close a snapshot and reclaim version history nothing can reach. *)
let snap_release t (snap : Table.snap) =
  Mutex.lock t.reg_mutex;
  let rec drop_one = function
    | [] -> []
    | x :: rest -> if x = snap.at then rest else x :: drop_one rest
  in
  t.active_snaps <- drop_one t.active_snaps;
  let min_active =
    match t.active_snaps with
    | [] -> None
    | l -> Some (List.fold_left min max_int l)
  in
  t.versioned <-
    List.filter (fun tbl -> Table.gc_versions tbl ~min_active > 0) t.versioned;
  Mutex.unlock t.reg_mutex

(* Commit [txid]'s stashes and advance the clock. Sealing happens before
   the new CSN is published, so no snapshot can be positioned after a
   commit whose versions it cannot see. With no snapshot in flight the
   pre-images go straight to the floor. *)
let advance_clock t ~txid ~touched =
  Mutex.lock t.reg_mutex;
  let c = t.csn + 1 in
  let keep = t.active_snaps <> [] in
  List.iter
    (fun tbl ->
      if keep then begin
        Table.seal_versions tbl ~txid ~csn:c;
        if not (List.memq tbl t.versioned) then
          t.versioned <- tbl :: t.versioned
      end
      else Table.discard_versions tbl ~txid)
    touched;
  t.csn <- c;
  Mutex.unlock t.reg_mutex

let touch txn tbl =
  if not (List.memq tbl txn.touched) then txn.touched <- tbl :: txn.touched

(* Pre-image stash before a row mutation. When the transaction pinned a
   snapshot (it read before writing), a row committed over since then is
   a lost-update hazard: first-updater-wins, the statement aborts the
   whole transaction. *)
let stash_write t txn tbl rowid =
  if not t.replaying then begin
    touch txn tbl;
    let since = Option.map (fun (v : Table.snap) -> v.at) txn.t_snap in
    if not (Table.stash_row tbl ~txid:txn.txn_id ?since rowid) then
      raise
        (Mvcc_conflict
           (Printf.sprintf
              "serialization failure: concurrent update to table %S, \
               transaction rolled back"
              (Table.schema tbl).Schema.table_name))
  end

let stash_append t txn tbl =
  if not t.replaying then begin
    touch txn tbl;
    Table.stash_len tbl ~txid:txn.txn_id
  end

(* Obtain the transaction to charge an operation to: the session's open
   one, or a fresh single-statement transaction (auto-commit). Returns
   the txn and whether it must be committed at statement end. *)
let charge s =
  let t = s.sdb in
  match s.s_txn with
  | Some txn -> (txn, false)
  | None ->
    let txn =
      { txn_id = t.next_txid; undo_ops = []; touched = []; t_snap = None }
    in
    t.next_txid <- t.next_txid + 1;
    log t (Wal.Begin txn.txn_id);
    (txn, true)

let commit_txn t txn =
  log t (Wal.Commit txn.txn_id);
  log_flush t;
  (* the pinned snapshot dies with its transaction; then seal the
     pre-image stashes at the next CSN *)
  Option.iter
    (fun v ->
      snap_release t v;
      txn.t_snap <- None)
    txn.t_snap;
  advance_clock t ~txid:txn.txn_id ~touched:txn.touched;
  (* strict 2PL: locks are held to commit *)
  Lock_manager.release_all t.locks ~owner:txn.txn_id

let rollback_txn _t txn =
  List.iter
    (fun u ->
      match u with
      | Undo_insert { table; rowid } -> ignore (Table.delete table rowid)
      | Undo_delete { table; rowid; row } -> begin
          (* restore the tombstoned slot *)
          match Table.update table rowid row with
          | Ok () -> ()
          | Error _ ->
            (* the slot is a tombstone: Table.update refuses; re-apply by
               direct undelete below *)
            ignore (Table.undelete table rowid row)
        end
      | Undo_update { table; rowid; old_row } ->
        (match Table.update table rowid old_row with
         | Ok () -> ()
         | Error m -> failwith ("rollback failed: " ^ m))
      | Undo_bulk { table; first; count } ->
        (* tombstone the appended range, newest first; Index.remove of a
           never-built entry is a no-op, so partially-built indexes roll
           back consistently *)
        for rowid = first + count - 1 downto first do
          ignore (Table.delete table rowid)
        done)
    txn.undo_ops

let abort t txn =
  (* raw undo first: a pending pre-image keeps concurrent snapshot
     readers consistent through the window where the store still shows
     the aborted writes; only then are those stashes discarded *)
  rollback_txn t txn;
  List.iter (fun tbl -> Table.discard_versions tbl ~txid:txn.txn_id) txn.touched;
  Option.iter
    (fun v ->
      snap_release t v;
      txn.t_snap <- None)
    txn.t_snap;
  log t (Wal.Rollback txn.txn_id);
  (* flushed like a commit: the replication sender reads the file, and an
     unflushed rollback would leave the on-disk log permanently short of
     [wal_position] — no replica could ever catch up past it *)
  log_flush t;
  Lock_manager.release_all t.locks ~owner:txn.txn_id

(* ---------------- locking ---------------- *)

(* Table-lock acquisition for a statement. [Would_block] fails just the
   statement (the transaction keeps its locks and stays queued, so a
   retry after the conflicting commit succeeds). [Deadlock] picks the
   requester as victim: the whole transaction rolls back. *)
let lock_table s txn mode table =
  let t = s.sdb in
  if not t.replaying then
    match
      Lock_manager.acquire t.locks ~owner:txn.txn_id
        ~table:(Catalog.normalize table) mode
    with
    | Lock_manager.Granted -> ()
    | Lock_manager.Would_block ->
      error "table %S is locked by a concurrent transaction" table
    | Lock_manager.Deadlock ->
      abort t txn;
      s.s_txn <- None;
      error "deadlock detected: transaction %d rolled back" txn.txn_id

(* ---------------- statement execution ---------------- *)

let find_table t name =
  match Catalog.find_table t.cat name with
  | Some tbl -> tbl
  | None -> error "no such table %S" name

let eval_const t e =
  let c = Planner.compile_scalar t.cat e in
  Executor.eval_expr t.cat [||] c

let do_insert t txn ~table ~columns ~rows =
  let tbl = find_table t table in
  let schema = Table.schema tbl in
  let arity = Schema.arity schema in
  let positions =
    match columns with
    | None -> List.init arity (fun i -> i)
    | Some cols ->
      List.map
        (fun c ->
          match Schema.column_index_opt schema c with
          | Some i -> i
          | None -> error "no column %S in table %S" c table)
        cols
  in
  let count = ref 0 in
  stash_append t txn tbl;
  List.iter
    (fun value_exprs ->
      if List.length value_exprs <> List.length positions then
        error "INSERT arity mismatch for table %S" table;
      let row = Array.make arity Value.Null in
      List.iteri
        (fun i e -> row.(List.nth positions i) <- eval_const t e)
        value_exprs;
      match Table.insert tbl row with
      | Ok rowid ->
        txn.undo_ops <- Undo_insert { table = tbl; rowid } :: txn.undo_ops;
        log t
          (Wal.Insert
             { txid = txn.txn_id; table = Catalog.normalize table; row; rowid });
        incr count
      | Error m -> error "%s" m)
    rows;
  !count

(* UPDATE/DELETE row selection. When the WHERE clause has equality
   conjuncts covering all columns of some index, probe it instead of
   scanning the heap. *)
let matching_rowids t tbl where =
  let schema = Table.schema tbl in
  let pred =
    Option.map (fun e -> Planner.compile_row_predicate t.cat schema e) where
  in
  let keep (rowid, row) =
    match pred with
    | None -> Some (rowid, row)
    | Some p ->
      if Value.is_truthy (Executor.eval_expr t.cat row p) then Some (rowid, row)
      else None
  in
  let eq_literals =
    let rec conjuncts = function
      | Sql_ast.Binop (Sql_ast.And, a, b) -> conjuncts a @ conjuncts b
      | e -> [ e ]
    in
    match where with
    | None -> []
    | Some e ->
      List.filter_map
        (function
          | Sql_ast.Binop (Sql_ast.Eq, Sql_ast.Col { column; _ }, Sql_ast.Lit v)
          | Sql_ast.Binop (Sql_ast.Eq, Sql_ast.Lit v, Sql_ast.Col { column; _ }) ->
            Some (String.lowercase_ascii column, v)
          | _ -> None)
        (conjuncts e)
  in
  let probe =
    List.find_map
      (fun idx ->
        let cols = List.map String.lowercase_ascii (Index.columns idx) in
        let rec key acc = function
          | [] -> Some (Array.of_list (List.rev acc))
          | c :: rest ->
            (match List.assoc_opt c eq_literals with
             | Some v -> key (v :: acc) rest
             | None -> None)
        in
        Option.map (fun k -> (idx, k)) (key [] cols))
      (Table.indexes tbl)
  in
  match probe with
  | Some (idx, key) ->
    List.filter_map
      (fun rowid ->
        match Table.get tbl rowid with
        | Some row -> keep (rowid, row)
        | None -> None)
      (Index.lookup idx key)
  | None -> List.of_seq (Seq.filter_map keep (Table.scan tbl))

let do_delete t txn ~table ~where =
  let tbl = find_table t table in
  let victims = matching_rowids t tbl where in
  List.iter
    (fun (rowid, row) ->
      stash_write t txn tbl rowid;
      if Table.delete tbl rowid then begin
        txn.undo_ops <- Undo_delete { table = tbl; rowid; row } :: txn.undo_ops;
        log t (Wal.Delete { txid = txn.txn_id; table = Catalog.normalize table; rowid })
      end)
    victims;
  List.length victims

let do_update t txn ~table ~assignments ~where =
  let tbl = find_table t table in
  let schema = Table.schema tbl in
  let compiled =
    List.map
      (fun (col, e) ->
        match Schema.column_index_opt schema col with
        | Some i -> (i, Planner.compile_row_predicate t.cat schema e)
        | None -> error "no column %S in table %S" col table)
      assignments
  in
  let victims = matching_rowids t tbl where in
  List.iter
    (fun (rowid, old_row) ->
      stash_write t txn tbl rowid;
      let new_row = Array.copy old_row in
      List.iter
        (fun (i, ce) -> new_row.(i) <- Executor.eval_expr t.cat old_row ce)
        compiled;
      match Table.update tbl rowid new_row with
      | Ok () ->
        txn.undo_ops <- Undo_update { table = tbl; rowid; old_row } :: txn.undo_ops;
        log t
          (Wal.Update { txid = txn.txn_id; table = Catalog.normalize table; rowid;
                        row = new_row })
      | Error m -> error "%s" m)
    victims;
  List.length victims

let do_create_table t ~ddl_sql (ct : Sql_ast.stmt) =
  match ct with
  | Sql_ast.Create_table { name; if_not_exists; columns; primary_key } ->
    if Catalog.find_table t.cat name <> None then begin
      if if_not_exists then Done "table exists, skipped"
      else error "table %S already exists" name
    end
    else begin
      let inline_pk =
        List.filter_map
          (fun (c : Sql_ast.column_def) ->
            if c.cd_primary_key then Some c.cd_name else None)
          columns
      in
      let pk =
        match primary_key, inline_pk with
        | [], pk -> pk
        | pk, [] -> pk
        | _ -> error "duplicate PRIMARY KEY specification"
      in
      let schema =
        Schema.make ~primary_key:pk (Catalog.normalize name)
          (List.map
             (fun (c : Sql_ast.column_def) ->
               (c.cd_name, c.cd_type, not c.cd_not_null))
             columns)
      in
      (match Catalog.add_table t.cat (Table.create ?storage:t.storage schema) with
       | Ok () ->
         Catalog.bump_version t.cat;
         log t (Wal.Ddl ddl_sql);
         log_flush t;
         Done (Printf.sprintf "table %s created" name)
       | Error m -> error "%s" m)
    end
  | _ -> assert false

let do_create_index t ~ddl_sql ~name ~table ~columns ~unique ~kind =
  let tbl = find_table t table in
  let schema = Table.schema tbl in
  let positions =
    List.map
      (fun c ->
        match Schema.column_index_opt schema c with
        | Some i -> i
        | None -> error "no column %S in table %S" c table)
      columns
  in
  let ikind =
    match kind with
    | Sql_ast.Hash_index -> Index.Hash
    | Sql_ast.Btree_index -> Index.Btree
  in
  let idx =
    Index.create ?storage:t.storage ~name:(Catalog.normalize name)
      ~table:(Catalog.normalize table)
      ~columns:(List.map String.lowercase_ascii columns)
      ~column_positions:positions ~unique ikind
  in
  (* WAL replay over surviving page files (recovery past a truncated
     prefix): a torn post-checkpoint build may have flushed partial index
     pages — the build below must start from empty *)
  if t.replaying && not t.attaching then Index.clear idx;
  match Catalog.add_index ~attach:t.attaching t.cat ~table idx with
  | Ok () ->
    Catalog.bump_version t.cat;
    log t (Wal.Ddl ddl_sql);
    log_flush t;
    Done (Printf.sprintf "index %s created" name)
  | Error m -> error "%s" m

let do_analyze t (stmt : Sql_ast.stmt) target =
  let tables =
    match target with
    | Some name -> [ (Catalog.normalize name, find_table t name) ]
    | None ->
      List.filter_map
        (fun n -> Option.map (fun tbl -> (n, tbl)) (Catalog.find_table t.cat n))
        (Catalog.table_names t.cat)
  in
  List.iter
    (fun (n, tbl) ->
      Catalog.set_stats t.cat n (Stats.analyze tbl);
      if not (List.mem n t.analyzed) then t.analyzed <- t.analyzed @ [ n ])
    tables;
  Catalog.bump_version t.cat;
  (* logged like DDL: replay recomputes statistics from the recovered data *)
  log t (Wal.Ddl (Sql_ast.stmt_to_string stmt));
  log_flush t;
  Done
    (Printf.sprintf "analyzed %d table%s" (List.length tables)
       (if List.length tables = 1 then "" else "s"))

(* EXPLAIN footer surfacing the scheduler's plan-time decision: whether
   this query would run on the session thread or request Exchange
   workers, and why. *)
let sched_footer (planned : Planner.planned) =
  Printf.sprintf "Scheduler: %s est_cost=%.1f\n"
    (Conc.Sched.decision_string
       (Conc.Sched.plan_decision ~est_cost:planned.est_cost))
    planned.est_cost

let rec execute_in (s : session) (stmt : Sql_ast.stmt) : result =
  let t = s.sdb in
  match stmt with
  | Select_stmt _ | Query_stmt _ ->
    let planned =
      match stmt with
      | Select_stmt sel -> Planner.plan_select t.cat sel
      | Query_stmt q -> Planner.plan_query t.cat q
      | _ -> assert false
    in
    (* MVCC: reads take no table locks — they run against a registered
       snapshot, neither blocking writers nor waiting for them. A
       standalone statement reads at the current CSN; a transaction pins
       its snapshot at first read (repeatable reads, own writes
       visible). *)
    (match s.s_txn with
     | Some txn ->
       let view =
         match txn.t_snap with
         | Some v -> v
         | None ->
           let v = snap_register t ~self:txn.txn_id in
           txn.t_snap <- Some v;
           v
       in
       let rows = List.of_seq (Executor.run t.cat ~view planned.plan) in
       Rows { columns = planned.column_names; rows }
     | None ->
       let view = snap_register t ~self:(-1) in
       Fun.protect ~finally:(fun () -> snap_release t view) @@ fun () ->
       let rows = List.of_seq (Executor.run t.cat ~view planned.plan) in
       Rows { columns = planned.column_names; rows })
  | Insert { table; columns; rows } ->
    let txn, auto = charge s in
    (try
       lock_table s txn Lock_manager.Exclusive table;
       let n = do_insert t txn ~table ~columns ~rows in
       Catalog.bump_version t.cat;
       if auto then commit_txn t txn;
       Affected n
     with e ->
       if auto then abort t txn;
       raise e)
  | Delete { table; where } ->
    let txn, auto = charge s in
    (try
       lock_table s txn Lock_manager.Exclusive table;
       let n = do_delete t txn ~table ~where in
       Catalog.bump_version t.cat;
       if auto then commit_txn t txn;
       Affected n
     with
     | Mvcc_conflict m ->
       abort t txn;
       s.s_txn <- None;
       error "%s" m
     | e ->
       if auto then abort t txn;
       raise e)
  | Update { table; assignments; where } ->
    let txn, auto = charge s in
    (try
       lock_table s txn Lock_manager.Exclusive table;
       let n = do_update t txn ~table ~assignments ~where in
       Catalog.bump_version t.cat;
       if auto then commit_txn t txn;
       Affected n
     with
     | Mvcc_conflict m ->
       abort t txn;
       s.s_txn <- None;
       error "%s" m
     | e ->
       if auto then abort t txn;
       raise e)
  | Create_table _ as ct ->
    if s.s_txn <> None then error "DDL inside a transaction is not supported";
    do_create_table t ~ddl_sql:(Sql_ast.stmt_to_string ct) ct
  | Create_index { name; table; columns; unique; kind } as ci ->
    if s.s_txn <> None then error "DDL inside a transaction is not supported";
    do_create_index t ~ddl_sql:(Sql_ast.stmt_to_string ci) ~name ~table ~columns
      ~unique ~kind
  | Drop_table { name; if_exists } as dt ->
    if s.s_txn <> None then error "DDL inside a transaction is not supported";
    let victim = Catalog.find_table t.cat name in
    if Catalog.drop_table t.cat name then begin
      Option.iter Table.destroy victim;  (* unlink page files (disk mode) *)
      t.analyzed <-
        List.filter (fun n -> n <> Catalog.normalize name) t.analyzed;
      Catalog.bump_version t.cat;
      log t (Wal.Ddl (Sql_ast.stmt_to_string dt));
      log_flush t;
      Done (Printf.sprintf "table %s dropped" name)
    end
    else if if_exists then Done "no such table, skipped"
    else error "no such table %S" name
  | Drop_index { name; if_exists } as di ->
    if s.s_txn <> None then error "DDL inside a transaction is not supported";
    let victim = Option.map snd (Catalog.find_index t.cat name) in
    if Catalog.drop_index t.cat name then begin
      Option.iter Index.destroy victim;
      Catalog.bump_version t.cat;
      log t (Wal.Ddl (Sql_ast.stmt_to_string di));
      log_flush t;
      Done (Printf.sprintf "index %s dropped" name)
    end
    else if if_exists then Done "no such index, skipped"
    else error "no such index %S" name
  | Analyze target ->
    if s.s_txn <> None then error "ANALYZE inside a transaction is not supported";
    do_analyze t stmt target
  | Begin_txn ->
    if s.s_txn <> None then error "already in a transaction";
    let txn =
      { txn_id = t.next_txid; undo_ops = []; touched = []; t_snap = None }
    in
    t.next_txid <- t.next_txid + 1;
    log t (Wal.Begin txn.txn_id);
    s.s_txn <- Some txn;
    Done "transaction started"
  | Commit_txn ->
    (match s.s_txn with
     | None -> error "no transaction in progress"
     | Some txn ->
       commit_txn t txn;
       s.s_txn <- None;
       Done "committed")
  | Rollback_txn ->
    (match s.s_txn with
     | None -> error "no transaction in progress"
     | Some txn ->
       abort t txn;
       s.s_txn <- None;
       Done "rolled back")
  | Explain inner ->
    (* EXPLAIN shows the plan the executor will actually run: when the
       vectorized path is on, that is the rewritten plan, with fired
       rewrite rules per node ([fused=…]) and summarised in a footer. *)
    let explained (planned : Planner.planned) =
      let ests = Cost.estimate t.cat planned.plan in
      let vec = Rewrite.enabled () in
      let annot node =
        Cost.annotation ests node ^ (if vec then Rewrite.node_tag node else "")
      in
      Explained
        (Plan.to_string ~annot planned.plan
         ^ (if vec then Rewrite.footer planned.rewrites else "")
         ^ sched_footer planned)
    in
    (match inner with
     | Select_stmt sel -> explained (Planner.plan_select t.cat sel)
     | Query_stmt q -> explained (Planner.plan_query t.cat q)
     | _ -> Explained (Sql_ast.stmt_to_string inner ^ "\n"))
  | Explain_analyze inner ->
    let planned =
      match inner with
      | Select_stmt sel -> Planner.plan_select t.cat sel
      | Query_stmt q -> Planner.plan_query t.cat q
      | _ -> error "EXPLAIN ANALYZE supports only SELECT statements"
    in
    let ests = Cost.estimate t.cat planned.plan in
    let obs = Obs.create planned.plan in
    let pool0 =
      (Bufpool.pool_hits (), Bufpool.pool_misses (), Bufpool.pool_evictions (),
       Bufpool.pool_writebacks ())
    in
    let t0 = Obs.now_s () in
    let view =
      snap_register t
        ~self:(match s.s_txn with Some txn -> txn.txn_id | None -> -1)
    in
    let rows =
      Fun.protect ~finally:(fun () -> snap_release t view) @@ fun () ->
      List.of_seq (Executor.run t.cat ~obs ~view planned.plan)
    in
    let elapsed_ms = (Obs.now_s () -. t0) *. 1000. in
    let vec = Rewrite.enabled () in
    (* estimate-vs-actual, side by side on every node *)
    let annot node =
      Cost.annotation ests node ^ Obs.annotation obs node
      ^ (if vec then Rewrite.node_tag node else "")
    in
    (* buffer-pool traffic of this query; only printed in disk mode so
       in-memory EXPLAIN ANALYZE output is unchanged *)
    let storage_line =
      match t.storage with
      | None -> ""
      | Some _ ->
        let h0, m0, e0, w0 = pool0 in
        Printf.sprintf
          "Storage: pool hits=%d misses=%d evictions=%d writebacks=%d\n"
          (Bufpool.pool_hits () - h0) (Bufpool.pool_misses () - m0)
          (Bufpool.pool_evictions () - e0) (Bufpool.pool_writebacks () - w0)
    in
    Explained
      (Plan.to_string ~annot planned.plan
       ^ (if vec then Rewrite.footer planned.rewrites else "")
       ^ sched_footer planned
       ^ storage_line
       ^ Printf.sprintf
           "Result: %d rows in %.3fms (operator rows=%d, index probes=%d, \
            hash build rows=%d)\n"
           (List.length rows) elapsed_ms (Obs.total_rows obs)
           (Obs.total_probes obs) (Obs.total_build_rows obs))

and execute t stmt = execute_in (default t) stmt

(* ---------------- recovery ---------------- *)

and replay t ops =
  t.replaying <- true;
  Fun.protect ~finally:(fun () -> t.replaying <- false) @@ fun () ->
  List.iter
    (fun (op : Wal.op) ->
      match op with
      | Wal.Ddl sql ->
        (match Sql_parser.parse sql with
         | stmt -> ignore (execute t stmt)
         | exception e -> failwith ("recovery: bad DDL in WAL: " ^ Printexc.to_string e))
      | Wal.Insert { table; row; rowid; _ } ->
        (* idempotent: the record names its rowid, and rowids are
           sequential appends never reused — the table having grown past
           [rowid] means this record is already applied (suffix replay
           over checkpointed pages, or a re-shipped stream) *)
        let tbl = find_table t table in
        if Table.next_rowid tbl <= rowid then (
          match Table.insert tbl row with
          | Ok r ->
            if r <> rowid then
              failwith
                (Printf.sprintf
                   "recovery: %s replayed rowid %d where WAL says %d" table r
                   rowid)
          | Error m -> failwith ("recovery: " ^ m))
      | Wal.Delete { table; rowid; _ } ->
        let tbl = find_table t table in
        ignore (Table.delete tbl rowid)
      | Wal.Update { table; rowid; row; _ } ->
        let tbl = find_table t table in
        (match Table.update tbl rowid row with
         | Ok () -> ()
         | Error m -> failwith ("recovery: " ^ m))
      | Wal.Load { table; spool; rows; first; _ } ->
        (* a committed bulk load: stream the spooled rows back in. The
           row-by-row path (index maintenance included) is fine here —
           recovery is not the hot path the spool optimised. Idempotent
           like Insert: rows below the table's high-water mark are
           already applied, so replay resumes mid-spool. *)
        let tbl = find_table t table in
        let have = max 0 (min rows (Table.next_rowid tbl - first)) in
        if have < rows then begin
          if not (Sys.file_exists spool) then
            failwith
              (Printf.sprintf "recovery: bulk-load spool %s is missing" spool);
          let n = ref 0 in
          Storage.spool_iter spool (fun row ->
              if !n >= have then begin
                match Table.insert tbl row with
                | Ok _ -> ()
                | Error m -> failwith ("recovery: " ^ m)
              end;
              incr n);
          if !n <> rows then
            failwith
              (Printf.sprintf "recovery: spool %s holds %d rows, WAL says %d"
                 spool !n rows)
        end
      | Wal.Begin txid | Wal.Commit txid | Wal.Rollback txid ->
        if txid >= t.next_txid then t.next_txid <- txid + 1)
    ops

let mk_db ?storage () =
  { db_id = Atomic.fetch_and_add next_db_id 1;
    cat = Catalog.create (); wal = None; locks = Lock_manager.create ();
    next_txid = 1; replaying = false; default_session = None;
    storage; attaching = false; temp_storage = false; analyzed = [];
    csn = 0; reg_mutex = Mutex.create (); active_snaps = []; versioned = [] }

(* Advance past every txid in the log, including uncommitted (torn)
   transactions: reusing such an id would let a later commit record
   retroactively seal the torn operations on the next recovery. *)
let advance_txids t ops =
  List.iter
    (fun (op : Wal.op) ->
      match op with
      | Wal.Begin txid | Wal.Commit txid | Wal.Rollback txid
      | Wal.Insert { txid; _ } | Wal.Delete { txid; _ }
      | Wal.Update { txid; _ } | Wal.Load { txid; _ } ->
        if txid >= t.next_txid then t.next_txid <- txid + 1
      | Wal.Ddl _ -> ())
    ops

(* Rebuild every index from its table's heap. Recovery over a truncated
   WAL cannot trust post-checkpoint index pages (a crash may have
   flushed them torn or half-built); the heap — checkpointed prefix
   plus idempotent suffix replay — is the authority. *)
let rebuild_indexes t =
  List.iter
    (fun n ->
      match Catalog.find_table t.cat n with
      | None -> ()
      | Some tbl ->
        let idxs = Table.indexes tbl in
        List.iter Index.clear idxs;
        Seq.iter
          (fun (rowid, row) ->
            List.iter
              (fun idx ->
                match Index.insert idx row rowid with
                | Ok () -> ()
                | Error m -> failwith ("recovery: index rebuild: " ^ m))
              idxs)
          (Table.scan tbl))
    (Catalog.table_names t.cat)

let clear_indexes t =
  List.iter
    (fun n ->
      match Catalog.find_table t.cat n with
      | None -> ()
      | Some tbl -> List.iter Index.clear (Table.indexes tbl))
    (Catalog.table_names t.cat)

(* XOMATIQ_STORAGE=disk flips the default open paths onto the paged
   backend without touching call sites. *)
let env_disk () =
  match Sys.getenv_opt "XOMATIQ_STORAGE" with
  | Some s -> String.lowercase_ascii (String.trim s) = "disk"
  | None -> false

let temp_dir_serial = Atomic.make 0

let fresh_temp_dir () =
  let rec pick () =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "xomatiq-db-%d-%d" (Unix.getpid ())
           (Atomic.fetch_and_add temp_dir_serial 1))
    in
    if Sys.file_exists d then pick () else d
  in
  let d = pick () in
  Unix.mkdir d 0o755;
  d

let rec rm_rf p =
  if Sys.is_directory p then begin
    Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
    (try Unix.rmdir p with Unix.Unix_error _ -> ())
  end
  else try Sys.remove p with Sys_error _ -> ()

(* Open a disk-backed database. The manifest decides between the two
   recovery paths (see {!Storage}): when it is present and pins exactly
   the WAL's current record count, the page files reflect a clean
   shutdown and we attach by executing the manifest's final-state DDL
   (tables and indexes open their existing files, no rebuild; statistics
   are recomputed for the tables analyzed at shutdown). Anything else —
   no manifest (crash), count mismatch (torn checkpoint) — wipes the
   page directory and rebuilds from the committed WAL. The manifest is
   deleted before either path so a crash mid-open cannot be mistaken for
   a clean shutdown. *)
let open_disk_at ~dir ~wal_path ~temp =
  let st = Storage.create ~dir () in
  let t = mk_db ~storage:st () in
  t.temp_storage <- temp;
  let manifest = Storage.read_manifest st in
  Storage.drop_manifest st;
  Option.iter Wal.trim_torn_tail wal_path;
  let wal_lines = match wal_path with Some p -> Wal.line_count p | None -> 0 in
  let wal_base = match wal_path with Some p -> Wal.read_base p | None -> 0 in
  let all_ops = match wal_path with Some p -> Wal.read_ops p | None -> [] in
  let attach_ddls ddls =
    t.attaching <- true;
    Fun.protect ~finally:(fun () -> t.attaching <- false) @@ fun () ->
    List.iter
      (fun ddl ->
        match Sql_parser.parse ddl with
        | stmt -> ignore (execute t stmt)
        | exception e ->
          failwith ("attach: bad DDL in manifest: " ^ Printexc.to_string e))
      ddls
  in
  (* statistics are not persisted; recompute them (sampled) *)
  let reanalyze names =
    List.iter (fun tbl -> ignore (execute t (Sql_ast.Analyze (Some tbl)))) names
  in
  (match manifest with
   | Some m when m.wal_lines = wal_lines ->
     attach_ddls m.ddls;
     reanalyze m.analyzed
   | Some m when wal_base > 0 && m.wal_lines >= wal_base
              && m.wal_lines <= wal_lines ->
     (* torn checkpoint over a truncated log. The dropped prefix is
        durable in the checkpointed pages (truncation never passes the
        manifest it was taken under — see [checkpoint]): attach the
        manifest's final state and replay the committed suffix past it.
        The replayed records are idempotent (each carries its rowid),
        but index pages written after the checkpoint are not trusted:
        they are cleared up front — so replay's unique checks see only
        what this pass inserted — and every index is rebuilt from the
        recovered heaps at the end. *)
     attach_ddls m.ddls;
     clear_indexes t;
     (match wal_path with
      | Some p -> replay t (Wal.committed_ops (Wal.ops_from p ~pos:m.wal_lines))
      | None -> ());
     rebuild_indexes t;
     reanalyze
       (List.sort_uniq String.compare (m.analyzed @ t.analyzed))
   | _ when wal_base > 0 ->
     failwith
       "recovery: the WAL prefix was truncated and no manifest covers it; \
        restore the data directory or re-seed from the primary"
   | _ ->
     Storage.wipe_pages st;
     replay t (Wal.committed_ops all_ops));
  advance_txids t all_ops;
  (match wal_path with Some p -> t.wal <- Some (Wal.open_log p) | None -> ());
  Bufpool.set_wal_barrier (Storage.pool st) (fun () -> log_flush t);
  t

let open_disk ?wal ~dir () = open_disk_at ~dir ~wal_path:wal ~temp:false

let open_in_memory () =
  if env_disk () then
    (* same volatile semantics as the vector backend — no WAL, pages in
       a private temp dir deleted at close — but all reads go through
       the buffer pool *)
    open_disk_at ~dir:(fresh_temp_dir ()) ~wal_path:None ~temp:true
  else mk_db ()

let open_with_wal path =
  if env_disk () then
    open_disk_at ~dir:(path ^ ".pages") ~wal_path:(Some path) ~temp:false
  else begin
    Wal.trim_torn_tail path;
    if Wal.read_base path > 0 then
      failwith
        "recovery: the WAL prefix was truncated, but the in-memory backend \
         has no checkpointed pages to recover it from";
    let all_ops = Wal.read_ops path in
    let t = mk_db () in
    replay t (Wal.committed_ops all_ops);
    advance_txids t all_ops;
    t.wal <- Some (Wal.open_log path);
    t
  end

let storage t = t.storage
let is_disk t = t.storage <> None
let data_dir t = Option.map Storage.dir t.storage

(* Final-state DDL for the manifest: each table's CREATE TABLE (which
   re-creates its implicit pkey index) followed by its secondary
   indexes, tables in name order. *)
let manifest_ddls t =
  List.concat_map
    (fun tname ->
      match Catalog.find_table t.cat tname with
      | None -> []
      | Some tbl ->
        let schema = Table.schema tbl in
        let pkey_name = schema.Schema.table_name ^ "_pkey" in
        Schema.to_string schema
        :: List.filter_map
             (fun idx ->
               if Index.name idx = pkey_name then None
               else
                 Some
                   (Printf.sprintf "CREATE %s%sINDEX %s ON %s (%s)"
                      (if Index.is_unique idx then "UNIQUE " else "")
                      (match Index.kind idx with
                       | Index.Hash -> "HASH "
                       | Index.Btree -> "")
                      (Index.name idx) tname
                      (String.concat ", " (Index.columns idx))))
             (Table.indexes tbl))
    (Catalog.table_names t.cat)

let checkpoint ?truncate_upto t =
  match t.storage with
  | None -> ()
  | Some st ->
    (* order: log first, then pages, then the manifest that blesses them *)
    log_flush t;
    Bufpool.flush (Storage.pool st);
    let wal_lines =
      match t.wal with Some w -> Wal.line_count (Wal.path w) | None -> 0
    in
    Storage.write_manifest st
      { Storage.wal_lines; ddls = manifest_ddls t; analyzed = t.analyzed };
    (* the manifest pins everything below [wal_lines]; a WAL prefix
       below the caller's bound (the slowest connected replica's
       acknowledged position, typically) is dead weight. Only called at
       statement boundaries: truncating inside an open transaction
       would orphan its commit/rollback record past its operations. *)
    match truncate_upto, t.wal with
    | Some upto, Some w ->
      let upto = min upto wal_lines in
      let spools = Wal.truncate_prefix w ~upto in
      List.iter (fun sp -> try Sys.remove sp with Sys_error _ -> ()) spools
    | _ -> ()

let close t =
  let s = default t in
  (match s.s_txn with
   | Some txn ->
     abort t txn;
     s.s_txn <- None
   | None -> ());
  (match t.storage with
   | None -> ()
   | Some st ->
     checkpoint t;
     List.iter
       (fun n -> Option.iter Table.close (Catalog.find_table t.cat n))
       (Catalog.table_names t.cat);
     ignore st);
  Option.iter Wal.close t.wal;
  match t.storage with
  | Some st when t.temp_storage -> rm_rf (Storage.dir st)
  | _ -> ()

(* ---------------- public API ---------------- *)

let session_exec s sql =
  match Sql_parser.parse sql with
  | stmt ->
    (try Ok (execute_in s stmt) with
     | Db_error m -> Error m
     | Planner.Plan_error m -> Error ("planning: " ^ m)
     | Executor.Runtime_error m -> Error ("execution: " ^ m)
     | Failure m -> Error m)
  | exception ((Sql_parser.Parse_error _ | Sql_lexer.Lex_error _) as e) ->
    Error (Sql_parser.error_to_string e)

let exec t sql = session_exec (default t) sql

let session_in_transaction s = s.s_txn <> None

let exec_exn t sql =
  match exec t sql with
  | Ok r -> r
  | Error m -> failwith (Printf.sprintf "SQL failed (%s): %s" sql m)

let query t sql =
  match exec t sql with
  | Ok (Rows { columns; rows }) -> Ok (columns, rows)
  | Ok _ -> Error "statement did not return rows"
  | Error _ as e -> e

let query_exn t sql =
  match query t sql with
  | Ok r -> r
  | Error m -> failwith (Printf.sprintf "SQL query failed (%s): %s" sql m)

let insert_rows t ~table rows =
  try
    let tbl = find_table t table in
    let s = default t in
    let txn, auto = charge s in
    (try
       lock_table s txn Lock_manager.Exclusive table;
       stash_append t txn tbl;
       let count = ref 0 in
       List.iter
         (fun row ->
           match Table.insert tbl row with
           | Ok rowid ->
             txn.undo_ops <- Undo_insert { table = tbl; rowid } :: txn.undo_ops;
             log t
               (Wal.Insert
                  { txid = txn.txn_id; table = Catalog.normalize table; row;
                    rowid });
             incr count
           | Error m -> error "%s" m)
         rows;
       Catalog.bump_version t.cat;
       if auto then commit_txn t txn;
       Ok !count
     with e ->
       if auto then abort t txn;
       raise e)
  with
  | Db_error m -> Error m
  | Failure m -> Error m

(* Spool-then-load: one WAL Load record stands in for per-row Insert
   records; rows append through {!Table.append_bulk} (no per-row index
   maintenance) and each index is then built in one pass — bottom-up
   from an externally sorted run when it is an empty paged tree,
   row-at-a-time over just the appended range otherwise. The final
   table and index state is identical to per-row inserts of the same
   rows: rowids are sequential appends either way, and per-key posting
   order is rowid-ascending under both build strategies. *)
let bulk_load t ~table ~spool ~rows =
  try
    let tbl = find_table t table in
    let s = default t in
    let txn, auto = charge s in
    (try
       lock_table s txn Lock_manager.Exclusive table;
       stash_append t txn tbl;
       let first = Table.next_rowid tbl in
       log t
         (Wal.Load
            { txid = txn.txn_id; table = Catalog.normalize table; spool; rows;
              first });
       (* undo first: a failure mid-append must still tombstone the rows
          already in (deleting past the end is a no-op) *)
       txn.undo_ops <- Undo_bulk { table = tbl; first; count = rows } :: txn.undo_ops;
       let n = ref 0 in
       Storage.spool_iter spool (fun row ->
           match Table.append_bulk tbl row with
           | Ok _ -> incr n
           | Error m -> error "%s" m);
       if !n <> rows then
         error "bulk load: spool %s holds %d rows, expected %d" spool !n rows;
       List.iter
         (fun idx ->
           if Index.is_paged idx && Index.entry_count idx = 0 then begin
             let pairs =
               Seq.map
                 (fun (rowid, row) ->
                   (Rowcodec.encode (Index.key_of_row idx row), rowid))
                 (Table.scan tbl)
             in
             let sorted =
               match t.storage with
               | Some st -> Storage.external_sort st ~name:(Index.name idx) pairs
               | None -> assert false (* paged index implies disk backend *)
             in
             match Index.bulk_load idx sorted with
             | Ok () -> ()
             | Error m -> error "%s" m
           end
           else
             Seq.iter
               (fun (rowid, row) ->
                 match Index.insert idx row rowid with
                 | Ok () -> ()
                 | Error m -> error "%s" m)
               (Table.scan_range tbl ~lo:first ~hi:(first + !n)))
         (Table.indexes tbl);
       Catalog.bump_version t.cat;
       if auto then commit_txn t txn;
       Ok !n
     with e ->
       if auto then abort t txn;
       raise e)
  with
  | Db_error m -> Error m
  | Failure m -> Error m

let exec_script t script =
  match Sql_parser.parse_many script with
  | stmts ->
    let rec go n = function
      | [] -> Ok n
      | stmt :: rest ->
        (match
           try Ok (execute t stmt) with
           | Db_error m -> Error m
           | Planner.Plan_error m -> Error ("planning: " ^ m)
           | Executor.Runtime_error m -> Error ("execution: " ^ m)
           | Failure m -> Error m
         with
         | Ok _ -> go (n + 1) rest
         | Error m -> Error m)
    in
    go 0 stmts
  | exception ((Sql_parser.Parse_error _ | Sql_lexer.Lex_error _) as e) ->
    Error (Sql_parser.error_to_string e)

let explain t sql =
  match exec t ("EXPLAIN " ^ sql) with
  | Ok (Explained s) -> Ok s
  | Ok _ -> Error "not an explainable statement"
  | Error _ as e -> e

let explain_analyze t sql =
  match exec t ("EXPLAIN ANALYZE " ^ sql) with
  | Ok (Explained s) -> Ok s
  | Ok _ -> Error "not an explainable statement"
  | Error _ as e -> e

let plan_select t sel = Planner.plan_select t.cat sel

let run_planned t ?obs ?cancel (planned : Planner.planned) =
  let view = snap_register t ~self:(-1) in
  Fun.protect ~finally:(fun () -> snap_release t view) @@ fun () ->
  (planned.column_names,
   List.of_seq (Executor.run t.cat ?obs ?cancel ~view planned.plan))

(* ---------------- replication hooks ----------------

   The primary ships raw WAL lines; a replica appends them to its own
   log verbatim — so the replica's WAL is line-for-line the primary's
   stream and logical record positions agree across nodes by
   construction — then applies committed transactions through the MVCC
   machinery so replica reads stay snapshot-consistent mid-apply. *)

let wal_position t = match t.wal with Some w -> Wal.position w | None -> 0
let wal_base t = match t.wal with Some w -> Wal.base w | None -> 0
let wal_file t = Option.map Wal.path t.wal

let repl_append_lines t lines =
  match t.wal with
  | None -> ()
  | Some w ->
    List.iter (Wal.append_line w) lines;
    Wal.flush w

(* Apply one shipped committed transaction (its data operations, in
   stream order; control records are ignored). Same idempotent logic as
   recovery replay — a replica restarting mid-stream re-receives records
   it already applied — wrapped in stash/seal so concurrent snapshot
   readers on this replica never observe a half-applied transaction's
   rows torn against each other within one table. *)
let repl_apply_txn t (ops : Wal.op list) =
  let txid =
    match
      List.find_map
        (fun (op : Wal.op) ->
          match op with
          | Wal.Insert { txid; _ } | Wal.Delete { txid; _ }
          | Wal.Update { txid; _ } | Wal.Load { txid; _ } -> Some txid
          | _ -> None)
        ops
    with
    | Some txid -> txid
    | None -> t.next_txid
  in
  if txid >= t.next_txid then t.next_txid <- txid + 1;
  let touched = ref [] in
  let touch_tbl tbl =
    if not (List.memq tbl !touched) then touched := tbl :: !touched
  in
  let stash_mut tbl rowid =
    touch_tbl tbl;
    ignore (Table.stash_row tbl ~txid rowid)
  in
  let stash_app tbl =
    touch_tbl tbl;
    Table.stash_len tbl ~txid
  in
  List.iter
    (fun (op : Wal.op) ->
      match op with
      | Wal.Insert { table; row; rowid; _ } ->
        let tbl = find_table t table in
        if Table.next_rowid tbl <= rowid then begin
          stash_app tbl;
          match Table.insert tbl row with
          | Ok r ->
            if r <> rowid then
              failwith
                (Printf.sprintf
                   "replication: %s applied rowid %d where the stream says %d"
                   table r rowid)
          | Error m -> failwith ("replication: " ^ m)
        end
      | Wal.Delete { table; rowid; _ } ->
        let tbl = find_table t table in
        stash_mut tbl rowid;
        ignore (Table.delete tbl rowid)
      | Wal.Update { table; rowid; row; _ } ->
        let tbl = find_table t table in
        stash_mut tbl rowid;
        (match Table.update tbl rowid row with
         | Ok () -> ()
         | Error m -> failwith ("replication: " ^ m))
      | Wal.Load { table; spool; rows; first; _ } ->
        let tbl = find_table t table in
        let have = max 0 (min rows (Table.next_rowid tbl - first)) in
        if have < rows then begin
          stash_app tbl;
          if not (Sys.file_exists spool) then
            failwith
              (Printf.sprintf "replication: bulk-load spool %s is missing"
                 spool);
          let n = ref 0 in
          Storage.spool_iter spool (fun row ->
              (if !n >= have then
                 match Table.insert tbl row with
                 | Ok _ -> ()
                 | Error m -> failwith ("replication: " ^ m));
              incr n)
        end
      | Wal.Ddl _ | Wal.Begin _ | Wal.Commit _ | Wal.Rollback _ -> ())
    ops;
  advance_clock t ~txid ~touched:!touched;
  Catalog.bump_version t.cat

(* Apply a shipped DDL statement. [replaying] suppresses re-logging (the
   raw line was already appended by the shipper) and lock acquisition;
   the DDL handlers bump the catalog version themselves, which is what
   invalidates the replica's plan cache. *)
let repl_apply_ddl t sql =
  t.replaying <- true;
  Fun.protect ~finally:(fun () -> t.replaying <- false) @@ fun () ->
  match Sql_parser.parse sql with
  | stmt -> ignore (execute t stmt)
  | exception e -> failwith ("replication: bad DDL: " ^ Printexc.to_string e)
