(* Disk-backend context: one buffer pool and one data directory shared
   by every paged structure of a database, plus the small file formats
   that tie recovery together.

   Directory layout:

     <dir>/heap/<table>.{heap,map}   paged heaps (Heapfile)
     <dir>/idx/<index>.bt            paged B+trees (Btree_paged)
     <dir>/spool/...                 bulk-load spools + sort runs
     <dir>/MANIFEST                  clean-shutdown marker

   Page files carry no per-page LSNs, so their contents are only trusted
   after a clean shutdown. The manifest — written atomically at
   checkpoint/close, deleted first thing at open — records the WAL line
   count the pages reflect plus the DDL needed to re-attach (final-state
   CREATE TABLE / CREATE INDEX statements and which tables have stats).
   On open: manifest present and its line count equals the (torn-tail
   trimmed) WAL's → attach to the page files as-is; otherwise wipe the
   page directory and rebuild from the committed WAL. Replaying the
   final-state DDL rather than the WAL's DDL history is what makes
   attach safe: a replayed [DROP TABLE] would otherwise unlink the very
   page files we are attaching to. *)

type t = {
  pool : Bufpool.t;
  dir : string;
}

type manifest = {
  wal_lines : int;
  ddls : string list;        (* final-state DDL, creation order *)
  analyzed : string list;    (* tables with statistics at shutdown *)
}

let ensure_dir d =
  if not (Sys.file_exists d) then
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let create ?pool ~dir () =
  let pool = match pool with Some p -> p | None -> Bufpool.create () in
  ensure_dir dir;
  ensure_dir (Filename.concat dir "heap");
  ensure_dir (Filename.concat dir "idx");
  ensure_dir (Filename.concat dir "spool");
  { pool; dir }

let pool t = t.pool
let dir t = t.dir

let heap_base t table = Filename.concat (Filename.concat t.dir "heap") table
let index_path t index = Filename.concat (Filename.concat t.dir "idx") (index ^ ".bt")
let spool_path t name = Filename.concat (Filename.concat t.dir "spool") name

let manifest_path t = Filename.concat t.dir "MANIFEST"

(* Remove every page file (not the spools: committed Load records
   reference them during WAL replay). *)
let wipe_pages t =
  List.iter
    (fun sub ->
      let d = Filename.concat t.dir sub in
      if Sys.file_exists d then
        Array.iter
          (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
          (Sys.readdir d))
    [ "heap"; "idx" ]

let drop_manifest t =
  try Sys.remove (manifest_path t) with Sys_error _ -> ()

let write_manifest t m =
  let tmp = manifest_path t ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc "xomatiq-manifest|1\n";
  Printf.fprintf oc "wal|%d\n" m.wal_lines;
  List.iter (fun d -> Printf.fprintf oc "ddl|%s\n" d) m.ddls;
  List.iter (fun tname -> Printf.fprintf oc "analyze|%s\n" tname) m.analyzed;
  close_out oc;
  Sys.rename tmp (manifest_path t)

let read_manifest t =
  let p = manifest_path t in
  if not (Sys.file_exists p) then None
  else
    let ic = open_in p in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    match input_line ic with
    | exception End_of_file -> None
    | header when header <> "xomatiq-manifest|1" -> None
    | _ ->
      let wal_lines = ref (-1) and ddls = ref [] and analyzed = ref [] in
      (try
         while true do
           let line = input_line ic in
           match String.index_opt line '|' with
           | None -> ()
           | Some i ->
             let tag = String.sub line 0 i in
             let rest = String.sub line (i + 1) (String.length line - i - 1) in
             (match tag with
              | "wal" -> wal_lines := (match int_of_string_opt rest with Some n -> n | None -> -1)
              | "ddl" -> ddls := rest :: !ddls
              | "analyze" -> analyzed := rest :: !analyzed
              | _ -> ())
         done
       with End_of_file -> ());
      if !wal_lines < 0 then None
      else
        Some { wal_lines = !wal_lines; ddls = List.rev !ddls; analyzed = List.rev !analyzed }

(* ---- spool files ----

   A spool is the row payload of one bulk load: length-prefixed
   Rowcodec images, [u32 LE len | image] back to back. Spools are
   referenced by WAL Load records, so they must survive as long as the
   log does; Database garbage-collects them at checkpoint. *)

type spool_writer = {
  oc : out_channel;
  sbuf : Buffer.t;
  mutable rows : int;
  spath : string;
}

let spool_create path =
  { oc = open_out_bin path; sbuf = Buffer.create 256; rows = 0; spath = path }

let spool_add w row =
  Buffer.clear w.sbuf;
  Rowcodec.encode_to w.sbuf row;
  let len = Buffer.length w.sbuf in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_le hdr 0 (Int32.of_int len);
  output_bytes w.oc hdr;
  Buffer.output_buffer w.oc w.sbuf;
  w.rows <- w.rows + 1

let spool_finish w =
  flush w.oc;
  (try Unix.fsync (Unix.descr_of_out_channel w.oc) with Unix.Unix_error _ -> ());
  close_out w.oc;
  w.rows

let spool_rows w = w.rows
let spool_writer_path w = w.spath

let spool_iter path f =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let hdr = Bytes.create 4 in
  let rec go () =
    match really_input ic hdr 0 4 with
    | exception End_of_file -> ()
    | () ->
      let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
      let body = Bytes.create len in
      really_input ic body 0 len;
      f (fst (Rowcodec.decode body 0));
      go ()
  in
  go ()

let spool_remove path = try Sys.remove path with Sys_error _ -> ()

(* ---- external sort ----

   Sort (encoded key, rowid) pairs by (Btree.compare_key on the decoded
   key, rowid) for bottom-up index builds. Runs of [run_size] pairs are
   sorted in memory; if the input exhausts within one run nothing
   touches disk, otherwise runs spill to [<prefix>.runN] files and a
   k-way merge streams them back. Decoded keys are cached per pair so
   each key is decoded once per phase. *)

let run_size = 100_000

type sort_entry = { enc : string; dec : Value.t array; srow : int }

let entry_cmp a b =
  let c = Btree.compare_key a.dec b.dec in
  if c <> 0 then c else compare a.srow b.srow

let write_run path (entries : sort_entry array) =
  let oc = open_out_bin path in
  let hdr = Bytes.create 12 in
  Array.iter
    (fun e ->
      Bytes.set_int32_le hdr 0 (Int32.of_int (String.length e.enc));
      Bytes.set_int64_le hdr 4 (Int64.of_int e.srow);
      output_bytes oc hdr;
      output_string oc e.enc)
    entries;
  close_out oc

type run_reader = { ric : in_channel; rpath : string; mutable cur : sort_entry option }

let run_advance r =
  let hdr = Bytes.create 12 in
  match really_input r.ric hdr 0 12 with
  | exception End_of_file ->
    r.cur <- None;
    close_in_noerr r.ric;
    (try Sys.remove r.rpath with Sys_error _ -> ())
  | () ->
    let klen = Int32.to_int (Bytes.get_int32_le hdr 0) in
    let srow = Int64.to_int (Bytes.get_int64_le hdr 4) in
    let kb = Bytes.create klen in
    really_input r.ric kb 0 klen;
    let enc = Bytes.unsafe_to_string kb in
    r.cur <- Some { enc; dec = Rowcodec.decode_string enc; srow }

let external_sort t ~name (pairs : (string * int) Seq.t) : (string * int) Seq.t =
  let runs = ref [] in
  let buf = Array.make run_size None in
  let n = ref 0 in
  let flush_run () =
    if !n > 0 then begin
      let arr = Array.init !n (fun i -> Option.get buf.(i)) in
      Array.sort entry_cmp arr;
      let path = spool_path t (Printf.sprintf "%s.run%d" name (List.length !runs)) in
      write_run path arr;
      runs := path :: !runs;
      n := 0
    end
  in
  let finish_in_memory () =
    let arr = Array.init !n (fun i -> Option.get buf.(i)) in
    Array.sort entry_cmp arr;
    Array.to_seq (Array.map (fun e -> (e.enc, e.srow)) arr)
  in
  Seq.iter
    (fun (enc, srow) ->
      if !n = run_size then flush_run ();
      buf.(!n) <- Some { enc; dec = Rowcodec.decode_string enc; srow };
      incr n)
    pairs;
  if !runs = [] then finish_in_memory ()
  else begin
    flush_run ();
    let readers =
      List.map
        (fun rpath ->
          let r = { ric = open_in_bin rpath; rpath; cur = None } in
          run_advance r;
          r)
        (List.rev !runs)
    in
    let rec merged () =
      let best =
        List.fold_left
          (fun acc r ->
            match r.cur, acc with
            | None, _ -> acc
            | Some _, None -> Some r
            | Some e, Some b ->
              (match b.cur with
               | Some be when entry_cmp e be < 0 -> Some r
               | _ -> acc))
          None readers
      in
      match best with
      | None -> Seq.Nil
      | Some r ->
        let e = Option.get r.cur in
        run_advance r;
        Seq.Cons ((e.enc, e.srow), merged)
    in
    merged
  end
