let now_s () = Unix.gettimeofday ()

(* The process-wide counters/timers/histograms below are shared across
   domains once queries run in parallel, so Counter is an atomic and the
   compound updates in Timer/Histogram take a per-instance mutex. *)

module Counter = struct
  type t = int Atomic.t

  let create () = Atomic.make 0

  let incr ?(by = 1) t =
    ignore (Atomic.fetch_and_add t by)

  let value t = Atomic.get t
  let reset t = Atomic.set t 0
end

module Timer = struct
  type t = { lock : Mutex.t; mutable total : float; mutable samples : int }

  let create () = { lock = Mutex.create (); total = 0.; samples = 0 }

  let add_s t s =
    Mutex.lock t.lock;
    t.total <- t.total +. s;
    t.samples <- t.samples + 1;
    Mutex.unlock t.lock

  let time t f =
    let t0 = now_s () in
    let finally () = add_s t (now_s () -. t0) in
    Fun.protect ~finally f

  let total_s t =
    Mutex.lock t.lock;
    let v = t.total in
    Mutex.unlock t.lock;
    v

  let total_ms t = total_s t *. 1000.

  let samples t =
    Mutex.lock t.lock;
    let v = t.samples in
    Mutex.unlock t.lock;
    v

  let reset t =
    Mutex.lock t.lock;
    t.total <- 0.;
    t.samples <- 0;
    Mutex.unlock t.lock
end

module Histogram = struct
  (* bucket i holds durations in [2^i, 2^(i+1)) microseconds *)
  let nbuckets = 40

  type t = {
    lock : Mutex.t;
    buckets : int array;
    mutable count : int;
    mutable max_s : float;
  }

  let create () =
    { lock = Mutex.create (); buckets = Array.make nbuckets 0; count = 0; max_s = 0. }

  let bucket_of_s s =
    let us = s *. 1e6 in
    if us < 1. then 0
    else min (nbuckets - 1) (int_of_float (Float.log2 us))

  let observe t s =
    let i = bucket_of_s s in
    Mutex.lock t.lock;
    t.buckets.(i) <- t.buckets.(i) + 1;
    t.count <- t.count + 1;
    if s > t.max_s then t.max_s <- s;
    Mutex.unlock t.lock

  let count t =
    Mutex.lock t.lock;
    let v = t.count in
    Mutex.unlock t.lock;
    v

  (* upper bound (seconds) of the bucket holding quantile q *)
  let quantile t q =
    Mutex.lock t.lock;
    let count = t.count and buckets = Array.copy t.buckets in
    Mutex.unlock t.lock;
    if count = 0 then 0.
    else begin
      let target =
        let x = int_of_float (Float.ceil (Float.of_int count *. q)) in
        max 1 (min count x)
      in
      let seen = ref 0 and result = ref 0. in
      (try
         Array.iteri
           (fun i n ->
             seen := !seen + n;
             if !seen >= target then begin
               result := Float.pow 2. (float_of_int (i + 1)) /. 1e6;
               raise Exit
             end)
           buckets
       with Exit -> ());
      !result
    end

  let to_string t =
    if count t = 0 then "empty"
    else begin
      Mutex.lock t.lock;
      let n = t.count and max_s = t.max_s in
      Mutex.unlock t.lock;
      Printf.sprintf "n=%d p50<=%.3fms p95<=%.3fms max=%.3fms" n
        (quantile t 0.5 *. 1000.) (quantile t 0.95 *. 1000.) (max_s *. 1000.)
    end

  let max_s t =
    Mutex.lock t.lock;
    let v = t.max_s in
    Mutex.unlock t.lock;
    v
end

(* ------------------------------------------------------------------ *)
(* Metric registry                                                     *)
(* ------------------------------------------------------------------ *)

type metric =
  | MCounter of Counter.t
  | MTimer of Timer.t
  | MHistogram of Histogram.t
  | MGauge of (unit -> int)

let registry_lock = Mutex.create ()
let registry : (string, metric) Hashtbl.t = Hashtbl.create 32

let register name metric =
  Mutex.lock registry_lock;
  Hashtbl.replace registry name metric;
  Mutex.unlock registry_lock

let register_counter name c = register name (MCounter c)
let register_timer name t = register name (MTimer t)
let register_histogram name h = register name (MHistogram h)
let register_gauge name f = register name (MGauge f)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let dump_json () =
  Mutex.lock registry_lock;
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry [] in
  Mutex.unlock registry_lock;
  let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  let section pred render =
    entries
    |> List.filter_map (fun (name, m) ->
        match pred m with
        | Some payload ->
          Some (Printf.sprintf "\"%s\": %s" (json_escape name) (render payload))
        | None -> None)
    |> String.concat ", "
  in
  let counters =
    section (function MCounter c -> Some (Counter.value c) | _ -> None)
      string_of_int
  in
  let gauges =
    section
      (function
        | MGauge f -> Some (try f () with _ -> 0)
        | _ -> None)
      string_of_int
  in
  let timers =
    section (function MTimer t -> Some t | _ -> None) (fun t ->
        Printf.sprintf "{\"total_ms\": %.3f, \"samples\": %d}" (Timer.total_ms t)
          (Timer.samples t))
  in
  let histograms =
    section (function MHistogram h -> Some h | _ -> None) (fun h ->
        Printf.sprintf
          "{\"count\": %d, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": \
           %.3f, \"max_ms\": %.3f}"
          (Histogram.count h)
          (Histogram.quantile h 0.5 *. 1000.)
          (Histogram.quantile h 0.95 *. 1000.)
          (Histogram.quantile h 0.99 *. 1000.)
          (Histogram.max_s h *. 1000.))
  in
  Printf.sprintf
    "{\"counters\": {%s}, \"gauges\": {%s}, \"timers\": {%s}, \"histograms\": \
     {%s}}"
    counters gauges timers histograms

(* ------------------------------------------------------------------ *)
(* Plan profiling                                                      *)
(* ------------------------------------------------------------------ *)

type op_stats = {
  mutable loops : int;
  mutable rows : int;
  mutable probes : int;
  mutable build_rows : int;
  mutable time_s : float;
}

(* Keyed by physical identity: the planner builds every node exactly once,
   and plans are small, so a linear scan with [==] is both correct (no
   accidental merging of structurally equal operators) and cheap. *)
type profile = (Plan.t * op_stats) list

let fresh () = { loops = 0; rows = 0; probes = 0; build_rows = 0; time_s = 0. }

let create plan = List.map (fun node -> (node, fresh ())) (Plan.descendants plan)

let find profile node =
  let rec go = function
    | [] -> None
    | (n, st) :: rest -> if n == node then Some st else go rest
  in
  go profile

let observed st seq =
  st.loops <- st.loops + 1;
  let rec go seq () =
    let t0 = now_s () in
    let step = seq () in
    st.time_s <- st.time_s +. (now_s () -. t0);
    match step with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (x, rest) ->
      st.rows <- st.rows + 1;
      Seq.Cons (x, go rest)
  in
  go seq

(* Batch-mode variant of [observed]: each element is a row *batch*, so
   the rows counter advances by the batch's live count — EXPLAIN ANALYZE
   row totals agree between the iterator and vectorized executors. *)
let observed_batches ~live st seq =
  st.loops <- st.loops + 1;
  let rec go seq () =
    let t0 = now_s () in
    let step = seq () in
    st.time_s <- st.time_s +. (now_s () -. t0);
    match step with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (b, rest) ->
      st.rows <- st.rows + live b;
      Seq.Cons (b, go rest)
  in
  go seq

let annotation profile node =
  match find profile node with
  | None -> ""
  | Some st ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf
      (Printf.sprintf " (rows=%d loops=%d time=%.3fms" st.rows st.loops
         (st.time_s *. 1000.));
    if st.probes > 0 then
      Buffer.add_string buf (Printf.sprintf " probes=%d" st.probes);
    if st.build_rows > 0 then
      Buffer.add_string buf (Printf.sprintf " build=%d" st.build_rows);
    Buffer.add_char buf ')';
    Buffer.contents buf

let annotate profile plan = Plan.to_string ~annot:(annotation profile) plan

let total f profile = List.fold_left (fun acc (_, st) -> acc + f st) 0 profile

let total_rows profile = total (fun st -> st.rows) profile
let total_probes profile = total (fun st -> st.probes) profile
let total_build_rows profile = total (fun st -> st.build_rows) profile
