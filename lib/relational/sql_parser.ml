open Sql_ast

exception Parse_error of { offset : int; message : string }

type parser_state = {
  toks : Sql_lexer.located array;
  mutable pos : int;
}

let error st message =
  let offset =
    if st.pos < Array.length st.toks then st.toks.(st.pos).offset else 0
  in
  raise (Parse_error { offset; message })

let peek st = st.toks.(st.pos).token

let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).token
  else Sql_lexer.Eof

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let accept_kw st kw =
  match peek st with
  | Sql_lexer.Keyword k when k = kw -> advance st; true
  | _ -> false

let expect_kw st kw =
  if not (accept_kw st kw) then
    error st (Printf.sprintf "expected %s, found %s" kw
                (Sql_lexer.token_to_string (peek st)))

let accept_sym st sym =
  match peek st with
  | Sql_lexer.Symbol s when s = sym -> advance st; true
  | _ -> false

let expect_sym st sym =
  if not (accept_sym st sym) then
    error st (Printf.sprintf "expected %S, found %s" sym
                (Sql_lexer.token_to_string (peek st)))

let parse_ident st =
  match peek st with
  | Sql_lexer.Ident name -> advance st; name
  | t -> error st (Printf.sprintf "expected identifier, found %s" (Sql_lexer.token_to_string t))

(* Type names are keywords in the lexer. *)
let parse_type st =
  match peek st with
  | Sql_lexer.Keyword k ->
    (match Value.ty_of_string k with
     | Some ty ->
       advance st;
       (* swallow optional (n) or (p, s) size annotations *)
       if accept_sym st "(" then begin
         let rec skip depth =
           match peek st with
           | Sql_lexer.Symbol "(" -> advance st; skip (depth + 1)
           | Sql_lexer.Symbol ")" ->
             advance st;
             if depth > 1 then skip (depth - 1)
           | Sql_lexer.Eof -> error st "unterminated type annotation"
           | _ -> advance st; skip depth
         in
         skip 1
       end;
       ty
     | None -> error st (Printf.sprintf "unknown type %s" k))
  | t -> error st (Printf.sprintf "expected a type, found %s" (Sql_lexer.token_to_string t))

let agg_of_kw = function
  | "COUNT" -> Some Count
  | "SUM" -> Some Sum
  | "AVG" -> Some Avg
  | "MIN" -> Some Min
  | "MAX" -> Some Max
  | _ -> None

(* ---------------- expressions ---------------- *)

let rec parse_expr_or st =
  let left = parse_expr_and st in
  if accept_kw st "OR" then Binop (Or, left, parse_expr_or st) else left

and parse_expr_and st =
  let left = parse_expr_not st in
  if accept_kw st "AND" then Binop (And, left, parse_expr_and st) else left

and parse_expr_not st =
  if accept_kw st "NOT" then Unop (Not, parse_expr_not st)
  else parse_predicate st

and parse_predicate st =
  let subject = parse_concat st in
  match peek st with
  | Sql_lexer.Symbol ("=" | "<>" | "<" | "<=" | ">" | ">=" as op) ->
    advance st;
    let rhs = parse_concat st in
    let binop = match op with
      | "=" -> Eq | "<>" -> Neq | "<" -> Lt | "<=" -> Le | ">" -> Gt | _ -> Ge
    in
    Binop (binop, subject, rhs)
  | Sql_lexer.Keyword "IS" ->
    advance st;
    let negated = accept_kw st "NOT" in
    expect_kw st "NULL";
    Is_null { subject; negated }
  | Sql_lexer.Keyword "NOT" ->
    advance st;
    parse_negatable st subject true
  | Sql_lexer.Keyword ("IN" | "LIKE" | "BETWEEN") ->
    parse_negatable st subject false
  | _ -> subject

and parse_negatable st subject negated =
  if accept_kw st "IN" then begin
    expect_sym st "(";
    if (match peek st with Sql_lexer.Keyword "SELECT" -> true | _ -> false) then begin
      let select = parse_select st in
      expect_sym st ")";
      In_select { subject; select; negated }
    end
    else begin
      let rec items acc =
        let e = parse_expr_or st in
        if accept_sym st "," then items (e :: acc) else List.rev (e :: acc)
      in
      let candidates = items [] in
      expect_sym st ")";
      In_list { subject; candidates; negated }
    end
  end
  else if accept_kw st "LIKE" then begin
    let pattern = parse_concat st in
    let escape =
      if accept_kw st "ESCAPE" then Some (parse_concat st) else None
    in
    Like { subject; pattern; escape; negated }
  end
  else if accept_kw st "BETWEEN" then begin
    let low = parse_concat st in
    expect_kw st "AND";
    let high = parse_concat st in
    Between { subject; low; high; negated }
  end
  else error st "expected IN, LIKE or BETWEEN after NOT"

and parse_concat st =
  let left = parse_additive st in
  if accept_sym st "||" then Binop (Concat, left, parse_concat st) else left

and parse_additive st =
  let rec go left =
    if accept_sym st "+" then go (Binop (Add, left, parse_multiplicative st))
    else if accept_sym st "-" then go (Binop (Sub, left, parse_multiplicative st))
    else left
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go left =
    if accept_sym st "*" then go (Binop (Mul, left, parse_unary st))
    else if accept_sym st "/" then go (Binop (Div, left, parse_unary st))
    else if accept_sym st "%" then go (Binop (Mod, left, parse_unary st))
    else left
  in
  go (parse_unary st)

and parse_unary st =
  if accept_sym st "-" then Unop (Neg, parse_unary st)
  else parse_primary st

and parse_primary st =
  match peek st with
  | Sql_lexer.Int_lit i -> advance st; Lit (Value.Int i)
  | Sql_lexer.Float_lit f -> advance st; Lit (Value.Float f)
  | Sql_lexer.String_lit s -> advance st; Lit (Value.Text s)
  | Sql_lexer.Keyword "NULL" -> advance st; Lit Value.Null
  | Sql_lexer.Keyword "TRUE" -> advance st; Lit (Value.Bool true)
  | Sql_lexer.Keyword "FALSE" -> advance st; Lit (Value.Bool false)
  | Sql_lexer.Keyword "CASE" ->
    advance st;
    let rec branches acc =
      if accept_kw st "WHEN" then begin
        let cond = parse_expr_or st in
        expect_kw st "THEN";
        let result = parse_expr_or st in
        branches ((cond, result) :: acc)
      end
      else List.rev acc
    in
    let branches = branches [] in
    if branches = [] then error st "CASE requires at least one WHEN branch";
    let else_ = if accept_kw st "ELSE" then Some (parse_expr_or st) else None in
    expect_kw st "END";
    Case { branches; else_ }
  | Sql_lexer.Keyword "EXISTS" ->
    advance st;
    expect_sym st "(";
    let select = parse_select st in
    expect_sym st ")";
    Exists { select; negated = false }
  | Sql_lexer.Keyword kw when agg_of_kw kw <> None ->
    let fn = Option.get (agg_of_kw kw) in
    advance st;
    expect_sym st "(";
    if accept_sym st "*" then begin
      if fn <> Count then error st "only COUNT accepts *";
      expect_sym st ")";
      Agg { fn; arg = None; distinct = false }
    end
    else begin
      let distinct = accept_kw st "DISTINCT" in
      let arg = parse_expr_or st in
      expect_sym st ")";
      Agg { fn; arg = Some arg; distinct }
    end
  | Sql_lexer.Symbol "(" ->
    advance st;
    if (match peek st with Sql_lexer.Keyword "SELECT" -> true | _ -> false) then begin
      let s = parse_select st in
      expect_sym st ")";
      Scalar_subquery s
    end
    else begin
      let e = parse_expr_or st in
      expect_sym st ")";
      e
    end
  | Sql_lexer.Ident name ->
    advance st;
    if accept_sym st "(" then begin
      (* scalar function call *)
      let rec args acc =
        if accept_sym st ")" then List.rev acc
        else begin
          let e = parse_expr_or st in
          if accept_sym st "," then args (e :: acc)
          else begin
            expect_sym st ")";
            List.rev (e :: acc)
          end
        end
      in
      Fn (String.uppercase_ascii name, args [])
    end
    else if accept_sym st "." then begin
      match peek st with
      | Sql_lexer.Symbol "*" -> error st "t.* is only valid in a projection list"
      | _ ->
        let column = parse_ident st in
        Col { table = Some name; column }
    end
    else Col { table = None; column = name }
  | t -> error st (Printf.sprintf "unexpected token %s in expression" (Sql_lexer.token_to_string t))

(* ---------------- SELECT ---------------- *)

and parse_projection st =
  match peek st, peek2 st with
  | Sql_lexer.Symbol "*", _ -> advance st; Star
  | Sql_lexer.Ident t, Sql_lexer.Symbol "." when
      (match st.toks.(st.pos + 2).token with Sql_lexer.Symbol "*" -> true | _ -> false) ->
    advance st; advance st; advance st;
    Table_star t
  | _ ->
    let e = parse_expr_or st in
    if accept_kw st "AS" then Proj (e, Some (parse_ident st))
    else
      (match peek st with
       | Sql_lexer.Ident alias -> advance st; Proj (e, Some alias)
       | _ -> Proj (e, None))

and parse_table_ref st =
  let base =
    if accept_sym st "(" then begin
      if (match peek st with Sql_lexer.Keyword "SELECT" -> true | _ -> false) then begin
        let select = parse_select st in
        expect_sym st ")";
        ignore (accept_kw st "AS");
        let alias = parse_ident st in
        Derived { select; alias }
      end
      else begin
        let t = parse_table_ref st in
        expect_sym st ")";
        t
      end
    end
    else begin
      let name = parse_ident st in
      if accept_kw st "AS" then Table { name; alias = Some (parse_ident st) }
      else
        match peek st with
        | Sql_lexer.Ident alias -> advance st; Table { name; alias = Some alias }
        | _ -> Table { name; alias = None }
    end
  in
  parse_joins st base

and parse_joins st left =
  if accept_kw st "JOIN" then join_tail st left Inner
  else if accept_kw st "INNER" then begin
    expect_kw st "JOIN";
    join_tail st left Inner
  end
  else if accept_kw st "LEFT" then begin
    ignore (accept_kw st "OUTER");
    expect_kw st "JOIN";
    join_tail st left Left_outer
  end
  else if accept_kw st "CROSS" then begin
    expect_kw st "JOIN";
    join_tail st left Cross
  end
  else left

and join_tail st left kind =
  let right =
    if accept_sym st "(" then begin
      if (match peek st with Sql_lexer.Keyword "SELECT" -> true | _ -> false) then begin
        let select = parse_select st in
        expect_sym st ")";
        ignore (accept_kw st "AS");
        let alias = parse_ident st in
        Derived { select; alias }
      end
      else begin
        let t = parse_table_ref st in
        expect_sym st ")";
        t
      end
    end
    else begin
      let name = parse_ident st in
      if accept_kw st "AS" then Table { name; alias = Some (parse_ident st) }
      else
        match peek st with
        | Sql_lexer.Ident alias -> advance st; Table { name; alias = Some alias }
        | _ -> Table { name; alias = None }
    end
  in
  let on =
    if kind = Cross then None
    else begin
      expect_kw st "ON";
      Some (parse_expr_or st)
    end
  in
  parse_joins st (Join { left; kind; right; on })

and parse_select st =
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let rec projections acc =
    let p = parse_projection st in
    if accept_sym st "," then projections (p :: acc) else List.rev (p :: acc)
  in
  let projections = projections [] in
  let from =
    if accept_kw st "FROM" then begin
      let rec refs acc =
        let r = parse_table_ref st in
        if accept_sym st "," then refs (r :: acc) else List.rev (r :: acc)
      in
      refs []
    end
    else []
  in
  let where = if accept_kw st "WHERE" then Some (parse_expr_or st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let rec exprs acc =
        let e = parse_expr_or st in
        if accept_sym st "," then exprs (e :: acc) else List.rev (e :: acc)
      in
      exprs []
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_expr_or st) else None in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let rec items acc =
        let e = parse_expr_or st in
        let dir =
          if accept_kw st "DESC" then Desc
          else begin
            ignore (accept_kw st "ASC");
            Asc
          end
        in
        if accept_sym st "," then items ((e, dir) :: acc) else List.rev ((e, dir) :: acc)
      in
      items []
    end
    else []
  in
  let parse_nat what =
    match peek st with
    | Sql_lexer.Int_lit n when n >= 0 -> advance st; n
    | _ -> error st (Printf.sprintf "expected a non-negative integer after %s" what)
  in
  let limit = if accept_kw st "LIMIT" then Some (parse_nat "LIMIT") else None in
  let offset = if accept_kw st "OFFSET" then Some (parse_nat "OFFSET") else None in
  { distinct; projections; from; where; group_by; having; order_by; limit; offset }

(* ---------------- other statements ---------------- *)

let parse_insert st =
  expect_kw st "INSERT";
  expect_kw st "INTO";
  let table = parse_ident st in
  let columns =
    if (match peek st with Sql_lexer.Symbol "(" -> true | _ -> false) then begin
      advance st;
      let rec cols acc =
        let c = parse_ident st in
        if accept_sym st "," then cols (c :: acc)
        else begin
          expect_sym st ")";
          List.rev (c :: acc)
        end
      in
      Some (cols [])
    end
    else None
  in
  expect_kw st "VALUES";
  let parse_row () =
    expect_sym st "(";
    let rec vals acc =
      let e = parse_expr_or st in
      if accept_sym st "," then vals (e :: acc)
      else begin
        expect_sym st ")";
        List.rev (e :: acc)
      end
    in
    vals []
  in
  let rec rows acc =
    let r = parse_row () in
    if accept_sym st "," then rows (r :: acc) else List.rev (r :: acc)
  in
  Insert { table; columns; rows = rows [] }

let parse_update st =
  expect_kw st "UPDATE";
  let table = parse_ident st in
  expect_kw st "SET";
  let rec assigns acc =
    let c = parse_ident st in
    expect_sym st "=";
    let e = parse_expr_or st in
    if accept_sym st "," then assigns ((c, e) :: acc) else List.rev ((c, e) :: acc)
  in
  let assignments = assigns [] in
  let where = if accept_kw st "WHERE" then Some (parse_expr_or st) else None in
  Update { table; assignments; where }

let parse_delete st =
  expect_kw st "DELETE";
  expect_kw st "FROM";
  let table = parse_ident st in
  let where = if accept_kw st "WHERE" then Some (parse_expr_or st) else None in
  Delete { table; where }

let parse_if_clause st kw1 kw2 =
  (* IF NOT EXISTS / IF EXISTS *)
  if accept_kw st "IF" then begin
    (match kw1 with Some k -> expect_kw st k | None -> ());
    expect_kw st kw2;
    true
  end
  else false

let parse_create st =
  expect_kw st "CREATE";
  if accept_kw st "TABLE" then begin
    let if_not_exists = parse_if_clause st (Some "NOT") "EXISTS" in
    let name = parse_ident st in
    expect_sym st "(";
    let columns = ref [] and primary_key = ref [] in
    let rec items () =
      if accept_kw st "PRIMARY" then begin
        expect_kw st "KEY";
        expect_sym st "(";
        let rec keys acc =
          let k = parse_ident st in
          if accept_sym st "," then keys (k :: acc)
          else begin
            expect_sym st ")";
            List.rev (k :: acc)
          end
        in
        primary_key := keys []
      end
      else begin
        let cd_name = parse_ident st in
        let cd_type = parse_type st in
        let cd_not_null = ref false and cd_primary_key = ref false in
        let rec constraints () =
          if accept_kw st "NOT" then begin
            expect_kw st "NULL";
            cd_not_null := true;
            constraints ()
          end
          else if accept_kw st "PRIMARY" then begin
            expect_kw st "KEY";
            cd_primary_key := true;
            cd_not_null := true;
            constraints ()
          end
        in
        constraints ();
        columns := { cd_name; cd_type; cd_not_null = !cd_not_null;
                     cd_primary_key = !cd_primary_key } :: !columns
      end;
      if accept_sym st "," then items () else expect_sym st ")"
    in
    items ();
    Create_table { name; if_not_exists; columns = List.rev !columns;
                   primary_key = !primary_key }
  end
  else begin
    let unique = accept_kw st "UNIQUE" in
    let kind = if accept_kw st "HASH" then Hash_index else Btree_index in
    expect_kw st "INDEX";
    let name = parse_ident st in
    expect_kw st "ON";
    let table = parse_ident st in
    expect_sym st "(";
    let rec cols acc =
      let c = parse_ident st in
      if accept_sym st "," then cols (c :: acc)
      else begin
        expect_sym st ")";
        List.rev (c :: acc)
      end
    in
    Create_index { name; table; columns = cols []; unique; kind }
  end

let parse_drop st =
  expect_kw st "DROP";
  if accept_kw st "TABLE" then begin
    let if_exists = parse_if_clause st None "EXISTS" in
    Drop_table { name = parse_ident st; if_exists }
  end
  else begin
    expect_kw st "INDEX";
    let if_exists = parse_if_clause st None "EXISTS" in
    Drop_index { name = parse_ident st; if_exists }
  end

let parse_query st =
  let first = parse_select st in
  let rec unions acc =
    if accept_kw st "UNION" then begin
      let all = accept_kw st "ALL" in
      let s = parse_select st in
      unions ((all, s) :: acc)
    end
    else List.rev acc
  in
  match unions [] with
  | [] -> Select_stmt first
  | us -> Query_stmt { first; unions = us }

let rec parse_stmt st =
  match peek st with
  | Sql_lexer.Keyword "SELECT" -> parse_query st
  | Sql_lexer.Keyword "INSERT" -> parse_insert st
  | Sql_lexer.Keyword "UPDATE" -> parse_update st
  | Sql_lexer.Keyword "DELETE" -> parse_delete st
  | Sql_lexer.Keyword "CREATE" -> parse_create st
  | Sql_lexer.Keyword "DROP" -> parse_drop st
  | Sql_lexer.Keyword "BEGIN" -> advance st; Begin_txn
  | Sql_lexer.Keyword "COMMIT" -> advance st; Commit_txn
  | Sql_lexer.Keyword "ROLLBACK" -> advance st; Rollback_txn
  | Sql_lexer.Keyword "EXPLAIN" ->
    advance st;
    if accept_kw st "ANALYZE" then Explain_analyze (parse_stmt st)
    else Explain (parse_stmt st)
  | Sql_lexer.Keyword "ANALYZE" ->
    advance st;
    (match peek st with
     | Sql_lexer.Ident name -> advance st; Analyze (Some name)
     | _ -> Analyze None)
  | t -> error st (Printf.sprintf "expected a statement, found %s" (Sql_lexer.token_to_string t))

let make_state src =
  let toks = Array.of_list (Sql_lexer.tokenize src) in
  { toks; pos = 0 }

let parse src =
  let st = make_state src in
  let stmt = parse_stmt st in
  ignore (accept_sym st ";");
  (match peek st with
   | Sql_lexer.Eof -> ()
   | t -> error st (Printf.sprintf "trailing input: %s" (Sql_lexer.token_to_string t)));
  stmt

let parse_many src =
  let st = make_state src in
  let rec go acc =
    match peek st with
    | Sql_lexer.Eof -> List.rev acc
    | _ ->
      let stmt = parse_stmt st in
      ignore (accept_sym st ";");
      go (stmt :: acc)
  in
  go []

let parse_expr src =
  let st = make_state src in
  let e = parse_expr_or st in
  (match peek st with
   | Sql_lexer.Eof -> ()
   | t -> error st (Printf.sprintf "trailing input: %s" (Sql_lexer.token_to_string t)));
  e

let error_to_string = function
  | Parse_error { offset; message } ->
    Printf.sprintf "SQL parse error at offset %d: %s" offset message
  | Sql_lexer.Lex_error { offset; message } ->
    Printf.sprintf "SQL lex error at offset %d: %s" offset message
  | e -> raise e
