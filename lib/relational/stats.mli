(** Per-table / per-column statistics collected by [ANALYZE] and consumed
    by the cost-based planner ({!Planner}, {!Cost}).

    Statistics are a snapshot: they are persisted in the {!Catalog} until
    the next ANALYZE and do not track subsequent DML. The planner treats
    a missing entry as "never analyzed" and falls back to the default
    selectivity constants below. *)

type column_stats = {
  non_null : int;        (** rows with a non-NULL value *)
  null_frac : float;     (** fraction of rows that are NULL *)
  n_distinct : int;      (** distinct non-NULL values *)
  min_v : Value.t option;
  max_v : Value.t option;
  boundaries : Value.t array;
      (** equi-depth histogram boundaries, ascending; empty when the
          column holds no non-NULL values *)
}

type table_stats = {
  st_rows : int;
  st_columns : (string * column_stats) list;
      (** keyed by lowercase column name *)
}

val histogram_buckets : int

val default_eq : float
val default_range : float
val default_like : float
val default_other : float
(** Fallback selectivities when a column has no statistics. *)

val analyze : Table.t -> table_stats
(** One full scan of the table; sorts each column's values to derive the
    distinct count and histogram boundaries. *)

val find_column : table_stats -> string -> column_stats option

val eq_selectivity : column_stats -> float
(** Selectivity of [col = literal]: (1 - null_frac) / n_distinct. *)

val le_fraction : column_stats -> Value.t -> float
(** Estimated fraction of rows with value <= v, from the histogram. *)

val range_selectivity :
  column_stats ->
  lo:(Value.t * bool) option ->
  hi:(Value.t * bool) option ->
  float
(** Selectivity of a (half-)bounded range predicate on the column. *)

val null_selectivity : column_stats -> negated:bool -> float
