(* Table and column statistics backing the cost-based planner.

   ANALYZE walks a table once and records, per column: the null fraction,
   the number of distinct values, min/max, and an equi-depth histogram
   (quantile boundaries over the sorted non-null values). The planner
   turns these into selectivity estimates; without statistics it falls
   back to the textbook constants below (the pre-ANALYZE behaviour).

   Above [sample_target] live rows the scan keeps only every k-th row
   (systematic sampling in rowid order — deterministic, so the memory
   and disk backends compute identical statistics) and scales the
   per-column counts back up; an out-of-core table is never
   materialised in full. *)

type column_stats = {
  non_null : int;
  null_frac : float;
  n_distinct : int;
  min_v : Value.t option;
  max_v : Value.t option;
  boundaries : Value.t array;
      (* equi-depth histogram: nb+1 quantile boundaries, ascending;
         boundary k sits at quantile k/nb of the non-null values *)
}

type table_stats = {
  st_rows : int;
  st_columns : (string * column_stats) list;  (* lowercase column name *)
}

let histogram_buckets = 32

(* Fallback selectivities used when no statistics are available —
   identical to the constants the greedy planner always used. *)
let default_eq = 0.05
let default_range = 0.25
let default_like = 0.25
let default_other = 0.5

let sample_target = 50_000

let analyze table =
  let schema = Table.schema table in
  let live = Table.row_count table in
  let step =
    if live <= sample_target then 1
    else (live + sample_target - 1) / sample_target
  in
  let rows =
    if step = 1 then List.of_seq (Seq.map snd (Table.scan table))
    else begin
      let k = ref 0 in
      List.of_seq
        (Seq.filter_map
           (fun (_, row) ->
             let keep = !k mod step = 0 in
             incr k;
             if keep then Some row else None)
           (Table.scan table))
    end
  in
  let n = List.length rows in  (* sample size; = live when step = 1 *)
  (* scale a sample count back to the full table *)
  let scale c =
    if step = 1 then c
    else if n = 0 then 0
    else min live (int_of_float (float_of_int c *. float_of_int live /. float_of_int n))
  in
  let column i name =
    let values =
      List.filter_map
        (fun row ->
          match row.(i) with Value.Null -> None | v -> Some v)
        rows
    in
    let sorted = Array.of_list (List.sort Value.compare_total values) in
    let non_null = Array.length sorted in
    let n_distinct =
      let d = ref 0 in
      Array.iteri
        (fun k v ->
          if k = 0 || Value.compare_total v sorted.(k - 1) <> 0 then incr d)
        sorted;
      !d
    in
    let boundaries =
      if non_null = 0 then [||]
      else begin
        let nb = min histogram_buckets (max 1 n_distinct) in
        Array.init (nb + 1) (fun b -> sorted.(b * (non_null - 1) / nb))
      end
    in
    (* distinct scaling: a mostly-unique sample suggests a mostly-unique
       column (scale linearly); a low-cardinality sample has likely seen
       every value (keep as is) *)
    let distinct_est =
      if step = 1 || non_null = 0 then n_distinct
      else if 2 * n_distinct >= non_null then scale n_distinct
      else n_distinct
    in
    ( String.lowercase_ascii name,
      { non_null = scale non_null;
        null_frac = (if n = 0 then 0. else float_of_int (n - non_null) /. float_of_int n);
        n_distinct = distinct_est;
        min_v = (if non_null = 0 then None else Some sorted.(0));
        max_v = (if non_null = 0 then None else Some sorted.(non_null - 1));
        boundaries } )
  in
  { st_rows = live;
    st_columns = List.mapi column (Schema.column_names schema) }

let find_column ts name =
  List.assoc_opt (String.lowercase_ascii name) ts.st_columns

(* ------------------------------------------------------------------ *)
(* Selectivity                                                         *)
(* ------------------------------------------------------------------ *)

let eq_selectivity cs =
  if cs.n_distinct = 0 then 0.0
  else (1. -. cs.null_frac) /. float_of_int cs.n_distinct

let as_float = function
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | _ -> None

(* Fraction of ALL rows (null mass excluded) whose value is <= v,
   estimated from the equi-depth boundaries with linear interpolation
   inside the covering bucket when values are numeric. *)
let le_fraction cs v =
  let b = cs.boundaries in
  let nb = Array.length b - 1 in
  if nb < 0 then 0.
  else begin
    let scale = 1. -. cs.null_frac in
    if Value.compare_total v b.(0) < 0 then 0.
    else if Value.compare_total v b.(nb) >= 0 then scale
    else begin
      (* largest k with b.(k) <= v; nb >= 1 here *)
      let k = ref 0 in
      while !k + 1 <= nb && Value.compare_total b.(!k + 1) v <= 0 do incr k done;
      let within =
        match as_float b.(!k), as_float b.(!k + 1), as_float v with
        | Some lo, Some hi, Some x when hi > lo -> (x -. lo) /. (hi -. lo)
        | _ -> 0.5
      in
      scale *. ((float_of_int !k +. within) /. float_of_int nb)
    end
  end

(* Selectivity of lo <= col <= hi (either bound optional; the inclusive
   flags are below histogram resolution and ignored). *)
let range_selectivity cs ~lo ~hi =
  let p v = le_fraction cs v in
  let upper = match hi with Some (v, _) -> p v | None -> 1. -. cs.null_frac in
  let lower = match lo with Some (v, _) -> p v | None -> 0. in
  Float.max 0.0005 (Float.min (1. -. cs.null_frac) (upper -. lower))

let null_selectivity cs ~negated =
  if negated then 1. -. cs.null_frac else cs.null_frac
