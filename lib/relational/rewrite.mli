(** Pre-execution table-algebra rewrites for the vectorized executor.

    Applied by the planner (when {!enabled}) between plan construction
    and execution, in the fixed order of {!rule_names}:

    - ["sort-elim"]: drop [Sort] operators whose consumer is
      order-insensitive — IN/EXISTS/scalar subplan roots and global
      COUNT/MIN/MAX aggregates.
    - ["filter-pushdown"]: split a [Filter] above an inner join into
      conjuncts and push single-side conjuncts below the join.
    - ["filter-merge"]: fuse [Filter] operators into the scan beneath
      them (or into each partition of an [Exchange] of scans), so the
      batch executor evaluates the predicate during the scan.
    - ["prune"]: global projection pushdown — insert narrowing
      [Project]s over scans so only columns some ancestor consumes are
      carried through joins and sorts.
    - ["proj-fuse"]: compose adjacent [Project] pairs and drop identity
      projections.

    Every rule preserves results byte-for-byte on the iterator executor;
    the differential suite enforces this. Rules never move or duplicate
    an expression containing a subplan across a row-shape change, since
    correlated [CParam] slots are numbered against the row of the
    operator that evaluates the expression. *)

val enabled : unit -> bool
(** [XOMATIQ_VEC]: unset/[1]/[on] = vectorized mode (default);
    [0]/[off]/[false]/[no] = iterator reference mode. *)

type report = (string * int) list
(** Rules that fired, with fire counts, in application order. *)

val rule_names : string list

val apply : Catalog.t -> Plan.t -> Plan.t * report
(** Run the full rule pipeline. The result plan is freshly allocated
    (safe for identity-keyed profiles). *)

val apply_rule : Catalog.t -> string -> Plan.t -> Plan.t * int
(** Run a single rule by name (property tests). Returns the rewritten
    plan and the rule's fire count.
    @raise Failure on an unknown rule name. *)

val node_tag : Plan.t -> string
(** EXPLAIN suffix for one node: [" [fused=scan+filter]"] on scans that
    carry a merged predicate, [""] elsewhere. *)

val footer : report -> string
(** EXPLAIN footer, e.g.
    ["\nVectorized: batch=1024 rewrites=[sort-elim=1 prune=4]\n"]. *)
