(** Runtime observability: counters, timers, a tiny log-scale histogram,
    and per-operator execution statistics for plan profiling.

    The paper's performance argument (Sections 2.2, 3.2-3.3) is that the
    relational optimizer picks the right indexes over the generic schema;
    this module makes that checkable at run time. {!Executor.run} accepts
    a {!profile} built from the plan about to execute and charges every
    operator with the rows it produced, the index probes it issued, the
    rows it buffered into hash builds, and its (inclusive) wall time.
    [EXPLAIN ANALYZE] renders the annotated tree. *)

val now_s : unit -> float
(** Wall-clock seconds (sub-microsecond resolution). *)

(** Monotonically increasing event counter. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> unit
  val value : t -> int
  val reset : t -> unit
end

(** Accumulating wall-clock timer. *)
module Timer : sig
  type t

  val create : unit -> t

  val time : t -> (unit -> 'a) -> 'a
  (** Run the thunk, adding its elapsed time (and one sample). *)

  val add_s : t -> float -> unit
  val total_s : t -> float
  val total_ms : t -> float
  val samples : t -> int
  val reset : t -> unit
end

(** Log2-bucketed latency histogram (buckets of microseconds). *)
module Histogram : sig
  type t

  val create : unit -> t

  val observe : t -> float -> unit
  (** Record one duration, in seconds. *)

  val count : t -> int

  val quantile : t -> float -> float
  (** Upper bound, in seconds, of the bucket containing quantile [q]
      (0 <= q <= 1); 0 when empty. *)

  val to_string : t -> string
  (** Compact one-line rendering: [count, p50, p95, max bucket]. *)

  val max_s : t -> float
  (** Largest duration observed, in seconds; 0 when empty. *)
end

(** {2 Metric registry}

    Process-wide named metrics. Long-lived subsystems (the plan cache,
    the path-resolution cache, the query server) register their
    counters/timers/histograms under dotted names once at start-up;
    {!dump_json} then renders every registered metric as one JSON
    snapshot — the payload of the server's METRICS request and of the
    CLI's [--metrics-json] flag. Registration is idempotent per name
    (last registration wins) and domain-safe. *)

val register_counter : string -> Counter.t -> unit
val register_timer : string -> Timer.t -> unit
val register_histogram : string -> Histogram.t -> unit

val register_gauge : string -> (unit -> int) -> unit
(** A read-through metric: the thunk is sampled at dump time. *)

val dump_json : unit -> string
(** All registered metrics as a JSON object with one section per metric
    kind, names sorted, e.g.
    {v
    { "counters": { "server.accepted": 12, ... },
      "gauges": { "engine.plan_cache.hits": 40, ... },
      "timers": { "name": { "total_ms": 8.1, "samples": 3 }, ... },
      "histograms": { "server.query_latency":
        { "count": 52, "p50_ms": 1.0, "p95_ms": 4.1, "p99_ms": 8.2,
          "max_ms": 7.9 }, ... } }
    v} *)

(** {2 Plan profiling} *)

type op_stats = {
  mutable loops : int;       (** times the operator was (re)started *)
  mutable rows : int;        (** rows produced, summed over loops *)
  mutable probes : int;      (** index lookups / range-scan starts *)
  mutable build_rows : int;  (** rows buffered into a hash-join build *)
  mutable time_s : float;    (** inclusive wall time spent pulling rows *)
}

type profile
(** Mutable per-operator statistics for one plan tree, keyed by the
    physical identity of each plan node (including expression subplans). *)

val create : Plan.t -> profile

val find : profile -> Plan.t -> op_stats option
(** The stats slot of a node of the profiled plan; [None] for foreign
    nodes. *)

val observed : op_stats -> 'a Seq.t -> 'a Seq.t
(** Wrap an operator's output sequence so rows and (inclusive) wall time
    are charged to [op_stats] as the sequence is consumed. *)

val observed_batches : live:('a -> int) -> op_stats -> 'a Seq.t -> 'a Seq.t
(** [observed] for a sequence of row batches: each pulled element charges
    [live b] rows, so per-operator row counters match the iterator
    executor's row-at-a-time accounting. *)

val annotation : profile -> Plan.t -> string
(** The [" (rows=... time=...)"] suffix for one operator line, for use as
    [Plan.to_string ~annot]; empty for nodes outside the profile. *)

val annotate : profile -> Plan.t -> string
(** The full plan tree rendered with per-operator statistics. *)

val total_rows : profile -> int
(** Rows produced summed over all operators (work done, not result size). *)

val total_probes : profile -> int
val total_build_rows : profile -> int
