(** Query planning: name resolution, predicate pushdown, index selection
    and greedy join ordering.

    The planner mirrors the behaviour the paper relies on from Oracle's
    optimizer: WHERE conjuncts are pushed to their base relations, equality
    conjuncts against indexed columns become index lookups, range
    conjuncts on B+tree indexes become index range scans, and equi-join
    conjuncts drive hash joins ordered greedily by estimated cardinality.
    Correlated outer references in subqueries compile to parameter slots
    and can feed index probes. *)

exception Plan_error of string

val structural_enabled : unit -> bool
(** Whether the planner may pick the structural (interval containment)
    merge join for [doc = doc AND lo (<|<=) pos (<|<=) hi] join shapes.
    On by default; set [XOMATIQ_STRUCTURAL_JOIN=0] to fall back to
    hash-join + filter (the E7 bench baseline). *)

type planned = {
  plan : Plan.t;
  column_names : string list;  (** output column headers, in order *)
  rewrites : (string * int) list;
      (** table-algebra rewrite rules that fired on this plan, as
          [(rule name, times)] in {!Rewrite.rule_names} order; empty when
          the vectorized path (and with it the rewrite pass) is off *)
  est_cost : float;
      (** root cost estimate of the final (rewritten) plan in the cost
          model's "rows touched" unit; the adaptive scheduler's cost
          gate compares it against [Conc.Sched.cost_threshold] *)
}

val plan_select : Catalog.t -> Sql_ast.select -> planned
(** @raise Plan_error on unknown tables/columns, ambiguous references,
    or misuse of aggregates. *)

val plan_query : Catalog.t -> Sql_ast.query -> planned
(** Plan a UNION chain. Column names come from the first branch; a plain
    UNION anywhere makes the whole result set-semantic (distinct). *)

val compile_scalar :
  Catalog.t -> Sql_ast.expr -> Plan.cexpr
(** Compile an expression with no column references (INSERT values,
    DEFAULTs). @raise Plan_error if it mentions a column. *)

val compile_row_predicate :
  Catalog.t -> Schema.t -> Sql_ast.expr -> Plan.cexpr
(** Compile an expression against a single table's schema (UPDATE/DELETE
    WHERE clauses); column slots index into the table row. *)
