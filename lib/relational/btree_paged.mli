(** On-disk B+tree with page-at-a-time node access through {!Bufpool}.

    Keys are tuples ([Value.t array]) stored Rowcodec-encoded and
    compared decoded with {!Btree.compare_key} — never byte-wise, so the
    cross-type numeric ordering of [Value.compare_total] ([Int 3] equals
    [Float 3.]) matches the in-memory tree exactly. Duplicates are one
    cell per (key, rowid): inserts append at the end of the equal run
    (upper-bound descent), so per-key rowid order equals insertion order
    just like the in-memory posting lists; lookups, removals and range
    scans descend by lower bound and follow the run across leaf
    boundaries. Keys longer than ~2 KiB spill to overflow chains.

    Like the heap files, tree pages are only trusted after a clean
    shutdown (see {!Storage}); recovery rebuilds from the WAL. *)

type t

exception Duplicate of Value.t array
(** Raised by {!bulk_load} with [~unique:true] on adjacent equal keys. *)

val create : Bufpool.t -> path:string -> t
(** Open the tree stored at [path], attaching when the file already has
    pages and initialising an empty single-leaf tree otherwise. *)

val insert : ?key_exists:bool -> t -> Value.t array -> int -> unit
(** Add (key, rowid). [key_exists] (whether the key is already present)
    skips the extra probe that distinct-key accounting needs; callers
    that just did a membership check pass it. *)

val mem : t -> Value.t array -> bool

val find : t -> Value.t array -> int list
(** Rowids for the key in insertion order ([[]] when absent). *)

val remove : t -> Value.t array -> (int -> bool) -> unit
(** Drop the key's postings matching the predicate. *)

val range :
  ?lo:Value.t array * bool ->
  ?hi:Value.t array * bool ->
  t ->
  (Value.t array * int) Seq.t
(** Entries in key order (bool = inclusive), same bound semantics as
    {!Btree.range}. *)

val iter : (Value.t array -> int -> unit) -> t -> unit

val cardinal : t -> int
(** Distinct keys. *)

val entry_count : t -> int
(** Total (key, rowid) postings. *)

val bulk_load : ?unique:bool -> t -> (string * int) Seq.t -> unit
(** Build the tree bottom-up from (Rowcodec-encoded key, rowid) pairs
    sorted by (key, tie-break rowid): packed leaves first, then each
    internal level from the level below. The tree must be empty. *)

val truncate : t -> unit
val sync : t -> unit
val close : t -> unit
val destroy : t -> unit
val path : t -> string
