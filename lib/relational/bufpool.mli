(** Buffer pool: a fixed budget of 8 KiB frames caching pages of
    registered page files, with CLOCK eviction over unpinned frames and
    dirty-page writeback ordered behind the WAL.

    Every on-disk structure (paged heaps, row maps, paged B+trees) reads
    and writes its pages exclusively through [with_page]/[with_page_w],
    which pin the frame for the duration of the callback: a pinned frame
    is never evicted, so page bytes stay valid while a scan decodes them.
    Before a dirty frame is written back the pool invokes the registered
    WAL barrier (see {!set_wal_barrier}), so no page image ever reaches
    disk ahead of the log records that produced it.

    The pool is domain-safe: all frame-table bookkeeping happens under
    one mutex (I/O included — eviction throughput is not a hot path;
    scans hit pinned-frame reuse). Counters for hits, misses, evictions
    and dirty writebacks are process-global and registered with {!Obs}
    under [storage.pool.*]. *)

val page_size : int
(** 8192. *)

type t
type file

val create : ?frames:int -> unit -> t
(** [frames] defaults to [XOMATIQ_POOL_PAGES] (or [XOMATIQ_POOL_MB]
    converted), falling back to 2048 frames = 16 MiB. Minimum 8. *)

val frames : t -> int

val open_file : t -> string -> file
(** Open (creating if absent) a page file. [npages] is derived from the
    current file size, rounding a torn final page up so it stays
    addressable. *)

val npages : file -> int
val path : file -> string

val allocate : t -> file -> int
(** Extend the file by one (logical) page and return its index. The page
    reads as zeroes until first written. *)

val with_page : t -> file -> int -> (bytes -> 'a) -> 'a
(** Pin the page's frame and run the callback on its 8 KiB image. *)

val with_page_w : t -> file -> int -> (bytes -> 'a) -> 'a
(** [with_page], additionally marking the frame dirty. *)

val flush : t -> unit
(** Write back every dirty frame (WAL barrier first) and fsync every
    registered file. Frames stay cached. *)

val truncate_file : t -> file -> unit
(** Drop the file's cached frames without writeback and truncate it to
    zero pages. *)

val close_file : t -> file -> unit
(** Write back the file's dirty frames, fsync, drop its frames, close. *)

val remove_file : t -> file -> unit
(** Drop the file's frames without writeback, close and unlink it. *)

val set_wal_barrier : t -> (unit -> unit) -> unit
(** Invoked before any dirty frame is written back and once per
    {!flush}. The database installs [Wal.flush]. *)

(** Process-global counter values (summed over all pools). *)
val pool_hits : unit -> int
val pool_misses : unit -> int
val pool_evictions : unit -> int
val pool_writebacks : unit -> int
