(* Fixed-size domain pool: a mutex/condition-protected work queue served
   by [size - 1] resident worker domains. The missing slot is the
   caller: [await] runs queued tasks while it waits ("helping"), so a
   task that itself submits and awaits subtasks makes progress instead
   of deadlocking, and a pool of size 1 degenerates to inline
   execution. *)

type task = unit -> unit

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : task Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  mutable busy : int;  (* workers currently executing a task *)
  total : int;  (* workers + the helping caller *)
}

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  f_lock : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a state;
}

let size t = t.total

let try_pop t =
  Mutex.lock t.lock;
  let task = Queue.take_opt t.queue in
  Mutex.unlock t.lock;
  task

let worker_loop t () =
  let rec next () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.nonempty t.lock
    done;
    let task = Queue.take_opt t.queue in
    (match task with Some _ -> t.busy <- t.busy + 1 | None -> ());
    Mutex.unlock t.lock;
    match task with
    | Some task ->
      (* tasks are [run_task] closures and never raise *)
      task ();
      Mutex.lock t.lock;
      t.busy <- t.busy - 1;
      Mutex.unlock t.lock;
      next ()
    | None -> ()  (* stopping and drained *)
  in
  next ()

let create n =
  let total = max 1 n in
  let t =
    { lock = Mutex.create (); nonempty = Condition.create ();
      queue = Queue.create (); stopping = false; workers = []; busy = 0;
      total }
  in
  t.workers <- List.init (total - 1) (fun _ -> Domain.spawn (worker_loop t));
  t

let shutdown t =
  Mutex.lock t.lock;
  let ws = t.workers in
  t.stopping <- true;
  t.workers <- [];
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  List.iter Domain.join ws

let resolve fut state =
  Mutex.lock fut.f_lock;
  fut.f_state <- state;
  Condition.broadcast fut.f_cond;
  Mutex.unlock fut.f_lock

let run_task f fut () =
  match f () with
  | v -> resolve fut (Done v)
  | exception e -> resolve fut (Failed (e, Printexc.get_raw_backtrace ()))

let submit t f =
  let fut = { f_lock = Mutex.create (); f_cond = Condition.create (); f_state = Pending } in
  let task = run_task f fut in
  Mutex.lock t.lock;
  if t.stopping || t.total <= 1 then begin
    (* no workers: run inline so the future is always resolvable *)
    Mutex.unlock t.lock;
    task ()
  end
  else begin
    Queue.add task t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.lock
  end;
  fut

let rec await t fut =
  match fut.f_state with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending ->
    (match try_pop t with
     | Some task ->
       (* help: run someone's queued task, then re-check *)
       task ();
       await t fut
     | None ->
       (* the task is running on another domain; block until resolved *)
       Mutex.lock fut.f_lock;
       while fut.f_state = Pending do Condition.wait fut.f_cond fut.f_lock done;
       Mutex.unlock fut.f_lock;
       await t fut)

let poll fut =
  match fut.f_state with Pending -> false | Done _ | Failed _ -> true

(* Idle worker domains: the fan-out headroom a new Exchange would
   actually get. Queued-but-unstarted tasks count against it — they will
   claim a worker before any partition submitted after them. Advisory
   (check-then-act, no reservation): a rare over-grant just means two
   fan-outs share the workers, which is the pre-adaptive behaviour. *)
let available t =
  Mutex.lock t.lock;
  let n = (t.total - 1) - t.busy - Queue.length t.queue in
  Mutex.unlock t.lock;
  max 0 n

(* Server sessions park here instead of [await]: a session thread must
   keep watching its socket (deadlines, CANCEL frames) and must not pick
   up arbitrary queued query work, so it waits on the future's condition
   variable without helping. *)
let await_blocking fut =
  Mutex.lock fut.f_lock;
  while fut.f_state = Pending do Condition.wait fut.f_cond fut.f_lock done;
  Mutex.unlock fut.f_lock;
  match fut.f_state with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let parallel_map t f xs =
  if t.total <= 1 then List.map f xs
  else begin
    let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
    (* award in input order so the first failure (by input position) is
       the one re-raised — matching what sequential evaluation reports *)
    List.map (await t) futs
  end

let parallel_chunks t ~n f =
  if n <= 0 then []
  else begin
    let parts = min (max 1 t.total) n in
    let bounds =
      List.init parts (fun i -> (i * n / parts, (i + 1) * n / parts))
    in
    parallel_map t (fun (lo, hi) -> f lo hi) bounds
  end

(* ---------------- the process-global pool ---------------- *)

let clamp_jobs n = max 1 (min 64 n)

let default_jobs () =
  match Sys.getenv_opt "XOMATIQ_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> clamp_jobs n
     | _ -> clamp_jobs (Domain.recommended_domain_count ()))
  | None -> clamp_jobs (Domain.recommended_domain_count ())

(* The global pool is created lazily so processes that never go parallel
   never spawn domains. Guarded by a lock: the stress tests hammer
   queries from several domains at once. *)
let glock = Mutex.create ()
let gtarget = ref None      (* requested jobs; None = use default_jobs () *)
let gpool = ref None

let default_jobs_memo = lazy (default_jobs ())

(* The effective job count is read on every query (plan-cache key,
   session jobs sync, scheduling decisions), so it is mirrored into an
   atomic: readers never touch [glock]. 0 means "not computed yet". *)
let gjobs = Atomic.make 0

let effective_target target =
  match target with Some n -> n | None -> Lazy.force default_jobs_memo

let jobs () =
  match Atomic.get gjobs with
  | 0 ->
    Mutex.lock glock;
    let n = effective_target !gtarget in
    Atomic.set gjobs n;
    Mutex.unlock glock;
    n
  | n -> n

let get () =
  Mutex.lock glock;
  let target = effective_target !gtarget in
  let pool =
    match !gpool with
    | Some p when size p = target -> p
    | existing ->
      (match existing with Some p -> shutdown p | None -> ());
      let p = create target in
      gpool := Some p;
      p
  in
  Mutex.unlock glock;
  pool

(* Look, don't touch: the adaptive scheduler's Exchange gate asks "is
   there a pool with an idle worker" without forcing worker domains into
   existence — on a host without spare cores, resident idle domains tax
   every query through the stop-the-world GC rendezvous. *)
let peek () =
  Mutex.lock glock;
  let p = !gpool in
  Mutex.unlock glock;
  p

let set_jobs n =
  let n = clamp_jobs n in
  Mutex.lock glock;
  gtarget := Some n;
  Atomic.set gjobs n;
  (match !gpool with
   | Some p when size p <> n ->
     gpool := None;
     Mutex.unlock glock;
     shutdown p
   | _ -> Mutex.unlock glock)

let with_jobs n f =
  Mutex.lock glock;
  let saved = !gtarget in
  Mutex.unlock glock;
  set_jobs n;
  (* A scoped override is an explicit request for [n]-way parallelism
     right now (tests, benches): force the pool into existence so the
     adaptive Exchange gate — which only {!peek}s — can grant workers
     even on a single-core host. *)
  if clamp_jobs n > 1 then ignore (get ());
  let restore () =
    Mutex.lock glock;
    gtarget := saved;
    Atomic.set gjobs (effective_target saved);
    let stale =
      match !gpool with
      | Some p when size p <> effective_target saved ->
        gpool := None;
        Some p
      | _ -> None
    in
    Mutex.unlock glock;
    Option.iter shutdown stale
  in
  Fun.protect ~finally:restore f

(* Join worker domains on exit so the runtime never tears down while a
   worker holds the queue lock. *)
let () =
  at_exit (fun () ->
      Mutex.lock glock;
      let p = !gpool in
      gpool := None;
      Mutex.unlock glock;
      Option.iter shutdown p)
