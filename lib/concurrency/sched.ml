(* Adaptive query scheduling.

   The pre-adaptive server granted every query its full Exchange fan-out
   unconditionally, which is exactly backwards under load: a trivial
   point query paid a pool dispatch plus partition overhead, and an
   expensive query's partitions queued behind other queries' partitions
   on the same few domains. BENCH_E8.json recorded the collapse (jobs=2
   dropped a single client from ~5700 to ~770 QPS).

   This module centralises the two gates that fix it:

   - a *cost gate* at plan time: queries whose root cost estimate is
     below [cost_threshold] run sequentially on the calling thread and
     never touch the pool;
   - an *idle gate* at run time: an Exchange fan-out goes parallel only
     when at least one pool worker is actually idle, and degrades to
     sequential in-thread execution otherwise (results are byte-identical
     either way — only the iteration schedule changes).

   [XOMATIQ_SCHED=static] restores the unconditional grant, for
   comparison benchmarks and as an escape hatch. The mode is part of the
   engine's plan-cache key. *)

type mode = Static | Adaptive

(* Tests flip modes mid-process; the environment is read once. *)
let override : mode option ref = ref None

let env_mode =
  lazy
    (match Sys.getenv_opt "XOMATIQ_SCHED" with
     | Some s ->
       (match String.lowercase_ascii (String.trim s) with
        | "static" | "0" | "off" -> Static
        | _ -> Adaptive)
     | None -> Adaptive)

let mode () =
  match !override with Some m -> m | None -> Lazy.force env_mode

let set_mode m = override := Some m
let clear_mode () = override := None

let with_mode m f =
  let saved = !override in
  override := Some m;
  Fun.protect ~finally:(fun () -> override := saved) f

let mode_tag () = match mode () with Static -> "static" | Adaptive -> "adaptive"

(* Cost is in the planner's unit ("rows touched"). The default threshold
   is roughly where Exchange partition setup plus a pool round-trip stops
   dominating: a full scan of a few tens of thousands of rows. *)
let default_cost_threshold = 50_000.

let threshold_override : float option ref = ref None

let env_threshold =
  lazy
    (match Sys.getenv_opt "XOMATIQ_SCHED_COST" with
     | Some s ->
       (match float_of_string_opt (String.trim s) with
        | Some v when v >= 0. -> v
        | _ -> default_cost_threshold)
     | None -> default_cost_threshold)

let cost_threshold () =
  match !threshold_override with
  | Some v -> v
  | None -> Lazy.force env_threshold

let with_cost_threshold v f =
  let saved = !threshold_override in
  threshold_override := Some v;
  Fun.protect ~finally:(fun () -> threshold_override := saved) f

(* ------------------------------------------------------------------ *)
(* Decisions                                                           *)
(* ------------------------------------------------------------------ *)

type decision = { par : bool; workers : int; reason : string }

let seq reason = { par = false; workers = 1; reason }

let decision_string d =
  Printf.sprintf "sched=%s workers=%d reason=%s"
    (if d.par then "par" else "seq")
    d.workers d.reason

(* Plan-time decision from the root cost estimate. "par" for an
   expensive query is a *request*: the run-time idle gate can still
   degrade each fan-out when every worker is occupied. *)
let plan_decision ~est_cost =
  let jobs = Pool.jobs () in
  match mode () with
  | Static ->
    if jobs > 1 then { par = true; workers = jobs; reason = "forced" }
    else seq "forced"
  | Adaptive ->
    if est_cost < cost_threshold () then seq "cost"
    else if jobs > 1 then { par = true; workers = jobs; reason = "pool-idle" }
    else seq "forced"

(* Run-time grant for one Exchange fan-out. [available] counts idle
   workers only: when zero, the partitions would just queue behind other
   queries' work (or behind each other), so running them in the calling
   thread is strictly cheaper. *)
let exchange_parallel pool ~workers =
  workers > 1
  && Pool.size pool > 1
  && (match mode () with
      | Static -> true
      | Adaptive -> Pool.available pool > 0)
