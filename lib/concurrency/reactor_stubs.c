/* Readiness multiplexing for Conc.Reactor.
 *
 * Unix.select is limited to FD_SETSIZE (1024 on Linux) *descriptor
 * numbers*, not descriptor counts: one connection whose fd happens to be
 * 1024 corrupts the fd_set. The event-driven server targets 10K+ idle
 * connections, so readiness goes through poll(2), which carries the fd
 * numbers explicitly and has no such ceiling. poll is POSIX, so that
 * stub has no platform gate.
 *
 * poll still costs O(registered fds) per wakeup — the kernel scans the
 * whole pollfd array even when one descriptor is ready, so a busy
 * connection pays for every idle one sharing the reactor. On Linux the
 * reactor therefore keeps its interest set in an epoll instance
 * (xq_epoll_* below): epoll_wait returns only the ready descriptors and
 * a step costs O(ready), which is what makes 10K parked connections
 * genuinely flat. Non-Linux builds report epoll as unavailable and the
 * reactor falls back to the poll path.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#include <errno.h>
#include <poll.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <sys/resource.h>

/* Interest and readiness bits shared with reactor.ml. */
#define XQ_READ 1
#define XQ_WRITE 2
#define XQ_HUP 4

/* xq_poll fds events timeout_ms -> revents
 *
 * [fds] is a Unix.file_descr array (ints on Unix), [events] a parallel
 * int array of XQ_* interest bits. Returns a fresh int array of XQ_*
 * readiness bits in the same order. [timeout_ms = -1] waits forever.
 */
CAMLprim value xq_poll(value v_fds, value v_events, value v_timeout_ms)
{
    CAMLparam3(v_fds, v_events, v_timeout_ms);
    CAMLlocal1(v_res);
    long n = Wosize_val(v_fds);
    int timeout = Int_val(v_timeout_ms);
    struct pollfd *pfds = NULL;
    int rc;
    long i;

    if (n > 0) {
        pfds = malloc(n * sizeof(struct pollfd));
        if (pfds == NULL) caml_raise_out_of_memory();
        for (i = 0; i < n; i++) {
            int bits = Int_val(Field(v_events, i));
            pfds[i].fd = Int_val(Field(v_fds, i));
            pfds[i].events = 0;
            if (bits & XQ_READ) pfds[i].events |= POLLIN;
            if (bits & XQ_WRITE) pfds[i].events |= POLLOUT;
            pfds[i].revents = 0;
        }
    }

    caml_release_runtime_system();
    rc = poll(pfds, (nfds_t)n, timeout);
    caml_acquire_runtime_system();

    if (rc < 0 && errno != EINTR) {
        int err = errno;
        free(pfds);
        caml_unix_error(err, "poll", Nothing);
    }

    v_res = caml_alloc(n, 0);
    for (i = 0; i < n; i++) {
        int bits = 0;
        if (rc > 0) {
            short re = pfds[i].revents;
            if (re & (POLLIN | POLLHUP | POLLERR)) bits |= XQ_READ;
            if (re & (POLLOUT | POLLERR)) bits |= XQ_WRITE;
            if (re & (POLLHUP | POLLERR | POLLNVAL)) bits |= XQ_HUP;
        }
        Store_field(v_res, i, Val_int(bits));
    }
    free(pfds);
    CAMLreturn(v_res);
}

/* xq_epoll_create () -> epoll fd, or -1 when the platform has no epoll
 *
 * A failed create (exotic kernel config) also reports -1: the caller
 * falls back to the portable poll path rather than erroring.
 */
#ifdef __linux__

#include <sys/epoll.h>

CAMLprim value xq_epoll_create(value v_unit)
{
    (void)v_unit;
    return Val_int(epoll_create1(EPOLL_CLOEXEC));
}

/* xq_epoll_ctl ep op fd bits -> unit
 *
 * [op]: 0 = add, 1 = modify, 2 = delete. Interest [bits] are the XQ_*
 * set. The edge cases a level-triggered reactor actually hits are
 * smoothed over here rather than in OCaml: re-adding a registered fd
 * degrades to modify, modifying a forgotten one degrades to add, and
 * deleting an already-closed fd (the kernel drops closed fds from the
 * set on its own) is a no-op.
 */
CAMLprim value xq_epoll_ctl(value v_ep, value v_op, value v_fd, value v_bits)
{
    struct epoll_event ev;
    int bits = Int_val(v_bits);
    int op = Int_val(v_op) == 0 ? EPOLL_CTL_ADD
           : Int_val(v_op) == 1 ? EPOLL_CTL_MOD
           : EPOLL_CTL_DEL;

    memset(&ev, 0, sizeof ev);
    ev.data.fd = Int_val(v_fd);
    if (bits & XQ_READ) ev.events |= EPOLLIN;
    if (bits & XQ_WRITE) ev.events |= EPOLLOUT;

    if (epoll_ctl(Int_val(v_ep), op, Int_val(v_fd), &ev) != 0) {
        if (op == EPOLL_CTL_ADD && errno == EEXIST) {
            if (epoll_ctl(Int_val(v_ep), EPOLL_CTL_MOD, Int_val(v_fd), &ev) == 0)
                return Val_unit;
        } else if (op == EPOLL_CTL_MOD && errno == ENOENT) {
            if (epoll_ctl(Int_val(v_ep), EPOLL_CTL_ADD, Int_val(v_fd), &ev) == 0)
                return Val_unit;
        } else if (op == EPOLL_CTL_DEL &&
                   (errno == ENOENT || errno == EBADF)) {
            return Val_unit;
        }
        caml_unix_error(errno, "epoll_ctl", Nothing);
    }
    return Val_unit;
}

/* xq_epoll_wait ep fds bits timeout_ms -> ready count
 *
 * Fills the caller's preallocated parallel arrays ([fds] the ready
 * descriptors, [bits] their XQ_* readiness) up to their capacity and
 * returns how many are valid. The arrays are reused across steps so a
 * quiet reactor allocates nothing per wakeup. EINTR reports 0 ready.
 */
CAMLprim value xq_epoll_wait(value v_ep, value v_fds, value v_bits,
                             value v_timeout_ms)
{
    CAMLparam4(v_ep, v_fds, v_bits, v_timeout_ms);
    long cap = Wosize_val(v_fds);
    struct epoll_event *evs;
    int rc;
    long i;

    if (cap <= 0) CAMLreturn(Val_int(0));
    evs = malloc(cap * sizeof(struct epoll_event));
    if (evs == NULL) caml_raise_out_of_memory();

    caml_release_runtime_system();
    rc = epoll_wait(Int_val(v_ep), evs, (int)cap, Int_val(v_timeout_ms));
    caml_acquire_runtime_system();

    if (rc < 0) {
        int err = errno;
        free(evs);
        if (err == EINTR) CAMLreturn(Val_int(0));
        caml_unix_error(err, "epoll_wait", Nothing);
    }
    for (i = 0; i < rc; i++) {
        int b = 0;
        uint32_t re = evs[i].events;
        if (re & (EPOLLIN | EPOLLHUP | EPOLLERR)) b |= XQ_READ;
        if (re & (EPOLLOUT | EPOLLERR)) b |= XQ_WRITE;
        if (re & (EPOLLHUP | EPOLLERR)) b |= XQ_HUP;
        Store_field(v_fds, i, Val_int(evs[i].data.fd));
        Store_field(v_bits, i, Val_int(b));
    }
    free(evs);
    CAMLreturn(Val_int(rc));
}

#else /* !__linux__ */

CAMLprim value xq_epoll_create(value v_unit)
{
    (void)v_unit;
    return Val_int(-1);
}

CAMLprim value xq_epoll_ctl(value v_ep, value v_op, value v_fd, value v_bits)
{
    (void)v_ep; (void)v_op; (void)v_fd; (void)v_bits;
    caml_unix_error(ENOSYS, "epoll_ctl", Nothing);
    return Val_unit;
}

CAMLprim value xq_epoll_wait(value v_ep, value v_fds, value v_bits,
                             value v_timeout_ms)
{
    (void)v_ep; (void)v_fds; (void)v_bits; (void)v_timeout_ms;
    caml_unix_error(ENOSYS, "epoll_wait", Nothing);
    return Val_int(0);
}

#endif /* __linux__ */

/* xq_raise_nofile want -> effective soft limit
 *
 * Raises the soft RLIMIT_NOFILE toward [want] (clamped to the hard
 * limit), never lowers it. Benches opening thousands of client sockets
 * call this instead of asking users to fiddle with ulimit.
 */
CAMLprim value xq_raise_nofile(value v_want)
{
    struct rlimit rl;
    rlim_t want = (rlim_t)Long_val(v_want);

    if (getrlimit(RLIMIT_NOFILE, &rl) != 0)
        caml_unix_error(errno, "getrlimit", Nothing);
    if (want > rl.rlim_cur) {
        rlim_t target = want;
        if (rl.rlim_max != RLIM_INFINITY && target > rl.rlim_max)
            target = rl.rlim_max;
        if (target > rl.rlim_cur) {
            struct rlimit nrl = rl;
            nrl.rlim_cur = target;
            if (setrlimit(RLIMIT_NOFILE, &nrl) == 0) rl.rlim_cur = target;
        }
    }
    return Val_long((long)rl.rlim_cur);
}
