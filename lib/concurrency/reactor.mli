(** Event-driven readiness multiplexing over epoll(7)/poll(2).

    The query server's default connection model hangs every socket off
    one reactor: a single thread waits on the whole descriptor set, so
    an idle connection costs a kernel interest-table entry and nothing
    else — no thread, no stack, no wakeups. On Linux the interest set
    lives in an epoll instance and one {!step} costs O(ready
    descriptors), independent of how many parked connections share the
    reactor; elsewhere a portable poll(2) fallback scans the registered
    set per step. Both go through tiny C stubs rather than
    [Unix.select] because select is limited to descriptor {e numbers}
    below FD_SETSIZE (1024 on Linux), which a 10K-connection server
    blows through immediately.

    Threading contract: {!register}, {!want}, {!unregister} and {!step}
    belong to the single owning thread. {!post} is thread-safe and is
    how other threads (dispatched query completions) get back onto the
    reactor thread. *)

type t

type ready = {
  readable : bool;  (** data (or EOF) available to read *)
  writable : bool;  (** the kernel send buffer has room *)
  hup : bool;       (** peer hung up / descriptor error *)
}

val create : unit -> t
(** A fresh reactor with its self-pipe wakeup channel. *)

val close : t -> unit
(** Close the self-pipe. The reactor must not be stepped afterwards. *)

val register :
  t -> Unix.file_descr -> read:bool -> write:bool -> (ready -> unit) -> unit
(** Add (or replace) a descriptor with its interest set and readiness
    callback. Callbacks run on the stepping thread, during {!step}. *)

val want : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Change a registered descriptor's interest set; unknown fds are
    ignored. *)

val unregister : t -> Unix.file_descr -> unit
(** Forget a descriptor (the caller closes it). Safe from inside a
    callback. *)

val registered : t -> int
(** Number of registered descriptors. *)

val post : t -> (unit -> unit) -> unit
(** Thread-safe: enqueue a closure to run on the stepping thread and
    wake the poll. Closures run in post order, during the next
    {!step}. *)

val step : t -> timeout_s:float -> unit
(** One poll round: wait up to [timeout_s] ([infinity] = forever) for
    readiness or a {!post}, run posted closures, then fire the callback
    of every ready descriptor. *)

(** {2 Single-descriptor waits} *)

val wait_fd :
  Unix.file_descr -> read:bool -> write:bool -> timeout_s:float ->
  ready option
(** One-shot poll of a single fd; [None] on timeout (EINTR reports as a
    timeout — re-check your deadline and retry). Replaces
    [Unix.select]-based waits so descriptors numbered past FD_SETSIZE
    keep working. *)

val raise_fd_limit : int -> int
(** Raise the soft RLIMIT_NOFILE toward the argument (clamped to the
    hard limit, never lowered); returns the effective soft limit. For
    benches and soak tests that open thousands of sockets. *)
