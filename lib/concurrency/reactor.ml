(* Event-driven readiness multiplexing.

   One reactor owns many file descriptors on a single thread: callers
   register an fd with an interest set and a callback, [step] waits for
   readiness and invokes the callback of every ready descriptor. Other
   threads talk to the reactor only through [post], which enqueues a
   closure and wakes the wait through a self-pipe — the query server's
   dispatched query completions arrive this way.

   Two kernel backends sit behind [step]. On Linux the interest set
   lives in an epoll instance, updated incrementally as registrations
   and interests change, and a step costs O(ready descriptors) — one
   busy connection among 10K parked ones pays nothing for the parked
   crowd. Elsewhere the step falls back to poll(2), rebuilding the
   pollfd array from the table (O(registered) per wakeup, but still free
   of select's FD_SETSIZE descriptor-number ceiling — see
   reactor_stubs.c).

   Registration, interest changes and [step] belong to the owning
   thread; [post] is the one thread-safe entry point. *)

let read_bit = 1
let write_bit = 2
let hup_bit = 4

external poll_stub :
  Unix.file_descr array -> int array -> int -> int array = "xq_poll"

external epoll_create_stub : unit -> int = "xq_epoll_create"

external epoll_ctl_stub :
  int -> int -> Unix.file_descr -> int -> unit = "xq_epoll_ctl"

external epoll_wait_stub :
  int -> Unix.file_descr array -> int array -> int -> int = "xq_epoll_wait"

let ep_op_add = 0
let ep_op_mod = 1
let ep_op_del = 2

external raise_nofile_stub : int -> int = "xq_raise_nofile"

let raise_fd_limit want = raise_nofile_stub want

type ready = { readable : bool; writable : bool; hup : bool }

let ready_of_bits bits =
  { readable = bits land read_bit <> 0;
    writable = bits land write_bit <> 0;
    hup = bits land hup_bit <> 0 }

let timeout_ms timeout_s =
  if timeout_s = infinity then -1
  else if timeout_s <= 0. then 0
  else max 1 (int_of_float (Float.ceil (timeout_s *. 1000.)))

(* One-shot wait on a single descriptor; [None] on timeout. EINTR is
   reported as a timeout so callers re-check their own deadline. *)
let wait_fd fd ~read ~write ~timeout_s =
  let interest =
    (if read then read_bit else 0) lor (if write then write_bit else 0)
  in
  let res = poll_stub [| fd |] [| interest |] (timeout_ms timeout_s) in
  let bits = res.(0) in
  if bits = 0 then None else Some (ready_of_bits bits)

(* ------------------------------------------------------------------ *)
(* The reactor proper                                                  *)
(* ------------------------------------------------------------------ *)

type entry = {
  e_fd : Unix.file_descr;
  mutable interest : int;
  callback : ready -> unit;
}

type t = {
  table : (Unix.file_descr, entry) Hashtbl.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  posted : (unit -> unit) Queue.t;
  post_lock : Mutex.t;
  epfd : int;  (* epoll instance; -1 = poll fallback *)
  (* epoll scratch: ready fds and their bits, filled by epoll_wait and
     reused every step *)
  ev_fds : Unix.file_descr array;
  ev_bits : int array;
  (* poll-fallback scratch arrays rebuilt per step; kept here so a
     stable fd set does not reallocate every poll *)
  mutable fds : Unix.file_descr array;
  mutable events : int array;
}

let max_ready_per_step = 1024

let create () =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let epfd = epoll_create_stub () in
  if epfd >= 0 then epoll_ctl_stub epfd ep_op_add wake_r read_bit;
  { table = Hashtbl.create 64; wake_r; wake_w; posted = Queue.create ();
    post_lock = Mutex.create (); epfd;
    ev_fds = Array.make max_ready_per_step wake_r;
    ev_bits = Array.make max_ready_per_step 0;
    fds = [||]; events = [||] }

let close t =
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  if t.epfd >= 0 then
    try Unix.close (Obj.magic t.epfd : Unix.file_descr)
    with Unix.Unix_error _ -> ()

let registered t = Hashtbl.length t.table

let register t fd ~read ~write callback =
  let interest =
    (if read then read_bit else 0) lor (if write then write_bit else 0)
  in
  Hashtbl.replace t.table fd { e_fd = fd; interest; callback };
  if t.epfd >= 0 then epoll_ctl_stub t.epfd ep_op_add fd interest

let want t fd ~read ~write =
  match Hashtbl.find_opt t.table fd with
  | None -> ()
  | Some e ->
    let interest =
      (if read then read_bit else 0) lor (if write then write_bit else 0)
    in
    (* The server refreshes interest after every pump; skipping the
       no-change case keeps the steady state (read interest on, output
       flushed) free of epoll_ctl syscalls. *)
    if e.interest <> interest then begin
      e.interest <- interest;
      if t.epfd >= 0 then epoll_ctl_stub t.epfd ep_op_mod fd interest
    end

let unregister t fd =
  if Hashtbl.mem t.table fd then begin
    Hashtbl.remove t.table fd;
    if t.epfd >= 0 then epoll_ctl_stub t.epfd ep_op_del fd 0
  end

let wake t =
  (* A full pipe already guarantees a wakeup; EAGAIN is success. EBADF /
     EPIPE mean the reactor already shut down — a completion posted by a
     dispatched query racing the drain has nobody left to wake, which is
     fine. *)
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with
  | Unix.Unix_error
      ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _) ->
    ()

let post t f =
  Mutex.lock t.post_lock;
  Queue.push f t.posted;
  Mutex.unlock t.post_lock;
  wake t

let drain_wake_pipe t =
  let scratch = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r scratch 0 64 with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let run_posted t =
  let batch = Queue.create () in
  Mutex.lock t.post_lock;
  Queue.transfer t.posted batch;
  Mutex.unlock t.post_lock;
  Queue.iter (fun f -> f ()) batch

(* Fire the callback of one ready descriptor. [snap] is the entry that
   owned [fd] when readiness was captured — before the step's posted
   closures or earlier callbacks ran. Either of those can close an fd,
   and a registration made later in the same step (a connection accepted
   by a fired accept callback, say) can reuse the freed number; the
   stale readiness must not be delivered to the new tenant. [register]
   always installs a fresh record, so physical equality against the
   current table entry detects recycling. Bits the entry stopped caring
   about mid-step are dropped too (HUP always reports). *)
let fire t fd snap bits =
  match Hashtbl.find_opt t.table fd with
  | Some e
    when e == snap && (e.interest land bits <> 0 || bits land hup_bit <> 0) ->
    e.callback (ready_of_bits bits)
  | _ -> ()

let step_epoll t ~timeout_s =
  let count =
    epoll_wait_stub t.epfd t.ev_fds t.ev_bits (timeout_ms timeout_s)
  in
  let woke = ref false in
  let snaps = Array.make (max count 1) None in
  for j = 0 to count - 1 do
    if t.ev_fds.(j) = t.wake_r then woke := true
    else snaps.(j) <- Hashtbl.find_opt t.table t.ev_fds.(j)
  done;
  if !woke then drain_wake_pipe t;
  run_posted t;
  for j = 0 to count - 1 do
    match snaps.(j) with
    | Some e -> fire t t.ev_fds.(j) e t.ev_bits.(j)
    | None -> ()
  done

let step_poll t ~timeout_s =
  let n = Hashtbl.length t.table + 1 in
  if Array.length t.fds < n then begin
    t.fds <- Array.make n t.wake_r;
    t.events <- Array.make n 0
  end;
  t.fds.(0) <- t.wake_r;
  t.events.(0) <- read_bit;
  let i = ref 1 in
  Hashtbl.iter
    (fun fd e ->
      t.fds.(!i) <- fd;
      t.events.(!i) <- e.interest;
      incr i)
    t.table;
  let count = !i in
  let fds = Array.sub t.fds 0 count in
  let events = Array.sub t.events 0 count in
  let revents = poll_stub fds events (timeout_ms timeout_s) in
  let snaps =
    Array.init count (fun j ->
        if j = 0 || revents.(j) = 0 then None
        else Hashtbl.find_opt t.table fds.(j))
  in
  if revents.(0) <> 0 then drain_wake_pipe t;
  run_posted t;
  for j = 1 to count - 1 do
    match snaps.(j) with
    | Some e -> fire t fds.(j) e revents.(j)
    | None -> ()
  done

let step t ~timeout_s =
  if t.epfd >= 0 then step_epoll t ~timeout_s else step_poll t ~timeout_s
