(** A fixed-size pool of OCaml 5 domains with a shared work queue and
    futures.

    The pool is the single concurrency primitive of the engine: the
    executor's [Exchange] operator and the Data Hounds parallel harvest
    both fan work out through it. A pool of size [n] runs at most [n]
    tasks at once: [n - 1] resident worker domains plus the caller,
    which "helps" by running queued tasks while it waits on a future —
    so nested [parallel_map] calls from inside a task cannot deadlock.

    The [jobs] setting (CLI [--jobs N] / [XOMATIQ_JOBS]) governs a
    process-global pool, created lazily and resized on demand. Parallel
    code paths must degrade to plain sequential execution when
    [jobs () <= 1]; results must never depend on the setting. *)

type t
(** A pool of worker domains. *)

val create : int -> t
(** [create n] makes a pool of total size [max 1 n]: [n - 1] worker
    domains are spawned immediately and live until {!shutdown}. *)

val size : t -> int
(** Total parallelism of the pool (worker domains + the helping caller). *)

val shutdown : t -> unit
(** Drain nothing, finish running tasks, join all worker domains.
    Idempotent. Submitting to a shut-down pool runs tasks inline. *)

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task; it runs on any pool domain (or on a caller inside
    {!await}). Exceptions are captured and re-raised by {!await}. *)

val await : t -> 'a future -> 'a
(** Block until the future is resolved, running other queued tasks while
    waiting. Re-raises the task's exception (with its backtrace) if it
    failed. *)

val poll : 'a future -> bool
(** True once the future is resolved (with a value or an exception);
    never blocks. The query server's session loop polls between socket
    [select]s so it can watch for CANCEL frames and deadlines while its
    query runs on the pool. *)

val available : t -> int
(** Idle worker domains right now: workers neither executing a task nor
    already promised to one sitting in the queue. Advisory — no
    reservation is taken — and the basis of the scheduler's "workers
    only when the pool is idle" grant ({!Sched.exchange_parallel}). *)

val await_blocking : 'a future -> 'a
(** Like {!await} but without helping: waits on the future's condition
    variable only. For callers that must stay responsive to their own
    events (server session threads) rather than pick up queued work —
    note that a pool of size 1 resolves futures inline at {!submit}
    time, so this never deadlocks there. *)

val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Apply [f] to every element across the pool; results are returned in
    input order. The first exception (by input order) is re-raised.
    Sequential [List.map] when the pool size is 1. *)

val parallel_chunks : t -> n:int -> (int -> int -> 'a) -> 'a list
(** Split the range [\[0, n)] into at most [size t] contiguous chunks
    and evaluate [f lo hi] for each across the pool; results come back
    in range order. The chunking is deterministic for a given [n] and
    pool size. *)

(** {2 The process-global pool} *)

val default_jobs : unit -> int
(** [XOMATIQ_JOBS] when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()], clamped to [\[1, 64\]]. *)

val jobs : unit -> int
(** The effective jobs setting (the global pool's size). Planner
    decisions and plan-cache keys depend on this value. *)

val set_jobs : int -> unit
(** Resize the global pool (shutting down the old one, if any). Values
    are clamped to [\[1, 64\]]. *)

val get : unit -> t
(** The global pool, created lazily at the current jobs setting. *)

val peek : unit -> t option
(** The global pool if some call already created it, without creating
    one. The adaptive scheduler's Exchange gate peeks so that a process
    whose queries all run inline never spawns worker domains — resident
    idle domains tax every query through the stop-the-world GC
    rendezvous on hosts without spare cores. *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** Run a thunk with the global jobs setting temporarily overridden
    (restored on exit, even on exceptions). Used by tests and benches to
    pin a jobs level. An override above 1 creates the pool eagerly, so
    adaptive Exchange gates (which only {!peek}) can grant workers. *)
