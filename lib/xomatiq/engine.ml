type trace = {
  stages : (string * float) list;
  indexes : string list;
  result_rows : int;
  operator_rows : int;
  index_probes : int;
  hash_build_rows : int;
  plan : string option;
}

type result = {
  labels : string list;
  rows : string list list;
  sql : string;
  trace : trace option;
  cached : bool;
}

type mode =
  [ `Relational
  | `Reference
  ]

exception Query_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Query_error m)) fmt

let timed f =
  let t0 = Rdb.Obs.now_s () in
  let v = f () in
  (v, Rdb.Obs.now_s () -. t0)

(* Always all six stages, in pipeline order, even when a stage did not
   run (pre-parsed AST, statically-empty query, reference mode): the
   trace shape is part of the contract. *)
let stages ~parse ~xq2sql ~sql_parse ~plan ~execute ~tag =
  [ ("parse", parse); ("xq2sql", xq2sql); ("sql-parse", sql_parse);
    ("plan", plan); ("execute", execute); ("tag", tag) ]

let trace_to_string tr =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "stage timings:\n";
  List.iter
    (fun (name, s) ->
      Buffer.add_string buf (Printf.sprintf "  %-9s %8.3f ms\n" name (s *. 1000.)))
    tr.stages;
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0. tr.stages in
  Buffer.add_string buf (Printf.sprintf "  %-9s %8.3f ms\n" "total" (total *. 1000.));
  Buffer.add_string buf
    (Printf.sprintf "indexes: %s\n"
       (match tr.indexes with [] -> "(none)" | l -> String.concat ", " l));
  Buffer.add_string buf
    (Printf.sprintf
       "rows: %d (operator rows=%d, index probes=%d, hash build rows=%d)\n"
       tr.result_rows tr.operator_rows tr.index_probes tr.hash_build_rows);
  Buffer.contents buf

let translate ?contains_strategy db q =
  try Xq2sql.translate ?contains_strategy db q with
  | Xq2sql.Unsupported m -> error "unsupported query: %s" m
  | Ast.Invalid_query m -> error "invalid query: %s" m

let to_string_rows rows =
  List.sort_uniq compare
    (List.map (fun row -> Array.to_list (Array.map Rdb.Value.to_string row)) rows)

let empty_trace ~parse_s ~xq2sql_s =
  { stages =
      stages ~parse:parse_s ~xq2sql:xq2sql_s ~sql_parse:0. ~plan:0. ~execute:0.
        ~tag:0.;
    indexes = []; result_rows = 0; operator_rows = 0; index_probes = 0;
    hash_build_rows = 0; plan = None }

(* ---------------- translated-plan cache ----------------

   Queries on the untraced relational path skip the whole
   parse / XQ2SQL / SQL-parse / plan pipeline when the same text was
   translated before against the same warehouse and catalog version.
   The version stamp (bumped by every DDL, DML and ANALYZE) makes
   entries self-invalidating: a stale entry simply fails the guard and
   is re-translated and replaced on the next lookup. *)

type cache_entry = {
  ce_wh : Datahounds.Warehouse.t;
  ce_version : int;             (* catalog version at translation time *)
  ce_labels : string list;
  ce_sql : string;
  ce_plan : Rdb.Planner.planned option;  (* None when statically empty *)
}

(* The cache is process-global and the stress tests run queries from
   several domains at once, so every access goes through one mutex. *)
let cache_lock = Mutex.create ()
let plan_cache : (string * string, cache_entry) Hashtbl.t = Hashtbl.create 64
let cache_hits = ref 0
let cache_misses = ref 0

let locked f =
  Mutex.lock cache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_lock) f

let cache_stats () = locked (fun () -> (!cache_hits, !cache_misses))

let cache_clear () =
  locked (fun () ->
      Hashtbl.reset plan_cache;
      cache_hits := 0;
      cache_misses := 0)

(* Whitespace-insensitive key: trim and collapse runs of blanks. *)
let normalize_query_text text =
  let buf = Buffer.create (String.length text) in
  let pending = ref false and started = ref false in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' -> if !started then pending := true
      | c ->
        if !pending then Buffer.add_char buf ' ';
        pending := false;
        started := true;
        Buffer.add_char buf c)
    text;
  Buffer.contents buf

(* The effective worker count is part of the key: a plan built at jobs=4
   carries Exchange partitions that a jobs=1 run must not reuse (and vice
   versa), exactly like the contains-strategy tag. *)
let strategy_tag strategy =
  let s = match strategy with `Keyword_index -> "kw" | `Like_scan -> "like" in
  (* the structural-join and vectorized-executor toggles change the
     physical plan (the rewrite pass runs only when vectorized), and the
     scheduler mode changes how a plan is granted workers, so a cached
     plan from one setting must not serve the other *)
  Printf.sprintf "%s/j%d/sj%d/v%d/%s" s (Conc.Pool.jobs ())
    (if Rdb.Planner.structural_enabled () then 1 else 0)
    (if Rdb.Rewrite.enabled () then 1 else 0)
    (Conc.Sched.mode_tag ())

let catalog_version wh =
  Rdb.Catalog.version (Rdb.Database.catalog (Datahounds.Warehouse.db wh))

(* Parse and plan the translated SQL via the plan cache, keyed by the
   generated SQL text: programmatic (AST-entry) runs of the same query
   then skip SQL parse + planning exactly like textual ones. *)
let planned_of_sql ~strategy wh sql =
  let db = Datahounds.Warehouse.db wh in
  let key = (normalize_query_text sql, strategy_tag strategy) in
  let version = catalog_version wh in
  let hit =
    locked (fun () ->
        match Hashtbl.find_opt plan_cache key with
        | Some e when e.ce_wh == wh && e.ce_version = version ->
          incr cache_hits;
          Some e
        | _ ->
          incr cache_misses;
          None)
  in
  match hit with
  | Some { ce_plan = Some planned; _ } -> (planned, true)
  | _ ->
    let planned =
      match Rdb.Sql_parser.parse sql with
      | Rdb.Sql_ast.Select_stmt sel ->
        (try Rdb.Planner.plan_select (Rdb.Database.catalog db) sel
         with Rdb.Planner.Plan_error m -> error "planning failed: %s" m)
      | Rdb.Sql_ast.Query_stmt qq ->
        (try Rdb.Planner.plan_query (Rdb.Database.catalog db) qq
         with Rdb.Planner.Plan_error m -> error "planning failed: %s" m)
      | _ -> error "internal: translation did not produce a SELECT"
      | exception ((Rdb.Sql_parser.Parse_error _ | Rdb.Sql_lexer.Lex_error _) as e)
        -> error "internal: %s" (Rdb.Sql_parser.error_to_string e)
    in
    let e =
      { ce_wh = wh; ce_version = version; ce_labels = []; ce_sql = sql;
        ce_plan = Some planned }
    in
    locked (fun () -> Hashtbl.replace plan_cache key e);
    (planned, false)

let run_relational ?contains_strategy ?cancel ~trace ~parse_s wh (q : Ast.t) =
  let db = Datahounds.Warehouse.db wh in
  let t, xq2sql_s = timed (fun () -> translate ?contains_strategy db q) in
  if not trace then begin
    if t.statically_empty then
      { labels = t.labels; rows = []; sql = t.sql; trace = None;
        cached = false }
    else begin
      let strategy =
        match contains_strategy with
        | Some s -> s
        | None -> `Keyword_index
      in
      let planned, cached = planned_of_sql ~strategy wh t.sql in
      let rows =
        try snd (Rdb.Database.run_planned db ?cancel planned) with
        | Rdb.Executor.Runtime_error m ->
          error "SQL execution failed: %s\n%s" m t.sql
      in
      { labels = t.labels; rows = to_string_rows rows; sql = t.sql;
        trace = None; cached }
    end
  end
  else if t.statically_empty then
    { labels = t.labels; rows = []; sql = t.sql;
      trace = Some (empty_trace ~parse_s ~xq2sql_s); cached = false }
  else begin
    (* Decomposed pipeline: same semantics as [Database.query t.sql] but
       each stage is timed and execution runs under an Obs profile. *)
    let stmt, sql_parse_s =
      timed (fun () ->
          try Rdb.Sql_parser.parse t.sql with
          | (Rdb.Sql_parser.Parse_error _ | Rdb.Sql_lexer.Lex_error _) as e ->
            error "internal: %s" (Rdb.Sql_parser.error_to_string e))
    in
    let planned, plan_s =
      timed (fun () ->
          try
            match stmt with
            | Rdb.Sql_ast.Select_stmt sel ->
              Rdb.Planner.plan_select (Rdb.Database.catalog db) sel
            | Rdb.Sql_ast.Query_stmt qq ->
              Rdb.Planner.plan_query (Rdb.Database.catalog db) qq
            | _ -> error "internal: translation did not produce a SELECT"
          with Rdb.Planner.Plan_error m -> error "planning failed: %s" m)
    in
    let obs = Rdb.Obs.create planned.Rdb.Planner.plan in
    let rows, execute_s =
      timed (fun () ->
          try snd (Rdb.Database.run_planned db ~obs ?cancel planned) with
          | Rdb.Executor.Runtime_error m ->
            error "SQL execution failed: %s\n%s" m t.sql)
    in
    let string_rows, tag_s = timed (fun () -> to_string_rows rows) in
    let tr =
      { stages =
          stages ~parse:parse_s ~xq2sql:xq2sql_s ~sql_parse:sql_parse_s
            ~plan:plan_s ~execute:execute_s ~tag:tag_s;
        indexes = Rdb.Plan.indexes_used planned.Rdb.Planner.plan;
        result_rows = List.length string_rows;
        operator_rows = Rdb.Obs.total_rows obs;
        index_probes = Rdb.Obs.total_probes obs;
        hash_build_rows = Rdb.Obs.total_build_rows obs;
        plan = Some (Rdb.Obs.annotate obs planned.Rdb.Planner.plan) }
    in
    { labels = t.labels; rows = string_rows; sql = t.sql; trace = Some tr;
      cached = false }
  end

let run_reference ~trace ~parse_s wh (q : Ast.t) =
  let provider = Eval.of_warehouse wh in
  let rows, execute_s =
    timed (fun () ->
        try Eval.eval provider q with
        | Eval.Unknown_collection c -> error "unknown collection %S" c
        | Ast.Invalid_query m -> error "invalid query: %s" m)
  in
  let labels, tag_s =
    timed (fun () -> List.mapi Xq2sql.default_label q.Ast.return_items)
  in
  let tr =
    if not trace then None
    else
      Some
        { stages =
            stages ~parse:parse_s ~xq2sql:0. ~sql_parse:0. ~plan:0.
              ~execute:execute_s ~tag:tag_s;
          indexes = []; result_rows = List.length rows; operator_rows = 0;
          index_probes = 0; hash_build_rows = 0; plan = None }
  in
  { labels; rows; sql = "(reference evaluation)"; trace = tr; cached = false }

let run ?(mode = `Relational) ?contains_strategy ?(trace = false) wh q =
  match mode with
  | `Relational -> run_relational ?contains_strategy ~trace ~parse_s:0. wh q
  | `Reference -> run_reference ~trace ~parse_s:0. wh q

let run_cache_entry ?cancel ~cached e =
  match e.ce_plan with
  | None ->
    { labels = e.ce_labels; rows = []; sql = e.ce_sql; trace = None; cached }
  | Some planned ->
    let _, rows =
      try
        Rdb.Database.run_planned ?cancel (Datahounds.Warehouse.db e.ce_wh)
          planned
      with Rdb.Executor.Runtime_error m ->
        error "SQL execution failed: %s\n%s" m e.ce_sql
    in
    { labels = e.ce_labels; rows = to_string_rows rows; sql = e.ce_sql;
      trace = None; cached }

(* Parse, translate and plan [text] into a fresh cache entry (no cache
   interaction). Shared by the run-and-populate path and the server's
   prepare path. *)
let entry_of_text ~contains_strategy ~version wh text =
  let q =
    match Parser.parse text with
    | q -> q
    | exception (Parser.Parse_error _ as e) ->
      error "%s" (Parser.error_to_string e)
    | exception Ast.Invalid_query m -> error "invalid query: %s" m
  in
  let db = Datahounds.Warehouse.db wh in
  let t = translate ~contains_strategy db q in
  let ce_plan =
    if t.statically_empty then None
    else
      match Rdb.Sql_parser.parse t.sql with
      | Rdb.Sql_ast.Select_stmt sel ->
        (try Some (Rdb.Planner.plan_select (Rdb.Database.catalog db) sel)
         with Rdb.Planner.Plan_error m -> error "planning failed: %s" m)
      | Rdb.Sql_ast.Query_stmt qq ->
        (try Some (Rdb.Planner.plan_query (Rdb.Database.catalog db) qq)
         with Rdb.Planner.Plan_error m -> error "planning failed: %s" m)
      | _ -> error "internal: translation did not produce a SELECT"
      | exception ((Rdb.Sql_parser.Parse_error _ | Rdb.Sql_lexer.Lex_error _) as e)
        -> error "internal: %s" (Rdb.Sql_parser.error_to_string e)
  in
  { ce_wh = wh; ce_version = version; ce_labels = t.labels; ce_sql = t.sql;
    ce_plan }

let run_text_cached ?cancel ~contains_strategy wh text =
  let key = (normalize_query_text text, strategy_tag contains_strategy) in
  let version = catalog_version wh in
  let hit =
    locked (fun () ->
        match Hashtbl.find_opt plan_cache key with
        | Some e when e.ce_wh == wh && e.ce_version = version ->
          incr cache_hits;
          Some e
        | _ ->
          incr cache_misses;
          None)
  in
  match hit with
  | Some e -> run_cache_entry ?cancel ~cached:true e
  | None ->
    let e = entry_of_text ~contains_strategy ~version wh text in
    let r = run_cache_entry ?cancel ~cached:false e in
    (* only successful translations+executions are cached *)
    locked (fun () -> Hashtbl.replace plan_cache key e);
    r

let run_text ?(mode = `Relational) ?(contains_strategy = `Keyword_index)
    ?(trace = false) ?cancel wh text =
  match mode with
  | `Relational when not trace ->
    run_text_cached ?cancel ~contains_strategy wh text
  | _ ->
    let q, parse_s =
      timed (fun () ->
          match Parser.parse text with
          | q -> q
          | exception (Parser.Parse_error _ as e) ->
            error "%s" (Parser.error_to_string e)
          | exception Ast.Invalid_query m -> error "invalid query: %s" m)
    in
    (match mode with
     | `Relational ->
       run_relational ~contains_strategy ?cancel ~trace ~parse_s wh q
     | `Reference -> run_reference ~trace ~parse_s wh q)

(* ---------------- prepared queries ---------------- *)

type prepared = {
  prep_wh : Datahounds.Warehouse.t;
  prep_labels : string list;
  prep_sql : string;
  prep_plan : Rdb.Planner.planned option;  (* None when statically empty *)
}

let prepare ?contains_strategy wh (q : Ast.t) =
  let db = Datahounds.Warehouse.db wh in
  let t = translate ?contains_strategy db q in
  let prep_plan =
    if t.statically_empty then None
    else
      match Rdb.Sql_parser.parse t.sql with
      | Rdb.Sql_ast.Select_stmt sel ->
        (try Some (Rdb.Database.plan_select db sel)
         with Rdb.Planner.Plan_error m -> error "planning failed: %s" m)
      | _ -> error "internal: translation did not produce a SELECT"
      | exception e -> error "internal: %s" (Rdb.Sql_parser.error_to_string e)
  in
  { prep_wh = wh; prep_labels = t.labels; prep_sql = t.sql; prep_plan }

let run_prepared p =
  match p.prep_plan with
  | None ->
    { labels = p.prep_labels; rows = []; sql = p.prep_sql; trace = None;
      cached = false }
  | Some planned ->
    let _, rows = Rdb.Database.run_planned (Datahounds.Warehouse.db p.prep_wh) planned in
    { labels = p.prep_labels;
      rows = to_string_rows rows;
      sql = p.prep_sql;
      trace = None;
      cached = false }

(* ---------------- server-side text preparation ----------------

   The query server plans on the session thread — one plan-cache lookup
   on the hot path — reads the root cost estimate off the plan to pick a
   scheduling lane (inline vs. pool dispatch), and only then runs the
   query. Unlike [run_text_cached], preparation populates the cache
   before execution: a query that later times out or is canceled should
   not pay translation again. *)

type prepared_text = {
  pt_entry : cache_entry;
  pt_tag : string;   (* strategy_tag at preparation time *)
  pt_hit : bool;     (* served from the plan cache *)
}

let prepare_text ~contains_strategy wh text =
  let tag = strategy_tag contains_strategy in
  let key = (normalize_query_text text, tag) in
  let version = catalog_version wh in
  let hit =
    locked (fun () ->
        match Hashtbl.find_opt plan_cache key with
        | Some e when e.ce_wh == wh && e.ce_version = version ->
          incr cache_hits;
          Some e
        | _ ->
          incr cache_misses;
          None)
  in
  match hit with
  | Some e -> { pt_entry = e; pt_tag = tag; pt_hit = true }
  | None ->
    let e = entry_of_text ~contains_strategy ~version wh text in
    locked (fun () -> Hashtbl.replace plan_cache key e);
    { pt_entry = e; pt_tag = tag; pt_hit = false }

let prepared_hit pt = pt.pt_hit

let prepared_cost pt =
  match pt.pt_entry.ce_plan with
  | Some planned -> planned.Rdb.Planner.est_cost
  | None -> 0.

(* A memoized preparation stays valid while the warehouse, its catalog
   version and every plan-shaping toggle (strategy/jobs/structural/vec/
   sched — all folded into the tag) are unchanged. *)
let prepared_valid ~contains_strategy wh pt =
  pt.pt_entry.ce_wh == wh
  && pt.pt_entry.ce_version = catalog_version wh
  && pt.pt_tag = strategy_tag contains_strategy

let run_prepared_text ?cancel ~cached pt =
  run_cache_entry ?cancel ~cached pt.pt_entry

let explain wh q =
  let db = Datahounds.Warehouse.db wh in
  match Xq2sql.translate db q with
  | t ->
    (match Rdb.Database.explain db t.sql with
     | Ok plan -> Printf.sprintf "SQL:\n%s\n\nPlan:\n%s" t.sql plan
     | Error m -> error "planning failed: %s\n%s" m t.sql)
  | exception Xq2sql.Unsupported m -> error "unsupported query: %s" m

let explain_analyze wh q =
  let db = Datahounds.Warehouse.db wh in
  match Xq2sql.translate db q with
  | t ->
    (match Rdb.Database.explain_analyze db t.sql with
     | Ok plan -> Printf.sprintf "SQL:\n%s\n\nPlan:\n%s" t.sql plan
     | Error m -> error "execution failed: %s\n%s" m t.sql)
  | exception Xq2sql.Unsupported m -> error "unsupported query: %s" m

(* Surface the translated-plan cache in metric snapshots (METRICS wire
   request, --metrics-json) alongside the server's own counters. *)
let () =
  Rdb.Obs.register_gauge "engine.plan_cache.hits" (fun () ->
      fst (cache_stats ()));
  Rdb.Obs.register_gauge "engine.plan_cache.misses" (fun () ->
      snd (cache_stats ()))

let result_to_xml r = Tagger.to_xml ~labels:r.labels r.rows

let result_to_table r = Tagger.to_table ~labels:r.labels r.rows
