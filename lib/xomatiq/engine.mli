(** The XomatiQ query engine: the end-to-end path of Section 3 — parse a
    FLWR query, rewrite it to SQL over the generic schema (XQ2SQL),
    evaluate on the relational engine, and return the rows either as a
    table or re-tagged into XML (Relation2XML).

    Rows are distinct and sorted, so results are directly comparable with
    the reference evaluator ({!Eval}), which is also exposed here as the
    [`Reference] execution mode for differential testing and baselines. *)

type trace = {
  stages : (string * float) list;
      (** all six pipeline stages in order — parse, xq2sql, sql-parse,
          plan, execute, tag — with wall-clock seconds (0. for stages
          that did not run, e.g. parse when the AST was pre-parsed) *)
  indexes : string list;  (** index names the chosen plan probes *)
  result_rows : int;
  operator_rows : int;    (** rows produced summed over plan operators *)
  index_probes : int;
  hash_build_rows : int;
  plan : string option;   (** annotated plan tree (relational mode) *)
}

type result = {
  labels : string list;
  rows : string list list;  (** distinct, sorted *)
  sql : string;             (** the SQL the query was rewritten to *)
  trace : trace option;     (** populated when run with [~trace:true] *)
  cached : bool;            (** served from the translated-plan cache *)
}

type mode =
  [ `Relational   (** XQ2SQL + relational engine (the XomatiQ way) *)
  | `Reference    (** in-memory evaluation over reconstructed documents *)
  ]

exception Query_error of string

val run :
  ?mode:mode -> ?contains_strategy:Xq2sql.contains_strategy ->
  ?trace:bool -> Datahounds.Warehouse.t -> Ast.t -> result
(** @raise Query_error wrapping parse/translation/execution failures.
    [contains_strategy] selects how contains() is rewritten (relational
    mode only); the default probes the inverted keyword index.
    [trace] (default false) times each pipeline stage and profiles the
    physical plan; see {!trace}. *)

val run_text :
  ?mode:mode -> ?contains_strategy:Xq2sql.contains_strategy ->
  ?trace:bool -> ?cancel:Rdb.Cancel.t -> Datahounds.Warehouse.t -> string ->
  result
(** Parse the textual form first (the trace's [parse] stage measures
    this parse).

    [cancel] — the per-query cancellation token of the calling session
    (the query server creates one per request, carrying the
    [--query-timeout] deadline) — is threaded into the executor, which
    checks it at every operator boundary. A fired token aborts the run
    with [Rdb.Cancel.Canceled] (never wrapped into {!Query_error}, so
    callers can distinguish typed TIMEOUT/CANCELED outcomes from query
    failures).

    On the untraced relational path, translated plans are cached: the
    cache key is the whitespace-normalized query text plus the
    contains-strategy, and an entry is valid only for the same warehouse
    at the same catalog version — any DDL, DML or ANALYZE bumps the
    version and so invalidates every cached plan for that warehouse. *)

val cache_stats : unit -> int * int
(** [(hits, misses)] of the translated-plan cache since start (or the
    last {!cache_clear}). *)

val cache_clear : unit -> unit
(** Drop all cached plans and reset {!cache_stats}. *)

val trace_to_string : trace -> string
(** Compact multi-line profile: per-stage timings, chosen indexes, and
    operator counters. *)

(** {2 Prepared queries}

    The XQ2SQL rewrite (path-id resolution against [xml_path]), SQL
    parsing and physical planning all happen once at prepare time; each
    {!run_prepared} only executes the plan. The GUI prepares a query when
    the user clicks "Translate Query" and re-executes it as they browse.

    A prepared plan embeds resolved [path_id]s and index choices: prepare
    again after loading documents with new element paths or changing the
    index set. *)

type prepared

val prepare :
  ?contains_strategy:Xq2sql.contains_strategy ->
  Datahounds.Warehouse.t -> Ast.t -> prepared

val run_prepared : prepared -> result

(** {2 Server-side text preparation}

    The query server's scheduling gate needs the plan's cost estimate
    *before* deciding where to run the query, so planning and execution
    are split: {!prepare_text} resolves the text through the plan cache
    (populating it on a miss, before any execution), {!prepared_cost}
    exposes the root cost estimate, and {!run_prepared_text} executes.
    A session memoizes its last preparation and revalidates it with
    {!prepared_valid} — repeated hot queries then skip the cache mutex
    and hashtable entirely. *)

type prepared_text

val prepare_text :
  contains_strategy:Xq2sql.contains_strategy ->
  Datahounds.Warehouse.t -> string -> prepared_text
(** @raise Query_error on parse, translation or planning failure. *)

val prepared_hit : prepared_text -> bool
(** Whether {!prepare_text} was served from the plan cache. *)

val prepared_cost : prepared_text -> float
(** Root cost estimate of the prepared plan ("rows touched"); [0.] for
    statically-empty queries. *)

val prepared_valid :
  contains_strategy:Xq2sql.contains_strategy ->
  Datahounds.Warehouse.t -> prepared_text -> bool
(** True while the preparation still matches this warehouse, its catalog
    version, and every plan-shaping toggle (strategy, jobs, structural
    join, vectorization, scheduler mode). *)

val run_prepared_text :
  ?cancel:Rdb.Cancel.t -> cached:bool -> prepared_text -> result
(** Execute a prepared text; [cached] is echoed as {!result.cached}
    (the server reports its memo hits through it). *)

val explain : Datahounds.Warehouse.t -> Ast.t -> string
(** The SQL text and the physical plan chosen by the relational
    optimizer. *)

val explain_analyze : Datahounds.Warehouse.t -> Ast.t -> string
(** Like {!explain}, but executes the query and annotates every plan
    operator with rows produced, index probes, hash-build sizes and
    wall time. *)

val result_to_xml : result -> Gxml.Tree.document
val result_to_table : result -> string
