exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun m -> raise (Unsupported m)) fmt

type translation = {
  sql : string;
  labels : string list;
  statically_empty : bool;
}

let sql_string s = Rdb.Value.to_literal (Rdb.Value.Text s)

let sql_number f =
  if Float.is_integer f && Float.abs f < 1e15 then string_of_int (int_of_float f)
  else Printf.sprintf "%.12g" f

(* ------------------------------------------------------------------ *)
(* Path splitting: structural steps + final-step predicates            *)
(* ------------------------------------------------------------------ *)

(* Returns (structural path with all predicates stripped, predicates of the
   final step). Predicates on earlier steps are unsupported. *)
let split_predicates (path : Gxml.Path.t) =
  let n = List.length path in
  let structural =
    List.map (fun (s : Gxml.Path.step) -> { s with Gxml.Path.predicates = [] }) path
  in
  let final_preds = ref [] in
  List.iteri
    (fun i (s : Gxml.Path.step) ->
      if s.predicates <> [] then begin
        if i < n - 1 then
          unsupported "predicates are only supported on the final path step (%s)"
            (Gxml.Path.to_string path);
        final_preds := s.predicates
      end)
    path;
  (structural, !final_preds)

(* ------------------------------------------------------------------ *)
(* Translation state                                                   *)
(* ------------------------------------------------------------------ *)

type contains_strategy =
  [ `Keyword_index  (* probe the xml_keyword inverted index (the design) *)
  | `Like_scan      (* LOWER(sval) LIKE '%kw%' over subtree value nodes
                       — the ablation: what contains() costs without the
                       keyword table *)
  ]

type state = {
  db : Rdb.Database.t;
  strategy : contains_strategy;
  mutable froms : string list;      (* reversed *)
  mutable conjuncts : string list;  (* reversed *)
  mutable counter : int;
  mutable empty : bool;
  bindings : (string * string) list;  (* FLWR var -> its node alias *)
}

let fresh st prefix =
  st.counter <- st.counter + 1;
  Printf.sprintf "%s%d" prefix st.counter

let add_from st clause = st.froms <- clause :: st.froms

let add_conj st c = st.conjuncts <- c :: st.conjuncts

(* ------------------------------------------------------------------ *)
(* Path-id cache                                                       *)
(* ------------------------------------------------------------------ *)

(* Every structural step in a translation re-resolves its path pattern
   with a full scan over [xml_path] ({!Datahounds.Shred.path_ids_matching}).
   The matching id set only changes when documents are loaded or dropped —
   and both bump the catalog version — so resolutions are memoized per
   (database, catalog version, pattern). A stale entry simply fails the
   version guard and is recomputed and replaced in place, exactly like the
   engine's translated-plan cache. Process-global + mutex because the
   stress tests translate from several domains at once. *)

let path_cache_lock = Mutex.create ()

(* (Database.id, rendered pattern) -> (catalog version, path_ids) *)
let path_cache : (int * string, int * int list) Hashtbl.t = Hashtbl.create 64

let path_cache_hits = Rdb.Obs.Counter.create ()
let path_cache_misses = Rdb.Obs.Counter.create ()

let () =
  Rdb.Obs.register_counter "xq2sql.path_cache.hits" path_cache_hits;
  Rdb.Obs.register_counter "xq2sql.path_cache.misses" path_cache_misses

let path_locked f =
  Mutex.lock path_cache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock path_cache_lock) f

let path_cache_stats () =
  path_locked (fun () ->
      ( Rdb.Obs.Counter.value path_cache_hits,
        Rdb.Obs.Counter.value path_cache_misses ))

let path_cache_clear () =
  path_locked (fun () ->
      Hashtbl.reset path_cache;
      Rdb.Obs.Counter.reset path_cache_hits;
      Rdb.Obs.Counter.reset path_cache_misses)

let path_ids_cached db (pattern : Gxml.Path.t) =
  let version = Rdb.Catalog.version (Rdb.Database.catalog db) in
  let key = (Rdb.Database.id db, Gxml.Path.to_string pattern) in
  let cached =
    path_locked (fun () ->
        match Hashtbl.find_opt path_cache key with
        | Some (v, ids) when v = version ->
          Rdb.Obs.Counter.incr path_cache_hits;
          Some ids
        | _ ->
          Rdb.Obs.Counter.incr path_cache_misses;
          None)
  in
  match cached with
  | Some ids -> ids
  | None ->
    let ids = Datahounds.Shred.path_ids_matching db pattern in
    path_locked (fun () -> Hashtbl.replace path_cache key (version, ids));
    ids

let path_id_condition st alias (absolute_path : Gxml.Path.t) =
  match path_ids_cached st.db absolute_path with
  | [] ->
    st.empty <- true;
    "1 = 0"
  | [ id ] -> Printf.sprintf "%s.path_id = %d" alias id
  | ids ->
    Printf.sprintf "%s.path_id IN (%s)" alias
      (String.concat ", " (List.map string_of_int ids))

(* LIKE metacharacter escaping for the Like_scan ablation: the user's
   keyword is matched as a literal substring, so '%', '_' and the escape
   character itself must not act as wildcards. *)
let like_escape_char = '\\'

let escape_like_word w =
  let buf = Buffer.create (String.length w + 4) in
  String.iter
    (fun c ->
      (match c with
       | '%' | '_' | '\\' -> Buffer.add_char buf like_escape_char
       | _ -> ());
      Buffer.add_char buf c)
    w;
  Buffer.contents buf

(* The probe words for one contains() keyword. The keyword index stores
   Shred-tokenized words, so that strategy must probe with the same
   tokenizer. The LIKE ablation matches raw text: split on whitespace
   only, preserving punctuation (and in particular LIKE metacharacters,
   which are then escaped at probe time). *)
let probe_words st kw =
  match st.strategy with
  | `Keyword_index -> Datahounds.Shred.tokenize kw
  | `Like_scan ->
    let ws =
      String.split_on_char ' '
        (String.map
           (function '\t' | '\n' | '\r' -> ' ' | c -> c)
           (String.lowercase_ascii kw))
    in
    let ws = List.filter (fun w -> w <> "") ws in
    (* dedupe, preserving order *)
    List.rev
      (List.fold_left (fun acc w -> if List.mem w acc then acc else w :: acc) [] ws)

(* one keyword probe tied to [alias]'s subtree region (inclusive of the
   node itself); returns (froms, conds) *)
let keyword_probe st ~alias token =
  match st.strategy with
  | `Keyword_index ->
    let k = fresh st "k" in
    ( [ Printf.sprintf "xml_keyword %s" k ],
      [ Printf.sprintf "%s.doc_id = %s.doc_id" k alias;
        Printf.sprintf "%s.node_id >= %s.node_id" k alias;
        Printf.sprintf "%s.node_id <= %s.last_desc" k alias;
        Printf.sprintf "%s.word = %s" k (sql_string token) ] )
  | `Like_scan ->
    let k = fresh st "k" in
    ( [ Printf.sprintf "xml_node %s" k ],
      [ Printf.sprintf "%s.doc_id = %s.doc_id" k alias;
        Printf.sprintf "%s.node_id >= %s.node_id" k alias;
        Printf.sprintf "%s.node_id <= %s.last_desc" k alias;
        Printf.sprintf "%s.is_seq = 0" k;
        Printf.sprintf "LOWER(%s.sval) LIKE %s ESCAPE %s" k
          (sql_string ("%" ^ escape_like_word token ^ "%"))
          (sql_string (String.make 1 like_escape_char)) ] )

let binding_alias st var =
  match List.assoc_opt var st.bindings with
  | Some a -> a
  | None -> raise (Ast.Invalid_query ("unbound variable $" ^ var))

(* ------------------------------------------------------------------ *)
(* Value expressions                                                   *)
(* ------------------------------------------------------------------ *)

let cmp_sql = function
  | Ast.Eq -> "=" | Ast.Neq -> "<>" | Ast.Lt -> "<" | Ast.Le -> "<="
  | Ast.Gt -> ">" | Ast.Ge -> ">="

let literal_comparison alias op (lit : Ast.literal) =
  match lit with
  | Ast.Lit_number f -> Printf.sprintf "%s.nval %s %s" alias (cmp_sql op) (sql_number f)
  | Ast.Lit_string s -> Printf.sprintf "%s.sval %s %s" alias (cmp_sql op) (sql_string s)

let ast_cmp : Gxml.Path.cmp -> Ast.cmp = function
  | Gxml.Path.Eq -> Ast.Eq
  | Gxml.Path.Neq -> Ast.Neq
  | Gxml.Path.Lt -> Ast.Lt
  | Gxml.Path.Le -> Ast.Le
  | Gxml.Path.Gt -> Ast.Gt
  | Gxml.Path.Ge -> Ast.Ge

(* Emit the structural conditions tying [alias] (a fresh xml_node alias)
   to binding alias [b_alias] through [path] of binding [b_path]. The
   conjuncts are returned rather than registered so they can be used both
   in join position and inside EXISTS. *)
let region_conditions st ~alias ~b_alias ~binding_path ~path ~preds =
  let absolute = binding_path @ path in
  let conds =
    ref
      [ Printf.sprintf "%s.doc_id = %s.doc_id" alias b_alias;
        path_id_condition st alias absolute;
        Printf.sprintf "%s.node_id > %s.node_id" alias b_alias;
        Printf.sprintf "%s.node_id <= %s.last_desc" alias b_alias ]
  in
  let extra_froms = ref [] in
  List.iter
    (fun (pred : Gxml.Path.predicate) ->
      match pred with
      | Gxml.Path.Compare ([ { axis = Gxml.Path.Child;
                               test = Gxml.Path.Attribute a;
                               predicates = [] } ], op, lit) ->
        (* attribute comparison: child attr node of [alias] *)
        let q = fresh st "q" in
        extra_froms := Printf.sprintf "xml_node %s" q :: !extra_froms;
        conds :=
          (let cmp =
             match lit with
             | Gxml.Path.Lit_string s ->
               Printf.sprintf "%s.sval %s %s" q (cmp_sql (ast_cmp op)) (sql_string s)
             | Gxml.Path.Lit_number f ->
               Printf.sprintf "%s.nval %s %s" q (cmp_sql (ast_cmp op)) (sql_number f)
           in
           cmp)
          :: Printf.sprintf "%s.name = %s" q (sql_string a)
          :: Printf.sprintf "%s.kind = 'attr'" q
          :: Printf.sprintf "%s.parent_id = %s.node_id" q alias
          :: Printf.sprintf "%s.doc_id = %s.doc_id" q alias
          :: !conds
      | Gxml.Path.Compare ([], op, lit) ->
        (* self-value comparison: [. > 10] *)
        conds :=
          (match lit with
           | Gxml.Path.Lit_string s ->
             Printf.sprintf "%s.sval %s %s" alias (cmp_sql (ast_cmp op)) (sql_string s)
           | Gxml.Path.Lit_number f ->
             Printf.sprintf "%s.nval %s %s" alias (cmp_sql (ast_cmp op)) (sql_number f))
          :: !conds
      | Gxml.Path.Contains ([], kw) ->
        List.iter
          (fun token ->
            let fs, cs = keyword_probe st ~alias token in
            extra_froms := List.rev_append fs !extra_froms;
            conds := List.rev_append cs !conds)
          (probe_words st kw)
      | Gxml.Path.Exists [ { axis = Gxml.Path.Child;
                             test = Gxml.Path.Attribute a;
                             predicates = [] } ] ->
        let q = fresh st "q" in
        extra_froms := Printf.sprintf "xml_node %s" q :: !extra_froms;
        conds :=
          Printf.sprintf "%s.name = %s" q (sql_string a)
          :: Printf.sprintf "%s.kind = 'attr'" q
          :: Printf.sprintf "%s.parent_id = %s.node_id" q alias
          :: Printf.sprintf "%s.doc_id = %s.doc_id" q alias
          :: !conds
      | Gxml.Path.Position _ ->
        unsupported "positional predicates are not SQL-translatable"
      | Gxml.Path.Compare _ | Gxml.Path.Contains _ | Gxml.Path.Exists _ ->
        unsupported "this predicate form is not SQL-translatable: %s"
          (Gxml.Path.to_string path))
    preds;
  (List.rev !extra_froms, List.rev !conds)

(* Resolve a (var, path) pair to a node alias usable for values.
   In join mode the alias and its conditions go into the main FROM/WHERE;
   in nested mode they are returned for an EXISTS body. Returns
   (alias, extra froms, conditions). For the empty path the binding alias
   itself is returned with no conditions. *)
let resolve_var_path st ~binding_paths var (path : Gxml.Path.t) =
  let b_alias = binding_alias st var in
  if path = [] then (b_alias, [], [])
  else begin
    let structural, preds = split_predicates path in
    let alias = fresh st "v" in
    let binding_path = List.assoc var binding_paths in
    let b_structural, _ = split_predicates binding_path in
    let extra, conds =
      region_conditions st ~alias ~b_alias ~binding_path:b_structural
        ~path:structural ~preds
    in
    (alias, (Printf.sprintf "xml_node %s" alias :: extra), conds)
  end

(* ------------------------------------------------------------------ *)
(* Conditions                                                          *)
(* ------------------------------------------------------------------ *)

(* Join-style translation for positive conjuncts. *)
let rec translate_conjunct st ~binding_paths (c : Ast.condition) =
  match c with
  | Ast.And (a, b) ->
    translate_conjunct st ~binding_paths a;
    translate_conjunct st ~binding_paths b
  | (Ast.Compare _ | Ast.Contains _ | Ast.Order _) when not (has_negation c) ->
    let froms, conds = positive_condition st ~binding_paths c in
    List.iter (add_from st) froms;
    List.iter (add_conj st) conds
  | _ ->
    (* boolean structure: build a single conjunct from EXISTS pieces *)
    add_conj st (boolean_condition st ~binding_paths c)

and has_negation = function
  | Ast.Not _ -> true
  | Ast.Or _ -> false
  | Ast.And (a, b) -> has_negation a || has_negation b
  | Ast.Compare _ | Ast.Contains _ | Ast.Order _ -> false

(* Positive condition as (froms, conjuncts), suitable for either the main
   query or an EXISTS body. *)
and positive_condition st ~binding_paths (c : Ast.condition) =
  match c with
  | Ast.Compare (a, op, b) ->
    (match a, b with
     | Ast.Literal _, Ast.Literal _ ->
       raise (Ast.Invalid_query "comparison between two literals")
     | Ast.Var_path { var; path }, Ast.Literal lit ->
       let alias, froms, conds = resolve_var_path st ~binding_paths var path in
       (froms, conds @ [ literal_comparison alias op lit ])
     | Ast.Literal lit, Ast.Var_path { var; path } ->
       let flipped =
         match op with
         | Ast.Eq -> Ast.Eq | Ast.Neq -> Ast.Neq
         | Ast.Lt -> Ast.Gt | Ast.Le -> Ast.Ge
         | Ast.Gt -> Ast.Lt | Ast.Ge -> Ast.Le
       in
       let alias, froms, conds = resolve_var_path st ~binding_paths var path in
       (froms, conds @ [ literal_comparison alias flipped lit ])
     | Ast.Var_path vp1, Ast.Var_path vp2 ->
       let a1, f1, c1 = resolve_var_path st ~binding_paths vp1.var vp1.path in
       let a2, f2, c2 = resolve_var_path st ~binding_paths vp2.var vp2.path in
       let cmp =
         match op with
         | Ast.Eq | Ast.Neq ->
           Printf.sprintf "%s.sval %s %s.sval" a1 (cmp_sql op) a2
         | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
           Printf.sprintf "%s.nval %s %s.nval" a1 (cmp_sql op) a2
       in
       (f1 @ f2, c1 @ c2 @ [ cmp ]))
  | Ast.Contains { var; path; keyword } ->
    let tokens = probe_words st keyword in
    if tokens = [] then raise (Ast.Invalid_query "empty keyword in contains()");
    let alias, froms, conds = resolve_var_path st ~binding_paths var path in
    let kw_froms = ref [] and kw_conds = ref [] in
    List.iter
      (fun token ->
        let fs, cs = keyword_probe st ~alias token in
        kw_froms := List.rev_append fs !kw_froms;
        kw_conds := List.rev_append cs !kw_conds)
      tokens;
    (froms @ List.rev !kw_froms, conds @ List.rev !kw_conds)
  | Ast.Order { left = lv, lp; op; right = rv, rp } ->
    (* document-order comparison: possible precisely because node_id is
       the preorder rank (order stored as a data value, Section 2.2) *)
    let a1, f1, c1 = resolve_var_path st ~binding_paths lv lp in
    let a2, f2, c2 = resolve_var_path st ~binding_paths rv rp in
    let rel = match op with Ast.Before -> "<" | Ast.After -> ">" in
    ( f1 @ f2,
      c1 @ c2
      @ [ Printf.sprintf "%s.doc_id = %s.doc_id" a1 a2;
          Printf.sprintf "%s.kind = 'elem'" a1;
          Printf.sprintf "%s.kind = 'elem'" a2;
          Printf.sprintf "%s.node_id %s %s.node_id" a1 rel a2 ] )
  | Ast.And _ | Ast.Or _ | Ast.Not _ ->
    assert false (* callers decompose boolean structure first *)

(* Boolean (possibly negated) condition as a single SQL boolean
   expression built from EXISTS subqueries. *)
and boolean_condition st ~binding_paths (c : Ast.condition) : string =
  match c with
  | Ast.And (a, b) ->
    Printf.sprintf "(%s AND %s)"
      (boolean_condition st ~binding_paths a)
      (boolean_condition st ~binding_paths b)
  | Ast.Or (a, b) ->
    Printf.sprintf "(%s OR %s)"
      (boolean_condition st ~binding_paths a)
      (boolean_condition st ~binding_paths b)
  | Ast.Not a -> Printf.sprintf "(NOT %s)" (boolean_condition st ~binding_paths a)
  | Ast.Compare _ | Ast.Contains _ | Ast.Order _ ->
    let froms, conds = positive_condition st ~binding_paths c in
    (match froms with
     | [] ->
       (* no fresh aliases: a plain predicate on a binding alias *)
       (match conds with
        | [] -> "1 = 1"
        | _ -> "(" ^ String.concat " AND " conds ^ ")")
     | _ ->
       Printf.sprintf "EXISTS (SELECT 1 FROM %s WHERE %s)"
         (String.concat ", " froms) (String.concat " AND " conds))

(* ------------------------------------------------------------------ *)
(* Whole query                                                         *)
(* ------------------------------------------------------------------ *)

let default_label i (r : Ast.return_item) =
  match r.label with
  | Some l -> l
  | None ->
    let rec last_name = function
      | [] -> Printf.sprintf "col%d" (i + 1)
      | [ (s : Gxml.Path.step) ] ->
        (match s.test with
         | Gxml.Path.Name n -> n
         | Gxml.Path.Attribute a -> a
         | Gxml.Path.Any_element | Gxml.Path.Text_test ->
           Printf.sprintf "col%d" (i + 1))
      | _ :: rest -> last_name rest
    in
    last_name r.item_path

let translate ?(contains_strategy = `Keyword_index) db (q : Ast.t) =
  let q = Ast.check q in
  let st =
    { db; strategy = contains_strategy; froms = []; conjuncts = []; counter = 0;
      empty = false; bindings = [] }
  in
  (* FOR bindings *)
  let binding_paths =
    List.map (fun (b : Ast.for_binding) -> (b.var, b.path)) q.bindings
  in
  let st =
    List.fold_left
      (fun st (b : Ast.for_binding) ->
        let n = fresh st "n" in
        let d = fresh st "d" in
        add_from st (Printf.sprintf "xml_node %s" n);
        add_from st (Printf.sprintf "xml_doc %s" d);
        add_conj st (Printf.sprintf "%s.collection = %s" d (sql_string b.collection));
        add_conj st (Printf.sprintf "%s.doc_id = %s.doc_id" n d);
        (if b.path = [] then
           add_conj st (Printf.sprintf "%s.parent_id IS NULL" n)
         else begin
           let structural, preds = split_predicates b.path in
           if preds <> [] then
             unsupported "predicates on FOR binding paths are not supported";
           add_conj st (path_id_condition st n structural)
         end);
        { st with bindings = (b.var, n) :: st.bindings })
      st q.bindings
  in
  (* WHERE *)
  (match q.where with
   | Some c -> translate_conjunct st ~binding_paths c
   | None -> ());
  (* RETURN *)
  let selects =
    List.mapi
      (fun i (r : Ast.return_item) ->
        let alias, froms, conds =
          resolve_var_path st ~binding_paths r.item_var r.item_path
        in
        List.iter (add_from st) froms;
        List.iter (add_conj st) conds;
        add_conj st (Printf.sprintf "%s.sval IS NOT NULL" alias);
        Printf.sprintf "%s.sval AS %s" alias (default_label i r))
      q.return_items
  in
  let labels = List.mapi default_label q.return_items in
  let sql =
    Printf.sprintf "SELECT DISTINCT %s FROM %s WHERE %s"
      (String.concat ", " selects)
      (String.concat ", " (List.rev st.froms))
      (String.concat " AND " (List.rev st.conjuncts))
  in
  { sql; labels; statically_empty = st.empty }
