(** The XQ2SQL-transformer: rewriting XomatiQ FLWR queries into SQL over
    the generic relational schema (paper Section 3.2).

    Translation scheme (in the style of the paper's citations — Li & Moon
    region encoding, Shanmugasundaram et al. inlining):

    - each FOR binding [$a IN document("C")/p] becomes a node alias
      constrained to collection [C] and to the [path_id]s matching [p]
      (resolved against [xml_path] at translation time);
    - a path [$a//q] used in WHERE or RETURN becomes a fresh node alias
      tied to the binding by the region predicate
      [v.node_id > a.node_id AND v.node_id <= a.last_desc] and its own
      [path_id] set;
    - [contains(p, "kw", any)] probes the inverted keyword table once per
      token of [kw], restricted to the subtree region;
    - positive top-level conjuncts translate to joins; conditions under
      OR / NOT translate to (correlated) EXISTS subqueries so existential
      path semantics survive negation;
    - attribute predicates on the final step ([q[@t = "v"]]) become a
      child-attribute alias; deeper or positional predicates are rejected
      (the reference evaluator still supports them).

    The result is DISTINCT rows of string values, matching the reference
    evaluator's semantics exactly. *)

exception Unsupported of string
(** Raised for query forms outside the SQL-translatable subset
    (positional predicates, predicates on non-final steps). *)

type translation = {
  sql : string;
  labels : string list;       (** output column labels, one per RETURN item *)
  statically_empty : bool;    (** a path matched no [path_id]: result is empty *)
}

val default_label : int -> Ast.return_item -> string
(** The output column label for the [i]-th RETURN item: its explicit
    label, else the last path step's name, else ["col<i+1>"]. *)

type contains_strategy =
  [ `Keyword_index  (** probe the xml_keyword inverted index (the design) *)
  | `Like_scan      (** substring LIKE over subtree value nodes — the
                        ablation baseline without the keyword table *)
  ]

val translate :
  ?contains_strategy:contains_strategy -> Rdb.Database.t -> Ast.t -> translation
(** @raise Unsupported on untranslatable queries,
    @raise Ast.Invalid_query on invalid ones. *)

val path_cache_stats : unit -> int * int
(** [(hits, misses)] of the path-id resolution cache: path patterns are
    resolved against [xml_path] once per (database, catalog version,
    pattern) and memoized; loading or dropping documents bumps the
    catalog version and self-invalidates the affected entries. *)

val path_cache_clear : unit -> unit
(** Drop all memoized path resolutions and reset {!path_cache_stats}. *)
