(** The gRNA query server: a concurrent TCP front end over one warehouse.

    One thread accepts connections; every admitted client gets a
    dedicated session thread that speaks the {!Protocol} frame grammar
    and submits query execution to the process-global {!Conc.Pool}, so
    connection threads only ever block on sockets while query work runs
    on the worker domains.

    {b Admission control.} At most [max_clients] sessions run at once;
    up to [queue_depth] further connections wait for a slot, and anything
    beyond that is shed immediately with a typed [SERVER_BUSY] error
    frame — load sheds at the door instead of queueing unboundedly.

    {b Degradation.} Each query runs under a {!Rdb.Cancel} token
    carrying the [query_timeout_s] deadline; the executor checks it at
    every operator boundary, so a runaway query returns a typed
    [TIMEOUT] error and the connection stays usable. While a query is in
    flight the session thread keeps watching its socket, so a CANCEL
    frame (or the client vanishing) also fires the token. Clients that
    stop reading are disconnected once a response write exceeds
    [write_timeout_s]; connections idle longer than [idle_timeout_s] are
    reaped.

    {b Drain.} {!request_stop} (installed on SIGTERM/SIGINT by {!run})
    only flips an atomic — safe from a signal handler. The accept loop
    and every session notice it within a quarter second: no new
    connections, waiting connections are turned away with
    [SHUTTING_DOWN], in-flight queries finish and their responses are
    flushed, then {!wait} returns so the caller can close the warehouse
    (flushing the WAL) and exit cleanly. *)

type config = {
  host : string;           (** bind address (name or dotted quad) *)
  port : int;              (** 0 picks an ephemeral port — see {!port} *)
  max_clients : int;       (** concurrent admitted sessions *)
  queue_depth : int;       (** connections allowed to wait for a slot *)
  query_timeout_s : float option;  (** per-query wall-clock budget *)
  idle_timeout_s : float option;   (** reap sessions idle this long *)
  write_timeout_s : float; (** slow-client disconnect threshold *)
  max_frame : int;         (** largest request payload accepted *)
}

val default_config : config
(** 127.0.0.1:7788, 32 clients, queue depth 16, no query or idle
    timeout, 10 s write timeout, {!Protocol.max_frame_default}. *)

type t

val start : config -> Datahounds.Warehouse.t -> t
(** Bind, listen, and spawn the accept thread. The warehouse must stay
    open until {!wait} has returned.
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** The actually-bound port (resolves [port = 0]). *)

val request_stop : t -> unit
(** Begin a graceful drain. Async-signal-safe and idempotent. *)

val stopping : t -> bool

val wait : t -> unit
(** Block until the server has drained: accept thread joined, every
    session thread finished, listening socket closed. Call after
    {!request_stop} (or let a signal handler trigger it). *)

val run : config -> Datahounds.Warehouse.t -> unit
(** [start], install SIGTERM/SIGINT handlers that {!request_stop} (and
    ignore SIGPIPE), print a one-line banner, then {!wait}. *)
