(** The gRNA query server: a concurrent TCP front end over one warehouse.

    {b Connection model.} An event-driven reactor: one thread owns
    every socket through {!Conc.Reactor} (poll(2)-based readiness),
    each connection is an explicit state machine (handshake, ready,
    closing) with an incremental frame decoder on the read side and a
    coalescing write buffer on the out side. An idle connection costs a
    pollfd entry and ~12 KiB of buffers — no thread, no stack — so
    thousands of idle clients leave the active ones' throughput
    untouched. (The earlier thread-per-connection fallback has been
    removed.)

    {b Pipelining.} A client may send up to
    [pipeline_window] request frames without waiting for responses.
    Requests execute strictly in order per connection and responses come
    back in request order, with ROWS/DONE frames of adjacent responses
    coalesced into shared write() syscalls. CANCEL and BYE act
    out-of-band: CANCEL targets the oldest incomplete request (the
    executing one, else the queued head — answered [CANCELED] without
    executing), BYE cancels the in-flight query and drops everything
    queued behind it. See PROTOCOL.md, "Pipelining".

    {b Scheduling.} Query execution keeps the adaptive routing of
    {!Conc.Sched}: cheap queries run inline (on the reactor thread —
    microseconds, bounded by the cost gate), expensive ones are
    dispatched off-thread so CANCEL frames, deadlines and other
    connections stay live mid-query.

    {b Admission control.} At most [max_clients] sessions run at once;
    up to [queue_depth] further connections wait for a slot, and anything
    beyond that is shed immediately with a typed [SERVER_BUSY] error
    frame — load sheds at the door instead of queueing unboundedly.

    {b Degradation.} Each query runs under a {!Rdb.Cancel} token
    carrying the [query_timeout_s] deadline; the executor checks it at
    every operator boundary, so a runaway query returns a typed
    [TIMEOUT] error and the connection stays usable. Clients that stop
    reading are disconnected once a response write stalls longer than
    [write_timeout_s]; connections idle longer than [idle_timeout_s] are
    reaped.

    {b Drain.} {!request_stop} begins a graceful drain. The signal
    handlers installed by {!run} only flip an atomic — safe from a
    handler context — and the reactor notices within a quarter
    second: no new connections, waiting connections are turned away with
    [SHUTTING_DOWN], in-flight queries finish and their responses are
    flushed (queued-but-unexecuted pipelined requests are dropped and the
    connection closed with one [SHUTTING_DOWN]), then {!wait} returns so
    the caller can close the warehouse (flushing the WAL) and exit
    cleanly. *)

type config = {
  host : string;           (** bind address (name or dotted quad) *)
  port : int;              (** 0 picks an ephemeral port — see {!port} *)
  max_clients : int;       (** concurrent admitted sessions *)
  queue_depth : int;       (** connections allowed to wait for a slot *)
  query_timeout_s : float option;  (** per-query wall-clock budget *)
  idle_timeout_s : float option;   (** reap sessions idle this long *)
  write_timeout_s : float; (** slow-client disconnect threshold *)
  max_frame : int;         (** largest request payload accepted *)
  pipeline_window : int;   (** max queued requests per connection *)
  read_only : bool;
  (** reject DML/DDL/transaction control with a typed [READ_ONLY] error
      — the mode a replica serves under *)
  done_seq : (unit -> int) option;
  (** replication position stamped into every DONE trailer as [seq=N]
      (a primary wires its WAL position, a replica its applied
      position); [None] stamps 0 *)
  repl_status : (unit -> string) option;
  (** the [replication] JSON object for METRICS replies, wired by
      whoever owns the {!Replication} endpoint (the server cannot
      depend on that library); [None] reports
      [{"role": "standalone"}] *)
}

val default_config : config
(** 127.0.0.1:7788, 32 clients, queue depth 16, no query or idle
    timeout, 10 s write timeout, {!Protocol.max_frame_default},
    pipeline window 32, writable, no replication wiring. *)

type t

val storage_json : Datahounds.Warehouse.t -> string
(** The [storage] JSON object METRICS replies carry — backend kind,
    data directory, buffer-pool budget in frames. Exposed so the CLI's
    [--metrics-json] snapshot can report the same object. *)

val start : config -> Datahounds.Warehouse.t -> t
(** Bind, listen, and spawn the reactor thread. The
    warehouse must stay open until {!wait} has returned.
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** The actually-bound port (resolves [port = 0]). *)

val request_stop : t -> unit
(** Begin a graceful drain. Thread-safe and idempotent. Not for signal
    handlers — they should set their own flag and call this from a
    normal thread, as {!run} does. *)

val stopping : t -> bool

val wait : t -> unit
(** Block until the server has drained: reactor
    thread joined, listening socket closed. Call after {!request_stop}
    (or let a signal handler trigger it). *)

val run : config -> Datahounds.Warehouse.t -> unit
(** [start], install SIGTERM/SIGINT handlers that begin a drain (and
    ignore SIGPIPE), print a one-line banner, then {!wait}. *)
