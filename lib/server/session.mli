(** Per-connection session state.

    Every admitted connection carries one [Session.t] for its lifetime:
    the query-shaping options a client tunes with SET frames (the remote
    shell's [:format]/[:strategy]/[:jobs] commands) plus per-connection
    accounting surfaced by the METRICS request. Sessions are owned by
    exactly one handler thread, so the mutable fields need no locking. *)

type format = [ `Table | `Xml ]

type t = {
  id : int;
  connected_at : float;
  mutable contains : Xomatiq.Xq2sql.contains_strategy;
      (** how contains() is rewritten for this session's queries *)
  mutable format : format;  (** result rendering for Query responses *)
  mutable jobs : int option;
      (** worker-domain override re-asserted before each of this
          session's queries; [None] leaves the process-global pool
          setting alone. The pool itself is shared — see PROTOCOL.md. *)
  mutable queries : int;    (** requests that produced a result stream *)
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable prep : (string * Xomatiq.Engine.prepared_text) option;
      (** session-pinned preparation of the last Query text: a client
          re-running its hot query skips the plan-cache mutex and
          hashtable (revalidated against the catalog version and the
          plan-shaping toggles on every use) *)
}

val create : id:int -> t
(** Defaults: keyword-index contains strategy, table output, no jobs
    override. *)

val set_option : t -> name:string -> value:string -> (string, string) result
(** Apply one SET request. Options: [strategy keyword|like],
    [format table|xml], [jobs N|default] (empty value reports the
    current setting). [Ok ack] is the acknowledgement payload; [Error]
    the human-readable rejection. *)

val info_json : t -> string
(** The ["session"] object of a METRICS reply. *)
