module P = Protocol

type t = {
  sock : Unix.file_descr;
  timeout_s : float;
  mutable closed : bool;
}

exception Server_error of string * string

let deadline t = Rdb.Obs.now_s () +. t.timeout_s

let send_raw t tag payload =
  P.write_frame ~deadline:(deadline t) t.sock tag payload

let read_raw t = P.read_frame ~deadline:(deadline t) t.sock

let fd t = t.sock

(* Read the next frame, raising on a typed error frame. *)
let read_checked t =
  let tag, payload = read_raw t in
  if tag = P.tag_error then begin
    let code, message = P.parse_error_payload payload in
    raise (Server_error (code, message))
  end;
  (tag, payload)

let expect t wanted what =
  let tag, payload = read_checked t in
  if tag <> wanted then
    raise (P.Proto_error (Printf.sprintf "expected %s, got tag %C" what tag));
  payload

let connect ?(host = "127.0.0.1") ?(timeout_s = 10.) ?(retry_for_s = 0.)
    ?(busy_retry_for_s = 0.) ~port () =
  (* Writing to a connection the server already reaped (idle timeout,
     drain) delivers SIGPIPE, whose default disposition kills the whole
     process before [Unix.write] can return EPIPE. Ignore it so [close]'s
     best-effort BYE and friends fail as catchable exceptions instead. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let give_up = Rdb.Obs.now_s () +. retry_for_s in
  let rec tcp_attempt () =
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect sock (Unix.ADDR_INET (addr, port)) with
    | () -> sock
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENETUNREACH), _, _)
      when Rdb.Obs.now_s () < give_up ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Thread.delay 0.05;
      tcp_attempt ()
    | exception e ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      raise e
  in
  let session_attempt () =
    let sock = tcp_attempt () in
    Unix.set_nonblock sock;
    (try Unix.setsockopt sock Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ());
    let t = { sock; timeout_s; closed = false } in
    try
      send_raw t P.tag_hello P.version;
      ignore (expect t P.tag_welcome "WELCOME");
      t
    with e ->
      t.closed <- true;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      raise e
  in
  (* An admission rejection is transient: the server sheds load when its
     slot and wait queue are full, so a batch script's next attempt a
     moment later usually succeeds. Retry with doubling backoff while
     [busy_retry_for_s] allows; any other error is final. *)
  let busy_give_up = Rdb.Obs.now_s () +. busy_retry_for_s in
  let rec admitted backoff =
    match session_attempt () with
    | t -> t
    | exception Server_error (code, _)
      when code = P.err_busy && Rdb.Obs.now_s () +. backoff < busy_give_up ->
      Thread.delay backoff;
      admitted (Float.min 0.5 (backoff *. 2.))
  in
  admitted 0.05

(* Collect R chunks until the D trailer. *)
let run_streaming t tag text =
  send_raw t tag text;
  let buf = Buffer.create 1024 in
  let rec collect () =
    let tag, payload = read_checked t in
    if tag = P.tag_rows then begin
      Buffer.add_string buf payload;
      collect ()
    end
    else if tag = P.tag_done then P.parse_done_payload payload
    else
      raise
        (P.Proto_error (Printf.sprintf "unexpected tag %C in result stream" tag))
  in
  let summary = collect () in
  (Buffer.contents buf, summary)

let query t text = run_streaming t P.tag_query text
let sql t text = run_streaming t P.tag_sql text

let explain ?(analyze = false) t text =
  let tag = if analyze then P.tag_analyze else P.tag_explain in
  fst (run_streaming t tag text)

let ping t payload =
  send_raw t P.tag_ping payload;
  expect t P.tag_ok "OK"

let metrics t =
  send_raw t P.tag_metrics "";
  expect t P.tag_metrics_reply "METRICS"

let set_option t ~name ~value =
  send_raw t P.tag_set (if value = "" then name else name ^ " " ^ value);
  expect t P.tag_ok "OK"

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try
       send_raw t P.tag_bye "";
       ignore (read_raw t)
     with _ -> ());
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end
