module P = Protocol

type t = {
  sock : Unix.file_descr;
  timeout_s : float;
  mutable closed : bool;
}

exception Server_error of string * string

let deadline t = Rdb.Obs.now_s () +. t.timeout_s

let send_raw t tag payload =
  P.write_frame ~deadline:(deadline t) t.sock tag payload

let read_raw t = P.read_frame ~deadline:(deadline t) t.sock

let fd t = t.sock

(* Read the next frame, raising on a typed error frame. *)
let read_checked t =
  let tag, payload = read_raw t in
  if tag = P.tag_error then begin
    let code, message = P.parse_error_payload payload in
    raise (Server_error (code, message))
  end;
  (tag, payload)

let expect t wanted what =
  let tag, payload = read_checked t in
  if tag <> wanted then
    raise (P.Proto_error (Printf.sprintf "expected %s, got tag %C" what tag));
  payload

(* Full jitter on the busy-retry backoff: with [rand] uniform on [0,1)
   the delay lands anywhere in [base/2, base]. A purely deterministic
   50 -> 100 -> 200 ms ladder re-synchronizes every client that was shed
   by the same busy spike — they all come back in the same instant and
   shed again. *)
let jittered_delay ~rand base = base *. (0.5 +. (0.5 *. rand))

(* Jitter draws come from a private, lazily self-seeded state: OCaml's
   global [Random] default seed is fixed, so an unseeded draw hands
   every client process the identical sequence — synchronized clients
   shed by one busy spike would sleep the same delays and come back
   together, defeating the jitter. A private state also leaves the host
   program's own [Random] stream (tests seed it deterministically)
   untouched. *)
let jitter_state = lazy (Random.State.make_self_init ())

let jitter_draw () = Random.State.float (Lazy.force jitter_state) 1.0

let connect ?(host = "127.0.0.1") ?(timeout_s = 10.) ?(retry_for_s = 0.)
    ?(busy_retry_for_s = 0.) ~port () =
  (* Writing to a connection the server already reaped (idle timeout,
     drain) delivers SIGPIPE, whose default disposition kills the whole
     process before [Unix.write] can return EPIPE. Ignore it so [close]'s
     best-effort BYE and friends fail as catchable exceptions instead. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let give_up = Rdb.Obs.now_s () +. retry_for_s in
  let rec tcp_attempt () =
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect sock (Unix.ADDR_INET (addr, port)) with
    | () -> sock
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENETUNREACH), _, _)
      when Rdb.Obs.now_s () < give_up ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Thread.delay 0.05;
      tcp_attempt ()
    | exception e ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      raise e
  in
  let session_attempt () =
    (* Everything past the socket call runs under the handler: a failure
       in set_nonblock, setsockopt or the handshake itself must close the
       descriptor, not leak it (a busy-retry loop would otherwise bleed
       one fd per rejected attempt). *)
    let sock = tcp_attempt () in
    try
      Unix.set_nonblock sock;
      (try Unix.setsockopt sock Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      let t = { sock; timeout_s; closed = false } in
      send_raw t P.tag_hello P.version;
      ignore (expect t P.tag_welcome "WELCOME");
      t
    with e ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      raise e
  in
  (* An admission rejection is transient: the server sheds load when its
     slot and wait queue are full, so a batch script's next attempt a
     moment later usually succeeds. Retry with doubling, jittered backoff
     while [busy_retry_for_s] allows; any other error is final. *)
  let busy_give_up = Rdb.Obs.now_s () +. busy_retry_for_s in
  let rec admitted backoff =
    match session_attempt () with
    | t -> t
    | exception Server_error (code, _)
      when code = P.err_busy && Rdb.Obs.now_s () +. backoff < busy_give_up ->
      Thread.delay (jittered_delay ~rand:(jitter_draw ()) backoff);
      admitted (Float.min 0.5 (backoff *. 2.))
  in
  admitted 0.05

(* Collect R chunks until the D trailer. *)
let run_streaming t tag text =
  send_raw t tag text;
  let buf = Buffer.create 1024 in
  let rec collect () =
    let tag, payload = read_checked t in
    if tag = P.tag_rows then begin
      Buffer.add_string buf payload;
      collect ()
    end
    else if tag = P.tag_done then P.parse_done_payload payload
    else
      raise
        (P.Proto_error (Printf.sprintf "unexpected tag %C in result stream" tag))
  in
  let summary = collect () in
  (Buffer.contents buf, summary)

let query t text = run_streaming t P.tag_query text
let sql t text = run_streaming t P.tag_sql text

let explain ?(analyze = false) t text =
  let tag = if analyze then P.tag_analyze else P.tag_explain in
  fst (run_streaming t tag text)

let ping t payload =
  send_raw t P.tag_ping payload;
  expect t P.tag_ok "OK"

let metrics t =
  send_raw t P.tag_metrics "";
  expect t P.tag_metrics_reply "METRICS"

let set_option t ~name ~value =
  send_raw t P.tag_set (if value = "" then name else name ^ " " ^ value);
  expect t P.tag_ok "OK"

(* xomatiq/1 pipelining: keep up to [window] requests on the wire and
   read responses (always in request order) as they stream back. Errors
   are per-request — a QUERY_ERROR on the third query must not destroy
   the responses of the fourth — so this path reads raw frames instead
   of [read_checked]. Syscalls are amortized on both directions: a burst
   of requests leaves in one coalesced write, and responses are read a
   socket-buffer at a time through an incremental decoder instead of two
   read() calls per frame. *)
let query_pipelined ?(window = 8) ?(sql = false) t texts =
  let window = max 1 window in
  let tag = if sql then P.tag_sql else P.tag_query in
  let texts = Array.of_list texts in
  let n = Array.length texts in
  let results = Array.make n (Error ("", "")) in
  let sent = ref 0 and recvd = ref 0 in
  let out = P.Outbuf.create () in
  let dec = P.Decoder.create () in
  let rdbuf = Bytes.create 65536 in
  let send_burst () =
    if !sent < n && !sent - !recvd < window then begin
      while !sent < n && !sent - !recvd < window do
        P.Outbuf.add_frame out tag texts.(!sent);
        incr sent
      done;
      let rec push () =
        match P.Outbuf.flush out t.sock with
        | `All -> ()
        | `Blocked ->
          P.wait_writable t.sock ~deadline:(deadline t);
          push ()
      in
      push ()
    end
  in
  let next_frame () =
    let rec go () =
      match P.Decoder.next dec with
      | Some frame -> frame
      | None ->
        (match Unix.read t.sock rdbuf 0 (Bytes.length rdbuf) with
         | 0 -> raise P.Closed
         | nr -> P.Decoder.feed dec rdbuf 0 nr
         | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
           ->
           if not (P.wait_readable t.sock ~deadline:(deadline t)) then
             raise P.Io_timeout
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go ()
    in
    go ()
  in
  let read_one () =
    let buf = Buffer.create 256 in
    let rec collect () =
      let tag, payload = next_frame () in
      if tag = P.tag_rows then begin
        Buffer.add_string buf payload;
        collect ()
      end
      else if tag = P.tag_done then
        Ok (Buffer.contents buf, P.parse_done_payload payload)
      else if tag = P.tag_error then Error (P.parse_error_payload payload)
      else
        raise
          (P.Proto_error
             (Printf.sprintf "unexpected tag %C in pipelined stream" tag))
    in
    results.(!recvd) <- collect ();
    incr recvd
  in
  while !recvd < n do
    send_burst ();
    read_one ()
  done;
  Array.to_list results

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try
       send_raw t P.tag_bye "";
       ignore (read_raw t)
     with _ -> ());
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Replica-aware routing                                               *)
(* ------------------------------------------------------------------ *)

module Routed = struct
  let base_connect = connect
  let base_close = close

  type node = {
    n_host : string;
    n_port : int;
    mutable n_conn : t option;
    (* highest replication position this replica is known to have
       applied — from DONE [seq=] trailers and METRICS probes; the
       read-your-writes gate compares it against [last_write_seq] *)
    mutable n_seq : int;
    (* a connect/IO failure benches the replica briefly instead of
       paying a reconnect attempt on every read *)
    mutable n_down_until : float;
  }

  type r = {
    primary : t;
    replicas : node array;
    timeout_s : float;
    mutable last_write_seq : int;
    mutable rr : int;  (* round-robin cursor over [replicas] *)
    mutable n_replica_reads : int;
    mutable n_primary_reads : int;
  }

  let connect ?(host = "127.0.0.1") ?(timeout_s = 10.) ?retry_for_s
      ?busy_retry_for_s ?(replicas = []) ~port () =
    let primary =
      base_connect ~host ~timeout_s ?retry_for_s ?busy_retry_for_s ~port ()
    in
    let replicas =
      Array.of_list
        (List.map
           (fun (h, p) ->
             { n_host = h; n_port = p; n_conn = None; n_seq = 0;
               n_down_until = 0. })
           replicas)
    in
    { primary; replicas; timeout_s; last_write_seq = 0; rr = 0;
      n_replica_reads = 0; n_primary_reads = 0 }

  let bench node =
    (match node.n_conn with
     | Some c -> (try base_close c with _ -> ())
     | None -> ());
    node.n_conn <- None;
    node.n_down_until <- Rdb.Obs.now_s () +. 1.0

  let node_conn r node =
    match node.n_conn with
    | Some c -> Some c
    | None ->
      if Rdb.Obs.now_s () < node.n_down_until then None
      else (
        match
          base_connect ~host:node.n_host ~timeout_s:r.timeout_s
            ~port:node.n_port ()
        with
        | c ->
          node.n_conn <- Some c;
          Some c
        | exception _ ->
          node.n_down_until <- Rdb.Obs.now_s () +. 1.0;
          None)

  (* Pull an integer field out of a METRICS JSON payload without a JSON
     parser: the server renders ["field": N] with at most spaces between
     the colon and the digits. *)
  let scan_int_field payload field =
    let needle = Printf.sprintf "\"%s\":" field in
    let plen = String.length payload and nlen = String.length needle in
    let rec find i =
      if i + nlen > plen then None
      else if String.sub payload i nlen = needle then begin
        let j = ref (i + nlen) in
        while !j < plen && payload.[!j] = ' ' do incr j done;
        let k = ref !j in
        while
          !k < plen
          && (match payload.[!k] with '0' .. '9' | '-' -> true | _ -> false)
        do
          incr k
        done;
        if !k > !j then int_of_string_opt (String.sub payload !j (!k - !j))
        else None
      end
      else find (i + 1)
    in
    find 0

  (* A replica whose last-known position trails the session's write
     fence may simply not have answered anything lately: one METRICS
     round-trip refreshes its applied position before the gate gives up
     on it. *)
  let refresh_seq node c =
    match metrics c with
    | payload -> (
      match scan_int_field payload "applied" with
      | Some n -> node.n_seq <- max node.n_seq n
      | None -> ())
    | exception _ -> bench node

  (* Errors that indict the statement travel up unchanged — the primary
     would reject it identically, so failing over only duplicates work.
     Everything else indicts the replica (gone, draining, confused) and
     fails over. *)
  let statement_error code =
    code = P.err_query || code = P.err_timeout || code = P.err_canceled

  let try_replica r node tag text =
    match node_conn r node with
    | None -> None
    | Some c ->
      if node.n_seq < r.last_write_seq then refresh_seq node c;
      if node.n_seq < r.last_write_seq then None
      else (
        match run_streaming c tag text with
        | body, s ->
          node.n_seq <- max node.n_seq s.P.sum_seq;
          Some (body, s)
        | exception Server_error (code, msg) when statement_error code ->
          raise (Server_error (code, msg))
        | exception _ ->
          bench node;
          None)

  let read r tag text =
    let n = Array.length r.replicas in
    let rec pick i =
      if i >= n then None
      else
        let node = r.replicas.((r.rr + i) mod n) in
        match try_replica r node tag text with
        | Some res ->
          r.rr <- (r.rr + i + 1) mod n;
          Some res
        | None -> pick (i + 1)
    in
    match if n = 0 then None else pick 0 with
    | Some res ->
      r.n_replica_reads <- r.n_replica_reads + 1;
      res
    | None ->
      r.n_primary_reads <- r.n_primary_reads + 1;
      run_streaming r.primary tag text

  let write r tag text =
    let body, s = run_streaming r.primary tag text in
    if s.P.sum_seq > r.last_write_seq then r.last_write_seq <- s.P.sum_seq;
    (body, s)

  (* FLWR queries never write; SQL is classified by the shared
     read/write rule. *)
  let query r text = read r P.tag_query text

  let sql r text =
    if P.sql_is_read text then read r P.tag_sql text
    else write r P.tag_sql text

  let primary r = r.primary
  let last_write_seq r = r.last_write_seq
  let replica_reads r = r.n_replica_reads
  let primary_reads r = r.n_primary_reads

  let close r =
    Array.iter
      (fun node ->
        match node.n_conn with
        | Some c ->
          node.n_conn <- None;
          (try base_close c with _ -> ())
        | None -> ())
      r.replicas;
    base_close r.primary
end
