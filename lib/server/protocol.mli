(** The gRNA wire protocol: version-tagged, length-prefixed frames over
    TCP. The full specification lives in PROTOCOL.md; this module is the
    single implementation both the server and the client library use, so
    the two sides cannot drift.

    {b Framing.} Every message is one frame:

    {v tag(1 byte)  length(u32, big-endian)  payload(length bytes) v}

    Payloads are UTF-8 text. A frame longer than the receiver's
    [max_frame] is a protocol violation (the connection is closed); a
    connection that ends mid-frame is reported as truncated.

    {b Versioning.} The first frame on a connection is the client's
    {!tag_hello} carrying {!version}; the server answers {!tag_welcome}
    with its own version string or rejects the connection with a typed
    error. *)

val version : string
(** ["xomatiq/1"] — bumped when the frame grammar changes. *)

val max_frame_default : int
(** Default payload-size cap (16 MiB). *)

(** {2 Frame tags} *)

val tag_hello : char     (** ['H'] client handshake; payload = version *)

val tag_query : char     (** ['Q'] run a FLWR query *)

val tag_sql : char       (** ['S'] run a raw SQL statement *)

val tag_explain : char   (** ['E'] EXPLAIN a FLWR query *)

val tag_analyze : char   (** ['A'] EXPLAIN ANALYZE a FLWR query *)

val tag_ping : char      (** ['P'] liveness probe; payload echoed back *)

val tag_metrics : char   (** ['M'] request a metrics snapshot *)

val tag_cancel : char    (** ['C'] cancel the in-flight query *)

val tag_set : char       (** ['T'] set a session option: ["name value"] *)

val tag_bye : char       (** ['B'] orderly goodbye *)

val tag_welcome : char   (** ['W'] handshake accepted; payload = version info *)

val tag_rows : char      (** ['R'] one chunk of rendered result text *)

val tag_done : char      (** ['D'] summary trailer closing a result stream *)

val tag_ok : char        (** ['O'] acknowledgement (pong, set-ack, bye-ack) *)

val tag_metrics_reply : char  (** ['m'] metrics snapshot (JSON) *)

val tag_error : char     (** ['X'] typed error: ["CODE message"] *)

(** {2 Typed error codes} *)

val err_busy : string       (** admission control shed the connection *)

val err_timeout : string    (** the query exceeded its wall-clock budget *)

val err_canceled : string   (** the client canceled the query *)

val err_query : string      (** the query itself failed (parse/run error) *)

val err_proto : string      (** framing or handshake violation *)

val err_shutdown : string   (** server draining; no new requests *)

val err_idle : string       (** idle connection reaped *)

val err_internal : string   (** unexpected server-side failure *)

val err_read_only : string
(** a write (DML/DDL/transaction control) was sent to a read-only
    server — a replica; the client should route it to the primary *)

val error_payload : code:string -> string -> string
val parse_error_payload : string -> string * string
(** [code ^ " " ^ message] and its inverse (missing message tolerated). *)

(** {2 Result trailer} *)

type summary = {
  sum_rows : int;       (** distinct result rows *)
  sum_exec_ms : float;  (** server-side execution wall time *)
  sum_cached : bool;    (** served from the translated-plan cache *)
  sum_seq : int;
  (** replication position: on a primary, its WAL record position after
      the statement; on a replica, the position applied through. A
      routed client tracks the highest [seq] its writes returned and
      reads from a replica only once it has caught up past it
      (read-your-writes). 0 when the server has no WAL. *)
}

val done_payload : summary -> string
val parse_done_payload : string -> summary
(** [rows=N exec_ms=F cache_hit=0|1 seq=N]; unknown keys are ignored so
    the trailer can grow compatibly. *)

val split_first_space : string -> string * string
(** [(before, after)] of the first space; [(s, "")] without one. Shared
    by the [xomatiq-repl/1] payload grammar (see {!Replication}). *)

(** {2 Requests (server-side view)} *)

type request =
  | Hello of string
  | Query of string
  | Sql of string
  | Explain of string
  | Analyze of string
  | Ping of string
  | Metrics
  | Cancel
  | Set of string * string
  | Bye

val request_of_frame : char * string -> (request, string) result
(** [Error] describes the unknown tag or malformed payload. *)

val stmt_is_read : Rdb.Sql_ast.stmt -> bool
val sql_is_read : string -> bool
(** Whether the statement only reads: SELECT, query expressions and
    EXPLAIN (which plans without executing; EXPLAIN ANALYZE classifies
    as what it wraps). The read-only server gate and the routed
    client's replica routing share this classification; unparseable
    text counts as a write so it reaches the primary's parser. *)

(** {2 Frame I/O}

    All I/O works on non-blocking sockets and takes an absolute
    {!Rdb.Obs.now_s} [deadline] ([infinity] = wait forever). *)

exception Closed
(** Peer closed the connection at a frame boundary. *)

exception Proto_error of string
(** Framing violation: oversized frame, truncated frame, bad handshake. *)

exception Io_timeout
(** The deadline passed before the frame could be fully read/written —
    on the write side this is the slow-client signal. *)

val wait_readable : Unix.file_descr -> deadline:float -> bool
(** True when the fd has readable data (or EOF) before [deadline]. *)

val wait_writable : Unix.file_descr -> deadline:float -> unit
(** Returns once the fd may accept bytes (or spuriously on EINTR —
    callers loop on their own EAGAIN anyway).
    @raise Io_timeout once [deadline] has passed. *)

val read_frame :
  ?deadline:float -> ?max_frame:int -> Unix.file_descr -> char * string

val write_frame :
  ?deadline:float -> Unix.file_descr -> char -> string -> unit
(** Writes the whole frame or raises; frames are never partially
    visible to the application on either side. *)

val frame_bytes : string -> int
(** Wire size of a frame with this payload (header included) — what the
    byte in/out counters account. *)

(** {2 Incremental decoding}

    The event-driven server feeds each read()'s bytes into a
    per-connection decoder; frames assemble across arbitrary split
    points and the underlying buffer is reused for the connection's
    lifetime. *)

module Decoder : sig
  type t

  val create : ?max_frame:int -> unit -> t

  val feed : t -> Bytes.t -> int -> int -> unit
  (** [feed t src off len] appends [len] bytes of [src] at [off]. *)

  val feed_string : t -> string -> unit

  val next : t -> (char * string) option
  (** The next complete frame, or [None] until more bytes arrive.
      @raise Proto_error on an oversized frame length — detected from
      the header alone, before the payload is buffered. *)

  val buffered : t -> int
  (** Bytes fed but not yet consumed as frames. *)

  val frame_ready : t -> bool
  (** Whether a complete frame is buffered — i.e. the next [next] call
      returns [Some] (or raises on an oversized header). [false] means
      the buffered bytes are a partial frame that only more input can
      complete. *)
end

(** {2 Coalesced writing}

    Outbound frames accumulate in a per-connection buffer; one [flush]
    moves everything the socket will take in a single round of write()
    syscalls — a pipelined burst of responses leaves as one write. *)

module Outbuf : sig
  type t

  val create : unit -> t
  val add_frame : t -> char -> string -> unit
  val length : t -> int
  val is_empty : t -> bool

  val flush : t -> Unix.file_descr -> [ `All | `Blocked ]
  (** Write as much as possible without blocking. [`Blocked] = bytes
      remain, poll for write readiness.
      @raise Closed on EPIPE / ECONNRESET. *)
end
