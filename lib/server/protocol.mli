(** The gRNA wire protocol: version-tagged, length-prefixed frames over
    TCP. The full specification lives in PROTOCOL.md; this module is the
    single implementation both the server and the client library use, so
    the two sides cannot drift.

    {b Framing.} Every message is one frame:

    {v tag(1 byte)  length(u32, big-endian)  payload(length bytes) v}

    Payloads are UTF-8 text. A frame longer than the receiver's
    [max_frame] is a protocol violation (the connection is closed); a
    connection that ends mid-frame is reported as truncated.

    {b Versioning.} The first frame on a connection is the client's
    {!tag_hello} carrying {!version}; the server answers {!tag_welcome}
    with its own version string or rejects the connection with a typed
    error. *)

val version : string
(** ["xomatiq/1"] — bumped when the frame grammar changes. *)

val max_frame_default : int
(** Default payload-size cap (16 MiB). *)

(** {2 Frame tags} *)

val tag_hello : char     (** ['H'] client handshake; payload = version *)

val tag_query : char     (** ['Q'] run a FLWR query *)

val tag_sql : char       (** ['S'] run a raw SQL statement *)

val tag_explain : char   (** ['E'] EXPLAIN a FLWR query *)

val tag_analyze : char   (** ['A'] EXPLAIN ANALYZE a FLWR query *)

val tag_ping : char      (** ['P'] liveness probe; payload echoed back *)

val tag_metrics : char   (** ['M'] request a metrics snapshot *)

val tag_cancel : char    (** ['C'] cancel the in-flight query *)

val tag_set : char       (** ['T'] set a session option: ["name value"] *)

val tag_bye : char       (** ['B'] orderly goodbye *)

val tag_welcome : char   (** ['W'] handshake accepted; payload = version info *)

val tag_rows : char      (** ['R'] one chunk of rendered result text *)

val tag_done : char      (** ['D'] summary trailer closing a result stream *)

val tag_ok : char        (** ['O'] acknowledgement (pong, set-ack, bye-ack) *)

val tag_metrics_reply : char  (** ['m'] metrics snapshot (JSON) *)

val tag_error : char     (** ['X'] typed error: ["CODE message"] *)

(** {2 Typed error codes} *)

val err_busy : string       (** admission control shed the connection *)

val err_timeout : string    (** the query exceeded its wall-clock budget *)

val err_canceled : string   (** the client canceled the query *)

val err_query : string      (** the query itself failed (parse/run error) *)

val err_proto : string      (** framing or handshake violation *)

val err_shutdown : string   (** server draining; no new requests *)

val err_idle : string       (** idle connection reaped *)

val err_internal : string   (** unexpected server-side failure *)

val error_payload : code:string -> string -> string
val parse_error_payload : string -> string * string
(** [code ^ " " ^ message] and its inverse (missing message tolerated). *)

(** {2 Result trailer} *)

type summary = {
  sum_rows : int;       (** distinct result rows *)
  sum_exec_ms : float;  (** server-side execution wall time *)
  sum_cached : bool;    (** served from the translated-plan cache *)
}

val done_payload : summary -> string
val parse_done_payload : string -> summary
(** [rows=N exec_ms=F cache_hit=0|1]; unknown keys are ignored so the
    trailer can grow compatibly. *)

(** {2 Requests (server-side view)} *)

type request =
  | Hello of string
  | Query of string
  | Sql of string
  | Explain of string
  | Analyze of string
  | Ping of string
  | Metrics
  | Cancel
  | Set of string * string
  | Bye

val request_of_frame : char * string -> (request, string) result
(** [Error] describes the unknown tag or malformed payload. *)

(** {2 Frame I/O}

    All I/O works on non-blocking sockets and takes an absolute
    {!Rdb.Obs.now_s} [deadline] ([infinity] = wait forever). *)

exception Closed
(** Peer closed the connection at a frame boundary. *)

exception Proto_error of string
(** Framing violation: oversized frame, truncated frame, bad handshake. *)

exception Io_timeout
(** The deadline passed before the frame could be fully read/written —
    on the write side this is the slow-client signal. *)

val wait_readable : Unix.file_descr -> deadline:float -> bool
(** True when the fd has readable data (or EOF) before [deadline]. *)

val read_frame :
  ?deadline:float -> ?max_frame:int -> Unix.file_descr -> char * string

val write_frame :
  ?deadline:float -> Unix.file_descr -> char -> string -> unit
(** Writes the whole frame or raises; frames are never partially
    visible to the application on either side. *)

val frame_bytes : string -> int
(** Wire size of a frame with this payload (header included) — what the
    byte in/out counters account. *)
