(** Client library for the gRNA query server.

    One [t] is one connection with its own server-side session; it is
    not thread-safe — give each client thread its own connection (the
    differential tests and the E8 bench do exactly that).

    Every call is synchronous: it sends one request frame and reads
    frames until the matching terminal frame arrives. A typed error
    frame raises {!Server_error} with the wire code (["TIMEOUT"],
    ["SERVER_BUSY"], ["QUERY_ERROR"], ...) — the connection remains
    usable afterwards unless the code was a connection-level one. *)

type t

exception Server_error of string * string
(** [(code, message)] from an error frame — see [Protocol.err_*]. *)

val connect :
  ?host:string -> ?timeout_s:float -> ?retry_for_s:float ->
  ?busy_retry_for_s:float -> port:int -> unit -> t
(** TCP connect + HELLO/WELCOME handshake. [timeout_s] (default 10)
    bounds each I/O step; [retry_for_s] (default 0) keeps retrying a
    refused connection for that long — handy while a freshly spawned
    server is still binding. [busy_retry_for_s] (default 0) additionally
    retries a [SERVER_BUSY] admission rejection with doubling backoff
    (50 ms up to 500 ms) for that long — a shed connection is transient,
    and batch scripts should not hard-fail on it.
    @raise Server_error when the server rejects the handshake (e.g.
    [SERVER_BUSY] after the retry budget, or a version mismatch).
    @raise Unix.Unix_error when the server cannot be reached.

    Also sets SIGPIPE to ignore (where supported): a write to a
    connection the server already reaped must surface as a catchable
    [EPIPE], not kill the process. *)

val query : t -> string -> string * Protocol.summary
(** Run a FLWR query; returns the rendered result body (all row chunks
    concatenated) and the summary trailer. *)

val sql : t -> string -> string * Protocol.summary
(** Run one SQL statement. *)

val explain : ?analyze:bool -> t -> string -> string
(** EXPLAIN (or EXPLAIN ANALYZE) a FLWR query. *)

val ping : t -> string -> string
(** Echo probe; returns the server's payload. *)

val metrics : t -> string
(** The server's metrics snapshot (JSON). *)

val set_option : t -> name:string -> value:string -> string
(** Set a session option ([strategy] / [format] / [jobs]); returns the
    acknowledgement. *)

val query_pipelined :
  ?window:int -> ?sql:bool -> t -> string list ->
  (string * Protocol.summary, string * string) result list
(** Run many queries with xomatiq/1 pipelining: up to [window] (default
    8) requests are on the wire before the first response is consumed,
    so a batch of cheap queries pays one round-trip per window instead
    of one per query. Results come back in request order; each element
    is [Ok (body, summary)] or [Error (code, message)] — a per-query
    error does not disturb its neighbours. [sql] sends SQL frames
    instead of FLWR ones. Keep [window] at or below the server's
    [pipeline_window] (default 32): beyond it the server simply stops
    reading until it catches up, which stalls (but does not break) the
    batch. *)

val jittered_delay : rand:float -> float -> float
(** [jittered_delay ~rand base] — the busy-retry sleep for a backoff
    step of [base] seconds: uniform on [base/2, base] for [rand] uniform
    on [0,1). Exposed so tests can pin the distribution. *)

val close : t -> unit
(** Orderly BYE (best effort) + socket close. Idempotent. *)

(** Replica-aware routing: one primary plus any number of read
    replicas. Writes (DML/DDL/transaction control, classified by
    {!Protocol.sql_is_read}) always go to the primary; reads
    round-robin across replicas that have caught up past the session's
    last write (read-your-writes: every write's DONE trailer carries
    the primary's new replication position, and a replica is eligible
    only once its applied position — from its own DONE trailers, or a
    METRICS probe when the cached value trails — has reached it),
    falling back to the primary when no replica qualifies. A replica
    that fails mid-read is benched for a second and the read retried
    elsewhere; errors that indict the statement itself ([QUERY_ERROR],
    [TIMEOUT], [CANCELED]) propagate unchanged. Not thread-safe, like
    [t]. *)
module Routed : sig
  type r

  val connect :
    ?host:string -> ?timeout_s:float -> ?retry_for_s:float ->
    ?busy_retry_for_s:float -> ?replicas:(string * int) list ->
    port:int -> unit -> r
  (** Connect to the primary at [host:port] eagerly (retry options as in
      {!val:connect}); replicas connect lazily on first eligible read. *)

  val query : r -> string -> string * Protocol.summary
  val sql : r -> string -> string * Protocol.summary

  val primary : r -> t
  (** The primary connection, for requests that must not be routed
      (EXPLAIN with session state, SET, METRICS). *)

  val last_write_seq : r -> int
  (** The session's read-your-writes fence: the highest replication
      position a write has returned. *)

  val replica_reads : r -> int
  val primary_reads : r -> int
  (** How many reads each side served (tests pin routing behaviour). *)

  val close : r -> unit
end

(** {2 Raw frame access}

    For tests that need to step outside the request/response discipline
    (mid-query CANCEL, malformed frames, half-close). *)

val send_raw : t -> char -> string -> unit
val read_raw : t -> char * string
val fd : t -> Unix.file_descr
