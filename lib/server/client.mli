(** Client library for the gRNA query server.

    One [t] is one connection with its own server-side session; it is
    not thread-safe — give each client thread its own connection (the
    differential tests and the E8 bench do exactly that).

    Every call is synchronous: it sends one request frame and reads
    frames until the matching terminal frame arrives. A typed error
    frame raises {!Server_error} with the wire code (["TIMEOUT"],
    ["SERVER_BUSY"], ["QUERY_ERROR"], ...) — the connection remains
    usable afterwards unless the code was a connection-level one. *)

type t

exception Server_error of string * string
(** [(code, message)] from an error frame — see [Protocol.err_*]. *)

val connect :
  ?host:string -> ?timeout_s:float -> ?retry_for_s:float ->
  ?busy_retry_for_s:float -> port:int -> unit -> t
(** TCP connect + HELLO/WELCOME handshake. [timeout_s] (default 10)
    bounds each I/O step; [retry_for_s] (default 0) keeps retrying a
    refused connection for that long — handy while a freshly spawned
    server is still binding. [busy_retry_for_s] (default 0) additionally
    retries a [SERVER_BUSY] admission rejection with doubling backoff
    (50 ms up to 500 ms) for that long — a shed connection is transient,
    and batch scripts should not hard-fail on it.
    @raise Server_error when the server rejects the handshake (e.g.
    [SERVER_BUSY] after the retry budget, or a version mismatch).
    @raise Unix.Unix_error when the server cannot be reached.

    Also sets SIGPIPE to ignore (where supported): a write to a
    connection the server already reaped must surface as a catchable
    [EPIPE], not kill the process. *)

val query : t -> string -> string * Protocol.summary
(** Run a FLWR query; returns the rendered result body (all row chunks
    concatenated) and the summary trailer. *)

val sql : t -> string -> string * Protocol.summary
(** Run one SQL statement. *)

val explain : ?analyze:bool -> t -> string -> string
(** EXPLAIN (or EXPLAIN ANALYZE) a FLWR query. *)

val ping : t -> string -> string
(** Echo probe; returns the server's payload. *)

val metrics : t -> string
(** The server's metrics snapshot (JSON). *)

val set_option : t -> name:string -> value:string -> string
(** Set a session option ([strategy] / [format] / [jobs]); returns the
    acknowledgement. *)

val close : t -> unit
(** Orderly BYE (best effort) + socket close. Idempotent. *)

(** {2 Raw frame access}

    For tests that need to step outside the request/response discipline
    (mid-query CANCEL, malformed frames, half-close). *)

val send_raw : t -> char -> string -> unit
val read_raw : t -> char * string
val fd : t -> Unix.file_descr
