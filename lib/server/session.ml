type format = [ `Table | `Xml ]

type t = {
  id : int;
  connected_at : float;
  mutable contains : Xomatiq.Xq2sql.contains_strategy;
  mutable format : format;
  mutable jobs : int option;
  mutable queries : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable prep : (string * Xomatiq.Engine.prepared_text) option;
}

let create ~id =
  { id; connected_at = Rdb.Obs.now_s (); contains = `Keyword_index;
    format = `Table; jobs = None; queries = 0; bytes_in = 0; bytes_out = 0;
    prep = None }

let strategy_name = function
  | `Keyword_index -> "keyword"
  | `Like_scan -> "like"

let set_option t ~name ~value =
  match String.lowercase_ascii name with
  | "strategy" ->
    (match String.lowercase_ascii value with
     | "keyword" | "kw" | "keyword_index" ->
       t.contains <- `Keyword_index;
       Ok "strategy keyword"
     | "like" | "like_scan" ->
       t.contains <- `Like_scan;
       Ok "strategy like"
     | "" -> Ok ("strategy " ^ strategy_name t.contains)
     | other ->
       Error (Printf.sprintf "unknown strategy %S (keyword | like)" other))
  | "format" ->
    (match String.lowercase_ascii value with
     | "table" -> t.format <- `Table; Ok "format table"
     | "xml" -> t.format <- `Xml; Ok "format xml"
     | "" -> Ok ("format " ^ match t.format with `Table -> "table" | `Xml -> "xml")
     | other -> Error (Printf.sprintf "unknown format %S (table | xml)" other))
  | "jobs" ->
    (match String.lowercase_ascii value with
     | "" ->
       (match t.jobs with
        | Some n -> Ok (Printf.sprintf "jobs %d (session override)" n)
        | None ->
          Ok (Printf.sprintf "jobs %d (server default)" (Conc.Pool.jobs ())))
     | "default" ->
       t.jobs <- None;
       Ok (Printf.sprintf "jobs %d (server default)" (Conc.Pool.jobs ()))
     | v ->
       (match int_of_string_opt v with
        | Some n when n >= 1 && n <= 64 ->
          t.jobs <- Some n;
          Ok
            (Printf.sprintf
               "jobs %d (applied to this session's queries; the domain \
                pool is shared process-wide)"
               n)
        | _ -> Error "jobs must be an integer in [1, 64], or 'default'"))
  | other ->
    Error
      (Printf.sprintf "unknown option %S (strategy | format | jobs)" other)

let info_json t =
  Printf.sprintf
    "{\"id\": %d, \"connected_s\": %.3f, \"strategy\": \"%s\", \"format\": \
     \"%s\", \"jobs_override\": %s, \"queries\": %d, \"bytes_in\": %d, \
     \"bytes_out\": %d}"
    t.id
    (Rdb.Obs.now_s () -. t.connected_at)
    (strategy_name t.contains)
    (match t.format with `Table -> "table" | `Xml -> "xml")
    (match t.jobs with Some n -> string_of_int n | None -> "null")
    t.queries t.bytes_in t.bytes_out
