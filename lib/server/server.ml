module P = Protocol
module Obs = Rdb.Obs

type config = {
  host : string;
  port : int;
  max_clients : int;
  queue_depth : int;
  query_timeout_s : float option;
  idle_timeout_s : float option;
  write_timeout_s : float;
  max_frame : int;
}

let default_config =
  { host = "127.0.0.1"; port = 7788; max_clients = 32; queue_depth = 16;
    query_timeout_s = None; idle_timeout_s = None; write_timeout_s = 10.;
    max_frame = P.max_frame_default }

(* ------------------------------------------------------------------ *)
(* Server-wide metrics                                                 *)
(* ------------------------------------------------------------------ *)

let m_accepted = Obs.Counter.create ()
let m_shed = Obs.Counter.create ()
let m_queries = Obs.Counter.create ()
let m_timeouts = Obs.Counter.create ()
let m_canceled = Obs.Counter.create ()
let m_query_errors = Obs.Counter.create ()
let m_reaped_idle = Obs.Counter.create ()
let m_slow_client_drops = Obs.Counter.create ()
let m_proto_errors = Obs.Counter.create ()
let m_bytes_in = Obs.Counter.create ()
let m_bytes_out = Obs.Counter.create ()
let m_sched_inline = Obs.Counter.create ()
let m_sched_dispatched = Obs.Counter.create ()
let m_latency = Obs.Histogram.create ()

let () =
  Obs.register_counter "server.accepted" m_accepted;
  Obs.register_counter "server.shed" m_shed;
  Obs.register_counter "server.queries" m_queries;
  Obs.register_counter "server.timeouts" m_timeouts;
  Obs.register_counter "server.canceled" m_canceled;
  Obs.register_counter "server.query_errors" m_query_errors;
  Obs.register_counter "server.reaped_idle" m_reaped_idle;
  Obs.register_counter "server.slow_client_drops" m_slow_client_drops;
  Obs.register_counter "server.proto_errors" m_proto_errors;
  Obs.register_counter "server.bytes_in" m_bytes_in;
  Obs.register_counter "server.bytes_out" m_bytes_out;
  Obs.register_counter "server.sched_inline" m_sched_inline;
  Obs.register_counter "server.sched_dispatched" m_sched_dispatched;
  Obs.register_histogram "server.query_latency" m_latency

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type t = {
  cfg : config;
  wh : Datahounds.Warehouse.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  stop : bool Atomic.t;
  lock : Mutex.t;
  slot_cond : Condition.t;
  mutable active : int;
  mutable waiting : int;
  mutable next_id : int;
  mutable handlers : Thread.t list;
  mutable accept_thread : Thread.t option;
}

let port t = t.bound_port

(* Begin a drain: raise the flag, then wake every session parked in
   [acquire_slot]'s Condition.wait — without the broadcast they would
   sleep through the whole drain until some unrelated [release_slot]
   happened to signal. Signal handlers must NOT call this (the handler
   can run on a thread that already holds [t.lock]); they set the atomic
   flag only and lean on [wait]'s own broadcast, which follows within one
   accept-loop slice. *)
let request_stop t =
  Atomic.set t.stop true;
  Mutex.lock t.lock;
  Condition.broadcast t.slot_cond;
  Mutex.unlock t.lock

let stopping t = Atomic.get t.stop

(* Admission control: a slot per admitted session, a bounded wait line
   behind it. Waiters re-check the stop flag after every wakeup so a
   drain can turn the whole line away. *)
let acquire_slot t =
  Mutex.lock t.lock;
  let rec try_slot () =
    if Atomic.get t.stop then `Shutdown
    else if t.active < t.cfg.max_clients then begin
      t.active <- t.active + 1;
      `Admitted
    end
    else if t.waiting >= t.cfg.queue_depth then `Busy
    else begin
      t.waiting <- t.waiting + 1;
      Condition.wait t.slot_cond t.lock;
      t.waiting <- t.waiting - 1;
      try_slot ()
    end
  in
  let outcome = try_slot () in
  Mutex.unlock t.lock;
  outcome

let release_slot t =
  Mutex.lock t.lock;
  t.active <- t.active - 1;
  Condition.signal t.slot_cond;
  Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* Query execution                                                     *)
(* ------------------------------------------------------------------ *)

let values_to_table columns rows =
  Xomatiq.Tagger.to_table ~labels:columns
    (List.map
       (fun r -> Array.to_list (Array.map Rdb.Value.to_string r))
       rows)

(* Render one request into (body, summary ingredients). Runs on a pool
   domain; everything it raises is re-raised by await in the session
   thread. *)
let render_request t sess token kind text =
  match kind with
  | `Query ->
    let result =
      Xomatiq.Engine.run_text ~contains_strategy:sess.Session.contains
        ~cancel:token t.wh text
    in
    let body =
      match sess.Session.format with
      | `Table -> Xomatiq.Engine.result_to_table result
      | `Xml ->
        Gxml.Printer.document_to_string ~pretty:true
          (Xomatiq.Engine.result_to_xml result)
    in
    (body, List.length result.Xomatiq.Engine.rows,
     result.Xomatiq.Engine.cached)
  | `Sql -> begin
    let db = Datahounds.Warehouse.db t.wh in
    match Rdb.Sql_parser.parse text with
    | Rdb.Sql_ast.Select_stmt sel ->
      let planned = Rdb.Database.plan_select db sel in
      let columns, rows = Rdb.Database.run_planned db ~cancel:token planned in
      (values_to_table columns rows, List.length rows, false)
    | Rdb.Sql_ast.Query_stmt q ->
      let planned = Rdb.Planner.plan_query (Rdb.Database.catalog db) q in
      let columns, rows = Rdb.Database.run_planned db ~cancel:token planned in
      (values_to_table columns rows, List.length rows, false)
    | _ -> begin
      (* DML / DDL / EXPLAIN run on the warehouse's default session;
         statement-level locking inside the database serializes writers. *)
      match Rdb.Database.exec_exn db text with
      | Rdb.Database.Rows { columns; rows } ->
        (values_to_table columns rows, List.length rows, false)
      | Rdb.Database.Affected n ->
        (Printf.sprintf "%d row(s) affected\n" n, n, false)
      | Rdb.Database.Done msg -> (msg ^ "\n", 0, false)
      | Rdb.Database.Explained s -> (s ^ "\n", 0, false)
      | exception Failure m -> raise (Xomatiq.Engine.Query_error m)
    end
    | exception (Rdb.Sql_parser.Parse_error _ as e) ->
      raise (Xomatiq.Engine.Query_error (Rdb.Sql_parser.error_to_string e))
  end
  | (`Explain | `Analyze) as k -> begin
    match Xomatiq.Parser.parse text with
    | ast ->
      let explain =
        if k = `Analyze then Xomatiq.Engine.explain_analyze
        else Xomatiq.Engine.explain
      in
      (explain t.wh ast ^ "\n", 0, false)
    | exception (Xomatiq.Parser.Parse_error _ as e) ->
      raise (Xomatiq.Engine.Query_error (Xomatiq.Parser.error_to_string e))
  end

exception Session_over

(* Chunked result streaming: 64 KiB R frames, then the D trailer. A
   write that cannot finish within write_timeout_s raises Io_timeout —
   the slow-client signal handled by the session loop. *)
let chunk_size = 64 * 1024

let send t sess fd tag payload =
  let deadline = Obs.now_s () +. t.cfg.write_timeout_s in
  P.write_frame ~deadline fd tag payload;
  let n = P.frame_bytes payload in
  sess.Session.bytes_out <- sess.Session.bytes_out + n;
  Obs.Counter.incr ~by:n m_bytes_out

let stream_result t sess fd body summary =
  let len = String.length body in
  let rec chunks off =
    if off < len then begin
      let n = min chunk_size (len - off) in
      send t sess fd P.tag_rows (String.sub body off n);
      chunks (off + n)
    end
  in
  chunks 0;
  send t sess fd P.tag_done (P.done_payload summary)

(* Plan one request into [(job, dispatch)]: [job] produces the response
   body on whichever thread runs it, [dispatch] says whether it goes to
   the pool (so the session thread keeps watching its socket) or runs
   inline on the session thread.

   In static mode ([XOMATIQ_SCHED=static]) everything is dispatched —
   the pre-adaptive behaviour. In adaptive mode the request is planned
   *here*, on the session thread (a plan-cache lookup on the hot path,
   or the session's own memoized preparation), and the root cost
   estimate picks the lane: a cheap query never pays the pool round-trip
   and its ~1 ms+ future-poll latency, an expensive one keeps the
   dispatched path so CANCEL frames and deadlines stay live mid-query.
   Planning errors raise [Query_error] from here, exactly as they would
   from inside the dispatched task. *)
let plan_work t sess token kind text =
  let finish ~t0 body rows cached =
    let exec_s = Obs.now_s () -. t0 in
    ( body,
      { P.sum_rows = rows; sum_exec_ms = exec_s *. 1000.;
        sum_cached = cached },
      exec_s )
  in
  let render_job kind =
    fun () ->
      let t0 = Obs.now_s () in
      let body, rows, cached = render_request t sess token kind text in
      finish ~t0 body rows cached
  in
  if Conc.Sched.mode () = Conc.Sched.Static then (render_job kind, true)
  else
    match kind with
    | `Query ->
      let strategy = sess.Session.contains in
      let pt, cached =
        match sess.Session.prep with
        | Some (txt, pt)
          when txt = text
               && Xomatiq.Engine.prepared_valid ~contains_strategy:strategy
                    t.wh pt ->
          (pt, true)
        | _ ->
          let pt =
            Xomatiq.Engine.prepare_text ~contains_strategy:strategy t.wh text
          in
          sess.Session.prep <- Some (text, pt);
          (pt, Xomatiq.Engine.prepared_hit pt)
      in
      let decision =
        Conc.Sched.plan_decision ~est_cost:(Xomatiq.Engine.prepared_cost pt)
      in
      let job () =
        let t0 = Obs.now_s () in
        let result =
          Xomatiq.Engine.run_prepared_text ~cancel:token ~cached pt
        in
        let body =
          match sess.Session.format with
          | `Table -> Xomatiq.Engine.result_to_table result
          | `Xml ->
            Gxml.Printer.document_to_string ~pretty:true
              (Xomatiq.Engine.result_to_xml result)
        in
        finish ~t0 body
          (List.length result.Xomatiq.Engine.rows)
          result.Xomatiq.Engine.cached
      in
      (job, decision.Conc.Sched.par)
    | `Sql -> begin
      let db = Datahounds.Warehouse.db t.wh in
      let planned_job planned =
        let decision =
          Conc.Sched.plan_decision
            ~est_cost:planned.Rdb.Planner.est_cost
        in
        let job () =
          let t0 = Obs.now_s () in
          let columns, rows =
            Rdb.Database.run_planned db ~cancel:token planned
          in
          finish ~t0 (values_to_table columns rows) (List.length rows) false
        in
        (job, decision.Conc.Sched.par)
      in
      match Rdb.Sql_parser.parse text with
      | Rdb.Sql_ast.Select_stmt sel ->
        planned_job (Rdb.Database.plan_select db sel)
      | Rdb.Sql_ast.Query_stmt q ->
        planned_job (Rdb.Planner.plan_query (Rdb.Database.catalog db) q)
      | _ ->
        (* DML / DDL / transaction control: statement-level locking
           serializes writers; nothing to fan out, so stay inline *)
        (render_job `Sql, false)
      | exception (Rdb.Sql_parser.Parse_error _ as e) ->
        raise (Xomatiq.Engine.Query_error (Rdb.Sql_parser.error_to_string e))
    end
    (* pure planning, never worth a pool round-trip *)
    | `Explain -> (render_job `Explain, false)
    (* executes the query with unknown-ahead cost: keep it cancelable *)
    | `Analyze -> (render_job `Analyze, true)

(* Run one query under a fresh cancel token. Dispatched work runs off
   the session thread (a plain thread under the adaptive scheduler, the
   worker-domain pool in static mode) while the session thread keeps
   watching its own socket: a CANCEL frame, a BYE, a protocol violation
   or the peer vanishing all fire the token, and the executor aborts at
   the next operator boundary. Inline work (cheap queries under the
   adaptive scheduler, or any query at jobs = 1 in static mode, where
   the pool runs tasks inline at submit time) leaves the socket
   unwatched for the duration — the deadline still fires because the
   token carries it into the executor's own checks. *)
let execute_query t sess fd kind text =
  (match sess.Session.jobs with
   | Some n when n <> Conc.Pool.jobs () -> Conc.Pool.set_jobs n
   | _ -> ());
  let deadline =
    match t.cfg.query_timeout_s with
    | Some s -> Obs.now_s () +. s
    | None -> infinity
  in
  let token = Rdb.Cancel.create ~deadline () in
  let lost = ref false in
  let pending_bye = ref false in
  let outcome =
    match plan_work t sess token kind text with
    | exception e -> Error e
    | job, false ->
      Obs.Counter.incr m_sched_inline;
      (match job () with v -> Ok v | exception e -> Error e)
    | job, true ->
      Obs.Counter.incr m_sched_dispatched;
      (* Static mode dispatches to the worker-domain pool (the
         pre-adaptive behavior). Adaptive mode runs the job on a plain
         thread instead: the session thread watches the socket exactly
         the same, but no worker domains are forced into existence —
         resident idle domains tax every inline query on a host without
         spare cores through the stop-the-world GC rendezvous. *)
      let poll, finish =
        match Conc.Sched.mode () with
        | Conc.Sched.Static ->
          let fut = Conc.Pool.submit (Conc.Pool.get ()) job in
          ( (fun () -> Conc.Pool.poll fut),
            fun () ->
              match Conc.Pool.await_blocking fut with
              | v -> Ok v
              | exception e -> Error e )
        | Conc.Sched.Adaptive ->
          let cell = Atomic.make None in
          let th =
            Thread.create
              (fun () ->
                Atomic.set cell
                  (Some (match job () with v -> Ok v | exception e -> Error e)))
              ()
          in
          ( (fun () -> Atomic.get cell <> None),
            fun () ->
              Thread.join th;
              match Atomic.get cell with Some r -> r | None -> assert false )
      in
      let watching = ref true in
      (* Exponential poll backoff: fast queries are noticed within a
         couple of milliseconds, long ones cost one socket select per
         50 ms. *)
      let rec monitor slice =
        if not (poll ()) then begin
          (if t.cfg.query_timeout_s <> None
              && Rdb.Cancel.deadline_passed token
           then
             Rdb.Cancel.cancel ~code:Rdb.Cancel.timeout_code token
               (Printf.sprintf "query exceeded the %.3fs wall-clock budget"
                  (Option.get t.cfg.query_timeout_s)));
          if !watching then begin
            if P.wait_readable fd ~deadline:(Obs.now_s () +. slice) then
              match
                P.read_frame ~deadline:(Obs.now_s () +. 1.0)
                  ~max_frame:t.cfg.max_frame fd
              with
              | tag, _ when tag = P.tag_cancel ->
                Rdb.Cancel.cancel token "canceled by client"
              | tag, _ when tag = P.tag_bye ->
                pending_bye := true;
                Rdb.Cancel.cancel token "connection closing"
              | _ ->
                watching := false;
                lost := true;
                Rdb.Cancel.cancel token "protocol violation mid-query"
              | exception
                  (P.Closed | P.Proto_error _ | P.Io_timeout
                  | Unix.Unix_error _) ->
                watching := false;
                lost := true;
                Rdb.Cancel.cancel token "client went away mid-query"
          end
          else Thread.delay slice;
          monitor (Float.min 0.05 (slice *. 2.))
        end
      in
      monitor 0.001;
      finish ()
  in
  (match outcome with
   | Ok (body, summary, exec_s) ->
     if !lost then raise Session_over;
     sess.Session.queries <- sess.Session.queries + 1;
     Obs.Counter.incr m_queries;
     Obs.Histogram.observe m_latency exec_s;
     stream_result t sess fd body summary
   | Error (Rdb.Cancel.Canceled (code, msg)) ->
     if code = Rdb.Cancel.timeout_code then Obs.Counter.incr m_timeouts
     else Obs.Counter.incr m_canceled;
     if not !lost then send t sess fd P.tag_error (P.error_payload ~code msg)
     else raise Session_over
   | Error (Xomatiq.Engine.Query_error m) ->
     Obs.Counter.incr m_query_errors;
     if !lost then raise Session_over;
     send t sess fd P.tag_error (P.error_payload ~code:P.err_query m)
   | Error e ->
     Obs.Counter.incr m_query_errors;
     if !lost then raise Session_over;
     send t sess fd P.tag_error
       (P.error_payload ~code:P.err_internal (Printexc.to_string e)));
  if !pending_bye then begin
    (try send t sess fd P.tag_ok "bye" with _ -> ());
    raise Session_over
  end

(* ------------------------------------------------------------------ *)
(* Session loop                                                        *)
(* ------------------------------------------------------------------ *)

let metrics_payload sess =
  "{\"metrics\": " ^ Obs.dump_json ()
  ^ Printf.sprintf ", \"sched\": {\"mode\": \"%s\", \"cost_threshold\": %g}"
      (Conc.Sched.mode_tag ()) (Conc.Sched.cost_threshold ())
  ^ ", \"session\": " ^ Session.info_json sess ^ "}"

let handle_request t sess fd = function
  | P.Ping payload -> send t sess fd P.tag_ok payload
  | P.Metrics -> send t sess fd P.tag_metrics_reply (metrics_payload sess)
  | P.Cancel -> send t sess fd P.tag_ok "nothing to cancel"
  | P.Set (name, value) -> begin
    match Session.set_option sess ~name ~value with
    | Ok ack -> send t sess fd P.tag_ok ack
    | Error m -> send t sess fd P.tag_error (P.error_payload ~code:P.err_query m)
  end
  | P.Bye ->
    (try send t sess fd P.tag_ok "bye" with _ -> ());
    raise Session_over
  | P.Hello _ ->
    raise (P.Proto_error "unexpected second handshake")
  | P.Query text -> execute_query t sess fd `Query text
  | P.Sql text -> execute_query t sess fd `Sql text
  | P.Explain text -> execute_query t sess fd `Explain text
  | P.Analyze text -> execute_query t sess fd `Analyze text

(* Wait for the next request frame in quarter-second slices so the
   session notices a drain or its idle deadline without dedicated
   machinery. *)
let wait_request t fd =
  let idle_deadline =
    match t.cfg.idle_timeout_s with
    | Some s -> Obs.now_s () +. s
    | None -> infinity
  in
  let rec slice () =
    if Atomic.get t.stop then `Drain
    else if Obs.now_s () > idle_deadline then
      (* Last-instant check: a request that raced the deadline (bytes
         already readable when the timer expired — e.g. sent while the
         previous slow query held the thread) is served, not reaped. *)
      if P.wait_readable fd ~deadline:(Obs.now_s ()) then `Ready else `Idle
    else begin
      let d = min (Obs.now_s () +. 0.25) idle_deadline in
      if P.wait_readable fd ~deadline:d then `Ready else slice ()
    end
  in
  slice ()

let recv t sess fd ~deadline =
  let tag, payload = P.read_frame ~deadline ~max_frame:t.cfg.max_frame fd in
  let n = P.frame_bytes payload in
  sess.Session.bytes_in <- sess.Session.bytes_in + n;
  Obs.Counter.incr ~by:n m_bytes_in;
  (tag, payload)

let handshake t sess fd =
  let deadline = Obs.now_s () +. 5.0 in
  match recv t sess fd ~deadline with
  | tag, payload when tag = P.tag_hello ->
    if payload <> P.version then begin
      (try
         send t sess fd P.tag_error
           (P.error_payload ~code:P.err_proto
              (Printf.sprintf "unsupported protocol version %S (server speaks %s)"
                 payload P.version))
       with _ -> ());
      raise Session_over
    end;
    send t sess fd P.tag_welcome P.version
  | _ -> raise (P.Proto_error "expected HELLO as the first frame")

let session_loop t sess fd =
  handshake t sess fd;
  let rec loop () =
    match wait_request t fd with
    | `Drain ->
      (try
         send t sess fd P.tag_error
           (P.error_payload ~code:P.err_shutdown "server is draining")
       with _ -> ());
      raise Session_over
    | `Idle ->
      Obs.Counter.incr m_reaped_idle;
      (try
         send t sess fd P.tag_error
           (P.error_payload ~code:P.err_idle "idle connection reaped")
       with _ -> ());
      raise Session_over
    | `Ready ->
      let frame = recv t sess fd ~deadline:(Obs.now_s () +. 5.0) in
      (match P.request_of_frame frame with
       | Ok req -> handle_request t sess fd req
       | Error m -> raise (P.Proto_error m));
      loop ()
  in
  loop ()

let handle_conn t id fd =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let close () = try Unix.close fd with Unix.Unix_error _ -> () in
  let sess = Session.create ~id in
  let best_effort_error code msg =
    try send t sess fd P.tag_error (P.error_payload ~code msg)
    with _ -> ()
  in
  match acquire_slot t with
  | `Busy ->
    Obs.Counter.incr m_shed;
    best_effort_error P.err_busy
      (Printf.sprintf "%d active and %d waiting clients; try again later"
         t.cfg.max_clients t.cfg.queue_depth);
    close ()
  | `Shutdown ->
    best_effort_error P.err_shutdown "server is draining";
    close ()
  | `Admitted ->
    Fun.protect
      ~finally:(fun () ->
        close ();
        release_slot t)
      (fun () ->
        try session_loop t sess fd with
        | Session_over | P.Closed -> ()
        | P.Proto_error m ->
          Obs.Counter.incr m_proto_errors;
          best_effort_error P.err_proto m
        | P.Io_timeout ->
          (* a response write could not finish: slow-client drop *)
          Obs.Counter.incr m_slow_client_drops
        | Unix.Unix_error _ -> ()
        | e ->
          best_effort_error P.err_internal (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Accept loop and lifecycle                                           *)
(* ------------------------------------------------------------------ *)

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.25 with
       | [], _, _ -> ()
       | _ -> begin
         match Unix.accept t.listen_fd with
         | fd, _ ->
           Obs.Counter.incr m_accepted;
           Mutex.lock t.lock;
           let id = t.next_id in
           t.next_id <- id + 1;
           let th = Thread.create (fun () -> handle_conn t id fd) () in
           t.handlers <- th :: t.handlers;
           Mutex.unlock t.lock
         | exception
             Unix.Unix_error
               (( Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
                | Unix.ECONNABORTED ), _, _) ->
           ()
       end
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found ->
      raise
        (Unix.Unix_error
           (Unix.EINVAL, "resolve", host)))

let start cfg wh =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  (try Unix.bind listen_fd (Unix.ADDR_INET (resolve_host cfg.host, cfg.port))
   with e -> (try Unix.close listen_fd with _ -> ()); raise e);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  let t =
    { cfg; wh; listen_fd; bound_port; stop = Atomic.make false;
      lock = Mutex.create (); slot_cond = Condition.create (); active = 0;
      waiting = 0; next_id = 1; handlers = []; accept_thread = None }
  in
  Obs.register_gauge "server.active" (fun () ->
      Mutex.lock t.lock;
      let n = t.active in
      Mutex.unlock t.lock;
      n);
  Obs.register_gauge "server.waiting" (fun () ->
      Mutex.lock t.lock;
      let n = t.waiting in
      Mutex.unlock t.lock;
      n);
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let wait t =
  Option.iter Thread.join t.accept_thread;
  (* After the accept thread is gone no new handlers appear; wake every
     admission waiter (under the same lock as Condition.wait, so none
     misses the stop flag) and join the lot. *)
  Mutex.lock t.lock;
  Condition.broadcast t.slot_cond;
  let handlers = t.handlers in
  Mutex.unlock t.lock;
  List.iter Thread.join handlers;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())

let run cfg wh =
  let t = start cfg wh in
  (* Signal handlers set the flag only: [request_stop] takes [t.lock] to
     broadcast, and a handler may preempt a thread that already holds it.
     [wait]'s own broadcast below wakes the admission queue. *)
  let stop _ = Atomic.set t.stop true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Printf.printf
    "xomatiq server listening on %s:%d (max-clients=%d queue-depth=%d jobs=%d)\n%!"
    cfg.host (port t) cfg.max_clients cfg.queue_depth (Conc.Pool.jobs ());
  wait t;
  Printf.printf "xomatiq server drained\n%!"
