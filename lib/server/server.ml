module P = Protocol
module Obs = Rdb.Obs
module R = Conc.Reactor

type config = {
  host : string;
  port : int;
  max_clients : int;
  queue_depth : int;
  query_timeout_s : float option;
  idle_timeout_s : float option;
  write_timeout_s : float;
  max_frame : int;
  pipeline_window : int;
  read_only : bool;
  done_seq : (unit -> int) option;
  repl_status : (unit -> string) option;
}

let default_config =
  { host = "127.0.0.1"; port = 7788; max_clients = 32; queue_depth = 16;
    query_timeout_s = None; idle_timeout_s = None; write_timeout_s = 10.;
    max_frame = P.max_frame_default; pipeline_window = 32; read_only = false;
    done_seq = None; repl_status = None }

(* A write reached a read-only server (a replica); mapped to the
   [READ_ONLY] error code so a routed client can fail over to the
   primary instead of treating it as a query error. *)
exception Read_only_violation

(* ------------------------------------------------------------------ *)
(* Server-wide metrics                                                 *)
(* ------------------------------------------------------------------ *)

let m_accepted = Obs.Counter.create ()
let m_shed = Obs.Counter.create ()
let m_queries = Obs.Counter.create ()
let m_timeouts = Obs.Counter.create ()
let m_canceled = Obs.Counter.create ()
let m_query_errors = Obs.Counter.create ()
let m_reaped_idle = Obs.Counter.create ()
let m_slow_client_drops = Obs.Counter.create ()
let m_proto_errors = Obs.Counter.create ()
let m_bytes_in = Obs.Counter.create ()
let m_bytes_out = Obs.Counter.create ()
let m_sched_inline = Obs.Counter.create ()
let m_sched_dispatched = Obs.Counter.create ()
let m_pipelined = Obs.Counter.create ()
let m_latency = Obs.Histogram.create ()

let () =
  Obs.register_counter "server.accepted" m_accepted;
  Obs.register_counter "server.shed" m_shed;
  Obs.register_counter "server.queries" m_queries;
  Obs.register_counter "server.timeouts" m_timeouts;
  Obs.register_counter "server.canceled" m_canceled;
  Obs.register_counter "server.query_errors" m_query_errors;
  Obs.register_counter "server.reaped_idle" m_reaped_idle;
  Obs.register_counter "server.slow_client_drops" m_slow_client_drops;
  Obs.register_counter "server.proto_errors" m_proto_errors;
  Obs.register_counter "server.bytes_in" m_bytes_in;
  Obs.register_counter "server.bytes_out" m_bytes_out;
  Obs.register_counter "server.sched_inline" m_sched_inline;
  Obs.register_counter "server.sched_dispatched" m_sched_dispatched;
  Obs.register_counter "server.pipelined" m_pipelined;
  Obs.register_histogram "server.query_latency" m_latency

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type reactor_state = {
  reactor : R.t;
  mutable rthread : Thread.t option;
  (* mirrors of the reactor thread's bookkeeping, readable from any
     thread (metrics gauges) *)
  r_active : int Atomic.t;
  r_waiting : int Atomic.t;
  r_conns : int Atomic.t;
}

type t = {
  cfg : config;
  wh : Datahounds.Warehouse.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  stop : bool Atomic.t;
  mutable next_id : int;
  rs : reactor_state;
}

let port t = t.bound_port

(* Begin a drain: raise the flag, then wake the reactor's poll. Signal
   handlers must NOT call this (posting writes to the wake pipe and a
   handler can preempt a thread mid-critical-section); they set the
   atomic flag only and lean on the 0.25 s loop slices, which notice it
   promptly. *)
let request_stop t =
  Atomic.set t.stop true;
  R.post t.rs.reactor (fun () -> ())

let stopping t = Atomic.get t.stop

(* ------------------------------------------------------------------ *)
(* Query execution                                                     *)
(* ------------------------------------------------------------------ *)

let values_to_table columns rows =
  Xomatiq.Tagger.to_table ~labels:columns
    (List.map
       (fun r -> Array.to_list (Array.map Rdb.Value.to_string r))
       rows)

(* Render one request into (body, summary ingredients). Runs on
   whichever thread the scheduler picked; everything it raises is
   reported as a typed error frame. *)
let render_request t sess token kind text =
  match kind with
  | `Query ->
    let result =
      Xomatiq.Engine.run_text ~contains_strategy:sess.Session.contains
        ~cancel:token t.wh text
    in
    let body =
      match sess.Session.format with
      | `Table -> Xomatiq.Engine.result_to_table result
      | `Xml ->
        Gxml.Printer.document_to_string ~pretty:true
          (Xomatiq.Engine.result_to_xml result)
    in
    (body, List.length result.Xomatiq.Engine.rows,
     result.Xomatiq.Engine.cached)
  | `Sql -> begin
    let db = Datahounds.Warehouse.db t.wh in
    match Rdb.Sql_parser.parse text with
    | Rdb.Sql_ast.Select_stmt sel ->
      let planned = Rdb.Database.plan_select db sel in
      let columns, rows = Rdb.Database.run_planned db ~cancel:token planned in
      (values_to_table columns rows, List.length rows, false)
    | Rdb.Sql_ast.Query_stmt q ->
      let planned = Rdb.Planner.plan_query (Rdb.Database.catalog db) q in
      let columns, rows = Rdb.Database.run_planned db ~cancel:token planned in
      (values_to_table columns rows, List.length rows, false)
    | stmt -> begin
      (* DML / DDL / EXPLAIN run on the warehouse's default session;
         statement-level locking inside the database serializes writers. *)
      if t.cfg.read_only && not (P.stmt_is_read stmt) then
        raise Read_only_violation;
      match Rdb.Database.exec_exn db text with
      | Rdb.Database.Rows { columns; rows } ->
        (values_to_table columns rows, List.length rows, false)
      | Rdb.Database.Affected n ->
        (Printf.sprintf "%d row(s) affected\n" n, n, false)
      | Rdb.Database.Done msg -> (msg ^ "\n", 0, false)
      | Rdb.Database.Explained s -> (s ^ "\n", 0, false)
      | exception Failure m -> raise (Xomatiq.Engine.Query_error m)
    end
    | exception (Rdb.Sql_parser.Parse_error _ as e) ->
      raise (Xomatiq.Engine.Query_error (Rdb.Sql_parser.error_to_string e))
  end
  | (`Explain | `Analyze) as k -> begin
    match Xomatiq.Parser.parse text with
    | ast ->
      let explain =
        if k = `Analyze then Xomatiq.Engine.explain_analyze
        else Xomatiq.Engine.explain
      in
      (explain t.wh ast ^ "\n", 0, false)
    | exception (Xomatiq.Parser.Parse_error _ as e) ->
      raise (Xomatiq.Engine.Query_error (Xomatiq.Parser.error_to_string e))
  end

(* Chunked result streaming: 64 KiB R frames, then the D trailer. *)
let chunk_size = 64 * 1024

(* Plan one request into [(job, dispatch)]: [job] produces the response
   body on whichever thread runs it, [dispatch] says whether it goes off
   the calling thread (so the socket stays watched) or runs inline.

   In static mode ([XOMATIQ_SCHED=static]) everything is dispatched —
   the pre-adaptive behaviour. In adaptive mode the request is planned
   *here*, on the calling thread (a plan-cache lookup on the hot path,
   or the session's own memoized preparation), and the root cost
   estimate picks the lane: a cheap query never pays the pool round-trip
   and its ~1 ms+ future-poll latency, an expensive one keeps the
   dispatched path so CANCEL frames and deadlines stay live mid-query.
   Planning errors raise [Query_error] from here, exactly as they would
   from inside the dispatched task. *)
let plan_work t sess token kind text =
  let finish ~t0 body rows cached =
    let exec_s = Obs.now_s () -. t0 in
    let seq = match t.cfg.done_seq with Some f -> f () | None -> 0 in
    ( body,
      { P.sum_rows = rows; sum_exec_ms = exec_s *. 1000.;
        sum_cached = cached; sum_seq = seq },
      exec_s )
  in
  let render_job kind =
    fun () ->
      let t0 = Obs.now_s () in
      let body, rows, cached = render_request t sess token kind text in
      finish ~t0 body rows cached
  in
  if Conc.Sched.mode () = Conc.Sched.Static then (render_job kind, true)
  else
    match kind with
    | `Query ->
      let strategy = sess.Session.contains in
      let pt, cached =
        match sess.Session.prep with
        | Some (txt, pt)
          when txt = text
               && Xomatiq.Engine.prepared_valid ~contains_strategy:strategy
                    t.wh pt ->
          (pt, true)
        | _ ->
          let pt =
            Xomatiq.Engine.prepare_text ~contains_strategy:strategy t.wh text
          in
          sess.Session.prep <- Some (text, pt);
          (pt, Xomatiq.Engine.prepared_hit pt)
      in
      let decision =
        Conc.Sched.plan_decision ~est_cost:(Xomatiq.Engine.prepared_cost pt)
      in
      let job () =
        let t0 = Obs.now_s () in
        let result =
          Xomatiq.Engine.run_prepared_text ~cancel:token ~cached pt
        in
        let body =
          match sess.Session.format with
          | `Table -> Xomatiq.Engine.result_to_table result
          | `Xml ->
            Gxml.Printer.document_to_string ~pretty:true
              (Xomatiq.Engine.result_to_xml result)
        in
        finish ~t0 body
          (List.length result.Xomatiq.Engine.rows)
          result.Xomatiq.Engine.cached
      in
      (job, decision.Conc.Sched.par)
    | `Sql -> begin
      let db = Datahounds.Warehouse.db t.wh in
      let planned_job planned =
        let decision =
          Conc.Sched.plan_decision
            ~est_cost:planned.Rdb.Planner.est_cost
        in
        let job () =
          let t0 = Obs.now_s () in
          let columns, rows =
            Rdb.Database.run_planned db ~cancel:token planned
          in
          finish ~t0 (values_to_table columns rows) (List.length rows) false
        in
        (job, decision.Conc.Sched.par)
      in
      match Rdb.Sql_parser.parse text with
      | Rdb.Sql_ast.Select_stmt sel ->
        planned_job (Rdb.Database.plan_select db sel)
      | Rdb.Sql_ast.Query_stmt q ->
        planned_job (Rdb.Planner.plan_query (Rdb.Database.catalog db) q)
      | _ ->
        (* DML / DDL / transaction control: statement-level locking
           serializes writers; nothing to fan out, so stay inline *)
        (render_job `Sql, false)
      | exception (Rdb.Sql_parser.Parse_error _ as e) ->
        raise (Xomatiq.Engine.Query_error (Rdb.Sql_parser.error_to_string e))
    end
    (* pure planning, never worth a pool round-trip *)
    | `Explain -> (render_job `Explain, false)
    (* executes the query with unknown-ahead cost: keep it cancelable *)
    | `Analyze -> (render_job `Analyze, true)

let storage_json wh =
  let db = Datahounds.Warehouse.db wh in
  let backend = if Rdb.Database.is_disk db then "disk" else "mem" in
  let dir =
    match Rdb.Database.data_dir db with
    | Some d -> Printf.sprintf ", \"data_dir\": %S" d
    | None -> ""
  in
  let pool =
    match Rdb.Database.storage db with
    | Some st ->
      Printf.sprintf ", \"pool_frames\": %d"
        (Rdb.Bufpool.frames (Rdb.Storage.pool st))
    | None -> ""
  in
  Printf.sprintf "{\"backend\": %S%s%s}" backend dir pool

let replication_json t =
  match t.cfg.repl_status with
  | Some f -> f ()
  | None -> "{\"role\": \"standalone\"}"

let metrics_payload t sess =
  "{\"metrics\": " ^ Obs.dump_json ()
  ^ Printf.sprintf ", \"sched\": {\"mode\": \"%s\", \"cost_threshold\": %g}"
      (Conc.Sched.mode_tag ()) (Conc.Sched.cost_threshold ())
  ^ ", \"storage\": " ^ storage_json t.wh
  ^ ", \"replication\": " ^ replication_json t
  ^ ", \"session\": " ^ Session.info_json sess ^ "}"

let apply_session_jobs sess =
  match sess.Session.jobs with
  | Some n when n <> Conc.Pool.jobs () -> Conc.Pool.set_jobs n
  | _ -> ()

let timeout_deadline t =
  match t.cfg.query_timeout_s with
  | Some s -> Obs.now_s () +. s
  | None -> infinity

let fire_wallclock_timeout t token =
  Rdb.Cancel.cancel ~code:Rdb.Cancel.timeout_code token
    (Printf.sprintf "query exceeded the %.3fs wall-clock budget"
       (Option.get t.cfg.query_timeout_s))

(* ================================================================== *)
(* Event-driven reactor model (default)                                *)
(* ================================================================== *)

(* One reactor thread owns the listening socket and every connection:
   idle connections cost a pollfd entry, not a thread. Each connection
   is an explicit state machine (handshake -> ready -> closing) with an
   incremental frame decoder on the read side and a coalescing frame
   buffer on the write side. Requests decoded beyond the one currently
   executing queue per-connection up to [pipeline_window] — xomatiq/1
   pipelining — and responses are written back strictly in request
   order, many frames per write() syscall.

   The adaptive scheduler's lanes survive unchanged: cheap queries run
   inline on the reactor thread (no hand-off at all), expensive ones
   dispatch to a shepherd thread (static mode: the worker-domain pool)
   while the reactor keeps reading the connection — CANCEL and BYE stay
   live mid-query, and other sessions keep being served. *)

type phase = Handshaking | Ready | Closing

type conn = {
  c_fd : Unix.file_descr;
  c_sess : Session.t;
  dec : P.Decoder.t;
  out : P.Outbuf.t;
  pending : P.request Queue.t;
  born : float;
  mutable phase : phase;
  mutable parked : bool;       (* accepted, waiting for a session slot *)
  mutable admitted : bool;
  mutable closed : bool;
  mutable inflight : Rdb.Cancel.t option;
  mutable pending_bye : bool;
  mutable last_activity : float;
  mutable last_write_progress : float;
}

type rloop = {
  srv : t;
  rs : reactor_state;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  wait_line : conn Queue.t;
  rdbuf : Bytes.t;  (* shared read staging: reads happen only on the
                       reactor thread and feed per-connection decoders
                       immediately, so one buffer serves every socket *)
  mutable draining : bool;
}

(* Stop pumping responses into a connection whose client is not reading
   them; resume once the outbuf drains below the mark. Bounds the
   per-connection memory a pipelined burst of large results can pin. *)
let outbuf_high_water = 1 lsl 20

(* Stop read()ing a connection whose decoded-but-unconsumed backlog has
   grown past this; level-triggered polling picks the rest up once the
   pipeline queue drains. *)
let decoder_backlog_cap = 256 * 1024

let conn_window rl = max 1 rl.srv.cfg.pipeline_window

(* Interest refresh: read while we are willing to decode more, write
   while response bytes are waiting. The backlog cap only pauses reading
   when the buffered bytes contain a complete frame (one the window will
   decode later); a partial frame must keep reading however large it
   grows — up to [max_frame], which bounds it — because only more input
   can ever complete it. *)
let refresh_interest rl conn =
  if not conn.closed then
    let read =
      (not conn.parked)
      && conn.phase <> Closing
      && (not conn.pending_bye)
      && Queue.length conn.pending < conn_window rl
      && (P.Decoder.buffered conn.dec < decoder_backlog_cap
          || not (P.Decoder.frame_ready conn.dec))
    in
    R.want rl.rs.reactor conn.c_fd ~read ~write:(not (P.Outbuf.is_empty conn.out))

let close_conn rl conn =
  if not conn.closed then begin
    conn.closed <- true;
    (match conn.inflight with
     | Some token -> Rdb.Cancel.cancel token "client went away mid-query"
     | None -> ());
    conn.inflight <- None;
    R.unregister rl.rs.reactor conn.c_fd;
    (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
    Hashtbl.remove rl.conns conn.c_fd;
    Atomic.decr rl.rs.r_conns;
    if conn.parked then begin
      conn.parked <- false;
      Atomic.decr rl.rs.r_waiting
    end;
    if conn.admitted then begin
      conn.admitted <- false;
      Atomic.decr rl.rs.r_active
    end
  end

let emit rl conn tag payload =
  P.Outbuf.add_frame conn.out tag payload;
  ignore rl

(* Queue a typed error (or goodbye) and close once it is flushed. *)
let shed rl conn code msg =
  if not conn.closed && conn.phase <> Closing then begin
    emit rl conn P.tag_error (P.error_payload ~code msg);
    conn.phase <- Closing;
    Queue.clear conn.pending
  end

let flush_conn rl conn =
  if not conn.closed then begin
    let before = P.Outbuf.length conn.out in
    (match P.Outbuf.flush conn.out conn.c_fd with
     | `All | `Blocked ->
       let written = before - P.Outbuf.length conn.out in
       if written > 0 then begin
         conn.c_sess.Session.bytes_out <-
           conn.c_sess.Session.bytes_out + written;
         Obs.Counter.incr ~by:written m_bytes_out;
         conn.last_write_progress <- Obs.now_s ()
       end;
       if P.Outbuf.is_empty conn.out then begin
         conn.last_write_progress <- Obs.now_s ();
         if conn.phase = Closing then close_conn rl conn
         else refresh_interest rl conn
       end
       else refresh_interest rl conn
     | exception (P.Closed | Unix.Unix_error _) -> close_conn rl conn)
  end

let emit_result rl conn body summary =
  let len = String.length body in
  let rec chunks off =
    if off < len then begin
      let n = min chunk_size (len - off) in
      emit rl conn P.tag_rows (String.sub body off n);
      chunks (off + n)
    end
  in
  chunks 0;
  emit rl conn P.tag_done (P.done_payload summary)

(* Report one query outcome. Counters are updated even when the
   connection is already gone; frames are only queued for live
   connections. *)
let emit_outcome rl conn outcome =
  let live = (not conn.closed) && conn.phase <> Closing in
  match outcome with
  | Ok (body, summary, exec_s) ->
    conn.c_sess.Session.queries <- conn.c_sess.Session.queries + 1;
    Obs.Counter.incr m_queries;
    Obs.Histogram.observe m_latency exec_s;
    if live then emit_result rl conn body summary
  | Error (Rdb.Cancel.Canceled (code, msg)) ->
    if code = Rdb.Cancel.timeout_code then Obs.Counter.incr m_timeouts
    else Obs.Counter.incr m_canceled;
    if live then emit rl conn P.tag_error (P.error_payload ~code msg)
  | Error (Xomatiq.Engine.Query_error m) ->
    Obs.Counter.incr m_query_errors;
    if live then emit rl conn P.tag_error (P.error_payload ~code:P.err_query m)
  | Error Read_only_violation ->
    Obs.Counter.incr m_query_errors;
    if live then
      emit rl conn P.tag_error
        (P.error_payload ~code:P.err_read_only
           "this server is a read-only replica; send writes to the primary")
  | Error e ->
    Obs.Counter.incr m_query_errors;
    if live then
      emit rl conn P.tag_error
        (P.error_payload ~code:P.err_internal (Printexc.to_string e))

let proto_violation rl conn msg =
  Obs.Counter.incr m_proto_errors;
  (match conn.inflight with
   | Some token -> Rdb.Cancel.cancel token "protocol violation mid-query"
   | None -> ());
  shed rl conn P.err_proto msg

(* Dispatch one planned job off the reactor thread; its completion is
   posted back so the response is written (in order) by the reactor. *)
let dispatch_job rl conn token job k =
  conn.inflight <- Some token;
  let finish result = R.post rl.rs.reactor (fun () -> k result) in
  let runner =
    match Conc.Sched.mode () with
    | Conc.Sched.Adaptive ->
      fun () ->
        finish (match job () with v -> Ok v | exception e -> Error e)
    | Conc.Sched.Static ->
      fun () ->
        let fut = Conc.Pool.submit (Conc.Pool.get ()) job in
        finish
          (match Conc.Pool.await_blocking fut with
           | v -> Ok v
           | exception e -> Error e)
  in
  ignore (Thread.create runner ())

let rec pump rl conn =
  if
    (not conn.closed) && conn.phase = Ready && conn.inflight = None
    && P.Outbuf.length conn.out < outbuf_high_water
  then
    match Queue.take_opt conn.pending with
    | None ->
      if conn.pending_bye then begin
        conn.pending_bye <- false;
        emit rl conn P.tag_ok "bye";
        conn.phase <- Closing
      end
    | Some req ->
      if not (Queue.is_empty conn.pending) then Obs.Counter.incr m_pipelined;
      (match req with
       | P.Ping payload ->
         emit rl conn P.tag_ok payload;
         pump rl conn
       | P.Metrics ->
         emit rl conn P.tag_metrics_reply (metrics_payload rl.srv conn.c_sess);
         pump rl conn
       | P.Set (name, value) ->
         (match Session.set_option conn.c_sess ~name ~value with
          | Ok ack -> emit rl conn P.tag_ok ack
          | Error m ->
            emit rl conn P.tag_error (P.error_payload ~code:P.err_query m));
         pump rl conn
       | P.Hello _ | P.Cancel | P.Bye ->
         (* handled at decode time; never queued *)
         pump rl conn
       | P.Query text -> start_query rl conn `Query text
       | P.Sql text -> start_query rl conn `Sql text
       | P.Explain text -> start_query rl conn `Explain text
       | P.Analyze text -> start_query rl conn `Analyze text)

and start_query rl conn kind text =
  let t = rl.srv in
  apply_session_jobs conn.c_sess;
  let token = Rdb.Cancel.create ~deadline:(timeout_deadline t) () in
  match plan_work t conn.c_sess token kind text with
  | exception e ->
    emit_outcome rl conn (Error e);
    pump rl conn
  | job, false ->
    (* Inline on the reactor thread: no hand-off, no wakeup. The cost
       gate keeps these cheap, so other connections wait microseconds —
       the same trade the session thread made before, now shared. *)
    Obs.Counter.incr m_sched_inline;
    let outcome = match job () with v -> Ok v | exception e -> Error e in
    emit_outcome rl conn outcome;
    conn.last_activity <- Obs.now_s ();
    pump rl conn
  | job, true ->
    Obs.Counter.incr m_sched_dispatched;
    dispatch_job rl conn token job (fun outcome ->
        conn.inflight <- None;
        conn.last_activity <- Obs.now_s ();
        emit_outcome rl conn outcome;
        if rl.draining then begin
          shed rl conn P.err_shutdown "server is draining";
          flush_conn rl conn
        end
        else
          (* the freed slot may unblock frames already sitting decoded —
             or still undecoded — in [dec]; [service] picks them up (and
             [pump] answers a pending BYE once the queue is empty) *)
          service rl conn)

(* Decode buffered bytes into the pipeline queue. CANCEL and BYE act
   immediately (they are the out-of-band frames); everything else joins
   the per-connection queue in arrival order, up to the window. *)
and decode rl conn =
  if not conn.closed then
    match conn.phase with
    | Closing -> ()
    | Handshaking -> begin
      match P.Decoder.next conn.dec with
      | None -> ()
      | Some (tag, payload) when tag = P.tag_hello ->
        if payload <> P.version then
          shed rl conn P.err_proto
            (Printf.sprintf
               "unsupported protocol version %S (server speaks %s)" payload
               P.version)
        else begin
          emit rl conn P.tag_welcome P.version;
          conn.phase <- Ready;
          decode rl conn
        end
      | Some _ -> proto_violation rl conn "expected HELLO as the first frame"
      | exception P.Proto_error m -> proto_violation rl conn m
    end
    | Ready ->
      if Queue.length conn.pending < conn_window rl && not conn.pending_bye
      then begin
        match P.Decoder.next conn.dec with
        | None -> ()
        | exception P.Proto_error m -> proto_violation rl conn m
        | Some frame -> begin
          match P.request_of_frame frame with
          | Error m -> proto_violation rl conn m
          | Ok P.Cancel ->
            (* the oldest incomplete request: the one executing, else
               the head of the queue (answered CANCELED, never run) *)
            (match conn.inflight with
             | Some token -> Rdb.Cancel.cancel token "canceled by client"
             | None -> (
               match Queue.take_opt conn.pending with
               | Some _ ->
                 Obs.Counter.incr m_canceled;
                 emit rl conn P.tag_error
                   (P.error_payload ~code:Rdb.Cancel.canceled_code
                      "canceled before execution")
               | None -> emit rl conn P.tag_ok "nothing to cancel"));
            decode rl conn
          | Ok P.Bye ->
            (* goodbye: drop everything queued behind it, cancel the
               in-flight query, acknowledge once quiet *)
            Queue.clear conn.pending;
            (match conn.inflight with
             | Some token ->
               conn.pending_bye <- true;
               Rdb.Cancel.cancel token "connection closing"
             | None ->
               emit rl conn P.tag_ok "bye";
               conn.phase <- Closing)
          | Ok (P.Hello _) ->
            proto_violation rl conn "unexpected second handshake"
          | Ok req ->
            Queue.push req conn.pending;
            decode rl conn
        end
      end

(* Drive one connection to quiescence: decode buffered bytes, execute
   what the window admits, flush responses. A single pass is not enough
   because each stage unblocks the one before it — executing a queued
   request frees a window slot for a frame that is already sitting in
   [dec] (a client that bursts past [pipeline_window] gets no further
   readable event for that surplus: its bytes left the kernel buffer
   long ago), and a flush that drains the outbuf below the high-water
   mark lets back-pressured requests resume. Loop until a full pass
   moves nothing, then leave the interest set matching the final state.
   Terminates: every pass's progress consumes buffered or queued input
   that only [handle_read] (never called from here) replenishes. *)
and service rl conn =
  if not conn.closed then begin
    let buffered = P.Decoder.buffered conn.dec in
    let queued = Queue.length conn.pending in
    let unsent = P.Outbuf.length conn.out in
    decode rl conn;
    pump rl conn;
    flush_conn rl conn;
    if conn.closed then ()
    else if
      P.Decoder.buffered conn.dec <> buffered
      || Queue.length conn.pending <> queued
      || P.Outbuf.length conn.out <> unsent
    then service rl conn
    else refresh_interest rl conn
  end

let handle_read rl conn =
  let rec go budget =
    if budget > 0 && not conn.closed then
      match Unix.read conn.c_fd rl.rdbuf 0 (Bytes.length rl.rdbuf) with
      | 0 -> close_conn rl conn
      | n ->
        conn.last_activity <- Obs.now_s ();
        conn.c_sess.Session.bytes_in <- conn.c_sess.Session.bytes_in + n;
        Obs.Counter.incr ~by:n m_bytes_in;
        P.Decoder.feed conn.dec rl.rdbuf 0 n;
        (* same partial-frame exemption as [refresh_interest]: a frame
           still missing bytes can only complete by reading on *)
        if
          P.Decoder.buffered conn.dec < decoder_backlog_cap
          || not (P.Decoder.frame_ready conn.dec)
        then go (budget - n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go budget
      | exception Unix.Unix_error _ -> close_conn rl conn
  in
  go (4 * 1024 * 1024)

let on_conn_event rl conn (ev : R.ready) =
  if not conn.closed then begin
    if conn.parked then begin
      (* no interest bits are set while parked; only a hangup (reported
         unconditionally by poll) can arrive *)
      if ev.hup then close_conn rl conn
    end
    else begin
      if ev.readable then handle_read rl conn
      else if ev.hup && not ev.writable then close_conn rl conn;
      service rl conn
    end
  end

let admit rl conn =
  conn.admitted <- true;
  Atomic.incr rl.rs.r_active;
  refresh_interest rl conn

let admit_from_wait_line rl =
  if not rl.draining then
    let rec go () =
      if
        Atomic.get rl.rs.r_active < rl.srv.cfg.max_clients
        && not (Queue.is_empty rl.wait_line)
      then begin
        let conn = Queue.pop rl.wait_line in
        if not conn.closed then begin
          conn.parked <- false;
          Atomic.decr rl.rs.r_waiting;
          admit rl conn
        end;
        go ()
      end
    in
    go ()

let accept_burst rl =
  let t = rl.srv in
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _ -> begin
      Obs.Counter.incr m_accepted;
      match
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        let id = t.next_id in
        t.next_id <- id + 1;
        let now = Obs.now_s () in
        let conn =
          { c_fd = fd; c_sess = Session.create ~id;
            dec = P.Decoder.create ~max_frame:t.cfg.max_frame ();
            out = P.Outbuf.create (); pending = Queue.create (); born = now;
            phase = Handshaking; parked = false; admitted = false;
            closed = false; inflight = None; pending_bye = false;
            last_activity = now; last_write_progress = now }
        in
        Hashtbl.replace rl.conns fd conn;
        Atomic.incr rl.rs.r_conns;
        R.register rl.rs.reactor fd ~read:false ~write:false
          (on_conn_event rl conn);
        if Atomic.get t.stop then begin
          shed rl conn P.err_shutdown "server is draining";
          flush_conn rl conn
        end
        else if Atomic.get rl.rs.r_active < t.cfg.max_clients then
          admit rl conn
        else if Atomic.get rl.rs.r_waiting < t.cfg.queue_depth then begin
          conn.parked <- true;
          Atomic.incr rl.rs.r_waiting;
          Queue.push conn rl.wait_line
        end
        else begin
          Obs.Counter.incr m_shed;
          shed rl conn P.err_busy
            (Printf.sprintf
               "%d active and %d waiting clients; try again later"
               t.cfg.max_clients t.cfg.queue_depth);
          flush_conn rl conn
        end
      with
      | () -> go ()
      | exception e ->
        (* never leak the accepted descriptor, whatever failed *)
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
    end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
      go ()
  in
  go ()

let begin_drain rl =
  if not rl.draining then begin
    rl.draining <- true;
    R.unregister rl.rs.reactor rl.srv.listen_fd;
    (* turn the wait line away *)
    Queue.iter
      (fun conn ->
        if not conn.closed then begin
          conn.parked <- false;
          Atomic.decr rl.rs.r_waiting;
          shed rl conn P.err_shutdown "server is draining";
          flush_conn rl conn
        end)
      rl.wait_line;
    Queue.clear rl.wait_line;
    (* live sessions: in-flight queries finish (their completion sheds);
       everyone else gets the typed goodbye now *)
    let to_shed =
      Hashtbl.fold
        (fun _ conn acc ->
          if conn.inflight = None && conn.phase <> Closing then conn :: acc
          else acc)
        rl.conns []
    in
    List.iter
      (fun conn ->
        shed rl conn P.err_shutdown "server is draining";
        flush_conn rl conn)
      to_shed
  end

(* Periodic housekeeping, once per poll round (<= 0.25 s apart):
   handshake and idle deadlines, slow-client write stalls, query
   wall-clock budgets. *)
let sweep rl =
  let t = rl.srv in
  let now = Obs.now_s () in
  let actions =
    Hashtbl.fold
      (fun _ conn acc ->
        if conn.closed then acc
        else if
          (not (P.Outbuf.is_empty conn.out))
          && now -. conn.last_write_progress > t.cfg.write_timeout_s
        then `Drop_slow conn :: acc
        else if conn.phase = Handshaking && (not conn.parked)
                && now -. conn.born > 5.0
        then `Handshake_timeout conn :: acc
        else
          match conn.inflight with
          | Some token ->
            if t.cfg.query_timeout_s <> None
               && Rdb.Cancel.deadline_passed token
            then `Fire_timeout token :: acc
            else acc
          | None ->
            (match t.cfg.idle_timeout_s with
             | Some idle
               when conn.phase = Ready
                    && Queue.is_empty conn.pending
                    && now -. conn.last_activity > idle ->
               (* [service] drains every complete buffered frame before
                  the reactor sleeps, so bytes still in the decoder here
                  are a partial frame from a stalled client — idle, not
                  in progress *)
               `Reap_idle conn :: acc
             | _ -> acc))
      rl.conns []
  in
  List.iter
    (function
      | `Drop_slow conn ->
        Obs.Counter.incr m_slow_client_drops;
        close_conn rl conn
      | `Handshake_timeout conn ->
        Obs.Counter.incr m_proto_errors;
        shed rl conn P.err_proto "timed out waiting for HELLO";
        flush_conn rl conn
      | `Fire_timeout token -> fire_wallclock_timeout t token
      | `Reap_idle conn ->
        (* last-instant check: bytes that raced the deadline into the
           kernel buffer are served, not reaped *)
        (match
           R.wait_fd conn.c_fd ~read:true ~write:false ~timeout_s:0.
         with
         | Some _ -> ()
         | None ->
           Obs.Counter.incr m_reaped_idle;
           shed rl conn P.err_idle "idle connection reaped";
           flush_conn rl conn))
    actions;
  admit_from_wait_line rl

let reactor_loop t rs =
  let rl =
    { srv = t; rs; conns = Hashtbl.create 256; wait_line = Queue.create ();
      rdbuf = Bytes.create (64 * 1024); draining = false }
  in
  R.register rs.reactor t.listen_fd ~read:true ~write:false
    (fun _ -> accept_burst rl);
  (* The deadline sweep walks every connection, so it must not run per
     event batch: a busy client wakes the loop thousands of times a
     second and would drag a large parked herd through the scan each
     time. Every deadline it enforces has >= 100 ms of slack, so 10 Hz
     is plenty; wait-line admission stays per-iteration because freed
     slots should seat waiters promptly and it is O(1) when nobody
     waits. *)
  let next_sweep = ref 0. in
  let rec loop () =
    if Atomic.get t.stop then begin_drain rl;
    if rl.draining && Hashtbl.length rl.conns = 0 then ()
    else begin
      R.step rs.reactor ~timeout_s:0.25;
      let now = Obs.now_s () in
      if now >= !next_sweep then begin
        sweep rl;
        next_sweep := now +. 0.1
      end
      else admit_from_wait_line rl;
      loop ()
    end
  in
  loop ();
  R.close rs.reactor

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found ->
      raise
        (Unix.Unix_error
           (Unix.EINVAL, "resolve", host)))

let start cfg wh =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  (try Unix.bind listen_fd (Unix.ADDR_INET (resolve_host cfg.host, cfg.port))
   with e -> (try Unix.close listen_fd with _ -> ()); raise e);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  let rs =
    { reactor = R.create (); rthread = None; r_active = Atomic.make 0;
      r_waiting = Atomic.make 0; r_conns = Atomic.make 0 }
  in
  let t =
    { cfg; wh; listen_fd; bound_port; stop = Atomic.make false; next_id = 1;
      rs }
  in
  Obs.register_gauge "server.active" (fun () -> Atomic.get rs.r_active);
  Obs.register_gauge "server.waiting" (fun () -> Atomic.get rs.r_waiting);
  Obs.register_gauge "server.connections" (fun () ->
      Atomic.get rs.r_conns);
  rs.rthread <- Some (Thread.create (fun () -> reactor_loop t rs) ());
  t

let wait (t : t) =
  Option.iter Thread.join t.rs.rthread;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())

let run cfg wh =
  let t = start cfg wh in
  (* Signal handlers set the flag only: [request_stop] may take locks or
     write to the reactor's wake pipe, and a handler can preempt a thread
     mid-critical-section. The reactor polls the flag within a
     quarter-second slice. *)
  let stop _ = Atomic.set t.stop true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Printf.printf
    "xomatiq server listening on %s:%d (event-driven, max-clients=%d \
     queue-depth=%d window=%d jobs=%d)\n%!"
    cfg.host (port t)
    cfg.max_clients cfg.queue_depth cfg.pipeline_window (Conc.Pool.jobs ());
  wait t;
  Printf.printf "xomatiq server drained\n%!"
