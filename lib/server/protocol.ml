let version = "xomatiq/1"
let max_frame_default = 16 * 1024 * 1024

let tag_hello = 'H'
let tag_query = 'Q'
let tag_sql = 'S'
let tag_explain = 'E'
let tag_analyze = 'A'
let tag_ping = 'P'
let tag_metrics = 'M'
let tag_cancel = 'C'
let tag_set = 'T'
let tag_bye = 'B'
let tag_welcome = 'W'
let tag_rows = 'R'
let tag_done = 'D'
let tag_ok = 'O'
let tag_metrics_reply = 'm'
let tag_error = 'X'

let err_busy = "SERVER_BUSY"
let err_timeout = "TIMEOUT"
let err_canceled = "CANCELED"
let err_query = "QUERY_ERROR"
let err_proto = "PROTO_ERROR"
let err_shutdown = "SHUTTING_DOWN"
let err_idle = "IDLE_TIMEOUT"
let err_internal = "INTERNAL_ERROR"
let err_read_only = "READ_ONLY"

let error_payload ~code message = code ^ " " ^ message

let split_first_space s =
  match String.index_opt s ' ' with
  | Some i ->
    (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> (s, "")

let parse_error_payload = split_first_space

type summary = {
  sum_rows : int;
  sum_exec_ms : float;
  sum_cached : bool;
  sum_seq : int;
}

let done_payload s =
  Printf.sprintf "rows=%d exec_ms=%.3f cache_hit=%d seq=%d" s.sum_rows
    s.sum_exec_ms
    (if s.sum_cached then 1 else 0)
    s.sum_seq

let parse_done_payload payload =
  let s =
    ref { sum_rows = 0; sum_exec_ms = 0.; sum_cached = false; sum_seq = 0 }
  in
  List.iter
    (fun kv ->
      match String.index_opt kv '=' with
      | None -> ()
      | Some i ->
        let k = String.sub kv 0 i
        and v = String.sub kv (i + 1) (String.length kv - i - 1) in
        (match k with
         | "rows" ->
           Option.iter (fun n -> s := { !s with sum_rows = n })
             (int_of_string_opt v)
         | "exec_ms" ->
           Option.iter (fun f -> s := { !s with sum_exec_ms = f })
             (float_of_string_opt v)
         | "cache_hit" -> s := { !s with sum_cached = v = "1" }
         | "seq" ->
           Option.iter (fun n -> s := { !s with sum_seq = n })
             (int_of_string_opt v)
         | _ -> ()))
    (String.split_on_char ' ' payload);
  !s

type request =
  | Hello of string
  | Query of string
  | Sql of string
  | Explain of string
  | Analyze of string
  | Ping of string
  | Metrics
  | Cancel
  | Set of string * string
  | Bye

let request_of_frame (tag, payload) =
  if tag = tag_hello then Ok (Hello payload)
  else if tag = tag_query then Ok (Query payload)
  else if tag = tag_sql then Ok (Sql payload)
  else if tag = tag_explain then Ok (Explain payload)
  else if tag = tag_analyze then Ok (Analyze payload)
  else if tag = tag_ping then Ok (Ping payload)
  else if tag = tag_metrics then Ok Metrics
  else if tag = tag_cancel then Ok Cancel
  else if tag = tag_bye then Ok Bye
  else if tag = tag_set then begin
    let name, value = split_first_space payload in
    if name = "" then Error "SET needs an option name"
    else Ok (Set (name, value))
  end
  else Error (Printf.sprintf "unknown request tag %C" tag)

(* Read/write classification shared by the read-only server gate and the
   routed client's replica/primary routing. EXPLAIN only plans (never
   executes), so it is a read whatever it wraps; EXPLAIN ANALYZE
   executes what it wraps. Unparseable text counts as a write: the
   primary renders the authoritative parse error either way, and a
   routed client must not ship statements it cannot classify to a
   replica. *)
let rec stmt_is_read (s : Rdb.Sql_ast.stmt) =
  match s with
  | Rdb.Sql_ast.Select_stmt _ | Rdb.Sql_ast.Query_stmt _
  | Rdb.Sql_ast.Explain _ ->
    true
  | Rdb.Sql_ast.Explain_analyze inner -> stmt_is_read inner
  | _ -> false

let sql_is_read text =
  match Rdb.Sql_parser.parse text with
  | s -> stmt_is_read s
  | exception _ -> false

(* ------------------------------------------------------------------ *)
(* Frame I/O                                                           *)
(* ------------------------------------------------------------------ *)

exception Closed
exception Proto_error of string
exception Io_timeout

let now () = Rdb.Obs.now_s ()

(* poll() with an absolute deadline; [infinity] waits forever. Goes
   through the Conc.Reactor stub rather than Unix.select so descriptors
   numbered past FD_SETSIZE (which a client process holding a thousand
   connections reaches immediately) keep working. *)
let select_io fd ~read ~deadline =
  let timeout =
    if deadline = infinity then infinity
    else
      let left = deadline -. now () in
      if left <= 0. then raise Io_timeout else left
  in
  match
    Conc.Reactor.wait_fd fd ~read ~write:(not read) ~timeout_s:timeout
  with
  | Some _ -> ()
  | None -> if deadline <> infinity && now () >= deadline then raise Io_timeout

let wait_readable fd ~deadline =
  match select_io fd ~read:true ~deadline with
  | () -> true
  | exception Io_timeout -> false

let wait_writable fd ~deadline = select_io fd ~read:false ~deadline

let rec read_into fd buf off len ~deadline ~started =
  if len = 0 then ()
  else
    match Unix.read fd buf off len with
    | 0 ->
      if started then raise (Proto_error "connection closed mid-frame")
      else raise Closed
    | n -> read_into fd buf (off + n) (len - n) ~deadline ~started:true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      select_io fd ~read:true ~deadline;
      read_into fd buf off len ~deadline ~started
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      read_into fd buf off len ~deadline ~started
    | exception
        Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      if started then raise (Proto_error "connection reset mid-frame")
      else raise Closed

let read_frame ?(deadline = infinity) ?(max_frame = max_frame_default) fd =
  let header = Bytes.create 5 in
  read_into fd header 0 5 ~deadline ~started:false;
  let tag = Bytes.get header 0 in
  let len = Int32.to_int (Bytes.get_int32_be header 1) in
  if len < 0 || len > max_frame then
    raise
      (Proto_error
         (Printf.sprintf "frame of %d bytes exceeds the %d byte limit" len
            max_frame));
  let payload = Bytes.create len in
  read_into fd payload 0 len ~deadline ~started:true;
  (tag, Bytes.unsafe_to_string payload)

let rec write_from fd buf off len ~deadline =
  if len = 0 then ()
  else
    match Unix.write fd buf off len with
    | n -> write_from fd buf (off + n) (len - n) ~deadline
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      select_io fd ~read:false ~deadline;
      write_from fd buf off len ~deadline
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      write_from fd buf off len ~deadline

let write_frame ?(deadline = infinity) fd tag payload =
  let len = String.length payload in
  let frame = Bytes.create (5 + len) in
  Bytes.set frame 0 tag;
  Bytes.set_int32_be frame 1 (Int32.of_int len);
  Bytes.blit_string payload 0 frame 5 len;
  write_from fd frame 0 (5 + len) ~deadline

let frame_bytes payload = 5 + String.length payload

(* ------------------------------------------------------------------ *)
(* Incremental frame decoding                                          *)
(* ------------------------------------------------------------------ *)

(* The reactor feeds whatever bytes one read() returned; the decoder
   assembles frames across arbitrary split points (a frame delivered one
   byte at a time, two frames in one read, a header straddling reads all
   behave identically to whole-frame delivery — the test suite asserts
   exactly that). One growable buffer per connection is reused for the
   connection's whole lifetime: bytes compact to the front once consumed
   instead of allocating fresh Bytes per frame. *)
module Decoder = struct
  type t = {
    max_frame : int;
    mutable buf : Bytes.t;
    mutable start : int;  (* first unconsumed byte *)
    mutable stop : int;   (* one past the last valid byte *)
  }

  let create ?(max_frame = max_frame_default) () =
    { max_frame; buf = Bytes.create 4096; start = 0; stop = 0 }

  let buffered t = t.stop - t.start

  (* Is a complete frame buffered? Reports [true] for an oversized or
     negative header length too, so the caller's [next] raises the
     protocol error instead of waiting for bytes that must not come. *)
  let frame_ready t =
    buffered t >= 5
    && (let len = Int32.to_int (Bytes.get_int32_be t.buf (t.start + 1)) in
        len < 0 || len > t.max_frame || buffered t >= 5 + len)

  let compact t =
    if t.start > 0 then begin
      Bytes.blit t.buf t.start t.buf 0 (buffered t);
      t.stop <- buffered t;
      t.start <- 0
    end

  let ensure_room t n =
    if Bytes.length t.buf - t.stop < n then begin
      compact t;
      if Bytes.length t.buf - t.stop < n then begin
        let want = buffered t + n in
        let cap = max (2 * Bytes.length t.buf) want in
        let nbuf = Bytes.create cap in
        Bytes.blit t.buf 0 nbuf 0 t.stop;
        t.buf <- nbuf
      end
    end

  let feed t src off len =
    ensure_room t len;
    Bytes.blit src off t.buf t.stop len;
    t.stop <- t.stop + len

  let feed_string t src =
    let len = String.length src in
    ensure_room t len;
    Bytes.blit_string src 0 t.buf t.stop len;
    t.stop <- t.stop + len

  (* The next complete frame, or [None] while bytes are missing. An
     oversized length is rejected from the header alone — before its
     payload is buffered — exactly like [read_frame]. *)
  let next t =
    if buffered t < 5 then None
    else begin
      let tag = Bytes.get t.buf t.start in
      let len = Int32.to_int (Bytes.get_int32_be t.buf (t.start + 1)) in
      if len < 0 || len > t.max_frame then
        raise
          (Proto_error
             (Printf.sprintf "frame of %d bytes exceeds the %d byte limit"
                len t.max_frame));
      if buffered t < 5 + len then None
      else begin
        let payload = Bytes.sub_string t.buf (t.start + 5) len in
        t.start <- t.start + 5 + len;
        if t.start = t.stop then begin
          t.start <- 0;
          t.stop <- 0
        end;
        Some (tag, payload)
      end
    end
end

(* ------------------------------------------------------------------ *)
(* Coalesced frame writing                                             *)
(* ------------------------------------------------------------------ *)

(* Per-connection outbound buffer: response frames accumulate here and
   [flush] pushes as much as one round of write() syscalls will take.
   Many small frames — a pipelined burst of ROWS chunks and DONE
   trailers — leave in one syscall instead of one per frame, which is
   the wire-side half of the pipelining win. The buffer is reused
   (compacted, never shrunk below its initial size) across the
   connection's lifetime. *)
module Outbuf = struct
  type t = {
    mutable buf : Bytes.t;
    mutable start : int;
    mutable stop : int;
  }

  let initial = 8192

  let create () = { buf = Bytes.create initial; start = 0; stop = 0 }

  let length t = t.stop - t.start

  let is_empty t = t.stop = t.start

  let ensure_room t n =
    if Bytes.length t.buf - t.stop < n then begin
      if t.start > 0 then begin
        Bytes.blit t.buf t.start t.buf 0 (length t);
        t.stop <- length t;
        t.start <- 0
      end;
      if Bytes.length t.buf - t.stop < n then begin
        let cap = max (2 * Bytes.length t.buf) (length t + n) in
        let nbuf = Bytes.create cap in
        Bytes.blit t.buf 0 nbuf 0 t.stop;
        t.buf <- nbuf
      end
    end

  let add_frame t tag payload =
    let len = String.length payload in
    ensure_room t (5 + len);
    Bytes.set t.buf t.stop tag;
    Bytes.set_int32_be t.buf (t.stop + 1) (Int32.of_int len);
    Bytes.blit_string payload 0 t.buf (t.stop + 5) len;
    t.stop <- t.stop + 5 + len

  (* Write until the buffer empties or the socket stops accepting.
     [`Blocked] means bytes remain and the caller should poll for write
     readiness; EPIPE/ECONNRESET surface as [Closed]. *)
  let flush t fd =
    let rec go () =
      if is_empty t then begin
        t.start <- 0;
        t.stop <- 0;
        `All
      end
      else
        match Unix.write fd t.buf t.start (length t) with
        | n ->
          t.start <- t.start + n;
          go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
          `Blocked
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          raise Closed
    in
    go ()
end
