let version = "xomatiq/1"
let max_frame_default = 16 * 1024 * 1024

let tag_hello = 'H'
let tag_query = 'Q'
let tag_sql = 'S'
let tag_explain = 'E'
let tag_analyze = 'A'
let tag_ping = 'P'
let tag_metrics = 'M'
let tag_cancel = 'C'
let tag_set = 'T'
let tag_bye = 'B'
let tag_welcome = 'W'
let tag_rows = 'R'
let tag_done = 'D'
let tag_ok = 'O'
let tag_metrics_reply = 'm'
let tag_error = 'X'

let err_busy = "SERVER_BUSY"
let err_timeout = "TIMEOUT"
let err_canceled = "CANCELED"
let err_query = "QUERY_ERROR"
let err_proto = "PROTO_ERROR"
let err_shutdown = "SHUTTING_DOWN"
let err_idle = "IDLE_TIMEOUT"
let err_internal = "INTERNAL_ERROR"

let error_payload ~code message = code ^ " " ^ message

let split_first_space s =
  match String.index_opt s ' ' with
  | Some i ->
    (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> (s, "")

let parse_error_payload = split_first_space

type summary = {
  sum_rows : int;
  sum_exec_ms : float;
  sum_cached : bool;
}

let done_payload s =
  Printf.sprintf "rows=%d exec_ms=%.3f cache_hit=%d" s.sum_rows s.sum_exec_ms
    (if s.sum_cached then 1 else 0)

let parse_done_payload payload =
  let s = ref { sum_rows = 0; sum_exec_ms = 0.; sum_cached = false } in
  List.iter
    (fun kv ->
      match String.index_opt kv '=' with
      | None -> ()
      | Some i ->
        let k = String.sub kv 0 i
        and v = String.sub kv (i + 1) (String.length kv - i - 1) in
        (match k with
         | "rows" ->
           Option.iter (fun n -> s := { !s with sum_rows = n })
             (int_of_string_opt v)
         | "exec_ms" ->
           Option.iter (fun f -> s := { !s with sum_exec_ms = f })
             (float_of_string_opt v)
         | "cache_hit" -> s := { !s with sum_cached = v = "1" }
         | _ -> ()))
    (String.split_on_char ' ' payload);
  !s

type request =
  | Hello of string
  | Query of string
  | Sql of string
  | Explain of string
  | Analyze of string
  | Ping of string
  | Metrics
  | Cancel
  | Set of string * string
  | Bye

let request_of_frame (tag, payload) =
  if tag = tag_hello then Ok (Hello payload)
  else if tag = tag_query then Ok (Query payload)
  else if tag = tag_sql then Ok (Sql payload)
  else if tag = tag_explain then Ok (Explain payload)
  else if tag = tag_analyze then Ok (Analyze payload)
  else if tag = tag_ping then Ok (Ping payload)
  else if tag = tag_metrics then Ok Metrics
  else if tag = tag_cancel then Ok Cancel
  else if tag = tag_bye then Ok Bye
  else if tag = tag_set then begin
    let name, value = split_first_space payload in
    if name = "" then Error "SET needs an option name"
    else Ok (Set (name, value))
  end
  else Error (Printf.sprintf "unknown request tag %C" tag)

(* ------------------------------------------------------------------ *)
(* Frame I/O                                                           *)
(* ------------------------------------------------------------------ *)

exception Closed
exception Proto_error of string
exception Io_timeout

let now () = Rdb.Obs.now_s ()

(* select() with an absolute deadline; [infinity] waits forever. *)
let select_io fd ~read ~deadline =
  let timeout =
    if deadline = infinity then -1.
    else
      let left = deadline -. now () in
      if left <= 0. then raise Io_timeout else left
  in
  let rd = if read then [ fd ] else [] in
  let wr = if read then [] else [ fd ] in
  match Unix.select rd wr [] timeout with
  | [], [], [] -> raise Io_timeout
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let wait_readable fd ~deadline =
  match select_io fd ~read:true ~deadline with
  | () -> true
  | exception Io_timeout -> false

let rec read_into fd buf off len ~deadline ~started =
  if len = 0 then ()
  else
    match Unix.read fd buf off len with
    | 0 ->
      if started then raise (Proto_error "connection closed mid-frame")
      else raise Closed
    | n -> read_into fd buf (off + n) (len - n) ~deadline ~started:true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      select_io fd ~read:true ~deadline;
      read_into fd buf off len ~deadline ~started
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      read_into fd buf off len ~deadline ~started
    | exception
        Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      if started then raise (Proto_error "connection reset mid-frame")
      else raise Closed

let read_frame ?(deadline = infinity) ?(max_frame = max_frame_default) fd =
  let header = Bytes.create 5 in
  read_into fd header 0 5 ~deadline ~started:false;
  let tag = Bytes.get header 0 in
  let len = Int32.to_int (Bytes.get_int32_be header 1) in
  if len < 0 || len > max_frame then
    raise
      (Proto_error
         (Printf.sprintf "frame of %d bytes exceeds the %d byte limit" len
            max_frame));
  let payload = Bytes.create len in
  read_into fd payload 0 len ~deadline ~started:true;
  (tag, Bytes.unsafe_to_string payload)

let rec write_from fd buf off len ~deadline =
  if len = 0 then ()
  else
    match Unix.write fd buf off len with
    | n -> write_from fd buf (off + n) (len - n) ~deadline
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      select_io fd ~read:false ~deadline;
      write_from fd buf off len ~deadline
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      write_from fd buf off len ~deadline

let write_frame ?(deadline = infinity) fd tag payload =
  let len = String.length payload in
  let frame = Bytes.create (5 + len) in
  Bytes.set frame 0 tag;
  Bytes.set_int32_be frame 1 (Int32.of_int len);
  Bytes.blit_string payload 0 frame 5 len;
  write_from fd frame 0 (5 + len) ~deadline

let frame_bytes payload = 5 + String.length payload
