(** Synthetic biological datasets, format-faithful to the real sources.

    Real ENZYME/EMBL/Swiss-Prot dumps are unavailable offline; these
    generators reproduce the flat-file grammar and, crucially, the
    cross-database correlation structure the paper's queries exercise:

    - EMBL CDS features may carry an ["EC number"] qualifier referencing
      a generated E NZYME entry (join query, Figs. 10-12);
    - E NZYME DR lines reference generated Swiss-Prot accessions;
    - a configurable fraction of EMBL and Swiss-Prot entries is planted
      with the keyword "cdc6" (keyword query, Fig. 8);
    - a configurable fraction of E NZYME catalytic-activity lines
      contains the word "ketone" (sub-tree query, Figs. 7/9).

    All output is a deterministic function of the seed. *)

type universe = {
  enzymes : Datahounds.Enzyme.t list;
  embl_entries : Datahounds.Embl.t list;
  sprot_entries : Datahounds.Swissprot.t list;
  citations : Datahounds.Medline.t list;
}

type config = {
  seed : int;
  n_enzymes : int;
  n_embl : int;
  n_sprot : int;
  n_citations : int;     (** MEDLINE-like literature entries *)
  cdc6_rate : float;     (** fraction of EMBL / Swiss-Prot entries planted with "cdc6" *)
  ketone_rate : float;   (** fraction of enzymes whose activity mentions "ketone" *)
  ec_link_rate : float;  (** fraction of EMBL entries carrying an EC-number qualifier *)
  seq_length : int;      (** residue count per generated sequence *)
}

val default_config : config
(** seed 42, 200 enzymes, 300 EMBL, 300 Swiss-Prot, 0 citations, 2% cdc6,
    5% ketone, 60% EC links, 180-residue sequences. *)

val generate : config -> universe

val enzyme_flat : universe -> string
(** Render the enzymes as an ENZYME flat file. *)

val embl_flat : universe -> string
val swissprot_flat : universe -> string

val genbank_flat : universe -> string
(** The EMBL entries of the universe serialised in GenBank format —
    one logical dataset available through two heterogeneous formats,
    which is exactly the incompatibility Data Hounds exists to absorb. *)

val medline_flat : universe -> string

val mutate_enzymes :
  seed:int -> fraction:float -> Datahounds.Enzyme.t list ->
  Datahounds.Enzyme.t list
(** Return a copy where roughly [fraction] of the entries have a changed
    description (simulating a source update for sync experiments). *)

val load_universe :
  ?analyze:bool -> Datahounds.Warehouse.t -> universe -> (unit, string) result
(** Register the three sources and harvest all flat files into the
    warehouse (EMBL entries go to their division's collection).
    [analyze] is {!Datahounds.Warehouse.harvest}'s: by default each
    harvest leaves fresh table statistics behind. *)
