type universe = {
  enzymes : Datahounds.Enzyme.t list;
  embl_entries : Datahounds.Embl.t list;
  sprot_entries : Datahounds.Swissprot.t list;
  citations : Datahounds.Medline.t list;
}

type config = {
  seed : int;
  n_enzymes : int;
  n_embl : int;
  n_sprot : int;
  n_citations : int;
  cdc6_rate : float;
  ketone_rate : float;
  ec_link_rate : float;
  seq_length : int;
}

let default_config =
  { seed = 42; n_enzymes = 200; n_embl = 300; n_sprot = 300; n_citations = 0;
    cdc6_rate = 0.02; ketone_rate = 0.05; ec_link_rate = 0.6;
    seq_length = 180 }

(* ---------------- vocabulary ---------------- *)

let substrates =
  [ "alcohol"; "aldehyde"; "peptidylglycine"; "glutamate"; "pyruvate";
    "lactate"; "glucose"; "fructose"; "citrate"; "malate"; "succinate";
    "glycerol"; "choline"; "histidine"; "tyrosine"; "ornithine" ]

let enzyme_classes =
  [ "dehydrogenase"; "monooxygenase"; "kinase"; "transferase"; "hydrolase";
    "isomerase"; "ligase"; "reductase"; "oxidase"; "synthase" ]

let cofactor_pool = [ "Copper"; "Zinc"; "Iron"; "FAD"; "NAD(+)"; "Magnesium"; "Heme" ]

let organisms =
  [ "Drosophila melanogaster"; "Caenorhabditis elegans"; "Homo sapiens";
    "Mus musculus"; "Saccharomyces cerevisiae"; "Bos taurus";
    "Xenopus laevis"; "Rattus norvegicus" ]

let keyword_pool =
  [ "cell cycle"; "replication"; "transcription"; "metabolism"; "kinase";
    "membrane"; "mitochondrion"; "nucleus"; "signal"; "transport";
    "oxidoreductase"; "glycolysis"; "apoptosis"; "chromatin" ]

let comment_templates =
  [ "The enzyme is highly specific for its substrate";
    "Activity is strongly inhibited by chelating agents";
    "Requires a divalent cation for full activity";
    "The penultimate residue determines substrate preference";
    "Also acts more slowly on related compounds" ]

let disease_pool =
  [ ("Glutaricaciduria", "231670"); ("Phenylketonuria", "261600");
    ("Alkaptonuria", "203500"); ("Galactosemia", "230400") ]

let gene_names =
  [ "adh1"; "pgm2"; "cdk7"; "rad51"; "mcm2"; "pol2"; "tor1"; "hsp70" ]

(* ---------------- pieces ---------------- *)

let ec_number i =
  Printf.sprintf "%d.%d.%d.%d" (1 + i mod 6) (1 + (i / 6) mod 20)
    (1 + (i / 120) mod 25) (1 + i / 3000)

let sprot_accession i = Printf.sprintf "P%05d" (10000 + i)

let embl_accession i = Printf.sprintf "AB%06d" (100000 + i)

let nucleotides = [| 'a'; 'c'; 'g'; 't' |]
let amino_acids = "ACDEFGHIKLMNPQRSTVWY"

let random_dna rng n =
  String.init n (fun _ -> nucleotides.(Rng.int rng 4))

let random_protein rng n =
  String.init n (fun _ -> amino_acids.[Rng.int rng (String.length amino_acids)])

(* ---------------- generators ---------------- *)

let gen_enzyme rng ~index ~ketone ~sprot_accessions : Datahounds.Enzyme.t =
  let substrate = Rng.pick rng substrates in
  let cls = Rng.pick rng enzyme_classes in
  let description = String.capitalize_ascii substrate ^ " " ^ cls in
  let alternate_names =
    List.init (Rng.int rng 3) (fun _ ->
        String.capitalize_ascii (Rng.pick rng substrates) ^ " " ^ Rng.pick rng enzyme_classes)
  in
  let activity =
    if ketone then
      Printf.sprintf "A %s + NAD(+) = a ketone derivative + NADH" substrate
    else
      Printf.sprintf "%s + O(2) = oxidized %s + H(2)O"
        (String.capitalize_ascii substrate) substrate
  in
  let catalytic_activities =
    activity :: (if Rng.bool rng 0.3 then [ Printf.sprintf "Also converts %s esters" substrate ] else [])
  in
  let cofactors = Rng.sample rng (Rng.int rng 3) cofactor_pool in
  let comments = Rng.sample rng (Rng.int rng 3) comment_templates in
  let prosite_refs =
    List.init (Rng.int rng 2) (fun k -> Printf.sprintf "PDOC%05d" (80 + index + k))
  in
  let swissprot_refs =
    List.map
      (fun (acc, name) -> { Datahounds.Enzyme.accession = acc; entry_name = name })
      (Rng.sample rng (1 + Rng.int rng 3) sprot_accessions)
  in
  let diseases =
    if Rng.bool rng 0.15 then
      let d, mim = Rng.pick rng disease_pool in
      [ { Datahounds.Enzyme.disease_description = d; mim_id = mim } ]
    else []
  in
  { ec_number = ec_number index; description; alternate_names;
    catalytic_activities; cofactors; comments; prosite_refs; swissprot_refs;
    diseases }

let gen_embl rng cfg ~index ~cdc6 ~ec_numbers : Datahounds.Embl.t =
  let organism = Rng.pick rng organisms in
  let gene = if cdc6 then "cdc6" else Rng.pick rng gene_names in
  let description =
    Printf.sprintf "%s %s gene%s" organism gene
      (if Rng.bool rng 0.5 then ", complete cds" else "")
  in
  let keywords =
    (if cdc6 then [ "cdc6" ] else [])
    @ Rng.sample rng (1 + Rng.int rng 3) keyword_pool
  in
  let seq_length = cfg.seq_length + Rng.int rng cfg.seq_length in
  let ec_qualifier =
    if ec_numbers <> [] && Rng.bool rng cfg.ec_link_rate then
      [ { Datahounds.Embl.qualifier_type = "EC number";
          qualifier_value = Rng.pick rng ec_numbers } ]
    else []
  in
  let db_refs =
    List.map
      (fun (q : Datahounds.Embl.qualifier) -> ("ENZYME", q.qualifier_value))
      ec_qualifier
  in
  let features =
    [ { Datahounds.Embl.feature_key = "source";
        location = Printf.sprintf "1..%d" seq_length;
        qualifiers =
          [ { qualifier_type = "organism"; qualifier_value = organism } ] };
      { feature_key = "CDS";
        location = Printf.sprintf "%d..%d" (1 + Rng.int rng 20) (seq_length - Rng.int rng 20);
        qualifiers =
          { Datahounds.Embl.qualifier_type = "gene"; qualifier_value = gene }
          :: ec_qualifier } ]
  in
  { accession = embl_accession index;
    division = "INV";
    sequence_length = seq_length;
    description; keywords; organism; db_refs; features;
    sequence = random_dna rng seq_length }

let journal_pool =
  [ "Nature Structural Biology"; "Journal of Molecular Biology";
    "Nucleic Acids Research"; "Bioinformatics"; "Genome Research" ]

let gen_citation rng ~index ~ec_numbers : Datahounds.Medline.t =
  let substrate = Rng.pick rng substrates and cls = Rng.pick rng enzyme_classes in
  let ec_refs =
    if ec_numbers <> [] && Rng.bool rng 0.7 then
      Rng.sample rng (1 + Rng.int rng 2) ec_numbers
    else []
  in
  { pmid = string_of_int (11000000 + index);
    title = Printf.sprintf "Structural studies of %s %s" substrate cls;
    abstract =
      Printf.sprintf
        "We characterise the %s acting on %s and discuss its role in %s."
        cls substrate (Rng.pick rng keyword_pool);
    authors =
      List.init (1 + Rng.int rng 3) (fun k -> Printf.sprintf "Author%d %c" (index + k) 'A');
    journal = Rng.pick rng journal_pool;
    year = 1998 + Rng.int rng 6;
    mesh_terms = Rng.sample rng (1 + Rng.int rng 3) keyword_pool;
    ec_refs }

let gen_sprot rng cfg ~index ~cdc6 : Datahounds.Swissprot.t =
  let organism = Rng.pick rng organisms in
  let gene = if cdc6 then Some "cdc6" else if Rng.bool rng 0.7 then Some (Rng.pick rng gene_names) else None in
  let protein_name =
    Printf.sprintf "%s %s"
      (String.capitalize_ascii (Rng.pick rng substrates))
      (Rng.pick rng enzyme_classes)
  in
  let keywords =
    (if cdc6 then [ "cdc6" ] else [])
    @ Rng.sample rng (1 + Rng.int rng 3) keyword_pool
  in
  let seq_length = cfg.seq_length + Rng.int rng cfg.seq_length in
  { entry_name =
      Printf.sprintf "%s_%s"
        (String.uppercase_ascii (String.sub protein_name 0 (min 4 (String.length protein_name))))
        (String.uppercase_ascii
           (String.concat ""
              (List.filteri (fun i _ -> i < 5)
                 (String.split_on_char ' ' organism |> List.concat_map (fun w ->
                      if w = "" then [] else [ String.make 1 w.[0] ])))))
    ^ string_of_int index;
    accession = sprot_accession index;
    protein_name;
    gene;
    organism;
    keywords;
    db_refs = [ ("EMBL", embl_accession (index mod max 1 cfg.n_embl)) ];
    seq_length;
    sequence = random_protein rng seq_length }

let generate cfg =
  let rng = Rng.create cfg.seed in
  let sprot_entries =
    List.init cfg.n_sprot (fun i ->
        gen_sprot rng cfg ~index:i ~cdc6:(Rng.bool rng cfg.cdc6_rate))
  in
  let sprot_accessions =
    List.map (fun (p : Datahounds.Swissprot.t) -> (p.accession, p.entry_name))
      sprot_entries
  in
  (* limit the DR pool so enzymes share references *)
  let ref_pool = Rng.sample rng (max 5 (cfg.n_sprot / 4)) sprot_accessions in
  let enzymes =
    List.init cfg.n_enzymes (fun i ->
        gen_enzyme rng ~index:i ~ketone:(Rng.bool rng cfg.ketone_rate)
          ~sprot_accessions:ref_pool)
  in
  let ec_numbers = List.map (fun (e : Datahounds.Enzyme.t) -> e.ec_number) enzymes in
  let ec_pool = Rng.sample rng (max 3 (cfg.n_enzymes / 3)) ec_numbers in
  let embl_entries =
    List.init cfg.n_embl (fun i ->
        gen_embl rng cfg ~index:i ~cdc6:(Rng.bool rng cfg.cdc6_rate)
          ~ec_numbers:ec_pool)
  in
  let citations =
    List.init cfg.n_citations (fun i -> gen_citation rng ~index:i ~ec_numbers:ec_pool)
  in
  { enzymes; embl_entries; sprot_entries; citations }

let enzyme_flat u = Datahounds.Enzyme.render u.enzymes
let embl_flat u = Datahounds.Embl.render u.embl_entries
let swissprot_flat u = Datahounds.Swissprot.render u.sprot_entries

let genbank_flat u =
  Datahounds.Genbank.render (List.map Datahounds.Genbank.of_embl u.embl_entries)

let medline_flat u = Datahounds.Medline.render u.citations

let mutate_enzymes ~seed ~fraction enzymes =
  let rng = Rng.create seed in
  List.map
    (fun (e : Datahounds.Enzyme.t) ->
      if Rng.bool rng fraction then
        { e with description = e.description ^ " (revised)" }
      else e)
    enzymes

let load_universe ?analyze wh u =
  let sources_and_text =
    [ (Datahounds.Warehouse.enzyme_source, enzyme_flat u);
      (Datahounds.Warehouse.embl_source ~division:"inv", embl_flat u);
      (Datahounds.Warehouse.swissprot_source, swissprot_flat u) ]
    @ (if u.citations = [] then []
       else [ (Datahounds.Warehouse.medline_source, medline_flat u) ])
  in
  let rec go = function
    | [] -> Ok ()
    | (src, text) :: rest ->
      Datahounds.Warehouse.register_source wh src;
      (match Datahounds.Warehouse.harvest ?analyze wh src text with
       | Ok _ -> go rest
       | Error _ as e -> e)
  in
  go sources_and_text
