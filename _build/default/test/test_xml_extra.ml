(* Second-wave XML substrate tests: pretty printing, DTD attribute
   machinery, path evaluation details, escape torture cases. *)

let check = Alcotest.check
let fail = Alcotest.fail
let int = Alcotest.int
let string = Alcotest.string
let bool = Alcotest.bool
let list = Alcotest.list

(* ---------------- printer ---------------- *)

let test_pretty_preserves_content () =
  (* pretty printing inserts whitespace only between element-only
     children; data content must survive a parse round trip *)
  let docs =
    [ "<r><a>text with  spaces</a><b><c>x</c><c>y</c></b></r>";
      "<r>mixed <b>bold</b> tail</r>";
      "<r a=\"v&quot;w\"><empty/></r>" ]
  in
  List.iter
    (fun src ->
      let e = Gxml.Parser.parse_element src in
      let pretty = Gxml.Printer.element_to_string ~pretty:true e in
      let reparsed = Gxml.Parser.parse_element ~keep_ws:false pretty in
      (* compare with whitespace-insensitive normalisation on both sides *)
      let strip e =
        Gxml.Parser.parse_element ~keep_ws:false (Gxml.Printer.element_to_string e)
      in
      check bool (Printf.sprintf "pretty roundtrip %s" src) true
        (Gxml.Tree.equal_element (strip e) reparsed))
    docs

let test_compact_is_exact () =
  let e = Gxml.Parser.parse_element "<r><a>one</a> <b>two</b></r>" in
  let printed = Gxml.Printer.element_to_string e in
  let e2 = Gxml.Parser.parse_element printed in
  check bool "byte-level identity after reparse" true (Gxml.Tree.equal_element e e2)

let test_document_serialisation () =
  let doc =
    Gxml.Tree.document ~version:"1.0" ~encoding:"UTF-8" ~doctype:"r"
      (Gxml.Tree.element "r" [])
  in
  let s = Gxml.Printer.document_to_string doc in
  check bool "has declaration" true
    (String.length s > 5 && String.sub s 0 5 = "<?xml");
  let reparsed = Gxml.Parser.parse_document s in
  check (Alcotest.option string) "doctype kept" (Some "r") reparsed.doctype

(* ---------------- escape torture ---------------- *)

let test_escape_torture () =
  let nasty = "a&b<c>d\"e'f&amp;g]]>h" in
  check string "unescape . escape = id on text" nasty
    (Gxml.Escape.unescape (Gxml.Escape.escape_text nasty));
  check string "attr escaping" nasty
    (Gxml.Escape.unescape (Gxml.Escape.escape_attr nasty));
  (* escaped text parses back *)
  let e = Gxml.Tree.element "t" [ Gxml.Tree.text nasty ] in
  let e2 = Gxml.Parser.parse_element (Gxml.Printer.element_to_string e) in
  check string "through element" nasty (Gxml.Tree.text_content e2)

let escape_roundtrip_prop =
  QCheck.Test.make ~count:300 ~name:"escape/unescape identity on printable strings"
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 40)
              (QCheck.Gen.char_range ' ' '~'))
    (fun s ->
      Gxml.Escape.unescape (Gxml.Escape.escape_text s) = s
      && Gxml.Escape.unescape (Gxml.Escape.escape_attr s) = s)

(* ---------------- DTD attributes ---------------- *)

let attr_dtd =
  Gxml.Dtd.parse
    {|<!ELEMENT r (item*)>
<!ELEMENT item (#PCDATA)>
<!ATTLIST item
  kind (alpha | beta) "alpha"
  id ID #IMPLIED
  version CDATA #FIXED "1"
  label NMTOKEN #REQUIRED>|}

let violations src =
  List.map
    (fun v -> Format.asprintf "%a" Gxml.Dtd.pp_violation v)
    (Gxml.Dtd.validate attr_dtd (Gxml.Parser.parse_element ~keep_ws:false src))

let test_dtd_attr_enum () =
  check (list string) "valid enum" []
    (violations {|<r><item kind="beta" label="x">t</item></r>|});
  check bool "invalid enum rejected" true
    (violations {|<r><item kind="gamma" label="x">t</item></r>|} <> [])

let test_dtd_attr_fixed () =
  check (list string) "fixed value ok" []
    (violations {|<r><item version="1" label="x">t</item></r>|});
  check bool "wrong fixed value" true
    (violations {|<r><item version="2" label="x">t</item></r>|} <> [])

let test_dtd_attr_required () =
  check bool "missing required label" true (violations {|<r><item kind="alpha">t</item></r>|} <> []);
  check bool "bad nmtoken" true
    (violations {|<r><item label="has space">t</item></r>|} <> [])

let test_dtd_undeclared_attr () =
  check bool "undeclared attribute" true
    (violations {|<r><item label="x" mystery="1">t</item></r>|} <> [])

let test_dtd_attr_default_roundtrip () =
  (* printing preserves defaults and types *)
  let printed = Gxml.Dtd.to_string attr_dtd in
  let reparsed = Gxml.Dtd.parse printed in
  check string "fixpoint" printed (Gxml.Dtd.to_string reparsed)

(* ---------------- paths ---------------- *)

let sample =
  Gxml.Parser.parse_element ~keep_ws:false
    {|<root>
        <items>
          <item id="1"><name>alpha</name></item>
          <item id="2"><name>beta</name><extra>e</extra></item>
        </items>
        <misc>stray text</misc>
      </root>|}

let strings_of p = Gxml.Path.eval_strings sample (Gxml.Path.parse p)

let test_path_wildcards () =
  check int "star counts children of items" 2
    (List.length (Gxml.Path.eval sample (Gxml.Path.parse "items/*")));
  check (list string) "star then name" [ "alpha"; "beta" ] (strings_of "items/*/name");
  check (list string) "descendant star leaf values" [ "alpha" ]
    (strings_of {|//item[@id = "1"]/name|})

let test_path_text_node () =
  check (list string) "text() on child" [ "stray text" ] (strings_of "misc/text()")

let test_path_exists_predicate () =
  check (list string) "exists predicate" [ "beta" ] (strings_of "//item[extra]/name");
  check (list string) "negative exists is unmatched" []
    (strings_of "//item[nonexistent]/name")

let test_path_attr_of_descendants () =
  check (list string) "all ids" [ "1"; "2" ] (strings_of "//item/@id");
  check (list string) "direct attribute" [ "1" ] (strings_of "items/item[1]/@id")

(* ---------------- tree normalisation ---------------- *)

let test_normalize_merges_text () =
  let e =
    { Gxml.Tree.tag = "t"; attrs = [];
      children = [ Gxml.Tree.Text "a"; Gxml.Tree.Text "b"; Gxml.Tree.Text "" ] }
  in
  match (Gxml.Tree.normalize e).children with
  | [ Gxml.Tree.Text "ab" ] -> ()
  | _ -> fail "adjacent text not merged"

let test_equal_modulo_attr_order () =
  let a = Gxml.Parser.parse_element {|<t x="1" y="2"/>|} in
  let b = Gxml.Parser.parse_element {|<t y="2" x="1"/>|} in
  check bool "attr order irrelevant" true (Gxml.Tree.equal_element a b);
  let c = Gxml.Parser.parse_element {|<t x="1" y="3"/>|} in
  check bool "value differs" false (Gxml.Tree.equal_element a c)

let test_child_order_significant () =
  let a = Gxml.Parser.parse_element "<t><a/><b/></t>" in
  let b = Gxml.Parser.parse_element "<t><b/><a/></t>" in
  check bool "child order matters" false (Gxml.Tree.equal_element a b)

(* ---------------- generative DTD property ----------------

   Build a random DTD (a DAG of element declarations so content models
   terminate), derive a document that conforms to it by construction, and
   check the validator accepts it; then break the document and check the
   validator objects. *)

module Dtd_gen = struct
  open QCheck.Gen

  let names = [| "e0"; "e1"; "e2"; "e3"; "e4"; "e5" |]

  (* element i may only reference elements with larger indexes *)
  let particle_gen i =
    let deeper = Array.to_list (Array.sub names (i + 1) (Array.length names - i - 1)) in
    let elem = map (fun n -> Gxml.Dtd.Elem n) (oneofl deeper) in
    let unary =
      let* p = elem in
      oneofl [ Gxml.Dtd.Opt p; Gxml.Dtd.Star p; Gxml.Dtd.Plus p; p ]
    in
    frequency
      [ (2, unary);
        (2, map (fun ps -> Gxml.Dtd.Seq ps) (list_size (int_range 2 3) unary));
        (1, map (fun ps -> Gxml.Dtd.Choice ps) (list_size (int_range 2 3) elem)) ]

  let dtd_gen : Gxml.Dtd.t QCheck.Gen.t =
    let n = Array.length names in
    let* models =
      flatten_l
        (List.init n (fun i ->
             if i >= n - 2 then return Gxml.Dtd.Pcdata
             else
               frequency
                 [ (3, map (fun p -> Gxml.Dtd.Children p) (particle_gen i));
                   (1, return Gxml.Dtd.Pcdata);
                   (1, return Gxml.Dtd.Empty_content) ]))
    in
    return
      { Gxml.Dtd.root_name = Some names.(0);
        elements = List.mapi (fun i m -> (names.(i), m)) models;
        attributes = [] }

  (* derive a conforming document from the content models *)
  let rec derive dtd rng name : Gxml.Tree.element =
    let children =
      match Gxml.Dtd.element_model dtd name with
      | Some Gxml.Dtd.Pcdata -> [ Gxml.Tree.Text "x" ]
      | Some Gxml.Dtd.Empty_content | Some Gxml.Dtd.Any_content | None -> []
      | Some (Gxml.Dtd.Mixed allowed) ->
        Gxml.Tree.Text "t"
        :: List.map (fun n -> Gxml.Tree.Element (derive dtd rng n)) allowed
      | Some (Gxml.Dtd.Children p) -> derive_particle dtd rng p
    in
    Gxml.Tree.element name children

  and derive_particle dtd rng p : Gxml.Tree.node list =
    match p with
    | Gxml.Dtd.Elem n -> [ Gxml.Tree.Element (derive dtd rng n) ]
    | Gxml.Dtd.Seq ps -> List.concat_map (derive_particle dtd rng) ps
    | Gxml.Dtd.Choice ps ->
      derive_particle dtd rng (List.nth ps (Random.State.int rng (List.length ps)))
    | Gxml.Dtd.Opt p ->
      if Random.State.bool rng then derive_particle dtd rng p else []
    | Gxml.Dtd.Star p ->
      List.concat
        (List.init (Random.State.int rng 3) (fun _ -> derive_particle dtd rng p))
    | Gxml.Dtd.Plus p ->
      List.concat
        (List.init (1 + Random.State.int rng 2) (fun _ -> derive_particle dtd rng p))
end

let dtd_generated_docs_validate =
  QCheck.Test.make ~count:150 ~name:"derived documents conform to their DTD"
    (QCheck.make
       (QCheck.Gen.pair Dtd_gen.dtd_gen QCheck.Gen.int)
       ~print:(fun (dtd, _) -> Gxml.Dtd.to_string dtd))
    (fun (dtd, seed) ->
      let rng = Random.State.make [| seed |] in
      let doc = Dtd_gen.derive dtd rng "e0" in
      match Gxml.Dtd.validate dtd doc with
      | [] ->
        (* an undeclared intruder must be flagged *)
        let broken =
          { doc with
            Gxml.Tree.children =
              doc.Gxml.Tree.children
              @ [ Gxml.Tree.Element (Gxml.Tree.element "intruder" []) ] }
        in
        Gxml.Dtd.validate dtd broken <> []
      | vs ->
        QCheck.Test.fail_reportf "conforming doc rejected: %s / %s"
          (Format.asprintf "%a" Gxml.Dtd.pp_violation (List.hd vs))
          (Gxml.Printer.element_to_string doc))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "xml-extra"
    [ ("printer",
       [ Alcotest.test_case "pretty preserves content" `Quick test_pretty_preserves_content;
         Alcotest.test_case "compact exact" `Quick test_compact_is_exact;
         Alcotest.test_case "document declaration" `Quick test_document_serialisation ]);
      ("escape",
       [ Alcotest.test_case "torture" `Quick test_escape_torture ]);
      qsuite "escape-props" [ escape_roundtrip_prop ];
      ("dtd-attrs",
       [ Alcotest.test_case "enum" `Quick test_dtd_attr_enum;
         Alcotest.test_case "fixed" `Quick test_dtd_attr_fixed;
         Alcotest.test_case "required+nmtoken" `Quick test_dtd_attr_required;
         Alcotest.test_case "undeclared" `Quick test_dtd_undeclared_attr;
         Alcotest.test_case "print fixpoint" `Quick test_dtd_attr_default_roundtrip ]);
      ("paths-extra",
       [ Alcotest.test_case "wildcards" `Quick test_path_wildcards;
         Alcotest.test_case "text()" `Quick test_path_text_node;
         Alcotest.test_case "exists predicate" `Quick test_path_exists_predicate;
         Alcotest.test_case "attributes" `Quick test_path_attr_of_descendants ]);
      qsuite "dtd-gen-props" [ dtd_generated_docs_validate ];
      ("tree",
       [ Alcotest.test_case "normalize" `Quick test_normalize_merges_text;
         Alcotest.test_case "attr order" `Quick test_equal_modulo_attr_order;
         Alcotest.test_case "child order" `Quick test_child_order_significant ]);
    ]
