test/test_xml_extra.ml: Alcotest Array Format Gxml List Printf QCheck QCheck_alcotest Random String
