test/test_datahounds.mli:
