test/test_xomatiq.ml: Alcotest Datahounds Gxml Lazy List Option Printf QCheck QCheck_alcotest String Workload Xomatiq
