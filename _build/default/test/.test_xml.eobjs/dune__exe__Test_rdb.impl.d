test/test_rdb.ml: Alcotest Array Filename Fun Hashtbl List Printf QCheck QCheck_alcotest Rdb Seq String Sys Unix
