test/test_observability.mli:
