test/test_observability.ml: Alcotest Datahounds Filename Lazy List Option Printf Rdb String Sys Workload Xomatiq
