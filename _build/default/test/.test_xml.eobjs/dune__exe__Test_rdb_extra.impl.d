test/test_rdb_extra.ml: Alcotest Array Filename Fun List Option Printf QCheck QCheck_alcotest Rdb Seq String Sys Unix
