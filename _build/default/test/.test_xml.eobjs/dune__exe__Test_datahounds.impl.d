test/test_datahounds.ml: Alcotest Datahounds Filename Fun Gxml List Printf QCheck QCheck_alcotest Rdb String Sys Workload Xomatiq
