test/test_rdb_extra.mli:
