test/test_xomatiq.mli:
