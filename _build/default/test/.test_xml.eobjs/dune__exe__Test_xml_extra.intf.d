test/test_xml_extra.mli:
