test/test_xml.ml: Alcotest Format Gxml List Printf QCheck QCheck_alcotest String
