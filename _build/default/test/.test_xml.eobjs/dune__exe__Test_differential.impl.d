test/test_differential.ml: Alcotest Datahounds List Printf Workload Xomatiq
