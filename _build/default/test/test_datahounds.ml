(* Tests for the Data Hounds pipeline: flat-file parsing, XML
   transformation, DTD validity, shredding, reconstruction, sync. *)

let check = Alcotest.check
let fail = Alcotest.fail
let int = Alcotest.int
let string = Alcotest.string
let bool = Alcotest.bool
let list = Alcotest.list

module D = Datahounds

(* ---------------- line format ---------------- *)

let test_line_format_split () =
  let text = "ID   one\nDE   first\n//\nID   two\nDE   second\nDE   more\n//\n" in
  let entries = D.Line_format.split_entries text in
  check int "two entries" 2 (List.length entries);
  let e2 = List.nth entries 1 in
  check (list string) "DE fields" [ "second"; "more" ] (D.Line_format.fields e2 "DE");
  check (Alcotest.option string) "joined" (Some "second more")
    (D.Line_format.joined e2 "DE")

let test_line_format_errors () =
  (match D.Line_format.split_entries "ID   x\n" with
   | exception D.Line_format.Format_error _ -> ()
   | _ -> fail "unterminated entry must fail");
  match D.Line_format.split_entries "I\n//\n" with
  | exception D.Line_format.Format_error _ -> ()
  | entries ->
    (* "I" is 1 char: too short for a code *)
    ignore entries;
    fail "short line must fail"

let test_line_format_roundtrip () =
  let text = "ID   a\nDE   hello world\n//\n" in
  let entries = D.Line_format.split_entries text in
  check string "render roundtrip" text (D.Line_format.render entries)

(* ---------------- ENZYME ---------------- *)

let paper_entry () =
  match D.Enzyme.parse_many D.Enzyme.sample_entry with
  | [ e ] -> e
  | l -> fail (Printf.sprintf "expected 1 entry, got %d" (List.length l))

let test_enzyme_paper_figure2 () =
  let e = paper_entry () in
  check string "EC number" "1.14.17.3" e.ec_number;
  check string "description" "Peptidylglycine monooxygenase" e.description;
  check (list string) "alternate names"
    [ "Peptidyl alpha-amidating enzyme"; "Peptidylglycine 2-hydroxylase" ]
    e.alternate_names;
  check int "one multi-line catalytic activity" 1 (List.length e.catalytic_activities);
  check bool "activity joined across lines" true
    (let a = List.hd e.catalytic_activities in
     String.length a > 40
     && String.sub a 0 15 = "Peptidylglycine");
  check (list string) "cofactors" [ "Copper" ] e.cofactors;
  check int "two comments" 2 (List.length e.comments);
  check (list string) "prosite" [ "PDOC00080" ] e.prosite_refs;
  check int "five swissprot refs" 5 (List.length e.swissprot_refs);
  (match e.swissprot_refs with
   | { accession = "P10731"; entry_name = "AMD_BOVIN" } :: _ -> ()
   | _ -> fail "first swissprot ref wrong");
  check int "no diseases" 0 (List.length e.diseases)

let test_enzyme_roundtrip () =
  let e = paper_entry () in
  let text = D.Enzyme.render [ e ] in
  match D.Enzyme.parse_many text with
  | [ e2 ] ->
    check string "ec" e.ec_number e2.ec_number;
    check (list string) "an" e.alternate_names e2.alternate_names;
    check int "sp refs" (List.length e.swissprot_refs) (List.length e2.swissprot_refs);
    check (list string) "comments" e.comments e2.comments
  | _ -> fail "roundtrip produced wrong entry count"

let test_enzyme_xml_figure6 () =
  let e = paper_entry () in
  let doc = D.Enzyme_xml.to_document e in
  (* Fig. 6 structure *)
  check string "root" "hlx_enzyme" doc.root.tag;
  check bool "valid against Fig. 5 DTD" true
    (Gxml.Dtd.valid D.Enzyme_xml.dtd doc.root);
  (* roundtrip through the XML representation *)
  (match D.Enzyme_xml.of_document doc with
   | Ok e2 -> check string "xml roundtrip ec" e.ec_number e2.ec_number
   | Error m -> fail m);
  (* and through serialized text *)
  let printed = Gxml.Printer.document_to_string ~pretty:true doc in
  let reparsed = Gxml.Parser.parse_document ~keep_ws:false printed in
  match D.Enzyme_xml.of_document reparsed with
  | Ok e3 ->
    check string "print/parse ec" e.ec_number e3.ec_number;
    check int "print/parse refs" 5 (List.length e3.swissprot_refs)
  | Error m -> fail m

let test_enzyme_bad_entries () =
  let bad =
    [ "DE   no id line.\n//\n";
      "ID   1.1.1.1\n//\n" (* no DE *) ]
  in
  List.iter
    (fun text ->
      match D.Enzyme.parse_many text with
      | exception D.Enzyme.Bad_entry _ -> ()
      | _ -> fail (Printf.sprintf "expected Bad_entry for %S" text))
    bad

(* ---------------- EMBL ---------------- *)

let embl_entry () =
  match D.Embl.parse_many D.Embl.sample_entry with
  | [ e ] -> e
  | l -> fail (Printf.sprintf "expected 1 entry, got %d" (List.length l))

let test_embl_parse () =
  let e = embl_entry () in
  check string "accession" "AB000101" e.accession;
  check string "division" "INV" e.division;
  check int "length" 180 e.sequence_length;
  check bool "cdc6 keyword" true (List.mem "cdc6" e.keywords);
  check int "two features" 2 (List.length e.features);
  let cds = List.nth e.features 1 in
  check string "cds key" "CDS" cds.feature_key;
  check int "cds qualifiers" 2 (List.length cds.qualifiers);
  (match List.find_opt (fun (q : D.Embl.qualifier) -> q.qualifier_type = "EC number")
           cds.qualifiers with
   | Some q -> check string "EC number qualifier" "1.14.17.3" q.qualifier_value
   | None -> fail "missing EC number qualifier");
  check int "sequence length matches" 180 (String.length e.sequence)

let test_embl_roundtrip () =
  let e = embl_entry () in
  match D.Embl.parse_many (D.Embl.render [ e ]) with
  | [ e2 ] ->
    check string "acc" e.accession e2.accession;
    check string "sequence" e.sequence e2.sequence;
    check int "features" (List.length e.features) (List.length e2.features);
    let q1 = (List.nth e.features 1).qualifiers in
    let q2 = (List.nth e2.features 1).qualifiers in
    check bool "qualifiers roundtrip" true (q1 = q2)
  | _ -> fail "roundtrip entry count"

let test_embl_xml () =
  let e = embl_entry () in
  let doc = D.Embl_xml.to_document e in
  check bool "valid against DTD" true (Gxml.Dtd.valid D.Embl_xml.dtd doc.root);
  match D.Embl_xml.of_document doc with
  | Ok e2 ->
    check string "roundtrip acc" e.accession e2.accession;
    check bool "features equal" true (e.features = e2.features)
  | Error m -> fail m

(* ---------------- Swiss-Prot ---------------- *)

let sprot_entry () =
  match D.Swissprot.parse_many D.Swissprot.sample_entry with
  | [ p ] -> p
  | l -> fail (Printf.sprintf "expected 1 entry, got %d" (List.length l))

let test_swissprot_parse () =
  let p = sprot_entry () in
  check string "accession" "P10731" p.accession;
  check string "entry name" "AMD_BOVIN" p.entry_name;
  check (Alcotest.option string) "gene" (Some "cdc6") p.gene;
  check int "length" 108 p.seq_length;
  check int "sequence" 108 (String.length p.sequence);
  check int "db refs" 2 (List.length p.db_refs)

let test_swissprot_roundtrip_and_xml () =
  let p = sprot_entry () in
  (match D.Swissprot.parse_many (D.Swissprot.render [ p ]) with
   | [ p2 ] ->
     check string "acc" p.accession p2.accession;
     check string "seq" p.sequence p2.sequence
   | _ -> fail "roundtrip entry count");
  let doc = D.Swissprot_xml.to_document p in
  check bool "valid DTD" true (Gxml.Dtd.valid D.Swissprot_xml.dtd doc.root);
  match D.Swissprot_xml.of_document doc with
  | Ok p3 -> check bool "full record equal" true (p = p3)
  | Error m -> fail m

let fresh_warehouse () = D.Warehouse.create ()

(* ---------------- GenBank ---------------- *)

let genbank_entry () =
  match D.Genbank.parse_many D.Genbank.sample_entry with
  | [ g ] -> g
  | l -> fail (Printf.sprintf "expected 1 entry, got %d" (List.length l))

let test_genbank_parse () =
  let g = genbank_entry () in
  check string "accession" "AB000102" g.accession;
  check string "definition" "Caenorhabditis elegans mcm2 gene, partial sequence"
    g.definition;
  check int "length" 120 g.sequence_length;
  check (list string) "keywords" [ "mcm2"; "replication licensing" ] g.keywords;
  check string "organism" "Caenorhabditis elegans" g.organism;
  check int "sequence parsed" 120 (String.length g.sequence);
  (match g.features with
   | [ _source; cds ] ->
     check string "cds" "CDS" cds.feature_key;
     (match
        List.find_opt
          (fun (q : D.Embl.qualifier) -> q.qualifier_type = "EC number")
          cds.qualifiers
      with
      | Some q -> check string "ec qualifier" "3.6.4.12" q.qualifier_value
      | None -> fail "missing EC qualifier")
   | _ -> fail "expected 2 features")

let test_genbank_roundtrip () =
  let g = genbank_entry () in
  match D.Genbank.parse_many (D.Genbank.render [ g ]) with
  | [ g2 ] -> check bool "roundtrip equal" true (g = g2)
  | _ -> fail "roundtrip entry count"

let test_genbank_of_embl_consistent () =
  (* the same logical entry through both formats yields the same data *)
  let e =
    match D.Embl.parse_many D.Embl.sample_entry with
    | [ e ] -> e
    | _ -> fail "fixture"
  in
  let g = D.Genbank.of_embl e in
  (match D.Genbank.parse_many (D.Genbank.render [ g ]) with
   | [ g2 ] ->
     check string "accession survives" e.accession g2.accession;
     check string "sequence survives" e.sequence g2.sequence;
     check bool "features survive" true (e.features = g2.features)
   | _ -> fail "roundtrip");
  let doc = D.Genbank_xml.to_document g in
  check bool "valid against GenBank DTD" true (Gxml.Dtd.valid D.Genbank_xml.dtd doc.root);
  match D.Genbank_xml.of_document doc with
  | Ok g3 -> check bool "xml roundtrip" true (g = g3)
  | Error m -> fail m

(* ---------------- MEDLINE ---------------- *)

let medline_entry () =
  match D.Medline.parse_many D.Medline.sample_entry with
  | [ m ] -> m
  | l -> fail (Printf.sprintf "expected 1 citation, got %d" (List.length l))

let test_medline_parse () =
  let m = medline_entry () in
  check string "pmid" "11972062" m.pmid;
  check bool "title" true
    (String.length m.title > 10 && String.sub m.title 0 7 = "Crystal");
  check bool "abstract continuation joined" true
    (String.length m.abstract > 60);
  check (list string) "authors" [ "Prigge ST"; "Amzel LM" ] m.authors;
  check int "year" 2002 m.year;
  check (list string) "ec refs" [ "1.14.17.3" ] m.ec_refs

let test_medline_roundtrip_and_xml () =
  let m = medline_entry () in
  (match D.Medline.parse_many (D.Medline.render [ m ]) with
   | [ m2 ] -> check bool "flat roundtrip" true (m = m2)
   | _ -> fail "roundtrip count");
  let doc = D.Medline_xml.to_document m in
  check bool "valid against DTD" true (Gxml.Dtd.valid D.Medline_xml.dtd doc.root);
  match D.Medline_xml.of_document doc with
  | Ok m3 -> check bool "xml roundtrip" true (m = m3)
  | Error m -> fail m

let test_medline_warehouse_join () =
  (* cross-domain: citations join ENZYME through the EC reference *)
  let wh = fresh_warehouse () in
  D.Warehouse.register_source wh D.Warehouse.enzyme_source;
  D.Warehouse.register_source wh D.Warehouse.medline_source;
  (match D.Warehouse.harvest wh D.Warehouse.enzyme_source D.Enzyme.sample_entry with
   | Ok 1 -> ()
   | _ -> fail "enzyme load");
  (match D.Warehouse.harvest wh D.Warehouse.medline_source D.Medline.sample_entry with
   | Ok 1 -> ()
   | _ -> fail "medline load");
  let result =
    Xomatiq.Engine.run_text wh
      {|FOR $e IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry,
          $c IN document("hlx_medline.all")/hlx_citation/db_entry
        WHERE $c//ec_reference = $e/enzyme_id
        RETURN $e/enzyme_id, $c/title|}
  in
  check int "one joined citation" 1 (List.length result.rows);
  (match result.rows with
   | [ [ ec; _title ] ] -> check string "joined on the right EC" "1.14.17.3" ec
   | _ -> fail "row shape")

(* ---------------- shredding ---------------- *)

let test_shred_and_reconstruct () =
  let wh = fresh_warehouse () in
  D.Warehouse.register_source wh D.Warehouse.enzyme_source;
  let e = paper_entry () in
  let doc = D.Enzyme_xml.to_document e in
  (match D.Warehouse.load_document wh ~collection:D.Enzyme_xml.collection
           ~name:"1.14.17.3" doc with
   | Ok () -> ()
   | Error m -> fail m);
  match D.Warehouse.get_document wh ~collection:D.Enzyme_xml.collection
          ~name:"1.14.17.3" with
  | None -> fail "document not found after load"
  | Some doc2 ->
    check bool "reconstruct equals original" true
      (Gxml.Tree.equal_element doc.root doc2.root)

let test_shred_generic_schema () =
  let wh = fresh_warehouse () in
  D.Warehouse.register_source wh D.Warehouse.enzyme_source;
  let e = paper_entry () in
  ignore
    (D.Warehouse.load_document wh ~collection:D.Enzyme_xml.collection
       ~name:e.ec_number (D.Enzyme_xml.to_document e));
  let db = D.Warehouse.db wh in
  let one sql =
    match Rdb.Database.query_exn db sql with
    | _, [ [| Rdb.Value.Int n |] ] -> n
    | _ -> fail ("bad result for " ^ sql)
  in
  check int "one document" 1 (one "SELECT COUNT(*) FROM xml_doc");
  check bool "nodes exist" true (one "SELECT COUNT(*) FROM xml_node" > 20);
  (* inline values: enzyme_id element carries its text *)
  let _, rows =
    Rdb.Database.query_exn db
      "SELECT n.sval FROM xml_node n, xml_path p WHERE n.path_id = p.path_id \
       AND p.path = '/hlx_enzyme/db_entry/enzyme_id'"
  in
  (match rows with
   | [ [| Rdb.Value.Text v |] ] -> check string "inline sval" "1.14.17.3" v
   | _ -> fail "enzyme_id node not found");
  (* keywords present, lowercased *)
  check bool "keyword rows" true
    (one "SELECT COUNT(*) FROM xml_keyword WHERE word = 'peptidylglycine'" >= 1);
  (* region encoding sanity: every node's last_desc >= its own id *)
  check int "region encoding holds" 0
    (one "SELECT COUNT(*) FROM xml_node WHERE last_desc < node_id")

let test_shred_order_preserved () =
  (* Two alternate names must come back in document order. *)
  let wh = fresh_warehouse () in
  D.Warehouse.register_source wh D.Warehouse.enzyme_source;
  let e = paper_entry () in
  ignore
    (D.Warehouse.load_document wh ~collection:D.Enzyme_xml.collection
       ~name:e.ec_number (D.Enzyme_xml.to_document e));
  match D.Warehouse.get_document wh ~collection:D.Enzyme_xml.collection
          ~name:e.ec_number with
  | None -> fail "missing"
  | Some doc ->
    (match D.Enzyme_xml.of_document doc with
     | Ok e2 ->
       check (list string) "alternate names in order"
         [ "Peptidyl alpha-amidating enzyme"; "Peptidylglycine 2-hydroxylase" ]
         e2.alternate_names;
       check bool "swissprot refs in order" true
         (List.map (fun (r : D.Enzyme.swissprot_ref) -> r.accession) e2.swissprot_refs
          = [ "P10731"; "P19021"; "P14925"; "P08478"; "P12890" ])
     | Error m -> fail m)

let test_sequence_not_keyword_indexed () =
  let wh = fresh_warehouse () in
  let src = D.Warehouse.embl_source ~division:"inv" in
  D.Warehouse.register_source wh src;
  (match D.Warehouse.harvest wh src D.Embl.sample_entry with
   | Ok 1 -> ()
   | Ok n -> fail (Printf.sprintf "expected 1 doc, got %d" n)
   | Error m -> fail m);
  let db = D.Warehouse.db wh in
  (* the DNA string is one long word that must not be in the keyword table;
     but description words must be *)
  let count sql =
    match Rdb.Database.query_exn db sql with
    | _, [ [| Rdb.Value.Int n |] ] -> n
    | _ -> fail "bad count"
  in
  check bool "description keyword present" true
    (count "SELECT COUNT(*) FROM xml_keyword WHERE word = 'cdc6'" >= 1);
  let _, seq_rows =
    Rdb.Database.query_exn db
      "SELECT n.is_seq FROM xml_node n, xml_path p WHERE n.path_id = p.path_id \
       AND p.path = '/hlx_n_sequence/db_entry/sequence'"
  in
  (match seq_rows with
   | [ [| Rdb.Value.Int 1 |] ] -> ()
   | _ -> fail "sequence node not flagged is_seq");
  (* no keyword attached to the sequence node *)
  check int "sequence yields no keywords" 0
    (count
       "SELECT COUNT(*) FROM xml_keyword k, xml_node n, xml_path p \
        WHERE k.node_id = n.node_id AND k.doc_id = n.doc_id \
        AND n.path_id = p.path_id AND p.path = '/hlx_n_sequence/db_entry/sequence'")

let test_path_ids_matching () =
  let wh = fresh_warehouse () in
  D.Warehouse.register_source wh D.Warehouse.enzyme_source;
  let e = paper_entry () in
  ignore
    (D.Warehouse.load_document wh ~collection:D.Enzyme_xml.collection
       ~name:e.ec_number (D.Enzyme_xml.to_document e));
  let db = D.Warehouse.db wh in
  let ids pat = D.Shred.path_ids_matching db (Gxml.Path.parse pat) in
  check int "descendant enzyme_id" 1 (List.length (ids "//enzyme_id"));
  check int "absolute path" 1 (List.length (ids "hlx_enzyme/db_entry/enzyme_id"));
  check int "attribute path" 1 (List.length (ids "//reference/@name"));
  check int "no match" 0 (List.length (ids "//nonexistent"));
  check bool "wildcard matches several" true (List.length (ids "hlx_enzyme/db_entry/*") > 3)

let test_delete_document () =
  let wh = fresh_warehouse () in
  D.Warehouse.register_source wh D.Warehouse.enzyme_source;
  let e = paper_entry () in
  ignore
    (D.Warehouse.load_document wh ~collection:D.Enzyme_xml.collection
       ~name:e.ec_number (D.Enzyme_xml.to_document e));
  check bool "delete" true
    (D.Shred.delete_document (D.Warehouse.db wh) ~collection:D.Enzyme_xml.collection
       ~name:e.ec_number);
  let db = D.Warehouse.db wh in
  let count sql =
    match Rdb.Database.query_exn db sql with
    | _, [ [| Rdb.Value.Int n |] ] -> n
    | _ -> fail "bad count"
  in
  check int "no nodes left" 0 (count "SELECT COUNT(*) FROM xml_node");
  check int "no keywords left" 0 (count "SELECT COUNT(*) FROM xml_keyword")

(* shred/reconstruct roundtrip over random documents *)
let shred_roundtrip_prop =
  let tag_gen = QCheck.Gen.oneofl [ "a"; "b"; "item"; "entry"; "list" ] in
  let text_gen = QCheck.Gen.oneofl [ "v"; "12"; "3.5"; "hello world"; "x & y" ] in
  let rec elem_gen depth =
    let open QCheck.Gen in
    let attrs =
      list_size (int_bound 2) (pair (oneofl [ "k"; "id"; "t" ]) text_gen)
      >|= fun l -> List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) l
    in
    let children =
      if depth = 0 then return []
      else
        list_size (int_bound 3)
          (frequency
             [ (1, text_gen >|= fun t -> Gxml.Tree.Text t);
               (2, elem_gen (depth - 1) >|= fun e -> Gxml.Tree.Element e) ])
    in
    map3 (fun tag attrs kids -> Gxml.Tree.element ~attrs tag kids) tag_gen attrs children
  in
  QCheck.Test.make ~count:80 ~name:"shred then reconstruct is identity"
    (QCheck.make (elem_gen 3) ~print:Gxml.Printer.element_to_string)
    (fun root ->
      let wh = fresh_warehouse () in
      let doc = Gxml.Tree.document root in
      match D.Warehouse.load_document ~validate:false wh ~collection:"c" ~name:"d" doc with
      | Error m -> QCheck.Test.fail_report m
      | Ok () ->
        (match D.Warehouse.get_document wh ~collection:"c" ~name:"d" with
         | None -> false
         | Some doc2 -> Gxml.Tree.equal_element (Gxml.Tree.normalize root) doc2.root))

(* ---------------- sync ---------------- *)

let universe_docs enzymes =
  List.map
    (fun (e : D.Enzyme.t) -> (e.ec_number, D.Enzyme_xml.to_document e))
    enzymes

let three_enzymes () =
  match D.Enzyme.parse_many D.Enzyme.sample_entry with
  | [ e ] ->
    [ e;
      { e with ec_number = "2.2.2.2"; description = "Second enzyme" };
      { e with ec_number = "3.3.3.3"; description = "Third enzyme" } ]
  | _ -> fail "fixture"

let test_sync_initial_and_idempotent () =
  let wh = fresh_warehouse () in
  D.Warehouse.register_source wh D.Warehouse.enzyme_source;
  let docs = universe_docs (three_enzymes ()) in
  (match D.Sync.sync_documents wh ~collection:D.Enzyme_xml.collection docs with
   | Ok r ->
     check int "added" 3 r.added;
     check int "unchanged" 0 r.unchanged
   | Error m -> fail m);
  (* the same snapshot again: nothing added twice *)
  match D.Sync.sync_documents wh ~collection:D.Enzyme_xml.collection docs with
  | Ok r ->
    check int "idempotent: added" 0 r.added;
    check int "idempotent: updated" 0 r.updated;
    check int "idempotent: unchanged" 3 r.unchanged;
    check int "still 3 documents" 3
      (D.Warehouse.document_count wh ~collection:D.Enzyme_xml.collection)
  | Error m -> fail m

let test_sync_update_and_remove () =
  let wh = fresh_warehouse () in
  D.Warehouse.register_source wh D.Warehouse.enzyme_source;
  let enzymes = three_enzymes () in
  ignore (D.Sync.sync_documents wh ~collection:D.Enzyme_xml.collection
            (universe_docs enzymes));
  let enzymes' =
    match enzymes with
    | a :: b :: _c :: [] -> [ a; { b with description = "Second enzyme revised" } ]
    | _ -> fail "fixture"
  in
  let events = ref [] in
  let trigger ev = events := ev :: !events in
  (match D.Sync.sync_documents ~remove_missing:true ~triggers:[ trigger ] wh
           ~collection:D.Enzyme_xml.collection (universe_docs enzymes') with
   | Ok r ->
     check int "updated" 1 r.updated;
     check int "removed" 1 r.removed;
     check int "unchanged" 1 r.unchanged;
     check int "two trigger events" 2 (List.length !events)
   | Error m -> fail m);
  check int "two documents remain" 2
    (D.Warehouse.document_count wh ~collection:D.Enzyme_xml.collection);
  (* the update took effect *)
  match D.Warehouse.get_document wh ~collection:D.Enzyme_xml.collection ~name:"2.2.2.2" with
  | Some doc ->
    (match D.Enzyme_xml.of_document doc with
     | Ok e -> check string "revised description" "Second enzyme revised" e.description
     | Error m -> fail m)
  | None -> fail "2.2.2.2 missing"

let test_sync_rejects_duplicates () =
  let wh = fresh_warehouse () in
  D.Warehouse.register_source wh D.Warehouse.enzyme_source;
  let e = paper_entry () in
  let doc = D.Enzyme_xml.to_document e in
  match D.Sync.sync_documents wh ~collection:D.Enzyme_xml.collection
          [ ("x", doc); ("x", doc) ] with
  | Error _ -> ()
  | Ok _ -> fail "duplicate names must be rejected"

(* ---------------- workload generators ---------------- *)

let test_generator_deterministic () =
  let cfg = { Workload.Genbio.default_config with n_enzymes = 20; n_embl = 20; n_sprot = 20 } in
  let u1 = Workload.Genbio.generate cfg in
  let u2 = Workload.Genbio.generate cfg in
  check bool "same seed, same universe" true
    (Workload.Genbio.enzyme_flat u1 = Workload.Genbio.enzyme_flat u2
     && Workload.Genbio.embl_flat u1 = Workload.Genbio.embl_flat u2);
  let u3 = Workload.Genbio.generate { cfg with seed = 43 } in
  check bool "different seed differs" true
    (Workload.Genbio.enzyme_flat u1 <> Workload.Genbio.enzyme_flat u3)

let test_generator_flat_files_parse () =
  let cfg = { Workload.Genbio.default_config with n_enzymes = 30; n_embl = 30; n_sprot = 30 } in
  let u = Workload.Genbio.generate cfg in
  check int "enzymes parse back" 30
    (List.length (D.Enzyme.parse_many (Workload.Genbio.enzyme_flat u)));
  check int "embl parse back" 30
    (List.length (D.Embl.parse_many (Workload.Genbio.embl_flat u)));
  check int "sprot parse back" 30
    (List.length (D.Swissprot.parse_many (Workload.Genbio.swissprot_flat u)))

let test_generator_correlations () =
  let cfg =
    { Workload.Genbio.default_config with
      n_enzymes = 50; n_embl = 100; n_sprot = 50; ec_link_rate = 1.0 }
  in
  let u = Workload.Genbio.generate cfg in
  let ec_numbers =
    List.map (fun (e : D.Enzyme.t) -> e.ec_number) u.enzymes
  in
  let linked =
    List.filter
      (fun (e : D.Embl.t) ->
        List.exists
          (fun (f : D.Embl.feature) ->
            List.exists
              (fun (q : D.Embl.qualifier) ->
                q.qualifier_type = "EC number" && List.mem q.qualifier_value ec_numbers)
              f.qualifiers)
          e.features)
      u.embl_entries
  in
  check int "all EMBL entries link to a generated enzyme" 100 (List.length linked)

let test_load_universe () =
  let cfg = { Workload.Genbio.default_config with n_enzymes = 10; n_embl = 10; n_sprot = 10 } in
  let u = Workload.Genbio.generate cfg in
  let wh = fresh_warehouse () in
  (match Workload.Genbio.load_universe wh u with
   | Ok () -> ()
   | Error m -> fail m);
  check int "enzyme docs" 10
    (D.Warehouse.document_count wh ~collection:"hlx_enzyme.DEFAULT");
  check int "embl docs" 10 (D.Warehouse.document_count wh ~collection:"hlx_embl.inv");
  check int "sprot docs" 10 (D.Warehouse.document_count wh ~collection:"hlx_sprot.all");
  check (list string) "collections" [ "hlx_embl.inv"; "hlx_enzyme.DEFAULT"; "hlx_sprot.all" ]
    (D.Warehouse.collections wh)

(* ---------------- durability ---------------- *)

let with_temp_wal f =
  let path = Filename.temp_file "xomatiq_wh" ".wal" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_warehouse_durability () =
  with_temp_wal @@ fun path ->
  let e = paper_entry () in
  (* session 1: register + load, then close *)
  let wh = D.Warehouse.create ~wal:path () in
  D.Warehouse.register_source wh D.Warehouse.enzyme_source;
  (match D.Warehouse.harvest wh D.Warehouse.enzyme_source D.Enzyme.sample_entry with
   | Ok 1 -> ()
   | _ -> fail "load");
  D.Warehouse.close wh;
  (* session 2: everything is back — documents, DTD registry, indexes *)
  let wh2 = D.Warehouse.create ~wal:path () in
  check (list string) "collections recovered" [ D.Enzyme_xml.collection ]
    (D.Warehouse.collections wh2);
  check bool "dtd registry recovered" true
    (D.Warehouse.dtd_of wh2 ~collection:D.Enzyme_xml.collection <> None);
  (match D.Warehouse.get_document wh2 ~collection:D.Enzyme_xml.collection
           ~name:e.ec_number with
   | Some doc ->
     (match D.Enzyme_xml.of_document doc with
      | Ok e2 -> check string "entry recovered" e.description e2.description
      | Error m -> fail m)
   | None -> fail "document lost across restart");
  (* and the warehouse is still queryable through XomatiQ *)
  let result =
    Xomatiq.Engine.run_text wh2
      {|FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme RETURN $a//enzyme_id|}
  in
  check int "queryable after recovery" 1 (List.length result.rows);
  D.Warehouse.close wh2

let test_warehouse_crash_mid_sync () =
  with_temp_wal @@ fun path ->
  let enzymes = three_enzymes () in
  let wh = D.Warehouse.create ~wal:path () in
  D.Warehouse.register_source wh D.Warehouse.enzyme_source;
  (match D.Sync.sync_documents wh ~collection:D.Enzyme_xml.collection
           (universe_docs enzymes) with
   | Ok _ -> ()
   | Error m -> fail m);
  (* simulate a crash in the middle of a transaction: BEGIN + deletes,
     no COMMIT, handle dropped *)
  let db = D.Warehouse.db wh in
  ignore (Rdb.Database.exec_exn db "BEGIN");
  ignore (Rdb.Database.exec_exn db "DELETE FROM xml_node");
  (* no COMMIT, no close: the WAL has an unsealed transaction *)
  let wh2 = D.Warehouse.create ~wal:path () in
  check int "all documents survive the crashed transaction" 3
    (D.Warehouse.document_count wh2 ~collection:D.Enzyme_xml.collection);
  (match D.Warehouse.get_document wh2 ~collection:D.Enzyme_xml.collection
           ~name:"2.2.2.2" with
   | Some _ -> ()
   | None -> fail "node rows lost");
  D.Warehouse.close wh2;
  D.Warehouse.close wh

let test_embl_division_filter () =
  (* an embl source only harvests entries of its division *)
  let inv = embl_entry () in
  let pln = { inv with D.Embl.accession = "AB999999"; division = "PLN" } in
  let flat = D.Embl.render [ inv; pln ] in
  let wh = fresh_warehouse () in
  let inv_src = D.Warehouse.embl_source ~division:"inv" in
  let pln_src = D.Warehouse.embl_source ~division:"pln" in
  D.Warehouse.register_source wh inv_src;
  D.Warehouse.register_source wh pln_src;
  (match D.Warehouse.harvest wh inv_src flat with
   | Ok 1 -> ()
   | Ok n -> fail (Printf.sprintf "inv: expected 1, got %d" n)
   | Error m -> fail m);
  (match D.Warehouse.harvest wh pln_src flat with
   | Ok 1 -> ()
   | Ok n -> fail (Printf.sprintf "pln: expected 1, got %d" n)
   | Error m -> fail m);
  check (list string) "separate collections"
    [ "hlx_embl.inv"; "hlx_embl.pln" ]
    (D.Warehouse.collections wh);
  check (list string) "pln holds the pln entry" [ "AB999999" ]
    (D.Warehouse.documents wh ~collection:"hlx_embl.pln")

(* ---------------- remote mirroring ---------------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "xomatiq_remote" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then ignore (Sys.command ("rm -rf " ^ Filename.quote dir)))
    (fun () -> f dir)

let test_remote_publish_poll () =
  with_temp_dir @@ fun dir ->
  let remote = D.Remote.create ~root:dir in
  check bool "no release yet" true (D.Remote.poll remote ~last_seen:None = `Unchanged);
  D.Remote.publish remote ~version:"2026-07" "payload-1";
  (match D.Remote.poll remote ~last_seen:None with
   | `New_release "2026-07" -> ()
   | _ -> fail "expected new release");
  (match D.Remote.fetch remote with
   | Ok ("2026-07", "payload-1") -> ()
   | Ok _ -> fail "wrong payload"
   | Error m -> fail m);
  check bool "seen release is unchanged" true
    (D.Remote.poll remote ~last_seen:(Some "2026-07") = `Unchanged);
  D.Remote.publish remote ~version:"2026-08" "payload-2";
  match D.Remote.poll remote ~last_seen:(Some "2026-07") with
  | `New_release "2026-08" -> ()
  | _ -> fail "expected newer release"

let test_remote_mirror_cycle () =
  with_temp_dir @@ fun dir ->
  let remote = D.Remote.create ~root:dir in
  let wh = fresh_warehouse () in
  D.Warehouse.register_source wh D.Warehouse.enzyme_source;
  let enzymes = three_enzymes () in
  D.Remote.publish remote ~version:"r1" (D.Enzyme.render enzymes);
  (* cycle 1: full load *)
  (match D.Remote.mirror remote wh D.Warehouse.enzyme_source ~last_seen:None with
   | Ok (`Synced ("r1", report)) -> check int "r1 added" 3 report.added
   | Ok _ -> fail "expected sync"
   | Error m -> fail m);
  (* cycle 2: nothing new — no warehouse work at all *)
  (match D.Remote.mirror remote wh D.Warehouse.enzyme_source ~last_seen:(Some "r1") with
   | Ok `Unchanged -> ()
   | Ok _ -> fail "expected unchanged"
   | Error m -> fail m);
  (* cycle 3: a revised release *)
  let revised =
    List.map
      (fun (e : D.Enzyme.t) ->
        if e.ec_number = "2.2.2.2" then { e with description = "Renamed enzyme" } else e)
      enzymes
  in
  D.Remote.publish remote ~version:"r2" (D.Enzyme.render revised);
  match D.Remote.mirror remote wh D.Warehouse.enzyme_source ~last_seen:(Some "r1") with
  | Ok (`Synced ("r2", report)) ->
    check int "r2 updated" 1 report.updated;
    check int "r2 unchanged" 2 report.unchanged
  | Ok _ -> fail "expected r2 sync"
  | Error m -> fail m

(* ---------------- format fixpoint properties ---------------- *)

(* render is a normal form: parse(render(x)) renders identically *)
let format_fixpoint_props =
  let universe_gen =
    QCheck.Gen.map
      (fun seed ->
        Workload.Genbio.generate
          { Workload.Genbio.default_config with
            seed; n_enzymes = 8; n_embl = 8; n_sprot = 8; n_citations = 8;
            seq_length = 30 })
      (QCheck.Gen.int_bound 10_000)
  in
  [ QCheck.Test.make ~count:40 ~name:"ENZYME render/parse fixpoint"
      (QCheck.make universe_gen ~print:(fun _ -> "universe"))
      (fun u ->
        let text = Workload.Genbio.enzyme_flat u in
        let reparsed = D.Enzyme.render (D.Enzyme.parse_many text) in
        D.Enzyme.render (D.Enzyme.parse_many reparsed) = reparsed);
    QCheck.Test.make ~count:40 ~name:"EMBL render/parse fixpoint"
      (QCheck.make universe_gen ~print:(fun _ -> "universe"))
      (fun u ->
        let text = Workload.Genbio.embl_flat u in
        let reparsed = D.Embl.render (D.Embl.parse_many text) in
        D.Embl.render (D.Embl.parse_many reparsed) = reparsed);
    QCheck.Test.make ~count:40 ~name:"Swiss-Prot render/parse fixpoint"
      (QCheck.make universe_gen ~print:(fun _ -> "universe"))
      (fun u ->
        let text = Workload.Genbio.swissprot_flat u in
        let reparsed = D.Swissprot.render (D.Swissprot.parse_many text) in
        D.Swissprot.render (D.Swissprot.parse_many reparsed) = reparsed);
    QCheck.Test.make ~count:40 ~name:"GenBank render/parse fixpoint"
      (QCheck.make universe_gen ~print:(fun _ -> "universe"))
      (fun u ->
        let text = Workload.Genbio.genbank_flat u in
        let reparsed = D.Genbank.render (D.Genbank.parse_many text) in
        D.Genbank.render (D.Genbank.parse_many reparsed) = reparsed);
    QCheck.Test.make ~count:40 ~name:"MEDLINE render/parse fixpoint"
      (QCheck.make universe_gen ~print:(fun _ -> "universe"))
      (fun u ->
        let text = Workload.Genbio.medline_flat u in
        let reparsed = D.Medline.render (D.Medline.parse_many text) in
        D.Medline.render (D.Medline.parse_many reparsed) = reparsed) ]

let tokenize_props =
  [ QCheck.Test.make ~count:300 ~name:"tokenize invariants"
      QCheck.(string_gen_of_size (QCheck.Gen.int_bound 60) QCheck.Gen.printable)
      (fun s ->
        let tokens = D.Shred.tokenize s in
        List.for_all
          (fun t ->
            String.length t >= 2
            && String.for_all
                 (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
                 t)
          tokens
        && List.length (List.sort_uniq compare tokens) = List.length tokens);
    QCheck.Test.make ~count:300 ~name:"tokenize is case-insensitive"
      QCheck.(string_gen_of_size (QCheck.Gen.int_bound 60) QCheck.Gen.printable)
      (fun s ->
        D.Shred.tokenize (String.uppercase_ascii s) = D.Shred.tokenize s) ]

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "datahounds"
    [ ("line-format",
       [ Alcotest.test_case "split" `Quick test_line_format_split;
         Alcotest.test_case "errors" `Quick test_line_format_errors;
         Alcotest.test_case "roundtrip" `Quick test_line_format_roundtrip ]);
      ("enzyme",
       [ Alcotest.test_case "paper figure 2" `Quick test_enzyme_paper_figure2;
         Alcotest.test_case "flat roundtrip" `Quick test_enzyme_roundtrip;
         Alcotest.test_case "xml figure 6" `Quick test_enzyme_xml_figure6;
         Alcotest.test_case "bad entries" `Quick test_enzyme_bad_entries ]);
      ("embl",
       [ Alcotest.test_case "parse" `Quick test_embl_parse;
         Alcotest.test_case "roundtrip" `Quick test_embl_roundtrip;
         Alcotest.test_case "xml" `Quick test_embl_xml;
         Alcotest.test_case "division filter" `Quick test_embl_division_filter ]);
      ("swissprot",
       [ Alcotest.test_case "parse" `Quick test_swissprot_parse;
         Alcotest.test_case "roundtrip+xml" `Quick test_swissprot_roundtrip_and_xml ]);
      ("genbank",
       [ Alcotest.test_case "parse" `Quick test_genbank_parse;
         Alcotest.test_case "roundtrip" `Quick test_genbank_roundtrip;
         Alcotest.test_case "of_embl consistent" `Quick test_genbank_of_embl_consistent ]);
      ("medline",
       [ Alcotest.test_case "parse" `Quick test_medline_parse;
         Alcotest.test_case "roundtrip+xml" `Quick test_medline_roundtrip_and_xml;
         Alcotest.test_case "warehouse join" `Quick test_medline_warehouse_join ]);
      ("shred",
       [ Alcotest.test_case "reconstruct" `Quick test_shred_and_reconstruct;
         Alcotest.test_case "generic schema" `Quick test_shred_generic_schema;
         Alcotest.test_case "order preserved" `Quick test_shred_order_preserved;
         Alcotest.test_case "sequence flag" `Quick test_sequence_not_keyword_indexed;
         Alcotest.test_case "path ids" `Quick test_path_ids_matching;
         Alcotest.test_case "delete document" `Quick test_delete_document ]);
      qsuite "shred-props" [ shred_roundtrip_prop ];
      ("sync",
       [ Alcotest.test_case "initial+idempotent" `Quick test_sync_initial_and_idempotent;
         Alcotest.test_case "update+remove" `Quick test_sync_update_and_remove;
         Alcotest.test_case "duplicate names" `Quick test_sync_rejects_duplicates ]);
      ("remote",
       [ Alcotest.test_case "publish/poll/fetch" `Quick test_remote_publish_poll;
         Alcotest.test_case "mirror cycle" `Quick test_remote_mirror_cycle ]);
      ("durability",
       [ Alcotest.test_case "restart recovery" `Quick test_warehouse_durability;
         Alcotest.test_case "crash mid-sync" `Quick test_warehouse_crash_mid_sync ]);
      qsuite "format-fixpoints" format_fixpoint_props;
      qsuite "tokenize-props" tokenize_props;
      ("workload",
       [ Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
         Alcotest.test_case "flat files parse" `Quick test_generator_flat_files_parse;
         Alcotest.test_case "correlations" `Quick test_generator_correlations;
         Alcotest.test_case "load universe" `Quick test_load_universe ]);
    ]
