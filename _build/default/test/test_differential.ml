(* Differential harness: the full bioinformatics query mix evaluated in
   both engine modes — `Relational (XQ2SQL + relational engine, the
   XomatiQ way) and `Reference (in-memory evaluation over reconstructed
   documents) — asserting identical (labels, rows) for every query.

   This is the paper's correctness argument at scale: the generic-schema
   SQL translation computes exactly what the XML semantics says. Three
   seeds vary the universe AND the generated query parameters. *)

let check = Alcotest.check
let string = Alcotest.string
let list = Alcotest.list

let rows_testable = list (list string)

module D = Datahounds

let universe_of seed =
  Workload.Genbio.generate
    { Workload.Genbio.seed; n_enzymes = 30; n_embl = 40; n_sprot = 35;
      n_citations = 20; cdc6_rate = 0.1; ketone_rate = 0.2; ec_link_rate = 0.8;
      seq_length = 60 }

let run_mix seed () =
  let u = universe_of seed in
  let wh = D.Warehouse.create () in
  (match Workload.Genbio.load_universe wh u with
   | Ok () -> ()
   | Error m -> failwith m);
  let mix = Workload.Query_mix.mixed ~seed ~universe:u ~per_class:4 in
  Alcotest.(check bool) "mix covers every task class" true
    (List.sort_uniq compare (List.map fst mix)
     = List.sort compare Workload.Query_mix.all_classes);
  List.iter
    (fun (cls, text) ->
      let name = Workload.Query_mix.class_name cls in
      let relational = Xomatiq.Engine.run_text ~mode:`Relational wh text in
      let reference = Xomatiq.Engine.run_text ~mode:`Reference wh text in
      check (list string)
        (Printf.sprintf "%s labels agree (seed %d): %s" name seed text)
        reference.labels relational.labels;
      check rows_testable
        (Printf.sprintf "%s rows agree (seed %d): %s" name seed text)
        reference.rows relational.rows)
    mix;
  D.Warehouse.close wh

(* Both contains() rewrites must agree with the reference semantics, not
   just the default keyword-index probe. *)
let run_contains_strategies () =
  let seed = 5 in
  let u = universe_of seed in
  let wh = D.Warehouse.create () in
  (match Workload.Genbio.load_universe wh u with
   | Ok () -> ()
   | Error m -> failwith m);
  let queries =
    Workload.Query_mix.generate ~seed ~universe:u ~count:6
      Workload.Query_mix.Keyword_browse
  in
  List.iter
    (fun text ->
      let reference = Xomatiq.Engine.run_text ~mode:`Reference wh text in
      List.iter
        (fun (label, strategy) ->
          let relational =
            Xomatiq.Engine.run_text ~contains_strategy:strategy wh text
          in
          check rows_testable
            (Printf.sprintf "contains via %s: %s" label text)
            reference.rows relational.rows)
        [ ("keyword-index", `Keyword_index); ("like-scan", `Like_scan) ])
    queries;
  D.Warehouse.close wh

let () =
  Alcotest.run "differential"
    [ ( "query-mix",
        [ Alcotest.test_case "seed 11" `Quick (run_mix 11);
          Alcotest.test_case "seed 23" `Quick (run_mix 23);
          Alcotest.test_case "seed 47" `Quick (run_mix 47) ] );
      ( "contains-strategies",
        [ Alcotest.test_case "keyword vs like-scan" `Quick
            run_contains_strategies ] ) ]
