(* Tests for the XomatiQ core: query parsing, XQ2SQL translation, and
   end-to-end agreement between the relational path and the reference
   in-memory evaluator (differential testing). *)

let check = Alcotest.check
let fail = Alcotest.fail
let int = Alcotest.int
let string = Alcotest.string
let bool = Alcotest.bool
let list = Alcotest.list

let rows_testable = list (list string)

module D = Datahounds

(* ---------------- fixtures ---------------- *)

let small_universe =
  lazy
    (Workload.Genbio.generate
       { Workload.Genbio.default_config with
         n_enzymes = 40; n_embl = 60; n_sprot = 50;
         cdc6_rate = 0.1; ketone_rate = 0.2; ec_link_rate = 0.8;
         seq_length = 60 })

let loaded_warehouse =
  lazy
    (let wh = D.Warehouse.create () in
     (match Workload.Genbio.load_universe wh (Lazy.force small_universe) with
      | Ok () -> ()
      | Error m -> failwith m);
     (* also warehouse the paper's own Figure 2 entry *)
     (match
        D.Warehouse.harvest wh D.Warehouse.enzyme_source D.Enzyme.sample_entry
      with
      | Ok 1 -> ()
      | Ok n -> failwith (Printf.sprintf "expected 1, got %d" n)
      | Error m -> failwith m);
     wh)

(* the three paper queries, with PDF-mangled names restored *)
let fig9_subtree_query =
  {|FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id, $a//enzyme_description|}

let fig8_keyword_query =
  {|FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
    $b IN document("hlx_sprot.all")/hlx_n_sequence
WHERE contains($a, "cdc6", any)
AND contains($b, "cdc6", any)
RETURN $b//sprot_accession_number, $a//embl_accession_number|}

let fig11_join_query =
  {|FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description|}

(* ---------------- parser ---------------- *)

let test_parse_fig9 () =
  let q = Xomatiq.Parser.parse fig9_subtree_query in
  check int "one binding" 1 (List.length q.bindings);
  let b = List.hd q.bindings in
  check string "collection" "hlx_enzyme.DEFAULT" b.collection;
  check string "binding path" "hlx_enzyme" (Gxml.Path.to_string b.path);
  (match q.where with
   | Some (Xomatiq.Ast.Contains { var = "a"; keyword = "ketone"; path }) ->
     check string "contains path" "//catalytic_activity" (Gxml.Path.to_string path)
   | _ -> fail "where clause shape");
  check int "two return items" 2 (List.length q.return_items)

let test_parse_fig8 () =
  let q = Xomatiq.Parser.parse fig8_keyword_query in
  check int "two bindings" 2 (List.length q.bindings);
  (match q.where with
   | Some (Xomatiq.Ast.And (Contains { var = "a"; _ }, Contains { var = "b"; _ })) -> ()
   | _ -> fail "where shape")

let test_parse_fig11 () =
  let q = Xomatiq.Parser.parse fig11_join_query in
  (match q.where with
   | Some (Xomatiq.Ast.Compare (Var_path vp1, Eq, Var_path vp2)) ->
     check string "left path" {|//qualifier[@qualifier_type = "EC number"]|}
       (Gxml.Path.to_string vp1.path);
     check string "right var" "b" vp2.var
   | _ -> fail "where shape");
  (match q.return_items with
   | [ r1; _r2 ] ->
     check (Alcotest.option string) "label" (Some "Accession_Number") r1.label
   | _ -> fail "return items")

let test_parse_let () =
  let q =
    Xomatiq.Parser.parse
      {|FOR $a IN document("c")/root
LET $x := $a//inner
WHERE $x/leaf = "v"
RETURN $x/leaf|}
  in
  (* lets are inlined by Ast.check *)
  check int "lets inlined" 0 (List.length q.lets);
  match q.where with
  | Some (Xomatiq.Ast.Compare (Var_path { var = "a"; path }, Eq, Literal (Lit_string "v"))) ->
    check string "inlined path" "//inner/leaf" (Gxml.Path.to_string path)
  | _ -> fail "let not inlined"

let test_parse_errors () =
  let bad =
    [ "WHERE x RETURN $a";                              (* no FOR *)
      "FOR $a IN document(\"c\") RETURN $b//x";         (* unbound var *)
      "FOR $a IN document(\"c\") WHERE 1 = 2 RETURN $a//x"; (* literal cmp *)
      "FOR $a IN document(\"c\")";                      (* no RETURN *)
      "FOR $a IN document(\"c\") WHERE contains($a, \"\") RETURN $a//x" ]
  in
  List.iter
    (fun src ->
      match Xomatiq.Parser.parse src with
      | exception (Xomatiq.Parser.Parse_error _ | Xomatiq.Ast.Invalid_query _) -> ()
      | _ -> fail (Printf.sprintf "expected parse failure: %s" src))
    bad

let test_print_parse_roundtrip () =
  List.iter
    (fun src ->
      let q = Xomatiq.Parser.parse src in
      let printed = Xomatiq.Ast.to_string q in
      let q2 = Xomatiq.Parser.parse printed in
      check string (Printf.sprintf "roundtrip %s" src) printed (Xomatiq.Ast.to_string q2))
    [ fig9_subtree_query; fig8_keyword_query; fig11_join_query ]

(* ---------------- end-to-end on the paper entry ---------------- *)

let test_fig9_finds_planted_ketone () =
  let wh = Lazy.force loaded_warehouse in
  let result = Xomatiq.Engine.run_text wh fig9_subtree_query in
  (* the generator plants "ketone" in ~20% of 40 enzymes *)
  check bool "finds some enzymes" true (List.length result.rows > 0);
  (* all returned descriptions belong to enzymes with a ketone activity *)
  let u = Lazy.force small_universe in
  let expected_ids =
    List.filter_map
      (fun (e : D.Enzyme.t) ->
        if List.exists
             (fun a -> Xomatiq.Eval.node_value (Gxml.Tree.element "x" [ Gxml.Tree.text a ]) <> None
                       && List.mem "ketone" (D.Shred.tokenize a))
             e.catalytic_activities
        then Some e.ec_number
        else None)
      u.enzymes
    |> List.sort_uniq compare
  in
  let got_ids = List.sort_uniq compare (List.map List.hd result.rows) in
  check (list string) "exactly the planted enzymes" expected_ids got_ids

let test_fig11_join_correct () =
  let wh = Lazy.force loaded_warehouse in
  let result = Xomatiq.Engine.run_text wh fig11_join_query in
  check (list string) "labels" [ "Accession_Number"; "Accession_Description" ]
    result.labels;
  (* expected: EMBL entries whose EC qualifier equals a warehoused enzyme id *)
  let u = Lazy.force small_universe in
  let enzyme_ids =
    "1.14.17.3" :: List.map (fun (e : D.Enzyme.t) -> e.ec_number) u.enzymes
  in
  let expected =
    List.filter_map
      (fun (e : D.Embl.t) ->
        let ecs =
          List.concat_map
            (fun (f : D.Embl.feature) ->
              List.filter_map
                (fun (q : D.Embl.qualifier) ->
                  if q.qualifier_type = "EC number" then Some q.qualifier_value
                  else None)
                f.qualifiers)
            e.features
        in
        if List.exists (fun ec -> List.mem ec enzyme_ids) ecs then
          Some [ e.accession; e.description ]
        else None)
      u.embl_entries
    |> List.sort_uniq compare
  in
  check rows_testable "join result matches ground truth" expected result.rows

let test_fig8_keyword_both_sources () =
  let wh = Lazy.force loaded_warehouse in
  let result = Xomatiq.Engine.run_text wh fig8_keyword_query in
  let u = Lazy.force small_universe in
  let embl_cdc6 =
    List.filter (fun (e : D.Embl.t) -> List.mem "cdc6" e.keywords) u.embl_entries
  in
  let sprot_cdc6 =
    List.filter
      (fun (p : D.Swissprot.t) ->
        List.mem "cdc6" p.keywords || p.gene = Some "cdc6")
      u.sprot_entries
  in
  check int "cartesian size" (List.length embl_cdc6 * List.length sprot_cdc6)
    (List.length result.rows);
  check bool "nonempty (rates guarantee hits)" true (result.rows <> [])

(* ---------------- relational vs reference (differential) ---------------- *)

let agree name query =
  let wh = Lazy.force loaded_warehouse in
  let relational = Xomatiq.Engine.run_text ~mode:`Relational wh query in
  let reference = Xomatiq.Engine.run_text ~mode:`Reference wh query in
  check rows_testable (name ^ ": relational = reference") reference.rows relational.rows

let test_differential_paper_queries () =
  agree "fig9" fig9_subtree_query;
  agree "fig8" fig8_keyword_query;
  agree "fig11" fig11_join_query

let test_differential_variants () =
  agree "string equality"
    {|FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
      WHERE $a//enzyme_id = "1.14.17.3"
      RETURN $a//enzyme_description|};
  agree "numeric comparison"
    {|FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
      WHERE $a//sequence_length > 90
      RETURN $a//embl_accession_number|};
  agree "numeric range conjunction"
    {|FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
      WHERE $a//sequence_length > 70 AND $a//sequence_length <= 100
      RETURN $a//embl_accession_number|};
  agree "disjunction"
    {|FOR $a IN document("hlx_sprot.all")/hlx_n_sequence
      WHERE contains($a//keyword_list, "cdc6") OR contains($a//keyword_list, "apoptosis")
      RETURN $a//sprot_accession_number|};
  agree "negation"
    {|FOR $a IN document("hlx_sprot.all")/hlx_n_sequence
      WHERE NOT contains($a//keyword_list, "cdc6")
      RETURN $a//sprot_accession_number|};
  agree "attribute return"
    {|FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
      WHERE contains($a//catalytic_activity, "ketone")
      RETURN $a//reference/@swissprot_accession_number|};
  agree "attribute predicate + attribute return"
    {|FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
      WHERE $a//qualifier[@qualifier_type = "gene"] = "cdc6"
      RETURN $a//embl_accession_number|};
  agree "multi-word keyword"
    {|FOR $a IN document("hlx_sprot.all")/hlx_n_sequence
      WHERE contains($a, "cell cycle", any)
      RETURN $a//sprot_accession_number|};
  agree "self comparison on bound node"
    {|FOR $a IN document("hlx_enzyme.DEFAULT")//enzyme_id
      WHERE $a = "1.14.17.3"
      RETURN $a|};
  agree "no where clause"
    {|FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
      RETURN $a/enzyme_id|};
  agree "bare document binding"
    {|FOR $a IN document("hlx_enzyme.DEFAULT")
      WHERE contains($a, "ketone", any)
      RETURN $a//enzyme_id|};
  agree "missing path yields empty"
    {|FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
      WHERE $a//no_such_element = "x"
      RETURN $a//enzyme_id|}

let test_order_operators () =
  (* In every ENZYME document, enzyme_id precedes the swissprot references
     and follows nothing — the DTD fixes the element order, so BEFORE and
     AFTER results are fully predictable. *)
  let wh = Lazy.force loaded_warehouse in
  let all_ids =
    Xomatiq.Engine.run_text wh
      {|FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme RETURN $a//enzyme_id|}
  in
  let before =
    Xomatiq.Engine.run_text wh
      {|FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
        WHERE $a//enzyme_id BEFORE $a//swissprot_reference_list
        RETURN $a//enzyme_id|}
  in
  check rows_testable "enzyme_id precedes references in every doc"
    all_ids.rows before.rows;
  let after =
    Xomatiq.Engine.run_text wh
      {|FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
        WHERE $a//enzyme_id AFTER $a//swissprot_reference_list
        RETURN $a//enzyme_id|}
  in
  check rows_testable "never after" [] after.rows;
  (* differential agreement for order operators, including under NOT *)
  agree "order before"
    {|FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
      WHERE $a//alternate_name BEFORE $a//catalytic_activity
      RETURN $a//enzyme_id|};
  agree "order negated"
    {|FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
      WHERE NOT ($a//enzyme_id AFTER $a//disease_list)
      RETURN $a//enzyme_id|};
  (* cross-binding order over the same collection: only same-document
     combinations can satisfy it *)
  agree "cross-binding order"
    {|FOR $a IN document("hlx_enzyme.DEFAULT")//enzyme_id,
        $b IN document("hlx_enzyme.DEFAULT")//cofactor_list
      WHERE $a BEFORE $b
      RETURN $a|}

let test_order_rejects_attributes () =
  match
    Xomatiq.Parser.parse
      {|FOR $a IN document("c")/x WHERE $a//r/@n BEFORE $a//s RETURN $a//y|}
  with
  | exception Xomatiq.Ast.Invalid_query _ -> ()
  | _ -> fail "attribute operands must be rejected"

let test_unknown_collection () =
  let wh = Lazy.force loaded_warehouse in
  match
    Xomatiq.Engine.run_text wh
      {|FOR $a IN document("nope")/x RETURN $a//y|}
  with
  | r -> check rows_testable "empty for unknown collection" [] r.rows
  | exception Xomatiq.Engine.Query_error _ -> ()

let test_prepared_queries () =
  let wh = Lazy.force loaded_warehouse in
  List.iter
    (fun q ->
      let ast = Xomatiq.Parser.parse q in
      let adhoc = Xomatiq.Engine.run wh ast in
      let prepared = Xomatiq.Engine.prepare wh ast in
      check rows_testable "prepared = ad hoc (first run)" adhoc.rows
        (Xomatiq.Engine.run_prepared prepared).rows;
      check rows_testable "prepared = ad hoc (second run)" adhoc.rows
        (Xomatiq.Engine.run_prepared prepared).rows)
    [ fig9_subtree_query; fig8_keyword_query; fig11_join_query ]

let test_query_mix_all_classes () =
  (* every generated task-class query parses, translates and agrees with
     the reference evaluator *)
  let u =
    Workload.Genbio.generate
      { Workload.Genbio.default_config with
        n_enzymes = 25; n_embl = 30; n_sprot = 30; n_citations = 20;
        cdc6_rate = 0.1; ketone_rate = 0.2; ec_link_rate = 0.7; seq_length = 40 }
  in
  let wh = D.Warehouse.create () in
  (match Workload.Genbio.load_universe wh u with
   | Ok () -> ()
   | Error m -> fail m);
  let mix = Workload.Query_mix.mixed ~seed:5 ~universe:u ~per_class:3 in
  check int "six classes x three queries" 18 (List.length mix);
  List.iter
    (fun (cls, text) ->
      let name = Workload.Query_mix.class_name cls in
      let relational = Xomatiq.Engine.run_text ~mode:`Relational wh text in
      let reference = Xomatiq.Engine.run_text ~mode:`Reference wh text in
      check rows_testable (name ^ " differential") reference.rows relational.rows)
    mix

let test_contains_strategies_agree () =
  (* the LIKE-scan ablation must compute the same answers as the keyword
     index on whole-word keywords *)
  let wh = Lazy.force loaded_warehouse in
  List.iter
    (fun q ->
      let indexed = Xomatiq.Engine.run_text wh q in
      let scanned = Xomatiq.Engine.run_text ~contains_strategy:`Like_scan wh q in
      check rows_testable "strategies agree" indexed.rows scanned.rows)
    [ fig9_subtree_query; fig8_keyword_query ]

(* ---------------- randomized differential testing ---------------- *)

(* Generate random FLWR queries over the warehoused vocabulary and check
   that the XQ2SQL + relational path agrees with the reference evaluator
   on every one. Queries stay inside the SQL-translatable subset. *)
module Qgen = struct
  let enzyme_paths =
    [ "//enzyme_id"; "//enzyme_description"; "//alternate_name";
      "//catalytic_activity"; "//cofactor"; "//comment";
      "//reference/@swissprot_accession_number"; "//prosite_reference" ]

  let embl_paths =
    [ "//embl_accession_number"; "//description"; "//sequence_length";
      "//keyword"; "//organism"; "//qualifier"; "//db_reference/@primary_id" ]

  let sprot_paths =
    [ "//sprot_accession_number"; "//protein_name"; "//keyword"; "//organism";
      "//sequence_length"; "//gene" ]

  let collections =
    [ ("hlx_enzyme.DEFAULT", "hlx_enzyme", enzyme_paths);
      ("hlx_embl.inv", "hlx_n_sequence", embl_paths);
      ("hlx_sprot.all", "hlx_n_sequence", sprot_paths) ]

  let string_literals =
    [ "cdc6"; "Copper"; "1.14.17.3"; "Drosophila melanogaster"; "zzz-none";
      "Glucose dehydrogenase" ]

  let keywords = [ "cdc6"; "ketone"; "copper"; "cycle"; "zzz_none"; "gene" ]

  let numbers = [ 50.0; 100.0; 150.0; 240.0 ]

  open QCheck.Gen

  let pick_path paths = map Gxml.Path.parse (oneofl paths)

  let cmp_gen : Xomatiq.Ast.cmp QCheck.Gen.t =
    oneofl [ Xomatiq.Ast.Eq; Neq; Lt; Le; Gt; Ge ]

  let condition_gen (bindings : (string * string list) list) =
    (* bindings: (var, value paths usable under it) *)
    let var_path =
      let* var, paths = oneofl bindings in
      let* path = pick_path paths in
      return (var, path)
    in
    let leaf =
      frequency
        [ (3,
           let* var, path = var_path in
           let* op = cmp_gen in
           let* lit =
             oneof
               [ map (fun s -> Xomatiq.Ast.Lit_string s) (oneofl string_literals);
                 map (fun f -> Xomatiq.Ast.Lit_number f) (oneofl numbers) ]
           in
           return
             (Xomatiq.Ast.Compare
                (Var_path { var; path }, op, Literal lit)));
          (3,
           let* var, path = var_path in
           let* kw = oneofl keywords in
           return (Xomatiq.Ast.Contains { var; path; keyword = kw }));
          (1,
           let* var, _ = oneofl bindings in
           let* kw = oneofl keywords in
           return (Xomatiq.Ast.Contains { var; path = []; keyword = kw }));
          (1,
           (* var-to-var string equality *)
           let* v1, p1 = var_path in
           let* v2, p2 = var_path in
           return
             (Xomatiq.Ast.Compare
                ( Var_path { var = v1; path = p1 },
                  Eq,
                  Var_path { var = v2; path = p2 })));
          (1,
           (* document-order comparison between element paths of one var *)
           let element_paths paths =
             List.filter (fun p -> not (String.contains p '@')) paths
           in
           let* var, paths = oneofl bindings in
           let elems = element_paths paths in
           let* p1 = pick_path elems in
           let* p2 = pick_path elems in
           let* op = oneofl [ Xomatiq.Ast.Before; Xomatiq.Ast.After ] in
           return (Xomatiq.Ast.Order { left = (var, p1); op; right = (var, p2) })) ]
    in
    let rec tree depth =
      if depth = 0 then leaf
      else
        frequency
          [ (4, leaf);
            (2,
             let* a = tree (depth - 1) in
             let* b = tree (depth - 1) in
             return (Xomatiq.Ast.And (a, b)));
            (2,
             let* a = tree (depth - 1) in
             let* b = tree (depth - 1) in
             return (Xomatiq.Ast.Or (a, b)));
            (1,
             let* a = tree (depth - 1) in
             return (Xomatiq.Ast.Not a)) ]
    in
    tree 2

  let query_gen : Xomatiq.Ast.t QCheck.Gen.t =
    let* n_bindings = oneofl [ 1; 1; 1; 2 ] in
    let* chosen =
      if n_bindings = 1 then map (fun c -> [ c ]) (oneofl collections)
      else
        let* c1 = oneofl collections in
        let* c2 = oneofl collections in
        return [ c1; c2 ]
    in
    let bindings =
      List.mapi
        (fun i (collection, root, _) ->
          { Xomatiq.Ast.var = Printf.sprintf "v%d" i;
            collection;
            path = Gxml.Path.parse root })
        chosen
    in
    let var_paths =
      List.mapi (fun i (_, _, paths) -> (Printf.sprintf "v%d" i, paths)) chosen
    in
    (* two-binding queries always get a WHERE to bound the cross product *)
    let* where =
      if n_bindings = 2 then map Option.some (condition_gen var_paths)
      else option (condition_gen var_paths)
    in
    let* return_items =
      let item =
        let* var, paths = oneofl var_paths in
        let* path = pick_path paths in
        return { Xomatiq.Ast.label = None; item_var = var; item_path = path }
      in
      let* first = item in
      let* rest = option item in
      return (first :: Option.to_list rest)
    in
    return { Xomatiq.Ast.bindings; lets = []; where; return_items }
end

let differential_random_queries =
  (* a dedicated small warehouse keeps the worst-case cross products fast *)
  let wh =
    lazy
      (let wh = D.Warehouse.create () in
       let u =
         Workload.Genbio.generate
           { Workload.Genbio.default_config with
             n_enzymes = 25; n_embl = 30; n_sprot = 30;
             cdc6_rate = 0.15; ketone_rate = 0.25; ec_link_rate = 0.7;
             seq_length = 40 }
       in
       (match Workload.Genbio.load_universe wh u with
        | Ok () -> ()
        | Error m -> failwith m);
       wh)
  in
  QCheck.Test.make ~count:120 ~name:"random queries: relational = reference"
    (QCheck.make Qgen.query_gen ~print:Xomatiq.Ast.to_string)
    (fun q ->
      let wh = Lazy.force wh in
      match Xomatiq.Engine.run ~mode:`Relational wh q with
      | relational ->
        let reference = Xomatiq.Engine.run ~mode:`Reference wh q in
        if relational.rows <> reference.rows then
          QCheck.Test.fail_reportf
            "relational (%d rows) <> reference (%d rows)\nSQL: %s"
            (List.length relational.rows) (List.length reference.rows)
            relational.sql
        else begin
          (* the prepared path must agree too *)
          let prepared =
            Xomatiq.Engine.run_prepared (Xomatiq.Engine.prepare wh q)
          in
          if prepared.rows <> relational.rows then
            QCheck.Test.fail_report "prepared path disagrees with ad hoc"
          else true
        end
      | exception Xomatiq.Engine.Query_error _ ->
        (* generator stays in the supported subset; translation errors are
           real failures *)
        QCheck.Test.fail_report "translation rejected a generated query")

(* ---------------- query modes (GUI builders) ---------------- *)

let test_mode_subtree () =
  let wh = Lazy.force loaded_warehouse in
  let q =
    Xomatiq.Modes.subtree_search ~collection:"hlx_enzyme.DEFAULT"
      ~binding_path:(Gxml.Path.parse "hlx_enzyme")
      ~subtree:(Gxml.Path.parse "//catalytic_activity")
      ~keyword:"ketone"
      ~return_paths:[ Gxml.Path.parse "//enzyme_id"; Gxml.Path.parse "//enzyme_description" ]
  in
  let from_mode = Xomatiq.Engine.run wh q in
  let from_text = Xomatiq.Engine.run_text wh fig9_subtree_query in
  check rows_testable "mode = textual query" from_text.rows from_mode.rows

let test_mode_join () =
  let wh = Lazy.force loaded_warehouse in
  let q =
    Xomatiq.Modes.join_query
      ~left:("hlx_embl.inv", Gxml.Path.parse "hlx_n_sequence/db_entry")
      ~right:("hlx_enzyme.DEFAULT", Gxml.Path.parse "hlx_enzyme/db_entry")
      ~on:
        ( Gxml.Path.parse {|//qualifier[@qualifier_type = "EC number"]|},
          Gxml.Path.parse "enzyme_id" )
      ~return_items:
        [ (Some "Accession_Number", `Left, Gxml.Path.parse "//embl_accession_number");
          (Some "Accession_Description", `Left, Gxml.Path.parse "//description") ]
  in
  let from_mode = Xomatiq.Engine.run wh q in
  let from_text = Xomatiq.Engine.run_text wh fig11_join_query in
  check rows_testable "join mode = textual query" from_text.rows from_mode.rows

let test_mode_keyword () =
  let wh = Lazy.force loaded_warehouse in
  let q =
    Xomatiq.Modes.keyword_search
      ~collections:
        [ ("hlx_embl.inv", Gxml.Path.parse "hlx_n_sequence");
          ("hlx_sprot.all", Gxml.Path.parse "hlx_n_sequence") ]
      ~keyword:"cdc6"
      ~return_paths:
        [ ("hlx_sprot.all", [ Gxml.Path.parse "//sprot_accession_number" ]);
          ("hlx_embl.inv", [ Gxml.Path.parse "//embl_accession_number" ]) ]
  in
  let from_mode = Xomatiq.Engine.run wh q in
  check bool "keyword mode returns rows" true (from_mode.rows <> []);
  (* differential check for the generated query too *)
  let reference = Xomatiq.Engine.run ~mode:`Reference wh q in
  check rows_testable "keyword mode differential" reference.rows from_mode.rows

(* ---------------- XQ2SQL translation shape ---------------- *)

let contains_sub hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_xq2sql_shape () =
  let wh = Lazy.force loaded_warehouse in
  let db = D.Warehouse.db wh in
  let t =
    Xomatiq.Xq2sql.translate db (Xomatiq.Parser.parse fig9_subtree_query)
  in
  (* single matching path collapses to an equality for index use *)
  check bool "path equality emitted" true (contains_sub t.sql ".path_id = ");
  check bool "keyword table probed" true (contains_sub t.sql "xml_keyword");
  check bool "collection constant" true
    (contains_sub t.sql "collection = 'hlx_enzyme.DEFAULT'");
  check bool "region encoding used" true (contains_sub t.sql ".last_desc");
  check bool "distinct rows" true (contains_sub t.sql "SELECT DISTINCT");
  check bool "not statically empty" false t.statically_empty;
  (* a path that matches nothing marks the translation statically empty *)
  let t2 =
    Xomatiq.Xq2sql.translate db
      (Xomatiq.Parser.parse
         {|FOR $a IN document("hlx_enzyme.DEFAULT")/never_heard_of_it RETURN $a//x|})
  in
  check bool "statically empty" true t2.statically_empty;
  (* negation produces an EXISTS, not a join *)
  let t3 =
    Xomatiq.Xq2sql.translate db
      (Xomatiq.Parser.parse
         {|FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE NOT contains($a, "ketone", any)
RETURN $a//enzyme_id|})
  in
  check bool "negation via EXISTS" true (contains_sub t3.sql "NOT EXISTS")

let test_xq2sql_unsupported () =
  let wh = Lazy.force loaded_warehouse in
  let db = D.Warehouse.db wh in
  let must_reject text =
    match Xomatiq.Xq2sql.translate db (Xomatiq.Parser.parse text) with
    | exception Xomatiq.Xq2sql.Unsupported _ -> ()
    | _ -> fail ("expected Unsupported: " ^ text)
  in
  (* positional predicate *)
  must_reject
    {|FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE $a//alternate_name[1] = "x" RETURN $a//enzyme_id|};
  (* predicate on a non-final step *)
  must_reject
    {|FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
WHERE $a//feature[@feature_key = "CDS"]/qualifier = "x"
RETURN $a//embl_accession_number|}

let test_multi_token_keyword_spans_subtree () =
  (* "cell cycle" tokenizes to two words that live in the same keyword
     element — but tokens in *different* nodes of a subtree also count:
     "drosophila kinase" matches entries where the organism says
     Drosophila and some keyword says kinase *)
  let wh = Lazy.force loaded_warehouse in
  let q =
    {|FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
WHERE contains($a, "drosophila gene", any)
RETURN $a//embl_accession_number|}
  in
  let relational = Xomatiq.Engine.run_text wh q in
  let reference = Xomatiq.Engine.run_text ~mode:`Reference wh q in
  check rows_testable "multi-node token match differential" reference.rows
    relational.rows;
  check bool "matches exist" true (relational.rows <> [])

(* ---------------- lint ---------------- *)

let test_lint_clean_queries () =
  let wh = Lazy.force loaded_warehouse in
  List.iter
    (fun q ->
      let warnings = Xomatiq.Lint.check wh (Xomatiq.Parser.parse q) in
      check int (Printf.sprintf "no warnings: %s" q) 0 (List.length warnings))
    [ fig9_subtree_query; fig8_keyword_query; fig11_join_query ]

let test_lint_catches_typos () =
  let wh = Lazy.force loaded_warehouse in
  let warnings_of q = Xomatiq.Lint.check wh (Xomatiq.Parser.parse q) in
  (* misspelled element in a return path *)
  check bool "typo in return path" true
    (warnings_of
       {|FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
RETURN $a//enzym_id|}
     <> []);
  (* binding path that the DTD cannot produce *)
  check bool "impossible binding path" true
    (warnings_of
       {|FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_protein
RETURN $a//enzyme_id|}
     <> []);
  (* attribute that no element declares *)
  check bool "unknown attribute" true
    (warnings_of
       {|FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE $a//reference/@nope = "x"
RETURN $a//enzyme_id|}
     <> []);
  (* structurally valid attribute passes *)
  check int "declared attribute passes" 0
    (List.length
       (warnings_of
          {|FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
RETURN $a//reference/@swissprot_accession_number|}));
  (* a path valid under the wrong variable is flagged *)
  check bool "path under the wrong binding" true
    (warnings_of
       {|FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE $a//enzyme_id = "1.1.1.1"
RETURN $b//enzyme_id|}
     <> []);
  (* unknown collections are skipped, not flagged *)
  check int "unknown collection skipped" 0
    (List.length (warnings_of {|FOR $a IN document("nope")/x RETURN $a//y|}))

(* ---------------- tagger ---------------- *)

let test_tagger_xml () =
  let doc =
    Xomatiq.Tagger.to_xml ~labels:[ "Accession Number"; "desc" ]
      [ [ "A1"; "first" ]; [ "A2"; "second" ] ]
  in
  check string "root" "results" doc.root.tag;
  check (Alcotest.option string) "count attr" (Some "2") (Gxml.Tree.attr doc.root "count");
  check int "two results" 2 (List.length (Gxml.Tree.children_named doc.root "result"));
  let first = List.hd (Gxml.Tree.children_named doc.root "result") in
  (match Gxml.Tree.child_named first "Accession_Number" with
   | Some e -> check string "sanitised label element" "A1" (Gxml.Tree.text_content e)
   | None -> fail "missing sanitised element");
  (* serialises to well-formed XML *)
  let printed = Gxml.Printer.document_to_string doc in
  ignore (Gxml.Parser.parse_document printed)

let test_tagger_table () =
  let table =
    Xomatiq.Tagger.to_table ~labels:[ "id"; "name" ]
      [ [ "1"; "alpha" ]; [ "2"; "b" ] ]
  in
  check bool "has header" true (String.length table > 0 && String.sub table 0 2 = "id");
  check bool "row count line" true
    (String.length table >= 9 && String.sub table (String.length table - 9) 8 = "(2 rows)")

(* ---------------- explain ---------------- *)

let test_explain_uses_indexes () =
  let wh = Lazy.force loaded_warehouse in
  let q = Xomatiq.Parser.parse fig9_subtree_query in
  let plan = Xomatiq.Engine.explain wh q in
  let contains_sub hay needle =
    let hl = String.length hay and nl = String.length needle in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    nl = 0 || go 0
  in
  check bool "keyword index probed" true
    (contains_sub plan "IndexLookup" || contains_sub plan "HashJoin");
  check bool "shows the SQL" true (contains_sub plan "SELECT DISTINCT")

let () =
  Alcotest.run "xomatiq"
    [ ("parser",
       [ Alcotest.test_case "fig9" `Quick test_parse_fig9;
         Alcotest.test_case "fig8" `Quick test_parse_fig8;
         Alcotest.test_case "fig11" `Quick test_parse_fig11;
         Alcotest.test_case "let inlining" `Quick test_parse_let;
         Alcotest.test_case "errors" `Quick test_parse_errors;
         Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip ]);
      ("paper-queries",
       [ Alcotest.test_case "fig9 subtree" `Quick test_fig9_finds_planted_ketone;
         Alcotest.test_case "fig11 join" `Quick test_fig11_join_correct;
         Alcotest.test_case "fig8 keyword" `Quick test_fig8_keyword_both_sources ]);
      ("differential",
       [ Alcotest.test_case "paper queries" `Quick test_differential_paper_queries;
         Alcotest.test_case "variants" `Quick test_differential_variants;
         Alcotest.test_case "unknown collection" `Quick test_unknown_collection ]);
      ("ablation",
       [ Alcotest.test_case "contains strategies" `Quick test_contains_strategies_agree ]);
      ("prepared",
       [ Alcotest.test_case "agrees with ad hoc" `Quick test_prepared_queries ]);
      ("query-mix",
       [ Alcotest.test_case "all classes differential" `Quick test_query_mix_all_classes ]);
      ("differential-props",
       List.map QCheck_alcotest.to_alcotest [ differential_random_queries ]);
      ("order-operators",
       [ Alcotest.test_case "before/after" `Quick test_order_operators;
         Alcotest.test_case "reject attributes" `Quick test_order_rejects_attributes ]);
      ("modes",
       [ Alcotest.test_case "subtree" `Quick test_mode_subtree;
         Alcotest.test_case "join" `Quick test_mode_join;
         Alcotest.test_case "keyword" `Quick test_mode_keyword ]);
      ("lint",
       [ Alcotest.test_case "clean queries" `Quick test_lint_clean_queries;
         Alcotest.test_case "catches typos" `Quick test_lint_catches_typos ]);
      ("xq2sql",
       [ Alcotest.test_case "sql shape" `Quick test_xq2sql_shape;
         Alcotest.test_case "unsupported forms" `Quick test_xq2sql_unsupported;
         Alcotest.test_case "multi-token keywords" `Quick test_multi_token_keyword_spans_subtree ]);
      ("tagger",
       [ Alcotest.test_case "xml" `Quick test_tagger_xml;
         Alcotest.test_case "table" `Quick test_tagger_table ]);
      ("explain", [ Alcotest.test_case "indexes" `Quick test_explain_uses_indexes ]);
    ]
